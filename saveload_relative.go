package bwtmatch

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"bwtmatch/internal/core"
	"bwtmatch/internal/fmindex"
)

// relativeMagic identifies the relative container: a delta payload that
// is only usable alongside the base index it was built against. The
// container binds to the base by content hash, not by path — the path
// is a hint.
const relativeMagic = uint32(0xB3711DF3)

// maxBaseHint caps the stored base path hint.
const maxBaseHint = 4096

// RelativeHeader is the container metadata readable without the base
// index (see SniffRelative). Servers use it to locate and share the
// base before parsing the delta payload.
type RelativeHeader struct {
	BasePath        string            // path hint recorded at save time; may be empty
	BaseFingerprint [sha256.Size]byte // sha256 of the base's BWT
	BaseLen         int               // base target length in bases
	Len             int               // tenant target length in bases
}

// Save serializes the relative index as a delta container. The base is
// NOT written — only its fingerprint, length, and an optional path
// hint — so the container stays O(diff) on disk too.
func (x *RelativeIndex) Save(w io.Writer) error {
	hint := []byte(x.basePath)
	if len(hint) > maxBaseHint {
		return fmt.Errorf("%w: base path hint %d bytes (max %d)", ErrInput, len(hint), maxBaseHint)
	}
	bw := bufio.NewWriter(w)
	if err := binary.Write(bw, binary.LittleEndian, relativeMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(hint))); err != nil {
		return err
	}
	if _, err := bw.Write(hint); err != nil {
		return err
	}
	if _, err := bw.Write(x.baseFP[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(x.base.Len())); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(x.Len())); err != nil {
		return err
	}
	if err := writeRefTable(bw, x.refs); err != nil {
		return err
	}
	if _, err := x.searcher.Index().WriteRelativeTo(bw); err != nil {
		return err
	}
	return bw.Flush()
}

// SaveFile saves the relative container to a file.
func (x *RelativeIndex) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := x.Save(f); err != nil {
		f.Close() //kmvet:ignore closeerr save already failed; the write error is the one to report
		return err
	}
	return f.Close()
}

// readRelativeHeader parses everything before the ref table. Errors
// wrap ErrFormat.
func readRelativeHeader(br *bufio.Reader) (RelativeHeader, error) {
	var hdr RelativeHeader
	var magic uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return hdr, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	if magic != relativeMagic {
		return hdr, fmt.Errorf("%w: magic %#x", ErrFormat, magic)
	}
	var hintLen uint32
	if err := binary.Read(br, binary.LittleEndian, &hintLen); err != nil || hintLen > maxBaseHint {
		return hdr, fmt.Errorf("%w: base path hint", ErrFormat)
	}
	hint := make([]byte, hintLen)
	if _, err := io.ReadFull(br, hint); err != nil {
		return hdr, fmt.Errorf("%w: base path hint: %v", ErrFormat, err)
	}
	if _, err := io.ReadFull(br, hdr.BaseFingerprint[:]); err != nil {
		return hdr, fmt.Errorf("%w: base fingerprint: %v", ErrFormat, err)
	}
	var baseN, n uint64
	if err := binary.Read(br, binary.LittleEndian, &baseN); err != nil {
		return hdr, fmt.Errorf("%w: base length: %v", ErrFormat, err)
	}
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return hdr, fmt.Errorf("%w: target length: %v", ErrFormat, err)
	}
	const maxLen = 1 << 34
	if baseN == 0 || baseN > maxLen || n == 0 || n > maxLen {
		return hdr, fmt.Errorf("%w: base %d bases, target %d bases", ErrFormat, baseN, n)
	}
	hdr.BasePath = string(hint)
	hdr.BaseLen = int(baseN)
	hdr.Len = int(n)
	return hdr, nil
}

// SniffRelative reports whether path holds a relative container and, if
// so, its header. ok is false (with a nil error) for any other readable
// file; errors are reserved for I/O failures and corrupt relative
// headers.
func SniffRelative(path string) (hdr RelativeHeader, ok bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return RelativeHeader{}, false, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	peek, err := br.Peek(4)
	if err != nil || binary.LittleEndian.Uint32(peek) != relativeMagic {
		return RelativeHeader{}, false, nil
	}
	hdr, err = readRelativeHeader(br)
	if err != nil {
		return RelativeHeader{}, false, err
	}
	return hdr, true, nil
}

// LoadRelative deserializes a relative container against its base
// index. The base must match the fingerprint recorded at save time;
// a mismatch wraps ErrFormat.
func LoadRelative(r io.Reader, base *Index) (*RelativeIndex, error) {
	if base == nil {
		return nil, fmt.Errorf("%w: nil base index", ErrInput)
	}
	baseFm := base.searcher.Index()
	if baseFm.IsRelative() {
		return nil, fmt.Errorf("%w: base index is itself relative", ErrInput)
	}
	br := bufio.NewReader(r)
	hdr, err := readRelativeHeader(br)
	if err != nil {
		return nil, err
	}
	if hdr.BaseLen != base.Len() {
		return nil, fmt.Errorf("%w: container expects a %d-base base, got %d bases",
			ErrFormat, hdr.BaseLen, base.Len())
	}
	fp := baseFm.Fingerprint()
	if !bytes.Equal(fp[:], hdr.BaseFingerprint[:]) {
		return nil, fmt.Errorf("%w: base fingerprint mismatch (container %x…, base %x…)",
			ErrFormat, hdr.BaseFingerprint[:4], fp[:4])
	}
	refs, err := readRefTable(br, uint64(hdr.Len))
	if err != nil {
		return nil, err
	}
	relFm, err := fmindex.ReadRelativeIndex(br, baseFm)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	if relFm.N() != hdr.Len {
		return nil, fmt.Errorf("%w: header says %d bases but delta is over %d", ErrFormat, hdr.Len, relFm.N())
	}
	inner := &Index{
		searcher: core.NewSearcherFromIndex(relFm, hdr.Len),
		refs:     refs,
	}
	inner.textFn = func() []byte { return reconstructTarget(relFm) }
	return &RelativeIndex{
		Index:    inner,
		base:     base,
		baseFP:   hdr.BaseFingerprint,
		basePath: hdr.BasePath,
	}, nil
}

// LoadRelativeFile loads a relative container from a file. When base is
// nil the container's path hint is resolved — first as given, then
// relative to the container's directory — and the base index is loaded
// from there; pass a base to share one in-memory copy across tenants.
func LoadRelativeFile(path string, base *Index) (*RelativeIndex, error) {
	if base == nil {
		hdr, ok, err := SniffRelative(path)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("%w: %s is not a relative container", ErrFormat, path)
		}
		base, err = loadHintedBase(path, hdr.BasePath)
		if err != nil {
			return nil, err
		}
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadRelative(f, base)
}

// loadHintedBase resolves a container's base path hint and loads the
// base index.
func loadHintedBase(containerPath, hint string) (*Index, error) {
	if hint == "" {
		return nil, fmt.Errorf("%w: relative container %s has no base path hint; load the base and pass it explicitly",
			ErrInput, containerPath)
	}
	candidates := []string{hint}
	if !filepath.IsAbs(hint) {
		candidates = append(candidates, filepath.Join(filepath.Dir(containerPath), hint))
	}
	var firstErr error
	for _, c := range candidates {
		base, err := LoadFile(c)
		if err == nil {
			return base, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return nil, fmt.Errorf("bwtmatch: loading base %q for %s: %w", hint, containerPath, firstErr)
}
