package bwtmatch

import "bwtmatch/internal/fmindex"

// config collects index construction settings.
type config struct {
	fm fmindex.Options
}

func defaultConfig() config {
	return config{fm: fmindex.DefaultOptions()}
}

// Option customizes index construction.
type Option func(*config)

// WithOccRate sets the rankall checkpoint spacing of the BWT index: one
// cumulative count per character every rate positions. The paper's
// experiments use rate 4 (the default); larger rates shrink the index at
// the cost of scanning up to rate-1 characters per rank query (§III-A).
func WithOccRate(rate int) Option {
	return func(c *config) { c.fm.OccRate = rate }
}

// WithSARate sets the suffix-array sampling rate used to locate
// occurrences: every rate-th target position is kept. The default is 16.
func WithSARate(rate int) Option {
	return func(c *config) { c.fm.SARate = rate }
}

// WithTwoLevelOcc replaces the paper's flat rankall table with a
// hierarchical directory (absolute 32-bit counts every 256 positions,
// relative 8-bit counts every 16): ~2.5 bits/base of occ overhead
// instead of 32 at the paper's rate-4 layout, at equal query speed.
// OccRate is ignored when set.
func WithTwoLevelOcc() Option {
	return func(c *config) { c.fm.TwoLevelOcc = true }
}

// WithPackedBWT stores the BWT at 2 bits per character and counts
// occurrences with word-parallel popcounts. It cuts the BWT payload 4x
// and is the faster layout when combined with sparse rankall sampling
// (WithOccRate >= 32).
func WithPackedBWT() Option {
	return func(c *config) { c.fm.PackedBWT = true }
}

// WithBuildWorkers parallelizes index construction across n goroutines
// for every phase after the suffix array (BWT extraction, rankall
// checkpoints, SA sampling, packing). The suffix array itself is
// inherently serial, so end-to-end speedups saturate per Amdahl
// (DESIGN.md §8). n <= 1 builds serially (the default); queries are
// unaffected.
func WithBuildWorkers(n int) Option {
	return func(c *config) { c.fm.Workers = n }
}
