package bwtmatch

import "bwtmatch/internal/fmindex"

// config collects index construction settings.
type config struct {
	fm fmindex.Options

	// Sharded construction (NewSharded / NewShardedRefs only; plain New
	// ignores these).
	shardSize     int
	shardCount    int
	maxPatternLen int
	shardFanout   int
}

// DefaultMaxPatternLen is the pattern-length bound a sharded index is
// built for when WithMaxPatternLen is not given: shards overlap by
// DefaultMaxPatternLen-1 bytes, so any pattern up to this long is
// searched exactly. Comfortably above short-read lengths (100-300 bp).
const DefaultMaxPatternLen = 512

func defaultConfig() config {
	return config{fm: fmindex.DefaultOptions(), maxPatternLen: DefaultMaxPatternLen}
}

// Option customizes index construction.
type Option func(*config)

// WithOccRate sets the rankall checkpoint spacing of the BWT index: one
// cumulative count per character every rate positions. The paper's
// experiments use rate 4 (the default); larger rates shrink the index at
// the cost of scanning up to rate-1 characters per rank query (§III-A).
func WithOccRate(rate int) Option {
	return func(c *config) { c.fm.OccRate = rate }
}

// WithSARate sets the suffix-array sampling rate used to locate
// occurrences: every rate-th target position is kept. The default is 16.
func WithSARate(rate int) Option {
	return func(c *config) { c.fm.SARate = rate }
}

// WithTwoLevelOcc replaces the paper's flat rankall table with a
// hierarchical directory (absolute 32-bit counts every 256 positions,
// relative 8-bit counts every 16): ~2.5 bits/base of occ overhead
// instead of 32 at the paper's rate-4 layout, at equal query speed.
// OccRate is ignored when set.
func WithTwoLevelOcc() Option {
	return func(c *config) { c.fm.TwoLevelOcc = true }
}

// WithPackedBWT stores the BWT at 2 bits per character and counts
// occurrences with word-parallel popcounts. It cuts the BWT payload 4x
// and is the faster layout when combined with sparse rankall sampling
// (WithOccRate >= 32).
func WithPackedBWT() Option {
	return func(c *config) { c.fm.PackedBWT = true }
}

// WithBuildWorkers parallelizes index construction across n goroutines
// for every phase of the build, including the suffix array itself:
// n >= 2 switches SA construction to parallel DC3 (pDC3), which is
// bit-identical to the serial SA-IS default, and parallelizes
// everything after it (BWT extraction, rankall checkpoints, SA
// sampling, packing) — see DESIGN.md §8 and §12. n <= 1 builds
// serially (the default); queries are unaffected.
func WithBuildWorkers(n int) Option {
	return func(c *config) { c.fm.Workers = n }
}

// BuildPhases is the wall-clock breakdown of index construction: the
// suffix array, the BWT extraction plus C array, the rankall
// checkpoint tables, and the packing plus locate samples. The sum can
// slightly undershoot the total build time (allocation and validation
// sit between phases).
type BuildPhases struct {
	SANS   int64
	BWTNS  int64
	OccNS  int64
	PackNS int64
}

// WithBuildPhases accumulates the construction-phase breakdown into ph:
// each build the option applies to adds its phase durations, so a
// streaming multi-shard build sums into one sink. Not synchronized —
// do not share one sink across concurrently built indexes (plain New
// and the streaming builder are safe; a single NewSharded call builds
// shards concurrently and must not share a sink). Construction-only;
// never serialized with the index.
func WithBuildPhases(ph *BuildPhases) Option {
	return func(c *config) { c.fm.Phases = (*fmindex.BuildPhases)(ph) }
}

// WithShards partitions a sharded index into n shards of equal stride
// (NewSharded / NewShardedRefs). Mutually exclusive with WithShardSize;
// the last one set wins. Plain New ignores it.
func WithShards(n int) Option {
	return func(c *config) { c.shardCount = n; c.shardSize = 0 }
}

// WithShardSize partitions a sharded index into shards that own `bytes`
// target bytes each (each shard additionally indexes the
// maxPatternLen-1 overlap into its successor). Mutually exclusive with
// WithShards; the last one set wins. Plain New ignores it.
func WithShardSize(bytes int) Option {
	return func(c *config) { c.shardSize = bytes; c.shardCount = 0 }
}

// WithMaxPatternLen sets the longest pattern a sharded index answers
// exactly (default DefaultMaxPatternLen). It fixes the shard overlap at
// n-1 bytes: larger bounds cost index space proportional to
// shards x (n-1), and queries longer than the bound are rejected with
// ErrInput. Plain New ignores it.
func WithMaxPatternLen(n int) Option {
	return func(c *config) { c.maxPatternLen = n }
}

// WithShardFanout caps the goroutines a single sharded search fans out
// across (default GOMAXPROCS). 1 searches shards serially; batch
// entry points (MapAllContext) always search shards serially within a
// worker and parallelize across queries instead. Plain New ignores it.
func WithShardFanout(n int) Option {
	return func(c *config) { c.shardFanout = n }
}
