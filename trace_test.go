package bwtmatch_test

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"

	"bwtmatch"
	"bwtmatch/internal/obs"
)

// repeatHeavyTarget spreads noisy copies of one 300 bp family across a
// random genome (the dense-region configuration of the core derivation
// tests). Recurring BWT intervals there make Algorithm A's M-tree
// memoization fire (Stats.MemoHits > 0), which a uniform random target
// almost never does at test sizes.
func repeatHeavyTarget(t *testing.T, n int) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(1001))
	g := make([]byte, n)
	for i := range g {
		g[i] = "acgt"[rng.Intn(4)]
	}
	const unit = 300
	for covered := 0; covered < n*2/5; covered += unit {
		src, dst := 1000, rng.Intn(n-unit)
		for i := 0; i < unit; i++ {
			if rng.Intn(33) == 0 {
				g[dst+i] = "acgt"[rng.Intn(4)]
			} else {
				g[dst+i] = g[src+i]
			}
		}
	}
	return g
}

// TestTracerEventCountsMatchStats pins the tracing contract: the
// recorded instant events are exactly the paper's work counters. Every
// Stats.MTreeLeaves increment emits one EvLeaf and every Stats.MemoHits
// one EvMerge — so a timeline is a faithful expansion of the aggregate
// counters, never an estimate.
func TestTracerEventCountsMatchStats(t *testing.T) {
	target := repeatHeavyTarget(t, 1<<16)
	idx, err := bwtmatch.New(target)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))

	sawMemoHit := false
	for _, method := range []bwtmatch.Method{bwtmatch.AlgorithmA, bwtmatch.AlgorithmANoPhi, bwtmatch.BWTBaseline, bwtmatch.STree} {
		for trial := 0; trial < 3; trial++ {
			p := rng.Intn(len(target) - 60)
			pat := append([]byte(nil), target[p:p+60]...)
			pat[rng.Intn(60)] = "acgt"[rng.Intn(4)]
			pat[rng.Intn(60)] = "acgt"[rng.Intn(4)]

			rec := obs.NewRecorder()
			matches, stats, err := idx.SearchMethodTraced(pat, 8, method, rec)
			if err != nil {
				t.Fatal(err)
			}
			if got := rec.CountKind(obs.EvLeaf); got != stats.MTreeLeaves {
				t.Errorf("%v trial %d: %d EvLeaf events, Stats.MTreeLeaves = %d", method, trial, got, stats.MTreeLeaves)
			}
			if got := rec.CountKind(obs.EvMerge); got != stats.MemoHits {
				t.Errorf("%v trial %d: %d EvMerge events, Stats.MemoHits = %d", method, trial, got, stats.MemoHits)
			}
			if b, e := rec.CountKind(obs.EvBegin), rec.CountKind(obs.EvEnd); b != e {
				t.Errorf("%v trial %d: unbalanced spans: %d begins, %d ends", method, trial, b, e)
			}
			sawMemoHit = sawMemoHit || stats.MemoHits > 0

			// Tracing must not change the answer or the work done.
			plain, plainStats, err := idx.SearchMethod(pat, 8, method)
			if err != nil {
				t.Fatal(err)
			}
			if len(plain) != len(matches) {
				t.Fatalf("%v trial %d: traced found %d matches, untraced %d", method, trial, len(matches), len(plain))
			}
			// LocateNS is wall time and legitimately differs run to run.
			plainStats.LocateNS, stats.LocateNS = 0, 0
			if plainStats != stats {
				t.Errorf("%v trial %d: traced stats %+v != untraced %+v", method, trial, stats, plainStats)
			}
		}
	}
	if !sawMemoHit {
		t.Error("no trial exercised the merge path (MemoHits stayed 0); grow the repeat structure")
	}
}

// TestTraceChromeExport checks a recorded search renders as loadable
// Chrome trace-event JSON (the kmsearch/kmbench -trace output schema).
func TestTraceChromeExport(t *testing.T) {
	target := repeatHeavyTarget(t, 1<<12)
	idx, err := bwtmatch.New(target)
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder()
	if _, _, err := idx.SearchMethodTraced(target[100:160], 2, bwtmatch.AlgorithmA, rec); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	checkChromeTrace(t, buf.Bytes())
}

// checkChromeTrace validates Chrome trace-event JSON structurally: the
// schema about:tracing and Perfetto expect (also used by the CLI e2e
// test against kmsearch -trace output).
func checkChromeTrace(t *testing.T, data []byte) {
	t.Helper()
	var doc struct {
		TraceEvents []struct {
			Name string           `json:"name"`
			Ph   string           `json:"ph"`
			TS   *float64         `json:"ts"`
			PID  int              `json:"pid"`
			TID  int              `json:"tid"`
			Args map[string]int64 `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want \"ms\"", doc.DisplayTimeUnit)
	}
	begins, ends := 0, 0
	for i, e := range doc.TraceEvents {
		switch e.Ph {
		case "B":
			begins++
		case "E":
			ends++
		case "i":
		default:
			t.Errorf("event %d: unknown phase %q", i, e.Ph)
		}
		if e.Ph != "E" && e.Name == "" {
			t.Errorf("event %d: empty name", i)
		}
		if e.TS == nil || *e.TS < 0 {
			t.Errorf("event %d: missing or negative ts", i)
		}
		if e.PID == 0 || e.TID == 0 {
			t.Errorf("event %d: zero pid/tid", i)
		}
	}
	if begins != ends {
		t.Errorf("unbalanced spans: %d B events, %d E events", begins, ends)
	}
}

// BenchmarkTracerOverhead shows what tracing costs: "disabled" is the
// production path (nil Tracer, one predictable branch per potential
// event — the committed BENCH_obs_*.json pair pins it within noise of
// the pre-instrumentation build), "recording" pays for a live Recorder.
func BenchmarkTracerOverhead(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	target := make([]byte, 1<<16)
	for i := range target {
		target[i] = "acgt"[rng.Intn(4)]
	}
	idx, err := bwtmatch.New(target)
	if err != nil {
		b.Fatal(err)
	}
	pat := append([]byte(nil), target[1000:1100]...)
	pat[50] = 'a'

	b.Run("disabled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := idx.SearchMethodTraced(pat, 4, bwtmatch.AlgorithmA, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("recording", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := idx.SearchMethodTraced(pat, 4, bwtmatch.AlgorithmA, obs.NewRecorder()); err != nil {
				b.Fatal(err)
			}
		}
	})
}
