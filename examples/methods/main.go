// Method comparison: run the same k-mismatch queries through every
// implemented matcher — the paper's Algorithm A, its three experimental
// baselines (BWT with φ pruning, Amir's filter, Cole's suffix tree) and
// the online Landau–Vishkin matcher — verifying they agree and printing
// their work statistics side by side. A compact, runnable version of the
// paper's §V comparison.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"bwtmatch"
	"bwtmatch/internal/alphabet"
	"bwtmatch/internal/dna"
)

func main() {
	bases := flag.Int("bases", 1<<19, "genome length")
	count := flag.Int("reads", 20, "number of reads")
	k := flag.Int("k", 4, "mismatch budget")
	flag.Parse()

	genome, err := dna.Generate(dna.GenomeConfig{
		Length: *bases, RepeatFraction: 0.4, MarkovBias: 0.15, Seed: 31,
	})
	if err != nil {
		log.Fatal(err)
	}
	idx, err := bwtmatch.New(alphabet.Decode(genome))
	if err != nil {
		log.Fatal(err)
	}
	reads, err := dna.Simulate(genome, dna.ReadConfig{
		Length: 100, Count: *count, ErrorRate: 0.02, Seed: 32,
	})
	if err != nil {
		log.Fatal(err)
	}

	methods := []bwtmatch.Method{
		bwtmatch.AlgorithmA, bwtmatch.BWTBaseline, bwtmatch.Amir,
		bwtmatch.Cole, bwtmatch.Online,
	}
	fmt.Printf("%-10s %12s %10s %12s %10s\n", "method", "time/read", "matches", "bwt-steps", "n'-leaves")
	var reference int
	for i, method := range methods {
		var matches, steps, leaves int
		start := time.Now()
		for _, r := range reads {
			ms, st, err := idx.SearchMethod(alphabet.Decode(r.Seq), *k, method)
			if err != nil {
				log.Fatal(err)
			}
			matches += len(ms)
			steps += st.StepCalls
			leaves += st.MTreeLeaves
		}
		elapsed := time.Since(start)
		if i == 0 {
			reference = matches
		} else if matches != reference {
			log.Fatalf("%v found %d matches, Algorithm A found %d — methods disagree",
				method, matches, reference)
		}
		fmt.Printf("%-10v %12v %10d %12d %10d\n",
			method, (elapsed / time.Duration(len(reads))).Round(time.Microsecond),
			matches, steps, leaves)
	}
	fmt.Println("all methods agree on every match")
}
