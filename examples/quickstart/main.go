// Quickstart: index a tiny target and search a pattern with k mismatches,
// reproducing the paper's introductory example (§I): the pattern
// aaaaacaaac occurs in ccacacagaagcc starting at (1-based) position 3
// with exactly 4 mismatches.
package main

import (
	"fmt"
	"log"

	"bwtmatch"
)

func main() {
	target := []byte("ccacacagaagcc")
	pattern := []byte("aaaaacaaac")

	idx, err := bwtmatch.New(target)
	if err != nil {
		log.Fatal(err)
	}

	matches, err := idx.Search(pattern, 4)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("pattern %q in target %q with k=4:\n", pattern, target)
	for _, m := range matches {
		window := target[m.Pos : m.Pos+len(pattern)]
		fmt.Printf("  position %d (1-based %d): %q, %d mismatches\n",
			m.Pos, m.Pos+1, window, m.Mismatches)
	}
	if len(matches) == 0 {
		fmt.Println("  no occurrences")
	}
}
