// Probe design: the extension APIs in one workflow. Degenerate probes
// (with 'n' don't-care positions) are located exactly with
// SearchWildcard; candidate loci are then compared against the probe
// under the Levenshtein model with SearchEdits to tolerate small indels;
// finally the best locus is aligned locally (Smith–Waterman) to show the
// exact base-level correspondence.
package main

import (
	"flag"
	"fmt"
	"log"

	"bwtmatch"
	"bwtmatch/internal/align"
	"bwtmatch/internal/alphabet"
	"bwtmatch/internal/dna"
)

func main() {
	bases := flag.Int("bases", 1<<18, "genome length")
	flag.Parse()

	genome, err := dna.Generate(dna.GenomeConfig{
		Length: *bases, RepeatFraction: 0.35, MarkovBias: 0.1, Seed: 41,
	})
	if err != nil {
		log.Fatal(err)
	}
	text := alphabet.Decode(genome)
	idx, err := bwtmatch.New(text)
	if err != nil {
		log.Fatal(err)
	}

	// A probe copied from the genome with two positions degenerated.
	site := len(text) / 3
	probe := append([]byte(nil), text[site:site+40]...)
	probe[10], probe[25] = 'n', 'n'

	positions, err := idx.SearchWildcard(probe)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("degenerate probe %q\n", probe)
	fmt.Printf("exact wildcard hits: %v\n", positions)

	// Tolerate small indels around the probe with the k-errors matcher.
	solid := append([]byte(nil), text[site:site+40]...)
	edits, err := idx.SearchEdits(solid, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("k-errors (<=2 edits) end positions: %d loci\n", len(edits))

	// Align the probe against its first hit locus to display base-level
	// correspondence.
	if len(positions) > 0 {
		p := positions[0]
		window := text[p : p+len(probe)+4]
		al, err := align.Local(window, solid, align.DefaultScoring())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("local alignment at locus %d: score %d, cigar %s\n", p, al.Score, al)
	}
}
