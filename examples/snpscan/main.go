// SNP scanning: locate every near-occurrence of a probe sequence in a
// genome and report at which offsets the genome disagrees with the probe
// — the "polymorphisms among individuals" use case from the paper's
// introduction. Each reported site lists the probe base and the observed
// genome base, like a tiny variant caller.
package main

import (
	"flag"
	"fmt"
	"log"

	"bwtmatch"
	"bwtmatch/internal/alphabet"
	"bwtmatch/internal/dna"
)

func main() {
	bases := flag.Int("bases", 1<<19, "genome length")
	k := flag.Int("k", 3, "mismatch budget")
	flag.Parse()

	genome, err := dna.Generate(dna.GenomeConfig{
		Length: *bases, RepeatFraction: 0.5, RepeatUnit: 250, Seed: 21,
	})
	if err != nil {
		log.Fatal(err)
	}
	text := alphabet.Decode(genome)
	idx, err := bwtmatch.New(text)
	if err != nil {
		log.Fatal(err)
	}

	// Use a window from inside a repeat-rich region as the probe: its
	// family members differ from it by point substitutions, which is
	// exactly what the k-mismatch search surfaces.
	probe := append([]byte(nil), text[len(text)/2:len(text)/2+60]...)

	matches, err := idx.Search(probe, *k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("probe of %d bases, k=%d: %d sites\n", len(probe), *k, len(matches))
	shown := 0
	for _, m := range matches {
		fmt.Printf("  site @%d (%d mismatches)", m.Pos, m.Mismatches)
		if m.Mismatches > 0 {
			fmt.Print(":")
			window := text[m.Pos : m.Pos+len(probe)]
			for off := range probe {
				if window[off] != probe[off] {
					fmt.Printf(" %d:%c>%c", off, probe[off], window[off])
				}
			}
		}
		fmt.Println()
		shown++
		if shown == 12 {
			fmt.Printf("  ... and %d more\n", len(matches)-shown)
			break
		}
	}
}
