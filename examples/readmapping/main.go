// Read mapping: the workload the paper's introduction motivates. A
// synthetic genome is generated, short reads with sequencing errors are
// simulated from it (both strands), and every read is mapped back with
// k-mismatch search — checking the reverse complement when the forward
// strand yields nothing, exactly as a DNA aligner would.
//
// The example reports mapping accuracy (did the true origin appear among
// the reported positions?) and throughput.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"bwtmatch"
	"bwtmatch/internal/alphabet"
	"bwtmatch/internal/dna"
)

func main() {
	bases := flag.Int("bases", 1<<20, "genome length")
	count := flag.Int("reads", 200, "number of reads")
	length := flag.Int("length", 100, "read length")
	k := flag.Int("k", 5, "mismatch budget")
	flag.Parse()

	genome, err := dna.Generate(dna.GenomeConfig{
		Length: *bases, RepeatFraction: 0.3, MarkovBias: 0.15, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	idx, err := bwtmatch.New(alphabet.Decode(genome))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d bases in %v (%.1f bits/base)\n",
		idx.Len(), time.Since(start).Round(time.Millisecond),
		float64(idx.SizeBytes()*8)/float64(idx.Len()))

	reads, err := dna.Simulate(genome, dna.ReadConfig{
		Length: *length, Count: *count, ErrorRate: 0.02,
		ReverseComplement: true, Seed: 8,
	})
	if err != nil {
		log.Fatal(err)
	}

	var mapped, correct, multi int
	start = time.Now()
	for _, r := range reads {
		seq := append([]byte(nil), r.Seq...)
		matches, err := idx.Search(alphabet.Decode(seq), *k)
		if err != nil {
			log.Fatal(err)
		}
		strandPos := int(r.Pos)
		if len(matches) == 0 {
			// Try the other strand.
			rc := alphabet.ReverseComplement(append([]byte(nil), r.Seq...))
			matches, err = idx.Search(alphabet.Decode(rc), *k)
			if err != nil {
				log.Fatal(err)
			}
		}
		if len(matches) == 0 {
			continue
		}
		mapped++
		if len(matches) > 1 {
			multi++
		}
		for _, m := range matches {
			if m.Pos == strandPos {
				correct++
				break
			}
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("mapped %d/%d reads (%d multi-mapped), true origin recovered for %d\n",
		mapped, len(reads), multi, correct)
	fmt.Printf("%.2f ms/read, %.0f reads/s\n",
		float64(elapsed.Microseconds())/1000/float64(len(reads)),
		float64(len(reads))/elapsed.Seconds())
}
