// Command kmload drives a kmserved worker or cluster coordinator with
// duplicate-heavy concurrent search traffic and reports latency
// quantiles plus the server's own counters. It exists to exercise the
// cluster tier's coalescing, hot-results cache and load-shedding under
// realistic skew: patterns are drawn from a fixed pool with a Zipf
// distribution, so a small set of hot reads dominates — exactly the
// traffic shape the coordinator's cache is built for.
//
//	kmload -url http://127.0.0.1:8080 -index hg -k 2 \
//	    -clients 64 -requests 500 -batch 32 -genome g.fa -out report.json
//
// The JSON report carries client-side p50/p90/p99 batch latency (from
// an internal/obs histogram), throughput, error and shed counts, and a
// scrape of the target's /metrics.json so cache hit rates land in the
// same document.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bwtmatch"
	"bwtmatch/internal/obs"
	"bwtmatch/internal/seqio"
	"bwtmatch/server"
	"bwtmatch/server/client"
)

func main() {
	url := flag.String("url", "http://127.0.0.1:8080", "kmserved or coordinator base URL")
	index := flag.String("index", "", "index name to search (required unless -indexes)")
	indexes := flag.String("indexes", "", "comma-separated index names; each batch targets one, Zipf-skewed toward the first — multi-tenant traffic (overrides -index)")
	k := flag.Int("k", 2, "mismatch budget")
	method := flag.String("method", "a", "search method (a|bwt|stree|amir|cole|online|seed)")
	clients := flag.Int("clients", 32, "concurrent client goroutines")
	requests := flag.Int("requests", 200, "total batches to send across all clients")
	batch := flag.Int("batch", 16, "reads per batch")
	genome := flag.String("genome", "", "FASTA/FASTQ file to sample patterns from (default: random patterns)")
	patLen := flag.Int("pattern-len", 50, "pattern length")
	pool := flag.Int("pool", 256, "distinct patterns in the pool")
	zipfS := flag.Float64("zipf", 1.3, "Zipf skew over the pool (<=1 means uniform)")
	mutate := flag.Int("mutate", 1, "substitutions injected into each pool pattern")
	seed := flag.Int64("seed", 1, "sampling seed")
	timeout := flag.Duration("timeout", 60*time.Second, "per-request client timeout")
	out := flag.String("out", "", "write the JSON report here (default stdout)")
	traceOut := flag.String("trace", "", "after the run, send one forced-trace batch (X-Km-Trace) and write its Chrome timeline JSON here (open in chrome://tracing or Perfetto)")
	flag.Parse()

	names := indexList(*index, *indexes)
	if len(names) == 0 {
		fatal(fmt.Errorf("-index or -indexes is required"))
	}
	if *clients < 1 || *requests < 1 || *batch < 1 || *pool < 1 || *patLen < 1 {
		fatal(fmt.Errorf("-clients, -requests, -batch, -pool and -pattern-len must be positive"))
	}

	patterns, err := buildPool(*genome, *pool, *patLen, *mutate, *seed)
	if err != nil {
		fatal(err)
	}

	hist := obs.NewShardedLatencyHistogram()
	var (
		sent, reads, matches atomic.Int64
		readErrs, reqErrs    atomic.Int64
		shed, partialBatches atomic.Int64
		remaining            atomic.Int64
	)
	remaining.Store(int64(*requests))
	indexBatches := make([]atomic.Int64, len(names))

	ctx := context.Background()
	c := client.New(*url, client.WithTimeout(*timeout), client.WithRetries(3, 25*time.Millisecond))
	if err := c.Health(ctx); err != nil {
		fatal(fmt.Errorf("target %s not healthy: %w", *url, err))
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w)*7919))
			pick := sampler(rng, *zipfS, len(patterns))
			// Per-batch tenant pick, Zipf-skewed toward the first name —
			// the hot-tenant/cold-tenant shape a multi-tenant registry
			// (shared relative bases, LRU eviction) is sized for.
			ipick := sampler(rng, *zipfS, len(names))
			for remaining.Add(-1) >= 0 {
				target := ipick()
				req := server.SearchRequest{Index: names[target], K: *k, Method: *method,
					Reads: make([]server.Read, *batch)}
				for i := range req.Reads {
					req.Reads[i] = server.Read{Seq: patterns[pick()]}
				}
				indexBatches[target].Add(1)
				t0 := time.Now()
				resp, err := c.Search(ctx, req)
				if err != nil {
					reqErrs.Add(1)
					if client.StatusCode(err) == 503 {
						shed.Add(1)
					}
					continue
				}
				hist.Observe(time.Since(t0))
				sent.Add(1)
				reads.Add(int64(resp.Reads))
				matches.Add(int64(resp.Matches))
				readErrs.Add(int64(resp.Errors))
				if resp.Partial {
					partialBatches.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	serverMetrics, err := c.Metrics(ctx)
	if err != nil {
		serverMetrics = map[string]any{"scrape_error": err.Error()}
	}

	if *traceOut != "" {
		if err := captureTrace(ctx, c, *traceOut, names[0], *k, *method, *batch, patterns); err != nil {
			fatal(err)
		}
	}

	byIndex := make(map[string]int64, len(names))
	for i, name := range names {
		byIndex[name] = indexBatches[i].Load()
	}

	report := map[string]any{
		"config": map[string]any{
			"url": *url, "index": *index, "indexes": names, "k": *k, "method": *method,
			"clients": *clients, "requests": *requests, "batch": *batch,
			"pool": *pool, "pattern_len": *patLen, "zipf": *zipfS,
			"mutate": *mutate, "seed": *seed, "genome": *genome,
		},
		"elapsed_sec":      elapsed.Seconds(),
		"batches_ok":       sent.Load(),
		"reads":            reads.Load(),
		"matches":          matches.Load(),
		"read_errors":      readErrs.Load(),
		"request_errors":   reqErrs.Load(),
		"shed_503":         shed.Load(),
		"partial_batches":  partialBatches.Load(),
		"batches_by_index": byIndex,
		"batches_per_sec":  float64(sent.Load()) / elapsed.Seconds(),
		"reads_per_sec":    float64(reads.Load()) / elapsed.Seconds(),
		"latency_ms": map[string]any{
			"p50": hist.Quantile(0.50), "p90": hist.Quantile(0.90),
			"p99": hist.Quantile(0.99), "mean": mean(hist),
		},
		"latency_histogram": hist.Snapshot(),
		"server_metrics":    serverMetrics,
		"gomaxprocs":        runtime.GOMAXPROCS(0),
		"note": "wall-clock latencies include client-side goroutine scheduling; " +
			"on a single-CPU container all clients, the coordinator and the workers " +
			"contend for one core, so quantiles measure the stack under contention, " +
			"not isolated server latency",
	}
	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "kmload: %d batches (%d reads) in %v, p50=%.1fms p99=%.1fms, %d errors, %d shed\n",
		sent.Load(), reads.Load(), elapsed.Round(time.Millisecond),
		hist.Quantile(0.50), hist.Quantile(0.99), reqErrs.Load(), shed.Load())
}

// captureTrace sends one batch with the trace flag forced on the
// context (the client turns it into X-Km-Trace: 1), renders the span
// fragments the target returned — against a coordinator that is the
// whole cross-process timeline, coordinator plus workers — as a Chrome
// trace-event file, and validates the document before declaring
// success. The reads are the pool patterns reversed: after the load
// run every pool pattern sits in the coordinator's hot-results cache,
// and a fully cached batch would trace no fan-out at all.
func captureTrace(ctx context.Context, c *client.Client, path, index string, k int, method string, batch int, patterns []string) error {
	req := server.SearchRequest{Index: index, K: k, Method: method,
		Reads: make([]server.Read, batch)}
	for i := range req.Reads {
		p := []byte(patterns[i%len(patterns)])
		for a, b := 0, len(p)-1; a < b; a, b = a+1, b-1 {
			p[a], p[b] = p[b], p[a]
		}
		req.Reads[i] = server.Read{Seq: string(p)}
	}
	rid := fmt.Sprintf("kmload-trace-%d", os.Getpid())
	tctx := obs.WithTraceRequest(obs.WithRequestID(ctx, rid))
	resp, err := c.Search(tctx, req)
	if err != nil {
		return fmt.Errorf("traced batch: %w", err)
	}
	if len(resp.Trace) == 0 {
		return fmt.Errorf("traced batch returned no span fragments (rid %s); is the target a current kmserved/coordinator?", resp.RequestID)
	}
	var buf bytes.Buffer
	if err := obs.WriteChromeTraceMulti(&buf, resp.Trace); err != nil {
		return err
	}
	if err := obs.ValidateChromeTrace(bytes.NewReader(buf.Bytes())); err != nil {
		return fmt.Errorf("rendered trace invalid: %w", err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "kmload: wrote %d-fragment trace (rid %s) to %s\n",
		len(resp.Trace), resp.RequestID, path)
	return nil
}

// indexList resolves the target index names: the comma-separated
// -indexes list when given, else the single -index.
func indexList(index, indexes string) []string {
	if indexes == "" {
		if index == "" {
			return nil
		}
		return []string{index}
	}
	var names []string
	for _, n := range strings.Split(indexes, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names
}

// sampler returns a pool-index generator: Zipf-skewed when s > 1 (rank
// 0 hottest), uniform otherwise.
func sampler(rng *rand.Rand, s float64, n int) func() int {
	if s > 1 && n > 1 {
		z := rand.NewZipf(rng, s, 1, uint64(n-1))
		return func() int { return int(z.Uint64()) }
	}
	return func() int { return rng.Intn(n) }
}

// buildPool materializes the fixed pattern pool the whole run samples
// from. With a genome file, patterns are real substrings (mutated by
// -mutate substitutions so k>0 has work to do); otherwise uniform
// random acgt strings.
func buildPool(genomePath string, pool, patLen, mutate int, seed int64) ([]string, error) {
	rng := rand.New(rand.NewSource(seed))
	const bases = "acgt"
	patterns := make([]string, pool)
	var src []byte
	if genomePath != "" {
		f, err := os.Open(genomePath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		recs, err := seqio.NewReader(f).ReadAll()
		if err != nil {
			return nil, fmt.Errorf("reading %q: %w", genomePath, err)
		}
		for _, rec := range recs {
			clean, _ := bwtmatch.Sanitize(rec.Seq)
			src = append(src, clean...)
		}
		if len(src) < patLen {
			return nil, fmt.Errorf("genome %q has %d bases, need at least -pattern-len=%d", genomePath, len(src), patLen)
		}
	}
	for i := range patterns {
		p := make([]byte, patLen)
		if src != nil {
			copy(p, src[rng.Intn(len(src)-patLen+1):])
			for m := 0; m < mutate; m++ {
				p[rng.Intn(patLen)] = bases[rng.Intn(4)]
			}
		} else {
			for j := range p {
				p[j] = bases[rng.Intn(4)]
			}
		}
		patterns[i] = string(p)
	}
	return patterns, nil
}

func mean(h *obs.ShardedHistogram) float64 {
	if n := h.Count(); n > 0 {
		return h.SumMS() / float64(n)
	}
	return 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kmload:", err)
	os.Exit(1)
}
