// Command kmsearch indexes a genome and reports all k-mismatch
// occurrences of each read, one line per read:
//
//	<read-id> <matches> <pos:mismatches> ...
//
// Genomes are read from FASTA or bare-line files (multi-record FASTA is
// concatenated); reads from FASTQ, FASTA or bare lines. The index can be
// persisted so repeated runs skip construction:
//
//	kmsearch -genome g.fa -save g.bwt                # build and save
//	kmsearch -index g.bwt -reads r.fq -k 4 [-method a|bwt|stree|amir|cole|online]
//	kmsearch -genome g.fa -reads r.fq -k 4 -p 8      # 8 worker goroutines
//
// -trace records the search path of every read as Chrome trace-event
// JSON (phase spans plus the paper's leaf/merge/fallback instants):
//
//	kmsearch -genome g.fa -reads r.fq -k 4 -trace out.json
//
// With -server it acts as a remote client of a running kmserved daemon,
// in which case -index names a registered index instead of a local file:
//
//	kmsearch -server http://localhost:8080 -index hg -reads r.fq -k 4 -v
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bwtmatch"
	"bwtmatch/internal/obs"
	"bwtmatch/internal/seqio"
	"bwtmatch/server"
	"bwtmatch/server/client"
)

var methods = map[string]bwtmatch.Method{
	"a":      bwtmatch.AlgorithmA,
	"bwt":    bwtmatch.BWTBaseline,
	"stree":  bwtmatch.STree,
	"amir":   bwtmatch.Amir,
	"cole":   bwtmatch.Cole,
	"seed":   bwtmatch.Seed,
	"online": bwtmatch.Online,
}

func main() {
	genomePath := flag.String("genome", "", "genome file (FASTA or one line of acgt)")
	indexPath := flag.String("index", "", "load a saved index instead of -genome")
	savePath := flag.String("save", "", "save the built index to this file")
	readsPath := flag.String("reads", "", "reads file (FASTQ, FASTA or one read per line)")
	k := flag.Int("k", 4, "maximum number of mismatches")
	methodName := flag.String("method", "a", "a|bwt|stree|amir|cole|online|seed")
	workers := flag.Int("p", 1, "worker goroutines")
	verbose := flag.Bool("v", false, "print per-read positions")
	sam := flag.Bool("sam", false, "emit SAM records instead of the compact format")
	serverURL := flag.String("server", "", "kmserved base URL; -index then names a registered index")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON timeline to this file (serializes the search)")
	buildP := flag.Int("build-p", 1, "parallel workers for index construction (-g path only)")
	flag.Parse()

	method, ok := methods[*methodName]
	if !ok {
		fatal(fmt.Errorf("unknown method %q", *methodName))
	}

	if *serverURL != "" {
		if *tracePath != "" {
			fatal(fmt.Errorf("-trace needs a local search; it cannot observe a remote server"))
		}
		if err := runRemote(*serverURL, *indexPath, *readsPath, *methodName, *k, *verbose); err != nil {
			fatal(err)
		}
		return
	}

	// idx is a Matcher: monolithic and sharded index files are both
	// accepted (LoadAnyFile dispatches on the container magic), and the
	// whole search path below is layout-agnostic.
	var idx bwtmatch.Matcher
	var err error
	start := time.Now()
	switch {
	case *indexPath != "":
		idx, err = bwtmatch.LoadAnyFile(*indexPath)
	case *genomePath != "":
		var refs []bwtmatch.Reference
		refs, err = readGenome(*genomePath)
		if err == nil {
			idx, err = bwtmatch.NewRefs(refs, bwtmatch.WithBuildWorkers(*buildP))
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}
	if sh, ok := idx.(*bwtmatch.ShardedIndex); ok {
		fmt.Fprintf(os.Stderr, "index ready: %d bases in %d shards in %v (%d index bytes, max pattern %d)\n",
			sh.Len(), sh.Shards(), time.Since(start).Round(time.Millisecond), sh.SizeBytes(), sh.MaxPatternLen())
	} else {
		fmt.Fprintf(os.Stderr, "index ready: %d bases in %v (%d index bytes)\n",
			idx.Len(), time.Since(start).Round(time.Millisecond), idx.SizeBytes())
	}

	if *savePath != "" {
		switch x := idx.(type) {
		case *bwtmatch.Index:
			err = x.SaveFile(*savePath)
		case *bwtmatch.ShardedIndex:
			err = x.SaveFile(*savePath)
		default:
			err = fmt.Errorf("index type %T cannot be saved", idx)
		}
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "saved index to %s\n", *savePath)
	}
	if *readsPath == "" {
		return
	}

	f, err := os.Open(*readsPath)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	recs, err := seqio.NewReader(f).ReadAll()
	if err != nil {
		fatal(err)
	}

	queries := make([]bwtmatch.Query, len(recs))
	for i, rec := range recs {
		clean, _ := bwtmatch.Sanitize(rec.Seq)
		queries[i] = bwtmatch.Query{ID: rec.ID, Pattern: clean, K: *k}
	}
	// Thread an interrupt-aware context into the batch so ^C / SIGTERM
	// stops scheduling new reads instead of orphaning the workers
	// (kmvet: ctxsearch).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	searchStart := time.Now()
	var results []bwtmatch.Result
	if *tracePath != "" {
		// Tracing serializes the batch so the timeline stays readable:
		// each read gets its own span on its own logical track.
		rec := obs.NewRecorder()
		results = make([]bwtmatch.Result, len(queries))
		for i, q := range queries {
			rec.SetTID(i + 1)
			rec.Begin(q.ID)
			m, st, err := idx.SearchMethodTraced(q.Pattern, q.K, method, rec)
			rec.End(obs.Arg{Key: "matches", Val: int64(len(m))})
			results[i] = bwtmatch.Result{Matches: m, Stats: st, Err: err}
		}
		if err := writeTrace(*tracePath, rec); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote trace for %d reads to %s\n", len(queries), *tracePath)
	} else {
		results = idx.MapAllContext(ctx, queries, method, *workers)
	}
	elapsed := time.Since(searchStart)

	out := bufio.NewWriter(os.Stdout)
	totalMatches := 0
	if *sam {
		totalMatches = writeSAM(out, idx, queries, results)
	} else {
		for i, res := range results {
			if res.Err != nil {
				fatal(fmt.Errorf("read %s: %w", queries[i].ID, res.Err))
			}
			totalMatches += len(res.Matches)
			fmt.Fprintf(out, "%s %d", queries[i].ID, len(res.Matches))
			if *verbose {
				for _, m := range res.Matches {
					if ref, pos, ok := idx.Resolve(m.Pos, len(queries[i].Pattern)); ok {
						fmt.Fprintf(out, " %s:%d:%d", ref, pos, m.Mismatches)
					} else if len(idx.Refs()) == 0 {
						fmt.Fprintf(out, " %d:%d", m.Pos, m.Mismatches)
					}
					// Boundary-spanning artifacts of concatenation are dropped.
				}
			}
			fmt.Fprintln(out)
		}
	}
	// Flush explicitly: a deferred Flush would swallow the error, and a
	// full disk on redirected stdout must not exit 0.
	if err := out.Flush(); err != nil {
		fatal(fmt.Errorf("writing output: %w", err))
	}
	fmt.Fprintf(os.Stderr, "%d reads, %d matches, %v total (%s, k=%d, p=%d)\n",
		len(recs), totalMatches, elapsed.Round(time.Millisecond), method, *k, *workers)
}

// runRemote sends the reads to a kmserved daemon and prints the same
// compact format as a local run (remote searches have no SAM mode: the
// server does not return reference-resolved coordinates yet).
func runRemote(base, index, readsPath, methodName string, k int, verbose bool) error {
	if index == "" {
		return fmt.Errorf("-server requires -index (the registered index name)")
	}
	if readsPath == "" {
		return fmt.Errorf("-server requires -reads")
	}
	f, err := os.Open(readsPath)
	if err != nil {
		return err
	}
	defer f.Close()
	recs, err := seqio.NewReader(f).ReadAll()
	if err != nil {
		return err
	}
	req := server.SearchRequest{Index: index, K: k, Method: methodName}
	for _, rec := range recs {
		req.Reads = append(req.Reads, server.Read{ID: firstWord(rec.ID), Seq: string(rec.Seq)})
	}
	c := client.New(base)
	start := time.Now()
	resp, err := c.Search(context.Background(), req)
	if err != nil {
		return err
	}
	out := bufio.NewWriter(os.Stdout)
	for _, rr := range resp.Results {
		if rr.Error != "" {
			return fmt.Errorf("read %s: %s", rr.ID, rr.Error)
		}
		fmt.Fprintf(out, "%s %d", rr.ID, len(rr.Matches))
		if verbose {
			for _, m := range rr.Matches {
				fmt.Fprintf(out, " %d:%d", m.Pos, m.Mismatches)
			}
		}
		fmt.Fprintln(out)
	}
	if err := out.Flush(); err != nil {
		return fmt.Errorf("writing output: %w", err)
	}
	fmt.Fprintf(os.Stderr, "%d reads, %d matches, %v round trip (server %.1fms, %s, k=%d, remote)\n",
		resp.Reads, resp.Matches, time.Since(start).Round(time.Millisecond),
		resp.ElapsedMS, resp.Method, k)
	return nil
}

// writeSAM emits one SAM alignment line per match: the best (fewest
// mismatches) hit as the primary record, the rest flagged secondary
// (0x100); unmapped reads get flag 0x4. CIGAR is always <m>M under the
// Hamming model; the NM tag carries the mismatch count. Returns the
// total match count.
func writeSAM(out *bufio.Writer, idx bwtmatch.Matcher, queries []bwtmatch.Query, results []bwtmatch.Result) int {
	fmt.Fprintln(out, "@HD\tVN:1.6\tSO:unknown")
	for _, r := range idx.Refs() {
		fmt.Fprintf(out, "@SQ\tSN:%s\tLN:%d\n", r.Name, r.Len)
	}
	fmt.Fprintln(out, "@PG\tID:kmsearch\tPN:kmsearch")
	total := 0
	for i, res := range results {
		q := queries[i]
		name := firstWord(q.ID)
		if res.Err != nil || len(res.Matches) == 0 {
			fmt.Fprintf(out, "%s\t4\t*\t0\t0\t*\t*\t0\t0\t%s\t*\n", name, q.Pattern)
			continue
		}
		best := 0
		for j, m := range res.Matches {
			if m.Mismatches < res.Matches[best].Mismatches {
				best = j
			}
		}
		for j, m := range res.Matches {
			ref, pos, ok := idx.Resolve(m.Pos, len(q.Pattern))
			if !ok {
				continue // boundary artifact
			}
			total++
			flag := 0
			if j != best {
				flag |= 0x100
			}
			fmt.Fprintf(out, "%s\t%d\t%s\t%d\t%d\t%dM\t*\t0\t0\t%s\t*\tNM:i:%d\n",
				name, flag, ref, pos+1, mapq(len(res.Matches)), len(q.Pattern),
				q.Pattern, m.Mismatches)
		}
	}
	return total
}

// mapq is a crude mapping quality: unique hits score high, multi-mapped
// reads low, in the spirit (not the math) of real aligners.
func mapq(hits int) int {
	switch {
	case hits <= 1:
		return 60
	case hits <= 3:
		return 3
	default:
		return 0
	}
}

// readGenome loads every record of a FASTA (or bare-line) file as a
// separate reference, sanitizing ambiguity codes.
func readGenome(path string) ([]bwtmatch.Reference, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, err := seqio.NewReader(f).ReadAll()
	if err != nil {
		return nil, err
	}
	refs := make([]bwtmatch.Reference, len(recs))
	replaced := 0
	for i, rec := range recs {
		clean, n := bwtmatch.Sanitize(rec.Seq)
		replaced += n
		refs[i] = bwtmatch.Reference{Name: firstWord(rec.ID), Seq: clean}
	}
	if replaced > 0 {
		fmt.Fprintf(os.Stderr, "sanitized %d ambiguous bases\n", replaced)
	}
	return refs, nil
}

// firstWord trims a FASTA description to its identifier.
func firstWord(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == ' ' || s[i] == '\t' {
			return s[:i]
		}
	}
	return s
}

// writeTrace saves the recorded timeline as Chrome trace-event JSON
// (load in about:tracing or https://ui.perfetto.dev).
func writeTrace(path string, rec *obs.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.WriteChromeTrace(f); err != nil {
		f.Close() //kmvet:ignore closeerr trace write already failed; that error is the one to report
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kmsearch:", err)
	os.Exit(1)
}
