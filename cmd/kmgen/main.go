// Command kmgen generates synthetic genomes and simulated reads for use
// with kmsearch, and builds search indexes from sequence files.
//
// Output formats: fasta (default for genomes), fastq (default for
// reads), or lines (one sequence per line).
//
//	kmgen -genome g.fa -bases 1048576 -repeats 0.4 -chromosomes 2
//	kmgen -reads r.fq -from g.fa -length 100 -count 50 -error 0.02
//	kmgen -index g.km -from g.fa -shard-size 1048576 -stream
//	kmgen -append -index g.km -from more.fa
//	kmgen -index tenant.km -from tenant.fa -relative -base ref.km
//
// -relative builds a delta-compressed tenant index against the saved
// base at -base: the container stores only the BWT differences plus
// Locate samples, and search results are byte-identical to a standalone
// build (DESIGN.md §13). kmsearch and kmserved load it transparently,
// resolving the base from the recorded path hint.
//
// -stream builds the sharded container through the streaming builder:
// the input is read in bounded chunks and each shard is built and
// flushed as it fills, so peak memory is O(shard size), independent of
// the genome length — the terabase-construction path (DESIGN.md §12).
// -append extends an existing sharded container in place, rebuilding
// only the trailing shards the new bytes can reach.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"bwtmatch"
	"bwtmatch/internal/alphabet"
	"bwtmatch/internal/dna"
	"bwtmatch/internal/obs"
	"bwtmatch/internal/seqio"
)

func main() {
	genomeOut := flag.String("genome", "", "write a genome to this file")
	readsOut := flag.String("reads", "", "write simulated reads to this file")
	from := flag.String("from", "", "genome file to simulate reads from")
	format := flag.String("format", "", "fasta|fastq|lines (default: fasta for genomes, fastq for reads)")
	bases := flag.Int("bases", 1<<20, "total genome length")
	chromosomes := flag.Int("chromosomes", 1, "number of chromosomes to split the genome into")
	gc := flag.Float64("gc", 0.41, "GC content")
	markov := flag.Float64("markov", 0.15, "order-1 Markov bias")
	repeats := flag.Float64("repeats", 0.3, "repeat fraction")
	length := flag.Int("length", 100, "read length")
	count := flag.Int("count", 50, "read count")
	errRate := flag.Float64("error", 0.02, "per-base substitution rate")
	rc := flag.Bool("rc", false, "emit reverse-complement reads half the time")
	seed := flag.Int64("seed", 1, "generator seed")
	indexOut := flag.String("index", "", "with -genome: also build a search index and save it to this file")
	buildP := flag.Int("build-p", 1, "parallel workers for -index construction")
	shards := flag.Int("shards", 0, "with -index: build a sharded index with this many shards")
	shardSize := flag.Int("shard-size", 0, "with -index: build a sharded index with shards owning this many bases (overrides -shards)")
	maxPattern := flag.Int("max-pattern", bwtmatch.DefaultMaxPatternLen, "with -shards/-shard-size: longest pattern the sharded index answers")
	stream := flag.Bool("stream", false, "with -index -from: stream-build the sharded container in O(shard size) memory (requires -shard-size)")
	appendMode := flag.Bool("append", false, "append the sequences in -from to the existing sharded container at -index")
	relative := flag.Bool("relative", false, "with -index -from: build a delta-compressed relative index against -base")
	basePath := flag.String("base", "", "with -relative: saved monolithic index the tenant is expressed against")
	flag.Parse()
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	switch {
	case *genomeOut != "":
		if *chromosomes < 1 {
			fatal(fmt.Errorf("need at least one chromosome"))
		}
		recs := make([]seqio.Record, *chromosomes)
		per := *bases / *chromosomes
		for i := range recs {
			g, err := dna.Generate(dna.GenomeConfig{
				Length: per, GC: *gc, MarkovBias: *markov,
				RepeatFraction: *repeats, Seed: *seed + int64(i),
			})
			if err != nil {
				fatal(err)
			}
			recs[i] = seqio.Record{ID: fmt.Sprintf("chr%d", i+1), Seq: alphabet.Decode(g)}
		}
		if err := writeRecords(*genomeOut, recs, pick(*format, "fasta")); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d chromosome(s), %d bases total to %s\n",
			len(recs), per*len(recs), *genomeOut)
		if *indexOut != "" {
			refs := make([]bwtmatch.Reference, len(recs))
			for i, rec := range recs {
				refs[i] = bwtmatch.Reference{Name: rec.ID, Seq: rec.Seq}
			}
			if err := buildIndexFile(*indexOut, refs, true, *buildP, *shards, *shardSize, *maxPattern, time.Now()); err != nil {
				fatal(err)
			}
		}
	case *readsOut != "":
		if *from == "" {
			fatal(fmt.Errorf("-reads requires -from <genome file>"))
		}
		genome, err := readConcatenated(*from)
		if err != nil {
			fatal(err)
		}
		reads, err := dna.Simulate(genome, dna.ReadConfig{
			Length: *length, Count: *count, ErrorRate: *errRate,
			ReverseComplement: *rc, Seed: *seed,
		})
		if err != nil {
			fatal(err)
		}
		recs := make([]seqio.Record, len(reads))
		for i, r := range reads {
			strand := "+"
			if r.RC {
				strand = "-"
			}
			recs[i] = seqio.Record{
				ID:  fmt.Sprintf("read%d pos=%d errors=%d strand=%s", i, r.Pos, r.Errors, strand),
				Seq: alphabet.Decode(r.Seq),
			}
		}
		if err := writeRecords(*readsOut, recs, pick(*format, "fastq")); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d reads to %s\n", len(reads), *readsOut)
	case *appendMode:
		if *indexOut == "" || *from == "" {
			fatal(fmt.Errorf("-append requires -index <sharded container> and -from <sequence file>"))
		}
		// Geometry is the manifest's; only an explicit flag is forwarded
		// (OpenAppend rejects a mismatch rather than silently rebuilding
		// with different geometry).
		opts := []bwtmatch.Option{bwtmatch.WithBuildWorkers(*buildP)}
		if explicit["shard-size"] {
			opts = append(opts, bwtmatch.WithShardSize(*shardSize))
		}
		if explicit["max-pattern"] {
			opts = append(opts, bwtmatch.WithMaxPatternLen(*maxPattern))
		}
		start := time.Now()
		sb, err := bwtmatch.OpenAppend(*indexOut, opts...)
		if err != nil {
			fatal(err)
		}
		oldLen := sb.Len()
		st, err := streamInto(sb, *from)
		if err != nil {
			sb.Abort() // the stream error is the one to report
			fatal(err)
		}
		if err := sb.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("appended %d bases (%d record(s)) to %s: %d -> %d bases, %d of %d shard frames reused, in %v, peak RSS %d bytes\n",
			st.bases, st.records, *indexOut, oldLen, sb.Len(), sb.Appended(), sb.Shards(),
			time.Since(start).Round(time.Millisecond), obs.PeakRSS())
	case *indexOut != "" && *from != "":
		start := time.Now()
		if *relative {
			if *basePath == "" {
				fatal(fmt.Errorf("-relative requires -base <saved index>"))
			}
			if *stream || *shards > 0 || *shardSize > 0 {
				fatal(fmt.Errorf("-relative builds are monolithic; drop -stream/-shards/-shard-size"))
			}
			refs, named, err := loadSequences(*from)
			if err != nil {
				fatal(err)
			}
			if err := buildRelativeFile(*indexOut, *basePath, refs, named, *buildP, start); err != nil {
				fatal(err)
			}
			return
		}
		if *stream {
			if *shardSize < 1 {
				fatal(fmt.Errorf("-stream requires -shard-size (the shard count of -shards depends on the total length, which a stream does not know)"))
			}
			sb, err := bwtmatch.NewStreamBuilder(*indexOut,
				bwtmatch.WithShardSize(*shardSize),
				bwtmatch.WithMaxPatternLen(*maxPattern),
				bwtmatch.WithBuildWorkers(*buildP))
			if err != nil {
				fatal(err)
			}
			st, err := streamInto(sb, *from)
			if err != nil {
				sb.Abort() // the stream error is the one to report
				fatal(err)
			}
			if err := sb.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("stream-built sharded index (%d shards, %d bases, %d record(s)) from %s in %v, saved to %s, peak RSS %d bytes\n",
				sb.Shards(), sb.Len(), st.records, *from,
				time.Since(start).Round(time.Millisecond), *indexOut, obs.PeakRSS())
			return
		}
		refs, named, err := loadSequences(*from)
		if err != nil {
			fatal(err)
		}
		if err := buildIndexFile(*indexOut, refs, named, *buildP, *shards, *shardSize, *maxPattern, start); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// streamStats is what streamInto consumed from the input file.
type streamStats struct {
	bases   int64
	records int
}

// streamInto feeds the sequence file at src into sb chunk by chunk,
// sanitizing each chunk the way readConcatenated sanitizes whole
// records (Sanitize is per-byte, so the results agree). FASTA/FASTQ
// records become named references; line-oriented inputs carry no names,
// so the index gets no reference table — matching the in-memory paths.
func streamInto(sb *bwtmatch.StreamBuilder, src string) (streamStats, error) {
	var st streamStats
	f, err := os.Open(src)
	if err != nil {
		return st, err
	}
	defer f.Close() // read-only handle; the Close error is inert
	cr := seqio.NewChunkReader(f)
	format, err := cr.Format()
	if err == io.EOF {
		return st, fmt.Errorf("%s is empty", src)
	}
	if err != nil {
		return st, err
	}
	named := format != "lines"
	for {
		ch, err := cr.Next()
		if err == io.EOF {
			return st, nil
		}
		if err != nil {
			return st, err
		}
		if ch.First {
			st.records++
			if named {
				sb.StartRef(ch.ID)
			}
		}
		clean, _ := alphabet.Sanitize(ch.Seq)
		n, err := sb.Write(clean)
		st.bases += int64(n)
		if err != nil {
			return st, err
		}
	}
}

// loadSequences reads a whole sequence file into reference records,
// sanitized for indexing. named reports whether the input format
// carries sequence names (FASTA/FASTQ headers); line-oriented inputs do
// not, and build without a reference table.
func loadSequences(path string) ([]bwtmatch.Reference, bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false, err
	}
	defer f.Close() // read-only handle; the Close error is inert
	cr := seqio.NewChunkReader(f)
	format, err := cr.Format()
	if err == io.EOF {
		return nil, false, fmt.Errorf("%s is empty", path)
	}
	if err != nil {
		return nil, false, err
	}
	var refs []bwtmatch.Reference
	for {
		ch, err := cr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, false, err
		}
		clean, _ := alphabet.Sanitize(ch.Seq)
		if ch.First {
			refs = append(refs, bwtmatch.Reference{Name: ch.ID, Seq: clean})
		} else {
			last := &refs[len(refs)-1]
			last.Seq = append(last.Seq, clean...)
		}
	}
	return refs, format != "lines", nil
}

// buildIndexFile builds and saves an in-memory index over the loaded
// sequences: sharded when a shard geometry flag is given, monolithic
// otherwise. Unnamed inputs are concatenated without a reference table.
func buildIndexFile(path string, refs []bwtmatch.Reference, named bool, buildP, shards, shardSize, maxPattern int, start time.Time) error {
	if !named {
		var seq []byte
		for _, r := range refs {
			seq = append(seq, r.Seq...)
		}
		refs = nil
		if shards > 0 || shardSize > 0 {
			idx, err := bwtmatch.NewSharded(seq, shardOpts(buildP, shards, shardSize, maxPattern)...)
			if err != nil {
				return err
			}
			return saveSharded(idx, path, start)
		}
		idx, err := bwtmatch.New(seq, bwtmatch.WithBuildWorkers(buildP))
		if err != nil {
			return err
		}
		return saveMono(idx, path, buildP, start)
	}
	if shards > 0 || shardSize > 0 {
		idx, err := bwtmatch.NewShardedRefs(refs, shardOpts(buildP, shards, shardSize, maxPattern)...)
		if err != nil {
			return err
		}
		return saveSharded(idx, path, start)
	}
	idx, err := bwtmatch.NewRefs(refs, bwtmatch.WithBuildWorkers(buildP))
	if err != nil {
		return err
	}
	return saveMono(idx, path, buildP, start)
}

// buildRelativeFile loads the base index, builds a delta-compressed
// tenant index over the loaded sequences, and saves the relative
// container with basePath recorded as the hint future loads resolve.
func buildRelativeFile(path, basePath string, refs []bwtmatch.Reference, named bool, buildP int, start time.Time) error {
	base, err := bwtmatch.LoadFile(basePath)
	if err != nil {
		return fmt.Errorf("loading base %s: %w", basePath, err)
	}
	opts := []bwtmatch.Option{bwtmatch.WithBuildWorkers(buildP)}
	var rx *bwtmatch.RelativeIndex
	if named {
		rx, err = bwtmatch.NewRelativeRefs(base, refs, opts...)
	} else {
		var seq []byte
		for _, r := range refs {
			seq = append(seq, r.Seq...)
		}
		rx, err = bwtmatch.NewRelative(base, seq, opts...)
	}
	if err != nil {
		return fmt.Errorf("relative build against %s: %w", basePath, err)
	}
	rx.SetBasePath(basePath)
	if err := rx.SaveFile(path); err != nil {
		return err
	}
	fmt.Printf("built relative index against %s (%d base-index bytes shared) in %v, saved to %s (%d delta bytes)\n",
		basePath, base.SizeBytes()+base.Len(),
		time.Since(start).Round(time.Millisecond), path, rx.DeltaBytes())
	return nil
}

func shardOpts(buildP, shards, shardSize, maxPattern int) []bwtmatch.Option {
	opts := []bwtmatch.Option{
		bwtmatch.WithBuildWorkers(buildP),
		bwtmatch.WithMaxPatternLen(maxPattern),
	}
	if shardSize > 0 {
		opts = append(opts, bwtmatch.WithShardSize(shardSize))
	} else {
		opts = append(opts, bwtmatch.WithShards(shards))
	}
	return opts
}

func saveSharded(idx *bwtmatch.ShardedIndex, path string, start time.Time) error {
	if err := idx.SaveFile(path); err != nil {
		return err
	}
	fmt.Printf("built sharded index (%d shards, max pattern %d) in %v, saved to %s (%d bytes)\n",
		idx.Shards(), idx.MaxPatternLen(),
		time.Since(start).Round(time.Millisecond), path, idx.SizeBytes())
	return nil
}

func saveMono(idx *bwtmatch.Index, path string, buildP int, start time.Time) error {
	if err := idx.SaveFile(path); err != nil {
		return err
	}
	fmt.Printf("built index (%d workers) in %v, saved to %s (%d bytes)\n",
		buildP, time.Since(start).Round(time.Millisecond), path, idx.SizeBytes())
	return nil
}

func pick(format, def string) string {
	if format == "" {
		return def
	}
	return format
}

func readConcatenated(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, err := seqio.NewReader(f).ReadAll()
	if err != nil {
		return nil, err
	}
	var seq []byte
	for _, rec := range recs {
		clean, _ := alphabet.Sanitize(rec.Seq)
		ranks, err := alphabet.Encode(clean)
		if err != nil {
			return nil, err
		}
		seq = append(seq, ranks...)
	}
	return seq, nil
}

func writeRecords(path string, recs []seqio.Record, format string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	// Close errors are write errors on this path (buffered data hits
	// the disk at Close); merge them into the return value.
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	switch format {
	case "fasta":
		return seqio.WriteFasta(f, recs)
	case "fastq":
		return seqio.WriteFastq(f, recs)
	case "lines":
		for _, rec := range recs {
			if _, err := f.Write(append(rec.Seq, '\n')); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown format %q", format)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kmgen:", err)
	os.Exit(1)
}
