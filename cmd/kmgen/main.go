// Command kmgen generates synthetic genomes and simulated reads for use
// with kmsearch.
//
// Output formats: fasta (default for genomes), fastq (default for
// reads), or lines (one sequence per line).
//
//	kmgen -genome g.fa -bases 1048576 -repeats 0.4 -chromosomes 2
//	kmgen -reads r.fq -from g.fa -length 100 -count 50 -error 0.02
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bwtmatch"
	"bwtmatch/internal/alphabet"
	"bwtmatch/internal/dna"
	"bwtmatch/internal/seqio"
)

func main() {
	genomeOut := flag.String("genome", "", "write a genome to this file")
	readsOut := flag.String("reads", "", "write simulated reads to this file")
	from := flag.String("from", "", "genome file to simulate reads from")
	format := flag.String("format", "", "fasta|fastq|lines (default: fasta for genomes, fastq for reads)")
	bases := flag.Int("bases", 1<<20, "total genome length")
	chromosomes := flag.Int("chromosomes", 1, "number of chromosomes to split the genome into")
	gc := flag.Float64("gc", 0.41, "GC content")
	markov := flag.Float64("markov", 0.15, "order-1 Markov bias")
	repeats := flag.Float64("repeats", 0.3, "repeat fraction")
	length := flag.Int("length", 100, "read length")
	count := flag.Int("count", 50, "read count")
	errRate := flag.Float64("error", 0.02, "per-base substitution rate")
	rc := flag.Bool("rc", false, "emit reverse-complement reads half the time")
	seed := flag.Int64("seed", 1, "generator seed")
	indexOut := flag.String("index", "", "with -genome: also build a search index and save it to this file")
	buildP := flag.Int("build-p", 1, "parallel workers for -index construction")
	shards := flag.Int("shards", 0, "with -index: build a sharded index with this many shards")
	shardSize := flag.Int("shard-size", 0, "with -index: build a sharded index with shards owning this many bases (overrides -shards)")
	maxPattern := flag.Int("max-pattern", bwtmatch.DefaultMaxPatternLen, "with -shards/-shard-size: longest pattern the sharded index answers")
	flag.Parse()

	switch {
	case *genomeOut != "":
		if *chromosomes < 1 {
			fatal(fmt.Errorf("need at least one chromosome"))
		}
		recs := make([]seqio.Record, *chromosomes)
		per := *bases / *chromosomes
		for i := range recs {
			g, err := dna.Generate(dna.GenomeConfig{
				Length: per, GC: *gc, MarkovBias: *markov,
				RepeatFraction: *repeats, Seed: *seed + int64(i),
			})
			if err != nil {
				fatal(err)
			}
			recs[i] = seqio.Record{ID: fmt.Sprintf("chr%d", i+1), Seq: alphabet.Decode(g)}
		}
		if err := writeRecords(*genomeOut, recs, pick(*format, "fasta")); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d chromosome(s), %d bases total to %s\n",
			len(recs), per*len(recs), *genomeOut)
		if *indexOut != "" {
			refs := make([]bwtmatch.Reference, len(recs))
			for i, rec := range recs {
				refs[i] = bwtmatch.Reference{Name: rec.ID, Seq: rec.Seq}
			}
			start := time.Now()
			if *shards > 0 || *shardSize > 0 {
				opts := []bwtmatch.Option{
					bwtmatch.WithBuildWorkers(*buildP),
					bwtmatch.WithMaxPatternLen(*maxPattern),
				}
				if *shardSize > 0 {
					opts = append(opts, bwtmatch.WithShardSize(*shardSize))
				} else {
					opts = append(opts, bwtmatch.WithShards(*shards))
				}
				idx, err := bwtmatch.NewShardedRefs(refs, opts...)
				if err != nil {
					fatal(err)
				}
				if err := idx.SaveFile(*indexOut); err != nil {
					fatal(err)
				}
				fmt.Printf("built sharded index (%d shards, max pattern %d) in %v, saved to %s (%d bytes)\n",
					idx.Shards(), idx.MaxPatternLen(),
					time.Since(start).Round(time.Millisecond), *indexOut, idx.SizeBytes())
			} else {
				idx, err := bwtmatch.NewRefs(refs, bwtmatch.WithBuildWorkers(*buildP))
				if err != nil {
					fatal(err)
				}
				if err := idx.SaveFile(*indexOut); err != nil {
					fatal(err)
				}
				fmt.Printf("built index (%d workers) in %v, saved to %s (%d bytes)\n",
					*buildP, time.Since(start).Round(time.Millisecond), *indexOut, idx.SizeBytes())
			}
		}
	case *readsOut != "":
		if *from == "" {
			fatal(fmt.Errorf("-reads requires -from <genome file>"))
		}
		genome, err := readConcatenated(*from)
		if err != nil {
			fatal(err)
		}
		reads, err := dna.Simulate(genome, dna.ReadConfig{
			Length: *length, Count: *count, ErrorRate: *errRate,
			ReverseComplement: *rc, Seed: *seed,
		})
		if err != nil {
			fatal(err)
		}
		recs := make([]seqio.Record, len(reads))
		for i, r := range reads {
			strand := "+"
			if r.RC {
				strand = "-"
			}
			recs[i] = seqio.Record{
				ID:  fmt.Sprintf("read%d pos=%d errors=%d strand=%s", i, r.Pos, r.Errors, strand),
				Seq: alphabet.Decode(r.Seq),
			}
		}
		if err := writeRecords(*readsOut, recs, pick(*format, "fastq")); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d reads to %s\n", len(reads), *readsOut)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func pick(format, def string) string {
	if format == "" {
		return def
	}
	return format
}

func readConcatenated(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, err := seqio.NewReader(f).ReadAll()
	if err != nil {
		return nil, err
	}
	var seq []byte
	for _, rec := range recs {
		clean, _ := alphabet.Sanitize(rec.Seq)
		ranks, err := alphabet.Encode(clean)
		if err != nil {
			return nil, err
		}
		seq = append(seq, ranks...)
	}
	return seq, nil
}

func writeRecords(path string, recs []seqio.Record, format string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	// Close errors are write errors on this path (buffered data hits
	// the disk at Close); merge them into the return value.
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	switch format {
	case "fasta":
		return seqio.WriteFasta(f, recs)
	case "fastq":
		return seqio.WriteFastq(f, recs)
	case "lines":
		for _, rec := range recs {
			if _, err := f.Write(append(rec.Seq, '\n')); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown format %q", format)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kmgen:", err)
	os.Exit(1)
}
