// Command kmbench reproduces the paper's evaluation: it regenerates every
// table and figure of Chen & Wu (ICDE 2017) on the synthetic corpus.
//
// Usage:
//
//	kmbench -exp fig11a            # one experiment
//	kmbench -exp all -scale 8      # everything, 2 MiB largest genome
//	kmbench -json -out BENCH.json  # machine-readable search grid
//
// Experiments: table1, table2, fig11a, fig11b, fig12, fig13, ablation.
// See EXPERIMENTS.md for the mapping to the paper's artifacts.
//
// -json switches to the telemetry pipeline: instead of the paper's text
// tables it emits one kmbench/v1 JSON document (ns/read, work counters,
// peak RSS) suitable for committing as a BENCH_*.json trajectory file.
// -trace additionally writes a Chrome trace-event timeline (load it in
// chrome://tracing or https://ui.perfetto.dev).
//
// -json -tenants N runs the multi-tenant serving experiment instead of
// the standard grid: N variants of one base genome at -divergence
// percent substitutions, each served standalone (default) or as a
// relative delta against the shared base (-tenant-mode relative). The
// report's "tenant" block carries the byte accounting and — in relative
// mode — a result-equivalence verdict against standalone builds:
//
//	kmbench -json -tenants 8 -tenant-mode mono     -out BENCH_mono.json
//	kmbench -json -tenants 8 -tenant-mode relative -out BENCH_relative.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"bwtmatch/internal/bench"
	"bwtmatch/internal/obs"
)

func main() {
	exp := flag.String("exp", "all", "experiment id or 'all': "+strings.Join(bench.Experiments(), ", "))
	scale := flag.Int("scale", 8, "divide genome sizes by this factor (1 = 16 MiB largest)")
	reads := flag.Int("reads", 50, "reads per configuration")
	seed := flag.Int64("seed", 42, "workload seed")
	jsonMode := flag.Bool("json", false, "emit the machine-readable search grid instead of text experiments")
	out := flag.String("out", "", "with -json: write the report here instead of stdout")
	rounds := flag.Int("rounds", 5, "with -json: timing rounds per cell (best kept)")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON timeline to this file")
	tenants := flag.Int("tenants", 0, "with -json: run the multi-tenant experiment with this many tenants")
	divergence := flag.Float64("divergence", 1.0, "with -tenants: percent of bases substituted per tenant")
	tenantMode := flag.String("tenant-mode", "mono", "with -tenants: 'mono' (standalone per tenant) or 'relative' (shared base + deltas)")
	flag.Parse()

	cfg := bench.Config{Scale: *scale, Reads: *reads, Seed: *seed}
	var tr *obs.Recorder
	if *tracePath != "" {
		tr = obs.NewRecorder()
	}

	tc := tenantConfig{tenants: *tenants, divergence: *divergence, mode: *tenantMode}
	if err := run(cfg, *exp, *jsonMode, *out, *rounds, tc, tr); err != nil {
		fmt.Fprintf(os.Stderr, "kmbench: %v\n", err)
		os.Exit(1)
	}
	if tr != nil {
		if err := writeTrace(*tracePath, tr); err != nil {
			fmt.Fprintf(os.Stderr, "kmbench: %v\n", err)
			os.Exit(1)
		}
	}
}

// tenantConfig bundles the -tenants flags.
type tenantConfig struct {
	tenants    int
	divergence float64
	mode       string
}

func run(cfg bench.Config, exp string, jsonMode bool, out string, rounds int, tc tenantConfig, tr *obs.Recorder) (err error) {
	if tc.tenants > 0 && !jsonMode {
		return fmt.Errorf("-tenants requires -json")
	}
	if jsonMode {
		var w io.Writer = os.Stdout
		if out != "" {
			f, ferr := os.Create(out)
			if ferr != nil {
				return ferr
			}
			// The report lands on disk at Close; merge its error into
			// the return value instead of deferring it away.
			defer func() {
				if cerr := f.Close(); cerr != nil && err == nil {
					err = cerr
				}
			}()
			w = f
		}
		// The Recorder interface value must stay nil when no -trace was
		// asked for, so the benchmark runs the zero-cost path.
		var rec obs.Tracer
		if tr != nil {
			rec = tr
		}
		if tc.tenants > 0 {
			var relative bool
			switch tc.mode {
			case "relative":
				relative = true
			case "mono":
			default:
				return fmt.Errorf("unknown -tenant-mode %q (want mono or relative)", tc.mode)
			}
			return bench.RunTenants(w, cfg, tc.tenants, tc.divergence, relative, rounds, rec)
		}
		if tr != nil {
			return bench.RunJSON(w, cfg, rounds, tr)
		}
		return bench.RunJSON(w, cfg, rounds, nil)
	}
	ids := []string{exp}
	if exp == "all" {
		ids = bench.Experiments()
	}
	for i, id := range ids {
		if i > 0 {
			fmt.Println()
		}
		if tr != nil {
			tr.Begin(id)
		}
		err := bench.Run(id, os.Stdout, cfg)
		if tr != nil {
			tr.End()
		}
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
	}
	return nil
}

func writeTrace(path string, tr *obs.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChromeTrace(f); err != nil {
		f.Close() //kmvet:ignore closeerr trace write already failed; that error is the one to report
		return err
	}
	return f.Close()
}
