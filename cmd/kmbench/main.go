// Command kmbench reproduces the paper's evaluation: it regenerates every
// table and figure of Chen & Wu (ICDE 2017) on the synthetic corpus.
//
// Usage:
//
//	kmbench -exp fig11a            # one experiment
//	kmbench -exp all -scale 8      # everything, 2 MiB largest genome
//
// Experiments: table1, table2, fig11a, fig11b, fig12, fig13, ablation.
// See EXPERIMENTS.md for the mapping to the paper's artifacts.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"bwtmatch/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment id or 'all': "+strings.Join(bench.Experiments(), ", "))
	scale := flag.Int("scale", 8, "divide genome sizes by this factor (1 = 16 MiB largest)")
	reads := flag.Int("reads", 50, "reads per configuration")
	seed := flag.Int64("seed", 42, "workload seed")
	flag.Parse()

	cfg := bench.Config{Scale: *scale, Reads: *reads, Seed: *seed}
	ids := []string{*exp}
	if *exp == "all" {
		ids = bench.Experiments()
	}
	for i, id := range ids {
		if i > 0 {
			fmt.Println()
		}
		if err := bench.Run(id, os.Stdout, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "kmbench: %s: %v\n", id, err)
			os.Exit(1)
		}
	}
}
