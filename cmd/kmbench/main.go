// Command kmbench reproduces the paper's evaluation: it regenerates every
// table and figure of Chen & Wu (ICDE 2017) on the synthetic corpus.
//
// Usage:
//
//	kmbench -exp fig11a            # one experiment
//	kmbench -exp all -scale 8      # everything, 2 MiB largest genome
//	kmbench -json -out BENCH.json  # machine-readable search grid
//
// Experiments: table1, table2, fig11a, fig11b, fig12, fig13, ablation.
// See EXPERIMENTS.md for the mapping to the paper's artifacts.
//
// -json switches to the telemetry pipeline: instead of the paper's text
// tables it emits one kmbench/v1 JSON document (ns/read, work counters,
// peak RSS) suitable for committing as a BENCH_*.json trajectory file.
// -trace additionally writes a Chrome trace-event timeline (load it in
// chrome://tracing or https://ui.perfetto.dev).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"bwtmatch/internal/bench"
	"bwtmatch/internal/obs"
)

func main() {
	exp := flag.String("exp", "all", "experiment id or 'all': "+strings.Join(bench.Experiments(), ", "))
	scale := flag.Int("scale", 8, "divide genome sizes by this factor (1 = 16 MiB largest)")
	reads := flag.Int("reads", 50, "reads per configuration")
	seed := flag.Int64("seed", 42, "workload seed")
	jsonMode := flag.Bool("json", false, "emit the machine-readable search grid instead of text experiments")
	out := flag.String("out", "", "with -json: write the report here instead of stdout")
	rounds := flag.Int("rounds", 5, "with -json: timing rounds per cell (best kept)")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON timeline to this file")
	flag.Parse()

	cfg := bench.Config{Scale: *scale, Reads: *reads, Seed: *seed}
	var tr *obs.Recorder
	if *tracePath != "" {
		tr = obs.NewRecorder()
	}

	if err := run(cfg, *exp, *jsonMode, *out, *rounds, tr); err != nil {
		fmt.Fprintf(os.Stderr, "kmbench: %v\n", err)
		os.Exit(1)
	}
	if tr != nil {
		if err := writeTrace(*tracePath, tr); err != nil {
			fmt.Fprintf(os.Stderr, "kmbench: %v\n", err)
			os.Exit(1)
		}
	}
}

func run(cfg bench.Config, exp string, jsonMode bool, out string, rounds int, tr *obs.Recorder) (err error) {
	if jsonMode {
		var w io.Writer = os.Stdout
		if out != "" {
			f, ferr := os.Create(out)
			if ferr != nil {
				return ferr
			}
			// The report lands on disk at Close; merge its error into
			// the return value instead of deferring it away.
			defer func() {
				if cerr := f.Close(); cerr != nil && err == nil {
					err = cerr
				}
			}()
			w = f
		}
		// The Recorder interface value must stay nil when no -trace was
		// asked for, so the benchmark runs the zero-cost path.
		if tr != nil {
			return bench.RunJSON(w, cfg, rounds, tr)
		}
		return bench.RunJSON(w, cfg, rounds, nil)
	}
	ids := []string{exp}
	if exp == "all" {
		ids = bench.Experiments()
	}
	for i, id := range ids {
		if i > 0 {
			fmt.Println()
		}
		if tr != nil {
			tr.Begin(id)
		}
		err := bench.Run(id, os.Stdout, cfg)
		if tr != nil {
			tr.End()
		}
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
	}
	return nil
}

func writeTrace(path string, tr *obs.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChromeTrace(f); err != nil {
		f.Close() //kmvet:ignore closeerr trace write already failed; that error is the one to report
		return err
	}
	return f.Close()
}
