// Command kmvet runs the repo-specific static analyzer over the module:
// four rules (wrapformat, copylocks, ctxsearch, nopanic — see `kmvet
// -rules` and DESIGN.md §6) that machine-enforce the correctness
// disciplines of the index load paths and the server's concurrent
// state. It prints one file:line: [rule] message per finding and exits
// 1 when any fire, so `make lint` can gate on it.
//
//	kmvet            # analyze the module containing the working directory
//	kmvet -root DIR  # analyze the module rooted at DIR
//	kmvet -rules     # print the rule catalogue and exit
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"bwtmatch/internal/analyze"
)

func main() {
	root := flag.String("root", "", "module root (default: nearest go.mod above the working directory)")
	rules := flag.Bool("rules", false, "print the rule catalogue and exit")
	flag.Parse()

	if *rules {
		for _, r := range analyze.Rules() {
			fmt.Printf("%-11s %s\n", r.Name, r.Doc)
		}
		return
	}

	dir := *root
	if dir == "" {
		var err error
		dir, err = findModuleRoot()
		if err != nil {
			fatal(err)
		}
	}
	a, err := analyze.New(dir)
	if err != nil {
		fatal(err)
	}
	findings, err := a.CheckModule()
	if err != nil {
		fatal(err)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "kmvet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("kmvet: no go.mod above the working directory")
		}
		dir = parent
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kmvet:", err)
	os.Exit(2)
}
