// Command kmvet runs the repo-specific static analyzer over the module:
// ten rules (see `kmvet -rules` and DESIGN.md §6) that machine-enforce
// the correctness disciplines of the index load paths and the server's
// concurrent state, including the call-graph-aware concurrency rules
// (lockheld, reachpanic, goroutinelifecycle). It prints one
// file:line: [rule] message per finding and exits 1 when any fire, so
// `make lint` can gate on it.
//
//	kmvet                    # analyze the module containing the working directory
//	kmvet -root DIR          # analyze the module rooted at DIR
//	kmvet -rules             # print the rule catalogue and exit
//	kmvet -json              # emit a machine-readable findings report
//	kmvet -github            # emit ::error workflow annotations per finding
//	kmvet -enable a,b        # run only the named rules
//	kmvet -disable c,d       # run all but the named rules
//
// Suppressions use `//kmvet:ignore <rule> <reason>` on (or directly
// above) the offending line; stale suppressions are themselves errors
// (rule unusedignore).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"bwtmatch/internal/analyze"
)

func main() {
	root := flag.String("root", "", "module root (default: nearest go.mod above the working directory)")
	rules := flag.Bool("rules", false, "print the rule catalogue and exit")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON report on stdout")
	github := flag.Bool("github", false, "also emit GitHub Actions ::error annotations per finding")
	enable := flag.String("enable", "", "comma-separated rules to run (default: all)")
	disable := flag.String("disable", "", "comma-separated rules to skip")
	flag.Parse()

	if *rules {
		for _, r := range analyze.Rules() {
			fmt.Printf("%-18s %s\n", r.Name, r.Doc)
		}
		return
	}

	selected, err := selectRules(*enable, *disable)
	if err != nil {
		fatal(err)
	}

	dir := *root
	if dir == "" {
		dir, err = findModuleRoot()
		if err != nil {
			fatal(err)
		}
	}
	a, err := analyze.New(dir)
	if err != nil {
		fatal(err)
	}
	findings, err := a.CheckModuleRules(selected)
	if err != nil {
		fatal(err)
	}

	ran := selected
	if len(ran) == 0 {
		ran = analyze.RuleNames()
	}
	if *jsonOut {
		if err := analyze.WriteJSON(os.Stdout, a.ModulePath(), ran, findings); err != nil {
			fatal(err)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if *github {
		for _, f := range findings {
			// GitHub Actions workflow-command annotation format.
			fmt.Printf("::error file=%s,line=%d,title=kmvet %s::%s\n",
				f.Pos.Filename, f.Pos.Line, f.Rule, f.Message)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "kmvet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// selectRules resolves -enable/-disable into the rule-name list handed
// to the analyzer (nil means all), rejecting unknown names so a typo
// can't silently disable a gate.
func selectRules(enable, disable string) ([]string, error) {
	known := make(map[string]bool)
	for _, n := range analyze.RuleNames() {
		known[n] = true
	}
	parse := func(s, flagName string) ([]string, error) {
		if s == "" {
			return nil, nil
		}
		var out []string
		for _, n := range strings.Split(s, ",") {
			n = strings.TrimSpace(n)
			if n == "" {
				continue
			}
			if !known[n] {
				return nil, fmt.Errorf("-%s: unknown rule %q (see kmvet -rules)", flagName, n)
			}
			out = append(out, n)
		}
		return out, nil
	}
	on, err := parse(enable, "enable")
	if err != nil {
		return nil, err
	}
	off, err := parse(disable, "disable")
	if err != nil {
		return nil, err
	}
	if on != nil && off != nil {
		return nil, fmt.Errorf("-enable and -disable are mutually exclusive")
	}
	if on != nil {
		return on, nil
	}
	if off != nil {
		skip := make(map[string]bool)
		for _, n := range off {
			skip[n] = true
		}
		var out []string
		for _, n := range analyze.RuleNames() {
			if !skip[n] {
				out = append(out, n)
			}
		}
		return out, nil
	}
	return nil, nil
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("kmvet: no go.mod above the working directory")
		}
		dir = parent
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kmvet:", err)
	os.Exit(2)
}
