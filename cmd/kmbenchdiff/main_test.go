package main

import (
	"path/filepath"
	"strings"
	"testing"
)

func td(name string) string { return filepath.Join("testdata", name) }

// TestDiffPasses: an improved report (with an extra k=3 cell the old
// grid lacked) must pass the 10% gate and report the new cell without
// gating on it.
func TestDiffPasses(t *testing.T) {
	var out strings.Builder
	if err := run(&out, td("old.json"), td("new_ok.json"), 10); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	s := out.String()
	for _, want := range []string{"ok: 2 cells compared", "(new cell)", "peak RSS"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

// TestDiffFailsOnRegression: a 20% ns/read regression on one cell must
// make run return an error naming the cell.
func TestDiffFailsOnRegression(t *testing.T) {
	var out strings.Builder
	err := run(&out, td("old.json"), td("new_regressed.json"), 10)
	if err == nil {
		t.Fatalf("expected regression error, got nil\noutput:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") || !strings.Contains(out.String(), "A()") {
		t.Errorf("output should flag the A() cell:\n%s", out.String())
	}
}

// TestDiffThresholdTunable: at -threshold 25 the same regressed report
// passes (the regression is 20%).
func TestDiffThresholdTunable(t *testing.T) {
	var out strings.Builder
	if err := run(&out, td("old.json"), td("new_regressed.json"), 25); err != nil {
		t.Fatalf("run at threshold 25: %v\noutput:\n%s", err, out.String())
	}
}

// TestDiffRejectsBadInput pins the failure modes: missing file, wrong
// schema, empty results.
func TestDiffRejectsBadInput(t *testing.T) {
	var out strings.Builder
	if err := run(&out, td("nope.json"), td("new_ok.json"), 10); err == nil {
		t.Error("missing old file: want error")
	}
	if err := run(&out, td("old.json"), td("nope.json"), 10); err == nil {
		t.Error("missing new file: want error")
	}
}
