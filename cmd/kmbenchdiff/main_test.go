package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func td(name string) string { return filepath.Join("testdata", name) }

// TestDiffPasses: an improved report (with an extra k=3 cell the old
// grid lacked) must pass the 10% gate and report the new cell without
// gating on it.
func TestDiffPasses(t *testing.T) {
	var out strings.Builder
	if err := run(&out, td("old.json"), td("new_ok.json"), 10); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	s := out.String()
	for _, want := range []string{
		"ok: 2 cells compared", "(new cell)", "peak RSS",
		"build ", "build phases", "stream build",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

// TestDiffFailsOnRegression: a 20% ns/read regression on one cell must
// make run return an error naming the cell.
func TestDiffFailsOnRegression(t *testing.T) {
	var out strings.Builder
	err := run(&out, td("old.json"), td("new_regressed.json"), 10)
	if err == nil {
		t.Fatalf("expected regression error, got nil\noutput:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") || !strings.Contains(out.String(), "A()") {
		t.Errorf("output should flag the A() cell:\n%s", out.String())
	}
}

// TestDiffThresholdTunable: at -threshold 25 the same regressed report
// passes (the regression is 20%).
func TestDiffThresholdTunable(t *testing.T) {
	var out strings.Builder
	if err := run(&out, td("old.json"), td("new_regressed.json"), 25); err != nil {
		t.Fatalf("run at threshold 25: %v\noutput:\n%s", err, out.String())
	}
}

// TestDiffRejectsBadInput pins the failure modes: missing file, wrong
// schema, empty results.
func TestDiffRejectsBadInput(t *testing.T) {
	var out strings.Builder
	if err := run(&out, td("nope.json"), td("new_ok.json"), 10); err == nil {
		t.Error("missing old file: want error")
	}
	if err := run(&out, td("old.json"), td("nope.json"), 10); err == nil {
		t.Error("missing new file: want error")
	}
}

// TestDiffFailsOnLocateRegression: a cell whose total ns/read held
// steady but whose locate phase doubled must still fail the gate.
func TestDiffFailsOnLocateRegression(t *testing.T) {
	var out strings.Builder
	err := run(&out, td("old.json"), td("new_locate_regressed.json"), 10)
	if err == nil {
		t.Fatalf("expected locate regression error, got nil\noutput:\n%s", out.String())
	}
	s := out.String()
	if !strings.Contains(s, "locate ns/read") || !strings.Contains(s, "A()") {
		t.Errorf("output should name the locate regression on A():\n%s", s)
	}
	if !strings.Contains(s, "peak RSS") {
		t.Errorf("summary line should carry the peak-RSS delta:\n%s", s)
	}
}

// TestDiffFailsOnBuildRegression: a report whose search cells held
// steady but whose index construction slowed 40% must fail the gate.
func TestDiffFailsOnBuildRegression(t *testing.T) {
	var out strings.Builder
	err := run(&out, td("old.json"), td("new_build_regressed.json"), 10)
	if err == nil {
		t.Fatalf("expected build regression error, got nil\noutput:\n%s", out.String())
	}
	s := out.String()
	if !strings.Contains(s, "REGRESSION") || !strings.Contains(s, "build:") {
		t.Errorf("output should flag the build regression:\n%s", s)
	}
}

// TestDiffFailsOnRSSRegression: search cells and build held steady but
// peak RSS grew 24% (+27 MB) — past the threshold AND the 1 MiB
// absolute floor, so the gate must fire.
func TestDiffFailsOnRSSRegression(t *testing.T) {
	var out strings.Builder
	err := run(&out, td("old.json"), td("new_rss_regressed.json"), 10)
	if err == nil {
		t.Fatalf("expected RSS regression error, got nil\noutput:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "peak RSS:") {
		t.Errorf("output should flag the peak-RSS regression:\n%s", out.String())
	}
}

// TestDiffRSSFloorSuppressesSmallAbsoluteGrowth: a large percentage on
// a tiny absolute RSS (500 KiB -> 800 KiB, +60% but under the 1 MiB
// floor) must not gate.
func TestDiffRSSFloorSuppressesSmallAbsoluteGrowth(t *testing.T) {
	dir := t.TempDir()
	mk := func(name string, rss int64) string {
		path := filepath.Join(dir, name)
		data := fmt.Sprintf(`{"schema":"kmbench/v1","scale":8,"reads":50,"seed":42,"peak_rss_bytes":%d,"results":[
			{"experiment":"search","method":"A()","k":2,"ns_per_read":300000,"matches":57}]}`, rss)
		if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	var out strings.Builder
	if err := run(&out, mk("old.json", 512_000), mk("new.json", 819_200), 10); err != nil {
		t.Fatalf("RSS gate fired below the absolute floor: %v\noutput:\n%s", err, out.String())
	}
}

// TestDiffSkipsBuildGateWithoutOldValue: reports predating build_ns
// (old value 0) must not be gated on it.
func TestDiffSkipsBuildGateWithoutOldValue(t *testing.T) {
	old := filepath.Join(t.TempDir(), "old_nobuild.json")
	data := `{"schema":"kmbench/v1","scale":8,"reads":50,"seed":42,"results":[
		{"experiment":"search","method":"A()","k":2,"ns_per_read":300000,"matches":57},
		{"experiment":"search","method":"BWT","k":2,"ns_per_read":240000,"matches":57}]}`
	if err := os.WriteFile(old, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run(&out, old, td("new_build_regressed.json"), 10); err != nil {
		t.Fatalf("build gate fired against a zero old value: %v\noutput:\n%s", err, out.String())
	}
}

// TestDiffSkipsLocateGateWithoutOldValue: reports predating
// locate_ns_per_read (old value 0) must not be gated on it, however
// large the new value looks.
func TestDiffSkipsLocateGateWithoutOldValue(t *testing.T) {
	old := filepath.Join(t.TempDir(), "old_nolocate.json")
	data := `{"schema":"kmbench/v1","scale":8,"reads":50,"seed":42,"results":[
		{"experiment":"search","method":"A()","k":2,"ns_per_read":300000,"matches":57},
		{"experiment":"search","method":"BWT","k":2,"ns_per_read":240000,"matches":57}]}`
	if err := os.WriteFile(old, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run(&out, old, td("new_locate_regressed.json"), 10); err != nil {
		t.Fatalf("locate gate fired against a zero old value: %v\noutput:\n%s", err, out.String())
	}
}
