// Command kmbenchdiff compares two kmbench -json reports and flags
// performance regressions, so BENCH_*.json trajectory files can gate a
// change instead of only documenting it.
//
// Usage:
//
//	kmbenchdiff old.json new.json              # report, exit 1 on regression
//	kmbenchdiff -threshold 5 old.json new.json # stricter gate (percent)
//
// Cells are matched by (experiment, method, k). For every matched cell
// it prints the ns/read delta plus the work-counter deltas that explain
// it; cells present in only one report are listed but never gate (the
// sweep grid is allowed to grow). Index construction time (build_ns)
// gates alongside the search cells when both reports carry it and the
// old build exceeds one millisecond; peak RSS gates when it grows past
// the threshold percent AND by more than 1 MiB absolute. The
// construction phase breakdown (sa/bwt/occ/pack) and the
// streaming-build figures are printed for diagnosis only. The exit
// status is non-zero when any gated quantity regressed by more than
// -threshold percent (default 10).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
)

// result mirrors the fields of bench.JSONResult that the diff consumes.
// It is declared locally so the tool can compare reports from any build,
// including ones predating fields like locate_ns_per_read.
type result struct {
	Experiment  string `json:"experiment"`
	Method      string `json:"method"`
	K           int    `json:"k"`
	NSPerRead   int64  `json:"ns_per_read"`
	LocateNS    int64  `json:"locate_ns_per_read"`
	Matches     int    `json:"matches"`
	MTreeLeaves int64  `json:"mtree_leaves"`
	MemoHits    int64  `json:"memo_hits"`
	StepCalls   int64  `json:"step_calls"`
}

type report struct {
	Schema        string   `json:"schema"`
	Scale         int      `json:"scale"`
	Reads         int      `json:"reads"`
	Seed          int64    `json:"seed"`
	BuildNS       int64    `json:"build_ns"`
	SANS          int64    `json:"sa_ns"`
	BWTNS         int64    `json:"bwt_ns"`
	OccNS         int64    `json:"occ_ns"`
	PackNS        int64    `json:"pack_ns"`
	StreamBuildNS int64    `json:"stream_build_ns"`
	StreamPeakRSS int64    `json:"stream_build_peak_rss"`
	PeakRSSBytes  int64    `json:"peak_rss_bytes"`
	Results       []result `json:"results"`
}

type cellKey struct {
	experiment, method string
	k                  int
}

// locateFloorNS is the smallest old locate ns/read the gate acts on.
const locateFloorNS = 1000

// buildFloorNS is the smallest old build_ns the construction gate acts
// on: sub-millisecond builds are dominated by allocator noise.
const buildFloorNS = 1_000_000

// rssFloorBytes is the smallest absolute peak-RSS growth the gate acts
// on: below 1 MiB a percentage is GC/allocator jitter, not a leak.
const rssFloorBytes = 1 << 20

func main() {
	threshold := flag.Float64("threshold", 10, "fail when ns/read regresses by more than this percent")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: kmbenchdiff [-threshold pct] old.json new.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(os.Stdout, flag.Arg(0), flag.Arg(1), *threshold); err != nil {
		fmt.Fprintf(os.Stderr, "kmbenchdiff: %v\n", err)
		os.Exit(1)
	}
}

func run(w io.Writer, oldPath, newPath string, threshold float64) error {
	oldRep, err := load(oldPath)
	if err != nil {
		return err
	}
	newRep, err := load(newPath)
	if err != nil {
		return err
	}
	if oldRep.Scale != newRep.Scale || oldRep.Reads != newRep.Reads || oldRep.Seed != newRep.Seed {
		fmt.Fprintf(w, "note: workloads differ (scale %d/%d, reads %d/%d, seed %d/%d); deltas may not be comparable\n",
			oldRep.Scale, newRep.Scale, oldRep.Reads, newRep.Reads, oldRep.Seed, newRep.Seed)
	}

	oldCells := make(map[cellKey]result, len(oldRep.Results))
	for _, r := range oldRep.Results {
		oldCells[cellKey{r.Experiment, r.Method, r.K}] = r
	}

	fmt.Fprintf(w, "%-14s %2s  %12s %12s %8s  %10s %10s\n",
		"method", "k", "old ns/read", "new ns/read", "delta", "locate ns", "leaves Δ")
	var regressions []string
	matched := 0
	for _, nr := range newRep.Results {
		key := cellKey{nr.Experiment, nr.Method, nr.K}
		or, ok := oldCells[key]
		if !ok {
			fmt.Fprintf(w, "%-14s %2d  %12s %12d %8s  %10d %10s  (new cell)\n",
				nr.Method, nr.K, "-", nr.NSPerRead, "-", nr.LocateNS, "-")
			continue
		}
		delete(oldCells, key)
		matched++
		pct := 100 * (float64(nr.NSPerRead) - float64(or.NSPerRead)) / float64(or.NSPerRead)
		mark := ""
		if pct > threshold {
			mark = "  REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("%s k=%d: %d -> %d ns/read (%+.1f%%)", nr.Method, nr.K, or.NSPerRead, nr.NSPerRead, pct))
		}
		// Locate time gates too, but only when both reports carry it (a
		// zero means the field predates the report, not a free pass) and
		// the old value clears locateFloorNS: per-read locate averages
		// below a microsecond are clock jitter, not signal.
		if or.LocateNS >= locateFloorNS && nr.LocateNS > 0 {
			lpct := 100 * (float64(nr.LocateNS) - float64(or.LocateNS)) / float64(or.LocateNS)
			if lpct > threshold {
				mark = "  REGRESSION"
				regressions = append(regressions,
					fmt.Sprintf("%s k=%d: %d -> %d locate ns/read (%+.1f%%)", nr.Method, nr.K, or.LocateNS, nr.LocateNS, lpct))
			}
		}
		fmt.Fprintf(w, "%-14s %2d  %12d %12d %+7.1f%%  %10d %10d%s\n",
			nr.Method, nr.K, or.NSPerRead, nr.NSPerRead, pct, nr.LocateNS, nr.MTreeLeaves-or.MTreeLeaves, mark)
		if nr.Matches != or.Matches {
			fmt.Fprintf(w, "  warning: %s k=%d match count changed %d -> %d (results differ, not just speed)\n",
				nr.Method, nr.K, or.Matches, nr.Matches)
		}
	}
	for key := range oldCells {
		fmt.Fprintf(w, "%-14s %2d  (cell dropped from new report)\n", key.method, key.k)
	}
	// Index construction gates like a cell: a build_ns regression past
	// the threshold fails the diff, provided both reports carry the field
	// (zero means it predates the report) and the old build clears
	// buildFloorNS. The phase breakdown and the streaming build are
	// printed for diagnosis but never gate — phase boundaries shift
	// between builds, and the streaming path trades time for memory.
	if oldRep.BuildNS > 0 && newRep.BuildNS > 0 {
		bpct := 100 * (float64(newRep.BuildNS) - float64(oldRep.BuildNS)) / float64(oldRep.BuildNS)
		mark := ""
		if oldRep.BuildNS >= buildFloorNS && bpct > threshold {
			mark = "  REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("build: %d -> %d ns (%+.1f%%)", oldRep.BuildNS, newRep.BuildNS, bpct))
		}
		fmt.Fprintf(w, "build          --  %12d %12d %+7.1f%%%s\n", oldRep.BuildNS, newRep.BuildNS, bpct, mark)
		if newRep.SANS > 0 {
			fmt.Fprintf(w, "  new build phases: sa %dns, bwt %dns, occ %dns, pack %dns\n",
				newRep.SANS, newRep.BWTNS, newRep.OccNS, newRep.PackNS)
		}
	}
	if newRep.StreamBuildNS > 0 {
		fmt.Fprintf(w, "  new stream build: %dns, peak RSS %d bytes\n", newRep.StreamBuildNS, newRep.StreamPeakRSS)
	}
	// Peak RSS gates like a cell: the percentage must clear the threshold
	// AND the absolute growth must clear rssFloorBytes — GC timing makes
	// small-percentage-of-small-number deltas pure noise, but a
	// double-digit percent on top of a MiB-scale absolute jump is a real
	// resident-memory regression (the delta-compression work exists to
	// move exactly this number, so it must be protected like latency).
	rssNote := ""
	if oldRep.PeakRSSBytes > 0 && newRep.PeakRSSBytes > 0 {
		grown := newRep.PeakRSSBytes - oldRep.PeakRSSBytes
		pct := 100 * float64(grown) / float64(oldRep.PeakRSSBytes)
		rssNote = fmt.Sprintf("; peak RSS %d -> %d bytes (%+.1f%%)", oldRep.PeakRSSBytes, newRep.PeakRSSBytes, pct)
		if pct > threshold && grown > rssFloorBytes {
			regressions = append(regressions,
				fmt.Sprintf("peak RSS: %d -> %d bytes (%+.1f%%, +%d bytes)",
					oldRep.PeakRSSBytes, newRep.PeakRSSBytes, pct, grown))
		}
	}
	if matched == 0 {
		return fmt.Errorf("no cells in common between %s and %s", oldPath, newPath)
	}
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintln(w, "FAIL:", r)
		}
		fmt.Fprintf(w, "summary: %d cell(s) regressed%s\n", len(regressions), rssNote)
		return fmt.Errorf("%d cell(s) regressed more than %.0f%%", len(regressions), threshold)
	}
	fmt.Fprintf(w, "ok: %d cells compared, none regressed more than %.0f%%%s\n", matched, threshold, rssNote)
	return nil
}

func load(path string) (report, error) {
	var rep report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema != "kmbench/v1" {
		return rep, fmt.Errorf("%s: unexpected schema %q (want kmbench/v1)", path, rep.Schema)
	}
	if len(rep.Results) == 0 {
		return rep, fmt.Errorf("%s: no results", path)
	}
	return rep, nil
}
