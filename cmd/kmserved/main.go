// Command kmserved is a long-running k-mismatch query server. It loads
// saved indexes (bwtmatch.Save / kmsearch -save) into a named registry
// once and serves Algorithm-A searches over HTTP, amortizing index
// construction across millions of queries:
//
//	kmserved -addr :8080 -load hg=genome.bwt -budget 4096  # 4 GiB registry
//	curl -s localhost:8080/v1/search -d '{"index":"hg","k":4,"seq":"acgtacgt"}'
//
// Further indexes can be registered at runtime via POST /v1/indexes.
// SIGINT/SIGTERM trigger a graceful shutdown: in-flight searches drain,
// new ones are refused with 503.
//
// With -coordinator the same binary runs the cluster front-end instead:
// no indexes are loaded locally; batches fan out over the -workers
// fleet by shard subset, with request coalescing, a hot-results cache
// and admission control (see bwtmatch/server/cluster):
//
//	kmserved -addr :7070 -load hg=genome.kmsx -warm &   # worker 1
//	kmserved -addr :7071 -load hg=genome.kmsx -warm &   # worker 2
//	kmserved -coordinator -addr :8080 \
//	    -workers http://127.0.0.1:7070,http://127.0.0.1:7071
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"bwtmatch/server"
	"bwtmatch/server/cluster"
)

// loadFlags collects repeated -load name=path pairs.
type loadFlags [][2]string

func (l *loadFlags) String() string { return fmt.Sprint(*l) }

func (l *loadFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path, got %q", v)
	}
	*l = append(*l, [2]string{name, path})
	return nil
}

// listFlags collects comma-separated and/or repeated string values.
type listFlags []string

func (l *listFlags) String() string { return strings.Join(*l, ",") }

func (l *listFlags) Set(v string) error {
	for _, s := range strings.Split(v, ",") {
		if s = strings.TrimSpace(s); s != "" {
			*l = append(*l, s)
		}
	}
	return nil
}

func main() {
	var loads, genomeLoads loadFlags
	var workerURLs listFlags
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	workers := flag.Int("p", 4, "worker goroutines per search batch")
	maxBatch := flag.Int("max-batch", 4096, "maximum reads per request")
	maxK := flag.Int("max-k", 64, "maximum per-read mismatch budget")
	maxConc := flag.Int("max-concurrent", 16, "maximum concurrently executing batches")
	buildP := flag.Int("build-p", 1, "parallel workers for -load-genome index construction")
	budgetMiB := flag.Int64("budget", 0, "registry byte budget in MiB (0 = unlimited)")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-request timeout")
	drainWait := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain limit")
	logJSON := flag.Bool("log-json", false, "emit structured logs as JSON instead of logfmt-style text")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
	debug := flag.Bool("debug", false, "expose /debug/pprof/ and /debug/stats")
	warm := flag.Bool("warm", false, "materialize all shards of loaded sharded indexes in the background (/readyz is 503 until done)")
	coordinator := flag.Bool("coordinator", false, "run as a cluster coordinator fanning out to -workers instead of serving indexes")
	routesPath := flag.String("routes", "", "coordinator: static route table JSON file (default: discover from workers)")
	workerTimeout := flag.Duration("worker-timeout", 10*time.Second, "coordinator: per-attempt worker RPC timeout")
	retries := flag.Int("retries", 2, "coordinator: extra attempts per shard subset across its replica chain")
	queueDepth := flag.Int("queue-depth", 64, "coordinator: batches allowed to queue before load-shedding with 503")
	cacheEntries := flag.Int("cache-entries", 4096, "coordinator: hot-results cache entry cap (negative disables the cache)")
	cacheMiB := flag.Int64("cache-budget", 64, "coordinator: hot-results cache byte budget in MiB")
	traceSample := flag.Float64("trace-sample", 0, "coordinator: fraction of batches traced end to end (0..1; clients can always force one with X-Km-Trace: 1)")
	flag.Var(&loads, "load", "preload a saved index (monolithic or sharded) as name=path (repeatable)")
	flag.Var(&genomeLoads, "load-genome", "build and register an index from a FASTA genome as name=path (repeatable)")
	flag.Var(&workerURLs, "workers", "coordinator: worker base URLs, comma-separated (repeatable)")
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fatal(fmt.Errorf("bad -log-level %q: %w", *logLevel, err))
	}
	hopts := &slog.HandlerOptions{Level: level}
	var handler slog.Handler = slog.NewTextHandler(os.Stderr, hopts)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, hopts)
	}
	logger := slog.New(handler)

	if *coordinator {
		runCoordinator(coordinatorFlags{
			addr:          *addr,
			workers:       workerURLs,
			routesPath:    *routesPath,
			workerTimeout: *workerTimeout,
			retries:       *retries,
			maxConc:       *maxConc,
			queueDepth:    *queueDepth,
			maxBatch:      *maxBatch,
			maxK:          *maxK,
			timeout:       *timeout,
			drainWait:     *drainWait,
			cacheEntries:  *cacheEntries,
			cacheBytes:    *cacheMiB << 20,
			traceSample:   *traceSample,
			logger:        logger,
		})
		return
	}
	if len(workerURLs) > 0 || *routesPath != "" {
		fatal(errors.New("-workers and -routes require -coordinator"))
	}
	if *traceSample != 0 {
		fatal(errors.New("-trace-sample requires -coordinator (workers trace whenever a request carries X-Km-Trace)"))
	}

	srv := server.New(server.Config{
		Workers:        *workers,
		MaxBatch:       *maxBatch,
		MaxK:           *maxK,
		MaxConcurrent:  *maxConc,
		DefaultTimeout: *timeout,
		Budget:         *budgetMiB << 20,
		BuildWorkers:   *buildP,
		Logger:         logger,
		EnableDebug:    *debug,
		WarmIndexes:    *warm,
	})
	for _, nv := range loads {
		start := time.Now()
		if err := srv.Register(nv[0], nv[1]); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "kmserved: loaded index %q from %s in %v\n",
			nv[0], nv[1], time.Since(start).Round(time.Millisecond))
	}
	for _, nv := range genomeLoads {
		start := time.Now()
		if err := srv.RegisterGenome(nv[0], nv[1]); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "kmserved: built index %q from genome %s in %v (%d workers)\n",
			nv[0], nv[1], time.Since(start).Round(time.Millisecond), *buildP)
	}

	// SIGHUP re-reads every -load pair in place: after `kmgen -append`
	// grows a container on disk, a HUP picks up the new shards without
	// dropping in-flight searches (-load-genome indexes have no backing
	// container and are left alone).
	reload := func() {
		for _, nv := range loads {
			start := time.Now()
			if err := srv.Reload(nv[0], nv[1]); err != nil {
				fmt.Fprintf(os.Stderr, "kmserved: reload %q: %v\n", nv[0], err)
				continue
			}
			fmt.Fprintf(os.Stderr, "kmserved: reloaded index %q from %s in %v\n",
				nv[0], nv[1], time.Since(start).Round(time.Millisecond))
		}
	}
	serve(*addr, srv.Handler(), *drainWait, srv.Shutdown, reload, "kmserved")
}

type coordinatorFlags struct {
	addr          string
	workers       []string
	routesPath    string
	workerTimeout time.Duration
	retries       int
	maxConc       int
	queueDepth    int
	maxBatch      int
	maxK          int
	timeout       time.Duration
	drainWait     time.Duration
	cacheEntries  int
	cacheBytes    int64
	traceSample   float64
	logger        *slog.Logger
}

func runCoordinator(f coordinatorFlags) {
	if len(f.workers) == 0 {
		fatal(errors.New("-coordinator requires at least one -workers URL"))
	}
	var routes *cluster.RouteTable
	if f.routesPath != "" {
		rt, err := cluster.LoadRoutesFile(f.routesPath)
		if err != nil {
			fatal(err)
		}
		routes = rt
	}
	co, err := cluster.New(cluster.Config{
		Workers:        f.workers,
		Routes:         routes,
		WorkerTimeout:  f.workerTimeout,
		SubsetRetries:  f.retries,
		MaxConcurrent:  f.maxConc,
		QueueDepth:     f.queueDepth,
		DefaultTimeout: f.timeout,
		MaxBatch:       f.maxBatch,
		MaxK:           f.maxK,
		CacheEntries:   f.cacheEntries,
		CacheBytes:     f.cacheBytes,
		TraceSample:    f.traceSample,
		Logger:         f.logger,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "kmserved: coordinator over %d workers: %s\n",
		len(f.workers), strings.Join(f.workers, ", "))
	serve(f.addr, co.Handler(), f.drainWait, co.Shutdown, nil, "kmserved")
}

// serve runs the HTTP loop shared by both modes: listen, announce the
// bound address on stdout, then drain gracefully on SIGINT/SIGTERM.
// When reload is non-nil, SIGHUP invokes it (hot reload of grown
// containers) instead of shutting down.
func serve(addr string, h http.Handler, drainWait time.Duration, shutdown func(context.Context) error, reload func(), name string) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatal(err)
	}
	// The chosen port matters when -addr ends in :0 (tests); always state
	// where we actually listen, on stdout so scripts can capture it.
	fmt.Printf("%s: listening on http://%s\n", name, ln.Addr())

	hs := &http.Server{Handler: h}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	sigs := []os.Signal{syscall.SIGINT, syscall.SIGTERM}
	if reload != nil {
		sigs = append(sigs, syscall.SIGHUP)
	}
	signal.Notify(sigc, sigs...)
wait:
	for {
		select {
		case sig := <-sigc:
			if sig == syscall.SIGHUP && reload != nil {
				fmt.Fprintf(os.Stderr, "%s: SIGHUP, reloading indexes\n", name)
				reload()
				continue
			}
			fmt.Fprintf(os.Stderr, "%s: %v, draining (limit %v)\n", name, sig, drainWait)
			break wait
		case err := <-errc:
			fatal(err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), drainWait)
	defer cancel()
	// Refuse new searches and drain in-flight ones, then close listeners.
	if err := shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
	}
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
	}
	fmt.Fprintln(os.Stderr, name+": bye")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kmserved:", err)
	os.Exit(1)
}
