// Command kmserved is a long-running k-mismatch query server. It loads
// saved indexes (bwtmatch.Save / kmsearch -save) into a named registry
// once and serves Algorithm-A searches over HTTP, amortizing index
// construction across millions of queries:
//
//	kmserved -addr :8080 -load hg=genome.bwt -budget 4096  # 4 GiB registry
//	curl -s localhost:8080/v1/search -d '{"index":"hg","k":4,"seq":"acgtacgt"}'
//
// Further indexes can be registered at runtime via POST /v1/indexes.
// SIGINT/SIGTERM trigger a graceful shutdown: in-flight searches drain,
// new ones are refused with 503.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"bwtmatch/server"
)

// loadFlags collects repeated -load name=path pairs.
type loadFlags [][2]string

func (l *loadFlags) String() string { return fmt.Sprint(*l) }

func (l *loadFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path, got %q", v)
	}
	*l = append(*l, [2]string{name, path})
	return nil
}

func main() {
	var loads, genomeLoads loadFlags
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	workers := flag.Int("p", 4, "worker goroutines per search batch")
	maxBatch := flag.Int("max-batch", 4096, "maximum reads per request")
	maxK := flag.Int("max-k", 64, "maximum per-read mismatch budget")
	maxConc := flag.Int("max-concurrent", 16, "maximum concurrently executing batches")
	buildP := flag.Int("build-p", 1, "parallel workers for -load-genome index construction")
	budgetMiB := flag.Int64("budget", 0, "registry byte budget in MiB (0 = unlimited)")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-request timeout")
	drainWait := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain limit")
	logJSON := flag.Bool("log-json", false, "emit structured logs as JSON instead of logfmt-style text")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
	debug := flag.Bool("debug", false, "expose /debug/pprof/ and /debug/stats")
	flag.Var(&loads, "load", "preload a saved index (monolithic or sharded) as name=path (repeatable)")
	flag.Var(&genomeLoads, "load-genome", "build and register an index from a FASTA genome as name=path (repeatable)")
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fatal(fmt.Errorf("bad -log-level %q: %w", *logLevel, err))
	}
	hopts := &slog.HandlerOptions{Level: level}
	var handler slog.Handler = slog.NewTextHandler(os.Stderr, hopts)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, hopts)
	}
	logger := slog.New(handler)

	srv := server.New(server.Config{
		Workers:        *workers,
		MaxBatch:       *maxBatch,
		MaxK:           *maxK,
		MaxConcurrent:  *maxConc,
		DefaultTimeout: *timeout,
		Budget:         *budgetMiB << 20,
		BuildWorkers:   *buildP,
		Logger:         logger,
		EnableDebug:    *debug,
	})
	for _, nv := range loads {
		start := time.Now()
		if err := srv.Register(nv[0], nv[1]); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "kmserved: loaded index %q from %s in %v\n",
			nv[0], nv[1], time.Since(start).Round(time.Millisecond))
	}
	for _, nv := range genomeLoads {
		start := time.Now()
		if err := srv.RegisterGenome(nv[0], nv[1]); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "kmserved: built index %q from genome %s in %v (%d workers)\n",
			nv[0], nv[1], time.Since(start).Round(time.Millisecond), *buildP)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	// The chosen port matters when -addr ends in :0 (tests); always state
	// where we actually listen, on stdout so scripts can capture it.
	fmt.Printf("kmserved: listening on http://%s\n", ln.Addr())

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "kmserved: %v, draining (limit %v)\n", sig, *drainWait)
	case err := <-errc:
		fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	// Refuse new searches and drain in-flight ones, then close listeners.
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "kmserved: %v\n", err)
	}
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "kmserved: %v\n", err)
	}
	fmt.Fprintln(os.Stderr, "kmserved: bye")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kmserved:", err)
	os.Exit(1)
}
