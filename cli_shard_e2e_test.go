package bwtmatch_test

import (
	"bufio"
	"bytes"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestShardSmoke drives the sharded pipeline end to end through the
// real binaries: kmgen builds a sharded index, kmsearch loads it
// transparently and agrees with a monolithic build over the same
// genome, and kmserved registers it, answers searches, and exposes the
// per-shard Prometheus series. `make shard-smoke` runs exactly this.
func TestShardSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bins := t.TempDir()
	for _, name := range []string{"kmgen", "kmsearch", "kmserved"} {
		bin := filepath.Join(bins, name)
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
		cmd.Env = os.Environ()
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, out)
		}
	}
	work := t.TempDir()
	genome := filepath.Join(work, "genome.fa")
	reads := filepath.Join(work, "reads.fq")
	sharded := filepath.Join(work, "sharded.bwt")
	mono := filepath.Join(work, "mono.bwt")

	// Genome plus a sharded index in one kmgen call; read set after.
	out := run(t, filepath.Join(bins, "kmgen"),
		"-genome", genome, "-bases", "32768", "-chromosomes", "2", "-seed", "7",
		"-index", sharded, "-shards", "4", "-max-pattern", "128")
	if !strings.Contains(out, "built sharded index (4 shards, max pattern 128)") {
		t.Fatalf("kmgen sharded output: %s", out)
	}
	run(t, filepath.Join(bins, "kmgen"),
		"-reads", reads, "-from", genome, "-length", "80", "-count", "25", "-seed", "8")

	// kmsearch: monolithic build+save, then the sharded file through the
	// same -index flag; the match lines must agree exactly.
	monoOut := run(t, filepath.Join(bins, "kmsearch"),
		"-genome", genome, "-save", mono, "-reads", reads, "-k", "4", "-v")
	shardOut := run(t, filepath.Join(bins, "kmsearch"),
		"-index", sharded, "-reads", reads, "-k", "4", "-v")
	if !strings.Contains(shardOut, "in 4 shards") {
		t.Fatalf("kmsearch did not report shards:\n%s", shardOut)
	}
	if extractMatches(monoOut) != extractMatches(shardOut) {
		t.Fatalf("sharded index disagrees with monolithic:\n%s\nvs\n%s", monoOut, shardOut)
	}

	// kmserved: preload the sharded file, search it, list it, scrape it.
	daemon := exec.Command(filepath.Join(bins, "kmserved"),
		"-addr", "127.0.0.1:0", "-load", "g="+sharded)
	stdout, err := daemon.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	daemon.Stderr = os.Stderr
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { daemon.Process.Kill(); daemon.Wait() })
	base := awaitListening(t, stdout)

	resp, err := http.Post(base+"/v1/search", "application/json",
		strings.NewReader(`{"index":"g","k":2,"seq":"acgtacgtacgtacgt"}`))
	if err != nil {
		t.Fatal(err)
	}
	if body := readAll(t, resp); resp.StatusCode != http.StatusOK {
		t.Fatalf("search: %d %s", resp.StatusCode, body)
	}

	list := getBody(t, base+"/v1/indexes")
	if !strings.Contains(list, `"shards":4`) || !strings.Contains(list, `"shard_bytes":[`) {
		t.Fatalf("/v1/indexes missing shard fields: %s", list)
	}

	metrics := getBody(t, base+"/metrics")
	for _, want := range []string{
		`km_shard_searches_total{index="g",shard="0"} 1`,
		`km_shard_searches_total{index="g",shard="3"} 1`,
		`km_shard_search_ns_total{index="g",shard="0"} `,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("missing %q in /metrics:\n%s", want, metrics)
		}
	}
}

func awaitListening(t *testing.T, stdout io.Reader) string {
	t.Helper()
	sc := bufio.NewScanner(stdout)
	urlc := make(chan string, 1)
	go func() {
		for sc.Scan() {
			if _, url, ok := strings.Cut(sc.Text(), "listening on "); ok {
				urlc <- url
				break
			}
		}
	}()
	select {
	case url := <-urlc:
		return url
	case <-time.After(30 * time.Second):
		t.Fatal("kmserved did not announce its address")
		return ""
	}
}

func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return readAll(t, resp)
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}
