// Package bwtmatch is a from-scratch Go implementation of the string
// matching with k mismatches system of Chen & Wu, "BWT Arrays and
// Mismatching Trees: A New Way for String Matching with k Mismatches"
// (ICDE 2017).
//
// Given a target string s (a genome) and a pattern r (a read), the library
// reports every position of s where r occurs with at most k mismatching
// characters (Hamming distance ≤ k). The target is indexed once with a
// BWT array (FM-index) built over its reverse; queries then run the
// paper's Algorithm A: an S-tree search whose repeated BWT intervals are
// resolved by deriving mismatch information from the pattern against
// itself (a mismatching tree), rather than re-searching the index.
//
// Besides Algorithm A, the index exposes the paper's three experimental
// baselines — the φ-pruned brute-force BWT search of its reference [34],
// Amir's filtering method, and Cole's suffix-tree search — plus two online
// matchers, so that the paper's evaluation can be reproduced end to end
// (see EXPERIMENTS.md).
//
// # Quick start
//
//	idx, err := bwtmatch.New([]byte("ccacacagaagcc"))
//	if err != nil { ... }
//	matches, err := idx.Search([]byte("aaaaacaaac"), 4)
//	// matches[0].Pos == 2, matches[0].Mismatches == 4
//
// Inputs are DNA over {a, c, g, t} (case-insensitive). Use
// bwtmatch.Sanitize to clean sequences containing ambiguity codes first.
//
// Bulk workloads go through MapAll (or MapAllContext for per-request
// cancellation); built indexes persist with Save/Load. The server
// subpackage serves saved indexes over HTTP as a long-running daemon
// (cmd/kmserved).
package bwtmatch
