package bwtmatch

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// shardedPair builds a monolithic and a sharded index over the same
// target, with a shard size small enough that shard boundaries fall
// inside typical patterns.
func shardedPair(t *testing.T, target []byte, opts ...Option) (*Index, *ShardedIndex) {
	t.Helper()
	mono, err := New(target)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := NewSharded(target, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return mono, sh
}

// TestShardedEquivalence is the correctness property of the whole
// sharding design: for random targets, shard geometries and patterns —
// including patterns sampled across shard boundaries — the sharded
// index returns exactly the monolithic result: same count, same
// positions, same mismatch counts, same (global position) order.
func TestShardedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(511))
	for trial := 0; trial < 12; trial++ {
		n := 300 + rng.Intn(1500)
		target := randomDNA(rng, n)
		maxPat := 40
		shardSize := 50 + rng.Intn(300)
		mono, sh := shardedPair(t, target,
			WithShardSize(shardSize), WithMaxPatternLen(maxPat))
		if sh.Shards() < 1 {
			t.Fatal("no shards")
		}
		for q := 0; q < 12; q++ {
			m := 4 + rng.Intn(maxPat-4)
			k := rng.Intn(4)
			var pattern []byte
			switch q % 3 {
			case 0: // random pattern
				pattern = randomDNA(rng, m)
			case 1: // mutated excerpt from anywhere
				p := rng.Intn(len(target) - m)
				pattern = append([]byte(nil), target[p:p+m]...)
				for f := 0; f < k; f++ {
					pattern[rng.Intn(m)] = "acgt"[rng.Intn(4)]
				}
			default: // excerpt straddling a shard boundary
				b := shardSize * (1 + rng.Intn(max(1, sh.Shards()-1)))
				p := b - m/2
				if p < 0 {
					p = 0
				}
				if p+m > len(target) {
					p = len(target) - m
				}
				pattern = append([]byte(nil), target[p:p+m]...)
			}
			for _, method := range []Method{AlgorithmA, BWTBaseline, Seed} {
				want, _, err := mono.SearchMethod(pattern, k, method)
				if err != nil {
					t.Fatal(err)
				}
				got, _, err := sh.SearchMethod(pattern, k, method)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("trial %d %v k=%d: sharded %d matches, monolithic %d (shardSize %d, pattern %s)",
						trial, method, k, len(got), len(want), shardSize, pattern)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("trial %d %v: match %d = %+v, want %+v", trial, method, i, got[i], want[i])
					}
				}
			}
		}
		if err := sh.CheckInvariants(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// TestShardedBoundarySaturation plants a match at every position of a
// homopolymer target so every shard boundary falls inside many
// overlapping matches — the configuration where double-reporting or
// dropped overlap matches would show instantly.
func TestShardedBoundarySaturation(t *testing.T) {
	target := bytes.Repeat([]byte("a"), 400)
	mono, sh := shardedPair(t, target, WithShardSize(37), WithMaxPatternLen(16))
	for _, k := range []int{0, 1, 2} {
		pattern := bytes.Repeat([]byte("a"), 11)
		if k > 0 {
			pattern[3] = 'c' // forces mismatches while keeping matches everywhere
		}
		want, _, err := mono.SearchMethod(pattern, k, AlgorithmA)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := sh.SearchMethod(pattern, k, AlgorithmA)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("k=%d: %d vs %d matches", k, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("k=%d match %d: %+v vs %+v", k, i, got[i], want[i])
			}
		}
	}
}

func TestShardedRejectsLongPattern(t *testing.T) {
	rng := rand.New(rand.NewSource(512))
	target := randomDNA(rng, 500)
	sh, err := NewSharded(target, WithShards(3), WithMaxPatternLen(20))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sh.Search(randomDNA(rng, 21), 1); !errors.Is(err, ErrInput) {
		t.Fatalf("over-long pattern: error = %v, want ErrInput", err)
	}
	if _, err := sh.Search(randomDNA(rng, 20), 1); err != nil {
		t.Fatalf("bound-length pattern rejected: %v", err)
	}
	// The scratch path enforces the same bound.
	sc := NewScratch()
	if _, _, err := sh.SearchMethodScratch(sc, nil, randomDNA(rng, 21), 1, AlgorithmA); !errors.Is(err, ErrInput) {
		t.Fatalf("scratch path accepted over-long pattern: %v", err)
	}
}

func TestShardedConfigErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(513))
	target := randomDNA(rng, 100)
	if _, err := NewSharded(nil); !errors.Is(err, ErrInput) {
		t.Error("empty target accepted")
	}
	if _, err := NewSharded(target, WithMaxPatternLen(0)); !errors.Is(err, ErrInput) {
		t.Error("zero pattern bound accepted")
	}
	if _, err := NewSharded(target, WithShardSize(-5)); !errors.Is(err, ErrInput) {
		t.Error("negative shard size accepted")
	}
	if _, err := NewShardedRefs(nil); !errors.Is(err, ErrInput) {
		t.Error("empty reference list accepted")
	}
}

func TestShardedRefsResolve(t *testing.T) {
	rng := rand.New(rand.NewSource(514))
	refs := []Reference{
		{Name: "chr1", Seq: randomDNA(rng, 400)},
		{Name: "chr2", Seq: randomDNA(rng, 300)},
	}
	sh, err := NewShardedRefs(refs, WithShardSize(150), WithMaxPatternLen(32))
	if err != nil {
		t.Fatal(err)
	}
	mono, err := NewRefs(refs)
	if err != nil {
		t.Fatal(err)
	}
	if len(sh.Refs()) != 2 {
		t.Fatalf("Refs() = %v", sh.Refs())
	}
	// Pattern from inside chr2 must resolve identically on both layouts.
	pattern := refs[1].Seq[100:124]
	sm, _ := sh.Search(pattern, 1)
	mm, _ := mono.Search(pattern, 1)
	if len(sm) != len(mm) {
		t.Fatalf("sharded %d matches, monolithic %d", len(sm), len(mm))
	}
	for i := range sm {
		sr, sp, sok := sh.Resolve(sm[i].Pos, len(pattern))
		mr, mp, mok := mono.Resolve(mm[i].Pos, len(pattern))
		if sr != mr || sp != mp || sok != mok {
			t.Fatalf("match %d resolves to %s:%d/%v vs %s:%d/%v", i, sr, sp, sok, mr, mp, mok)
		}
	}
}

func TestShardedSearchBest(t *testing.T) {
	rng := rand.New(rand.NewSource(515))
	target := randomDNA(rng, 900)
	mono, sh := shardedPair(t, target, WithShards(4), WithMaxPatternLen(40))
	for q := 0; q < 10; q++ {
		m := 10 + rng.Intn(20)
		p := rng.Intn(len(target) - m)
		pattern := append([]byte(nil), target[p:p+m]...)
		pattern[rng.Intn(m)] = "acgt"[rng.Intn(4)]
		wb, wm, err := mono.SearchBest(pattern, 3)
		if err != nil {
			t.Fatal(err)
		}
		gb, gm, err := sh.SearchBest(pattern, 3)
		if err != nil {
			t.Fatal(err)
		}
		if gb != wb || len(gm) != len(wm) {
			t.Fatalf("SearchBest: k=%d/%d matches=%d/%d", gb, wb, len(gm), len(wm))
		}
	}
}

// TestShardedMapAllContext checks batch equivalence and the
// cancellation contract on the sharded implementation.
func TestShardedMapAllContext(t *testing.T) {
	rng := rand.New(rand.NewSource(516))
	target := randomDNA(rng, 1200)
	mono, sh := shardedPair(t, target, WithShardSize(200), WithMaxPatternLen(48))
	var queries []Query
	for i := 0; i < 40; i++ {
		m := 8 + rng.Intn(30)
		p := rng.Intn(len(target) - m)
		pat := append([]byte(nil), target[p:p+m]...)
		pat[rng.Intn(m)] = "acgt"[rng.Intn(4)]
		queries = append(queries, Query{Pattern: pat, K: rng.Intn(3)})
	}
	queries = append(queries, Query{Pattern: []byte("acgt!"), K: 1}) // per-query error
	want := mono.MapAllContext(context.Background(), queries, AlgorithmA, 4)
	got := sh.MapAllContext(context.Background(), queries, AlgorithmA, 4)
	for i := range queries {
		if (want[i].Err == nil) != (got[i].Err == nil) {
			t.Fatalf("query %d: err %v vs %v", i, got[i].Err, want[i].Err)
		}
		if len(want[i].Matches) != len(got[i].Matches) {
			t.Fatalf("query %d: %d vs %d matches", i, len(got[i].Matches), len(want[i].Matches))
		}
		for j := range want[i].Matches {
			if want[i].Matches[j] != got[i].Matches[j] {
				t.Fatalf("query %d match %d differs", i, j)
			}
		}
	}
	// Cancellation: every result is either a completed search or ctx.Err.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, r := range sh.MapAllContext(ctx, queries[:10], AlgorithmA, 2) {
		if r.Err != nil && !errors.Is(r.Err, context.Canceled) && !errors.Is(r.Err, ErrInput) {
			t.Fatalf("unexpected error under cancellation: %v", r.Err)
		}
	}
}

// TestShardedScratchZeroAlloc extends the monolithic zero-alloc pin to
// the sharded serial path: with a warm Scratch and destination, a
// sharded SearchMethodScratch allocates nothing even though it crosses
// every shard.
func TestShardedScratchZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(517))
	target := randomDNA(rng, 30000)
	sh, err := NewSharded(target, WithShards(5), WithMaxPatternLen(100))
	if err != nil {
		t.Fatal(err)
	}
	var pats [][]byte
	for _, m := range []int{8, 20, 60} {
		p := rng.Intn(len(target) - m)
		pat := append([]byte(nil), target[p:p+m]...)
		pat[rng.Intn(m)] = "acgt"[rng.Intn(4)]
		pats = append(pats, pat)
	}
	sc := NewScratch()
	dst := make([]Match, 0, 4096)
	for range 3 {
		for _, p := range pats {
			var err error
			dst, _, err = sh.SearchMethodScratch(sc, dst[:0], p, 2, AlgorithmA)
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		for _, p := range pats {
			dst, _, _ = sh.SearchMethodScratch(sc, dst[:0], p, 2, AlgorithmA)
		}
	})
	if allocs != 0 {
		t.Errorf("AllocsPerRun = %v, want 0", allocs)
	}
}

func TestShardedTelemetry(t *testing.T) {
	rng := rand.New(rand.NewSource(518))
	target := randomDNA(rng, 600)
	sh, err := NewSharded(target, WithShards(3), WithMaxPatternLen(24))
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 4
	for i := 0; i < rounds; i++ {
		if _, err := sh.Search(randomDNA(rng, 12), 1); err != nil {
			t.Fatal(err)
		}
	}
	info := sh.ShardInfo()
	if len(info) != sh.Shards() {
		t.Fatalf("ShardInfo has %d entries for %d shards", len(info), sh.Shards())
	}
	for i, si := range info {
		if !si.Loaded {
			t.Errorf("built shard %d reports unloaded", i)
		}
		if si.Searches != rounds {
			t.Errorf("shard %d: %d searches, want %d", i, si.Searches, rounds)
		}
		if si.Bytes <= 0 {
			t.Errorf("shard %d: bytes = %d", i, si.Bytes)
		}
		if si.End <= si.Start {
			t.Errorf("shard %d: span [%d,%d)", i, si.Start, si.End)
		}
	}
	if sh.SizeBytes() <= 0 {
		t.Error("SizeBytes = 0")
	}
}

func TestShardedSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(519))
	refs := []Reference{
		{Name: "chr1", Seq: randomDNA(rng, 700)},
		{Name: "chr2", Seq: randomDNA(rng, 500)},
	}
	orig, err := NewShardedRefs(refs, WithShardSize(250), WithMaxPatternLen(32))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "genome.bwts")
	if err := orig.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadShardedFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	if loaded.Len() != orig.Len() || loaded.Shards() != orig.Shards() ||
		loaded.MaxPatternLen() != orig.MaxPatternLen() || len(loaded.Refs()) != 2 {
		t.Fatalf("geometry mismatch after reload: len %d/%d shards %d/%d",
			loaded.Len(), orig.Len(), loaded.Shards(), orig.Shards())
	}
	// Lazy contract: nothing is materialized until searched.
	for i, si := range loaded.ShardInfo() {
		if si.Loaded {
			t.Fatalf("shard %d materialized before first search", i)
		}
	}
	for q := 0; q < 15; q++ {
		m := 8 + rng.Intn(24)
		pattern := randomDNA(rng, m)
		a, _, err := orig.SearchMethod(pattern, 2, AlgorithmA)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := loaded.SearchMethod(pattern, 2, AlgorithmA)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("%d vs %d matches after reload", len(b), len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("match %d differs after reload", i)
			}
		}
	}
	for i, si := range loaded.ShardInfo() {
		if !si.Loaded {
			t.Fatalf("shard %d still unmaterialized after searches", i)
		}
	}
	if err := loaded.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// A freshly loaded copy can be forced all at once.
	forced, err := LoadShardedFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer forced.Close()
	if err := forced.LoadAll(); err != nil {
		t.Fatal(err)
	}
	// And a loaded index re-saves byte-identically.
	var resave bytes.Buffer
	if err := forced.Save(&resave); err != nil {
		t.Fatal(err)
	}
	first, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resave.Bytes(), first) {
		t.Fatal("re-saved sharded index differs from the original file")
	}
}

func TestLoadAnyFileDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(520))
	target := randomDNA(rng, 600)
	dir := t.TempDir()

	mono, err := New(target)
	if err != nil {
		t.Fatal(err)
	}
	monoPath := filepath.Join(dir, "mono.bwt")
	if err := mono.SaveFile(monoPath); err != nil {
		t.Fatal(err)
	}
	sh, err := NewSharded(target, WithShards(3), WithMaxPatternLen(32))
	if err != nil {
		t.Fatal(err)
	}
	shPath := filepath.Join(dir, "sharded.bwt")
	if err := sh.SaveFile(shPath); err != nil {
		t.Fatal(err)
	}

	m1, err := LoadAnyFile(monoPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m1.(*Index); !ok {
		t.Fatalf("monolithic file loaded as %T", m1)
	}
	m2, err := LoadAnyFile(shPath)
	if err != nil {
		t.Fatal(err)
	}
	s2, ok := m2.(*ShardedIndex)
	if !ok {
		t.Fatalf("sharded file loaded as %T", m2)
	}
	defer s2.Close()

	pattern := target[200:220]
	a, _ := m1.Search(pattern, 1)
	b, _ := m2.Search(pattern, 1)
	if len(a) != len(b) {
		t.Fatalf("layouts disagree: %d vs %d", len(a), len(b))
	}
	if _, err := LoadAnyFile(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(dir, "bad")
	if err := os.WriteFile(bad, []byte("garbage data here"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadAnyFile(bad); !errors.Is(err, ErrFormat) {
		t.Errorf("garbage file: error = %v, want ErrFormat", err)
	}
}

func TestLoadShardedRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(521))
	sh, err := NewSharded(randomDNA(rng, 500), WithShards(3), WithMaxPatternLen(16))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sh.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// Truncations must be rejected eagerly (header/length-prefix damage)
	// or at shard materialization (payload damage) — always ErrFormat.
	for cut := 0; cut < len(full); cut += 1 + cut/4 {
		x, err := LoadSharded(bytes.NewReader(full[:cut]), int64(cut))
		if err == nil {
			err = x.LoadAll()
		}
		if !errors.Is(err, ErrFormat) {
			t.Fatalf("truncation at %d: error = %v, want ErrFormat", cut, err)
		}
	}
	// Trailing garbage is structural corruption, not ignorable padding.
	padded := append(append([]byte(nil), full...), 0xEE, 0xEE)
	if _, err := LoadSharded(bytes.NewReader(padded), int64(len(padded))); !errors.Is(err, ErrFormat) {
		t.Fatalf("trailing bytes: error = %v, want ErrFormat", err)
	}
	// The intact file still loads and searches (the loop wasn't vacuous).
	x, err := LoadSharded(bytes.NewReader(full), int64(len(full)))
	if err != nil {
		t.Fatal(err)
	}
	if err := x.LoadAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := x.Search([]byte("acgtacgt"), 1); err != nil {
		t.Fatal(err)
	}
}

// TestMapShardsContext pins the subset-search contract the cluster
// coordinator is built on: searching disjoint shard subsets and
// concatenating the results in subset order reproduces MapAllContext
// exactly, and invalid subsets fail every query with ErrInput.
func TestMapShardsContext(t *testing.T) {
	rng := rand.New(rand.NewSource(523))
	target := randomDNA(rng, 1500)
	_, sh := shardedPair(t, target, WithShardSize(250), WithMaxPatternLen(48))
	n := sh.Shards()
	var queries []Query
	for i := 0; i < 25; i++ {
		m := 8 + rng.Intn(30)
		p := rng.Intn(len(target) - m)
		pat := append([]byte(nil), target[p:p+m]...)
		pat[rng.Intn(m)] = "acgt"[rng.Intn(4)]
		queries = append(queries, Query{Pattern: pat, K: rng.Intn(3)})
	}
	want := sh.MapAllContext(context.Background(), queries, AlgorithmA, 2)

	// Interleaved partition {0,2,4,...} / {1,3,5,...}: union must be
	// exact, and because owned ranges are increasing in shard order,
	// merging the two subsets by position reproduces the full ordering.
	var evens, odds []int
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			evens = append(evens, i)
		} else {
			odds = append(odds, i)
		}
	}
	ge := sh.MapShardsContext(context.Background(), queries, AlgorithmA, 2, evens)
	go_ := sh.MapShards(queries, AlgorithmA, 2, odds)
	for i := range queries {
		if ge[i].Err != nil || go_[i].Err != nil {
			t.Fatalf("query %d: subset errors %v / %v", i, ge[i].Err, go_[i].Err)
		}
		merged := append(append([]Match(nil), ge[i].Matches...), go_[i].Matches...)
		sortMatches(merged)
		if len(merged) != len(want[i].Matches) {
			t.Fatalf("query %d: union %d matches, want %d", i, len(merged), len(want[i].Matches))
		}
		for j, m := range merged {
			if m != want[i].Matches[j] {
				t.Fatalf("query %d match %d: %+v, want %+v", i, j, m, want[i].Matches[j])
			}
		}
	}

	// Invalid subsets poison every result with ErrInput.
	for name, bad := range map[string][]int{
		"empty":          {},
		"out of range":   {0, n},
		"negative":       {-1},
		"not increasing": {1, 1},
	} {
		for _, r := range sh.MapShardsContext(context.Background(), queries[:2], AlgorithmA, 1, bad) {
			if !errors.Is(r.Err, ErrInput) {
				t.Errorf("%s subset: err %v, want ErrInput", name, r.Err)
			}
		}
	}
}

// TestShardedNonCoreLengthCheck pins the fix for a latent hazard: the
// non-core methods (online, stree, ...) go through each shard's own
// matcher, which does not know the sharded MaxPatternLen bound, so the
// length check must happen before the per-shard loop or an overlong
// pattern would silently miss boundary-straddling matches instead of
// erroring.
func TestShardedNonCoreLengthCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(524))
	target := randomDNA(rng, 800)
	_, sh := shardedPair(t, target, WithShardSize(200), WithMaxPatternLen(24))
	long := randomDNA(rng, 25)
	for _, method := range []Method{AlgorithmA, Online, STree} {
		for _, r := range sh.MapAllContext(context.Background(), []Query{{Pattern: long, K: 1}}, method, 1) {
			if !errors.Is(r.Err, ErrInput) {
				t.Errorf("method %v: overlong pattern err %v, want ErrInput", method, r.Err)
			}
		}
	}
}

func sortMatches(ms []Match) {
	for i := 1; i < len(ms); i++ {
		for j := i; j > 0 && ms[j].Pos < ms[j-1].Pos; j-- {
			ms[j], ms[j-1] = ms[j-1], ms[j]
		}
	}
}
