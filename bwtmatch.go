package bwtmatch

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"bwtmatch/internal/alphabet"
	"bwtmatch/internal/amir"
	"bwtmatch/internal/core"
	"bwtmatch/internal/fmindex"
	"bwtmatch/internal/kerrors"
	"bwtmatch/internal/naive"
	"bwtmatch/internal/obs"
	"bwtmatch/internal/seedext"
	"bwtmatch/internal/suffixtree"
	"bwtmatch/internal/wildcard"
)

// Method selects the matching algorithm for SearchMethod. The zero value
// is the paper's Algorithm A.
type Method int

const (
	// AlgorithmA is the paper's contribution: BWT search with mismatching
	// trees (default).
	AlgorithmA Method = iota
	// BWTBaseline is the φ-pruned brute-force BWT search of the paper's
	// reference [34].
	BWTBaseline
	// STree is the unpruned brute-force S-tree search (ablation of the φ
	// heuristic).
	STree
	// AlgorithmANoPhi is Algorithm A without the φ(i) bound, exactly as
	// the paper states it (ablation; see DESIGN.md §3.5).
	AlgorithmANoPhi
	// Amir is the filtering baseline: exact break occurrences, candidate
	// marking, verification.
	Amir
	// Cole is the suffix-tree brute-force baseline.
	Cole
	// Online is the index-free Landau–Vishkin style kangaroo matcher.
	Online
	// Seed is index-based seed-and-extend (extension, DESIGN.md): the
	// pigeonhole filter of Amir with seed occurrences found on the BWT
	// index instead of by scanning — per-query work independent of the
	// target length.
	Seed
)

// String returns the method name used in EXPERIMENTS.md tables.
func (m Method) String() string {
	switch m {
	case AlgorithmA:
		return "A()"
	case BWTBaseline:
		return "BWT"
	case STree:
		return "S-tree"
	case AlgorithmANoPhi:
		return "A()-nophi"
	case Amir:
		return "Amir"
	case Cole:
		return "Cole"
	case Online:
		return "Online"
	case Seed:
		return "Seed"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Match is one occurrence of the pattern in the target.
type Match struct {
	// Pos is the 0-based start position in the target.
	Pos int
	// Mismatches is the Hamming distance between the pattern and the
	// target window at Pos.
	Mismatches int
}

// Stats aggregates per-query work counters; fields are zero for methods
// they do not apply to.
type Stats struct {
	// MTreeLeaves is the paper's n′ (Table 2) for AlgorithmA/BWTBaseline.
	MTreeLeaves int
	// StepCalls counts BWT rank operations.
	StepCalls int
	// MemoHits counts repeated-interval derivations (AlgorithmA).
	MemoHits int
	// Candidates counts verified alignments (Amir).
	Candidates int
	// Visited counts suffix tree nodes touched (Cole).
	Visited int
	// LocateNS is the wall time (nanoseconds) spent resolving surviving
	// BWT intervals to text positions, for the BWT-path methods. It lets
	// benchmarks separate traversal cost from SA-sample walk cost.
	LocateNS int64
}

// Index is an immutable k-mismatch search index over one target sequence.
// It is safe for concurrent use once built.
type Index struct {
	text     []byte // rank-encoded target; nil until first use when textFn is set
	textOnce sync.Once
	textFn   func() []byte // lazy target reconstruction (relative layout)
	searcher *core.Searcher
	refs     []Ref // reference table for NewRefs indexes; nil otherwise

	amirOnce sync.Once
	amirM    *amir.Matcher

	coleOnce sync.Once
	coleTree *suffixtree.Tree
	coleErr  error

	seedOnce sync.Once
	seedM    *seedext.Matcher

	wildOnce sync.Once
	wildM    *wildcard.Matcher

	biOnce sync.Once
	bi     *fmindex.BiIndex
	biErr  error
}

// ErrInput reports unusable target or pattern data.
var ErrInput = errors.New("bwtmatch: invalid input")

// New builds an index over a DNA target (bytes over acgtACGT; see
// Sanitize for dirty inputs). Options configure space/time trade-offs.
func New(target []byte, opts ...Option) (*Index, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if len(target) == 0 {
		return nil, fmt.Errorf("%w: empty target", ErrInput)
	}
	ranks, err := alphabet.Encode(target)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInput, err)
	}
	searcher, err := core.NewSearcher(ranks, cfg.fm)
	if err != nil {
		return nil, err
	}
	return &Index{text: ranks, searcher: searcher}, nil
}

// Sanitize replaces characters outside the DNA alphabet (e.g. 'N') with
// 'a' and lower-cases the rest, returning the cleaned copy and how many
// bytes were replaced.
func Sanitize(seq []byte) ([]byte, int) { return alphabet.Sanitize(seq) }

// Len returns the target length.
func (x *Index) Len() int { return x.searcher.N() }

// targetText returns the rank-encoded target, reconstructing it on
// first use for layouts that do not keep the text resident (the
// relative layout rebuilds it from the BWT via one LF walk). The BWT
// search paths never call this — only the text-scanning baselines and
// reference decoding do.
func (x *Index) targetText() []byte {
	if x.textFn != nil {
		x.textOnce.Do(func() { x.text = x.textFn() })
	}
	return x.text
}

// SizeBytes estimates the resident size of the BWT index structures.
func (x *Index) SizeBytes() int { return x.searcher.Index().SizeBytes() }

// Search finds all occurrences of pattern with at most k mismatches using
// Algorithm A, sorted by position.
func (x *Index) Search(pattern []byte, k int) ([]Match, error) {
	m, _, err := x.SearchMethod(pattern, k, AlgorithmA)
	return m, err
}

// Count returns only the number of k-mismatch occurrences.
func (x *Index) Count(pattern []byte, k int) (int, error) {
	m, err := x.Search(pattern, k)
	return len(m), err
}

// Tracer receives per-query telemetry from SearchMethodTraced: phase
// spans (phi, traverse, locate) plus one event per unit of the paper's
// work measures (M-tree leaves, merges, fallbacks). internal/obs.Recorder
// is the in-repo implementation; a nil Tracer costs nothing.
type Tracer = obs.Tracer

// SearchMethod runs one of the implemented matchers and reports work
// statistics alongside the matches.
func (x *Index) SearchMethod(pattern []byte, k int, method Method) ([]Match, Stats, error) {
	return x.SearchMethodTraced(pattern, k, method, nil)
}

// SearchMethodTraced is SearchMethod with per-query telemetry. For the
// BWT-path methods (AlgorithmA, BWTBaseline, STree, AlgorithmANoPhi) the
// tracer observes the full phase timeline and per-event work counters;
// the other baselines run inside a single span named after the method.
func (x *Index) SearchMethodTraced(pattern []byte, k int, method Method, tr Tracer) ([]Match, Stats, error) {
	var st Stats
	p, err := alphabet.Encode(pattern)
	if err != nil {
		return nil, st, fmt.Errorf("%w: %v", ErrInput, err)
	}
	if len(p) == 0 {
		return nil, st, fmt.Errorf("%w: empty pattern", ErrInput)
	}
	if k < 0 {
		return nil, st, fmt.Errorf("%w: negative k", ErrInput)
	}
	if cm, ok := coreMethods[method]; ok {
		sc := scratchPool.Get().(*Scratch)
		cms, cs, err := x.searcher.FindScratch(sc.core, sc.cms[:0], p, k, cm, tr)
		sc.cms = cms
		if err != nil {
			scratchPool.Put(sc)
			return nil, st, err
		}
		st.fromCore(cs)
		out := convertCore(cms)
		scratchPool.Put(sc)
		return out, st, nil
	}
	if tr != nil {
		tr.Begin(method.String())
		defer tr.End()
	}
	switch method {
	case Amir:
		x.amirOnce.Do(func() { x.amirM = amir.New(x.targetText()) })
		ms, as, err := x.amirM.Find(p, k)
		if err != nil {
			return nil, st, fmt.Errorf("%w: %v", ErrInput, err)
		}
		st.Candidates = as.Candidates
		out := make([]Match, len(ms))
		for i, m := range ms {
			out[i] = Match{Pos: int(m.Pos), Mismatches: m.Mismatches}
		}
		return out, st, nil
	case Cole:
		x.coleOnce.Do(func() { x.coleTree, x.coleErr = suffixtree.Build(x.targetText()) })
		if x.coleErr != nil {
			return nil, st, x.coleErr
		}
		pos, visited := x.coleTree.FindK(p, k)
		st.Visited = visited
		sort.Slice(pos, func(i, j int) bool { return pos[i] < pos[j] })
		out := make([]Match, len(pos))
		text := x.targetText()
		for i, q := range pos {
			out[i] = Match{
				Pos:        int(q),
				Mismatches: naive.Hamming(text[q:int(q)+len(p)], p, len(p)),
			}
		}
		return out, st, nil
	case Seed:
		x.seedOnce.Do(func() { x.seedM = seedext.New(x.searcher.Index(), x.targetText()) })
		ms, ss, err := x.seedM.Find(p, k)
		if err != nil {
			return nil, st, fmt.Errorf("%w: %v", ErrInput, err)
		}
		st.Candidates = ss.Candidates
		out := make([]Match, len(ms))
		for i, m := range ms {
			out[i] = Match{Pos: int(m.Pos), Mismatches: m.Mismatches}
		}
		return out, st, nil
	case Online:
		lv := naive.NewLandauVishkin(x.targetText(), p)
		pos := lv.Find(k)
		out := make([]Match, len(pos))
		for i, q := range pos {
			out[i] = Match{
				Pos:        int(q),
				Mismatches: lv.Mismatches(int(q), k),
			}
		}
		return out, st, nil
	default:
		return nil, st, fmt.Errorf("%w: unknown method %v", ErrInput, method)
	}
}

// MEM is one maximal exact match of a pattern: pattern[Start:Start+Len)
// occurs in the target at every position of Positions and can be extended
// in neither direction.
type MEM struct {
	Start, Len int
	Positions  []int
}

// MEMs returns the maximal exact matches of the pattern with length at
// least minLen — the seeding primitive of modern aligners, computed on a
// bidirectional FM-index built lazily on first use (it adds a second,
// forward index over the target).
func (x *Index) MEMs(pattern []byte, minLen int) ([]MEM, error) {
	p, err := alphabet.Encode(pattern)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInput, err)
	}
	if len(p) == 0 {
		return nil, fmt.Errorf("%w: empty pattern", ErrInput)
	}
	x.biOnce.Do(func() {
		x.bi, x.biErr = fmindex.BuildBi(x.targetText(), fmindex.DefaultOptions())
	})
	if x.biErr != nil {
		return nil, x.biErr
	}
	raw := x.bi.MEMs(p, minLen)
	out := make([]MEM, len(raw))
	var buf []int32
	for i, m := range raw {
		buf = x.bi.Fwd().Locate(m.Iv.Fwd, buf[:0])
		positions := make([]int, len(buf))
		for j, q := range buf {
			positions[j] = int(q)
		}
		sort.Ints(positions)
		out[i] = MEM{Start: m.Start, Len: m.Len, Positions: positions}
	}
	return out, nil
}

// SearchBest finds the occurrences with the smallest Hamming distance not
// exceeding maxK, by iterative deepening: k = 0, 1, … until something
// matches. This is the question a read aligner actually asks ("where does
// this read fit best?"), and deepening is cheap here because Algorithm
// A's φ bound prunes hopeless budgets almost immediately. It returns the
// distance found and the matches at exactly that distance, or (-1, nil)
// when nothing matches within maxK.
func (x *Index) SearchBest(pattern []byte, maxK int) (int, []Match, error) {
	if maxK < 0 {
		return -1, nil, fmt.Errorf("%w: negative maxK", ErrInput)
	}
	for k := 0; k <= maxK; k++ {
		matches, err := x.Search(pattern, k)
		if err != nil {
			return -1, nil, err
		}
		if len(matches) == 0 {
			continue
		}
		// Search(k) returns every occurrence with distance <= k; keep the
		// minimum stratum (all equal to k on the first non-empty round,
		// but guard against future search relaxations).
		best := matches[0].Mismatches
		for _, m := range matches {
			if m.Mismatches < best {
				best = m.Mismatches
			}
		}
		out := matches[:0:0]
		for _, m := range matches {
			if m.Mismatches == best {
				out = append(out, m)
			}
		}
		return best, out, nil
	}
	return -1, nil, nil
}

// wildcardRank is the internal marker for don't-care positions; it lies
// outside the alphabet's rank range.
const wildcardRank = byte(0x7F)

// SearchWildcard finds all exact occurrences of a pattern containing
// don't-care symbols ('n' or 'N'), each matching any single base — the
// paper's §II "string matching with don't-cares", provided as an
// extension. Positions are sorted.
func (x *Index) SearchWildcard(pattern []byte) ([]int, error) {
	p := make([]byte, len(pattern))
	for i, b := range pattern {
		if b == 'n' || b == 'N' {
			p[i] = wildcardRank
			continue
		}
		r, err := alphabet.Rank(b)
		if err != nil || r == alphabet.Sentinel {
			return nil, fmt.Errorf("%w: %q at position %d", ErrInput, b, i)
		}
		p[i] = r
	}
	if len(p) == 0 {
		return nil, fmt.Errorf("%w: empty pattern", ErrInput)
	}
	x.wildOnce.Do(func() { x.wildM = wildcard.New(x.searcher.Index(), x.targetText()) })
	pos, err := x.wildM.Find(p, wildcardRank)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInput, err)
	}
	out := make([]int, len(pos))
	for i, q := range pos {
		out[i] = int(q)
	}
	return out, nil
}

// EditMatch is one k-errors (Levenshtein) occurrence: some substring of
// the target ending at End (exclusive) is within Distance edits of the
// pattern.
type EditMatch struct {
	End      int
	Distance int
}

// SearchEdits finds all positions where the pattern occurs with at most k
// edit operations (substitutions, insertions, deletions) — the
// Levenshtein-distance sibling of Search, provided as an extension (the
// paper's §II "string matching with k errors"). It runs the O(kn) banded
// online matcher over the target.
func (x *Index) SearchEdits(pattern []byte, k int) ([]EditMatch, error) {
	p, err := alphabet.Encode(pattern)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInput, err)
	}
	ms, err := kerrors.FindBanded(x.targetText(), p, k)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInput, err)
	}
	out := make([]EditMatch, len(ms))
	for i, m := range ms {
		out[i] = EditMatch{End: int(m.End), Distance: m.Distance}
	}
	return out, nil
}

// MTreeLeaves runs Algorithm A and returns the paper's n′ statistic
// without locating occurrences (used by the Table 2 reproduction).
func (x *Index) MTreeLeaves(pattern []byte, k int) (int, error) {
	p, err := alphabet.Encode(pattern)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrInput, err)
	}
	cs, err := x.searcher.CountLeaves(p, k)
	if err != nil {
		return 0, err
	}
	return cs.MTreeLeaves, nil
}

// coreMethods maps the public BWT-path methods onto core's selectors.
var coreMethods = map[Method]core.Method{
	AlgorithmA:      core.MethodMTree,
	BWTBaseline:     core.MethodSTreePhi,
	STree:           core.MethodSTree,
	AlgorithmANoPhi: core.MethodMTreeNoPhi,
}

func convertCore(ms []core.Match) []Match {
	out := make([]Match, len(ms))
	for i, m := range ms {
		out[i] = Match{Pos: int(m.Pos), Mismatches: m.Mismatches}
	}
	return out
}
