GO ?= go

.PHONY: build test race race-server vet kmvet lint lint-report invariants fuzz-smoke obs-smoke benchdiff-smoke shard-smoke build-smoke cluster-smoke trace-smoke relative-smoke check bench bench-json bench-compare

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The server package is the repo's first concurrent-mutation code path
# (registry writes under reads, drain vs in-flight searches); always run
# it under the race detector, and separately so a failure is attributable.
race-server:
	$(GO) test -race ./server/...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# kmvet is the repo-specific analyzer (cmd/kmvet, DESIGN.md §6): the
# per-function rules (load-path error wrapping, lock copies,
# context-threaded searches, no library panics, no stdlib log) plus the
# call-graph-aware concurrency rules (goroutinelifecycle, lockheld,
# reachpanic, boundedalloc, closeerr). Suppress individual findings
# with `//kmvet:ignore <rule> <reason>` on the offending line (or the
# line above); stale suppressions are themselves findings.
kmvet:
	$(GO) run ./cmd/kmvet

lint: vet kmvet

# Machine-readable lint artifact for CI (schema pinned by
# internal/analyze/json_test.go). Written even when findings exist so
# the annotation step can consume it; the exit status still gates.
lint-report:
	$(GO) run ./cmd/kmvet -json > lint-report.json; \
	status=$$?; cat lint-report.json; exit $$status

# The deep runtime invariant layer: CheckInvariants implementations are
# compiled in under the kminvariants tag (and are no-ops otherwise), so
# this runs every test with full structural verification, under -race.
invariants:
	$(GO) test -race -tags kminvariants ./...

# Short mutation runs of each fuzz target with invariants enabled; long
# campaigns use `go test -fuzz=<target> -tags kminvariants .` directly.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzSearchMethods -fuzztime=10s -tags kminvariants .
	$(GO) test -run='^$$' -fuzz=FuzzSaveLoad -fuzztime=10s -tags kminvariants .
	$(GO) test -run='^$$' -fuzz=FuzzLoadRoundTrip -fuzztime=10s -tags kminvariants .
	$(GO) test -run='^$$' -fuzz=FuzzLoadShardedRoundTrip -fuzztime=10s -tags kminvariants .
	$(GO) test -run='^$$' -fuzz=FuzzLoadRelativeRoundTrip -fuzztime=10s -tags kminvariants .

# Observability smoke test: boots kmserved, scrapes /metrics (including
# the km_slo_* series) and /debug/flightrecorder, and validates the
# Prometheus text exposition with the in-repo validator
# (internal/obs.ValidateExposition) — no external dependencies.
obs-smoke:
	$(GO) test -run='^TestObsSmoke$$' -count=1 ./server/...

# Regression-gate smoke test: kmbenchdiff must pass a clean diff and
# fail both fabricated regressions — 20% ns/read and 24% peak RSS
# (fixtures in cmd/kmbenchdiff/testdata).
benchdiff-smoke:
	$(GO) run ./cmd/kmbenchdiff cmd/kmbenchdiff/testdata/old.json cmd/kmbenchdiff/testdata/new_ok.json
	@if $(GO) run ./cmd/kmbenchdiff cmd/kmbenchdiff/testdata/old.json cmd/kmbenchdiff/testdata/new_regressed.json >/dev/null 2>&1; then \
		echo "benchdiff-smoke: FAIL (regression fixture was not flagged)"; exit 1; \
	else echo "benchdiff-smoke: regression fixture correctly rejected"; fi
	@if $(GO) run ./cmd/kmbenchdiff cmd/kmbenchdiff/testdata/old.json cmd/kmbenchdiff/testdata/new_rss_regressed.json >/dev/null 2>&1; then \
		echo "benchdiff-smoke: FAIL (RSS regression fixture was not flagged)"; exit 1; \
	else echo "benchdiff-smoke: RSS regression fixture correctly rejected"; fi

# Sharded-pipeline smoke test: kmgen builds a multi-shard index file,
# kmsearch loads it transparently and must agree with a monolithic
# build, and kmserved serves it with per-shard /metrics series.
shard-smoke:
	$(GO) test -run='^TestShardSmoke$$' -count=1 .

# Multi-tenant relative-index smoke test: kmgen builds a base index and
# three delta-compressed tenant containers, kmsearch answers from a
# tenant byte-identically to a standalone build, and kmserved serves all
# three tenants off one shared resident base with the delta accounting
# in /v1/indexes and the km_relative_* /metrics series (DESIGN.md §13).
relative-smoke:
	$(GO) test -run='^TestRelativeSmoke$$' -count=1 .

# Build-pipeline smoke test: kmgen stream-builds a sharded container in
# bounded memory (byte-identical to the in-memory build), appends to it
# in place reusing untouched shard frames, and a running kmserved picks
# up the grown container on SIGHUP (real binaries, DESIGN.md §12).
build-smoke:
	$(GO) test -run='^TestBuildSmoke$$' -count=1 .

# Cluster smoke test: kmgen builds a sharded index, two kmserved workers
# serve it behind a kmserved -coordinator, kmload drives Zipf traffic
# through the fleet, and /metrics is scraped and validated on all three
# processes (real binaries, loopback HTTP).
cluster-smoke:
	$(GO) test -run='^TestClusterSmoke$$' -count=1 ./server/cluster/...

# Distributed-tracing smoke test: the same real fleet with the
# coordinator at -trace-sample 1, driven by kmload -trace; the written
# Chrome timeline must carry coordinator spans plus worker span
# fragments under one request ID, and /debug/trace plus the
# /debug/flightrecorder endpoints must serve valid documents.
trace-smoke:
	$(GO) test -run='^TestTraceSmoke$$' -count=1 ./server/cluster/...

# The one-stop pre-commit gate.
check: lint race-server race invariants fuzz-smoke obs-smoke benchdiff-smoke shard-smoke build-smoke cluster-smoke trace-smoke relative-smoke

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Machine-readable search benchmark (ns/read + work counters + peak RSS);
# commit the output as a BENCH_*.json trajectory file.
bench-json:
	$(GO) run ./cmd/kmbench -json -scale 64 -reads 20 -rounds 5 -out BENCH_latest.json
	@cat BENCH_latest.json

# Compare two benchmark reports and fail on >10% ns/read regressions:
#   make bench-compare OLD=BENCH_pr4_before.json NEW=BENCH_pr4_after.json
OLD ?= BENCH_pr4_before.json
NEW ?= BENCH_pr4_after.json
bench-compare:
	$(GO) run ./cmd/kmbenchdiff $(OLD) $(NEW)
