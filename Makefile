GO ?= go

.PHONY: build test race race-server vet check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The server package is the repo's first concurrent-mutation code path
# (registry writes under reads, drain vs in-flight searches); always run
# it under the race detector, and separately so a failure is attributable.
race-server:
	$(GO) test -race ./server/...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# The one-stop pre-commit gate.
check: vet race-server race

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .
