package bwtmatch

import (
	"fmt"
	"sort"

	"bwtmatch/internal/alphabet"
)

// Reference is one named input sequence for NewRefs.
type Reference struct {
	Name string
	Seq  []byte // DNA over acgtACGT
}

// Ref describes one reference inside a built index.
type Ref struct {
	Name  string
	Start int // offset of the reference in the concatenated target
	Len   int
}

// RefMatch is one occurrence expressed in reference coordinates.
type RefMatch struct {
	Ref        string
	Pos        int // 0-based within the reference
	Mismatches int
}

// NewRefs builds one index over multiple reference sequences (e.g. the
// chromosomes of a genome). The sequences are concatenated internally;
// searches through SearchRefs report per-reference coordinates and
// discard alignments that would span a reference boundary (an artifact
// of concatenation, since the DNA alphabet has no spare separator
// symbol).
func NewRefs(refs []Reference, opts ...Option) (*Index, error) {
	cat, table, err := concatRefs(refs)
	if err != nil {
		return nil, err
	}
	idx, err := New(cat, opts...)
	if err != nil {
		return nil, err
	}
	idx.refs = table
	return idx, nil
}

// concatRefs validates and concatenates named references into one
// target, building the offset table (shared by NewRefs and
// NewShardedRefs).
func concatRefs(refs []Reference) ([]byte, []Ref, error) {
	if len(refs) == 0 {
		return nil, nil, fmt.Errorf("%w: no references", ErrInput)
	}
	var cat []byte
	table := make([]Ref, len(refs))
	for i, r := range refs {
		if len(r.Seq) == 0 {
			return nil, nil, fmt.Errorf("%w: reference %q is empty", ErrInput, r.Name)
		}
		name := r.Name
		if name == "" {
			name = fmt.Sprintf("ref%d", i)
		}
		table[i] = Ref{Name: name, Start: len(cat), Len: len(r.Seq)}
		cat = append(cat, r.Seq...)
	}
	return cat, table, nil
}

// Refs returns the reference table; nil for single-sequence indexes
// built with New.
func (x *Index) Refs() []Ref { return x.refs }

// Resolve maps a concatenated-target window [pos, pos+length) to
// reference coordinates. ok is false when the window crosses a reference
// boundary or the index has no reference table.
func (x *Index) Resolve(pos, length int) (ref string, refPos int, ok bool) {
	return resolveRefs(x.refs, pos, length)
}

// resolveRefs is the coordinate mapping behind Resolve, shared by Index
// and ShardedIndex.
func resolveRefs(refs []Ref, pos, length int) (ref string, refPos int, ok bool) {
	if len(refs) == 0 {
		return "", 0, false
	}
	// Binary search for the reference containing pos.
	i := sort.Search(len(refs), func(i int) bool {
		return refs[i].Start+refs[i].Len > pos
	})
	if i == len(refs) {
		return "", 0, false
	}
	r := refs[i]
	if pos < r.Start || pos+length > r.Start+r.Len {
		return "", 0, false
	}
	return r.Name, pos - r.Start, true
}

// SearchRefs finds all k-mismatch occurrences of pattern in reference
// coordinates, dropping boundary-spanning artifacts. Results are ordered
// by reference, then position.
func (x *Index) SearchRefs(pattern []byte, k int) ([]RefMatch, error) {
	if len(x.refs) == 0 {
		return nil, fmt.Errorf("%w: index has no reference table (built with New, not NewRefs)", ErrInput)
	}
	matches, err := x.Search(pattern, k)
	if err != nil {
		return nil, err
	}
	out := make([]RefMatch, 0, len(matches))
	for _, m := range matches {
		if ref, pos, ok := x.Resolve(m.Pos, len(pattern)); ok {
			out = append(out, RefMatch{Ref: ref, Pos: pos, Mismatches: m.Mismatches})
		}
	}
	return out, nil
}

// RefSeq returns a decoded copy of one reference's sequence.
func (x *Index) RefSeq(r Ref) []byte {
	text := x.targetText()
	return alphabet.Decode(text[r.Start : r.Start+r.Len])
}
