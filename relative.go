package bwtmatch

import (
	"crypto/sha256"
	"fmt"

	"bwtmatch/internal/alphabet"
	"bwtmatch/internal/core"
	"bwtmatch/internal/fmindex"
)

// RelativeIndex is a tenant index stored as a delta against a shared
// base Index ("Reusing an FM-index", PAPERS.md): the tenant's BWT is
// aligned against the base's BWT, and rank queries are answered by one
// base rank query plus small exception-set corrections. Search results
// are byte-identical to a standalone build over the same target; the
// tenant-resident footprint is the delta plus Locate samples — O(diff)
// instead of O(n) — so a fleet of near-copy tenants shares one base
// payload. It satisfies Matcher through its embedded Index, so every
// search entry point works unchanged.
//
// The target text is not stored: the text-scanning baselines (Amir,
// Cole, Online, MEMs, wildcard, edit search) reconstruct it lazily
// from the delta-bridged BWT on first use.
type RelativeIndex struct {
	*Index
	base     *Index
	baseFP   [sha256.Size]byte
	basePath string
}

// Compile-time check that the relative layout satisfies Matcher.
var _ Matcher = (*RelativeIndex)(nil)

// relTenantSARate is the default Locate sampling rate of relative
// tenant builds. The delta layout pays rank bridging on every LF step,
// and the SA samples are among the dominant tenant-resident costs at
// low divergence; rate 64 keeps 8 tenants within a 2x single-index
// budget where the standalone default (16) would not. Locate pays up
// to 4x more LF steps per hit than standalone — WithSARate overrides
// when a tenant is Locate-heavy.
const relTenantSARate = 64

// NewRelative builds a relative index for a DNA target against base.
// The target is indexed standalone first (that build is discarded),
// then expressed as a delta; the more similar the target is to the
// base's, the smaller the result. Options apply to the tenant build;
// SARate defaults to relTenantSARate instead of the standalone
// default.
func NewRelative(base *Index, target []byte, opts ...Option) (*RelativeIndex, error) {
	if base == nil {
		return nil, fmt.Errorf("%w: nil base index", ErrInput)
	}
	if len(target) == 0 {
		return nil, fmt.Errorf("%w: empty target", ErrInput)
	}
	ranks, err := alphabet.Encode(target)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInput, err)
	}
	cfg := defaultConfig()
	cfg.fm.SARate = relTenantSARate
	for _, o := range opts {
		o(&cfg)
	}
	searcher, err := core.NewSearcher(ranks, cfg.fm)
	if err != nil {
		return nil, err
	}
	return relativize(base, &Index{text: ranks, searcher: searcher}, nil)
}

// NewRelativeRefs is NewRelative over multiple named references (the
// relative sibling of NewRefs).
func NewRelativeRefs(base *Index, refs []Reference, opts ...Option) (*RelativeIndex, error) {
	cat, table, err := concatRefs(refs)
	if err != nil {
		return nil, err
	}
	rx, err := NewRelative(base, cat, opts...)
	if err != nil {
		return nil, err
	}
	rx.refs = table
	return rx, nil
}

// Relativize converts an existing standalone tenant index into a
// relative index against base. The tenant keeps its own Locate
// sampling rate. Search results over the returned index are
// byte-identical to tenant's.
func Relativize(base, tenant *Index) (*RelativeIndex, error) {
	if base == nil || tenant == nil {
		return nil, fmt.Errorf("%w: nil index", ErrInput)
	}
	return relativize(base, tenant, tenant.refs)
}

// relativize aligns tenant's FM-index against base's and wraps the
// relative fmindex in a fresh public Index with lazy text
// reconstruction (the tenant's resident text, if any, is not
// retained).
func relativize(base, tenant *Index, refs []Ref) (*RelativeIndex, error) {
	baseFm := base.searcher.Index()
	if baseFm.IsRelative() {
		return nil, fmt.Errorf("%w: base index is itself relative", ErrInput)
	}
	relFm, err := fmindex.MakeRelative(baseFm, tenant.searcher.Index())
	if err != nil {
		return nil, err
	}
	inner := &Index{
		searcher: core.NewSearcherFromIndex(relFm, tenant.Len()),
		refs:     refs,
	}
	inner.textFn = func() []byte { return reconstructTarget(relFm) }
	return &RelativeIndex{
		Index:  inner,
		base:   base,
		baseFP: baseFm.Fingerprint(),
	}, nil
}

// reconstructTarget rebuilds the forward rank-encoded target from an
// index built over its reverse. A verified index cannot fail the LF
// walk; a nil return only arises from memory corruption and surfaces
// as ErrInput in the text-path baselines.
func reconstructTarget(fm *fmindex.Index) []byte {
	rev, err := fm.ReconstructText()
	if err != nil {
		return nil
	}
	return alphabet.Reverse(rev)
}

// Base returns the shared base index.
func (x *RelativeIndex) Base() *Index { return x.base }

// BaseFingerprint returns the content hash of the base's BWT that the
// on-disk container binds to.
func (x *RelativeIndex) BaseFingerprint() [sha256.Size]byte { return x.baseFP }

// DeltaBytes returns the tenant-resident payload: the delta structures
// plus the tenant's own Locate samples. Equal to SizeBytes; the base
// is accounted once, by whoever holds it.
func (x *RelativeIndex) DeltaBytes() int { return x.SizeBytes() }

// DeltaCounters returns the cumulative BWT-read split: reads answered
// from the shared base versus reads answered from the insertion
// exception set (the km_relative_* base-hit vs delta-correction
// series).
func (x *RelativeIndex) DeltaCounters() (baseHits, deltaCorrections int64) {
	return x.searcher.Index().RelDelta().Reads()
}

// SetBasePath records the path hint written into the on-disk container
// so LoadRelativeFile can find the base without caller help. Relative
// hints are resolved against the container's directory.
func (x *RelativeIndex) SetBasePath(path string) { x.basePath = path }

// BasePath returns the recorded base path hint.
func (x *RelativeIndex) BasePath() string { return x.basePath }
