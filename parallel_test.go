package bwtmatch

import (
	"context"
	"errors"
	"math/rand"
	"testing"
)

func makeQueries(rng *rand.Rand, target []byte, n int) []Query {
	qs := make([]Query, n)
	for i := range qs {
		m := 8 + rng.Intn(20)
		p := rng.Intn(len(target) - m)
		pat := append([]byte(nil), target[p:p+m]...)
		pat[rng.Intn(m)] = "acgt"[rng.Intn(4)]
		qs[i] = Query{ID: "q", Pattern: pat, K: rng.Intn(3)}
	}
	return qs
}

func TestMapAllMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(171))
	target := randomDNA(rng, 5000)
	idx, err := New(target)
	if err != nil {
		t.Fatal(err)
	}
	queries := makeQueries(rng, target, 60)
	for _, method := range []Method{AlgorithmA, Amir, Cole} {
		serial := idx.MapAll(queries, method, 1)
		parallel := idx.MapAll(queries, method, 8)
		for i := range queries {
			if serial[i].Err != nil || parallel[i].Err != nil {
				t.Fatalf("query %d errors: %v / %v", i, serial[i].Err, parallel[i].Err)
			}
			if len(serial[i].Matches) != len(parallel[i].Matches) {
				t.Fatalf("%v query %d: %d vs %d matches", method, i,
					len(serial[i].Matches), len(parallel[i].Matches))
			}
			for j := range serial[i].Matches {
				if serial[i].Matches[j] != parallel[i].Matches[j] {
					t.Fatalf("%v query %d match %d differs", method, i, j)
				}
			}
		}
	}
}

func TestMapAllPerQueryErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(172))
	idx, _ := New(randomDNA(rng, 500))
	queries := []Query{
		{Pattern: []byte("acgt"), K: 1},
		{Pattern: []byte("aNg"), K: 1}, // invalid character
		{Pattern: nil, K: 1},           // empty
		{Pattern: []byte("ttga"), K: 0},
	}
	res := idx.MapAll(queries, AlgorithmA, 4)
	if res[0].Err != nil || res[3].Err != nil {
		t.Errorf("valid queries failed: %v %v", res[0].Err, res[3].Err)
	}
	if res[1].Err == nil || res[2].Err == nil {
		t.Error("invalid queries did not report errors")
	}
}

func TestMapAllContextPerQueryErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(175))
	idx, _ := New(randomDNA(rng, 500))
	queries := []Query{
		{Pattern: []byte("acgt"), K: 1},
		{Pattern: []byte("aNg"), K: 1},   // invalid character
		{Pattern: nil, K: 1},             // empty
		{Pattern: []byte("acgt"), K: -1}, // negative budget
		{Pattern: []byte("ttga"), K: 0},
	}
	for _, workers := range []int{1, 4} {
		res := idx.MapAllContext(context.Background(), queries, AlgorithmA, workers)
		if res[0].Err != nil || res[4].Err != nil {
			t.Errorf("workers=%d: valid queries failed: %v %v", workers, res[0].Err, res[4].Err)
		}
		for _, bad := range []int{1, 2, 3} {
			if !errors.Is(res[bad].Err, ErrInput) {
				t.Errorf("workers=%d query %d: error = %v, want ErrInput", workers, bad, res[bad].Err)
			}
		}
	}
}

func TestMapAllContextCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(176))
	target := randomDNA(rng, 2000)
	idx, _ := New(target)
	queries := makeQueries(rng, target, 200)

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: everything after warm-up must short-circuit
	res := idx.MapAllContext(ctx, queries, AlgorithmA, 8)
	if len(res) != len(queries) {
		t.Fatalf("got %d results for %d queries", len(res), len(queries))
	}
	cancelled := 0
	for _, r := range res {
		if errors.Is(r.Err, context.Canceled) {
			cancelled++
		}
	}
	if cancelled == 0 {
		t.Error("cancelled context produced no context.Canceled results")
	}

	// An un-cancelled context behaves exactly like MapAll.
	a := idx.MapAll(queries, AlgorithmA, 8)
	b := idx.MapAllContext(context.Background(), queries, AlgorithmA, 8)
	for i := range a {
		if a[i].Err != nil || b[i].Err != nil || len(a[i].Matches) != len(b[i].Matches) {
			t.Fatalf("query %d: MapAll/MapAllContext disagree", i)
		}
	}
}

func TestMapAllStatsSurfaced(t *testing.T) {
	rng := rand.New(rand.NewSource(177))
	target := randomDNA(rng, 4000)
	idx, _ := New(target)
	queries := makeQueries(rng, target, 10)
	res := idx.MapAll(queries, AlgorithmA, 4)
	steps := 0
	for _, r := range res {
		steps += r.Stats.StepCalls
	}
	if steps == 0 {
		t.Error("MapAll results carry no Stats.StepCalls")
	}
}

func TestMapAllEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(173))
	idx, _ := New(randomDNA(rng, 100))
	if res := idx.MapAll(nil, AlgorithmA, 4); len(res) != 0 {
		t.Errorf("MapAll(nil) = %v", res)
	}
}

// TestMapAllChunkBoundaries pins the work-stealing distribution across
// query counts that land on every interesting edge of the chunked
// claiming loop: fewer queries than one chunk, exactly chunk*workers,
// one past a chunk boundary, and enough to force many claims per
// worker. Every slot must be filled exactly once with the serial
// answer.
func TestMapAllChunkBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(178))
	target := randomDNA(rng, 3000)
	idx, err := New(target)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{2, 3, mapChunkMax, mapChunkMax + 1, 4 * mapChunkMax, 4*mapChunkMax + 1, 300} {
		queries := makeQueries(rng, target, n)
		serial := idx.MapAll(queries, AlgorithmA, 1)
		for _, workers := range []int{2, 3, 8} {
			got := idx.MapAll(queries, AlgorithmA, workers)
			if len(got) != n {
				t.Fatalf("n=%d workers=%d: %d results", n, workers, len(got))
			}
			for i := range got {
				if got[i].Err != nil {
					t.Fatalf("n=%d workers=%d query %d: %v", n, workers, i, got[i].Err)
				}
				if len(got[i].Matches) != len(serial[i].Matches) {
					t.Fatalf("n=%d workers=%d query %d: %d vs %d matches",
						n, workers, i, len(got[i].Matches), len(serial[i].Matches))
				}
				for j := range got[i].Matches {
					if got[i].Matches[j] != serial[i].Matches[j] {
						t.Fatalf("n=%d workers=%d query %d match %d differs", n, workers, i, j)
					}
				}
			}
		}
	}
}

// TestMapAllContextMidBatchCancel cancels while the batch is running
// and checks the contract: every result slot is either a completed
// search or a context error, never a zero value left unwritten.
func TestMapAllContextMidBatchCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(179))
	target := randomDNA(rng, 4000)
	idx, _ := New(target)
	queries := makeQueries(rng, target, 400)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan []Result, 1)
	go func() { done <- idx.MapAllContext(ctx, queries, AlgorithmA, 4) }()
	cancel()
	res := <-done
	if len(res) != len(queries) {
		t.Fatalf("got %d results for %d queries", len(res), len(queries))
	}
	for i, r := range res {
		if r.Err != nil && !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("query %d: unexpected error %v", i, r.Err)
		}
		if r.Err == nil {
			// A completed search must have really run: verify one
			// representative field is coherent (matches sorted).
			for j := 1; j < len(r.Matches); j++ {
				if r.Matches[j].Pos < r.Matches[j-1].Pos {
					t.Fatalf("query %d: unsorted matches", i)
				}
			}
		}
	}
}

func TestMapAllMoreWorkersThanQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(174))
	target := randomDNA(rng, 1000)
	idx, _ := New(target)
	queries := makeQueries(rng, target, 3)
	res := idx.MapAll(queries, AlgorithmA, 64)
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("query %d: %v", i, r.Err)
		}
	}
}
