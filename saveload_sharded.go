package bwtmatch

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"runtime"

	"bwtmatch/internal/shard"
)

// shardedMagic opens the multi-shard container format, v1:
//
//	magic (uint32) | manifest (internal/shard) |
//	per shard, in span order: payload length (uint64) | payload
//
// Each payload is one complete monolithic index in the Save format
// (with an empty reference table — references live once, in the
// manifest). The length prefixes let LoadSharded index the payloads
// without reading them, so shards materialize lazily on first search.
const shardedMagic = uint32(0xB3711DF2)

// Save serializes the sharded index: the manifest, then every shard's
// payload. Lazily loaded shards that have not materialized yet are
// forced, so saving a just-loaded index round-trips the whole file.
func (x *ShardedIndex) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if err := binary.Write(bw, binary.LittleEndian, shardedMagic); err != nil {
		return err
	}
	if _, err := x.man.WriteTo(bw); err != nil {
		return err
	}
	// One shard payload is buffered at a time: the uint64 length prefix
	// needs the encoded size before the bytes.
	var blob bytes.Buffer
	for i := range x.shards {
		idx, err := x.shards[i].get()
		if err != nil {
			return fmt.Errorf("%w: shard %d: %v", ErrFormat, i, err)
		}
		blob.Reset()
		if err := idx.Save(&blob); err != nil {
			return fmt.Errorf("bwtmatch: saving shard %d: %w", i, err)
		}
		if err := binary.Write(bw, binary.LittleEndian, uint64(blob.Len())); err != nil {
			return err
		}
		if _, err := bw.Write(blob.Bytes()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// SaveFile saves the sharded index to a file.
func (x *ShardedIndex) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := x.Save(f); err != nil {
		f.Close() //kmvet:ignore closeerr save already failed; the write error is the one to report
		return err
	}
	return f.Close()
}

// shardFrame locates one shard's payload inside a sharded container:
// off is the first payload byte (the uint64 length prefix sits at
// off-8) and len the payload length.
type shardFrame struct {
	off, len int64
}

// shardedTOC is the eagerly readable part of a sharded container: the
// manifest plus the location of every payload frame. It is what
// LoadSharded needs to defer payload decodes, and what OpenAppend needs
// to copy unchanged frames without decoding them.
type shardedTOC struct {
	man    shard.Manifest
	frames []shardFrame
}

// readShardedTOC reads the container magic, the manifest, and the
// payload length prefixes, validating that the frames exactly tile the
// rest of the file. Every rejection wraps ErrFormat.
func readShardedTOC(ra io.ReaderAt, size int64) (shardedTOC, error) {
	var toc shardedTOC
	header := make([]byte, 4)
	if _, err := ra.ReadAt(header, 0); err != nil {
		return toc, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	if magic := binary.LittleEndian.Uint32(header); magic != shardedMagic {
		return toc, fmt.Errorf("%w: magic %#x", ErrFormat, magic)
	}
	man, err := shard.ReadManifest(bufio.NewReader(io.NewSectionReader(ra, 4, size-4)))
	if err != nil {
		return toc, fmt.Errorf("%w: manifest: %v", ErrFormat, err)
	}
	// The bufio reader above reads ahead, so it cannot report where the
	// manifest ended; the encoding is deterministic, so re-encoding to
	// io.Discard recovers the exact payload offset.
	manLen, err := man.WriteTo(io.Discard)
	if err != nil {
		return toc, fmt.Errorf("%w: manifest: %v", ErrFormat, err)
	}

	// ReadManifest already caps the span count, but this is the
	// allocation site — re-check against the exported cap so the bound
	// is visible (and machine-checkable) where the memory is committed.
	nShards := man.Plan.Count()
	if nShards > shard.MaxShards {
		return toc, fmt.Errorf("%w: manifest declares %d shards (cap %d)", ErrFormat, nShards, shard.MaxShards)
	}
	toc.man = man
	toc.frames = make([]shardFrame, nShards)
	offset := 4 + manLen
	lenBuf := make([]byte, 8)
	for i := range toc.frames {
		if offset+8 > size {
			return toc, fmt.Errorf("%w: shard %d: truncated before length prefix", ErrFormat, i)
		}
		if _, err := ra.ReadAt(lenBuf, offset); err != nil {
			return toc, fmt.Errorf("%w: shard %d length: %v", ErrFormat, i, err)
		}
		blobLen := int64(binary.LittleEndian.Uint64(lenBuf))
		if blobLen < 0 || blobLen > size-offset-8 {
			return toc, fmt.Errorf("%w: shard %d claims %d payload bytes with %d remaining",
				ErrFormat, i, blobLen, size-offset-8)
		}
		toc.frames[i] = shardFrame{off: offset + 8, len: blobLen}
		offset += 8 + blobLen
	}
	if offset != size {
		return toc, fmt.Errorf("%w: %d trailing bytes after last shard", ErrFormat, size-offset)
	}
	return toc, nil
}

// LoadSharded deserializes a sharded index written by Save, reading
// only the manifest and the payload length prefixes eagerly: each
// shard's FM-index materializes on first search. ra must stay readable
// for the life of the index (LoadShardedFile manages that; callers
// passing their own ReaderAt manage it themselves).
func LoadSharded(ra io.ReaderAt, size int64) (*ShardedIndex, error) {
	toc, err := readShardedTOC(ra, size)
	if err != nil {
		return nil, err
	}
	man := toc.man
	x := &ShardedIndex{
		man:      man,
		refs:     refsFromShard(man.Refs),
		shards:   make([]lazyShard, len(toc.frames)),
		counters: make([]shardCounter, len(toc.frames)),
		fanout:   runtime.GOMAXPROCS(0),
	}
	for i := range x.shards {
		fr := toc.frames[i]
		span := man.Plan.Spans[i]
		ls := &x.shards[i]
		ls.span = span
		ls.bytes.Store(fr.len)
		ls.load = func() (*Index, error) {
			idx, err := Load(io.NewSectionReader(ra, fr.off, fr.len))
			if err != nil {
				return nil, fmt.Errorf("%w: shard payload: %v", ErrFormat, err)
			}
			if idx.Len() != span.Len() {
				return nil, fmt.Errorf("%w: shard payload holds %d bases for span [%d,%d)",
					ErrFormat, idx.Len(), span.Start, span.End)
			}
			if len(idx.Refs()) != 0 {
				return nil, fmt.Errorf("%w: shard payload carries its own reference table", ErrFormat)
			}
			return idx, nil
		}
	}
	return x, nil
}

// LoadShardedFile opens a sharded index file for lazy loading; the file
// stays open until Close.
func LoadShardedFile(path string) (*ShardedIndex, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	x, err := LoadSharded(f, st.Size())
	if err != nil {
		f.Close()
		return nil, err
	}
	x.closer = f
	return x, nil
}

// LoadAll forces every lazily deferred shard to materialize, so later
// searches never touch the backing file (and corruption anywhere in the
// file surfaces now, as ErrFormat).
func (x *ShardedIndex) LoadAll() error {
	return x.LoadAllContext(context.Background())
}

// LoadAllContext is LoadAll bounded by ctx: materialization stops
// between shards once ctx is done (a shard decode in progress runs to
// completion — decodes are not interruptible). Server warm-up paths use
// this so a shutdown cancels pending warms instead of stranding them.
func (x *ShardedIndex) LoadAllContext(ctx context.Context) error {
	for i := range x.shards {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("bwtmatch: load all: %w", err)
		}
		if _, err := x.shards[i].get(); err != nil {
			return fmt.Errorf("%w: shard %d: %v", ErrFormat, i, err)
		}
	}
	return nil
}

// LoadAnyFile loads an index file of any layout, dispatching on the
// container magic: monolithic Save files yield an *Index, sharded Save
// files a lazily loaded *ShardedIndex, and relative containers a
// *RelativeIndex (resolving the base from the stored path hint).
// Callers that hold the result for long should Close a ShardedIndex
// when done (Matcher itself has no Close; type-assert io.Closer).
func LoadAnyFile(path string) (Matcher, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	header := make([]byte, 4)
	if _, err := io.ReadFull(f, header); err != nil {
		f.Close()
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	switch binary.LittleEndian.Uint32(header) {
	case fileMagic:
		defer f.Close()
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrFormat, err)
		}
		idx, err := Load(f)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrFormat, err)
		}
		return idx, nil
	case shardedMagic:
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, err
		}
		x, err := LoadSharded(f, st.Size())
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("%w: %v", ErrFormat, err)
		}
		x.closer = f
		return x, nil
	case relativeMagic:
		// Resolve the base from the container's path hint. Callers that
		// want to share one base across tenants (the server registry)
		// should Sniff + LoadRelativeFile with an explicit base instead.
		f.Close()
		rx, err := LoadRelativeFile(path, nil)
		if err != nil {
			return nil, fmt.Errorf("relative container %s: %w", path, err)
		}
		return rx, nil
	default:
		f.Close()
		return nil, fmt.Errorf("%w: magic %#x", ErrFormat, binary.LittleEndian.Uint32(header))
	}
}

func refsFromShard(refs []shard.Ref) []Ref {
	if len(refs) == 0 {
		return nil
	}
	out := make([]Ref, len(refs))
	for i, r := range refs {
		out[i] = Ref{Name: r.Name, Start: r.Start, Len: r.Len}
	}
	return out
}
