package bwtmatch

import "sync"

// Query is one unit of bulk search work for MapAll.
type Query struct {
	// ID labels the query in logs (optional).
	ID string
	// Pattern is the DNA pattern to search.
	Pattern []byte
	// K is the mismatch budget.
	K int
}

// Result pairs a query's matches with any per-query error.
type Result struct {
	Matches []Match
	Err     error
}

// MapAll runs every query with the given method across workers
// goroutines and returns results in query order. The Index is immutable
// after construction, so the workers share it without locking; workers
// <= 1 runs inline. Per-query failures are reported in the corresponding
// Result rather than aborting the batch — reads in real pipelines fail
// individually (bad characters, zero length) and the rest must proceed.
func (x *Index) MapAll(queries []Query, method Method, workers int) []Result {
	results := make([]Result, len(queries))
	run := func(i int) {
		m, _, err := x.SearchMethod(queries[i].Pattern, queries[i].K, method)
		results[i] = Result{Matches: m, Err: err}
	}
	if workers <= 1 || len(queries) <= 1 {
		for i := range queries {
			run(i)
		}
		return results
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	// Cole's suffix tree and the Amir matcher build lazily behind a
	// sync.Once; trigger them before fan-out so workers never contend on
	// first use.
	if len(queries) > 0 {
		run(0)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				run(i)
			}
		}()
	}
	for i := 1; i < len(queries); i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results
}
