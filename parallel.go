package bwtmatch

import (
	"context"
	"sync"
	"sync/atomic"
)

// Query is one unit of bulk search work for MapAll.
type Query struct {
	// ID labels the query in logs (optional).
	ID string
	// Pattern is the DNA pattern to search.
	Pattern []byte
	// K is the mismatch budget.
	K int
}

// Result pairs a query's matches with any per-query error.
type Result struct {
	Matches []Match
	// Stats carries the per-query work counters (zero for queries that
	// errored or were cancelled).
	Stats Stats
	Err   error
}

// MapAll runs every query with the given method across workers
// goroutines and returns results in query order. It is MapAllContext
// with a background context; see there for the error contract.
func (x *Index) MapAll(queries []Query, method Method, workers int) []Result {
	return x.MapAllContext(context.Background(), queries, method, workers)
}

// mapChunkMax bounds how many query indices one work-stealing claim
// covers. Larger chunks amortize the shared counter; smaller chunks
// balance load when per-query cost is skewed (a handful of repetitive
// reads can cost 100× the median).
const mapChunkMax = 32

// MapAllContext runs every query with the given method across workers
// goroutines and returns results in query order. The Index is immutable
// after construction, so the workers share it without locking; workers
// <= 1 runs inline. Per-query failures are reported in the corresponding
// Result rather than aborting the batch — reads in real pipelines fail
// individually (bad characters, zero length) and the rest must proceed.
//
// Work is distributed by chunked atomic claiming: each worker owns a
// pinned Scratch and repeatedly claims the next run of query indices
// from a shared counter, so there is no dispatcher goroutine and no
// channel handoff on the hot path, and the BWT-path methods run
// allocation-free once the scratches are warm.
//
// When ctx is cancelled the batch stops early: queries whose search has
// not yet begun get Result{Err: ctx.Err()}, queries already running
// finish normally (individual searches are not interruptible), and the
// call returns only after all workers have drained, so the results
// slice is never written to after return.
func (x *Index) MapAllContext(ctx context.Context, queries []Query, method Method, workers int) []Result {
	results := make([]Result, len(queries))
	_, coreMethod := coreMethods[method]
	run := func(sc *Scratch, i int) {
		if err := ctx.Err(); err != nil {
			results[i] = Result{Err: err}
			return
		}
		q := queries[i]
		var (
			m   []Match
			st  Stats
			err error
		)
		if coreMethod {
			m, st, err = x.SearchMethodScratch(sc, nil, q.Pattern, q.K, method)
		} else {
			m, st, err = x.SearchMethod(q.Pattern, q.K, method)
		}
		results[i] = Result{Matches: m, Stats: st, Err: err}
	}
	runQueries(len(queries), workers, run)
	return results
}

// runQueries is the bulk execution engine shared by (*Index) and
// (*ShardedIndex) MapAllContext: it invokes run(sc, i) exactly once for
// every i in [0, n), distributing the indices over workers goroutines
// by chunked atomic claiming, with one pooled Scratch pinned per
// worker. run must be safe for concurrent invocation on distinct i.
func runQueries(n, workers int, run func(sc *Scratch, i int)) {
	if workers <= 1 || n <= 1 {
		sc := scratchPool.Get().(*Scratch)
		for i := 0; i < n; i++ {
			run(sc, i)
		}
		scratchPool.Put(sc)
		return
	}
	if workers > n {
		workers = n
	}
	// Cole's suffix tree and the Amir matcher build lazily behind a
	// sync.Once; run the first query before fan-out so workers never
	// contend on first use.
	warm := scratchPool.Get().(*Scratch)
	run(warm, 0)
	scratchPool.Put(warm)

	chunk := n / (workers * 4)
	if chunk > mapChunkMax {
		chunk = mapChunkMax
	}
	if chunk < 1 {
		chunk = 1
	}
	var next atomic.Int64
	next.Store(1) // query 0 ran during warm-up
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := scratchPool.Get().(*Scratch)
			defer scratchPool.Put(sc)
			for {
				lo := int(next.Add(int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					run(sc, i)
				}
			}
		}()
	}
	wg.Wait()
}
