package bwtmatch

import (
	"context"
	"sync"
)

// Query is one unit of bulk search work for MapAll.
type Query struct {
	// ID labels the query in logs (optional).
	ID string
	// Pattern is the DNA pattern to search.
	Pattern []byte
	// K is the mismatch budget.
	K int
}

// Result pairs a query's matches with any per-query error.
type Result struct {
	Matches []Match
	// Stats carries the per-query work counters (zero for queries that
	// errored or were cancelled).
	Stats Stats
	Err   error
}

// MapAll runs every query with the given method across workers
// goroutines and returns results in query order. It is MapAllContext
// with a background context; see there for the error contract.
func (x *Index) MapAll(queries []Query, method Method, workers int) []Result {
	return x.MapAllContext(context.Background(), queries, method, workers)
}

// MapAllContext runs every query with the given method across workers
// goroutines and returns results in query order. The Index is immutable
// after construction, so the workers share it without locking; workers
// <= 1 runs inline. Per-query failures are reported in the corresponding
// Result rather than aborting the batch — reads in real pipelines fail
// individually (bad characters, zero length) and the rest must proceed.
//
// When ctx is cancelled the batch stops early: queries not yet started
// get Result{Err: ctx.Err()}, queries already running finish normally
// (individual searches are not interruptible), and the call returns only
// after all started work has completed, so the results slice is never
// written to after return.
func (x *Index) MapAllContext(ctx context.Context, queries []Query, method Method, workers int) []Result {
	results := make([]Result, len(queries))
	run := func(i int) {
		if err := ctx.Err(); err != nil {
			results[i] = Result{Err: err}
			return
		}
		m, st, err := x.SearchMethod(queries[i].Pattern, queries[i].K, method)
		results[i] = Result{Matches: m, Stats: st, Err: err}
	}
	if workers <= 1 || len(queries) <= 1 {
		for i := range queries {
			run(i)
		}
		return results
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	// Cole's suffix tree and the Amir matcher build lazily behind a
	// sync.Once; trigger them before fan-out so workers never contend on
	// first use.
	run(0)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				run(i)
			}
		}()
	}
	cancelled := len(queries)
	for i := 1; i < len(queries); i++ {
		select {
		case jobs <- i:
		case <-ctx.Done():
			cancelled = i
		}
		if cancelled < len(queries) {
			break
		}
	}
	close(jobs)
	wg.Wait()
	// Unsent jobs were never handed to a worker, so these slots are
	// exclusively ours once the workers have drained.
	for j := cancelled; j < len(queries); j++ {
		results[j] = Result{Err: ctx.Err()}
	}
	return results
}
