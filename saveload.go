package bwtmatch

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"bwtmatch/internal/binio"
	"bwtmatch/internal/core"
	"bwtmatch/internal/fmindex"
)

// ErrFormat reports an unreadable saved index.
var ErrFormat = errors.New("bwtmatch: bad index file format")

const fileMagic = uint32(0xB3711DF1) // container around fmindex's format, v1

// Save serializes the index (the BWT structures plus the 2-bit-packed
// target text) so it can be reloaded with Load without re-running suffix
// array construction. A 16 MiB genome saves in well under a second and
// loads in milliseconds.
func (x *Index) Save(w io.Writer) error {
	if x.searcher.Index().IsRelative() {
		return errors.New("bwtmatch: relative index cannot be saved standalone; use RelativeIndex.Save")
	}
	bw := bufio.NewWriter(w)
	if err := binary.Write(bw, binary.LittleEndian, fileMagic); err != nil {
		return err
	}
	text := x.targetText()
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(text))); err != nil {
		return err
	}
	words := packedWords(text)
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(words))); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, words); err != nil {
		return err
	}
	if err := writeRefTable(bw, x.refs); err != nil {
		return err
	}
	if _, err := x.searcher.Index().WriteTo(bw); err != nil {
		return err
	}
	return bw.Flush()
}

// writeRefTable serializes the (possibly empty) reference table, the
// encoding shared by every container layout.
func writeRefTable(bw *bufio.Writer, refs []Ref) error {
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(refs))); err != nil {
		return err
	}
	for _, r := range refs {
		name := []byte(r.Name)
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(name))); err != nil {
			return err
		}
		if _, err := bw.Write(name); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint64(r.Start)); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint64(r.Len)); err != nil {
			return err
		}
	}
	return nil
}

// readRefTable deserializes a reference table against a target of n
// bases, enforcing the count, name-length, and span caps. Errors wrap
// ErrFormat.
func readRefTable(br *bufio.Reader, n uint64) ([]Ref, error) {
	var refCount uint32
	if err := binary.Read(br, binary.LittleEndian, &refCount); err != nil {
		return nil, fmt.Errorf("%w: ref table: %v", ErrFormat, err)
	}
	if refCount > 1<<20 {
		return nil, fmt.Errorf("%w: %d references", ErrFormat, refCount)
	}
	var refs []Ref
	for i := uint32(0); i < refCount; i++ {
		var nameLen uint32
		if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil || nameLen > 1<<16 {
			return nil, fmt.Errorf("%w: ref %d name", ErrFormat, i)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, fmt.Errorf("%w: ref %d name: %v", ErrFormat, i, err)
		}
		var start, length uint64
		if err := binary.Read(br, binary.LittleEndian, &start); err != nil {
			return nil, fmt.Errorf("%w: ref %d start", ErrFormat, i)
		}
		if err := binary.Read(br, binary.LittleEndian, &length); err != nil {
			return nil, fmt.Errorf("%w: ref %d length", ErrFormat, i)
		}
		if start > n || length > n-start {
			return nil, fmt.Errorf("%w: ref %d spans [%d,%d) of %d", ErrFormat, i, start, start+length, n)
		}
		refs = append(refs, Ref{Name: string(name), Start: int(start), Len: int(length)})
	}
	return refs, nil
}

// SaveFile saves the index to a file.
func (x *Index) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := x.Save(f); err != nil {
		f.Close() //kmvet:ignore closeerr save already failed; the write error is the one to report
		return err
	}
	return f.Close()
}

// Load deserializes an index written by Save.
func Load(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	var magic uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	if magic != fileMagic {
		return nil, fmt.Errorf("%w: magic %#x", ErrFormat, magic)
	}
	var n, words uint64
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	if err := binary.Read(br, binary.LittleEndian, &words); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	const maxLen = 1 << 34
	if n > maxLen || words > maxLen || words*32 < n {
		return nil, fmt.Errorf("%w: text %d bases in %d words", ErrFormat, n, words)
	}
	payload, err := binio.ReadSlice[uint64](br, words)
	if err != nil {
		return nil, fmt.Errorf("%w: text payload: %v", ErrFormat, err)
	}
	text := unpackWords(payload, int(n))
	refs, err := readRefTable(br, n)
	if err != nil {
		return nil, err
	}
	idx, err := fmindex.ReadIndex(br)
	if err != nil {
		// fmindex wraps its own sentinel; re-wrap so callers can match the
		// package-level ErrFormat regardless of which layer rejected the file.
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	if idx.N() != int(n) {
		return nil, fmt.Errorf("%w: text length %d but index over %d", ErrFormat, n, idx.N())
	}
	return &Index{
		text:     text,
		searcher: core.NewSearcherFromIndex(idx, int(n)),
		refs:     refs,
	}, nil
}

// LoadFile loads an index from a file.
func LoadFile(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// packedWords packs rank-encoded bases (1..4) at 2 bits each.
func packedWords(ranks []byte) []uint64 {
	words := make([]uint64, (len(ranks)+31)/32)
	for i, r := range ranks {
		words[i/32] |= uint64(r-1) << uint((i%32)*2)
	}
	return words
}

func unpackWords(words []uint64, n int) []byte {
	text := make([]byte, n)
	for i := range text {
		text[i] = byte(words[i/32]>>uint((i%32)*2))&3 + 1
	}
	return text
}
