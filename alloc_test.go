package bwtmatch

import (
	"math/rand"
	"testing"
)

// TestSearchMethodScratchZeroAlloc pins the tentpole property of the
// scratch path: once the Scratch and destination slice are warm, a
// SearchMethodScratch call performs zero heap allocations for every
// BWT-path method. The pattern set deliberately mixes short patterns
// (wide intervals, the structured M-tree machinery with memo traffic)
// and longer ones (intervals below the structured threshold, the
// small-interval walk).
func TestSearchMethodScratchZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(411))
	target := randomDNA(rng, 50000)
	idx, err := New(target)
	if err != nil {
		t.Fatal(err)
	}
	var pats [][]byte
	for _, m := range []int{8, 12, 30, 80} {
		p := rng.Intn(len(target) - m)
		pat := append([]byte(nil), target[p:p+m]...)
		pat[rng.Intn(m)] = "acgt"[rng.Intn(4)]
		pats = append(pats, pat)
	}
	for _, method := range []Method{AlgorithmA, AlgorithmANoPhi, BWTBaseline, STree} {
		sc := NewScratch()
		dst := make([]Match, 0, 4096)
		// Warm up: grow every internal buffer (memo table, arenas,
		// locate buffer) to its steady-state size.
		for range 3 {
			for _, p := range pats {
				var err error
				dst, _, err = idx.SearchMethodScratch(sc, dst[:0], p, 2, method)
				if err != nil {
					t.Fatal(err)
				}
			}
		}
		allocs := testing.AllocsPerRun(10, func() {
			for _, p := range pats {
				dst, _, _ = idx.SearchMethodScratch(sc, dst[:0], p, 2, method)
			}
		})
		if allocs != 0 {
			t.Errorf("%v: AllocsPerRun = %v, want 0", method, allocs)
		}
	}
}

// TestSearchMethodScratchMatchesSearchMethod cross-checks the scratch
// path against the allocating path on a shared workload, including
// reuse of one Scratch across many different queries (the pooled
// server pattern) so buffer-recycling bugs surface as wrong answers.
func TestSearchMethodScratchMatchesSearchMethod(t *testing.T) {
	rng := rand.New(rand.NewSource(412))
	target := randomDNA(rng, 8000)
	idx, err := New(target)
	if err != nil {
		t.Fatal(err)
	}
	sc := NewScratch()
	for trial := 0; trial < 200; trial++ {
		m := 6 + rng.Intn(40)
		p := rng.Intn(len(target) - m)
		pat := append([]byte(nil), target[p:p+m]...)
		for i := 0; i < 2; i++ {
			pat[rng.Intn(m)] = "acgt"[rng.Intn(4)]
		}
		k := rng.Intn(4)
		method := []Method{AlgorithmA, AlgorithmANoPhi, BWTBaseline, STree}[trial%4]
		want, wantStats, err := idx.SearchMethod(pat, k, method)
		if err != nil {
			t.Fatal(err)
		}
		got, gotStats, err := idx.SearchMethodScratch(sc, nil, pat, k, method)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d (%v k=%d): %d vs %d matches", trial, method, k, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d (%v k=%d): match %d: %+v vs %+v", trial, method, k, i, got[i], want[i])
			}
		}
		wantStats.LocateNS, gotStats.LocateNS = 0, 0
		if gotStats != wantStats {
			t.Fatalf("trial %d (%v k=%d): stats %+v vs %+v", trial, method, k, gotStats, wantStats)
		}
	}
}

// TestSearchMethodScratchAppends checks the destination-append
// contract: existing dst entries are preserved and new matches land
// after them.
func TestSearchMethodScratchAppends(t *testing.T) {
	rng := rand.New(rand.NewSource(413))
	target := randomDNA(rng, 2000)
	idx, err := New(target)
	if err != nil {
		t.Fatal(err)
	}
	pat := append([]byte(nil), target[100:120]...)
	sentinel := Match{Pos: -7, Mismatches: 99}
	dst := []Match{sentinel}
	dst, _, err = idx.SearchMethodScratch(NewScratch(), dst, pat, 1, AlgorithmA)
	if err != nil {
		t.Fatal(err)
	}
	if len(dst) < 2 || dst[0] != sentinel {
		t.Fatalf("dst = %+v: sentinel not preserved or no matches appended", dst)
	}
	for _, m := range dst[1:] {
		if m.Pos < 0 {
			t.Fatalf("appended match has invalid position: %+v", m)
		}
	}
}

// TestSearchMethodScratchRejectsNonBWTMethods pins the error contract
// for methods without a scratch path.
func TestSearchMethodScratchRejectsNonBWTMethods(t *testing.T) {
	rng := rand.New(rand.NewSource(414))
	idx, _ := New(randomDNA(rng, 300))
	for _, method := range []Method{Amir, Cole, Online, Seed} {
		if _, _, err := idx.SearchMethodScratch(NewScratch(), nil, []byte("acgtacgt"), 1, method); err == nil {
			t.Errorf("%v: expected an error from the scratch path", method)
		}
	}
}
