package bwtmatch

import (
	"fmt"
	"sync"

	"bwtmatch/internal/alphabet"
	"bwtmatch/internal/core"
)

// Scratch is the reusable working set for the BWT-path search methods
// (AlgorithmA, AlgorithmANoPhi, BWTBaseline, STree): the encoded
// pattern, the M-tree arenas, the open-addressed interval memo and the
// locate buffer, all retained across calls. A warm Scratch makes
// SearchMethodScratch allocation-free apart from growth of the
// caller's destination slice (see DESIGN.md §8).
//
// A Scratch is not safe for concurrent use: pin one per goroutine.
// It holds no reference to any Index, so the same Scratch can serve
// queries against different indexes.
type Scratch struct {
	core  *core.Scratch
	ranks []byte
	cms   []core.Match
}

// NewScratch returns an empty Scratch; buffers grow on first use.
func NewScratch() *Scratch { return &Scratch{core: core.NewScratch()} }

// scratchPool backs the convenience entry points (SearchMethod and
// friends), which borrow a Scratch per call instead of allocating the
// working set from scratch.
var scratchPool = sync.Pool{New: func() any { return NewScratch() }}

// SearchMethodScratch is SearchMethod with caller-managed memory: all
// working state lives in sc and matches are appended to dst (which may
// be nil). With a warm sc and a dst of sufficient capacity, a call
// performs zero heap allocations. Only the BWT-path methods are
// supported; other methods return an error.
func (x *Index) SearchMethodScratch(sc *Scratch, dst []Match, pattern []byte, k int, method Method) ([]Match, Stats, error) {
	var st Stats
	cm, ok := coreMethods[method]
	if !ok {
		return dst, st, fmt.Errorf("%w: method %v has no scratch path (use SearchMethod)", ErrInput, method)
	}
	p, err := alphabet.AppendEncode(sc.ranks[:0], pattern)
	sc.ranks = p
	if err != nil {
		return dst, st, fmt.Errorf("%w: %v", ErrInput, err)
	}
	if len(p) == 0 {
		return dst, st, fmt.Errorf("%w: empty pattern", ErrInput)
	}
	if k < 0 {
		return dst, st, fmt.Errorf("%w: negative k", ErrInput)
	}
	cms, cs, err := x.searcher.FindScratch(sc.core, sc.cms[:0], p, k, cm, nil)
	sc.cms = cms
	if err != nil {
		return dst, st, err
	}
	st.fromCore(cs)
	for _, m := range cms {
		dst = append(dst, Match{Pos: int(m.Pos), Mismatches: m.Mismatches})
	}
	return dst, st, nil
}

// fromCore copies the counters a core search reports into the public
// Stats shape.
func (st *Stats) fromCore(cs core.Stats) {
	st.MTreeLeaves = cs.MTreeLeaves
	st.StepCalls = cs.StepCalls
	st.MemoHits = cs.MemoHits
	st.LocateNS = cs.LocateNS
}

// add accumulates another query's (or another shard's) counters into st;
// sharded searches sum per-shard work into one Stats.
func (st *Stats) add(o Stats) {
	st.MTreeLeaves += o.MTreeLeaves
	st.StepCalls += o.StepCalls
	st.MemoHits += o.MemoHits
	st.Candidates += o.Candidates
	st.Visited += o.Visited
	st.LocateNS += o.LocateNS
}
