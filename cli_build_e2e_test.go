package bwtmatch_test

import (
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestBuildSmoke drives the large-scale build pipeline end to end
// through the real binaries: kmgen stream-builds a sharded container
// in bounded memory, the result is byte-identical to the in-memory
// build, `kmgen -append` grows it in place reusing untouched shard
// frames (and matches a from-scratch rebuild of the concatenated
// input byte for byte), kmsearch agrees with a monolithic build, and
// a running kmserved hot-reloads the grown container on SIGHUP
// without dropping service. `make build-smoke` runs exactly this.
func TestBuildSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bins := t.TempDir()
	for _, name := range []string{"kmgen", "kmsearch", "kmserved"} {
		bin := filepath.Join(bins, name)
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
		cmd.Env = os.Environ()
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, out)
		}
	}
	work := t.TempDir()
	genome := filepath.Join(work, "genome.fa")
	tail := filepath.Join(work, "tail.fa")
	both := filepath.Join(work, "both.fa")
	reads := filepath.Join(work, "reads.fq")
	streamIdx := filepath.Join(work, "stream.bwt")
	memIdx := filepath.Join(work, "mem.bwt")
	rebuilt := filepath.Join(work, "rebuilt.bwt")

	run(t, filepath.Join(bins, "kmgen"),
		"-genome", genome, "-bases", "32768", "-chromosomes", "2", "-seed", "7")
	run(t, filepath.Join(bins, "kmgen"),
		"-genome", tail, "-bases", "8192", "-chromosomes", "1", "-seed", "9")
	run(t, filepath.Join(bins, "kmgen"),
		"-reads", reads, "-from", genome, "-length", "80", "-count", "20", "-seed", "8")

	// Stream build under a tight soft memory limit: the builder holds
	// one shard plus the overlap, never the whole input, so GOMEMLIMIT
	// far below the genome-at-scale footprint is fine.
	streamOut := runEnv(t, []string{"GOMEMLIMIT=64MiB"}, filepath.Join(bins, "kmgen"),
		"-index", streamIdx, "-from", genome, "-stream",
		"-shard-size", "8192", "-max-pattern", "128", "-build-p", "2")
	if !strings.Contains(streamOut, "stream-built sharded index (4 shards, 32768 bases") {
		t.Fatalf("kmgen -stream output: %s", streamOut)
	}
	if regexp.MustCompile(`peak RSS \d+ bytes`).FindString(streamOut) == "" {
		t.Fatalf("kmgen -stream did not report peak RSS: %s", streamOut)
	}

	// The streamed container must be byte-identical to the in-memory
	// sharded build over the same input.
	run(t, filepath.Join(bins, "kmgen"),
		"-index", memIdx, "-from", genome, "-shard-size", "8192", "-max-pattern", "128")
	mustEqualFiles(t, streamIdx, memIdx, "stream build vs in-memory build")

	// And agree with a monolithic build on real searches.
	monoOut := run(t, filepath.Join(bins, "kmsearch"),
		"-genome", genome, "-reads", reads, "-k", "4", "-v")
	shardOut := run(t, filepath.Join(bins, "kmsearch"),
		"-index", streamIdx, "-reads", reads, "-k", "4", "-v")
	if extractMatches(monoOut) != extractMatches(shardOut) {
		t.Fatalf("stream-built index disagrees with monolithic:\n%s\nvs\n%s", monoOut, shardOut)
	}

	// Serve the container, then grow it on disk and hot-reload via SIGHUP.
	daemon := exec.Command(filepath.Join(bins, "kmserved"),
		"-addr", "127.0.0.1:0", "-load", "g="+streamIdx)
	stdout, err := daemon.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	daemon.Stderr = os.Stderr
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { daemon.Process.Kill(); daemon.Wait() })
	base := awaitListening(t, stdout)
	if list := getBody(t, base+"/v1/indexes"); !strings.Contains(list, `"bases":32768`) {
		t.Fatalf("/v1/indexes before append: %s", list)
	}

	appendOut := run(t, filepath.Join(bins, "kmgen"),
		"-append", "-index", streamIdx, "-from", tail, "-build-p", "2")
	if !strings.Contains(appendOut, "32768 -> 40960 bases") ||
		!strings.Contains(appendOut, "shard frames reused") {
		t.Fatalf("kmgen -append output: %s", appendOut)
	}

	// The grown container must be byte-identical to a from-scratch
	// stream build of the concatenated input.
	concatFiles(t, both, genome, tail)
	run(t, filepath.Join(bins, "kmgen"),
		"-index", rebuilt, "-from", both, "-stream", "-shard-size", "8192", "-max-pattern", "128")
	mustEqualFiles(t, streamIdx, rebuilt, "append vs from-scratch rebuild")

	// SIGHUP: the daemon re-reads the grown container without restarting.
	if err := daemon.Process.Signal(syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		list := getBody(t, base+"/v1/indexes")
		if strings.Contains(list, `"bases":40960`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("kmserved never picked up the appended container: %s", list)
		}
		time.Sleep(50 * time.Millisecond)
	}
	resp, err := http.Post(base+"/v1/search", "application/json",
		strings.NewReader(`{"index":"g","k":2,"seq":"acgtacgtacgtacgt"}`))
	if err != nil {
		t.Fatal(err)
	}
	if body := readAll(t, resp); resp.StatusCode != http.StatusOK {
		t.Fatalf("search after reload: %d %s", resp.StatusCode, body)
	}
}

// runEnv is run with extra environment variables for the child process.
func runEnv(t *testing.T, env []string, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Env = append(os.Environ(), env...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func mustEqualFiles(t *testing.T, a, b, what string) {
	t.Helper()
	da, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	db, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(da) != string(db) {
		t.Fatalf("%s: containers differ (%d vs %d bytes)", what, len(da), len(db))
	}
}

func concatFiles(t *testing.T, dst string, srcs ...string) {
	t.Helper()
	var all []byte
	for _, src := range srcs {
		data, err := os.ReadFile(src)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, data...)
	}
	if err := os.WriteFile(dst, all, 0o644); err != nil {
		t.Fatal(err)
	}
}
