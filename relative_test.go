package bwtmatch

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// mutateDNA applies roughly rate-fraction point edits (substitution,
// insertion, deletion) to an ascii DNA string.
func mutateDNA(rng *rand.Rand, s []byte, rate float64) []byte {
	const bases = "acgt"
	out := make([]byte, 0, len(s)+16)
	for _, ch := range s {
		if rng.Float64() < rate {
			switch rng.Intn(3) {
			case 0:
				out = append(out, bases[rng.Intn(4)])
			case 1:
				out = append(out, bases[rng.Intn(4)], ch)
			case 2:
			}
		} else {
			out = append(out, ch)
		}
	}
	if len(out) == 0 {
		out = append(out, 'a')
	}
	return out
}

// TestRelativeEquivalence is the public-layer guarantee: every search
// entry point over a relative index returns byte-identical results to a
// standalone build of the same tenant, including the text-path methods
// that must first reconstruct the target from the delta-bridged BWT.
func TestRelativeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	baseText := randomDNA(rng, 2500)
	base, err := New(baseText)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 3; trial++ {
		tenText := mutateDNA(rng, baseText, 0.02)
		standalone, err := New(tenText)
		if err != nil {
			t.Fatal(err)
		}
		// Default relative SARate (32) differs from the standalone default;
		// results must still be byte-identical, only Locate cost differs.
		rel, err := NewRelative(base, tenText)
		if err != nil {
			t.Fatal(err)
		}
		if rel.Len() != standalone.Len() {
			t.Fatalf("Len %d vs %d", rel.Len(), standalone.Len())
		}
		for q := 0; q < 6; q++ {
			m := 6 + rng.Intn(20)
			p := rng.Intn(len(tenText) - m)
			pattern := append([]byte(nil), tenText[p:p+m]...)
			for f := 0; f < rng.Intn(3); f++ {
				pattern[rng.Intn(m)] = "acgt"[rng.Intn(4)]
			}
			k := rng.Intn(4)
			for _, method := range allMethods {
				got, _, err := rel.SearchMethod(pattern, k, method)
				if err != nil {
					t.Fatalf("%v relative: %v", method, err)
				}
				want, _, err := standalone.SearchMethod(pattern, k, method)
				if err != nil {
					t.Fatalf("%v standalone: %v", method, err)
				}
				if len(got) != len(want) {
					t.Fatalf("%v: %d matches vs %d (pattern %q k=%d)",
						method, len(got), len(want), pattern, k)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%v match %d: %+v vs %+v", method, i, got[i], want[i])
					}
				}
			}
			gotK, gotBest, err := rel.SearchBest(pattern, k)
			if err != nil {
				t.Fatal(err)
			}
			wantK, wantBest, err := standalone.SearchBest(pattern, k)
			if err != nil {
				t.Fatal(err)
			}
			if gotK != wantK || len(gotBest) != len(wantBest) {
				t.Fatalf("SearchBest: k %d/%d, %d vs %d matches", gotK, wantK, len(gotBest), len(wantBest))
			}
		}
		baseHits, _ := rel.DeltaCounters()
		if baseHits == 0 {
			t.Fatal("no base hits recorded after searching")
		}
	}
}

// TestRelativeSaveLoadFile exercises the relative container end to end:
// path-hint resolution, fingerprint binding, LoadAnyFile dispatch, and
// the standalone-save rejection.
func TestRelativeSaveLoadFile(t *testing.T) {
	rng := rand.New(rand.NewSource(402))
	dir := t.TempDir()
	baseText := randomDNA(rng, 1500)
	tenText := mutateDNA(rng, baseText, 0.02)
	base, err := New(baseText)
	if err != nil {
		t.Fatal(err)
	}
	basePath := filepath.Join(dir, "base.km")
	if err := base.SaveFile(basePath); err != nil {
		t.Fatal(err)
	}
	rel, err := NewRelative(base, tenText)
	if err != nil {
		t.Fatal(err)
	}
	rel.SetBasePath("base.km") // relative hint: resolved against the container dir
	tenPath := filepath.Join(dir, "tenant.km")
	if err := rel.SaveFile(tenPath); err != nil {
		t.Fatal(err)
	}

	// The delta container must be far smaller than a standalone save.
	ti, err := os.Stat(tenPath)
	if err != nil {
		t.Fatal(err)
	}
	bi, err := os.Stat(basePath)
	if err != nil {
		t.Fatal(err)
	}
	if ti.Size() >= bi.Size()/2 {
		t.Fatalf("relative container %d bytes vs base %d — no on-disk win", ti.Size(), bi.Size())
	}

	hdr, ok, err := SniffRelative(tenPath)
	if err != nil || !ok {
		t.Fatalf("SniffRelative: ok=%v err=%v", ok, err)
	}
	if hdr.BasePath != "base.km" || hdr.Len != rel.Len() || hdr.BaseLen != base.Len() {
		t.Fatalf("header %+v", hdr)
	}
	if _, ok, err := SniffRelative(basePath); ok || err != nil {
		t.Fatalf("SniffRelative on mono container: ok=%v err=%v", ok, err)
	}

	pattern := []byte(tenText[5:25])
	want, err := rel.Search(pattern, 2)
	if err != nil {
		t.Fatal(err)
	}
	check := func(m Matcher) {
		t.Helper()
		got, err := m.Search(pattern, 2)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%d matches after reload, want %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("match %d: %+v vs %+v", i, got[i], want[i])
			}
		}
	}

	// Explicit base (registry-style sharing).
	rx, err := LoadRelativeFile(tenPath, base)
	if err != nil {
		t.Fatal(err)
	}
	check(rx)
	// Hint-resolved base.
	rx2, err := LoadRelativeFile(tenPath, nil)
	if err != nil {
		t.Fatal(err)
	}
	check(rx2)
	// LoadAnyFile dispatch.
	any, err := LoadAnyFile(tenPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, isRel := any.(*RelativeIndex); !isRel {
		t.Fatalf("LoadAnyFile returned %T", any)
	}
	check(any)

	// A relative-backed inner index must refuse the standalone save path.
	if err := rx.Index.Save(&bytes.Buffer{}); err == nil {
		t.Fatal("standalone Save accepted a relative-backed index")
	}

	// Fingerprint binding: the wrong base is rejected with ErrFormat.
	other, err := New(randomDNA(rng, 1500))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadRelativeFile(tenPath, other); !errors.Is(err, ErrFormat) {
		t.Fatalf("wrong base: got %v, want ErrFormat", err)
	}
}

// TestRelativeRefs checks reference-coordinate search over a relative
// multi-reference build.
func TestRelativeRefs(t *testing.T) {
	rng := rand.New(rand.NewSource(403))
	chr1 := randomDNA(rng, 400)
	chr2 := randomDNA(rng, 300)
	base, err := NewRefs([]Reference{{Name: "chr1", Seq: chr1}, {Name: "chr2", Seq: chr2}})
	if err != nil {
		t.Fatal(err)
	}
	rel, err := NewRelativeRefs(base, []Reference{
		{Name: "chr1", Seq: mutateDNA(rng, chr1, 0.01)},
		{Name: "chr2", Seq: chr2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Refs()) != 2 {
		t.Fatalf("refs: %v", rel.Refs())
	}
	got, err := rel.SearchRefs(chr2[10:30], 1)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range got {
		if m.Ref == "chr2" && m.Pos == 10 && m.Mismatches == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("chr2 occurrence missing: %v", got)
	}
}

// TestRelativizeExisting converts an already-built standalone tenant and
// checks Relativize rejects a relative base.
func TestRelativizeExisting(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	baseText := randomDNA(rng, 900)
	base, err := New(baseText)
	if err != nil {
		t.Fatal(err)
	}
	tenant, err := New(mutateDNA(rng, baseText, 0.02))
	if err != nil {
		t.Fatal(err)
	}
	rel, err := Relativize(base, tenant)
	if err != nil {
		t.Fatal(err)
	}
	if rel.DeltaBytes() >= tenant.SizeBytes() {
		t.Fatalf("delta %d bytes, standalone %d", rel.DeltaBytes(), tenant.SizeBytes())
	}
	if _, err := Relativize(rel.Index, tenant); !errors.Is(err, ErrInput) {
		t.Fatalf("relative base accepted: %v", err)
	}
	if _, err := NewRelative(nil, []byte("acgt")); !errors.Is(err, ErrInput) {
		t.Fatalf("nil base accepted: %v", err)
	}
}
