package bwtmatch

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"bwtmatch/internal/alphabet"
	"bwtmatch/internal/shard"
)

// ShardedIndex is a k-mismatch index over one target partitioned into
// fixed-size shards, each carrying its own FM-index. Shards overlap by
// maxPatternLen-1 bytes, so every window of length <= maxPatternLen
// lies wholly inside at least one shard and sharded search is exact: a
// match is reported by the unique shard that owns its start position,
// and results come back deduplicated and in global position order,
// equal to what a monolithic Index over the same target returns.
//
// Sharding buys three things the monolithic index cannot offer: build
// parallelism (suffix-array construction stays serial per shard but
// distinct shards build concurrently — the SA-IS Amdahl ceiling of
// DESIGN.md §8 becomes per-shard, not per-target), bounded per-structure
// memory, and a unit of distribution (kmserved accounts for and
// observes each shard). The cost is the overlap — shards x
// (maxPatternLen-1) extra indexed bytes — and a pattern-length bound
// fixed at build time.
//
// A ShardedIndex is safe for concurrent use once built or loaded.
type ShardedIndex struct {
	man    shard.Manifest
	refs   []Ref
	shards []lazyShard
	fanout int

	// counters carries per-shard search telemetry; one slot per shard,
	// the slice itself immutable after construction.
	counters []shardCounter

	// closer releases the backing file of a lazily loaded index
	// (LoadShardedFile / LoadAnyFile); nil for built indexes.
	closer io.Closer
}

// Close releases the backing file of an index loaded with
// LoadShardedFile or LoadAnyFile; it is a no-op for built indexes.
// Searches after Close fail on any shard not yet materialized.
func (x *ShardedIndex) Close() error {
	if x.closer == nil {
		return nil
	}
	return x.closer.Close()
}

// lazyShard is one shard slot: either an eagerly built *Index or a
// loader deferred until first use (sharded files load the manifest
// eagerly and each shard payload lazily).
type lazyShard struct {
	span  shard.Span
	bytes atomic.Int64 // resident-size estimate for accounting
	once  sync.Once
	ready atomic.Bool
	idx   *Index
	err   error
	load  func() (*Index, error) // nil for eagerly built shards
}

// get returns the shard's index, materializing it on first use.
func (ls *lazyShard) get() (*Index, error) {
	ls.once.Do(func() {
		if ls.load != nil {
			ls.idx, ls.err = ls.load()
			if ls.err == nil {
				ls.bytes.Store(indexResidentBytes(ls.idx))
			}
		}
		ls.ready.Store(ls.err == nil && ls.idx != nil)
	})
	return ls.idx, ls.err
}

// shardCounter aggregates per-shard search telemetry.
type shardCounter struct {
	searches atomic.Int64
	ns       atomic.Int64
}

// ShardInfo describes one shard of a ShardedIndex: its slice of the
// target, resident cost, load state, and cumulative search telemetry
// (the source of the km_shard_searches_total / km_shard_search_ns_total
// series kmserved exposes).
type ShardInfo struct {
	// Start and End delimit the target bytes this shard indexes
	// (End-Start includes the overlap into the next shard).
	Start, End int
	// Bytes estimates the shard's resident size; for a lazily loaded
	// shard that has not materialized yet it is the on-disk payload size.
	Bytes int64
	// Loaded reports whether the shard's index is materialized.
	Loaded bool
	// Searches counts per-shard sub-searches executed.
	Searches int64
	// SearchNS is the cumulative wall time of those sub-searches.
	SearchNS int64
}

// NewSharded builds a sharded index over a DNA target. Partitioning is
// set by WithShards or WithShardSize (default: GOMAXPROCS shards) and
// the pattern-length bound by WithMaxPatternLen; the remaining Options
// apply to every shard's FM-index. Shards build concurrently: each
// shard's suffix array is serial, but distinct shards overlap on the
// available CPUs.
func NewSharded(target []byte, opts ...Option) (*ShardedIndex, error) {
	return newSharded(target, nil, opts)
}

// NewShardedRefs is NewSharded over multiple named references (the
// sharded sibling of NewRefs): sequences are concatenated and matches
// resolve back to per-reference coordinates via Resolve.
func NewShardedRefs(refs []Reference, opts ...Option) (*ShardedIndex, error) {
	cat, table, err := concatRefs(refs)
	if err != nil {
		return nil, err
	}
	return newSharded(cat, table, opts)
}

func newSharded(target []byte, refs []Ref, opts []Option) (*ShardedIndex, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if len(target) == 0 {
		return nil, fmt.Errorf("%w: empty target", ErrInput)
	}
	if cfg.maxPatternLen < 1 {
		return nil, fmt.Errorf("%w: max pattern length %d", ErrInput, cfg.maxPatternLen)
	}
	if cfg.shardSize < 0 || cfg.shardCount < 0 {
		return nil, fmt.Errorf("%w: shard size %d / count %d", ErrInput, cfg.shardSize, cfg.shardCount)
	}
	overlap := cfg.maxPatternLen - 1
	var plan shard.Plan
	var err error
	switch {
	case cfg.shardSize > 0:
		plan, err = shard.New(len(target), cfg.shardSize, overlap)
	case cfg.shardCount > 0:
		plan, err = shard.ForCount(len(target), cfg.shardCount, overlap)
	default:
		plan, err = shard.ForCount(len(target), runtime.GOMAXPROCS(0), overlap)
	}
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInput, err)
	}
	man := shard.Manifest{MaxPatternLen: cfg.maxPatternLen, Plan: plan, Refs: refsToShard(refs)}
	if err := man.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInput, err)
	}

	x := &ShardedIndex{
		man:      man,
		refs:     refs,
		shards:   make([]lazyShard, plan.Count()),
		counters: make([]shardCounter, plan.Count()),
		fanout:   cfg.shardFanout,
	}
	if x.fanout <= 0 {
		x.fanout = runtime.GOMAXPROCS(0)
	}

	// Build shards concurrently, at most GOMAXPROCS at a time: each
	// build holds a full suffix array of its slice, so unbounded fan-out
	// would spike memory without finishing any sooner.
	// A shared phase sink would race across these concurrent builds
	// (BuildPhases accumulation is unsynchronized), so sharded in-memory
	// construction drops it; the streaming builder, which builds shards
	// serially, honors it.
	cfg.fm.Phases = nil
	fmOpt := func(c *config) { c.fm = cfg.fm }
	workers := runtime.GOMAXPROCS(0)
	if workers > plan.Count() {
		workers = plan.Count()
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= plan.Count() {
					return
				}
				sp := plan.Spans[i]
				ls := &x.shards[i]
				ls.span = sp
				ls.idx, ls.err = New(target[sp.Start:sp.End], fmOpt)
				if ls.err == nil {
					ls.bytes.Store(indexResidentBytes(ls.idx))
					ls.ready.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for i := range x.shards {
		if err := x.shards[i].err; err != nil {
			return nil, fmt.Errorf("bwtmatch: building shard %d: %w", i, err)
		}
	}
	return x, nil
}

// indexResidentBytes estimates one shard's resident cost: the FM-index
// structures plus the retained rank-encoded text.
func indexResidentBytes(idx *Index) int64 {
	return int64(idx.SizeBytes()) + int64(idx.Len())
}

func refsToShard(refs []Ref) []shard.Ref {
	if len(refs) == 0 {
		return nil
	}
	out := make([]shard.Ref, len(refs))
	for i, r := range refs {
		out[i] = shard.Ref{Name: r.Name, Start: r.Start, Len: r.Len}
	}
	return out
}

// Len returns the target length.
func (x *ShardedIndex) Len() int { return x.man.Plan.TotalLen }

// Shards returns the number of shards.
func (x *ShardedIndex) Shards() int { return len(x.shards) }

// MaxPatternLen returns the longest pattern this index answers exactly
// (fixed at build time; the shard overlap is MaxPatternLen-1 bytes).
func (x *ShardedIndex) MaxPatternLen() int { return x.man.MaxPatternLen }

// SizeBytes estimates the resident size of all shards; shards not yet
// lazily materialized contribute their on-disk payload size.
func (x *ShardedIndex) SizeBytes() int {
	var total int64
	for i := range x.shards {
		total += x.shards[i].bytes.Load()
	}
	return int(total)
}

// Refs returns the reference table; nil for single-sequence indexes.
func (x *ShardedIndex) Refs() []Ref { return x.refs }

// Resolve maps a concatenated-target window [pos, pos+length) to
// reference coordinates; ok is false when the window crosses a
// reference boundary or there is no reference table.
func (x *ShardedIndex) Resolve(pos, length int) (ref string, refPos int, ok bool) {
	return resolveRefs(x.refs, pos, length)
}

// ShardInfo snapshots per-shard geometry, load state and telemetry.
func (x *ShardedIndex) ShardInfo() []ShardInfo {
	out := make([]ShardInfo, len(x.shards))
	for i := range x.shards {
		ls := &x.shards[i]
		out[i] = ShardInfo{
			Start:    ls.span.Start,
			End:      ls.span.End,
			Bytes:    ls.bytes.Load(),
			Loaded:   ls.ready.Load(),
			Searches: x.counters[i].searches.Load(),
			SearchNS: x.counters[i].ns.Load(),
		}
	}
	return out
}

// Search finds all occurrences of pattern with at most k mismatches
// using Algorithm A, sorted by global position.
func (x *ShardedIndex) Search(pattern []byte, k int) ([]Match, error) {
	m, _, err := x.SearchMethod(pattern, k, AlgorithmA)
	return m, err
}

// Count returns only the number of k-mismatch occurrences.
func (x *ShardedIndex) Count(pattern []byte, k int) (int, error) {
	m, err := x.Search(pattern, k)
	return len(m), err
}

// SearchMethod runs one of the implemented matchers across all shards,
// fanning out up to WithShardFanout goroutines, and returns the merged
// global-coordinate matches with summed work statistics.
func (x *ShardedIndex) SearchMethod(pattern []byte, k int, method Method) ([]Match, Stats, error) {
	return x.searchAll(pattern, k, method, nil)
}

// SearchMethodTraced is SearchMethod with per-query telemetry: the
// tracer observes one "shard[i]" span per shard, each containing the
// usual phase spans and work events. Tracing serializes the fan-out so
// the shard timeline stays readable.
func (x *ShardedIndex) SearchMethodTraced(pattern []byte, k int, method Method, tr Tracer) ([]Match, Stats, error) {
	return x.searchAll(pattern, k, method, tr)
}

// SearchBest finds the occurrences with the smallest Hamming distance
// not exceeding maxK, by iterative deepening exactly like
// (*Index).SearchBest: distance strata are tried in increasing order
// and the first non-empty one is returned.
func (x *ShardedIndex) SearchBest(pattern []byte, maxK int) (int, []Match, error) {
	if maxK < 0 {
		return -1, nil, fmt.Errorf("%w: negative maxK", ErrInput)
	}
	for k := 0; k <= maxK; k++ {
		matches, err := x.Search(pattern, k)
		if err != nil {
			return -1, nil, err
		}
		if len(matches) == 0 {
			continue
		}
		best := matches[0].Mismatches
		for _, m := range matches {
			if m.Mismatches < best {
				best = m.Mismatches
			}
		}
		out := matches[:0:0]
		for _, m := range matches {
			if m.Mismatches == best {
				out = append(out, m)
			}
		}
		return best, out, nil
	}
	return -1, nil, nil
}

// checkPattern validates a query against the sharded geometry and
// returns the rank-encoded pattern appended to buf.
func (x *ShardedIndex) checkPattern(buf, pattern []byte, k int) ([]byte, error) {
	p, err := alphabet.AppendEncode(buf, pattern)
	if err != nil {
		return p, fmt.Errorf("%w: %v", ErrInput, err)
	}
	if len(p) == 0 {
		return p, fmt.Errorf("%w: empty pattern", ErrInput)
	}
	if len(p) > x.man.MaxPatternLen {
		return p, fmt.Errorf("%w: pattern length %d exceeds the sharded index bound %d (rebuild with WithMaxPatternLen)",
			ErrInput, len(p), x.man.MaxPatternLen)
	}
	if k < 0 {
		return p, fmt.Errorf("%w: negative k", ErrInput)
	}
	return p, nil
}

// searchAll is the fan-out engine behind the convenience entry points.
func (x *ShardedIndex) searchAll(pattern []byte, k int, method Method, tr Tracer) ([]Match, Stats, error) {
	var st Stats
	if _, err := x.checkPattern(nil, pattern, k); err != nil {
		return nil, st, err
	}
	fanout := x.fanout
	if fanout > len(x.shards) {
		fanout = len(x.shards)
	}
	if fanout <= 1 || tr != nil || len(x.shards) == 1 {
		sc := scratchPool.Get().(*Scratch)
		out, st, err := x.searchSerial(sc, nil, pattern, k, method, tr)
		scratchPool.Put(sc)
		return out, st, err
	}

	// Parallel fan-out: workers claim shards from an atomic counter,
	// each with a pooled Scratch; per-shard results land in their slot
	// and concatenate in shard order (owned ranges are disjoint and
	// increasing, so the concatenation is globally sorted).
	perShard := make([][]Match, len(x.shards))
	perStats := make([]Stats, len(x.shards))
	perErr := make([]error, len(x.shards))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < fanout; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := scratchPool.Get().(*Scratch)
			defer scratchPool.Put(sc)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(x.shards) {
					return
				}
				var ms []Match
				ms, perStats[i], perErr[i] = x.searchShard(i, sc, nil, pattern, k, method, nil)
				perShard[i] = ms
			}
		}()
	}
	wg.Wait()
	var out []Match
	for i := range x.shards {
		if perErr[i] != nil {
			return nil, st, perErr[i]
		}
		out = append(out, perShard[i]...)
		st.add(perStats[i])
	}
	return out, st, nil
}

// searchSerial runs the query through every shard in order with one
// Scratch, appending into dst.
func (x *ShardedIndex) searchSerial(sc *Scratch, dst []Match, pattern []byte, k int, method Method, tr Tracer) ([]Match, Stats, error) {
	var st Stats
	// Validate against the sharded geometry up front: the per-shard
	// searches below only know their own slice, so a pattern longer than
	// MaxPatternLen must be rejected here rather than silently missing
	// boundary-straddling matches. The encode lands in the reusable rank
	// buffer, so the zero-alloc contract of the scratch path holds.
	p, err := x.checkPattern(sc.ranks[:0], pattern, k)
	sc.ranks = p
	if err != nil {
		return dst, st, err
	}
	out := dst
	for i := range x.shards {
		var ss Stats
		out, ss, err = x.searchShard(i, sc, out, pattern, k, method, tr)
		if err != nil {
			return dst, st, err
		}
		st.add(ss)
	}
	return out, st, nil
}

// checkShardSet validates a strictly increasing list of shard ordinals
// (the worker-side contract of a coordinator's shard-subset search).
func (x *ShardedIndex) checkShardSet(shards []int) error {
	if len(shards) == 0 {
		return fmt.Errorf("%w: empty shard set", ErrInput)
	}
	prev := -1
	for _, s := range shards {
		if s < 0 || s >= len(x.shards) {
			return fmt.Errorf("%w: shard %d outside [0,%d)", ErrInput, s, len(x.shards))
		}
		if s <= prev {
			return fmt.Errorf("%w: shard set must be strictly increasing (%d after %d)", ErrInput, s, prev)
		}
		prev = s
	}
	return nil
}

// searchShardSet runs the query through the given shards in order with
// one Scratch, appending into dst. The caller has validated the set.
func (x *ShardedIndex) searchShardSet(sc *Scratch, dst []Match, pattern []byte, k int, method Method, shards []int) ([]Match, Stats, error) {
	var st Stats
	p, err := x.checkPattern(sc.ranks[:0], pattern, k)
	sc.ranks = p
	if err != nil {
		return dst, st, err
	}
	out := dst
	for _, i := range shards {
		var ss Stats
		out, ss, err = x.searchShard(i, sc, out, pattern, k, method, nil)
		if err != nil {
			return dst, st, err
		}
		st.add(ss)
	}
	return out, st, nil
}

// searchShard runs the query against shard i, remaps hits to global
// coordinates, and appends only the matches the shard owns — global
// start position inside [span.Start, OwnedEnd(i)), the exactly-once
// reporting invariant.
func (x *ShardedIndex) searchShard(i int, sc *Scratch, dst []Match, pattern []byte, k int, method Method, tr Tracer) ([]Match, Stats, error) {
	var st Stats
	idx, err := x.shards[i].get()
	if err != nil {
		return dst, st, fmt.Errorf("%w: shard %d: %v", ErrFormat, i, err)
	}
	base := x.shards[i].span.Start
	ownedEnd := x.man.Plan.OwnedEnd(i)
	if tr != nil {
		tr.Begin(fmt.Sprintf("shard[%d]", i))
		defer tr.End()
	}
	start := time.Now()
	cm, hasCore := coreMethods[method]
	if hasCore && tr == nil {
		// Zero-allocation path: core matches land in the Scratch arena
		// and only owned hits are copied out.
		p, perr := x.checkPattern(sc.ranks[:0], pattern, k)
		sc.ranks = p
		if perr != nil {
			return dst, st, perr
		}
		cms, cs, ferr := idx.searcher.FindScratch(sc.core, sc.cms[:0], p, k, cm, nil)
		sc.cms = cms
		if ferr != nil {
			return dst, st, ferr
		}
		st.fromCore(cs)
		for _, m := range cms {
			if g := base + int(m.Pos); g < ownedEnd {
				dst = append(dst, Match{Pos: g, Mismatches: m.Mismatches})
			}
		}
	} else {
		ms, ss, serr := idx.SearchMethodTraced(pattern, k, method, tr)
		if serr != nil {
			return dst, st, serr
		}
		st = ss
		for _, m := range ms {
			if g := base + m.Pos; g < ownedEnd {
				dst = append(dst, Match{Pos: g, Mismatches: m.Mismatches})
			}
		}
	}
	x.counters[i].searches.Add(1)
	x.counters[i].ns.Add(time.Since(start).Nanoseconds())
	return dst, st, nil
}

// SearchMethodScratch is the zero-allocation sharded entry point: the
// query runs through every shard serially with caller-managed memory,
// appending owned matches to dst (which may be nil). Only the BWT-path
// methods are supported, exactly like (*Index).SearchMethodScratch;
// with a warm sc and sufficient dst capacity a call performs no heap
// allocation.
func (x *ShardedIndex) SearchMethodScratch(sc *Scratch, dst []Match, pattern []byte, k int, method Method) ([]Match, Stats, error) {
	var st Stats
	if _, ok := coreMethods[method]; !ok {
		return dst, st, fmt.Errorf("%w: method %v has no scratch path (use SearchMethod)", ErrInput, method)
	}
	return x.searchSerial(sc, dst, pattern, k, method, nil)
}

// MapAll runs every query across workers goroutines; it is
// MapAllContext with a background context.
func (x *ShardedIndex) MapAll(queries []Query, method Method, workers int) []Result {
	return x.MapAllContext(context.Background(), queries, method, workers)
}

// MapShards runs every query against only the given shards; it is
// MapShardsContext with a background context.
func (x *ShardedIndex) MapShards(queries []Query, method Method, workers int, shards []int) []Result {
	return x.MapShardsContext(context.Background(), queries, method, workers, shards)
}

// MapShardsContext is MapAllContext restricted to a subset of shards:
// every query runs against exactly the shards listed (strictly
// increasing ordinals), and each result carries only the matches those
// shards own, in global position order. Because owned ranges partition
// [0, Len()), a coordinator that spreads disjoint shard subsets over
// worker processes and concatenates the per-subset results by position
// reconstructs exactly what MapAllContext over all shards returns —
// the cluster tier's exactly-once contract. An invalid shard set fails
// every query with ErrInput.
func (x *ShardedIndex) MapShardsContext(ctx context.Context, queries []Query, method Method, workers int, shards []int) []Result {
	results := make([]Result, len(queries))
	if err := x.checkShardSet(shards); err != nil {
		for i := range results {
			results[i] = Result{Err: err}
		}
		return results
	}
	run := func(sc *Scratch, i int) {
		if err := ctx.Err(); err != nil {
			results[i] = Result{Err: err}
			return
		}
		q := queries[i]
		m, st, err := x.searchShardSet(sc, nil, q.Pattern, q.K, method, shards)
		results[i] = Result{Matches: m, Stats: st, Err: err}
	}
	runQueries(len(queries), workers, run)
	return results
}

// MapAllContext runs every query with the given method across workers
// goroutines and returns results in query order, with the same
// distribution, ordering and cancellation contract as
// (*Index).MapAllContext. Parallelism is across queries, not shards:
// each worker pins one Scratch and walks all shards serially per query,
// so the zero-alloc scratch path is reused with no nested fan-out.
func (x *ShardedIndex) MapAllContext(ctx context.Context, queries []Query, method Method, workers int) []Result {
	results := make([]Result, len(queries))
	_, coreMethod := coreMethods[method]
	run := func(sc *Scratch, i int) {
		if err := ctx.Err(); err != nil {
			results[i] = Result{Err: err}
			return
		}
		q := queries[i]
		var (
			m   []Match
			st  Stats
			err error
		)
		if coreMethod {
			m, st, err = x.SearchMethodScratch(sc, nil, q.Pattern, q.K, method)
		} else {
			m, st, err = x.searchSerial(sc, nil, q.Pattern, q.K, method, nil)
		}
		results[i] = Result{Matches: m, Stats: st, Err: err}
	}
	runQueries(len(queries), workers, run)
	return results
}

// CheckInvariants verifies cross-shard consistency: the manifest's
// geometry (deep-checked under -tags kminvariants), per-shard FM-index
// structure for every materialized shard, shard text lengths against
// their spans, and byte equality of every overlap region between
// consecutive loaded shards. Unloaded shards are skipped, not forced.
func (x *ShardedIndex) CheckInvariants() error {
	if err := x.man.Validate(); err != nil {
		return err
	}
	if err := x.man.CheckInvariants(); err != nil {
		return err
	}
	for i := range x.shards {
		ls := &x.shards[i]
		if !ls.ready.Load() {
			continue
		}
		if ls.idx.Len() != ls.span.Len() {
			return fmt.Errorf("bwtmatch: shard %d holds %d bytes for span [%d,%d)",
				i, ls.idx.Len(), ls.span.Start, ls.span.End)
		}
		if err := ls.idx.searcher.Index().CheckInvariants(); err != nil {
			return fmt.Errorf("bwtmatch: shard %d: %w", i, err)
		}
		if i == 0 {
			continue
		}
		prev := &x.shards[i-1]
		if !prev.ready.Load() {
			continue
		}
		// The tail of shard i-1 past this shard's start must equal this
		// shard's head byte for byte: both index the same target bytes.
		ovLen := prev.span.End - ls.span.Start
		if ovLen <= 0 {
			continue
		}
		a := prev.idx.text[ls.span.Start-prev.span.Start:]
		b := ls.idx.text[:ovLen]
		for j := range b {
			if a[j] != b[j] {
				return fmt.Errorf("bwtmatch: shards %d/%d disagree at global position %d",
					i-1, i, ls.span.Start+j)
			}
		}
	}
	return nil
}
