// Benchmarks regenerating every table and figure of the paper's
// evaluation (see EXPERIMENTS.md for the mapping and for full-scale runs
// via cmd/kmbench). Each benchmark prints or measures the same quantity
// the corresponding artifact reports, on a reduced-scale corpus so that
// `go test -bench=.` completes on a laptop; pass -benchscale to change.
package bwtmatch_test

import (
	"flag"
	"fmt"
	"sync"
	"testing"

	"bwtmatch"
	"bwtmatch/internal/bench"
)

var benchScale = flag.Int("benchscale", 32, "corpus divisor for benchmarks (1 = 16 MiB largest genome)")

// corpora lazily builds and caches one corpus per genome spec.
var corpora struct {
	mu    sync.Mutex
	cache map[string]*bench.Corpus
}

func corpus(b *testing.B, specIdx int) *bench.Corpus {
	b.Helper()
	corpora.mu.Lock()
	defer corpora.mu.Unlock()
	if corpora.cache == nil {
		corpora.cache = make(map[string]*bench.Corpus)
	}
	spec := bench.Specs(*benchScale)[specIdx]
	if c, ok := corpora.cache[spec.Name]; ok {
		return c
	}
	c, err := bench.BuildCorpus(spec)
	if err != nil {
		b.Fatal(err)
	}
	corpora.cache[spec.Name] = c
	return c
}

func reads(b *testing.B, c *bench.Corpus, length, count int) [][]byte {
	b.Helper()
	rs, err := c.Reads(length, count, 42)
	if err != nil {
		b.Fatal(err)
	}
	return rs
}

// timeReads runs every read through the method once per iteration.
func timeReads(b *testing.B, c *bench.Corpus, rs [][]byte, k int, m bwtmatch.Method) {
	b.Helper()
	// Warm lazy structures (Cole's suffix tree) outside the timing.
	if _, _, err := c.Index.SearchMethod(rs[0], k, m); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range rs {
			if _, _, err := c.Index.SearchMethod(r, k, m); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(rs)), "reads/op")
}

// BenchmarkTable1_IndexBuild measures index construction per genome
// (Table 1's corpus column plus our build-cost extension).
func BenchmarkTable1_IndexBuild(b *testing.B) {
	for i, spec := range bench.Specs(*benchScale) {
		c := corpus(b, i) // generation cached; we re-build only the index
		b.Run(spec.Name, func(b *testing.B) {
			b.SetBytes(int64(spec.Bases))
			for i := 0; i < b.N; i++ {
				idx, err := bwtmatch.New(decoded(c))
				if err != nil {
					b.Fatal(err)
				}
				_ = idx.SizeBytes()
			}
		})
	}
}

func decoded(c *bench.Corpus) []byte {
	out := make([]byte, len(c.Ranks))
	const bases = "$acgt"
	for i, r := range c.Ranks {
		out[i] = bases[r]
	}
	return out
}

// BenchmarkFig11a_TimeVsK sweeps k for the four compared methods
// (Fig. 11(a): average matching time vs k, reads of length 100).
func BenchmarkFig11a_TimeVsK(b *testing.B) {
	c := corpus(b, 0)
	rs := reads(b, c, 100, 10)
	for _, k := range []int{1, 2, 3, 4, 5} {
		for _, m := range bench.Methods {
			b.Run(fmt.Sprintf("k=%d/%v", k, m), func(b *testing.B) {
				timeReads(b, c, rs, k, m)
			})
		}
	}
}

// BenchmarkFig11b_TimeVsLength sweeps read length at k = 5 (Fig. 11(b)).
func BenchmarkFig11b_TimeVsLength(b *testing.B) {
	c := corpus(b, 0)
	for _, length := range []int{50, 100, 200, 300} {
		rs := reads(b, c, length, 10)
		for _, m := range bench.Methods {
			b.Run(fmt.Sprintf("len=%d/%v", length, m), func(b *testing.B) {
				timeReads(b, c, rs, 5, m)
			})
		}
	}
}

// BenchmarkTable2_MTreeLeaves measures Algorithm A over the paper's
// k/length grid and reports n′ (Table 2) as a metric.
func BenchmarkTable2_MTreeLeaves(b *testing.B) {
	c := corpus(b, 0)
	for _, g := range []struct{ k, length int }{{5, 50}, {10, 100}, {20, 150}, {30, 200}} {
		rs := reads(b, c, g.length, 5)
		b.Run(fmt.Sprintf("k=%d/len=%d", g.k, g.length), func(b *testing.B) {
			total := 0
			for i := 0; i < b.N; i++ {
				total = 0
				for _, r := range rs {
					n, err := c.Index.MTreeLeaves(r, g.k)
					if err != nil {
						b.Fatal(err)
					}
					total += n
				}
			}
			b.ReportMetric(float64(total)/float64(len(rs)), "leaves/read")
		})
	}
}

// BenchmarkFig12_PerGenome compares the four methods across all five
// genomes (reconstructed Fig. 12), k = 5, length 100.
func BenchmarkFig12_PerGenome(b *testing.B) {
	for i, spec := range bench.Specs(*benchScale) {
		c := corpus(b, i)
		rs := reads(b, c, 100, 5)
		for _, m := range bench.Methods {
			b.Run(fmt.Sprintf("%s/%v", spec.Name, m), func(b *testing.B) {
				timeReads(b, c, rs, 5, m)
			})
		}
	}
}

// BenchmarkFig13_OccRate measures the rankall sampling trade-off
// (reconstructed Fig. 13): Algorithm A query time per occ rate; index
// size is reported as a metric.
func BenchmarkFig13_OccRate(b *testing.B) {
	base := corpus(b, 0)
	for _, rate := range []int{4, 16, 64, 128} {
		b.Run(fmt.Sprintf("occrate=%d", rate), func(b *testing.B) {
			idx, err := bwtmatch.New(decoded(base), bwtmatch.WithOccRate(rate))
			if err != nil {
				b.Fatal(err)
			}
			rs := reads(b, base, 100, 10)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, r := range rs {
					if _, err := idx.Search(r, 5); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(idx.SizeBytes()*8)/float64(idx.Len()), "bits/base")
		})
	}
}

// BenchmarkSeedExtension compares the seed-and-extend extension against
// Algorithm A across k (the kmbench "seedext" experiment).
func BenchmarkSeedExtension(b *testing.B) {
	c := corpus(b, 0)
	rs := reads(b, c, 100, 10)
	for _, k := range []int{2, 4} {
		for _, m := range []bwtmatch.Method{bwtmatch.AlgorithmA, bwtmatch.Seed} {
			b.Run(fmt.Sprintf("k=%d/%v", k, m), func(b *testing.B) {
				timeReads(b, c, rs, k, m)
			})
		}
	}
}

// BenchmarkAblation quantifies the 2x2 design space of DESIGN.md: the
// φ(i) bound and the M-tree memo, separately and together.
func BenchmarkAblation(b *testing.B) {
	c := corpus(b, 0)
	rs := reads(b, c, 100, 10)
	variants := []bwtmatch.Method{
		bwtmatch.STree, bwtmatch.BWTBaseline,
		bwtmatch.AlgorithmANoPhi, bwtmatch.AlgorithmA,
	}
	for _, k := range []int{3, 5} {
		for _, m := range variants {
			b.Run(fmt.Sprintf("k=%d/%v", k, m), func(b *testing.B) {
				timeReads(b, c, rs, k, m)
			})
		}
	}
}
