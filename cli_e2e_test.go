package bwtmatch_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCmds compiles the three CLIs once per test binary run.
func buildCmds(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for _, name := range []string{"kmgen", "kmsearch", "kmbench"} {
		bin := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
		cmd.Env = os.Environ()
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, out)
		}
	}
	return dir
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bins := buildCmds(t)
	work := t.TempDir()
	genome := filepath.Join(work, "genome.fa")
	reads := filepath.Join(work, "reads.fq")
	index := filepath.Join(work, "genome.bwt")

	// Generate a two-chromosome genome and a read set.
	out := run(t, filepath.Join(bins, "kmgen"),
		"-genome", genome, "-bases", "65536", "-chromosomes", "2", "-seed", "5")
	if !strings.Contains(out, "2 chromosome(s)") {
		t.Fatalf("kmgen genome output: %s", out)
	}
	out = run(t, filepath.Join(bins, "kmgen"),
		"-reads", reads, "-from", genome, "-length", "80", "-count", "20", "-seed", "6")
	if !strings.Contains(out, "wrote 20 reads") {
		t.Fatalf("kmgen reads output: %s", out)
	}

	// Index once with -save, search from the saved index, compare methods.
	first := run(t, filepath.Join(bins, "kmsearch"),
		"-genome", genome, "-save", index, "-reads", reads, "-k", "4", "-v")
	second := run(t, filepath.Join(bins, "kmsearch"),
		"-index", index, "-reads", reads, "-k", "4", "-v", "-p", "4")
	if extractMatches(first) != extractMatches(second) {
		t.Fatalf("saved-index run disagrees:\n%s\nvs\n%s", first, second)
	}
	seed := run(t, filepath.Join(bins, "kmsearch"),
		"-index", index, "-reads", reads, "-k", "4", "-v", "-method", "seed")
	if extractMatches(first) != extractMatches(seed) {
		t.Fatalf("seed method disagrees:\n%s\nvs\n%s", first, seed)
	}

	// Every simulated read (2% errors on 80 bp) should map at k=4.
	for _, line := range strings.Split(strings.TrimSpace(extractMatches(first)), "\n") {
		fields := strings.Fields(line)
		if len(fields) < 2 || fields[1] == "0" {
			t.Fatalf("unmapped read in output line %q", line)
		}
	}

	// SAM output: header must list both chromosomes, and every mapped
	// read must carry an NM tag.
	sam := run(t, filepath.Join(bins, "kmsearch"),
		"-index", index, "-reads", reads, "-k", "4", "-sam")
	if !strings.Contains(sam, "@SQ\tSN:chr1") || !strings.Contains(sam, "@SQ\tSN:chr2") {
		t.Fatalf("SAM header missing chromosomes:\n%s", sam[:200])
	}
	mapped := 0
	for _, line := range strings.Split(sam, "\n") {
		if strings.HasPrefix(line, "read") && strings.Contains(line, "NM:i:") {
			mapped++
		}
	}
	if mapped == 0 {
		t.Fatal("no mapped SAM records")
	}

	// One small kmbench experiment end to end.
	bench := run(t, filepath.Join(bins, "kmbench"),
		"-exp", "table1", "-scale", "512", "-reads", "2")
	if !strings.Contains(bench, "rat-sim") {
		t.Fatalf("kmbench output: %s", bench)
	}

	// -trace must produce loadable Chrome trace-event JSON with one span
	// per read, and the same match counts as the untraced run.
	tracePath := filepath.Join(work, "trace.json")
	traced := run(t, filepath.Join(bins, "kmsearch"),
		"-index", index, "-reads", reads, "-k", "4", "-v", "-trace", tracePath)
	if extractMatches(first) != extractMatches(traced) {
		t.Fatalf("traced run disagrees:\n%s\nvs\n%s", first, traced)
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	checkChromeTrace(t, data)
	trace := string(data)
	for _, want := range []string{`"name":"read0 `, `"name":"read19 `, `"name":"traverse"`, `"name":"leaf"`} {
		if !strings.Contains(trace, want) {
			t.Errorf("trace missing %s event", want)
		}
	}
}

// extractMatches drops stderr-style status lines that vary between runs.
func extractMatches(out string) string {
	var keep []string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "read") {
			keep = append(keep, line)
		}
	}
	return strings.Join(keep, "\n")
}
