package bwtmatch_test

import (
	"fmt"
	"log"

	"bwtmatch"
)

// The paper's introductory example (§I): r = aaaaacaaac occurs in
// s = ccacacagaagcc at 1-based position 3 with exactly 4 mismatches.
func ExampleIndex_Search() {
	idx, err := bwtmatch.New([]byte("ccacacagaagcc"))
	if err != nil {
		log.Fatal(err)
	}
	matches, err := idx.Search([]byte("aaaaacaaac"), 4)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range matches {
		fmt.Printf("pos %d, %d mismatches\n", m.Pos, m.Mismatches)
	}
	// Output:
	// pos 2, 4 mismatches
}

func ExampleIndex_SearchMethod() {
	idx, err := bwtmatch.New([]byte("acagacatacagata"))
	if err != nil {
		log.Fatal(err)
	}
	for _, method := range []bwtmatch.Method{bwtmatch.AlgorithmA, bwtmatch.Amir, bwtmatch.Cole} {
		matches, _, err := idx.SearchMethod([]byte("acagaca"), 2, method)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d matches\n", method, len(matches))
	}
	// Output:
	// A(): 3 matches
	// Amir: 3 matches
	// Cole: 3 matches
}

func ExampleIndex_SearchWildcard() {
	idx, err := bwtmatch.New([]byte("acgtacatacgt"))
	if err != nil {
		log.Fatal(err)
	}
	pos, err := idx.SearchWildcard([]byte("acNt"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(pos)
	// Output:
	// [0 4 8]
}

func ExampleNewRefs() {
	idx, err := bwtmatch.NewRefs([]bwtmatch.Reference{
		{Name: "chr1", Seq: []byte("acgtacgtaaaa")},
		{Name: "chr2", Seq: []byte("ttacgtcagtgg")},
	})
	if err != nil {
		log.Fatal(err)
	}
	matches, err := idx.SearchRefs([]byte("acgt"), 0)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range matches {
		fmt.Printf("%s:%d\n", m.Ref, m.Pos)
	}
	// Output:
	// chr1:0
	// chr1:4
	// chr2:2
}

func ExampleIndex_SearchEdits() {
	idx, err := bwtmatch.New([]byte("acgtacgtacgt"))
	if err != nil {
		log.Fatal(err)
	}
	// "acta" is one deletion away from "acgta".
	matches, err := idx.SearchEdits([]byte("acta"), 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d loci within 1 edit\n", len(matches))
	// Output:
	// 2 loci within 1 edit
}
