package bwtmatch

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestNewRefsBasics(t *testing.T) {
	idx, err := NewRefs([]Reference{
		{Name: "chr1", Seq: []byte("acgtacgt")},
		{Name: "chr2", Seq: []byte("ttttcagt")},
	})
	if err != nil {
		t.Fatal(err)
	}
	refs := idx.Refs()
	if len(refs) != 2 || refs[0].Name != "chr1" || refs[1].Start != 8 || refs[1].Len != 8 {
		t.Fatalf("refs = %+v", refs)
	}
	if got := idx.RefSeq(refs[1]); !bytes.Equal(got, []byte("ttttcagt")) {
		t.Fatalf("RefSeq = %q", got)
	}
}

func TestNewRefsValidation(t *testing.T) {
	if _, err := NewRefs(nil); err == nil {
		t.Error("no references accepted")
	}
	if _, err := NewRefs([]Reference{{Name: "x", Seq: nil}}); err == nil {
		t.Error("empty reference accepted")
	}
	if _, err := NewRefs([]Reference{{Name: "x", Seq: []byte("acN")}}); err == nil {
		t.Error("dirty reference accepted")
	}
}

func TestNewRefsDefaultNames(t *testing.T) {
	idx, _ := NewRefs([]Reference{{Seq: []byte("acgt")}, {Seq: []byte("ttaa")}})
	refs := idx.Refs()
	if refs[0].Name != "ref0" || refs[1].Name != "ref1" {
		t.Fatalf("default names = %+v", refs)
	}
}

func TestSearchRefsDropsBoundarySpans(t *testing.T) {
	// "gtca" occurs only across the chr1|chr2 boundary ("..gt"+"ca..").
	idx, err := NewRefs([]Reference{
		{Name: "chr1", Seq: []byte("aaaagt")},
		{Name: "chr2", Seq: []byte("cattttt")},
	})
	if err != nil {
		t.Fatal(err)
	}
	flat, err := idx.Search([]byte("gtca"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(flat) != 1 {
		t.Fatalf("expected the artifact in flat search, got %v", flat)
	}
	scoped, err := idx.SearchRefs([]byte("gtca"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(scoped) != 0 {
		t.Fatalf("boundary artifact leaked into SearchRefs: %v", scoped)
	}
}

func TestSearchRefsCoordinates(t *testing.T) {
	rng := rand.New(rand.NewSource(221))
	chr1 := randomDNA(rng, 400)
	chr2 := randomDNA(rng, 300)
	idx, err := NewRefs([]Reference{{Name: "chr1", Seq: chr1}, {Name: "chr2", Seq: chr2}})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		var src []byte
		var name string
		if rng.Intn(2) == 0 {
			src, name = chr1, "chr1"
		} else {
			src, name = chr2, "chr2"
		}
		m := 20
		p := rng.Intn(len(src) - m)
		pattern := append([]byte(nil), src[p:p+m]...)
		pattern[rng.Intn(m)] = "acgt"[rng.Intn(4)]
		got, err := idx.SearchRefs(pattern, 1)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, g := range got {
			if g.Ref == name && g.Pos == p {
				found = true
			}
			// Verify every reported coordinate against its reference.
			ref := idx.Refs()[0]
			if g.Ref == "chr2" {
				ref = idx.Refs()[1]
			}
			window := idx.RefSeq(ref)[g.Pos : g.Pos+m]
			mism := 0
			for i := range window {
				if window[i] != pattern[i] {
					mism++
				}
			}
			if mism != g.Mismatches {
				t.Fatalf("reported %d mismatches at %s:%d, actual %d", g.Mismatches, g.Ref, g.Pos, mism)
			}
		}
		if !found {
			t.Fatalf("planted window %s:%d not found: %v", name, p, got)
		}
	}
}

func TestSearchRefsRequiresTable(t *testing.T) {
	idx, _ := New([]byte("acgtacgt"))
	if _, err := idx.SearchRefs([]byte("acg"), 0); err == nil {
		t.Error("SearchRefs on a plain index should fail")
	}
	if _, _, ok := idx.Resolve(0, 2); ok {
		t.Error("Resolve on a plain index should report !ok")
	}
}

func TestResolve(t *testing.T) {
	idx, _ := NewRefs([]Reference{
		{Name: "a", Seq: []byte("acgt")},
		{Name: "b", Seq: []byte("ttaacc")},
	})
	cases := []struct {
		pos, length int
		ref         string
		refPos      int
		ok          bool
	}{
		{0, 4, "a", 0, true},
		{3, 1, "a", 3, true},
		{3, 2, "", 0, false}, // crosses a|b
		{4, 6, "b", 0, true},
		{9, 1, "b", 5, true},
		{9, 2, "", 0, false}, // runs past the end
	}
	for _, c := range cases {
		ref, pos, ok := idx.Resolve(c.pos, c.length)
		if ok != c.ok || ref != c.ref || pos != c.refPos {
			t.Errorf("Resolve(%d,%d) = (%q,%d,%v), want (%q,%d,%v)",
				c.pos, c.length, ref, pos, ok, c.ref, c.refPos, c.ok)
		}
	}
}

func TestRefsSurviveSaveLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(222))
	idx, err := NewRefs([]Reference{
		{Name: "chrX", Seq: randomDNA(rng, 200)},
		{Name: "chrY", Seq: randomDNA(rng, 100)},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Refs()) != 2 || loaded.Refs()[0].Name != "chrX" || loaded.Refs()[1].Len != 100 {
		t.Fatalf("refs after reload = %+v", loaded.Refs())
	}
	pattern := idx.RefSeq(idx.Refs()[1])[10:40]
	a, _ := idx.SearchRefs(pattern, 1)
	b, _ := loaded.SearchRefs(pattern, 1)
	if len(a) != len(b) {
		t.Fatalf("SearchRefs differs after reload")
	}
}
