module bwtmatch

go 1.24
