package bwtmatch

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// writeInPieces feeds seq to the builder in ragged chunks so shard
// boundaries land mid-Write.
func writeInPieces(t *testing.T, b *StreamBuilder, rng *rand.Rand, seq []byte) {
	t.Helper()
	for len(seq) > 0 {
		n := 1 + rng.Intn(257)
		if n > len(seq) {
			n = len(seq)
		}
		if _, err := b.Write(seq[:n]); err != nil {
			t.Fatalf("Write: %v", err)
		}
		seq = seq[n:]
	}
}

// TestStreamBuilderByteIdentical checks the satellite contract: a
// streaming build produces byte-for-byte the file an in-memory
// NewShardedRefs + Save produces, across shard-boundary edge cases and
// FM-index layouts.
func TestStreamBuilderByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	dir := t.TempDir()
	const shardSize, maxPat = 512, 33 // overlap 32
	layouts := []struct {
		name string
		opts []Option
	}{
		{"default", nil},
		{"packed-twolevel", []Option{WithPackedBWT(), WithTwoLevelOcc(), WithSARate(8)}},
		{"workers", []Option{WithBuildWorkers(3)}},
	}
	totals := []int{1, shardSize - 1, shardSize, shardSize + 1,
		2 * shardSize, 2*shardSize + maxPat - 1, 7777}
	for _, lay := range layouts {
		for _, total := range totals {
			opts := append([]Option{WithShardSize(shardSize), WithMaxPatternLen(maxPat)}, lay.opts...)
			seq := randomDNA(rng, total)

			mono, err := NewSharded(seq, opts...)
			if err != nil {
				t.Fatalf("%s/%d: NewSharded: %v", lay.name, total, err)
			}
			var want bytes.Buffer
			if err := mono.Save(&want); err != nil {
				t.Fatalf("%s/%d: Save: %v", lay.name, total, err)
			}

			path := filepath.Join(dir, "stream.idx")
			sb, err := NewStreamBuilder(path, opts...)
			if err != nil {
				t.Fatalf("%s/%d: NewStreamBuilder: %v", lay.name, total, err)
			}
			writeInPieces(t, sb, rng, seq)
			if err := sb.Close(); err != nil {
				t.Fatalf("%s/%d: Close: %v", lay.name, total, err)
			}
			got, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want.Bytes()) {
				t.Fatalf("%s/%d: streaming container differs from in-memory Save (%d vs %d bytes)",
					lay.name, total, len(got), want.Len())
			}
		}
	}
}

// TestStreamBuilderRefsByteIdentical is the multi-reference variant:
// StartRef must reproduce the NewShardedRefs reference table exactly,
// placeholder names included.
func TestStreamBuilderRefsByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	dir := t.TempDir()
	refs := []Reference{
		{Name: "chr1", Seq: randomDNA(rng, 3000)},
		{Name: "", Seq: randomDNA(rng, 517)}, // placeholder-named
		{Name: "chrM", Seq: randomDNA(rng, 1234)},
	}
	opts := []Option{WithShardSize(700), WithMaxPatternLen(65)}

	mono, err := NewShardedRefs(refs, opts...)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := mono.Save(&want); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, "refs.idx")
	sb, err := NewStreamBuilder(path, opts...)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range refs {
		sb.StartRef(r.Name)
		writeInPieces(t, sb, rng, r.Seq)
	}
	if err := sb.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("streaming refs container differs from in-memory Save (%d vs %d bytes)", len(got), want.Len())
	}

	// And it loads and searches like the in-memory one.
	x, err := LoadShardedFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	pat := refs[0].Seq[100:140]
	gotM, err := x.Search(pat, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantM, err := mono.Search(pat, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotM) == 0 || len(gotM) != len(wantM) {
		t.Fatalf("stream-built search returned %d matches, in-memory %d", len(gotM), len(wantM))
	}
}

// TestStreamBuilderErrors pins the failure modes: missing WithShardSize,
// empty input, empty reference, invalid bytes (sticky), write after
// Close.
func TestStreamBuilderErrors(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.idx")

	if _, err := NewStreamBuilder(path); !errors.Is(err, ErrInput) {
		t.Fatalf("no shard size: err = %v, want ErrInput", err)
	}
	if _, err := NewStreamBuilder(path, WithShards(4)); !errors.Is(err, ErrInput) {
		t.Fatalf("WithShards: err = %v, want ErrInput", err)
	}

	sb, err := NewStreamBuilder(path, WithShardSize(64))
	if err != nil {
		t.Fatal(err)
	}
	if err := sb.Close(); !errors.Is(err, ErrInput) {
		t.Fatalf("empty input Close: err = %v, want ErrInput", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("failed build left a file at the target path")
	}

	sb, err = NewStreamBuilder(path, WithShardSize(64))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sb.Write([]byte("acgtNNN")); !errors.Is(err, ErrInput) {
		t.Fatalf("invalid byte: err = %v, want ErrInput", err)
	}
	if _, err := sb.Write([]byte("acgt")); !errors.Is(err, ErrInput) {
		t.Fatalf("sticky error: err = %v, want ErrInput", err)
	}
	if err := sb.Close(); !errors.Is(err, ErrInput) {
		t.Fatalf("Close after failed Write: err = %v, want ErrInput", err)
	}

	sb, err = NewStreamBuilder(path, WithShardSize(64))
	if err != nil {
		t.Fatal(err)
	}
	sb.StartRef("a")
	sb.StartRef("b") // "a" closed empty
	if err := sb.Close(); !errors.Is(err, ErrInput) {
		t.Fatalf("empty reference: err = %v, want ErrInput", err)
	}

	sb, err = NewStreamBuilder(path, WithShardSize(64))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sb.Write([]byte("acgtacgt")); err != nil {
		t.Fatal(err)
	}
	if err := sb.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := sb.Write([]byte("acgt")); !errors.Is(err, ErrInput) {
		t.Fatalf("write after Close: err = %v, want ErrInput", err)
	}

	// No spill temp files left behind in any of the above.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "x.idx" {
			t.Fatalf("leftover temp file %q", e.Name())
		}
	}
}

// TestOpenAppendEquivalence checks the append contract end to end: the
// grown container is byte-identical to a from-scratch build of the full
// target, prior full-extent payloads are copied rather than rebuilt,
// and searches (including ones straddling the old end of input) agree
// with a monolithic index.
func TestOpenAppendEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	dir := t.TempDir()
	const shardSize, maxPat = 512, 33
	base := randomDNA(rng, 5000)
	tail := randomDNA(rng, 3000)
	opts := []Option{WithShardSize(shardSize), WithMaxPatternLen(maxPat)}

	// Base container, stream-built.
	path := filepath.Join(dir, "grow.idx")
	sb, err := NewStreamBuilder(path, opts...)
	if err != nil {
		t.Fatal(err)
	}
	sb.StartRef("base")
	writeInPieces(t, sb, rng, base)
	if err := sb.Close(); err != nil {
		t.Fatal(err)
	}

	// Append the tail. Geometry options are omitted: the manifest rules.
	ab, err := OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	if ab.Len() != len(base) {
		t.Fatalf("OpenAppend resumed at %d bytes, want %d", ab.Len(), len(base))
	}
	ab.StartRef("tail")
	writeInPieces(t, ab, rng, tail)
	if err := ab.Close(); err != nil {
		t.Fatal(err)
	}
	// Old plan: ceil(5000/512) = 10 shards, spans 0..8 full (512+32
	// bytes each), span 9 cut at 5000 — exactly 9 frames copied.
	if got, want := ab.Appended(), 9; got != want {
		t.Fatalf("append copied %d frames, want %d", got, want)
	}

	// From-scratch streaming build of the full target.
	fullPath := filepath.Join(dir, "full.idx")
	fb, err := NewStreamBuilder(fullPath, opts...)
	if err != nil {
		t.Fatal(err)
	}
	fb.StartRef("base")
	writeInPieces(t, fb, rng, base)
	fb.StartRef("tail")
	writeInPieces(t, fb, rng, tail)
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}

	grown, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	scratch, err := os.ReadFile(fullPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(grown, scratch) {
		t.Fatalf("appended container differs from from-scratch rebuild (%d vs %d bytes)", len(grown), len(scratch))
	}

	// Search equivalence against a monolithic index over the full
	// target, with patterns inside the old part, inside the tail, and
	// straddling the old end of input.
	full := append(append([]byte(nil), base...), tail...)
	mono, err := New(full)
	if err != nil {
		t.Fatal(err)
	}
	x, err := LoadShardedFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	for _, at := range []int{0, 1111, len(base) - 16, len(base) - 1, len(base), len(full) - 32} {
		pat := full[at : at+32]
		for k := 0; k <= 2; k++ {
			gotM, err := x.Search(pat, k)
			if err != nil {
				t.Fatal(err)
			}
			wantM, err := mono.Search(pat, k)
			if err != nil {
				t.Fatal(err)
			}
			if len(gotM) != len(wantM) {
				t.Fatalf("at=%d k=%d: appended index found %d matches, monolithic %d", at, k, len(gotM), len(wantM))
			}
			for i := range gotM {
				if gotM[i] != wantM[i] {
					t.Fatalf("at=%d k=%d: match %d = %+v, want %+v", at, k, i, gotM[i], wantM[i])
				}
			}
		}
	}
}

// TestOpenAppendGeometryValidation: appending with mismatched geometry
// options must fail up front with ErrInput, and appending to a
// monolithic container with ErrFormat.
func TestOpenAppendGeometryValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	dir := t.TempDir()
	path := filepath.Join(dir, "geo.idx")
	sb, err := NewStreamBuilder(path, WithShardSize(256), WithMaxPatternLen(17))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sb.Write(randomDNA(rng, 1000)); err != nil {
		t.Fatal(err)
	}
	if err := sb.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := OpenAppend(path, WithShardSize(512)); !errors.Is(err, ErrInput) {
		t.Fatalf("mismatched shard size: err = %v, want ErrInput", err)
	}
	if _, err := OpenAppend(path, WithMaxPatternLen(64)); !errors.Is(err, ErrInput) {
		t.Fatalf("mismatched max pattern length: err = %v, want ErrInput", err)
	}
	if _, err := OpenAppend(path, WithShards(4)); !errors.Is(err, ErrInput) {
		t.Fatalf("WithShards: err = %v, want ErrInput", err)
	}
	// Matching explicit geometry is fine.
	ab, err := OpenAppend(path, WithShardSize(256), WithMaxPatternLen(17))
	if err != nil {
		t.Fatal(err)
	}
	if err := ab.Abort(); err != nil {
		t.Fatal(err)
	}

	monoPath := filepath.Join(dir, "mono.idx")
	idx, err := New(randomDNA(rng, 500))
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.SaveFile(monoPath); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenAppend(monoPath); !errors.Is(err, ErrFormat) {
		t.Fatalf("append to monolithic file: err = %v, want ErrFormat", err)
	}
}

// TestShardedTruncatedMidFlush: a container cut off mid-frame — the
// on-disk state a crash during a (hypothetical) in-place flush would
// leave — must be rejected with ErrFormat at every truncation point.
func TestShardedTruncatedMidFlush(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	dir := t.TempDir()
	path := filepath.Join(dir, "trunc.idx")
	sb, err := NewStreamBuilder(path, WithShardSize(256), WithMaxPatternLen(17))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sb.Write(randomDNA(rng, 2000)); err != nil {
		t.Fatal(err)
	}
	if err := sb.Close(); err != nil {
		t.Fatal(err)
	}
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	cutPath := filepath.Join(dir, "cut.idx")
	for _, cut := range []int{2, 9, 40, len(whole) / 2, len(whole) - 200, len(whole) - 1} {
		if err := os.WriteFile(cutPath, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadShardedFile(cutPath); !errors.Is(err, ErrFormat) {
			t.Fatalf("truncated at %d/%d: err = %v, want ErrFormat", cut, len(whole), err)
		}
		if _, err := OpenAppend(cutPath); !errors.Is(err, ErrFormat) {
			t.Fatalf("append to truncation at %d: err = %v, want ErrFormat", cut, err)
		}
	}
	// Trailing garbage is just as dead.
	if err := os.WriteFile(cutPath, append(append([]byte(nil), whole...), 0xEE), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadShardedFile(cutPath); !errors.Is(err, ErrFormat) {
		t.Fatalf("trailing byte: err = %v, want ErrFormat", err)
	}
}
