package bwtmatch

import (
	"bytes"
	"testing"

	"bwtmatch/internal/alphabet"
	"bwtmatch/internal/naive"
)

// FuzzSearchMethods cross-checks the three index search methods against
// the naive oracle on arbitrary byte inputs (sanitized into the DNA
// alphabet). Run with `go test -fuzz=FuzzSearchMethods` for continuous
// fuzzing; the seed corpus runs in ordinary `go test`.
func FuzzSearchMethods(f *testing.F) {
	f.Add([]byte("acagaca"), []byte("tcaca"), byte(2))
	f.Add([]byte("ccacacagaagcc"), []byte("aaaaacaaac"), byte(4))
	f.Add([]byte("aaaaaaaa"), []byte("ttt"), byte(1))
	f.Add([]byte("acgtacgtacgt"), []byte("acgt"), byte(0))
	f.Fuzz(func(t *testing.T, target, pattern []byte, k8 byte) {
		if len(target) == 0 || len(target) > 2000 {
			return
		}
		if len(pattern) == 0 || len(pattern) > 40 {
			return
		}
		k := int(k8) % 5
		cleanT, _ := Sanitize(target)
		cleanP, _ := Sanitize(pattern)
		idx, err := New(cleanT)
		if err != nil {
			t.Fatalf("New(%q): %v", cleanT, err)
		}
		tr, _ := alphabet.Encode(cleanT)
		pr, _ := alphabet.Encode(cleanP)
		want := naive.Find(tr, pr, k)
		for _, method := range []Method{AlgorithmA, BWTBaseline, Seed} {
			got, _, err := idx.SearchMethod(cleanP, k, method)
			if err != nil {
				t.Fatalf("%v: %v", method, err)
			}
			if len(got) != len(want) {
				t.Fatalf("%v found %d, oracle %d (target %q pattern %q k=%d)",
					method, len(got), len(want), cleanT, cleanP, k)
			}
			for i := range got {
				if int32(got[i].Pos) != want[i] {
					t.Fatalf("%v position %d: %d vs %d", method, i, got[i].Pos, want[i])
				}
			}
		}
	})
}

// FuzzSaveLoad checks that any index round-trips bit-identically through
// the serializer.
func FuzzSaveLoad(f *testing.F) {
	f.Add([]byte("acgtacgt"))
	f.Add([]byte("a"))
	f.Add([]byte("ccacacagaagcc"))
	f.Fuzz(func(t *testing.T, target []byte) {
		if len(target) == 0 || len(target) > 1000 {
			return
		}
		clean, _ := Sanitize(target)
		idx, err := New(clean)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := idx.Save(&buf); err != nil {
			t.Fatal(err)
		}
		loaded, err := Load(&buf)
		if err != nil {
			t.Fatal(err)
		}
		probe := clean
		if len(probe) > 10 {
			probe = probe[:10]
		}
		a, _ := idx.Search(probe, 1)
		b, _ := loaded.Search(probe, 1)
		if len(a) != len(b) {
			t.Fatalf("results differ after reload: %d vs %d", len(a), len(b))
		}
	})
}
