package bwtmatch

import (
	"bytes"
	"errors"
	"testing"

	"bwtmatch/internal/alphabet"
	"bwtmatch/internal/naive"
)

// FuzzSearchMethods cross-checks the three index search methods against
// the naive oracle on arbitrary byte inputs (sanitized into the DNA
// alphabet). Run with `go test -fuzz=FuzzSearchMethods` for continuous
// fuzzing; the seed corpus runs in ordinary `go test`.
func FuzzSearchMethods(f *testing.F) {
	f.Add([]byte("acagaca"), []byte("tcaca"), byte(2))
	f.Add([]byte("ccacacagaagcc"), []byte("aaaaacaaac"), byte(4))
	f.Add([]byte("aaaaaaaa"), []byte("ttt"), byte(1))
	f.Add([]byte("acgtacgtacgt"), []byte("acgt"), byte(0))
	f.Fuzz(func(t *testing.T, target, pattern []byte, k8 byte) {
		if len(target) == 0 || len(target) > 2000 {
			return
		}
		if len(pattern) == 0 || len(pattern) > 40 {
			return
		}
		k := int(k8) % 5
		cleanT, _ := Sanitize(target)
		cleanP, _ := Sanitize(pattern)
		idx, err := New(cleanT)
		if err != nil {
			t.Fatalf("New(%q): %v", cleanT, err)
		}
		// Deep structural verification under -tags kminvariants (no-op
		// otherwise): any index the fuzzer searches is fully consistent.
		if err := idx.searcher.Index().CheckInvariants(); err != nil {
			t.Fatalf("invariants(%q): %v", cleanT, err)
		}
		tr, _ := alphabet.Encode(cleanT)
		pr, _ := alphabet.Encode(cleanP)
		want := naive.Find(tr, pr, k)
		for _, method := range []Method{AlgorithmA, BWTBaseline, Seed} {
			got, _, err := idx.SearchMethod(cleanP, k, method)
			if err != nil {
				t.Fatalf("%v: %v", method, err)
			}
			if len(got) != len(want) {
				t.Fatalf("%v found %d, oracle %d (target %q pattern %q k=%d)",
					method, len(got), len(want), cleanT, cleanP, k)
			}
			for i := range got {
				if int32(got[i].Pos) != want[i] {
					t.Fatalf("%v position %d: %d vs %d", method, i, got[i].Pos, want[i])
				}
			}
		}
	})
}

// FuzzSaveLoad checks that any index round-trips bit-identically through
// the serializer.
func FuzzSaveLoad(f *testing.F) {
	f.Add([]byte("acgtacgt"))
	f.Add([]byte("a"))
	f.Add([]byte("ccacacagaagcc"))
	f.Fuzz(func(t *testing.T, target []byte) {
		if len(target) == 0 || len(target) > 1000 {
			return
		}
		clean, _ := Sanitize(target)
		idx, err := New(clean)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := idx.Save(&buf); err != nil {
			t.Fatal(err)
		}
		loaded, err := Load(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if err := loaded.searcher.Index().CheckInvariants(); err != nil {
			t.Fatalf("invariants after reload: %v", err)
		}
		probe := clean
		if len(probe) > 10 {
			probe = probe[:10]
		}
		a, _ := idx.Search(probe, 1)
		b, _ := loaded.Search(probe, 1)
		if len(a) != len(b) {
			t.Fatalf("results differ after reload: %d vs %d", len(a), len(b))
		}
	})
}

// FuzzLoadRoundTrip hammers Load with arbitrary bytes. The contract
// under test: every rejection is an ErrFormat (never a panic, never a
// bare io error) with a nil index, and every accepted index is fully
// usable — the load-time verifyLoad gate plus, under -tags
// kminvariants, the deep invariant checks guarantee no half-built
// structure escapes. Seeds include valid saves (with and without
// reference tables) so mutation explores near-valid headers.
func FuzzLoadRoundTrip(f *testing.F) {
	save := func(idx *Index) []byte {
		var buf bytes.Buffer
		if err := idx.Save(&buf); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	plain, err := New([]byte("acgtacgtacacagttgacca"))
	if err != nil {
		f.Fatal(err)
	}
	withRefs, err := NewRefs([]Reference{
		{Name: "chr1", Seq: []byte("acgtacgtac")},
		{Name: "chr2", Seq: []byte("ttgacagga")},
	})
	if err != nil {
		f.Fatal(err)
	}
	valid := save(plain)
	f.Add(valid)
	f.Add(save(withRefs))
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:8])
	f.Add([]byte{})
	f.Add([]byte("not an index at all"))
	mutated := append([]byte(nil), valid...)
	mutated[len(mutated)/3] ^= 0xff
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		idx, err := Load(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrFormat) {
				t.Fatalf("Load error does not wrap ErrFormat: %v", err)
			}
			if idx != nil {
				t.Fatal("Load returned a non-nil index alongside an error")
			}
			return
		}
		if err := idx.searcher.Index().CheckInvariants(); err != nil {
			t.Fatalf("loaded index fails invariants: %v", err)
		}
		if _, err := idx.Search([]byte("acgt"), 1); err != nil {
			t.Fatalf("loaded index cannot search: %v", err)
		}
	})
}

// FuzzLoadRelativeRoundTrip hammers the relative-container loader with
// arbitrary bytes against a fixed base, under the standard load
// contract: every rejection wraps ErrFormat (never a panic, never a
// bare io error) with a nil index, and every accepted index is fully
// usable. Seeds include a valid save (with and without a ref table)
// plus truncations and targeted damage, so mutation explores near-valid
// headers, fingerprint bytes, and delta geometry fields.
func FuzzLoadRelativeRoundTrip(f *testing.F) {
	base, err := New([]byte("acgtacgtacacagttgaccaacgtacgtacacagttgaccatagg"))
	if err != nil {
		f.Fatal(err)
	}
	rel, err := NewRelative(base, []byte("acgtacgtacacagtggaccaacgtacgtaacacagttgaccatagg"))
	if err != nil {
		f.Fatal(err)
	}
	rel.SetBasePath("base.km")
	save := func(x *RelativeIndex) []byte {
		var buf bytes.Buffer
		if err := x.Save(&buf); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	valid := save(rel)
	f.Add(valid)
	baseRefs, err := NewRefs([]Reference{
		{Name: "chr1", Seq: []byte("acgtacgtacgtacgtac")},
		{Name: "chr2", Seq: []byte("ttgacaggattgacagga")},
	})
	if err != nil {
		f.Fatal(err)
	}
	relRefs, err := NewRelativeRefs(baseRefs, []Reference{
		{Name: "chr1", Seq: []byte("acgtacctacgtacgtac")},
		{Name: "chr2", Seq: []byte("ttgacaggattgacagga")},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(save(relRefs))
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:4])
	f.Add([]byte{})
	f.Add([]byte("not a relative container"))
	mutated := append([]byte(nil), valid...)
	mutated[len(mutated)/3] ^= 0xff
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		// Against the matching base (most seeds) and a mismatched one —
		// the fingerprint gate must reject the latter for valid payloads
		// without ever panicking on mutated ones.
		for _, b := range []*Index{base, baseRefs} {
			rx, err := LoadRelative(bytes.NewReader(data), b)
			if err != nil {
				if !errors.Is(err, ErrFormat) {
					t.Fatalf("LoadRelative error does not wrap ErrFormat: %v", err)
				}
				if rx != nil {
					t.Fatal("LoadRelative returned a non-nil index alongside an error")
				}
				continue
			}
			if err := rx.searcher.Index().CheckInvariants(); err != nil {
				t.Fatalf("loaded relative index fails invariants: %v", err)
			}
			if _, err := rx.Search([]byte("acgt"), 1); err != nil {
				t.Fatalf("loaded relative index cannot search: %v", err)
			}
		}
	})
}

// FuzzLoadShardedRoundTrip hammers the multi-shard container loader
// with arbitrary bytes, under the same contract as FuzzLoadRoundTrip:
// every rejection — at manifest parse, payload indexing, or lazy shard
// materialization — wraps ErrFormat (never a panic, never a bare io
// error), and every accepted index is fully usable, agreeing with a
// monolithic search over a probe pattern. Seeds include valid sharded
// saves (with and without reference tables) plus targeted damage.
func FuzzLoadShardedRoundTrip(f *testing.F) {
	save := func(x *ShardedIndex) []byte {
		var buf bytes.Buffer
		if err := x.Save(&buf); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	plain, err := NewSharded([]byte("acgtacgtacacagttgaccaacgtacgtacacagttgacca"),
		WithShardSize(10), WithMaxPatternLen(8))
	if err != nil {
		f.Fatal(err)
	}
	withRefs, err := NewShardedRefs([]Reference{
		{Name: "chr1", Seq: []byte("acgtacgtacgtacgtac")},
		{Name: "chr2", Seq: []byte("ttgacaggattgacagga")},
	}, WithShards(3), WithMaxPatternLen(6))
	if err != nil {
		f.Fatal(err)
	}
	valid := save(plain)
	f.Add(valid)
	f.Add(save(withRefs))
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:6])
	f.Add([]byte{})
	f.Add([]byte("not a sharded index"))
	mutated := append([]byte(nil), valid...)
	mutated[len(mutated)/3] ^= 0xff
	f.Add(mutated)
	truncTail := append([]byte(nil), valid...)
	f.Add(truncTail[:len(truncTail)-3])

	f.Fuzz(func(t *testing.T, data []byte) {
		x, err := LoadSharded(bytes.NewReader(data), int64(len(data)))
		if err == nil {
			// The container header parsed; corruption may still hide in a
			// shard payload, surfacing as ErrFormat at materialization.
			err = x.LoadAll()
		}
		if err != nil {
			if !errors.Is(err, ErrFormat) {
				t.Fatalf("error does not wrap ErrFormat: %v", err)
			}
			return
		}
		if err := x.CheckInvariants(); err != nil {
			t.Fatalf("loaded sharded index fails invariants: %v", err)
		}
		if _, err := x.Search([]byte("acgt"), 1); err != nil && !errors.Is(err, ErrInput) {
			t.Fatalf("loaded sharded index cannot search: %v", err)
		}
	})
}
