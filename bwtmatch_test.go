package bwtmatch

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"bwtmatch/internal/alphabet"
	"bwtmatch/internal/dna"
	"bwtmatch/internal/naive"
)

var allMethods = []Method{AlgorithmA, BWTBaseline, STree, AlgorithmANoPhi, Amir, Cole, Online, Seed}

func randomDNA(rng *rand.Rand, n int) []byte {
	const bases = "acgt"
	b := make([]byte, n)
	for i := range b {
		b[i] = bases[rng.Intn(4)]
	}
	return b
}

func TestQuickstartExample(t *testing.T) {
	idx, err := New([]byte("ccacacagaagcc"))
	if err != nil {
		t.Fatal(err)
	}
	matches, err := idx.Search([]byte("aaaaacaaac"), 4)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range matches {
		if m.Pos == 2 && m.Mismatches == 4 {
			found = true
		}
	}
	if !found {
		t.Fatalf("paper intro occurrence missing: %v", matches)
	}
}

func TestAllMethodsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 15; trial++ {
		target := randomDNA(rng, 200+rng.Intn(600))
		idx, err := New(target)
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < 5; q++ {
			m := 4 + rng.Intn(25)
			k := rng.Intn(4)
			var pattern []byte
			if rng.Intn(2) == 0 {
				p := rng.Intn(len(target) - m)
				pattern = append([]byte(nil), target[p:p+m]...)
				for f := 0; f < k; f++ {
					pattern[rng.Intn(m)] = "acgt"[rng.Intn(4)]
				}
			} else {
				pattern = randomDNA(rng, m)
			}
			var ref []Match
			for mi, method := range allMethods {
				got, _, err := idx.SearchMethod(pattern, k, method)
				if err != nil {
					t.Fatalf("%v: %v", method, err)
				}
				if mi == 0 {
					ref = got
					continue
				}
				if len(got) != len(ref) {
					t.Fatalf("%v found %d, AlgorithmA found %d (pattern %s, k=%d)",
						method, len(got), len(ref), pattern, k)
				}
				for i := range got {
					if got[i] != ref[i] {
						t.Fatalf("%v disagrees at %d: %v vs %v", method, i, got[i], ref[i])
					}
				}
			}
		}
	}
}

func TestSearchAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	target := randomDNA(rng, 1000)
	ranks, _ := alphabet.Encode(target)
	idx, _ := New(target)
	for q := 0; q < 30; q++ {
		pattern := randomDNA(rng, 5+rng.Intn(15))
		pr, _ := alphabet.Encode(pattern)
		k := rng.Intn(3)
		got, err := idx.Search(pattern, k)
		if err != nil {
			t.Fatal(err)
		}
		want := naive.Find(ranks, pr, k)
		if len(got) != len(want) {
			t.Fatalf("got %d, want %d", len(got), len(want))
		}
		for i := range got {
			if int32(got[i].Pos) != want[i] {
				t.Fatalf("got %v, want %v", got, want)
			}
		}
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("empty target accepted")
	}
	if _, err := New([]byte("acgN")); err == nil {
		t.Error("dirty target accepted")
	}
	idx, _ := New([]byte("acgtacgt"))
	if _, err := idx.Search([]byte("aNg"), 1); err == nil {
		t.Error("dirty pattern accepted")
	}
	if _, err := idx.Search(nil, 1); err == nil {
		t.Error("empty pattern accepted")
	}
	if _, err := idx.Search([]byte("acg"), -1); err == nil {
		t.Error("negative k accepted")
	}
	if _, _, err := idx.SearchMethod([]byte("acg"), 1, Method(77)); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestSanitize(t *testing.T) {
	clean, n := Sanitize([]byte("acGTNx"))
	if !bytes.Equal(clean, []byte("acgtaa")) || n != 2 {
		t.Errorf("Sanitize = %q, %d", clean, n)
	}
}

func TestCount(t *testing.T) {
	idx, _ := New([]byte("acagacacaga"))
	n, err := idx.Count([]byte("aca"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("Count = %d, want 3", n)
	}
}

func TestMTreeLeaves(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	target := randomDNA(rng, 5000)
	idx, _ := New(target)
	// A planted window (0 mismatches) always has at least one leaf; a
	// fully random 40-mer would be φ-pruned to zero on a target this
	// small.
	n, err := idx.MTreeLeaves(target[1000:1040], 3)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Error("MTreeLeaves = 0")
	}
	if _, err := idx.MTreeLeaves([]byte("aNg"), 1); err == nil {
		t.Error("dirty pattern accepted")
	}
}

func TestOptions(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	target := randomDNA(rng, 4000)
	small, _ := New(target, WithOccRate(64), WithSARate(64))
	big, _ := New(target, WithOccRate(1), WithSARate(1))
	if small.SizeBytes() >= big.SizeBytes() {
		t.Errorf("sparse index not smaller: %d vs %d", small.SizeBytes(), big.SizeBytes())
	}
	pattern := randomDNA(rng, 25)
	a, _ := small.Search(pattern, 2)
	b, _ := big.Search(pattern, 2)
	if len(a) != len(b) {
		t.Error("options changed results")
	}
	if small.Len() != len(target) {
		t.Errorf("Len = %d", small.Len())
	}
}

func TestMethodString(t *testing.T) {
	names := map[Method]string{
		AlgorithmA: "A()", BWTBaseline: "BWT", STree: "S-tree",
		AlgorithmANoPhi: "A()-nophi", Amir: "Amir", Cole: "Cole", Online: "Online", Seed: "Seed",
	}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("%d.String() = %q, want %q", m, m.String(), want)
		}
	}
	if Method(99).String() != "Method(99)" {
		t.Error("unknown method string")
	}
}

func TestEndToEndReadMapping(t *testing.T) {
	// Integration: simulate a genome and reads, map them back, verify the
	// true origin is always recovered when errors <= k.
	genome, err := dna.Generate(dna.GenomeConfig{Length: 30000, Seed: 11, RepeatFraction: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := New(alphabet.Decode(genome))
	if err != nil {
		t.Fatal(err)
	}
	reads, err := dna.Simulate(genome, dna.ReadConfig{Length: 60, Count: 40, ErrorRate: 0.03, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	k := 5
	for _, r := range reads {
		if r.Errors > k {
			continue
		}
		matches, err := idx.Search(alphabet.Decode(r.Seq), k)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, m := range matches {
			if m.Pos == int(r.Pos) {
				if m.Mismatches != r.Errors {
					t.Fatalf("read at %d: reported %d mismatches, simulated %d",
						r.Pos, m.Mismatches, r.Errors)
				}
				found = true
			}
		}
		if !found {
			t.Fatalf("read from %d (errors %d) not recovered", r.Pos, r.Errors)
		}
	}
}

func TestSearchEdits(t *testing.T) {
	idx, err := New([]byte("acgtacgtacgt"))
	if err != nil {
		t.Fatal(err)
	}
	// "acta" is within 1 edit of "acgta" (deletion of g).
	ms, err := idx.SearchEdits([]byte("acta"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 {
		t.Fatal("no edit matches")
	}
	found := false
	for _, m := range ms {
		if m.End == 5 && m.Distance == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected occurrence ending at 5 with distance 1: %v", ms)
	}
	if _, err := idx.SearchEdits([]byte("aNg"), 1); err == nil {
		t.Error("dirty pattern accepted")
	}
	if _, err := idx.SearchEdits(nil, 1); err == nil {
		t.Error("empty pattern accepted")
	}
}

func TestMEMs(t *testing.T) {
	rng := rand.New(rand.NewSource(106))
	target := randomDNA(rng, 2000)
	idx, _ := New(target)
	// A read copied from the target with one mutation splits into (at
	// most) two MEMs around the mutated base.
	p := 700
	read := append([]byte(nil), target[p:p+60]...)
	read[30] = "acgt"[("acgt"[rng.Intn(4)]+1)%4] // guaranteed-ish flip
	mems, err := idx.MEMs(read, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(mems) == 0 {
		t.Fatal("no MEMs found")
	}
	for _, m := range mems {
		if m.Len < 10 {
			t.Fatalf("MEM shorter than minLen: %+v", m)
		}
		if len(m.Positions) == 0 {
			t.Fatalf("MEM without positions: %+v", m)
		}
		for _, pos := range m.Positions {
			if !bytes.Equal(target[pos:pos+m.Len], read[m.Start:m.Start+m.Len]) {
				t.Fatalf("MEM position %d does not match", pos)
			}
		}
	}
	if _, err := idx.MEMs([]byte("aNg"), 5); err == nil {
		t.Error("dirty pattern accepted")
	}
	if _, err := idx.MEMs(nil, 5); err == nil {
		t.Error("empty pattern accepted")
	}
}

func TestSearchBest(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	target := randomDNA(rng, 3000)
	idx, _ := New(target)
	for trial := 0; trial < 20; trial++ {
		m := 20 + rng.Intn(20)
		p := rng.Intn(len(target) - m)
		pattern := append([]byte(nil), target[p:p+m]...)
		flips := rng.Intn(4)
		for f := 0; f < flips; f++ {
			pattern[rng.Intn(m)] = "acgt"[rng.Intn(4)]
		}
		best, matches, err := idx.SearchBest(pattern, 6)
		if err != nil {
			t.Fatal(err)
		}
		if best < 0 || best > flips {
			t.Fatalf("best = %d, planted distance <= %d", best, flips)
		}
		for _, mt := range matches {
			if mt.Mismatches != best {
				t.Fatalf("match with distance %d in best stratum %d", mt.Mismatches, best)
			}
		}
		// No stratum below best may exist.
		if best > 0 {
			lower, _ := idx.Search(pattern, best-1)
			if len(lower) != 0 {
				t.Fatalf("found matches below reported best %d", best)
			}
		}
	}
	// Nothing within budget.
	if best, ms, err := idx.SearchBest([]byte("a"), 0); err != nil || best != 0 || len(ms) == 0 {
		t.Fatalf("single-char best: %d %v %v", best, ms, err)
	}
	if _, _, err := idx.SearchBest([]byte("acg"), -1); err == nil {
		t.Error("negative maxK accepted")
	}
}

func TestSearchBestNoMatch(t *testing.T) {
	idx, _ := New([]byte("aaaaaaaaaaaaaaaa"))
	best, ms, err := idx.SearchBest([]byte("ttttttttt"), 2)
	if err != nil {
		t.Fatal(err)
	}
	if best != -1 || ms != nil {
		t.Fatalf("expected no match, got %d %v", best, ms)
	}
}

func TestSearchWildcard(t *testing.T) {
	idx, err := New([]byte("acgtacatacgt"))
	if err != nil {
		t.Fatal(err)
	}
	pos, err := idx.SearchWildcard([]byte("acNt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(pos) != 3 || pos[0] != 0 || pos[1] != 4 || pos[2] != 8 {
		t.Fatalf("SearchWildcard = %v, want [0 4 8]", pos)
	}
	// All wildcards.
	pos, err = idx.SearchWildcard([]byte("nn"))
	if err != nil {
		t.Fatal(err)
	}
	if len(pos) != 11 {
		t.Fatalf("all-wildcard = %d positions", len(pos))
	}
	if _, err := idx.SearchWildcard([]byte("acX")); err == nil {
		t.Error("invalid character accepted")
	}
	if _, err := idx.SearchWildcard(nil); err == nil {
		t.Error("empty pattern accepted")
	}
}

func TestQuickAllMethods(t *testing.T) {
	f := func(seed int64, m8, k8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		target := randomDNA(rng, 150)
		pattern := randomDNA(rng, 1+int(m8)%12)
		k := int(k8) % 3
		idx, err := New(target)
		if err != nil {
			return false
		}
		ref, _, err := idx.SearchMethod(pattern, k, AlgorithmA)
		if err != nil {
			return false
		}
		for _, method := range allMethods[1:] {
			got, _, err := idx.SearchMethod(pattern, k, method)
			if err != nil || len(got) != len(ref) {
				return false
			}
			for i := range got {
				if got[i] != ref[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
