package bwtmatch

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"bwtmatch/internal/alphabet"
	"bwtmatch/internal/core"
	"bwtmatch/internal/fmindex"
	"bwtmatch/internal/shard"
)

// StreamBuilder constructs a sharded index file without ever holding
// the whole target in memory: callers feed DNA bytes incrementally with
// Write (grouping them into named references with StartRef), and every
// time a full shard's worth of text (shard size + overlap) accumulates,
// that shard's FM-index is built, serialized, and flushed; the buffer
// then slides forward keeping only the overlap. Peak memory is
// O(shard size + overlap) — one text window plus one shard's
// construction state — independent of the target length.
//
// The output bytes are identical to building the same target in memory
// with NewShardedRefs (same options) and calling SaveFile: payload
// frames spill to a temporary sibling file during the build, and Close
// assembles magic | manifest | frames into the final path via a rename,
// so a crash mid-build never leaves a partial container at the target
// path. The container format cannot know the manifest (which embeds the
// total length) until the end of the input, which is why the frames
// take the detour through the spill file.
//
// Streaming requires WithShardSize: the shard count of WithShards
// depends on the total length, which a stream does not know up front.
type StreamBuilder struct {
	cfg     config
	overlap int
	path    string

	spill     *os.File
	spillPath string
	blob      bytes.Buffer // reused per-shard serialization buffer

	buf   []byte // rank-encoded window; buf[0] is global position start
	start int    // global offset of buf[0]; always a multiple of shard size
	total int    // ranks consumed so far == start + len(buf)

	spans   []shard.Span // spans flushed (or carried over by OpenAppend)
	refs    []Ref        // closed references
	pending Ref          // open reference (Len fixed at next StartRef/Close)
	hasRef  bool

	// appended counts payload frames copied verbatim from an existing
	// container by OpenAppend; zero for fresh builds.
	appended int

	err    error // sticky: the first failure poisons the builder
	closed bool
}

// NewStreamBuilder starts a streaming build of a sharded index at path.
// Options are those of NewShardedRefs; WithShardSize is mandatory (see
// the type comment) and WithShards is rejected. Nothing is written to
// path until Close succeeds.
func NewStreamBuilder(path string, opts ...Option) (*StreamBuilder, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.shardSize < 1 {
		return nil, fmt.Errorf("%w: streaming build requires WithShardSize", ErrInput)
	}
	if cfg.maxPatternLen < 1 {
		return nil, fmt.Errorf("%w: max pattern length %d", ErrInput, cfg.maxPatternLen)
	}
	return newStreamBuilder(path, cfg)
}

func newStreamBuilder(path string, cfg config) (*StreamBuilder, error) {
	spill, err := os.CreateTemp(filepath.Dir(path), ".kmstream-spill-*")
	if err != nil {
		return nil, err
	}
	return &StreamBuilder{
		cfg:       cfg,
		overlap:   cfg.maxPatternLen - 1,
		path:      path,
		spill:     spill,
		spillPath: spill.Name(),
	}, nil
}

// StartRef begins a named reference at the current position, ending the
// previous one (references partition the input in order, exactly like
// the NewShardedRefs table). Inputs that never call StartRef build a
// single-sequence index with no reference table. An empty name gets the
// same ref<ordinal> placeholder NewShardedRefs assigns.
func (b *StreamBuilder) StartRef(name string) {
	if b.err != nil || b.closed {
		return
	}
	if err := b.closePendingRef(); err != nil {
		b.err = err
		return
	}
	if name == "" {
		name = fmt.Sprintf("ref%d", len(b.refs))
	}
	b.pending = Ref{Name: name, Start: b.total}
	b.hasRef = true
}

// closePendingRef finalizes the open reference at the current position.
func (b *StreamBuilder) closePendingRef() error {
	if !b.hasRef {
		return nil
	}
	b.pending.Len = b.total - b.pending.Start
	if b.pending.Len == 0 {
		return fmt.Errorf("%w: reference %q is empty", ErrInput, b.pending.Name)
	}
	b.refs = append(b.refs, b.pending)
	b.hasRef = false
	return nil
}

// Write feeds DNA bytes (acgtACGT; see Sanitize for dirty inputs) into
// the build, flushing completed shards as they fill. It implements
// io.Writer; the error, once non-nil, is sticky and also returned by
// Close.
func (b *StreamBuilder) Write(seq []byte) (int, error) {
	if b.closed {
		return 0, fmt.Errorf("%w: write after Close", ErrInput)
	}
	if b.err != nil {
		return 0, b.err
	}
	buf, err := alphabet.AppendEncode(b.buf, seq)
	b.buf = buf
	if err != nil {
		b.err = fmt.Errorf("%w: %v", ErrInput, err)
		// AppendEncode appends nothing on error; the window is unchanged.
		b.buf = b.buf[:b.total-b.start]
		return 0, b.err
	}
	b.total += len(seq)
	full := b.cfg.shardSize + b.overlap
	for len(b.buf) >= full {
		if err := b.flushShard(b.buf[:full]); err != nil {
			b.err = err
			return 0, err
		}
		// Slide the window: the next shard starts shardSize later and
		// re-indexes the overlap tail.
		n := copy(b.buf, b.buf[b.cfg.shardSize:])
		b.buf = b.buf[:n]
		b.start += b.cfg.shardSize
	}
	return len(seq), nil
}

// flushShard builds the FM-index over one shard's rank-encoded window
// ([b.start, b.start+len(ranks)) in global coordinates) and appends its
// length-prefixed payload frame to the spill file.
func (b *StreamBuilder) flushShard(ranks []byte) error {
	span := shard.Span{Start: b.start, End: b.start + len(ranks)}
	idx, err := newShardIndex(ranks, b.cfg.fm)
	if err != nil {
		return fmt.Errorf("bwtmatch: building shard %d: %w", len(b.spans), err)
	}
	b.blob.Reset()
	if err := idx.Save(&b.blob); err != nil {
		return fmt.Errorf("bwtmatch: saving shard %d: %w", len(b.spans), err)
	}
	if err := binary.Write(b.spill, binary.LittleEndian, uint64(b.blob.Len())); err != nil {
		return err
	}
	if _, err := b.spill.Write(b.blob.Bytes()); err != nil {
		return err
	}
	b.spans = append(b.spans, span)
	return nil
}

// newShardIndex builds a monolithic Index directly over rank-encoded
// text. The streaming builder's window is reused across shards, so the
// index takes a private copy (New has the same property: its encode
// allocates).
func newShardIndex(ranks []byte, fm fmindex.Options) (*Index, error) {
	own := make([]byte, len(ranks))
	copy(own, ranks)
	searcher, err := core.NewSearcher(own, fm)
	if err != nil {
		return nil, err
	}
	return &Index{text: own, searcher: searcher}, nil
}

// Close flushes the trailing shards, writes the manifest, and assembles
// the final container at the builder's path (atomically, via a rename
// within the same directory). A builder whose Write failed cleans up
// its temporary files and returns that first error.
func (b *StreamBuilder) Close() (err error) {
	if b.closed {
		return fmt.Errorf("%w: builder already closed", ErrInput)
	}
	b.closed = true
	defer func() {
		// The spill file is consumed (or abandoned) either way.
		if cerr := b.spill.Close(); cerr != nil && err == nil {
			err = cerr
		}
		if rerr := os.Remove(b.spillPath); rerr != nil && err == nil {
			err = rerr
		}
	}()
	if b.err != nil {
		return b.err
	}
	if b.total == 0 {
		return fmt.Errorf("%w: empty target", ErrInput)
	}
	if err := b.closePendingRef(); err != nil {
		return err
	}
	// Every remaining span is cut short by the end of input: Write
	// drained all full-extent windows, so len(buf) < shardSize+overlap
	// and each trailing shard spans [start, total).
	for len(b.buf) > 0 {
		if err := b.flushShard(b.buf); err != nil {
			return err
		}
		if len(b.buf) > b.cfg.shardSize {
			b.buf = b.buf[b.cfg.shardSize:]
			b.start += b.cfg.shardSize
		} else {
			b.buf = nil
			b.start = b.total
		}
	}

	plan, err := shard.New(b.total, b.cfg.shardSize, b.overlap)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrInput, err)
	}
	// The incremental emission above must land exactly on the plan the
	// loader will recompute; a mismatch means a builder bug, caught here
	// rather than at load time.
	if len(plan.Spans) != len(b.spans) {
		return fmt.Errorf("bwtmatch: streaming build emitted %d shards, plan wants %d", len(b.spans), len(plan.Spans))
	}
	for i, sp := range b.spans {
		if sp != plan.Spans[i] {
			return fmt.Errorf("bwtmatch: streaming shard %d spans [%d,%d), plan wants [%d,%d)",
				i, sp.Start, sp.End, plan.Spans[i].Start, plan.Spans[i].End)
		}
	}
	man := shard.Manifest{MaxPatternLen: b.cfg.maxPatternLen, Plan: plan, Refs: refsToShard(b.refs)}
	if err := man.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrInput, err)
	}
	return b.assemble(man)
}

// assemble writes magic | manifest | spilled frames to a temporary file
// next to the target path and renames it into place.
func (b *StreamBuilder) assemble(man shard.Manifest) (err error) {
	out, err := os.CreateTemp(filepath.Dir(b.path), ".kmstream-out-*")
	if err != nil {
		return err
	}
	outPath := out.Name()
	defer func() {
		if err != nil {
			out.Close()        // assembly already failed; that error is the one to report
			os.Remove(outPath) // best-effort cleanup of the abandoned temp file
		}
	}()
	if err := binary.Write(out, binary.LittleEndian, shardedMagic); err != nil {
		return err
	}
	if _, err := man.WriteTo(out); err != nil {
		return err
	}
	if _, err := b.spill.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if _, err := io.Copy(out, b.spill); err != nil {
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}
	return os.Rename(outPath, b.path)
}

// Abort abandons the build, removing the temporary spill file; the
// target path is untouched. Safe after a failed Write; a no-op after
// Close.
func (b *StreamBuilder) Abort() error {
	if b.closed {
		return nil
	}
	b.closed = true
	if err := b.spill.Close(); err != nil {
		os.Remove(b.spillPath) // best-effort cleanup; the close error is reported
		return err
	}
	return os.Remove(b.spillPath)
}

// Shards returns how many shard payloads have been flushed so far
// (including frames carried over by OpenAppend).
func (b *StreamBuilder) Shards() int { return len(b.spans) }

// Appended returns how many payload frames OpenAppend carried over
// verbatim from the pre-existing container (zero for fresh builds):
// the shards whose spans an append provably cannot change.
func (b *StreamBuilder) Appended() int { return b.appended }

// Len returns the number of target bytes consumed so far (including
// the pre-existing target of an OpenAppend).
func (b *StreamBuilder) Len() int { return b.total }

// OpenAppend resumes a streaming build on an existing sharded container:
// subsequent Writes extend the target, and Close rewrites the container
// with the grown manifest. Geometry options must agree with the
// manifest — WithShardSize and WithMaxPatternLen may be omitted (the
// manifest's values apply) but, when given, must match exactly;
// WithShards is rejected. The existing reference table is carried over;
// new bytes form new references via StartRef as usual.
//
// Only the trailing shards whose spans are cut short by the old end of
// input are rebuilt — every shard already at full extent
// (shardSize+overlap bytes) keeps its span under any longer target, so
// its payload frame is copied into the new container byte for byte,
// without being decoded. The earliest rebuilt shard's stored text seeds
// the streaming window, so an append reads O(shard size + overlap)
// bytes of the old container's text no matter how large the index is.
// The result is byte-identical to a from-scratch streaming build of the
// full target with the same options.
//
// Close assembles the new container beside path and renames it into
// place, so a crash mid-append leaves the original index intact.
func OpenAppend(path string, opts ...Option) (*StreamBuilder, error) {
	cfg := defaultConfig()
	// Zero the geometry defaults so "option not given" is
	// distinguishable from an explicit value: append adopts the
	// manifest's geometry unless the caller insists.
	cfg.maxPatternLen = 0
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.shardCount != 0 {
		return nil, fmt.Errorf("%w: append derives the shard count from the manifest (WithShards is not applicable)", ErrInput)
	}

	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() // read-only handle; everything needed is copied out before return
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	toc, err := readShardedTOC(f, st.Size())
	if err != nil {
		return nil, err
	}
	man := toc.man
	if cfg.shardSize != 0 && cfg.shardSize != man.Plan.ShardSize {
		return nil, fmt.Errorf("%w: shard size %d does not match the container's %d",
			ErrInput, cfg.shardSize, man.Plan.ShardSize)
	}
	if cfg.maxPatternLen != 0 && cfg.maxPatternLen != man.MaxPatternLen {
		return nil, fmt.Errorf("%w: max pattern length %d does not match the container's %d (the overlap is fixed at build time)",
			ErrInput, cfg.maxPatternLen, man.MaxPatternLen)
	}
	cfg.shardSize = man.Plan.ShardSize
	cfg.maxPatternLen = man.MaxPatternLen

	b, err := newStreamBuilder(path, cfg)
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*StreamBuilder, error) {
		b.Abort() // the original error is the one to report
		return nil, err
	}

	// Shards cut short by the old end of input grow when the target
	// grows; everything before the first such shard keeps its span
	// forever and is copied frame-for-frame, length prefix included.
	oldTotal := man.Plan.TotalLen
	full := man.Plan.ShardSize + man.Plan.Overlap
	cut := len(man.Plan.Spans)
	for i, sp := range man.Plan.Spans {
		if sp.Len() < full {
			cut = i
			break
		}
	}
	for i := 0; i < cut; i++ {
		fr := toc.frames[i]
		frame := io.NewSectionReader(f, fr.off-8, fr.len+8)
		if _, err := io.Copy(b.spill, frame); err != nil {
			return fail(fmt.Errorf("%w: copying shard %d: %v", ErrFormat, i, err))
		}
	}
	b.spans = append(b.spans, man.Plan.Spans[:cut]...)
	b.appended = cut

	// Seed the streaming window with the first rebuilt shard's stored
	// text: it covers [its start, oldTotal), exactly the old bytes any
	// grown tail shard can need.
	if cut < len(man.Plan.Spans) {
		sp := man.Plan.Spans[cut]
		fr := toc.frames[cut]
		idx, err := Load(io.NewSectionReader(f, fr.off, fr.len))
		if err != nil {
			return fail(fmt.Errorf("%w: shard %d payload: %v", ErrFormat, cut, err))
		}
		if idx.Len() != sp.Len() {
			return fail(fmt.Errorf("%w: shard %d payload holds %d bases for span [%d,%d)",
				ErrFormat, cut, idx.Len(), sp.Start, sp.End))
		}
		b.buf = append(b.buf, idx.text...)
		b.start = sp.Start
	} else {
		b.start = oldTotal
	}
	b.total = oldTotal
	b.refs = refsFromShard(man.Refs)
	return b, nil
}
