package bwtmatch

import (
	"bytes"
	"errors"
	"math/rand"

	"path/filepath"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(151))
	for _, opts := range [][]Option{
		nil,
		{WithOccRate(32), WithSARate(8)},
		{WithPackedBWT(), WithOccRate(64)},
	} {
		target := randomDNA(rng, 2000)
		orig, err := New(target, opts...)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := orig.Save(&buf); err != nil {
			t.Fatal(err)
		}
		loaded, err := Load(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if loaded.Len() != orig.Len() {
			t.Fatalf("Len %d vs %d", loaded.Len(), orig.Len())
		}
		for q := 0; q < 20; q++ {
			m := 8 + rng.Intn(20)
			p := rng.Intn(len(target) - m)
			pattern := append([]byte(nil), target[p:p+m]...)
			pattern[rng.Intn(m)] = "acgt"[rng.Intn(4)]
			k := rng.Intn(3)
			for _, method := range []Method{AlgorithmA, Amir, Cole} {
				a, _, err := orig.SearchMethod(pattern, k, method)
				if err != nil {
					t.Fatal(err)
				}
				b, _, err := loaded.SearchMethod(pattern, k, method)
				if err != nil {
					t.Fatal(err)
				}
				if len(a) != len(b) {
					t.Fatalf("%v: %d vs %d matches after reload", method, len(a), len(b))
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("%v: match %d differs after reload", method, i)
					}
				}
			}
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "genome.bwt")
	rng := rand.New(rand.NewSource(152))
	target := randomDNA(rng, 1000)
	orig, _ := New(target)
	if err := orig.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	pattern := target[100:130]
	a, _ := orig.Search(pattern, 2)
	b, _ := loaded.Search(pattern, 2)
	if len(a) != len(b) {
		t.Fatalf("results differ after file round trip")
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.bwt")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	for _, data := range [][]byte{nil, {1}, bytes.Repeat([]byte{0xAB}, 100)} {
		if _, err := Load(bytes.NewReader(data)); !errors.Is(err, ErrFormat) {
			t.Errorf("Load(%d bytes) error = %v, want ErrFormat", len(data), err)
		}
	}
}

func TestLoadRejectsTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(153))
	idx, _ := New(randomDNA(rng, 500))
	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Every truncation point — including cuts inside the embedded fmindex
	// payload — must surface as ErrFormat, never a raw io error or a panic.
	for cut := 0; cut < len(full); cut += 1 + cut/3 {
		if _, err := Load(bytes.NewReader(full[:cut])); !errors.Is(err, ErrFormat) {
			t.Errorf("truncation at %d: error = %v, want ErrFormat", cut, err)
		}
	}
	if _, err := Load(bytes.NewReader(full[:len(full)-2])); !errors.Is(err, ErrFormat) {
		t.Error("near-complete truncation not rejected with ErrFormat")
	}
	// Ensure a full copy still loads (the truncation loop must not have
	// been vacuous).
	if _, err := Load(bytes.NewReader(full)); err != nil {
		t.Fatal(err)
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(154))
	idx, err := NewRefs([]Reference{
		{Name: "chr1", Seq: randomDNA(rng, 300)},
		{Name: "chr2", Seq: randomDNA(rng, 200)},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Smash individual header fields with adversarial values. Each must be
	// rejected cleanly (most as ErrFormat; a corrupt byte deep in a
	// payload may legitimately go unnoticed, so only assert no-panic
	// there).
	corrupt := func(off int, val []byte) []byte {
		c := append([]byte(nil), full...)
		copy(c[off:], val)
		return c
	}
	huge := []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}
	for name, data := range map[string][]byte{
		"magic":     corrupt(0, []byte{1, 2, 3, 4}),
		"textLen":   corrupt(4, huge),
		"wordCount": corrupt(12, huge),
	} {
		if _, err := Load(bytes.NewReader(data)); !errors.Is(err, ErrFormat) {
			t.Errorf("%s corruption: error = %v, want ErrFormat", name, err)
		}
	}
	// Bit-flip a sample of positions across the whole file: Load must
	// never panic, whatever it decides about validity.
	for off := 0; off < len(full); off += 1 + off/5 {
		c := append([]byte(nil), full...)
		c[off] ^= 0xA5
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Load panicked on flipped byte at %d: %v", off, r)
				}
			}()
			Load(bytes.NewReader(c))
		}()
	}
}
