package bwtmatch_test

import (
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestRelativeSmoke drives the multi-tenant relative pipeline end to
// end through the real binaries: kmgen builds a base index and three
// delta-compressed tenant containers against it, kmsearch loads a
// tenant transparently and agrees with a standalone build of the same
// tenant genome, and kmserved registers all three tenants sharing one
// resident base, with the delta accounting visible in /v1/indexes and
// the km_relative_* Prometheus series. `make relative-smoke` runs
// exactly this.
func TestRelativeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bins := t.TempDir()
	for _, name := range []string{"kmgen", "kmsearch", "kmserved"} {
		bin := filepath.Join(bins, name)
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
		cmd.Env = os.Environ()
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, out)
		}
	}
	work := t.TempDir()
	baseFA := filepath.Join(work, "base.fa")
	baseKM := filepath.Join(work, "base.km")
	reads := filepath.Join(work, "reads.fq")

	// Base genome plus its monolithic index in one kmgen call.
	run(t, filepath.Join(bins, "kmgen"),
		"-genome", baseFA, "-bases", "32768", "-seed", "7", "-index", baseKM)

	// Three tenant genomes, each the base at ~1% substitution divergence,
	// and a relative container for each against the shared base.
	tenantFAs := make([]string, 3)
	tenantKMs := make([]string, 3)
	for i := range tenantFAs {
		tenantFAs[i] = filepath.Join(work, "tenant"+string(rune('1'+i))+".fa")
		tenantKMs[i] = filepath.Join(work, "tenant"+string(rune('1'+i))+".km")
		mutateFASTA(t, baseFA, tenantFAs[i], 0.01, int64(100+i))
		out := run(t, filepath.Join(bins, "kmgen"),
			"-index", tenantKMs[i], "-from", tenantFAs[i],
			"-relative", "-base", baseKM)
		if !strings.Contains(out, "built relative index against") {
			t.Fatalf("kmgen relative output: %s", out)
		}
	}

	// Reads simulated from tenant 1; the relative container must answer
	// them byte-identically to a standalone index over the same genome.
	run(t, filepath.Join(bins, "kmgen"),
		"-reads", reads, "-from", tenantFAs[0], "-length", "80", "-count", "25", "-seed", "8")
	standaloneOut := run(t, filepath.Join(bins, "kmsearch"),
		"-genome", tenantFAs[0], "-reads", reads, "-k", "3", "-v")
	relativeOut := run(t, filepath.Join(bins, "kmsearch"),
		"-index", tenantKMs[0], "-reads", reads, "-k", "3", "-v")
	if extractMatches(standaloneOut) != extractMatches(relativeOut) {
		t.Fatalf("relative index disagrees with standalone:\n%s\nvs\n%s",
			standaloneOut, relativeOut)
	}

	// kmserved: register the three tenant containers (the base resolves
	// from the recorded path hint and is shared by fingerprint), search
	// one, and check the accounting surfaces.
	daemon := exec.Command(filepath.Join(bins, "kmserved"),
		"-addr", "127.0.0.1:0",
		"-load", "t1="+tenantKMs[0], "-load", "t2="+tenantKMs[1], "-load", "t3="+tenantKMs[2])
	stdout, err := daemon.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	daemon.Stderr = os.Stderr
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { daemon.Process.Kill(); daemon.Wait() })
	base := awaitListening(t, stdout)

	resp, err := http.Post(base+"/v1/search", "application/json",
		strings.NewReader(`{"index":"t2","k":2,"seq":"acgtacgtacgtacgt"}`))
	if err != nil {
		t.Fatal(err)
	}
	if body := readAll(t, resp); resp.StatusCode != http.StatusOK {
		t.Fatalf("search: %d %s", resp.StatusCode, body)
	}

	list := getBody(t, base+"/v1/indexes")
	for _, want := range []string{`"base":"`, `"delta_bytes":`, `"shared_base_bytes":`} {
		if !strings.Contains(list, want) {
			t.Fatalf("/v1/indexes missing %s: %s", want, list)
		}
	}
	// All three tenants must report the same base fingerprint — one
	// resident base, not three copies.
	fps := regexp.MustCompile(`"base":"([0-9a-f]+)"`).FindAllStringSubmatch(list, -1)
	if len(fps) != 3 {
		t.Fatalf("want 3 tenants with a base fingerprint, got %d: %s", len(fps), list)
	}
	for _, m := range fps[1:] {
		if m[1] != fps[0][1] {
			t.Fatalf("tenants disagree on base fingerprint: %s", list)
		}
	}

	metrics := getBody(t, base+"/metrics")
	if !strings.Contains(metrics, `km_relative_tenants{base="`+fps[0][1]+`"} 3`) {
		t.Errorf("missing km_relative_tenants gauge of 3 in /metrics:\n%s", metrics)
	}
	for _, want := range []string{
		`km_relative_base_bytes{base="` + fps[0][1] + `"} `,
		`km_relative_delta_bytes{index="t1",base="` + fps[0][1] + `"} `,
		`km_relative_delta_bytes{index="t3",base="` + fps[0][1] + `"} `,
		`km_relative_base_hits_total{index="t2"} `,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("missing %q in /metrics:\n%s", want, metrics)
		}
	}
}

// mutateFASTA copies a FASTA file substituting each base with rate
// probability — a synthetic tenant at a controlled divergence from the
// reference. Headers and line structure are preserved.
func mutateFASTA(t *testing.T, src, dst string, rate float64, seed int64) {
	t.Helper()
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	const bases = "ACGT"
	lines := strings.Split(string(data), "\n")
	for li, line := range lines {
		if strings.HasPrefix(line, ">") {
			continue
		}
		b := []byte(line)
		for i, c := range b {
			if rng.Float64() >= rate {
				continue
			}
			cur := strings.IndexByte(bases, c&^0x20) // uppercase lookup
			if cur < 0 {
				continue
			}
			b[i] = bases[(cur+1+rng.Intn(3))%4]
		}
		lines[li] = string(b)
	}
	if err := os.WriteFile(dst, []byte(strings.Join(lines, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}
}
