package fmindex

import (
	"fmt"
	"sync"
	"sync/atomic"

	"bwtmatch/internal/alphabet"
	"bwtmatch/internal/bitvec"
)

// splitRanges partitions [0, n) into at most workers contiguous ranges
// whose boundaries (except the final end) are multiples of align, so
// that range-local construction can write packed words, checkpoint rows
// or bitvector words without overlapping another range's cache lines.
func splitRanges(n, workers, align int) [][2]int {
	if n <= 0 {
		return nil
	}
	if workers < 1 {
		workers = 1
	}
	if align < 1 {
		align = 1
	}
	chunk := (n + workers - 1) / workers
	chunk = (chunk + align - 1) / align * align
	ranges := make([][2]int, 0, (n+chunk-1)/chunk)
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		ranges = append(ranges, [2]int{lo, hi})
	}
	return ranges
}

// runRanges executes fn over every range, concurrently when there is
// more than one. fn receives the range index w for indexing per-range
// accumulators.
func runRanges(ranges [][2]int, fn func(w, lo, hi int)) {
	if len(ranges) == 0 {
		return
	}
	if len(ranges) == 1 {
		fn(0, ranges[0][0], ranges[0][1])
		return
	}
	var wg sync.WaitGroup
	for w, r := range ranges {
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(w, r[0], r[1])
	}
	wg.Wait()
}

// parallelRanges is splitRanges+runRanges for phases that need no
// second pass over the same partition.
func parallelRanges(n, workers, align int, fn func(w, lo, hi int)) {
	runRanges(splitRanges(n, workers, align), fn)
}

// validateText checks that every byte is a proper base rank, reporting
// the first offending position (workers scan disjoint ranges; the
// earliest range's hit wins, preserving the serial error message).
func validateText(text []byte, workers int) error {
	ranges := splitRanges(len(text), workers, 1)
	bad := make([]int, len(ranges))
	runRanges(ranges, func(w, lo, hi int) {
		bad[w] = -1
		for i := lo; i < hi; i++ {
			if r := text[i]; r < alphabet.A || r > alphabet.T {
				bad[w] = i
				return
			}
		}
	})
	for _, i := range bad {
		if i >= 0 {
			return fmt.Errorf("%w: rank %d at position %d", ErrInvalidText, text[i], i)
		}
	}
	return nil
}

// extractBWT fills bwt[i] = text[sa[i]-1] (the sentinel where sa[i] is
// 0, paper eq. (3)) and returns the sentinel's row. Rows partition into
// disjoint ranges, so workers never write the same byte.
func extractBWT(bwt []byte, sa []int32, text []byte, workers int) int32 {
	var sent atomic.Int32
	parallelRanges(len(sa), workers, 1, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			p := sa[i]
			if p == 0 {
				bwt[i] = alphabet.Sentinel
				sent.Store(int32(i)) // exactly one row has sa[i] == 0
			} else {
				bwt[i] = text[p-1]
			}
		}
	})
	return sent.Load()
}

// countRanks tallies the rank histogram of the text plus one sentinel,
// merging per-range partial counts.
func countRanks(text []byte, workers int) [alphabet.Size]int32 {
	ranges := splitRanges(len(text), workers, 1)
	part := make([][alphabet.Size]int32, len(ranges))
	runRanges(ranges, func(w, lo, hi int) {
		var local [alphabet.Size]int32
		for _, r := range text[lo:hi] {
			local[r]++
		}
		part[w] = local
	})
	var total [alphabet.Size]int32
	total[alphabet.Sentinel] = 1
	for _, p := range part {
		for x := range total {
			total[x] += p[x]
		}
	}
	return total
}

// buildFlatOcc builds the paper's flat rankall table over bwt (sentinel
// included): one [Bases]int32 checkpoint per rate-aligned position p in
// [0, len(bwt)], holding the occurrence counts in bwt[0:p]. Ranges are
// rate-aligned so every checkpoint row belongs to exactly one range;
// pass one writes counts relative to the range start, pass two adds the
// prefix-summed range offsets.
func buildFlatOcc(bwt []byte, rate, workers int) []int32 {
	L := len(bwt)
	nChk := L/rate + 1
	occ := make([]int32, nChk*alphabet.Bases)
	ranges := splitRanges(L+1, workers, rate)
	totals := make([][alphabet.Bases]int32, len(ranges))
	runRanges(ranges, func(w, lo, hi int) {
		var running [alphabet.Bases]int32
		for p := lo; p < hi; p++ {
			if p%rate == 0 {
				copy(occ[(p/rate)*alphabet.Bases:], running[:])
			}
			if p < L {
				if ch := bwt[p]; ch != alphabet.Sentinel {
					running[ch-1]++
				}
			}
		}
		totals[w] = running
	})
	if len(ranges) > 1 {
		offsets := make([][alphabet.Bases]int32, len(ranges))
		var off [alphabet.Bases]int32
		for w := range ranges {
			offsets[w] = off
			for x := 0; x < alphabet.Bases; x++ {
				off[x] += totals[w][x]
			}
		}
		runRanges(ranges, func(w, lo, hi int) {
			if w == 0 {
				return // first range is already absolute
			}
			add := &offsets[w]
			for chk := lo / rate; chk*rate < hi; chk++ {
				row := occ[chk*alphabet.Bases : chk*alphabet.Bases+alphabet.Bases]
				for x := 0; x < alphabet.Bases; x++ {
					row[x] += add[x]
				}
			}
		})
	}
	return occ
}

// buildSASamples marks every SARate-th text position's row (plus the
// row of position n so all LF walks terminate) and collects the sampled
// SA values in row order. Row ranges are 64-aligned so bit writes land
// in disjoint bitvector words; the sample fill indexes each range's
// output slot via Rank1 of its start.
func buildSASamples(sa []int32, n, saRate, workers int) (*bitvec.Rank, []int32) {
	marked := bitvec.New(len(sa))
	parallelRanges(len(sa), workers, 64, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			if p := int(sa[i]); p%saRate == 0 || p == n {
				marked.Set(i)
			}
		}
	})
	rank := bitvec.NewRank(marked)
	samples := make([]int32, rank.Ones())
	parallelRanges(len(sa), workers, 64, func(w, lo, hi int) {
		j := rank.Rank1(lo)
		for i := lo; i < hi; i++ {
			if marked.Get(i) {
				samples[j] = sa[i]
				j++
			}
		}
	})
	return rank, samples
}
