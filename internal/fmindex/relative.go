package fmindex

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"bwtmatch/internal/alphabet"
	"bwtmatch/internal/binio"
	"bwtmatch/internal/bitvec"
	"bwtmatch/internal/relative"
)

// The relative layout ("Reusing an FM-index", PAPERS.md): a tenant
// index stores no BWT or occ payload of its own — only a
// relative.Delta aligning its BWT against a shared base index, plus
// its own C array and Locate samples. Every rank/BWT accessor branches
// here, so backward search, LF walks, Locate, the bidirectional index
// and the invariant checkers all work unchanged over the bridged
// representation.

// relBWTAt reads tenant L[i] through the delta: insertion rows come
// from the exception characters, common rows from the base BWT.
func (idx *Index) relBWTAt(i int32) byte {
	d := idx.rel
	if d.IsIns(i) {
		d.NoteInsRead()
		return d.InsChar(int32(d.TenantIns.Rank1(int(i))))
	}
	d.NoteBaseRead()
	return idx.relBase.bwtAt(d.BaseRow(i))
}

// relOccAt answers a tenant rank query as one base rank query plus two
// exception-set corrections.
func (idx *Index) relOccAt(x byte, p int32) int32 {
	d := idx.rel
	tIns, j, jDel := d.Split(p)
	return idx.relBase.occAt(x, j) - d.OccDel(x, jDel) + d.OccIns(x, tIns)
}

// relOccAll is relOccAt over all four bases sharing one Split.
func (idx *Index) relOccAll(p int32, cnt *[alphabet.Bases]int32) {
	d := idx.rel
	tIns, j, jDel := d.Split(p)
	idx.relBase.occAll(j, cnt)
	del := d.OccDelAll(jDel)
	ins := d.OccInsAll(tIns)
	for x := 0; x < alphabet.Bases; x++ {
		cnt[x] += ins[x] - del[x]
	}
}

// relBWT materializes the tenant BWT by merging the base BWT with the
// exception sets in one O(rows) sweep (no read counters, no selects).
func (idx *Index) relBWT() []byte {
	d := idx.rel
	out := make([]byte, d.TenantRows())
	bi, insRank := 0, 0
	for i := range out {
		if d.TenantIns.Get(i) {
			out[i] = d.InsChar(int32(insRank))
			insRank++
			continue
		}
		for d.BaseDel.Get(bi) {
			bi++
		}
		out[i] = idx.relBase.bwtAt(int32(bi))
		bi++
	}
	return out
}

// IsRelative reports whether the index uses the relative layout.
func (idx *Index) IsRelative() bool { return idx.rel != nil }

// RelBase returns the shared base index (nil for standalone layouts).
func (idx *Index) RelBase() *Index { return idx.relBase }

// RelDelta returns the delta payload (nil for standalone layouts).
func (idx *Index) RelDelta() *relative.Delta { return idx.rel }

// Fingerprint returns a content hash of the index's BWT. A relative
// container binds to its base through this hash, so a renamed or
// rebuilt base that no longer matches is rejected at load.
func (idx *Index) Fingerprint() [sha256.Size]byte {
	return sha256.Sum256(idx.BWT())
}

// ReconstructText rebuilds the rank-encoded text the index was built
// over by walking the LF mapping from the sentinel row — the relative
// layout's substitute for a stored text payload.
func (idx *Index) ReconstructText() ([]byte, error) {
	out := make([]byte, idx.n)
	row := int32(0)
	for p := idx.n - 1; p >= 0; p-- {
		ch := idx.bwtAt(row)
		if ch == alphabet.Sentinel {
			return nil, fmt.Errorf("fmindex: LF reconstruction hit the sentinel at position %d", p)
		}
		out[p] = ch
		row = idx.lfStep(row)
	}
	return out, nil
}

// Alignment driver tuning. The context DFS keeps splitting a block
// while it holds more than alignBlockTarget combined rows (up to
// maxContextLevels characters of context — the adaptive depth is what
// keeps repeat-heavy blocks small enough to diff; a fixed average
// depth leaves the heavy repeat contexts thousands of rows wide and
// the diff below degenerates). Blocks longer than maxAlignBlock are
// split proportionally before the O(ND) diff runs; maxAlignD caps the
// edit budget per diff (a block needing more contributes no matches,
// which only costs delta bytes, never correctness).
const (
	alignBlockTarget = 512
	maxContextLevels = 32 // 2 bits of key per level — the uint64 budget
	maxAlignBlock    = 1 << 14
	maxAlignD        = 128
)

// MakeRelative expresses tenant as a delta against base and returns a
// new relative-layout index sharing base. The tenant index's own C
// array, sentinel position and Locate samples are kept; its BWT and
// occ payloads are replaced by the delta bridge. The result answers
// every query identically to tenant (checked here by materializing the
// bridged BWT).
func MakeRelative(base, tenant *Index) (*Index, error) {
	if base == nil || tenant == nil {
		return nil, fmt.Errorf("fmindex: MakeRelative needs both indexes")
	}
	if base.rel != nil {
		return nil, fmt.Errorf("fmindex: base index is itself relative")
	}
	delta := buildDelta(base, tenant)
	rx := &Index{
		opts:      tenant.opts,
		n:         tenant.n,
		c:         tenant.c,
		sentPos:   tenant.sentPos,
		saMarked:  tenant.saMarked,
		saSamples: tenant.saSamples,
		rel:       delta,
		relBase:   base,
	}
	rx.deriveOccShift()
	want := tenant.BWT()
	got := rx.relBWT()
	if len(got) != len(want) {
		return nil, fmt.Errorf("fmindex: bridged BWT has %d rows, tenant %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			return nil, fmt.Errorf("fmindex: bridged BWT differs from tenant at row %d", i)
		}
	}
	return rx, nil
}

// buildDelta aligns the tenant BWT against the base BWT. Globally the
// two BWTs are permutations of near-identical texts, so a direct diff
// would see mostly noise; but rows that share a right context (the
// first t characters of their suffixes) land in the same lexicographic
// block in both indexes, and within a paired block the L characters
// run nearly parallel. The driver partitions both row spaces by
// t-character context (one backward-search DFS stepping both indexes
// together), pairs the blocks positionally, and diffs block against
// block — gap rows between blocks (suffixes shorter than t) are
// diffed by the same cursor sweep.
func buildDelta(base, tenant *Index) *relative.Delta {
	baseBWT := base.BWT()
	tenBWT := tenant.BWT()
	bld := relative.NewBuilder(baseBWT, tenBWT)

	type blockPair struct {
		key      uint64
		base, tn Interval
	}
	var blocks []blockPair
	var dfs func(level int, key uint64, biv, tiv Interval)
	dfs = func(level int, key uint64, biv, tiv Interval) {
		if level == maxContextLevels ||
			int(biv.Hi-biv.Lo)+int(tiv.Hi-tiv.Lo) <= alignBlockTarget {
			blocks = append(blocks, blockPair{key, biv, tiv})
			return
		}
		for x := byte(alphabet.A); x <= alphabet.T; x++ {
			nb := base.Step(x, biv)
			nt := tenant.Step(x, tiv)
			if nb.Empty() && nt.Empty() {
				continue
			}
			// Step prepends: the new character becomes the FIRST of
			// the context, so it enters at the top of the key and the
			// accumulated context shifts down — keys stay left-aligned
			// (first context character most significant). Left-aligned
			// keys order blocks of different depths by context, which
			// is row order; block contexts form an antichain (a node
			// either recursed or became a block), so no key is a
			// prefix of another and ties cannot happen across blocks.
			dfs(level+1, key>>2|uint64(x-1)<<62, nb, nt)
		}
	}
	dfs(0, 0, base.Full(), tenant.Full())
	// DFS visit order is by reversed context; row order is by the
	// context read left to right. Sort.
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].key < blocks[j].key })

	gb, gt := 0, 0
	for _, blk := range blocks {
		alignRange(bld, baseBWT, tenBWT, gb, int(blk.base.Lo), gt, int(blk.tn.Lo))
		alignRange(bld, baseBWT, tenBWT, int(blk.base.Lo), int(blk.base.Hi), int(blk.tn.Lo), int(blk.tn.Hi))
		gb, gt = int(blk.base.Hi), int(blk.tn.Hi)
	}
	alignRange(bld, baseBWT, tenBWT, gb, len(baseBWT), gt, len(tenBWT))
	return bld.Finish()
}

// alignRange diffs baseBWT[b0:b1] against tenBWT[t0:t1], emitting
// global matched pairs into bld. Oversized ranges are split
// proportionally so each Myers run stays bounded.
func alignRange(bld *relative.Builder, baseBWT, tenBWT []byte, b0, b1, t0, t1 int) {
	if b0 >= b1 || t0 >= t1 {
		return
	}
	if (b1-b0)+(t1-t0) > maxAlignBlock {
		bm := (b0 + b1) / 2
		tm := t0 + (t1-t0)*(bm-b0)/(b1-b0)
		alignRange(bld, baseBWT, tenBWT, b0, bm, t0, tm)
		alignRange(bld, baseBWT, tenBWT, bm, b1, tm, t1)
		return
	}
	matched := 0
	relative.Common(baseBWT[b0:b1], tenBWT[t0:t1], maxAlignD, func(ai, bi int) {
		matched++
		bld.Match(b0+ai, t0+bi)
	})
	// A block whose true edit distance exceeds maxAlignD yields nothing
	// — common in repeat contexts too heavy for even the deepest DFS
	// level. Bisecting halves the edit mass per piece; recursion bottoms
	// out where the pieces either fit the budget or are too small to be
	// worth saving.
	if matched == 0 && (b1-b0)+(t1-t0) > 256 {
		// Independent midpoints (not proportional): the failed diff
		// means positional mapping is noise anyway, and halving each
		// side separately guarantees the combined size shrinks even
		// when one side is a sliver.
		bm, tm := (b0+b1)/2, (t0+t1)/2
		alignRange(bld, baseBWT, tenBWT, b0, bm, t0, tm)
		alignRange(bld, baseBWT, tenBWT, bm, b1, tm, t1)
	}
}

// Relative-index serialization: the inner payload embedded in the
// public container (saveload_relative.go). The base index itself is
// not stored — the caller resolves and supplies it at load.

const relIndexMagic = uint32(0xB3711D02) // "BWT relative index" v1

// WriteRelativeTo serializes the tenant-local payload of a relative
// index: header, C array, delta, and Locate samples.
func (idx *Index) WriteRelativeTo(w io.Writer) (int64, error) {
	if idx.rel == nil {
		return 0, fmt.Errorf("fmindex: WriteRelativeTo on a non-relative index")
	}
	cw := &countWriter{w: bufio.NewWriter(w)}
	put := func(v any) error { return binary.Write(cw, binary.LittleEndian, v) }
	if err := firstErr(
		put(relIndexMagic),
		put(uint32(idx.opts.SARate)),
		put(uint64(idx.n)),
		put(idx.sentPos),
		put(idx.c[:]),
	); err != nil {
		return cw.n, err
	}
	if _, err := idx.rel.WriteTo(cw); err != nil {
		return cw.n, err
	}
	markBits := markedBits(idx.saMarked)
	if err := firstErr(
		put(uint64(len(markBits))),
		put(markBits),
		put(uint64(len(idx.saSamples))),
		put(idx.saSamples),
	); err != nil {
		return cw.n, err
	}
	return cw.n, cw.w.(*bufio.Writer).Flush()
}

// ReadRelativeIndex deserializes a payload written by WriteRelativeTo,
// binding it to the supplied base index, and fully verifies the result
// (delta geometry, C array census, LF cycle, every SA sample) so a
// corrupt stream is rejected here instead of misbehaving in a search.
func ReadRelativeIndex(r io.Reader, base *Index) (*Index, error) {
	if base == nil || base.rel != nil {
		return nil, fmt.Errorf("%w: relative payload needs a standalone base index", ErrFormat)
	}
	br := bufio.NewReader(r)
	get := func(v any) error { return binary.Read(br, binary.LittleEndian, v) }

	var magic, saRate uint32
	var n uint64
	idx := &Index{relBase: base}
	if err := firstErr(get(&magic), get(&saRate), get(&n), get(&idx.sentPos)); err != nil {
		return nil, fmt.Errorf("%w: relative header: %v", ErrFormat, err)
	}
	if magic != relIndexMagic {
		return nil, fmt.Errorf("%w: relative magic %#x", ErrFormat, magic)
	}
	const maxLen = 1 << 34
	const maxRate = 1 << 28
	if n > maxLen || saRate > maxRate {
		return nil, fmt.Errorf("%w: n %d sa rate %d", ErrFormat, n, saRate)
	}
	idx.n = int(n)
	idx.opts = Options{OccRate: base.opts.OccRate, SARate: int(saRate)}
	if err := idx.opts.normalize(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	idx.deriveOccShift()
	if err := get(idx.c[:]); err != nil {
		return nil, fmt.Errorf("%w: c array: %v", ErrFormat, err)
	}
	delta, err := relative.ReadDelta(br, idx.n+1, base.n+1)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	idx.rel = delta
	var markWords uint64
	if err := get(&markWords); err != nil || markWords > maxLen {
		return nil, fmt.Errorf("%w: mark length", ErrFormat)
	}
	bits, err := binio.ReadSlice[uint64](br, markWords)
	if err != nil {
		return nil, fmt.Errorf("%w: marks: %v", ErrFormat, err)
	}
	idx.saMarked = bitvec.NewRank(bitvec.FromWords(bits, idx.n+1))
	var samples uint64
	if err := get(&samples); err != nil || samples > maxLen {
		return nil, fmt.Errorf("%w: sample length", ErrFormat)
	}
	saSamples, err := binio.ReadSlice[int32](br, samples)
	if err != nil {
		return nil, fmt.Errorf("%w: samples: %v", ErrFormat, err)
	}
	idx.saSamples = saSamples
	if int(samples) != idx.saMarked.Ones() {
		return nil, fmt.Errorf("%w: %d samples for %d marked rows", ErrFormat, samples, idx.saMarked.Ones())
	}
	if err := idx.verifyLoad(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	return idx, nil
}

// verifyRelativeLoad is the relative-layout arm of verifyLoad: the
// delta's structural invariants were checked by ReadDelta, so what
// remains is whole-index consistency over the materialized BWT —
// census, sentinel position, C prefix sums, and the LF/SA-sample walk.
func (idx *Index) verifyRelativeLoad() error {
	rows := idx.n + 1
	if idx.rel.TenantRows() != rows {
		return fmt.Errorf("delta spans %d tenant rows, index has %d", idx.rel.TenantRows(), rows)
	}
	if idx.rel.BaseRows() != idx.relBase.n+1 {
		return fmt.Errorf("delta spans %d base rows, base has %d", idx.rel.BaseRows(), idx.relBase.n+1)
	}
	bwt := idx.relBWT()
	var counts [alphabet.Size]int32
	for i, ch := range bwt {
		if ch >= alphabet.Size {
			return fmt.Errorf("bwt value %d at row %d", ch, i)
		}
		if ch == alphabet.Sentinel && int32(i) != idx.sentPos {
			return fmt.Errorf("stray sentinel at row %d (header says %d)", i, idx.sentPos)
		}
		counts[ch]++
	}
	if counts[alphabet.Sentinel] != 1 {
		return fmt.Errorf("%d sentinels in bwt", counts[alphabet.Sentinel])
	}
	if err := idx.verifyCArray(counts); err != nil {
		return err
	}
	return idx.verifySASamples(bwt)
}
