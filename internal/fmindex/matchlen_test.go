package fmindex

import (
	"math/rand"
	"testing"
)

// matchLenGeneric is the reference Step loop MatchLen fuses.
func matchLenGeneric(idx *Index, p []byte) (int, int) {
	iv := idx.Full()
	steps := 0
	for q := 0; q < len(p); q++ {
		iv = idx.Step(p[q], iv)
		steps++
		if iv.Empty() {
			return q, steps
		}
	}
	return len(p), steps
}

// TestMatchLenMatchesStepLoop checks the fused flat-layout MatchLen
// (and the fallback on the other layouts) against the generic Step
// loop: same matched length AND same step count, on random and
// periodic texts, with query prefixes sampled from the text (long
// matches, exercising the singleton tail) and random (short matches).
func TestMatchLenMatchesStepLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	layouts := []Options{
		{OccRate: 1, SARate: 16},
		{OccRate: 4, SARate: 16},
		{OccRate: 64, SARate: 8},
		{OccRate: 64, SARate: 16, PackedBWT: true},
		{SARate: 16, TwoLevelOcc: true},
	}
	for _, n := range []int{1, 3, 64, 500, 5000} {
		texts := [][]byte{randomRanksP(rng, n), periodicRanksP(n)}
		for _, text := range texts {
			for _, opts := range layouts {
				idx, err := Build(text, opts)
				if err != nil {
					t.Fatal(err)
				}
				for trial := 0; trial < 40; trial++ {
					var p []byte
					if trial%2 == 0 && n > 1 {
						// Substring of the text, optionally with a mutated tail.
						start := rng.Intn(n)
						end := start + rng.Intn(n-start) + 1
						p = append([]byte(nil), text[start:end]...)
						if len(p) > 0 && trial%4 == 0 {
							p[len(p)-1] = byte(1 + rng.Intn(4))
						}
					} else {
						p = randomRanksP(rng, rng.Intn(30))
					}
					gm, gs := matchLenGeneric(idx, p)
					fm, fs := idx.MatchLen(p)
					if fm != gm || fs != gs {
						t.Fatalf("n=%d opts=%+v p=%v: MatchLen=(%d,%d), generic=(%d,%d)",
							n, opts, p, fm, fs, gm, gs)
					}
				}
			}
		}
	}
}

// periodicRanksP builds a period-3 text, which keeps intervals wide for
// long extensions (the non-singleton fused path).
func periodicRanksP(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(1 + i%3)
	}
	return out
}
