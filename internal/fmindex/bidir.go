package fmindex

import "bwtmatch/internal/alphabet"

// BiIndex is a bidirectional FM-index (the 2BWT of Lam et al.): two
// synchronized indexes over the text and its reverse, letting a match be
// extended by one character on EITHER side in O(1) rank work. The
// unidirectional index underlying the paper's search can only prepend;
// bidirectional extension is the substrate behind modern approximate
// seeding (maximal exact matches, 1-mismatch seeds) and is provided as an
// extension of the reproduction.
type BiIndex struct {
	fwd *Index // index of text: intervals hold rows prefixed by the pattern
	rev *Index // index of reverse(text): rows prefixed by reverse(pattern)
}

// BiInterval is a synchronized pair of intervals: Fwd is the pattern's
// interval in the forward index, Rev is reverse(pattern)'s interval in
// the reverse index. Both always have the same length.
type BiInterval struct {
	Fwd, Rev Interval
}

// Empty reports whether the match set is empty.
func (b BiInterval) Empty() bool { return b.Fwd.Empty() }

// Len returns the number of occurrences.
func (b BiInterval) Len() int { return b.Fwd.Len() }

// BuildBi constructs the bidirectional index over a rank-encoded text.
func BuildBi(text []byte, opts Options) (*BiIndex, error) {
	fwd, err := Build(text, opts)
	if err != nil {
		return nil, err
	}
	rev := make([]byte, len(text))
	for i, b := range text {
		rev[len(text)-1-i] = b
	}
	ri, err := Build(rev, opts)
	if err != nil {
		return nil, err
	}
	return &BiIndex{fwd: fwd, rev: ri}, nil
}

// N returns the text length.
func (b *BiIndex) N() int { return b.fwd.N() }

// Fwd exposes the forward index (for locating occurrences).
func (b *BiIndex) Fwd() *Index { return b.fwd }

// Rev exposes the reverse index.
func (b *BiIndex) Rev() *Index { return b.rev }

// Full returns the interval pair of the empty pattern.
func (b *BiIndex) Full() BiInterval {
	return BiInterval{Fwd: b.fwd.Full(), Rev: b.rev.Full()}
}

// ExtendLeft extends the current pattern P to x·P. The forward interval
// is one backward-search step; the reverse interval is re-synchronized
// with the classic 2BWT rank identity: within Fwd, the rows of x·P are
// preceded (in the text) by x, and the Rev interval of reverse(P) is
// partitioned by that preceding character in rank order.
func (b *BiIndex) ExtendLeft(x byte, iv BiInterval) BiInterval {
	nf := b.fwd.Step(x, iv.Fwd)
	if nf.Empty() {
		return BiInterval{}
	}
	// Count window occurrences of every character smaller than x
	// (including the sentinel, which sorts first).
	var before int32
	if sp := b.fwd.sentinelIn(iv.Fwd); sp {
		before++
	}
	var lo, hi [alphabet.Bases]int32
	b.fwd.occAll(iv.Fwd.Lo, &lo)
	b.fwd.occAll(iv.Fwd.Hi, &hi)
	for y := byte(alphabet.A); y < x; y++ {
		before += hi[y-1] - lo[y-1]
	}
	nrLo := iv.Rev.Lo + before
	return BiInterval{Fwd: nf, Rev: Interval{nrLo, nrLo + (nf.Hi - nf.Lo)}}
}

// ExtendRight extends the current pattern P to P·x; the mirror image of
// ExtendLeft with the two indexes swapped.
func (b *BiIndex) ExtendRight(x byte, iv BiInterval) BiInterval {
	nr := b.rev.Step(x, iv.Rev)
	if nr.Empty() {
		return BiInterval{}
	}
	var before int32
	if sp := b.rev.sentinelIn(iv.Rev); sp {
		before++
	}
	var lo, hi [alphabet.Bases]int32
	b.rev.occAll(iv.Rev.Lo, &lo)
	b.rev.occAll(iv.Rev.Hi, &hi)
	for y := byte(alphabet.A); y < x; y++ {
		before += hi[y-1] - lo[y-1]
	}
	nfLo := iv.Fwd.Lo + before
	return BiInterval{Fwd: Interval{nfLo, nfLo + (nr.Hi - nr.Lo)}, Rev: nr}
}

// sentinelIn reports whether the BWT's sentinel position falls inside the
// interval — i.e. one of the interval's rows is preceded by the text
// start.
func (idx *Index) sentinelIn(iv Interval) bool {
	return idx.sentPos >= iv.Lo && idx.sentPos < iv.Hi
}

// SearchOutward matches pattern starting at the pivot character and
// extending alternately right then left, demonstrating bidirectional
// search; the result equals the forward index's Search(pattern).
func (b *BiIndex) SearchOutward(pattern []byte, pivot int) BiInterval {
	if len(pattern) == 0 {
		return b.Full()
	}
	if pivot < 0 || pivot >= len(pattern) {
		pivot = len(pattern) / 2
	}
	iv := b.ExtendRight(pattern[pivot], b.Full())
	l, r := pivot-1, pivot+1
	for !iv.Empty() {
		switch {
		case r < len(pattern):
			iv = b.ExtendRight(pattern[r], iv)
			r++
		case l >= 0:
			iv = b.ExtendLeft(pattern[l], iv)
			l--
		default:
			return iv
		}
	}
	return BiInterval{}
}
