package fmindex

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

func roundTrip(t *testing.T, idx *Index) *Index {
	t.Helper()
	var buf bytes.Buffer
	n, err := idx.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestSerializeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(141))
	for _, packed := range []bool{false, true} {
		for trial := 0; trial < 10; trial++ {
			text := randomRanks(rng, 50+rng.Intn(800))
			idx, err := Build(text, Options{OccRate: 1 + rng.Intn(64), SARate: 1 + rng.Intn(16), PackedBWT: packed})
			if err != nil {
				t.Fatal(err)
			}
			got := roundTrip(t, idx)
			if !bytes.Equal(got.BWT(), idx.BWT()) {
				t.Fatal("BWT differs after round trip")
			}
			if got.N() != idx.N() || got.Options() != idx.Options() {
				t.Fatalf("metadata differs: %+v vs %+v", got.Options(), idx.Options())
			}
			for q := 0; q < 30; q++ {
				pat := randomRanks(rng, 1+rng.Intn(10))
				a := idx.Locate(idx.Search(pat), nil)
				b := got.Locate(got.Search(pat), nil)
				if len(a) != len(b) {
					t.Fatalf("Locate count differs after round trip")
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("Locate differs: %v vs %v", a, b)
					}
				}
			}
		}
	}
}

func TestSerializeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2, 3},
		bytes.Repeat([]byte{0xFF}, 64),
	}
	for _, c := range cases {
		if _, err := ReadIndex(bytes.NewReader(c)); !errors.Is(err, ErrFormat) {
			t.Errorf("ReadIndex(%d bytes) error = %v, want ErrFormat", len(c), err)
		}
	}
}

func TestSerializeRejectsTruncated(t *testing.T) {
	rng := rand.New(rand.NewSource(142))
	idx, _ := Build(randomRanks(rng, 300), DefaultOptions())
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{1, 8, 20, len(full) / 2, len(full) - 1} {
		if _, err := ReadIndex(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}
