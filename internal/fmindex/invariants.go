//go:build kminvariants

package fmindex

import (
	"bytes"
	"fmt"

	"bwtmatch/internal/alphabet"
	"bwtmatch/internal/wavelet"
)

// InvariantsEnabled reports whether this build carries the deep
// invariant checks (the kminvariants build tag).
const InvariantsEnabled = true

// CheckInvariants runs the full structural verification of the index
// (the load-time verifyLoad gate: census, C prefix sums, occ recount,
// single-cycle LF walk certifying every SA sample) and then
// cross-checks the specialized DNA rankall tables against an
// independently built wavelet tree over the same BWT — the general
// rank structure the paper's layout replaces. O(n log sigma); tests
// and fuzz harnesses only, no-op in default builds.
func (idx *Index) CheckInvariants() error {
	if idx.saMarked == nil {
		return fmt.Errorf("fmindex: nil SA mark bitvector")
	}
	if len(idx.saSamples) != idx.saMarked.Ones() {
		return fmt.Errorf("fmindex: %d SA samples for %d marked rows",
			len(idx.saSamples), idx.saMarked.Ones())
	}
	if err := idx.saMarked.CheckInvariants(); err != nil {
		return fmt.Errorf("fmindex: SA mark bitvector: %w", err)
	}
	if err := idx.verifyLoad(); err != nil {
		return fmt.Errorf("fmindex: %w", err)
	}

	// Rankall cross-check: occAt and occAll against wavelet ranks over
	// the same BWT, at sampled prefixes (always including the ends).
	bwt := idx.BWT()
	wt, err := wavelet.New(bwt, alphabet.Size)
	if err != nil {
		return fmt.Errorf("fmindex: building cross-check wavelet tree: %w", err)
	}
	if err := wt.CheckAgainst(bwt); err != nil {
		return fmt.Errorf("fmindex: cross-check wavelet tree: %w", err)
	}
	rows := idx.n + 1
	stride := 1
	if rows > 2048 {
		stride = rows / 2048
	}
	for p := 0; p <= rows; p++ {
		if p%stride != 0 && p != rows {
			continue
		}
		var all [alphabet.Bases]int32
		idx.occAll(int32(p), &all)
		for x := byte(alphabet.A); x <= alphabet.T; x++ {
			want := int32(wt.Rank(x, p))
			if got := idx.occAt(x, int32(p)); got != want {
				return fmt.Errorf("fmindex: occAt(%d, %d) = %d, wavelet rank %d", x, p, got, want)
			}
			if all[x-1] != want {
				return fmt.Errorf("fmindex: occAll(%d)[%d] = %d, wavelet rank %d", p, x-1, all[x-1], want)
			}
		}
	}

	// StepAll must agree with four independent Step calls.
	for _, iv := range []Interval{
		idx.Full(),
		{0, int32(rows / 2)},
		{int32(rows / 4), int32(3 * rows / 4)},
		{int32(rows - 1), int32(rows)},
	} {
		if iv.Empty() {
			continue
		}
		var out [alphabet.Bases]Interval
		idx.StepAll(iv, &out)
		for x := byte(alphabet.A); x <= alphabet.T; x++ {
			if got, want := out[x-1], idx.Step(x, iv); got != want {
				return fmt.Errorf("fmindex: StepAll(%v)[%d] = %v, Step %v", iv, x, got, want)
			}
		}
	}
	return nil
}

// CheckAgainstText verifies the index against the original rank-encoded
// text: the LF walk from the sentinel row must reconstruct the text
// exactly, and sampled Search+Locate probes must find every sampled
// substring at its true position. Tests and fuzz harnesses only; no-op
// in default builds.
func (idx *Index) CheckAgainstText(text []byte) error {
	if len(text) != idx.n {
		return fmt.Errorf("fmindex: text length %d, index built over %d", len(text), idx.n)
	}
	// Row 0 holds the bare-sentinel suffix; walking LF yields the text
	// characters last to first (bwtAt(row) is the character preceding
	// the row's suffix).
	out := make([]byte, idx.n)
	row := int32(0)
	for p := idx.n - 1; p >= 0; p-- {
		ch := idx.bwtAt(row)
		if ch == alphabet.Sentinel {
			return fmt.Errorf("fmindex: LF reconstruction hit the sentinel at text position %d", p)
		}
		out[p] = ch
		row = idx.lfStep(row)
	}
	if idx.bwtAt(row) != alphabet.Sentinel {
		return fmt.Errorf("fmindex: LF reconstruction did not end at the sentinel row")
	}
	if !bytes.Equal(out, text) {
		for i := range out {
			if out[i] != text[i] {
				return fmt.Errorf("fmindex: reconstructed text differs at %d: %d != %d", i, out[i], text[i])
			}
		}
	}

	// Search+Locate probes: every occurrence reported for a sampled
	// substring must really match, and the true position must be among
	// them.
	probe := func(pos, length int) error {
		pat := text[pos : pos+length]
		iv := idx.Search(pat)
		locs := idx.Locate(iv, nil)
		if len(locs) != iv.Len() {
			return fmt.Errorf("fmindex: Locate yielded %d positions for %d rows", len(locs), iv.Len())
		}
		found := false
		for _, q := range locs {
			if q < 0 || int(q)+length > idx.n {
				return fmt.Errorf("fmindex: Locate position %d out of range for length %d", q, length)
			}
			if !bytes.Equal(text[q:int(q)+length], pat) {
				return fmt.Errorf("fmindex: Locate position %d does not match the probe at %d", q, pos)
			}
			if int(q) == pos {
				found = true
			}
		}
		if !found {
			return fmt.Errorf("fmindex: true occurrence at %d missing from Locate (%d hits)", pos, len(locs))
		}
		return nil
	}
	for _, length := range []int{1, 8, 24} {
		if length > idx.n {
			continue
		}
		step := (idx.n - length + 1) / 16
		if step < 1 {
			step = 1
		}
		for pos := 0; pos+length <= idx.n; pos += step {
			if err := probe(pos, length); err != nil {
				return err
			}
		}
	}
	return nil
}
