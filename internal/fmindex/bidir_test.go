package fmindex

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func reverseCopy(b []byte) []byte {
	out := make([]byte, len(b))
	for i, c := range b {
		out[len(b)-1-i] = c
	}
	return out
}

// TestBiExtendSynchronized grows random patterns one character at a time
// on a random side and checks both intervals against independent searches
// after every step.
func TestBiExtendSynchronized(t *testing.T) {
	rng := rand.New(rand.NewSource(231))
	for trial := 0; trial < 30; trial++ {
		text := randomRanks(rng, 20+rng.Intn(400))
		bi, err := BuildBi(text, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < 10; q++ {
			iv := bi.Full()
			var pattern []byte
			for step := 0; step < 12 && !iv.Empty(); step++ {
				x := byte(1 + rng.Intn(4))
				if rng.Intn(2) == 0 {
					iv = bi.ExtendLeft(x, iv)
					pattern = append([]byte{x}, pattern...)
				} else {
					iv = bi.ExtendRight(x, iv)
					pattern = append(pattern, x)
				}
				wantF := bi.Fwd().Search(pattern)
				wantR := bi.Rev().Search(reverseCopy(pattern))
				if iv.Empty() {
					if !wantF.Empty() {
						t.Fatalf("bi empty but %v occurs (text=%v)", pattern, text)
					}
					break
				}
				if iv.Fwd != wantF || iv.Rev != wantR {
					t.Fatalf("desync for %v: fwd %v want %v, rev %v want %v (text=%v)",
						pattern, iv.Fwd, wantF, iv.Rev, wantR, text)
				}
			}
		}
	}
}

func TestBiSearchOutward(t *testing.T) {
	rng := rand.New(rand.NewSource(232))
	for trial := 0; trial < 30; trial++ {
		text := randomRanks(rng, 30+rng.Intn(300))
		bi, err := BuildBi(text, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < 20; q++ {
			m := 1 + rng.Intn(15)
			var pattern []byte
			if rng.Intn(2) == 0 && len(text) > m {
				p := rng.Intn(len(text) - m)
				pattern = text[p : p+m]
			} else {
				pattern = randomRanks(rng, m)
			}
			pivot := rng.Intn(m+2) - 1 // may be out of range, exercising the default
			got := bi.SearchOutward(pattern, pivot)
			want := bi.Fwd().Search(pattern)
			if want.Empty() {
				if !got.Empty() {
					t.Fatalf("SearchOutward found absent pattern %v", pattern)
				}
				continue
			}
			if got.Fwd != want {
				t.Fatalf("SearchOutward(%v, %d) = %v, want %v", pattern, pivot, got.Fwd, want)
			}
		}
	}
}

func TestBiEmptyPattern(t *testing.T) {
	bi, _ := BuildBi([]byte{1, 2, 3, 4}, DefaultOptions())
	iv := bi.SearchOutward(nil, 0)
	if iv.Len() != bi.N()+1 {
		t.Fatalf("empty pattern interval %v", iv)
	}
}

func TestBiQuick(t *testing.T) {
	f := func(seed int64, n8, m8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		text := randomRanks(rng, 1+int(n8))
		pattern := randomRanks(rng, 1+int(m8)%12)
		bi, err := BuildBi(text, DefaultOptions())
		if err != nil {
			return false
		}
		got := bi.SearchOutward(pattern, len(pattern)/2)
		want := bi.Fwd().Search(pattern)
		if want.Empty() {
			return got.Empty()
		}
		return got.Fwd == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBiLocateAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(233))
	text := randomRanks(rng, 500)
	bi, _ := BuildBi(text, DefaultOptions())
	p := 123
	pattern := text[p : p+10]
	iv := bi.SearchOutward(pattern, 5)
	pos := bi.Fwd().Locate(iv.Fwd, nil)
	found := false
	for _, q := range pos {
		if int(q) == p {
			found = true
		}
	}
	if !found {
		t.Fatalf("planted occurrence not located: %v", pos)
	}
}
