package fmindex

import (
	"bytes"
	"math/rand"
	"testing"

	"bwtmatch/internal/alphabet"
)

// mutateRanks applies roughly rate-fraction point edits to a
// rank-encoded text (substitutions, insertions, deletions).
func mutateRanks(rng *rand.Rand, s []byte, rate float64) []byte {
	out := make([]byte, 0, len(s)+16)
	for _, ch := range s {
		if rng.Float64() < rate {
			switch rng.Intn(3) {
			case 0:
				out = append(out, byte(1+rng.Intn(alphabet.Bases)))
			case 1:
				out = append(out, byte(1+rng.Intn(alphabet.Bases)), ch)
			case 2:
			}
		} else {
			out = append(out, ch)
		}
	}
	if len(out) == 0 {
		out = append(out, 1)
	}
	return out
}

func buildRelativePair(t *testing.T, rng *rand.Rand, n int, rate float64) (base, tenant, rel *Index, tenText []byte) {
	t.Helper()
	baseText := randomRanks(rng, n)
	tenText = mutateRanks(rng, baseText, rate)
	base, err := Build(baseText, Options{OccRate: 4, SARate: 8})
	if err != nil {
		t.Fatal(err)
	}
	tenant, err = Build(tenText, Options{OccRate: 4, SARate: 8})
	if err != nil {
		t.Fatal(err)
	}
	rel, err = MakeRelative(base, tenant)
	if err != nil {
		t.Fatal(err)
	}
	return base, tenant, rel, tenText
}

func TestRelativeMatchesStandalone(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	for trial := 0; trial < 8; trial++ {
		n := 200 + rng.Intn(2000)
		_, tenant, rel, tenText := buildRelativePair(t, rng, n, 0.03)

		if !bytes.Equal(rel.BWT(), tenant.BWT()) {
			t.Fatal("bridged BWT differs from standalone")
		}
		rows := int32(tenant.N() + 1)
		for p := int32(0); p <= rows; p += 3 {
			var relAll, tenAll [alphabet.Bases]int32
			rel.occAll(p, &relAll)
			tenant.occAll(p, &tenAll)
			if relAll != tenAll {
				t.Fatalf("occAll(%d): relative %v, standalone %v", p, relAll, tenAll)
			}
			for x := byte(alphabet.A); x <= alphabet.T; x++ {
				if got, want := rel.occAt(x, p), tenant.occAt(x, p); got != want {
					t.Fatalf("occAt(%d,%d): relative %d, standalone %d", x, p, got, want)
				}
			}
		}
		// Search + Locate equivalence over sampled patterns.
		for probe := 0; probe < 30; probe++ {
			plen := 1 + rng.Intn(20)
			start := rng.Intn(len(tenText))
			if start+plen > len(tenText) {
				plen = len(tenText) - start
			}
			pat := tenText[start : start+plen]
			gotIv, wantIv := rel.Search(pat), tenant.Search(pat)
			if gotIv != wantIv {
				t.Fatalf("Search(%v): relative %v, standalone %v", pat, gotIv, wantIv)
			}
			got := rel.Locate(gotIv, nil)
			want := tenant.Locate(wantIv, nil)
			if len(got) != len(want) {
				t.Fatalf("Locate count %d vs %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("Locate[%d] = %d, standalone %d", i, got[i], want[i])
				}
			}
			gm, gs := rel.MatchLen(pat)
			wm, ws := tenant.MatchLen(pat)
			if gm != wm || gs != ws {
				t.Fatalf("MatchLen: relative (%d,%d), standalone (%d,%d)", gm, gs, wm, ws)
			}
		}
		// Read counters must have moved (base hits dominate at low
		// divergence).
		baseReads, insReads := rel.RelDelta().Reads()
		if baseReads == 0 {
			t.Fatal("no base reads recorded")
		}
		_ = insReads
	}
}

func TestRelativeReconstructText(t *testing.T) {
	rng := rand.New(rand.NewSource(302))
	_, _, rel, tenText := buildRelativePair(t, rng, 800, 0.02)
	got, err := rel.ReconstructText()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, tenText) {
		t.Fatal("reconstructed text differs from original")
	}
}

func TestRelativeDeltaSmallAtLowDivergence(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	_, tenant, rel, _ := buildRelativePair(t, rng, 4000, 0.01)
	if rel.SizeBytes() >= tenant.SizeBytes() {
		t.Fatalf("relative %d bytes, standalone %d — no space win at 1%% divergence",
			rel.SizeBytes(), tenant.SizeBytes())
	}
}

func TestRelativeIdenticalTenant(t *testing.T) {
	rng := rand.New(rand.NewSource(304))
	text := randomRanks(rng, 500)
	base, err := Build(text, Options{OccRate: 4, SARate: 8})
	if err != nil {
		t.Fatal(err)
	}
	tenant, err := Build(text, Options{OccRate: 4, SARate: 8})
	if err != nil {
		t.Fatal(err)
	}
	rel, err := MakeRelative(base, tenant)
	if err != nil {
		t.Fatal(err)
	}
	d := rel.RelDelta()
	if d.InsLen() != 0 || d.DelLen() != 0 {
		t.Fatalf("identical tenant produced %d insertions, %d deletions",
			d.InsLen(), d.DelLen())
	}
}

func TestRelativeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(305))
	base, _, rel, tenText := buildRelativePair(t, rng, 1200, 0.03)

	var buf bytes.Buffer
	if _, err := rel.WriteRelativeTo(&buf); err != nil {
		t.Fatal(err)
	}
	saved := append([]byte(nil), buf.Bytes()...)
	got, err := ReadRelativeIndex(bytes.NewReader(saved), base)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.BWT(), rel.BWT()) {
		t.Fatal("BWT differs after round trip")
	}
	pat := tenText[:10]
	if got.Search(pat) != rel.Search(pat) {
		t.Fatal("search differs after round trip")
	}

	// A standalone index must refuse WriteRelativeTo; a relative one
	// must refuse WriteTo.
	if _, err := base.WriteRelativeTo(&bytes.Buffer{}); err == nil {
		t.Fatal("WriteRelativeTo accepted a standalone index")
	}
	if _, err := rel.WriteTo(&bytes.Buffer{}); err == nil {
		t.Fatal("WriteTo accepted a relative index")
	}

	// Wrong base: an index over different content must be rejected by
	// the load-time verification.
	otherText := randomRanks(rng, 1200)
	other, err := Build(otherText, Options{OccRate: 4, SARate: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadRelativeIndex(bytes.NewReader(saved), other); err == nil {
		t.Fatal("relative payload accepted against the wrong base")
	}

	// Truncations and flips: error (wrapping ErrFormat), never panic.
	for cut := 0; cut < len(saved); cut += 97 {
		if _, err := ReadRelativeIndex(bytes.NewReader(saved[:cut]), base); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	for pos := 4; pos < len(saved); pos += 53 {
		mut := append([]byte(nil), saved...)
		mut[pos] ^= 0x40
		_, _ = ReadRelativeIndex(bytes.NewReader(mut), base)
	}
}

func TestRelativeFingerprint(t *testing.T) {
	rng := rand.New(rand.NewSource(306))
	text := randomRanks(rng, 400)
	a, err := Build(text, Options{OccRate: 4, SARate: 8})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(text, Options{OccRate: 64, SARate: 32, PackedBWT: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("fingerprint depends on layout, not content")
	}
	c, err := Build(randomRanks(rng, 400), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("distinct texts share a fingerprint")
	}
}
