package fmindex

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"bwtmatch/internal/alphabet"
)

func TestPackedCountAgainstScan(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(300)
		bwt := make([]byte, n)
		for i := range bwt {
			bwt[i] = byte(1 + rng.Intn(4))
		}
		bwt[rng.Intn(n)] = alphabet.Sentinel
		p := newPackedBWT(bwt, 1)
		for q := 0; q < 100; q++ {
			from := int32(rng.Intn(n + 1))
			to := from + int32(rng.Intn(n+1-int(from)))
			for x := byte(alphabet.A); x <= alphabet.T; x++ {
				want := int32(0)
				for i := from; i < to; i++ {
					if bwt[i] == x {
						want++
					}
				}
				if got := p.count(x, from, to); got != want {
					t.Fatalf("count(%d, %d, %d) = %d, want %d (bwt %v)",
						x, from, to, got, want, bwt)
				}
			}
		}
		for i := range bwt {
			if p.get(int32(i)) != bwt[i] {
				t.Fatalf("get(%d) = %d, want %d", i, p.get(int32(i)), bwt[i])
			}
		}
	}
}

func TestPackedIndexEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(132))
	for trial := 0; trial < 20; trial++ {
		text := randomRanks(rng, 100+rng.Intn(500))
		rate := []int{4, 32, 64}[rng.Intn(3)]
		plain, err := Build(text, Options{OccRate: rate, SARate: 8})
		if err != nil {
			t.Fatal(err)
		}
		packed, err := Build(text, Options{OccRate: rate, SARate: 8, PackedBWT: true})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(plain.BWT(), packed.BWT()) {
			t.Fatal("BWT materialization differs")
		}
		for q := 0; q < 40; q++ {
			pat := randomRanks(rng, 1+rng.Intn(12))
			ivP, ivQ := plain.Search(pat), packed.Search(pat)
			if ivP != ivQ {
				t.Fatalf("Search(%v): %v vs %v", pat, ivP, ivQ)
			}
			a := plain.Locate(ivP, nil)
			b := packed.Locate(ivQ, nil)
			if len(a) != len(b) {
				t.Fatalf("Locate counts differ: %d vs %d", len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("Locate differs: %v vs %v", a, b)
				}
			}
		}
		var ka, kb [alphabet.Bases]Interval
		for q := 0; q < 50; q++ {
			lo := int32(rng.Intn(plain.N() + 1))
			hi := lo + int32(rng.Intn(plain.N()+2-int(lo)))
			plain.StepAll(Interval{lo, hi}, &ka)
			packed.StepAll(Interval{lo, hi}, &kb)
			if ka != kb {
				t.Fatalf("StepAll([%d,%d)) differs", lo, hi)
			}
		}
		if packed.SizeBytes() >= plain.SizeBytes()+int(plain.N()) {
			t.Errorf("packed index unexpectedly large: %d vs %d",
				packed.SizeBytes(), plain.SizeBytes())
		}
	}
}

func TestPackedStepSingleton(t *testing.T) {
	rng := rand.New(rand.NewSource(133))
	text := randomRanks(rng, 800)
	plain, _ := Build(text, DefaultOptions())
	opts := DefaultOptions()
	opts.PackedBWT = true
	packed, _ := Build(text, opts)
	for row := int32(0); row <= int32(plain.N()); row++ {
		x1, c1, ok1 := plain.StepSingleton(Interval{row, row + 1})
		x2, c2, ok2 := packed.StepSingleton(Interval{row, row + 1})
		if x1 != x2 || c1 != c2 || ok1 != ok2 {
			t.Fatalf("row %d: (%d,%v,%v) vs (%d,%v,%v)", row, x1, c1, ok1, x2, c2, ok2)
		}
	}
}

func TestPackedQuick(t *testing.T) {
	f := func(seed int64, n8 uint8, m8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		text := randomRanks(rng, 1+int(n8))
		pat := randomRanks(rng, 1+int(m8)%10)
		plain, err1 := Build(text, Options{OccRate: 64, SARate: 4})
		packed, err2 := Build(text, Options{OccRate: 64, SARate: 4, PackedBWT: true})
		if err1 != nil || err2 != nil {
			return false
		}
		return plain.Count(pat) == packed.Count(pat)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func benchOccBackend(b *testing.B, packed bool, rate int) {
	rng := rand.New(rand.NewSource(134))
	text := randomRanks(rng, 1<<20)
	idx, err := Build(text, Options{OccRate: rate, SARate: 16, PackedBWT: packed})
	if err != nil {
		b.Fatal(err)
	}
	pats := make([][]byte, 64)
	for i := range pats {
		p := rng.Intn(len(text) - 60)
		pats[i] = text[p : p+60]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Count(pats[i%len(pats)])
	}
}

func BenchmarkOccByteRate64(b *testing.B)   { benchOccBackend(b, false, 64) }
func BenchmarkOccPackedRate64(b *testing.B) { benchOccBackend(b, true, 64) }
func BenchmarkOccByteRate4(b *testing.B)    { benchOccBackend(b, false, 4) }
func BenchmarkOccPackedRate4(b *testing.B)  { benchOccBackend(b, true, 4) }
