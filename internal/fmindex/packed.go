package fmindex

import (
	"math/bits"
	"sync/atomic"

	"bwtmatch/internal/alphabet"
)

// packedBWT stores the BWT at 2 bits per character with the sentinel held
// out of band, and answers "how many occurrences of base x in L[from:to)"
// with word-parallel popcounts — the storage §V of the paper describes
// ("we use 2 bits to represent a character in {a,c,g,t}"), profitable at
// sparse rankall rates where the plain byte layout would scan long
// blocks.
type packedBWT struct {
	words   []uint64 // 32 two-bit codes per word
	n       int32    // total characters including the sentinel slot
	sentPos int32    // the sentinel's position; its stored code is 0
}

const codesPerWord = 32

// newPackedBWT packs a rank-encoded BWT (values 0..4, exactly one
// sentinel) across workers goroutines; ranges are word-aligned so each
// output word has a single writer.
func newPackedBWT(bwt []byte, workers int) *packedBWT {
	p := &packedBWT{
		words: make([]uint64, (len(bwt)+codesPerWord-1)/codesPerWord),
		n:     int32(len(bwt)),
	}
	var sent atomic.Int32
	parallelRanges(len(bwt), workers, codesPerWord, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			r := bwt[i]
			var code uint64
			if r == alphabet.Sentinel {
				sent.Store(int32(i)) // exactly one sentinel exists
				code = 0
			} else {
				code = uint64(r - 1)
			}
			p.words[i/codesPerWord] |= code << uint((i%codesPerWord)*2)
		}
	})
	p.sentPos = sent.Load()
	return p
}

// get returns the rank (0 for the sentinel, 1..4 for bases) at position i.
func (p *packedBWT) get(i int32) byte {
	if i == p.sentPos {
		return alphabet.Sentinel
	}
	code := byte(p.words[i/codesPerWord]>>uint((i%codesPerWord)*2)) & 3
	return code + 1
}

// count returns the number of occurrences of base rank x (1..4) in
// positions [from, to).
func (p *packedBWT) count(x byte, from, to int32) int32 {
	if from >= to {
		return 0
	}
	code := uint64(x - 1)
	// Pattern with the target code in every 2-bit slot.
	pat := code * 0x5555555555555555
	var cnt int32
	wFrom, wTo := from/codesPerWord, (to-1)/codesPerWord
	for w := wFrom; w <= wTo; w++ {
		word := p.words[w] ^ pat // 00 pairs where the code matches
		// Collapse each pair to a single bit: 0 where matched.
		miss := (word | word>>1) & 0x5555555555555555
		matched := uint64(0x5555555555555555) &^ miss
		// Mask the in-range slots of this word.
		lo := int32(0)
		if w == wFrom {
			lo = from % codesPerWord
		}
		hi := int32(codesPerWord)
		if w == wTo {
			hi = (to-1)%codesPerWord + 1
		}
		if lo > 0 {
			matched &^= (uint64(1) << uint(lo*2)) - 1
		}
		if hi < codesPerWord {
			matched &= (uint64(1) << uint(hi*2)) - 1
		}
		cnt += int32(bits.OnesCount64(matched))
	}
	// The sentinel slot stores code 0; undo the spurious 'a' match.
	if x == alphabet.A && from <= p.sentPos && p.sentPos < to {
		cnt--
	}
	return cnt
}

// countAll adds the occurrences of every base in positions [from, to)
// to cnt, reading each word exactly once — the rankall form of count();
// the StepAll expansion loop calls this for both interval endpoints, so
// the single pass quarters the memory traffic of four count() calls.
func (p *packedBWT) countAll(from, to int32, cnt *[alphabet.Bases]int32) {
	if from >= to {
		return
	}
	const odd = uint64(0x5555555555555555)
	wFrom, wTo := from/codesPerWord, (to-1)/codesPerWord
	for w := wFrom; w <= wTo; w++ {
		word := p.words[w]
		mask := odd
		if w == wFrom {
			if lo := from % codesPerWord; lo > 0 {
				mask &^= (uint64(1) << uint(lo*2)) - 1
			}
		}
		if w == wTo {
			if hi := (to-1)%codesPerWord + 1; hi < codesPerWord {
				mask &= (uint64(1) << uint(hi*2)) - 1
			}
		}
		b0 := word & odd
		b1 := (word >> 1) & odd
		cnt[0] += int32(bits.OnesCount64(mask &^ (b0 | b1))) // code 00 = a
		cnt[1] += int32(bits.OnesCount64(mask & b0 &^ b1))   // code 01 = c
		cnt[2] += int32(bits.OnesCount64(mask & b1 &^ b0))   // code 10 = g
		cnt[3] += int32(bits.OnesCount64(mask & b0 & b1))    // code 11 = t
	}
	// The sentinel slot stores code 0; undo the spurious 'a' match.
	if from <= p.sentPos && p.sentPos < to {
		cnt[0]--
	}
}

// sizeBytes returns the payload size.
func (p *packedBWT) sizeBytes() int { return len(p.words) * 8 }
