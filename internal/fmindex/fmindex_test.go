package fmindex

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"bwtmatch/internal/alphabet"
)

func mustEncode(t testing.TB, s string) []byte {
	t.Helper()
	ranks, err := alphabet.Encode([]byte(s))
	if err != nil {
		t.Fatal(err)
	}
	return ranks
}

func randomRanks(rng *rand.Rand, n int) []byte {
	t := make([]byte, n)
	for i := range t {
		t[i] = byte(1 + rng.Intn(4))
	}
	return t
}

// naiveCount counts exact occurrences of pattern in text by scanning.
func naiveCount(text, pattern []byte) int {
	if len(pattern) == 0 {
		return len(text) + 1
	}
	c := 0
	for i := 0; i+len(pattern) <= len(text); i++ {
		if bytes.Equal(text[i:i+len(pattern)], pattern) {
			c++
		}
	}
	return c
}

func naivePositions(text, pattern []byte) []int32 {
	var out []int32
	for i := 0; i+len(pattern) <= len(text); i++ {
		if bytes.Equal(text[i:i+len(pattern)], pattern) {
			out = append(out, int32(i))
		}
	}
	return out
}

func TestBuildRejectsSentinel(t *testing.T) {
	if _, err := Build([]byte{alphabet.A, alphabet.Sentinel}, DefaultOptions()); err == nil {
		t.Fatal("Build accepted sentinel in text")
	}
}

func TestBuildRejectsBadOptions(t *testing.T) {
	if _, err := Build([]byte{alphabet.A}, Options{OccRate: -1, SARate: 2}); err == nil {
		t.Fatal("Build accepted negative OccRate")
	}
}

func TestPaperBWTExample(t *testing.T) {
	// Paper §III-A: s = acagaca$ has BWT(s) = acg$caaa.
	idx, err := Build(mustEncode(t, "acagaca"), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	got := alphabet.Decode(idx.BWT())
	if want := []byte("acg$caaa"); !bytes.Equal(got, want) {
		t.Fatalf("BWT(acagaca$) = %q, want %q", got, want)
	}
}

func TestPaperSearchExample(t *testing.T) {
	// Paper §III-A: searching r = aca in s = acagaca$ finds 2 occurrences.
	idx, err := Build(mustEncode(t, "acagaca"), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	iv := idx.Search(mustEncode(t, "aca"))
	if iv.Len() != 2 {
		t.Fatalf("Count(aca) = %d, want 2", iv.Len())
	}
	pos := idx.Locate(iv, nil)
	sort.Slice(pos, func(i, j int) bool { return pos[i] < pos[j] })
	if len(pos) != 2 || pos[0] != 0 || pos[1] != 4 {
		t.Fatalf("Locate = %v, want [0 4]", pos)
	}
}

func TestCountAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for trial := 0; trial < 60; trial++ {
		text := randomRanks(rng, 1+rng.Intn(400))
		idx, err := Build(text, Options{OccRate: 1 + rng.Intn(8), SARate: 1 + rng.Intn(8)})
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < 30; q++ {
			pat := randomRanks(rng, 1+rng.Intn(8))
			if got, want := idx.Count(pat), naiveCount(text, pat); got != want {
				t.Fatalf("Count(%v in %v) = %d, want %d", pat, text, got, want)
			}
		}
	}
}

func TestLocateAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 40; trial++ {
		text := randomRanks(rng, 1+rng.Intn(300))
		idx, err := Build(text, Options{OccRate: 4, SARate: 1 + rng.Intn(10)})
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < 20; q++ {
			pat := randomRanks(rng, 1+rng.Intn(6))
			got := idx.Locate(idx.Search(pat), nil)
			sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
			want := naivePositions(text, pat)
			if len(got) != len(want) {
				t.Fatalf("Locate count %d want %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("Locate = %v, want %v", got, want)
				}
			}
		}
	}
}

func TestStepAllMatchesStep(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	text := randomRanks(rng, 2000)
	idx, err := Build(text, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var all [alphabet.Bases]Interval
	for q := 0; q < 500; q++ {
		lo := int32(rng.Intn(idx.N() + 1))
		hi := lo + int32(rng.Intn(idx.N()+1-int(lo)))
		iv := Interval{lo, hi + 1}
		idx.StepAll(iv, &all)
		for x := byte(1); x <= alphabet.T; x++ {
			if got, want := all[x-1], idx.Step(x, iv); got != want {
				t.Fatalf("StepAll[%d] = %v, Step = %v", x, got, want)
			}
		}
	}
}

func TestSearchEmptyPattern(t *testing.T) {
	idx, _ := Build(mustEncode(t, "acgt"), DefaultOptions())
	if iv := idx.Search(nil); iv != idx.Full() {
		t.Errorf("Search(empty) = %v, want full interval", iv)
	}
}

func TestSearchAbsentPattern(t *testing.T) {
	idx, _ := Build(mustEncode(t, "aaaa"), DefaultOptions())
	if iv := idx.Search(mustEncode(t, "ttt")); !iv.Empty() {
		t.Errorf("Search(ttt) = %v, want empty", iv)
	}
	// Stepping from an empty interval must stay empty.
	if iv := idx.Step(alphabet.A, Interval{3, 3}); !iv.Empty() {
		t.Errorf("Step from empty = %v", iv)
	}
}

func TestOccRateVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	text := randomRanks(rng, 1000)
	base, _ := Build(text, Options{OccRate: 1, SARate: 4})
	for _, rate := range []int{2, 4, 16, 64, 128} {
		idx, err := Build(text, Options{OccRate: rate, SARate: 4})
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < 50; q++ {
			pat := randomRanks(rng, 1+rng.Intn(10))
			if idx.Count(pat) != base.Count(pat) {
				t.Fatalf("OccRate=%d disagrees with rate 1", rate)
			}
		}
		if idx.SizeBytes() >= base.SizeBytes() {
			t.Errorf("OccRate=%d not smaller than rate 1 (%d vs %d)",
				rate, idx.SizeBytes(), base.SizeBytes())
		}
	}
}

func TestQuickCountInvariant(t *testing.T) {
	f := func(seed int64, n8, m8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		text := randomRanks(rng, 1+int(n8))
		pat := randomRanks(rng, 1+int(m8)%10)
		idx, err := Build(text, DefaultOptions())
		if err != nil {
			return false
		}
		return idx.Count(pat) == naiveCount(text, pat)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRankCorrespondence(t *testing.T) {
	// Paper property (1): rk_F(e) = rk_L(e) for every element. Verified by
	// checking that LF-walking from row 0 reproduces the reversed text.
	text := mustEncode(t, "acagaca")
	idx, _ := Build(text, DefaultOptions())
	row := int32(0) // row of the sentinel-prefixed rotation
	rebuilt := make([]byte, 0, idx.N())
	for i := 0; i < idx.N(); i++ {
		rebuilt = append(rebuilt, idx.bwt[row])
		row = idx.lfStep(row)
	}
	alphabet.Reverse(rebuilt)
	if !bytes.Equal(rebuilt, text) {
		t.Fatalf("LF walk rebuilt %v, want %v", rebuilt, text)
	}
}

func BenchmarkBackwardSearch(b *testing.B) {
	rng := rand.New(rand.NewSource(24))
	text := randomRanks(rng, 1<<20)
	idx, _ := Build(text, DefaultOptions())
	pats := make([][]byte, 64)
	for i := range pats {
		p := rng.Intn(len(text) - 100)
		pats[i] = text[p : p+100]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Count(pats[i%len(pats)])
	}
}
