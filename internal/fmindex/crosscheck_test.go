package fmindex

import (
	"math/rand"
	"testing"

	"bwtmatch/internal/alphabet"
	"bwtmatch/internal/wavelet"
)

// TestOccAgainstWaveletTree cross-validates the DNA-specialized rankall
// tables (all three layouts) against the general-purpose wavelet tree —
// two independent rank implementations must agree on every position.
func TestOccAgainstWaveletTree(t *testing.T) {
	rng := rand.New(rand.NewSource(261))
	text := randomRanks(rng, 1500)
	variants := []Options{
		{OccRate: 4, SARate: 8},
		{OccRate: 64, SARate: 8, PackedBWT: true},
		{SARate: 8, TwoLevelOcc: true},
	}
	for _, opts := range variants {
		idx, err := Build(text, opts)
		if err != nil {
			t.Fatal(err)
		}
		wt, err := wavelet.New(idx.BWT(), alphabet.Size)
		if err != nil {
			t.Fatal(err)
		}
		for p := int32(0); p <= int32(idx.N())+1; p += 7 {
			for x := byte(alphabet.A); x <= alphabet.T; x++ {
				if got, want := idx.occAt(x, p), int32(wt.Rank(x, int(p))); got != want {
					t.Fatalf("opts %+v: occAt(%d,%d) = %d, wavelet rank = %d",
						opts, x, p, got, want)
				}
			}
		}
	}
}
