package fmindex

import (
	"math/rand"
	"testing"

	"bwtmatch/internal/alphabet"
)

func TestStepSingletonAgainstStepAll(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	text := randomRanks(rng, 3000)
	idx, err := Build(text, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var kids [alphabet.Bases]Interval
	for row := int32(0); row <= int32(idx.N()); row++ {
		iv := Interval{row, row + 1}
		x, child, ok := idx.StepSingleton(iv)
		idx.StepAll(iv, &kids)
		nonEmpty := 0
		for y := byte(1); y <= alphabet.T; y++ {
			if !kids[y-1].Empty() {
				nonEmpty++
				if !ok {
					t.Fatalf("row %d: StepSingleton said dead, StepAll has child %d", row, y)
				}
				if x != y || child != kids[y-1] {
					t.Fatalf("row %d: StepSingleton (%d,%v) != StepAll (%d,%v)",
						row, x, child, y, kids[y-1])
				}
			}
		}
		if nonEmpty == 0 && ok {
			t.Fatalf("row %d: StepSingleton found child where StepAll has none", row)
		}
		if nonEmpty > 1 {
			t.Fatalf("row %d: singleton interval with %d continuations", row, nonEmpty)
		}
	}
}

func TestStepSingletonChainRebuildsReversedText(t *testing.T) {
	text := mustEncode(t, "acagaca")
	idx, _ := Build(text, DefaultOptions())
	// Starting from the row of the full text's suffix (located via an
	// exact search of the whole text) and LF-stepping with StepSingleton
	// must spell the text right-to-left.
	iv := idx.Search(text)
	if iv.Len() != 1 {
		t.Fatalf("full-text interval %v", iv)
	}
	// Walk forward: prepending characters runs past the text start, so
	// instead check a mid suffix: interval of "aca" suffix occurrences.
	iv = idx.Search(mustEncode(t, "gaca"))
	if iv.Len() != 1 {
		t.Fatalf("gaca interval %v", iv)
	}
	x, _, ok := idx.StepSingleton(iv)
	if !ok || x != alphabet.A {
		t.Fatalf("StepSingleton(gaca) = %d,%v; want preceding 'a'", x, ok)
	}
}
