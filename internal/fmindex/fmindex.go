// Package fmindex implements the BWT-array index of the paper's §III: the
// Burrows–Wheeler transform of a (rank-encoded) text, the first-column C
// array, sampled "rankall" occurrence tables, the backward-search step
// search(x, L⟨...⟩), and occurrence locating via a sampled suffix array.
//
// The text handed to Build must already be rank-encoded over
// internal/alphabet ($=0 < a < c < g < t); Build appends the sentinel
// itself. Following the paper's storage scheme, the BWT is stored 3 bits
// per character (2-bit base codes plus the sentinel handled out of band)
// and one rankall value per character is checkpointed every OccRate
// elements of L.
package fmindex

import (
	"errors"
	"fmt"
	"math/bits"
	"time"

	"bwtmatch/internal/alphabet"
	"bwtmatch/internal/bitvec"
	"bwtmatch/internal/obs"
	"bwtmatch/internal/relative"
	"bwtmatch/internal/suffixarray"
)

// Options control the space/time trade-offs of the index.
type Options struct {
	// OccRate is the rankall checkpoint spacing: one cumulative count per
	// character is stored every OccRate positions of L; ranks in between
	// are completed by scanning at most OccRate-1 characters. The paper
	// stores "4 rankall values for every 4 elements" in its experiments
	// (rate 4) and discusses sparser sampling as a space saving (§III-A).
	OccRate int
	// SARate is the suffix-array sampling rate used by Locate: every
	// SARate-th text position is kept. Smaller is faster, larger smaller.
	SARate int
	// PackedBWT stores the BWT at 2 bits per character and counts
	// occurrences with word-parallel popcounts instead of byte scans.
	// It cuts the BWT payload 4x and is the faster layout at sparse
	// OccRate settings (>= 32), where the scan between checkpoints is
	// long.
	PackedBWT bool
	// TwoLevelOcc replaces the flat rankall table (the paper's layout,
	// 32 bits per character per OccRate positions) with a hierarchical
	// directory: absolute 32-bit counts every 256 positions plus
	// relative 8-bit counts every 16 — ~2.5 bits/base instead of 32 at
	// OccRate 4, with scans of at most 15 characters. OccRate is ignored
	// when set.
	TwoLevelOcc bool
	// Workers is the goroutine count for every parallelizable phase of
	// Build: the suffix array itself (pDC3, suffixarray.BuildParallel,
	// bit-identical to the serial SA-IS build) and everything after it
	// (BWT extraction, occ checkpoints, SA sampling, packing). 0 or 1
	// builds serially with SA-IS. Workers affects construction only; it
	// is not serialized with the index.
	Workers int
	// Phases, when non-nil, accumulates the wall-clock breakdown of the
	// construction phases (DESIGN.md §12): a serial sequence of builds
	// (the streaming shard builder) sums into one sink. Not
	// synchronized — do not share one sink across concurrent builds.
	// Construction-only, never serialized.
	Phases *BuildPhases
}

// BuildPhases is the wall-clock breakdown of one Build call. SANS is
// the suffix-array construction, BWTNS the L-column extraction plus the
// C array, OccNS the rankall checkpoint tables, PackNS the 2-bit BWT
// packing plus the Locate SA samples. The sum can undershoot the total
// build time slightly (allocation and validation sit between phases).
type BuildPhases struct {
	SANS   int64
	BWTNS  int64
	OccNS  int64
	PackNS int64
}

// DefaultOptions mirror the paper's experimental configuration.
func DefaultOptions() Options { return Options{OccRate: 4, SARate: 16} }

func (o *Options) normalize() error {
	if o.OccRate == 0 {
		o.OccRate = 4
	}
	if o.SARate == 0 {
		o.SARate = 16
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
	if o.OccRate < 1 || o.SARate < 1 {
		return fmt.Errorf("fmindex: invalid options %+v", *o)
	}
	return nil
}

// Interval is a half-open interval [Lo, Hi) of rows of the Burrows–Wheeler
// matrix (equivalently of the suffix array of text+$). It is the absolute
// form of the paper's pairs ⟨x, [α, β]⟩: the pair's character x and ranks
// α..β are recovered by which C-bucket the interval lies in.
type Interval struct {
	Lo, Hi int32
}

// Empty reports whether the interval contains no rows.
func (iv Interval) Empty() bool { return iv.Lo >= iv.Hi }

// Len returns the number of rows.
func (iv Interval) Len() int { return int(iv.Hi - iv.Lo) }

// ErrInvalidText reports a text containing the sentinel rank.
var ErrInvalidText = errors.New("fmindex: text must not contain the sentinel")

// Index is a BWT-array index over one text.
type Index struct {
	opts Options
	n    int // text length, excluding sentinel

	bwt    []byte // BWT of text+$, rank-encoded; nil when packed is used
	packed *packedBWT

	c [alphabet.Size + 1]int32 // c[x] = #chars with rank < x in text+$

	occ      []int32      // flat occ checkpoints: occ[(p/OccRate)*Bases + (x-1)]
	occ2     *twoLevelOcc // hierarchical alternative; occ is nil when set
	occShift int32        // log2(OccRate) when it is a power of two, else -1
	sentPos  int32        // position of the sentinel within bwt

	saMarked  *bitvec.Rank // rows whose SA value is sampled
	saSamples []int32      // SA values of marked rows, in row order

	// Relative layout (relative.go): the BWT and occ queries are bridged
	// to relBase through rel instead of local bwt/packed/occ payloads,
	// which are all nil. SA samples and the C array stay tenant-local.
	rel     *relative.Delta
	relBase *Index
}

// Build constructs the index over a rank-encoded text (values 1..4).
// With opts.Workers > 1 every phase after the suffix array runs across
// that many goroutines over disjoint ranges (see parallel.go).
func Build(text []byte, opts Options) (*Index, error) {
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	workers := opts.Workers
	if err := validateText(text, workers); err != nil {
		return nil, err
	}
	n := len(text)
	idx := &Index{opts: opts, n: n}
	idx.deriveOccShift()

	// Suffix array of text+$; the sentinel suffix sorts first, so SA row 0
	// is position n and rows 1..n are Build(text) shifted. With Workers
	// > 1 the array comes from pDC3 (suffixarray.BuildParallel), which
	// is bit-identical to the serial SA-IS build — the suffix array of a
	// text is unique, so the choice of algorithm never leaks into the
	// index bytes.
	var ph BuildPhases
	phaseStart := time.Now()
	sa := make([]int32, n+1)
	sa[0] = int32(n)
	if workers > 1 {
		copy(sa[1:], suffixarray.BuildParallel(text, workers))
	} else {
		copy(sa[1:], suffixarray.Build(text))
	}
	phaseStart = markPhase(&ph.SANS, phaseStart)

	// BWT: L[i] = text[sa[i]-1], or $ when sa[i] == 0 (paper eq. (3)).
	idx.bwt = make([]byte, n+1)
	idx.sentPos = extractBWT(idx.bwt, sa, text, workers)

	// C array over text+$.
	counts := countRanks(text, workers)
	var sum int32
	for x := 0; x < alphabet.Size; x++ {
		idx.c[x] = sum
		sum += counts[x]
	}
	idx.c[alphabet.Size] = sum
	phaseStart = markPhase(&ph.BWTNS, phaseStart)

	if opts.PackedBWT {
		idx.packed = newPackedBWT(idx.bwt, workers)
	}
	phaseStart = markPhase(&ph.PackNS, phaseStart)

	// Rankall checkpoints: the paper's flat layout, or the hierarchical
	// two-level directory.
	if opts.TwoLevelOcc {
		if err := validateGeometry(); err != nil {
			return nil, err
		}
		idx.occ2 = buildTwoLevel(idx.bwt, workers)
	} else {
		idx.occ = buildFlatOcc(idx.bwt, opts.OccRate, workers)
	}
	phaseStart = markPhase(&ph.OccNS, phaseStart)

	// SA samples for Locate: mark rows whose SA value is a multiple of
	// SARate (plus position n so every LF walk terminates).
	idx.saMarked, idx.saSamples = buildSASamples(sa, n, opts.SARate, workers)
	markPhase(&ph.PackNS, phaseStart)
	if idx.packed != nil {
		idx.bwt = nil // the packed layout is authoritative
	}
	if opts.Phases != nil {
		opts.Phases.SANS += ph.SANS
		opts.Phases.BWTNS += ph.BWTNS
		opts.Phases.OccNS += ph.OccNS
		opts.Phases.PackNS += ph.PackNS
	}
	return idx, nil
}

// markPhase accumulates the time elapsed since start into field and
// returns the next phase's start. Timing is always collected — a
// handful of time.Now calls against a millisecond-scale build — and
// copied out only when the caller asked for the breakdown.
func markPhase(field *int64, start time.Time) time.Time {
	now := time.Now()
	*field += now.Sub(start).Nanoseconds()
	return now
}

// deriveOccShift caches log2(OccRate) so the rank hot paths can replace
// the checkpoint division — by a rate known only at runtime, which the
// compiler cannot strength-reduce — with a shift. Called from Build and
// the deserializer (anywhere opts is assigned).
func (idx *Index) deriveOccShift() {
	rate := idx.opts.OccRate
	if rate > 0 && rate&(rate-1) == 0 {
		idx.occShift = int32(bits.TrailingZeros32(uint32(rate)))
	} else {
		idx.occShift = -1
	}
}

// bwtAt reads L[i] regardless of the storage layout.
func (idx *Index) bwtAt(i int32) byte {
	if idx.rel != nil {
		return idx.relBWTAt(i)
	}
	if idx.packed != nil {
		return idx.packed.get(i)
	}
	return idx.bwt[i]
}

// N returns the length of the indexed text (excluding the sentinel).
func (idx *Index) N() int { return idx.n }

// Options returns the build options.
func (idx *Index) Options() Options { return idx.opts }

// Full returns the interval of all rows (the paper's virtual root
// ⟨-, [1, n+1]⟩).
func (idx *Index) Full() Interval { return Interval{0, int32(idx.n) + 1} }

// occAt returns the number of occurrences of base rank x (1..4) in
// bwt[0:p].
func (idx *Index) occAt(x byte, p int32) int32 {
	if idx.rel != nil {
		return idx.relOccAt(x, p)
	}
	var cnt, from int32
	if idx.occ2 != nil {
		cnt, from = idx.occ2.base(x, p)
	} else {
		var chk int32
		if s := idx.occShift; s >= 0 {
			chk = p >> s
			from = chk << s
		} else {
			chk = p / int32(idx.opts.OccRate)
			from = chk * int32(idx.opts.OccRate)
		}
		cnt = idx.occ[chk*alphabet.Bases+int32(x-1)]
	}
	if idx.packed != nil {
		return cnt + idx.packed.count(x, from, p)
	}
	// Ranging over the subslice hoists the bounds checks out of the
	// scan, which runs up to OccRate-1 iterations on every rank query.
	for _, ch := range idx.bwt[from:p] {
		if ch == x {
			cnt++
		}
	}
	return cnt
}

// Step performs one backward-search step: given the interval of rows whose
// suffixes start with some string w, it returns the interval of rows whose
// suffixes start with x·w. It is the paper's search(x, L⟨...⟩) in absolute
// interval form. An empty result means x·w does not occur.
func (idx *Index) Step(x byte, iv Interval) Interval {
	lo := idx.c[x] + idx.occAt(x, iv.Lo)
	hi := idx.c[x] + idx.occAt(x, iv.Hi)
	return Interval{lo, hi}
}

// StepAll performs the backward-search step for all four bases at once,
// filling out[0..3] for ranks A..T. It shares the two checkpoint lookups,
// which is what makes the S-tree expansion loop ("for each y within L⟨v⟩",
// Algorithm A line 16) cheap.
func (idx *Index) StepAll(iv Interval, out *[alphabet.Bases]Interval) {
	var lo, hi [alphabet.Bases]int32
	idx.occAll(iv.Lo, &lo)
	idx.occAll(iv.Hi, &hi)
	for x := 0; x < alphabet.Bases; x++ {
		c := idx.c[x+1]
		out[x] = Interval{c + lo[x], c + hi[x]}
	}
}

// StepSingleton is the backward-search step specialized for single-row
// intervals: a one-row interval has exactly one non-empty continuation,
// the character L[lo], read directly from the BWT. It returns that
// character and the child interval; ok is false when the row's
// continuation is the sentinel (the text start was reached).
func (idx *Index) StepSingleton(iv Interval) (x byte, child Interval, ok bool) {
	x = idx.bwtAt(iv.Lo)
	if x == alphabet.Sentinel {
		return 0, Interval{}, false
	}
	lo := idx.c[x] + idx.occAt(x, iv.Lo)
	return x, Interval{lo, lo + 1}, true
}

// occAll fills cnt with occurrences of each base in bwt[0:p].
func (idx *Index) occAll(p int32, cnt *[alphabet.Bases]int32) {
	if idx.rel != nil {
		idx.relOccAll(p, cnt)
		return
	}
	var from int32
	if idx.occ2 != nil {
		from = idx.occ2.baseAll(p, cnt)
	} else {
		var chk int32
		if s := idx.occShift; s >= 0 {
			chk = p >> s
			from = chk << s
		} else {
			chk = p / int32(idx.opts.OccRate)
			from = chk * int32(idx.opts.OccRate)
		}
		// Four explicit loads: a 16-byte copy() here compiles to a
		// memmove call, which profiles at ~10% of the whole search.
		row := idx.occ[chk*alphabet.Bases : chk*alphabet.Bases+alphabet.Bases]
		cnt[0], cnt[1], cnt[2], cnt[3] = row[0], row[1], row[2], row[3]
	}
	if idx.packed != nil {
		idx.packed.countAll(from, p, cnt)
		return
	}
	for _, ch := range idx.bwt[from:p] {
		if ch != alphabet.Sentinel {
			cnt[ch-1]++
		}
	}
}

// Search runs a full backward search for the rank-encoded pattern (matching
// it exactly) and returns the interval of rows prefixed by it. The pattern
// is processed from its last character to its first, per §III-A.
func (idx *Index) Search(pattern []byte) Interval {
	iv := idx.Full()
	for i := len(pattern) - 1; i >= 0 && !iv.Empty(); i-- {
		iv = idx.Step(pattern[i], iv)
	}
	return iv
}

// Count returns the number of exact occurrences of pattern.
func (idx *Index) Count(pattern []byte) int { return idx.Search(pattern).Len() }

// MatchLen extends the empty match by the characters of p in order (one
// idx.Step per character) and returns how many of them match before the
// interval empties — the length of the longest prefix of p that occurs
// in the text — plus the number of rank steps consumed (equal to what
// the equivalent Step loop would report). It is the φ-bound /
// matching-statistics primitive and the hottest loop of the pruned
// searches, so the flat byte occ layout gets a fused implementation:
// the interval stays in registers across iterations, the first step
// from Full is answered from the C array alone (occ of a full prefix
// is a bucket width), and one-row intervals are resolved by a direct
// BWT comparison, which turns the common "unique substring, next
// character mismatches" exit into a single byte load. Other rank
// backends (two-level, packed) use the generic loop.
func (idx *Index) MatchLen(p []byte) (matched, steps int) {
	if len(p) == 0 {
		return 0, 0
	}
	if idx.rel != nil || idx.occ2 != nil || idx.packed != nil || idx.occShift < 0 {
		iv := idx.Full()
		for q := 0; q < len(p); q++ {
			iv = idx.Step(p[q], iv)
			steps++
			if iv.Empty() {
				return q, steps
			}
		}
		return len(p), steps
	}
	shift := idx.occShift
	bwt, occ := idx.bwt, idx.occ
	x := p[0]
	lo, hi := idx.c[x], idx.c[x+1]
	steps++
	if lo >= hi {
		return 0, steps
	}
	for q := 1; q < len(p); q++ {
		x = p[q]
		steps++
		if hi == lo+1 {
			if bwt[lo] != x {
				return q, steps
			}
			chk := lo >> shift
			cnt := occ[chk*alphabet.Bases+int32(x-1)]
			for _, ch := range bwt[chk<<shift : lo] {
				if ch == x {
					cnt++
				}
			}
			lo = idx.c[x] + cnt
			hi = lo + 1
			continue
		}
		xi := int32(x - 1)
		chk := lo >> shift
		cl := occ[chk*alphabet.Bases+xi]
		for _, ch := range bwt[chk<<shift : lo] {
			if ch == x {
				cl++
			}
		}
		chk = hi >> shift
		chi := occ[chk*alphabet.Bases+xi]
		for _, ch := range bwt[chk<<shift : hi] {
			if ch == x {
				chi++
			}
		}
		lo, hi = idx.c[x]+cl, idx.c[x]+chi
		if lo >= hi {
			return q, steps
		}
	}
	return len(p), steps
}

// SearchTraced is Search with telemetry: when tr is non-nil every
// backward-extension step emits one EvStep event carrying the pattern
// position consumed and the width of the resulting interval. A nil tr
// takes the plain Search path.
func (idx *Index) SearchTraced(pattern []byte, tr obs.Tracer) Interval {
	if tr == nil {
		return idx.Search(pattern)
	}
	iv := idx.Full()
	for i := len(pattern) - 1; i >= 0 && !iv.Empty(); i-- {
		iv = idx.Step(pattern[i], iv)
		tr.Emit(obs.EvStep,
			obs.Arg{Key: "pos", Val: int64(i)},
			obs.Arg{Key: "rows", Val: int64(iv.Len())})
	}
	return iv
}

// lfStep is the LF-mapping: the row of the suffix obtained by prepending
// bwt[row] to the suffix of row.
func (idx *Index) lfStep(row int32) int32 {
	x := idx.bwtAt(row)
	if x == alphabet.Sentinel {
		return 0
	}
	return idx.c[x] + idx.occAt(x, row)
}

// Locate resolves every row of iv to a text position (the start of the
// suffix in the indexed text), using the sampled suffix array: walk LF
// until a marked row is hit. Results are appended to dst.
func (idx *Index) Locate(iv Interval, dst []int32) []int32 {
	for row := iv.Lo; row < iv.Hi; row++ {
		r, steps := row, int32(0)
		for !idx.saMarked.Get(int(r)) {
			r = idx.lfStep(r)
			steps++
		}
		dst = append(dst, idx.saSamples[idx.saMarked.Rank1(int(r))]+steps)
	}
	return dst
}

// LocateTraced is Locate with telemetry: when tr is non-nil it emits one
// EvLocate event per call carrying the number of rows resolved and the
// total LF-mapping steps walked to reach sampled rows (the suffix-array
// sampling cost the SARate option trades space against). A nil tr takes
// the plain Locate path.
func (idx *Index) LocateTraced(iv Interval, dst []int32, tr obs.Tracer) []int32 {
	if tr == nil {
		return idx.Locate(iv, dst)
	}
	var lf int64
	for row := iv.Lo; row < iv.Hi; row++ {
		r, steps := row, int32(0)
		for !idx.saMarked.Get(int(r)) {
			r = idx.lfStep(r)
			steps++
		}
		lf += int64(steps)
		dst = append(dst, idx.saSamples[idx.saMarked.Rank1(int(r))]+steps)
	}
	tr.Emit(obs.EvLocate,
		obs.Arg{Key: "rows", Val: int64(iv.Len())},
		obs.Arg{Key: "lf_steps", Val: lf})
	return dst
}

// BWT returns the BWT array (rank-encoded, including the sentinel). For
// the packed layout a fresh copy is materialized; otherwise the caller
// must not modify the returned slice.
func (idx *Index) BWT() []byte {
	if idx.rel != nil {
		return idx.relBWT()
	}
	if idx.packed == nil {
		return idx.bwt
	}
	out := make([]byte, idx.n+1)
	for i := range out {
		out[i] = idx.packed.get(int32(i))
	}
	return out
}

// SizeBytes estimates the index payload: the BWT (3 bits/char in the
// paper's accounting for the byte layout, the true 2-bit payload for the
// packed layout) plus occ checkpoints plus SA samples.
func (idx *Index) SizeBytes() int {
	if idx.rel != nil {
		// Tenant-resident bytes only: the delta plus the tenant's own
		// Locate samples. The shared base is accounted once, elsewhere.
		return idx.rel.SizeBytes() + len(idx.saSamples)*4 + idx.saMarked.Len()/8
	}
	bwtBytes := (idx.n+1)*3/8 + 1
	if idx.packed != nil {
		bwtBytes = idx.packed.sizeBytes()
	}
	occBytes := len(idx.occ) * 4
	if idx.occ2 != nil {
		occBytes = idx.occ2.sizeBytes()
	}
	return bwtBytes + occBytes + len(idx.saSamples)*4 + idx.saMarked.Len()/8
}
