package fmindex

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestValidateGeometry(t *testing.T) {
	if err := validateGeometry(); err != nil {
		t.Fatal(err)
	}
}

func TestTwoLevelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(241))
	for trial := 0; trial < 20; trial++ {
		text := randomRanks(rng, 50+rng.Intn(2000))
		flat, err := Build(text, Options{OccRate: 1, SARate: 4})
		if err != nil {
			t.Fatal(err)
		}
		for _, packed := range []bool{false, true} {
			two, err := Build(text, Options{SARate: 4, TwoLevelOcc: true, PackedBWT: packed})
			if err != nil {
				t.Fatal(err)
			}
			for q := 0; q < 50; q++ {
				pat := randomRanks(rng, 1+rng.Intn(12))
				if two.Count(pat) != flat.Count(pat) {
					t.Fatalf("two-level (packed=%v) Count differs for %v", packed, pat)
				}
			}
			a := flat.Locate(flat.Search(text[:5]), nil)
			b := two.Locate(two.Search(text[:5]), nil)
			if len(a) != len(b) {
				t.Fatalf("Locate counts differ")
			}
			if two.SizeBytes() >= flat.SizeBytes() {
				t.Errorf("two-level not smaller: %d vs %d", two.SizeBytes(), flat.SizeBytes())
			}
		}
	}
}

func TestTwoLevelOccAtExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(242))
	text := randomRanks(rng, 700)
	flat, _ := Build(text, Options{OccRate: 1, SARate: 4})
	two, _ := Build(text, Options{SARate: 4, TwoLevelOcc: true})
	for p := int32(0); p <= int32(two.N())+1; p++ {
		for x := byte(1); x <= 4; x++ {
			if got, want := two.occAt(x, p), flat.occAt(x, p); got != want {
				t.Fatalf("occAt(%d,%d) = %d, want %d", x, p, got, want)
			}
		}
	}
}

func TestTwoLevelSerializeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(243))
	for _, packed := range []bool{false, true} {
		text := randomRanks(rng, 900)
		idx, err := Build(text, Options{SARate: 8, TwoLevelOcc: true, PackedBWT: packed})
		if err != nil {
			t.Fatal(err)
		}
		got := roundTrip(t, idx)
		if !got.Options().TwoLevelOcc {
			t.Fatal("TwoLevelOcc flag lost")
		}
		if !bytes.Equal(got.BWT(), idx.BWT()) {
			t.Fatal("BWT differs")
		}
		for q := 0; q < 40; q++ {
			pat := randomRanks(rng, 1+rng.Intn(10))
			if got.Count(pat) != idx.Count(pat) {
				t.Fatal("counts differ after round trip")
			}
		}
	}
}

func TestTwoLevelQuick(t *testing.T) {
	f := func(seed int64, n16 uint16, m8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		text := randomRanks(rng, 1+int(n16)%1500)
		pat := randomRanks(rng, 1+int(m8)%10)
		flat, err1 := Build(text, Options{OccRate: 4, SARate: 4})
		two, err2 := Build(text, Options{SARate: 4, TwoLevelOcc: true})
		if err1 != nil || err2 != nil {
			return false
		}
		return flat.Count(pat) == two.Count(pat)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkOccTwoLevel(b *testing.B) {
	rng := rand.New(rand.NewSource(244))
	text := randomRanks(rng, 1<<20)
	idx, err := Build(text, Options{SARate: 16, TwoLevelOcc: true, PackedBWT: true})
	if err != nil {
		b.Fatal(err)
	}
	pats := make([][]byte, 64)
	for i := range pats {
		p := rng.Intn(len(text) - 60)
		pats[i] = text[p : p+60]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Count(pats[i%len(pats)])
	}
}
