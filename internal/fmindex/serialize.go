package fmindex

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"bwtmatch/internal/bitvec"
)

// Serialization of the index: a little-endian binary format with a magic
// header, so a genome is indexed once and reloaded in milliseconds
// (§III-B: "once it is created, it can be repeatedly used").
//
// Layout: magic, version, options, n, sentPos, BWT payload (byte or
// packed), C array, occ checkpoints, SA-mark bitvector, SA samples.

const (
	indexMagic   = uint32(0xB3711D01) // "BWT index" v1
	layoutByte   = uint8(0)
	layoutPacked = uint8(1)
)

// ErrFormat reports an unreadable index stream.
var ErrFormat = errors.New("fmindex: bad index format")

// WriteTo serializes the index.
func (idx *Index) WriteTo(w io.Writer) (int64, error) {
	cw := &countWriter{w: bufio.NewWriter(w)}
	put := func(v any) error { return binary.Write(cw, binary.LittleEndian, v) }

	layout := layoutByte
	if idx.packed != nil {
		layout = layoutPacked
	}
	header := []any{
		indexMagic,
		uint32(idx.opts.OccRate),
		uint32(idx.opts.SARate),
		layout,
		uint64(idx.n),
		idx.sentPos,
	}
	for _, h := range header {
		if err := put(h); err != nil {
			return cw.n, err
		}
	}
	if idx.packed != nil {
		if err := put(idx.packed.sentPos); err != nil {
			return cw.n, err
		}
		if err := put(uint64(len(idx.packed.words))); err != nil {
			return cw.n, err
		}
		if err := put(idx.packed.words); err != nil {
			return cw.n, err
		}
	} else {
		if _, err := cw.Write(idx.bwt); err != nil {
			return cw.n, err
		}
	}
	if err := put(idx.c[:]); err != nil {
		return cw.n, err
	}
	if idx.occ2 != nil {
		if err := firstErr(
			put(uint8(1)),
			put(uint64(len(idx.occ2.super))),
			put(idx.occ2.super),
			put(uint64(len(idx.occ2.block))),
			put(idx.occ2.block),
		); err != nil {
			return cw.n, err
		}
	} else {
		if err := firstErr(
			put(uint8(0)),
			put(uint64(len(idx.occ))),
			put(idx.occ),
		); err != nil {
			return cw.n, err
		}
	}
	markBits := markedBits(idx.saMarked)
	if err := put(uint64(len(markBits))); err != nil {
		return cw.n, err
	}
	if err := put(markBits); err != nil {
		return cw.n, err
	}
	if err := put(uint64(len(idx.saSamples))); err != nil {
		return cw.n, err
	}
	if err := put(idx.saSamples); err != nil {
		return cw.n, err
	}
	return cw.n, cw.w.(*bufio.Writer).Flush()
}

// ReadIndex deserializes an index written by WriteTo.
func ReadIndex(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	get := func(v any) error { return binary.Read(br, binary.LittleEndian, v) }

	var magic uint32
	if err := get(&magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	if magic != indexMagic {
		return nil, fmt.Errorf("%w: magic %#x", ErrFormat, magic)
	}
	var occRate, saRate uint32
	var layout uint8
	var n uint64
	idx := &Index{}
	if err := firstErr(
		get(&occRate), get(&saRate), get(&layout), get(&n), get(&idx.sentPos),
	); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrFormat, err)
	}
	idx.opts = Options{OccRate: int(occRate), SARate: int(saRate), PackedBWT: layout == layoutPacked}
	if err := idx.opts.normalize(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	idx.n = int(n)
	const maxLen = 1 << 34 // sanity cap against corrupt headers
	if n > maxLen {
		return nil, fmt.Errorf("%w: n %d", ErrFormat, n)
	}

	switch layout {
	case layoutPacked:
		p := &packedBWT{n: int32(n) + 1}
		var words uint64
		if err := firstErr(get(&p.sentPos), get(&words)); err != nil {
			return nil, fmt.Errorf("%w: packed header: %v", ErrFormat, err)
		}
		if words > maxLen {
			return nil, fmt.Errorf("%w: words %d", ErrFormat, words)
		}
		p.words = make([]uint64, words)
		if err := get(p.words); err != nil {
			return nil, fmt.Errorf("%w: packed words: %v", ErrFormat, err)
		}
		idx.packed = p
	case layoutByte:
		idx.bwt = make([]byte, n+1)
		if _, err := io.ReadFull(br, idx.bwt); err != nil {
			return nil, fmt.Errorf("%w: bwt: %v", ErrFormat, err)
		}
	default:
		return nil, fmt.Errorf("%w: layout %d", ErrFormat, layout)
	}

	if err := get(idx.c[:]); err != nil {
		return nil, fmt.Errorf("%w: c array: %v", ErrFormat, err)
	}
	var occLayout uint8
	if err := get(&occLayout); err != nil {
		return nil, fmt.Errorf("%w: occ layout", ErrFormat)
	}
	switch occLayout {
	case 1:
		idx.opts.TwoLevelOcc = true
		occ2 := &twoLevelOcc{}
		var superLen, blockLen uint64
		if err := get(&superLen); err != nil || superLen > maxLen {
			return nil, fmt.Errorf("%w: super length", ErrFormat)
		}
		occ2.super = make([]uint32, superLen)
		if err := get(occ2.super); err != nil {
			return nil, fmt.Errorf("%w: super: %v", ErrFormat, err)
		}
		if err := get(&blockLen); err != nil || blockLen > maxLen {
			return nil, fmt.Errorf("%w: block length", ErrFormat)
		}
		occ2.block = make([]uint8, blockLen)
		if err := get(occ2.block); err != nil {
			return nil, fmt.Errorf("%w: block: %v", ErrFormat, err)
		}
		idx.occ2 = occ2
	case 0:
		var occLen uint64
		if err := get(&occLen); err != nil || occLen > maxLen {
			return nil, fmt.Errorf("%w: occ length", ErrFormat)
		}
		idx.occ = make([]int32, occLen)
		if err := get(idx.occ); err != nil {
			return nil, fmt.Errorf("%w: occ: %v", ErrFormat, err)
		}
	default:
		return nil, fmt.Errorf("%w: occ layout %d", ErrFormat, occLayout)
	}
	var markWords uint64
	if err := get(&markWords); err != nil || markWords > maxLen {
		return nil, fmt.Errorf("%w: mark length", ErrFormat)
	}
	bits := make([]uint64, markWords)
	if err := get(bits); err != nil {
		return nil, fmt.Errorf("%w: marks: %v", ErrFormat, err)
	}
	idx.saMarked = bitvec.NewRank(bitvec.FromWords(bits, idx.n+1))
	var samples uint64
	if err := get(&samples); err != nil || samples > maxLen {
		return nil, fmt.Errorf("%w: sample length", ErrFormat)
	}
	idx.saSamples = make([]int32, samples)
	if err := get(idx.saSamples); err != nil {
		return nil, fmt.Errorf("%w: samples: %v", ErrFormat, err)
	}
	if int(samples) != idx.saMarked.Ones() {
		return nil, fmt.Errorf("%w: %d samples for %d marked rows", ErrFormat, samples, idx.saMarked.Ones())
	}
	return idx, nil
}

func markedBits(r *bitvec.Rank) []uint64 {
	v := bitvec.New(r.Len())
	for i := 0; i < r.Len(); i++ {
		if r.Get(i) {
			v.Set(i)
		}
	}
	return v.Words()
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
