package fmindex

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"slices"

	"bwtmatch/internal/alphabet"
	"bwtmatch/internal/binio"
	"bwtmatch/internal/bitvec"
)

// Serialization of the index: a little-endian binary format with a magic
// header, so a genome is indexed once and reloaded in milliseconds
// (§III-B: "once it is created, it can be repeatedly used").
//
// Layout: magic, version, options, n, sentPos, BWT payload (byte or
// packed), C array, occ checkpoints, SA-mark bitvector, SA samples.

const (
	indexMagic   = uint32(0xB3711D01) // "BWT index" v1
	layoutByte   = uint8(0)
	layoutPacked = uint8(1)
)

// ErrFormat reports an unreadable index stream.
var ErrFormat = errors.New("fmindex: bad index format")

// WriteTo serializes the index.
func (idx *Index) WriteTo(w io.Writer) (int64, error) {
	if idx.rel != nil {
		return 0, errors.New("fmindex: relative index has no standalone serialization; use WriteRelativeTo")
	}
	cw := &countWriter{w: bufio.NewWriter(w)}
	put := func(v any) error { return binary.Write(cw, binary.LittleEndian, v) }

	layout := layoutByte
	if idx.packed != nil {
		layout = layoutPacked
	}
	header := []any{
		indexMagic,
		uint32(idx.opts.OccRate),
		uint32(idx.opts.SARate),
		layout,
		uint64(idx.n),
		idx.sentPos,
	}
	for _, h := range header {
		if err := put(h); err != nil {
			return cw.n, err
		}
	}
	if idx.packed != nil {
		if err := put(idx.packed.sentPos); err != nil {
			return cw.n, err
		}
		if err := put(uint64(len(idx.packed.words))); err != nil {
			return cw.n, err
		}
		if err := put(idx.packed.words); err != nil {
			return cw.n, err
		}
	} else {
		if _, err := cw.Write(idx.bwt); err != nil {
			return cw.n, err
		}
	}
	if err := put(idx.c[:]); err != nil {
		return cw.n, err
	}
	if idx.occ2 != nil {
		if err := firstErr(
			put(uint8(1)),
			put(uint64(len(idx.occ2.super))),
			put(idx.occ2.super),
			put(uint64(len(idx.occ2.block))),
			put(idx.occ2.block),
		); err != nil {
			return cw.n, err
		}
	} else {
		if err := firstErr(
			put(uint8(0)),
			put(uint64(len(idx.occ))),
			put(idx.occ),
		); err != nil {
			return cw.n, err
		}
	}
	markBits := markedBits(idx.saMarked)
	if err := put(uint64(len(markBits))); err != nil {
		return cw.n, err
	}
	if err := put(markBits); err != nil {
		return cw.n, err
	}
	if err := put(uint64(len(idx.saSamples))); err != nil {
		return cw.n, err
	}
	if err := put(idx.saSamples); err != nil {
		return cw.n, err
	}
	return cw.n, cw.w.(*bufio.Writer).Flush()
}

// ReadIndex deserializes an index written by WriteTo.
func ReadIndex(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	get := func(v any) error { return binary.Read(br, binary.LittleEndian, v) }

	var magic uint32
	if err := get(&magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	if magic != indexMagic {
		return nil, fmt.Errorf("%w: magic %#x", ErrFormat, magic)
	}
	var occRate, saRate uint32
	var layout uint8
	var n uint64
	idx := &Index{}
	if err := firstErr(
		get(&occRate), get(&saRate), get(&layout), get(&n), get(&idx.sentPos),
	); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrFormat, err)
	}
	idx.opts = Options{OccRate: int(occRate), SARate: int(saRate), PackedBWT: layout == layoutPacked}
	idx.deriveOccShift()
	if err := idx.opts.normalize(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	idx.n = int(n)
	const maxLen = 1 << 34 // sanity cap against corrupt headers
	if n > maxLen {
		return nil, fmt.Errorf("%w: n %d", ErrFormat, n)
	}
	const maxRate = 1 << 28 // no plausible sampling rate is this sparse
	if occRate > maxRate || saRate > maxRate {
		return nil, fmt.Errorf("%w: rates occ=%d sa=%d", ErrFormat, occRate, saRate)
	}

	switch layout {
	case layoutPacked:
		p := &packedBWT{n: int32(n) + 1}
		var words uint64
		if err := firstErr(get(&p.sentPos), get(&words)); err != nil {
			return nil, fmt.Errorf("%w: packed header: %v", ErrFormat, err)
		}
		if words > maxLen {
			return nil, fmt.Errorf("%w: words %d", ErrFormat, words)
		}
		payload, err := binio.ReadSlice[uint64](br, words)
		if err != nil {
			return nil, fmt.Errorf("%w: packed words: %v", ErrFormat, err)
		}
		p.words = payload
		idx.packed = p
	case layoutByte:
		bwt, err := binio.ReadSlice[byte](br, n+1)
		if err != nil {
			return nil, fmt.Errorf("%w: bwt: %v", ErrFormat, err)
		}
		idx.bwt = bwt
	default:
		return nil, fmt.Errorf("%w: layout %d", ErrFormat, layout)
	}

	if err := get(idx.c[:]); err != nil {
		return nil, fmt.Errorf("%w: c array: %v", ErrFormat, err)
	}
	var occLayout uint8
	if err := get(&occLayout); err != nil {
		return nil, fmt.Errorf("%w: occ layout", ErrFormat)
	}
	switch occLayout {
	case 1:
		idx.opts.TwoLevelOcc = true
		occ2 := &twoLevelOcc{}
		var superLen, blockLen uint64
		if err := get(&superLen); err != nil || superLen > maxLen {
			return nil, fmt.Errorf("%w: super length", ErrFormat)
		}
		super, err := binio.ReadSlice[uint32](br, superLen)
		if err != nil {
			return nil, fmt.Errorf("%w: super: %v", ErrFormat, err)
		}
		occ2.super = super
		if err := get(&blockLen); err != nil || blockLen > maxLen {
			return nil, fmt.Errorf("%w: block length", ErrFormat)
		}
		block, err := binio.ReadSlice[uint8](br, blockLen)
		if err != nil {
			return nil, fmt.Errorf("%w: block: %v", ErrFormat, err)
		}
		occ2.block = block
		idx.occ2 = occ2
	case 0:
		var occLen uint64
		if err := get(&occLen); err != nil || occLen > maxLen {
			return nil, fmt.Errorf("%w: occ length", ErrFormat)
		}
		occ, err := binio.ReadSlice[int32](br, occLen)
		if err != nil {
			return nil, fmt.Errorf("%w: occ: %v", ErrFormat, err)
		}
		idx.occ = occ
	default:
		return nil, fmt.Errorf("%w: occ layout %d", ErrFormat, occLayout)
	}
	var markWords uint64
	if err := get(&markWords); err != nil || markWords > maxLen {
		return nil, fmt.Errorf("%w: mark length", ErrFormat)
	}
	bits, err := binio.ReadSlice[uint64](br, markWords)
	if err != nil {
		return nil, fmt.Errorf("%w: marks: %v", ErrFormat, err)
	}
	idx.saMarked = bitvec.NewRank(bitvec.FromWords(bits, idx.n+1))
	var samples uint64
	if err := get(&samples); err != nil || samples > maxLen {
		return nil, fmt.Errorf("%w: sample length", ErrFormat)
	}
	saSamples, err := binio.ReadSlice[int32](br, samples)
	if err != nil {
		return nil, fmt.Errorf("%w: samples: %v", ErrFormat, err)
	}
	idx.saSamples = saSamples
	if int(samples) != idx.saMarked.Ones() {
		return nil, fmt.Errorf("%w: %d samples for %d marked rows", ErrFormat, samples, idx.saMarked.Ones())
	}
	if err := idx.verifyLoad(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	return idx, nil
}

// verifyLoad cross-checks the structures decoded from an untrusted
// stream against each other in O(n): the C array must be the prefix sums
// of the BWT's character counts, the rankall checkpoints must equal a
// fresh recount, and the LF mapping must form a single cycle through all
// n+1 rows whose recovered text positions match every stored SA sample.
// An index that passes is fully internally consistent — Step, Locate and
// the LF walk cannot index out of range or loop forever on it — so a
// corrupt file is rejected here rather than surfacing as a panic deep in
// a search. The deeper (and slower) oracle cross-checks live behind the
// kminvariants build tag; this gate is cheap enough to run on every
// load.
func (idx *Index) verifyLoad() error {
	rows := idx.n + 1
	if idx.sentPos < 0 || int(idx.sentPos) >= rows {
		return fmt.Errorf("sentinel position %d outside %d rows", idx.sentPos, rows)
	}
	if idx.rel != nil {
		return idx.verifyRelativeLoad()
	}
	if p := idx.packed; p != nil {
		if int(p.n) != rows || p.sentPos != idx.sentPos {
			return fmt.Errorf("packed header (n=%d sent=%d) disagrees with index (n=%d sent=%d)",
				p.n, p.sentPos, rows, idx.sentPos)
		}
		if len(p.words) != (rows+codesPerWord-1)/codesPerWord {
			return fmt.Errorf("packed payload %d words for %d rows", len(p.words), rows)
		}
	} else if len(idx.bwt) != rows {
		return fmt.Errorf("bwt payload %d bytes for %d rows", len(idx.bwt), rows)
	}

	// Character census; in the byte layout also reject junk values and
	// stray sentinels (the packed layout cannot represent either).
	var counts [alphabet.Size]int32
	if idx.packed == nil {
		for i, ch := range idx.bwt {
			if ch >= alphabet.Size {
				return fmt.Errorf("bwt value %d at row %d", ch, i)
			}
			if ch == alphabet.Sentinel && int32(i) != idx.sentPos {
				return fmt.Errorf("stray sentinel at row %d (header says %d)", i, idx.sentPos)
			}
			counts[ch]++
		}
	} else {
		for i := int32(0); int(i) < rows; i++ {
			counts[idx.bwtAt(i)]++
		}
	}
	if err := idx.verifyCArray(counts); err != nil {
		return err
	}

	// Rankall checkpoints: recompute from the BWT and demand equality.
	bwt := idx.BWT()
	if idx.occ2 != nil {
		fresh := buildTwoLevel(bwt, 1)
		if !slices.Equal(fresh.super, idx.occ2.super) || !slices.Equal(fresh.block, idx.occ2.block) {
			return fmt.Errorf("two-level occ directory disagrees with bwt recount")
		}
	} else {
		rate := idx.opts.OccRate
		nChk := rows/rate + 1
		if len(idx.occ) != nChk*alphabet.Bases {
			return fmt.Errorf("occ table %d entries, want %d", len(idx.occ), nChk*alphabet.Bases)
		}
		var running [alphabet.Bases]int32
		for p := 0; p <= rows; p++ {
			if p%rate == 0 {
				chk := (p / rate) * alphabet.Bases
				for x := 0; x < alphabet.Bases; x++ {
					if idx.occ[chk+x] != running[x] {
						return fmt.Errorf("occ checkpoint %d base %d = %d, recount %d",
							p/rate, x, idx.occ[chk+x], running[x])
					}
				}
			}
			if p < rows {
				if ch := bwt[p]; ch != alphabet.Sentinel {
					running[ch-1]++
				}
			}
		}
	}

	return idx.verifySASamples(bwt)
}

// verifyCArray checks the C array against a character census of the BWT.
func (idx *Index) verifyCArray(counts [alphabet.Size]int32) error {
	rows := idx.n + 1
	var sum int32
	for x := 0; x < alphabet.Size; x++ {
		if idx.c[x] != sum {
			return fmt.Errorf("c[%d] = %d, recount %d", x, idx.c[x], sum)
		}
		sum += counts[x]
	}
	if idx.c[alphabet.Size] != sum || int(sum) != rows {
		return fmt.Errorf("c total %d, recount %d over %d rows", idx.c[alphabet.Size], sum, rows)
	}
	return nil
}

// verifySASamples checks that the LF mapping, computed by one sequential
// scan of the materialized BWT, traces a single cycle visiting every row
// exactly once, and that the text position recovered at each marked row
// equals the stored sample.
func (idx *Index) verifySASamples(bwt []byte) error {
	rows := idx.n + 1
	if idx.saMarked.Len() != rows {
		return fmt.Errorf("mark bitvector %d bits for %d rows", idx.saMarked.Len(), rows)
	}
	if idx.saMarked.Ones() == 0 {
		return fmt.Errorf("no sampled SA rows")
	}
	lf := make([]int32, rows)
	var running [alphabet.Size]int32
	for i := 0; i < rows; i++ {
		ch := bwt[i]
		if ch == alphabet.Sentinel {
			lf[i] = 0
		} else {
			lf[i] = idx.c[ch] + running[ch]
		}
		running[ch]++
	}
	visited := bitvec.New(rows)
	row := int32(0) // row 0 holds the bare-sentinel suffix, text position n
	for pos := idx.n; ; pos-- {
		if visited.Get(int(row)) {
			return fmt.Errorf("LF cycle revisits row %d with %d positions left", row, pos+1)
		}
		visited.Set(int(row))
		if idx.saMarked.Get(int(row)) {
			if got := idx.saSamples[idx.saMarked.Rank1(int(row))]; got != int32(pos) {
				return fmt.Errorf("SA sample at row %d = %d, LF walk says %d", row, got, pos)
			}
		}
		if pos == 0 {
			break
		}
		row = lf[row]
	}
	if lf[row] != 0 {
		return fmt.Errorf("LF walk ends at row %d, not the sentinel row", lf[row])
	}
	return nil
}

func markedBits(r *bitvec.Rank) []uint64 {
	v := bitvec.New(r.Len())
	for i := 0; i < r.Len(); i++ {
		if r.Get(i) {
			v.Set(i)
		}
	}
	return v.Words()
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
