//go:build kminvariants

package fmindex

import (
	"math/rand"
	"testing"

	"bwtmatch/internal/alphabet"
)

// TestCheckInvariantsDetectsCorruption tampers with each component of
// the index and requires CheckInvariants (or CheckAgainstText) to
// notice. Only built under the kminvariants tag.
func TestCheckInvariantsDetectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	text := make([]byte, 1200)
	for i := range text {
		text[i] = byte(alphabet.A + rng.Intn(alphabet.Bases))
	}

	build := func(opts Options) *Index {
		idx, err := Build(text, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := idx.CheckInvariants(); err != nil {
			t.Fatalf("pristine index rejected: %v", err)
		}
		return idx
	}

	flat := Options{OccRate: 4, SARate: 16}

	t.Run("occ checkpoint", func(t *testing.T) {
		idx := build(flat)
		idx.occ[5]++
		if err := idx.CheckInvariants(); err == nil {
			t.Error("corrupt occ checkpoint not detected")
		}
	})
	t.Run("c array", func(t *testing.T) {
		idx := build(flat)
		idx.c[alphabet.C]++
		if err := idx.CheckInvariants(); err == nil {
			t.Error("corrupt C array not detected")
		}
	})
	t.Run("bwt byte", func(t *testing.T) {
		idx := build(flat)
		// Swap two distinct BWT characters away from the sentinel.
		for i := range idx.bwt {
			j := (i + 1) % len(idx.bwt)
			if idx.bwt[i] != idx.bwt[j] &&
				idx.bwt[i] != alphabet.Sentinel && idx.bwt[j] != alphabet.Sentinel {
				idx.bwt[i], idx.bwt[j] = idx.bwt[j], idx.bwt[i]
				break
			}
		}
		if err := idx.CheckInvariants(); err == nil {
			t.Error("corrupt BWT not detected")
		}
	})
	t.Run("sa sample", func(t *testing.T) {
		idx := build(flat)
		idx.saSamples[len(idx.saSamples)/2]++
		if err := idx.CheckInvariants(); err == nil {
			t.Error("corrupt SA sample not detected")
		}
	})
	t.Run("packed word", func(t *testing.T) {
		idx := build(Options{OccRate: 32, SARate: 16, PackedBWT: true})
		idx.packed.words[2] ^= 3
		if err := idx.CheckInvariants(); err == nil {
			t.Error("corrupt packed BWT word not detected")
		}
	})
	t.Run("twolevel block", func(t *testing.T) {
		idx := build(Options{SARate: 16, TwoLevelOcc: true})
		idx.occ2.block[7]++
		if err := idx.CheckInvariants(); err == nil {
			t.Error("corrupt two-level block count not detected")
		}
	})
	t.Run("wrong text", func(t *testing.T) {
		idx := build(flat)
		other := append([]byte(nil), text...)
		other[100] = alphabet.A + (other[100]-alphabet.A+1)%alphabet.Bases
		if err := idx.CheckAgainstText(other); err == nil {
			t.Error("index accepted against a different text")
		}
	})
}
