package fmindex

import (
	"fmt"

	"bwtmatch/internal/alphabet"
)

// twoLevelOcc is a hierarchical rankall directory: absolute 32-bit
// counts every superRate characters plus relative 8-bit counts every
// blockRate characters. Against the paper's flat layout (one 32-bit
// count per character every 4 positions = 32 bits/base of occ overhead)
// it stores 4·32/superRate + 4·8/blockRate bits/base — 2.5 bits/base at
// the default geometry — while keeping scans at most blockRate-1
// characters.
type twoLevelOcc struct {
	super []uint32 // absolute counts: super[(p/superRate)*4 + c]
	block []uint8  // counts since the enclosing superblock start
}

const (
	superRate = 256
	blockRate = 16
	// blocksPerSuper relative counts per superblock; the last block of a
	// superblock holds at most superRate-blockRate < 256, so uint8 fits.
	blocksPerSuper = superRate / blockRate
)

// buildTwoLevel scans a rank-encoded BWT across workers goroutines.
// Ranges are superRate-aligned, so the relative (block) counts are
// fully range-local; only the absolute superblock counts need the
// prefix-sum fixup of the second pass.
func buildTwoLevel(bwt []byte, workers int) *twoLevelOcc {
	n := len(bwt)
	nSuper := n/superRate + 1
	nBlock := n/blockRate + 1
	t := &twoLevelOcc{
		super: make([]uint32, (nSuper+1)*alphabet.Bases),
		block: make([]uint8, (nBlock+1)*alphabet.Bases),
	}
	ranges := splitRanges(n+1, workers, superRate)
	totals := make([][alphabet.Bases]uint32, len(ranges))
	runRanges(ranges, func(w, lo, hi int) {
		var abs [alphabet.Bases]uint32
		var rel [alphabet.Bases]uint8
		for p := lo; p < hi; p++ {
			if p%superRate == 0 {
				copy(t.super[(p/superRate)*alphabet.Bases:], abs[:])
				rel = [alphabet.Bases]uint8{}
			}
			if p%blockRate == 0 {
				copy(t.block[(p/blockRate)*alphabet.Bases:], rel[:])
			}
			if p < n {
				if ch := bwt[p]; ch != alphabet.Sentinel {
					abs[ch-1]++
					rel[ch-1]++
				}
			}
		}
		totals[w] = abs
	})
	if len(ranges) > 1 {
		var off [alphabet.Bases]uint32
		for w, r := range ranges {
			if w > 0 {
				lo, hi := r[0], r[1]
				for sup := lo / superRate; sup*superRate < hi; sup++ {
					row := t.super[sup*alphabet.Bases : sup*alphabet.Bases+alphabet.Bases]
					for x := 0; x < alphabet.Bases; x++ {
						row[x] += off[x]
					}
				}
			}
			for x := 0; x < alphabet.Bases; x++ {
				off[x] += totals[w][x]
			}
		}
	}
	return t
}

// base returns the occurrences of base x in bwt[0:blockStart] for the
// block enclosing p, plus that block's start; the caller scans the
// remaining < blockRate characters itself.
func (t *twoLevelOcc) base(x byte, p int32) (cnt, blockStart int32) {
	blk := p / blockRate
	cnt = int32(t.super[(p/superRate)*alphabet.Bases+int32(x-1)]) +
		int32(t.block[blk*alphabet.Bases+int32(x-1)])
	return cnt, blk * blockRate
}

// baseAll fills cnt for all four bases at the enclosing block start.
func (t *twoLevelOcc) baseAll(p int32, cnt *[alphabet.Bases]int32) (blockStart int32) {
	blk := p / blockRate
	sup := (p / superRate) * alphabet.Bases
	rel := blk * alphabet.Bases
	for c := int32(0); c < alphabet.Bases; c++ {
		cnt[c] = int32(t.super[sup+c]) + int32(t.block[rel+c])
	}
	return blk * blockRate
}

// sizeBytes returns the directory payload.
func (t *twoLevelOcc) sizeBytes() int { return len(t.super)*4 + len(t.block) }

// validateGeometry guards the uint8 invariant at compile-configuration
// time; it exists so a future geometry change cannot silently overflow.
func validateGeometry() error {
	if superRate%blockRate != 0 {
		return fmt.Errorf("fmindex: superRate %d not a multiple of blockRate %d", superRate, blockRate)
	}
	if superRate-blockRate > 255 {
		return fmt.Errorf("fmindex: relative counts overflow uint8")
	}
	return nil
}
