package fmindex

import (
	"bytes"
	"math/rand"
	"testing"
)

// naiveMS computes matching statistics by direct substring search.
func naiveMS(text, pattern []byte) []int {
	ms := make([]int, len(pattern))
	for i := range pattern {
		l := 0
		for i+l < len(pattern) {
			if !bytes.Contains(text, pattern[i:i+l+1]) {
				break
			}
			l++
		}
		ms[i] = l
	}
	return ms
}

func TestMatchingStatsAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(251))
	for trial := 0; trial < 30; trial++ {
		text := randomRanks(rng, 30+rng.Intn(400))
		bi, err := BuildBi(text, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < 5; q++ {
			m := 1 + rng.Intn(40)
			var pattern []byte
			if rng.Intn(2) == 0 && len(text) > m {
				p := rng.Intn(len(text) - m)
				pattern = append([]byte(nil), text[p:p+m]...)
				if m > 2 {
					pattern[rng.Intn(m)] = byte(1 + rng.Intn(4))
				}
			} else {
				pattern = randomRanks(rng, m)
			}
			got := bi.MatchingStats(pattern)
			want := naiveMS(text, pattern)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("ms[%d] = %d, want %d (text=%v pattern=%v)",
						i, got[i], want[i], text, pattern)
				}
			}
		}
	}
}

func TestMEMsProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(252))
	for trial := 0; trial < 30; trial++ {
		text := randomRanks(rng, 100+rng.Intn(400))
		bi, _ := BuildBi(text, DefaultOptions())
		p := rng.Intn(len(text) - 60)
		pattern := append([]byte(nil), text[p:p+60]...)
		// Two mutations split the exact match into up to three MEMs.
		pattern[15] = byte(1 + rng.Intn(4))
		pattern[40] = byte(1 + rng.Intn(4))
		minLen := 5
		mems := bi.MEMs(pattern, minLen)
		ms := naiveMS(text, pattern)
		for _, mem := range mems {
			if mem.Len < minLen {
				t.Fatalf("MEM below minLen: %+v", mem)
			}
			// The MEM substring must occur.
			if ms[mem.Start] != mem.Len {
				t.Fatalf("MEM at %d has len %d, matching stat %d", mem.Start, mem.Len, ms[mem.Start])
			}
			// Right-maximality.
			if mem.Start+mem.Len < len(pattern) && bytes.Contains(text, pattern[mem.Start:mem.Start+mem.Len+1]) {
				t.Fatalf("MEM at %d extendable right", mem.Start)
			}
			// Left-maximality: pattern[start-1 .. start+len) must not occur.
			if mem.Start > 0 && bytes.Contains(text, pattern[mem.Start-1:mem.Start+mem.Len]) {
				t.Fatalf("MEM at %d extendable left", mem.Start)
			}
			// Locating the interval must yield genuine occurrences.
			pos := bi.Fwd().Locate(mem.Iv.Fwd, nil)
			if len(pos) == 0 {
				t.Fatalf("MEM with no occurrences")
			}
			for _, q := range pos {
				if !bytes.Equal(text[q:int(q)+mem.Len], pattern[mem.Start:mem.Start+mem.Len]) {
					t.Fatalf("located occurrence mismatches MEM text")
				}
			}
		}
		// Every sufficiently long left-maximal match must be reported:
		// cross-check against a direct enumeration.
		var want []int
		for i := 0; i < len(pattern); i++ {
			if ms[i] < minLen {
				continue
			}
			if i > 0 && ms[i] < ms[i-1] {
				continue // contained in the previous start's match
			}
			want = append(want, i)
		}
		if len(want) != len(mems) {
			t.Fatalf("reported %d MEMs, want %d (starts %v)", len(mems), len(want), want)
		}
		for i := range want {
			if mems[i].Start != want[i] {
				t.Fatalf("MEM starts %v, want %v", mems[i].Start, want[i])
			}
		}
	}
}

func TestMEMsMinLenClamp(t *testing.T) {
	text := []byte{1, 2, 3, 4}
	bi, _ := BuildBi(text, DefaultOptions())
	mems := bi.MEMs([]byte{1, 2}, 0) // clamped to 1
	if len(mems) == 0 {
		t.Fatal("no MEMs with clamped minLen")
	}
}
