//go:build !kminvariants

package fmindex

// InvariantsEnabled reports whether this build carries the deep
// invariant checks (the kminvariants build tag).
const InvariantsEnabled = false

// CheckInvariants is a no-op in default builds; compile with
// -tags kminvariants for the real verification.
func (idx *Index) CheckInvariants() error { return nil }

// CheckAgainstText is a no-op in default builds; compile with
// -tags kminvariants for the real verification.
func (idx *Index) CheckAgainstText(text []byte) error { return nil }
