package fmindex

// Matching statistics and maximal exact matches (MEMs) over the
// bidirectional index: the seeding primitives of modern aligners
// (BWA-MEM's SMEMs are a refinement of these), provided as part of the
// extension surface around the paper's index.

// MEM is one maximal exact match of a pattern in the indexed text: the
// pattern substring [Start, Start+Len) occurs in the text and can be
// extended neither left nor right at every occurrence.
type MEM struct {
	Start, Len int
	// Iv is the synchronized interval of the occurrences, usable with
	// Fwd().Locate.
	Iv BiInterval
}

// MatchingStats returns ms where ms[i] is the length of the longest
// prefix of pattern[i:] that occurs in the text. Each entry is computed
// by forward extension from scratch, O(m·L) total with L the average
// match length (≈ log_4 n on random DNA).
func (b *BiIndex) MatchingStats(pattern []byte) []int {
	m := len(pattern)
	ms := make([]int, m)
	for i := 0; i < m; i++ {
		iv := b.Full()
		l := 0
		for i+l < m {
			next := b.ExtendRight(pattern[i+l], iv)
			if next.Empty() {
				break
			}
			iv = next
			l++
		}
		ms[i] = l
	}
	return ms
}

// MEMs returns every maximal exact match of pattern with length at least
// minLen, ordered by start position. A match starting at i is reported
// when it is not contained in the previous start's match (ms[i] >=
// ms[i-1], since ms can drop by at most one per step) and cannot be
// extended left (guaranteed by the same condition, and checked directly
// for i = 0).
func (b *BiIndex) MEMs(pattern []byte, minLen int) []MEM {
	m := len(pattern)
	if minLen < 1 {
		minLen = 1
	}
	var out []MEM
	prev := 0
	for i := 0; i < m; i++ {
		iv := b.Full()
		l := 0
		for i+l < m {
			next := b.ExtendRight(pattern[i+l], iv)
			if next.Empty() {
				break
			}
			iv = next
			l++
		}
		if l >= minLen && (i == 0 || l >= prev) && !iv.Empty() {
			out = append(out, MEM{Start: i, Len: l, Iv: iv})
		}
		prev = l
	}
	return out
}
