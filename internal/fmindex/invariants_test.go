package fmindex

import (
	"math/rand"
	"testing"

	"bwtmatch/internal/alphabet"
)

// invariantOptions enumerates the storage layout combinations the
// invariant checks must hold for.
func invariantOptions() map[string]Options {
	return map[string]Options{
		"default":           {OccRate: 4, SARate: 16},
		"sparse-occ":        {OccRate: 32, SARate: 8},
		"packed":            {OccRate: 32, SARate: 16, PackedBWT: true},
		"twolevel":          {SARate: 16, TwoLevelOcc: true},
		"packed-twolevel":   {SARate: 4, PackedBWT: true, TwoLevelOcc: true},
		"dense-sa-sampling": {OccRate: 4, SARate: 1},
	}
}

// TestCheckInvariantsLayouts exercises the deep index verification,
// including the wavelet-tree rankall cross-check and the text
// round-trip, for every storage layout. In default builds the checks
// are no-ops; under -tags kminvariants they run in full.
func TestCheckInvariantsLayouts(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	text := make([]byte, 2000)
	for i := range text {
		text[i] = byte(alphabet.A + rng.Intn(alphabet.Bases))
	}
	for name, opts := range invariantOptions() {
		t.Run(name, func(t *testing.T) {
			idx, err := Build(text, opts)
			if err != nil {
				t.Fatal(err)
			}
			if err := idx.CheckInvariants(); err != nil {
				t.Errorf("CheckInvariants: %v", err)
			}
			if err := idx.CheckAgainstText(text); err != nil {
				t.Errorf("CheckAgainstText: %v", err)
			}
		})
	}
}

// TestCheckInvariantsTinyTexts covers degenerate sizes where off-by-one
// bugs in checkpointing and sampling hide.
func TestCheckInvariantsTinyTexts(t *testing.T) {
	for _, text := range [][]byte{
		{alphabet.A},
		{alphabet.T, alphabet.T},
		{alphabet.A, alphabet.C, alphabet.G, alphabet.T},
		{alphabet.G, alphabet.G, alphabet.G, alphabet.G, alphabet.G},
	} {
		idx, err := Build(text, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if err := idx.CheckInvariants(); err != nil {
			t.Errorf("n=%d: %v", len(text), err)
		}
		if err := idx.CheckAgainstText(text); err != nil {
			t.Errorf("n=%d against text: %v", len(text), err)
		}
	}
}
