package fmindex

import (
	"math/rand"
	"reflect"
	"testing"

	"bwtmatch/internal/alphabet"
)

func randomRanksP(rng *rand.Rand, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(1 + rng.Intn(alphabet.Bases))
	}
	return out
}

// TestBuildParallelEquivalence builds the same texts serially and with
// several worker counts across every layout combination and requires
// bit-identical index structures. Sizes straddle the range-splitting
// edges: shorter than one alignment unit, exactly aligned, and long
// enough for every worker to get work.
func TestBuildParallelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(551))
	layouts := []Options{
		{OccRate: 4, SARate: 16},
		{OccRate: 64, SARate: 8},
		{OccRate: 64, SARate: 16, PackedBWT: true},
		{SARate: 16, TwoLevelOcc: true},
		{SARate: 4, TwoLevelOcc: true, PackedBWT: true},
	}
	for _, n := range []int{1, 5, 63, 64, 255, 256, 257, 4096, 30000} {
		text := randomRanksP(rng, n)
		for _, base := range layouts {
			serialOpts := base
			serialOpts.Workers = 1
			want, err := Build(text, serialOpts)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 3, 4, 7} {
				opts := base
				opts.Workers = workers
				got, err := Build(text, opts)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got.bwt, want.bwt) {
					t.Fatalf("n=%d %+v workers=%d: bwt differs", n, base, workers)
				}
				if got.sentPos != want.sentPos {
					t.Fatalf("n=%d %+v workers=%d: sentPos %d != %d", n, base, workers, got.sentPos, want.sentPos)
				}
				if got.c != want.c {
					t.Fatalf("n=%d %+v workers=%d: C array differs", n, base, workers)
				}
				if !reflect.DeepEqual(got.occ, want.occ) {
					t.Fatalf("n=%d %+v workers=%d: occ differs", n, base, workers)
				}
				if (got.occ2 == nil) != (want.occ2 == nil) {
					t.Fatalf("n=%d %+v workers=%d: occ2 presence differs", n, base, workers)
				}
				if got.occ2 != nil && !reflect.DeepEqual(got.occ2, want.occ2) {
					t.Fatalf("n=%d %+v workers=%d: occ2 differs", n, base, workers)
				}
				if (got.packed == nil) != (want.packed == nil) {
					t.Fatalf("n=%d %+v workers=%d: packed presence differs", n, base, workers)
				}
				if got.packed != nil && !reflect.DeepEqual(got.packed, want.packed) {
					t.Fatalf("n=%d %+v workers=%d: packed differs", n, base, workers)
				}
				if !reflect.DeepEqual(got.saSamples, want.saSamples) {
					t.Fatalf("n=%d %+v workers=%d: saSamples differ", n, base, workers)
				}
				if got.saMarked.Ones() != want.saMarked.Ones() {
					t.Fatalf("n=%d %+v workers=%d: marked rows differ", n, base, workers)
				}
			}
		}
	}
}

// TestBuildPhases checks that a Phases sink receives the construction
// breakdown: the suffix array dominates and every field is sane.
func TestBuildPhases(t *testing.T) {
	rng := rand.New(rand.NewSource(554))
	text := randomRanksP(rng, 50000)
	for _, workers := range []int{1, 4} {
		var ph BuildPhases
		_, err := Build(text, Options{OccRate: 4, SARate: 16, PackedBWT: true, Workers: workers, Phases: &ph})
		if err != nil {
			t.Fatal(err)
		}
		if ph.SANS <= 0 {
			t.Fatalf("workers=%d: SA phase not timed: %+v", workers, ph)
		}
		if ph.BWTNS < 0 || ph.OccNS < 0 || ph.PackNS < 0 {
			t.Fatalf("workers=%d: negative phase: %+v", workers, ph)
		}
		if total := ph.SANS + ph.BWTNS + ph.OccNS + ph.PackNS; total <= 0 {
			t.Fatalf("workers=%d: empty breakdown: %+v", workers, ph)
		}
	}
}

// TestBuildParallelValidation checks the invalid-character error is
// still reported at the first offending position under parallel
// validation.
func TestBuildParallelValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(552))
	text := randomRanksP(rng, 10000)
	text[7000] = 9
	text[2500] = 0 // first offender
	for _, workers := range []int{1, 4} {
		_, err := Build(text, Options{OccRate: 4, SARate: 16, Workers: workers})
		if err == nil {
			t.Fatalf("workers=%d: invalid text accepted", workers)
		}
		const wantPos = "position 2500"
		if got := err.Error(); !containsStr(got, wantPos) {
			t.Fatalf("workers=%d: error %q does not name the first bad position", workers, got)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestPackedCountAllMatchesCount cross-checks the single-pass countAll
// against four single-base count calls over random windows.
func TestPackedCountAllMatchesCount(t *testing.T) {
	rng := rand.New(rand.NewSource(553))
	bwt := randomRanksP(rng, 3000)
	bwt[rng.Intn(len(bwt))] = alphabet.Sentinel
	p := newPackedBWT(bwt, 1)
	for trial := 0; trial < 2000; trial++ {
		from := int32(rng.Intn(len(bwt)))
		to := from + int32(rng.Intn(len(bwt)-int(from)+1))
		var got [alphabet.Bases]int32
		p.countAll(from, to, &got)
		for x := byte(alphabet.A); x <= alphabet.T; x++ {
			if want := p.count(x, from, to); got[x-1] != want {
				t.Fatalf("countAll[%d:%d] base %d = %d, count = %d", from, to, x, got[x-1], want)
			}
		}
	}
}

func TestSplitRanges(t *testing.T) {
	for _, tc := range []struct{ n, workers, align int }{
		{0, 4, 16}, {1, 4, 16}, {15, 4, 16}, {16, 4, 16}, {17, 4, 16},
		{1000, 1, 64}, {1000, 3, 64}, {1000, 100, 64}, {64, 64, 64},
	} {
		ranges := splitRanges(tc.n, tc.workers, tc.align)
		if tc.n == 0 {
			if len(ranges) != 0 {
				t.Fatalf("splitRanges(0) = %v", ranges)
			}
			continue
		}
		if len(ranges) > tc.workers {
			t.Fatalf("splitRanges(%+v) produced %d > workers ranges", tc, len(ranges))
		}
		next := 0
		for i, r := range ranges {
			if r[0] != next || r[1] <= r[0] {
				t.Fatalf("splitRanges(%+v): bad range %d: %v", tc, i, ranges)
			}
			if r[0]%tc.align != 0 {
				t.Fatalf("splitRanges(%+v): range %d start %d unaligned", tc, i, r[0])
			}
			next = r[1]
		}
		if next != tc.n {
			t.Fatalf("splitRanges(%+v): covers [0,%d), want [0,%d)", tc, next, tc.n)
		}
	}
}
