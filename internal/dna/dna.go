// Package dna synthesizes the evaluation workloads: genomes with
// controllable repeat structure (substituting the paper's five real
// genomes, DESIGN.md §4) and single-end reads with substitution errors
// (substituting the wgsim simulator the paper uses).
//
// All sequences are rank-encoded (values 1..4, see internal/alphabet).
package dna

import (
	"fmt"
	"math/rand"
)

// GenomeConfig controls synthesis.
type GenomeConfig struct {
	// Length is the genome size in bases.
	Length int
	// GC is the combined probability of g and c (0..1); real genomes sit
	// around 0.37–0.64. 0 means 0.41, a typical vertebrate value.
	GC float64
	// MarkovBias in [0,1) skews the order-1 transition matrix toward
	// repeating the previous base, producing the local autocorrelation of
	// real DNA. 0 disables (i.i.d. bases).
	MarkovBias float64
	// RepeatFraction in [0,1) is the fraction of the genome covered by
	// copies of repeat units (transposon-like), planted with small
	// mutation rates. Real mammalian genomes are ~50% repeats, which is
	// what makes index-based mismatch search non-trivial.
	RepeatFraction float64
	// RepeatUnit is the repeat element length (0 = 300).
	RepeatUnit int
	// TandemFraction in [0,1) is the fraction of the genome covered by
	// tandem arrays of short units (microsatellites, 2-6 bp), the
	// self-similar loci where periodic reads arise — the regime in which
	// the paper's mismatch-information derivation is exercised hardest.
	TandemFraction float64
	// Seed drives the deterministic generator.
	Seed int64
}

// Generate synthesizes a genome.
func Generate(cfg GenomeConfig) ([]byte, error) {
	if cfg.Length <= 0 {
		return nil, fmt.Errorf("dna: non-positive length %d", cfg.Length)
	}
	if cfg.GC < 0 || cfg.GC >= 1 || cfg.MarkovBias < 0 || cfg.MarkovBias >= 1 ||
		cfg.RepeatFraction < 0 || cfg.RepeatFraction >= 1 ||
		cfg.TandemFraction < 0 || cfg.TandemFraction >= 1 ||
		cfg.RepeatFraction+cfg.TandemFraction >= 1 {
		return nil, fmt.Errorf("dna: config out of range %+v", cfg)
	}
	gc := cfg.GC
	if gc == 0 {
		gc = 0.41
	}
	unit := cfg.RepeatUnit
	if unit <= 0 {
		unit = 300
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Base distribution: a/t share (1-gc), c/g share gc.
	probs := [4]float64{(1 - gc) / 2, gc / 2, gc / 2, (1 - gc) / 2} // a c g t
	draw := func() byte {
		x := rng.Float64()
		for b := 0; b < 3; b++ {
			if x < probs[b] {
				return byte(b + 1)
			}
			x -= probs[b]
		}
		return 4
	}

	g := make([]byte, cfg.Length)
	prev := draw()
	g[0] = prev
	for i := 1; i < cfg.Length; i++ {
		if rng.Float64() < cfg.MarkovBias {
			g[i] = prev
		} else {
			g[i] = draw()
		}
		prev = g[i]
	}

	if cfg.RepeatFraction > 0 {
		plantRepeats(rng, g, cfg.RepeatFraction, unit, draw)
	}
	if cfg.TandemFraction > 0 {
		plantTandems(rng, g, cfg.TandemFraction)
	}
	return g, nil
}

// plantTandems overwrites random windows with tandem arrays of short
// units (microsatellite loci) until the requested coverage is met. Array
// lengths follow the 20–200 unit range typical of real STR loci, with a
// small per-copy slippage-like substitution rate.
func plantTandems(rng *rand.Rand, g []byte, fraction float64) {
	covered := 0
	target := int(fraction * float64(len(g)))
	const mutationRate = 0.01
	for covered < target {
		unitLen := 2 + rng.Intn(5) // 2..6 bp
		unit := make([]byte, unitLen)
		for i := range unit {
			unit[i] = byte(1 + rng.Intn(4))
		}
		copies := 20 + rng.Intn(181)
		arrayLen := unitLen * copies
		if arrayLen > len(g) {
			arrayLen = len(g)
		}
		pos := rng.Intn(len(g) - arrayLen + 1)
		for i := 0; i < arrayLen; i++ {
			if rng.Float64() < mutationRate {
				g[pos+i] = byte(1 + rng.Intn(4))
			} else {
				g[pos+i] = unit[i%unitLen]
			}
		}
		covered += arrayLen
	}
}

// plantRepeats overwrites random windows with mutated copies of a few
// repeat family consensus sequences until the requested coverage is met.
func plantRepeats(rng *rand.Rand, g []byte, fraction float64, unit int, draw func() byte) {
	if unit > len(g) {
		unit = len(g)
	}
	// Few families with many copies each, like real transposon families
	// (an ALU-like element reaches 10^5..10^6 copies in mammalian
	// genomes); one family per ~1024 units of genome keeps hundreds of
	// copies per family at megabase scale.
	families := 1 + len(g)/(unit*1024)
	consensus := make([][]byte, families)
	for f := range consensus {
		c := make([]byte, unit)
		for i := range c {
			c[i] = draw()
		}
		consensus[f] = c
	}
	covered := 0
	target := int(fraction * float64(len(g)))
	const mutationRate = 0.03
	for covered < target {
		c := consensus[rng.Intn(families)]
		pos := rng.Intn(len(g) - unit + 1)
		for i, b := range c {
			if rng.Float64() < mutationRate {
				g[pos+i] = byte(1 + rng.Intn(4))
			} else {
				g[pos+i] = b
			}
		}
		covered += unit
	}
}

// ReadConfig controls read simulation, mirroring wgsim's single-end
// substitution model.
type ReadConfig struct {
	// Length of each read.
	Length int
	// Count of reads to draw.
	Count int
	// ErrorRate is the per-base substitution probability (wgsim default
	// is 0.02).
	ErrorRate float64
	// ReverseComplement, when set, flips a coin per read and emits the
	// reverse complement half the time, as real sequencers do.
	ReverseComplement bool
	// Seed drives the deterministic generator.
	Seed int64
}

// Read is one simulated read with its provenance, used to score mappers.
type Read struct {
	Seq []byte
	// Pos is the 0-based start of the originating window in the genome.
	Pos int32
	// Errors is the number of substituted bases.
	Errors int
	// RC reports that Seq is the reverse complement of the window.
	RC bool
}

// Simulate draws reads uniformly from the genome.
func Simulate(genome []byte, cfg ReadConfig) ([]Read, error) {
	if cfg.Length <= 0 || cfg.Length > len(genome) {
		return nil, fmt.Errorf("dna: read length %d out of range for genome %d", cfg.Length, len(genome))
	}
	if cfg.Count < 0 || cfg.ErrorRate < 0 || cfg.ErrorRate >= 1 {
		return nil, fmt.Errorf("dna: config out of range %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	reads := make([]Read, cfg.Count)
	for i := range reads {
		pos := rng.Intn(len(genome) - cfg.Length + 1)
		seq := append([]byte(nil), genome[pos:pos+cfg.Length]...)
		errs := 0
		for j := range seq {
			if rng.Float64() < cfg.ErrorRate {
				old := seq[j]
				seq[j] = byte(1 + rng.Intn(4))
				if seq[j] != old {
					errs++
				}
			}
		}
		r := Read{Seq: seq, Pos: int32(pos), Errors: errs}
		if cfg.ReverseComplement && rng.Intn(2) == 1 {
			reverseComplement(r.Seq)
			r.RC = true
		}
		reads[i] = r
	}
	return reads, nil
}

func reverseComplement(seq []byte) {
	comp := [5]byte{0, 4, 3, 2, 1}
	for i, j := 0, len(seq)-1; i <= j; i, j = i+1, j-1 {
		seq[i], seq[j] = comp[seq[j]], comp[seq[i]]
	}
}
