package dna

import (
	"bytes"
	"math"
	"testing"

	"bwtmatch/internal/alphabet"
	"bwtmatch/internal/naive"
)

func TestGenerateBasics(t *testing.T) {
	g, err := Generate(GenomeConfig{Length: 10000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(g) != 10000 {
		t.Fatalf("len = %d", len(g))
	}
	for i, b := range g {
		if b < alphabet.A || b > alphabet.T {
			t.Fatalf("invalid rank %d at %d", b, i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := GenomeConfig{Length: 5000, Seed: 7, MarkovBias: 0.2, RepeatFraction: 0.3}
	a, _ := Generate(cfg)
	b, _ := Generate(cfg)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different genomes")
	}
	cfg.Seed = 8
	c, _ := Generate(cfg)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical genomes")
	}
}

func TestGenerateGCContent(t *testing.T) {
	g, _ := Generate(GenomeConfig{Length: 200000, GC: 0.6, Seed: 2})
	gc := 0
	for _, b := range g {
		if b == alphabet.C || b == alphabet.G {
			gc++
		}
	}
	frac := float64(gc) / float64(len(g))
	if math.Abs(frac-0.6) > 0.02 {
		t.Errorf("GC fraction %f, want ~0.6", frac)
	}
}

func TestGenerateRepeatsIncreaseSelfSimilarity(t *testing.T) {
	plain, _ := Generate(GenomeConfig{Length: 50000, Seed: 3})
	repeaty, _ := Generate(GenomeConfig{Length: 50000, Seed: 3, RepeatFraction: 0.6, RepeatUnit: 200})
	// Count how often a random 30-mer from the genome occurs more than
	// once: with heavy repeats this should be clearly higher.
	countMulti := func(g []byte) int {
		multi := 0
		for i := 0; i+30 < len(g); i += 997 {
			if len(naive.Find(g, g[i:i+30], 0)) > 1 {
				multi++
			}
		}
		return multi
	}
	if countMulti(repeaty) <= countMulti(plain) {
		t.Errorf("repeat planting did not raise self-similarity (%d vs %d)",
			countMulti(repeaty), countMulti(plain))
	}
}

func TestGenerateTandems(t *testing.T) {
	plain, _ := Generate(GenomeConfig{Length: 60000, Seed: 13})
	tandem, err := Generate(GenomeConfig{Length: 60000, Seed: 13, TandemFraction: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	// Count positions that repeat with a short period over a 24-base
	// window; tandem planting must raise this sharply.
	periodic := func(g []byte) int {
		count := 0
		for p := 0; p+24 < len(g); p += 101 {
			for period := 2; period <= 6; period++ {
				ok := true
				for i := 0; i < 24-period; i++ {
					if g[p+i] != g[p+i+period] {
						ok = false
						break
					}
				}
				if ok {
					count++
					break
				}
			}
		}
		return count
	}
	if periodic(tandem) <= periodic(plain)*2 {
		t.Errorf("tandem planting ineffective: %d vs %d windows", periodic(tandem), periodic(plain))
	}
}

func TestGenerateTandemValidation(t *testing.T) {
	if _, err := Generate(GenomeConfig{Length: 100, TandemFraction: -0.1}); err == nil {
		t.Error("negative tandem fraction accepted")
	}
	if _, err := Generate(GenomeConfig{Length: 100, RepeatFraction: 0.6, TandemFraction: 0.6}); err == nil {
		t.Error("fractions summing above 1 accepted")
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(GenomeConfig{Length: 0}); err == nil {
		t.Error("zero length accepted")
	}
	if _, err := Generate(GenomeConfig{Length: 10, GC: 1.5}); err == nil {
		t.Error("bad GC accepted")
	}
	if _, err := Generate(GenomeConfig{Length: 10, RepeatFraction: -0.1}); err == nil {
		t.Error("bad repeat fraction accepted")
	}
}

func TestSimulateBasics(t *testing.T) {
	g, _ := Generate(GenomeConfig{Length: 20000, Seed: 4})
	reads, err := Simulate(g, ReadConfig{Length: 100, Count: 50, ErrorRate: 0.02, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(reads) != 50 {
		t.Fatalf("count = %d", len(reads))
	}
	for _, r := range reads {
		if len(r.Seq) != 100 {
			t.Fatalf("read length %d", len(r.Seq))
		}
		if r.RC {
			t.Fatal("RC read without ReverseComplement enabled")
		}
		// The recorded error count must equal the Hamming distance to the
		// originating window.
		d := naive.Hamming(g[r.Pos:int(r.Pos)+100], r.Seq, 100)
		if d != r.Errors {
			t.Fatalf("recorded %d errors, actual %d", r.Errors, d)
		}
	}
}

func TestSimulateErrorRate(t *testing.T) {
	g, _ := Generate(GenomeConfig{Length: 50000, Seed: 6})
	reads, _ := Simulate(g, ReadConfig{Length: 200, Count: 500, ErrorRate: 0.05, Seed: 7})
	total := 0
	for _, r := range reads {
		total += r.Errors
	}
	// Expected errors per base: 0.05 * 3/4 (substitution may redraw the
	// same base).
	perBase := float64(total) / float64(500*200)
	if math.Abs(perBase-0.05*0.75) > 0.01 {
		t.Errorf("per-base error rate %f, want ~%f", perBase, 0.05*0.75)
	}
}

func TestSimulateReverseComplement(t *testing.T) {
	g, _ := Generate(GenomeConfig{Length: 5000, Seed: 8})
	reads, _ := Simulate(g, ReadConfig{Length: 50, Count: 200, ReverseComplement: true, Seed: 9})
	rc := 0
	for _, r := range reads {
		if r.RC {
			rc++
			// Undo and compare: double reverse complement is identity.
			seq := append([]byte(nil), r.Seq...)
			reverseComplement(seq)
			if naive.Hamming(g[r.Pos:int(r.Pos)+50], seq, 50) != r.Errors {
				t.Fatal("RC read does not map back to its window")
			}
		}
	}
	if rc == 0 || rc == 200 {
		t.Errorf("rc count %d, want a mix", rc)
	}
}

func TestSimulateValidation(t *testing.T) {
	g := []byte{1, 2, 3, 4}
	if _, err := Simulate(g, ReadConfig{Length: 5, Count: 1}); err == nil {
		t.Error("read longer than genome accepted")
	}
	if _, err := Simulate(g, ReadConfig{Length: 2, Count: -1}); err == nil {
		t.Error("negative count accepted")
	}
	if _, err := Simulate(g, ReadConfig{Length: 2, Count: 1, ErrorRate: 1.2}); err == nil {
		t.Error("bad error rate accepted")
	}
}
