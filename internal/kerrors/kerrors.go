// Package kerrors implements string matching with k errors — the
// Levenshtein-distance sibling of the k-mismatch problem the paper's §II
// surveys ("when the distance function is the Levenshtein distance, the
// problem is known as the string matching with k errors"). It is an
// extension module: the paper's contribution covers Hamming distance
// only, but a DNA search library is routinely asked for small-indel
// tolerance as well.
//
// Two matchers are provided: the classic O(nm) dynamic program (the
// oracle) and the O(kn) diagonal-banded variant of Ukkonen's cutoff
// algorithm.
package kerrors

import "errors"

// Match is one k-errors occurrence: pattern matches text[Start:End) with
// Distance edit operations (substitutions, insertions, deletions).
type Match struct {
	// End is the exclusive end position of the occurrence in the text.
	End int32
	// Distance is the minimal edit distance over all occurrences ending
	// at End.
	Distance int
}

// ErrInput reports unusable arguments.
var ErrInput = errors.New("kerrors: invalid input")

// FindDP is the textbook dynamic program (the paper's §II recurrence
// d_{i,j} = min{d_{i-1,j}+1, d_{i,j-1}+1, d_{i-1,j-1}+[r_i != s_j]} with
// free start positions): it reports every text position where some
// substring ending there is within k edits of the pattern. O(nm) time,
// O(m) space. Used as the oracle for FindBanded.
func FindDP(text, pattern []byte, k int) ([]Match, error) {
	m := len(pattern)
	if m == 0 || k < 0 {
		return nil, ErrInput
	}
	prev := make([]int, m+1)
	cur := make([]int, m+1)
	for i := 0; i <= m; i++ {
		prev[i] = i
	}
	var out []Match
	for j := 1; j <= len(text); j++ {
		cur[0] = 0 // occurrences may start anywhere
		for i := 1; i <= m; i++ {
			cost := 1
			if pattern[i-1] == text[j-1] {
				cost = 0
			}
			cur[i] = min3(prev[i]+1, cur[i-1]+1, prev[i-1]+cost)
		}
		if cur[m] <= k {
			out = append(out, Match{End: int32(j), Distance: cur[m]})
		}
		prev, cur = cur, prev
	}
	return out, nil
}

// FindBanded is Ukkonen's cutoff variant: only the prefix of each DP
// column whose values can still reach ≤ k is evaluated. Expected O(kn)
// time on random text, identical results to FindDP.
func FindBanded(text, pattern []byte, k int) ([]Match, error) {
	m := len(pattern)
	if m == 0 || k < 0 {
		return nil, ErrInput
	}
	if k >= m {
		// Deleting the whole pattern costs m <= k: every position ends a
		// trivial occurrence, matching FindDP's output shape.
		out := make([]Match, 0, len(text))
		full, err := FindDP(text, pattern, k)
		if err != nil {
			return nil, err
		}
		out = append(out, full...)
		return out, nil
	}
	prev := make([]int, m+1)
	cur := make([]int, m+1)
	for i := 0; i <= m; i++ {
		prev[i] = i
	}
	// lact is the last active row: the deepest row whose value may still
	// be relevant (≤ k).
	lact := k
	var out []Match
	for j := 1; j <= len(text); j++ {
		cur[0] = 0
		top := lact + 1
		if top > m {
			top = m
		}
		for i := 1; i <= top; i++ {
			cost := 1
			if pattern[i-1] == text[j-1] {
				cost = 0
			}
			cur[i] = min3(prev[i]+1, cur[i-1]+1, prev[i-1]+cost)
		}
		// Re-establish the last-active invariant.
		if top < m {
			// Row top+1 can only be entered from above.
			cur[top+1] = cur[top] + 1
			top++
		}
		lact = top
		for lact > 0 && cur[lact] > k {
			lact--
		}
		if lact == m && cur[m] <= k {
			out = append(out, Match{End: int32(j), Distance: cur[m]})
		}
		for i := lact + 1; i <= top && i <= m; i++ {
			prev[i] = k + 1 // poison rows beyond the band for the next column
		}
		copy(prev[:lact+1], cur[:lact+1])
	}
	return out, nil
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
