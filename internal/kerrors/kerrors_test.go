package kerrors

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomRanks(rng *rand.Rand, n int) []byte {
	t := make([]byte, n)
	for i := range t {
		t[i] = byte(1 + rng.Intn(4))
	}
	return t
}

func equalMatches(a, b []Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestFindDPExact(t *testing.T) {
	// k = 0 reduces to exact matching (End = start + m).
	text := []byte("abcabcab")
	got, err := FindDP(text, []byte("abc"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].End != 3 || got[1].End != 6 {
		t.Fatalf("got %v", got)
	}
}

func TestFindDPSubstitution(t *testing.T) {
	got, _ := FindDP([]byte("axc"), []byte("abc"), 1)
	found := false
	for _, m := range got {
		if m.End == 3 && m.Distance == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("substitution not found: %v", got)
	}
}

func TestFindDPIndel(t *testing.T) {
	// Deletion in the text: pattern abc vs text "ac".
	got, _ := FindDP([]byte("ac"), []byte("abc"), 1)
	found := false
	for _, m := range got {
		if m.End == 2 && m.Distance == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("deletion not found: %v", got)
	}
	// Insertion in the text: pattern abc vs "abxc".
	got, _ = FindDP([]byte("abxc"), []byte("abc"), 1)
	found = false
	for _, m := range got {
		if m.End == 4 && m.Distance == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("insertion not found: %v", got)
	}
}

func TestValidation(t *testing.T) {
	if _, err := FindDP([]byte("a"), nil, 1); err == nil {
		t.Error("empty pattern accepted")
	}
	if _, err := FindBanded([]byte("a"), []byte("a"), -1); err == nil {
		t.Error("negative k accepted")
	}
}

func TestBandedAgainstDP(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	for trial := 0; trial < 120; trial++ {
		text := randomRanks(rng, 10+rng.Intn(300))
		m := 1 + rng.Intn(25)
		k := rng.Intn(5)
		var pattern []byte
		if rng.Intn(2) == 0 && len(text) > m {
			p := rng.Intn(len(text) - m)
			pattern = append([]byte(nil), text[p:p+m]...)
			for f := 0; f < k; f++ {
				pattern[rng.Intn(m)] = byte(1 + rng.Intn(4))
			}
		} else {
			pattern = randomRanks(rng, m)
		}
		want, err := FindDP(text, pattern, k)
		if err != nil {
			t.Fatal(err)
		}
		got, err := FindBanded(text, pattern, k)
		if err != nil {
			t.Fatal(err)
		}
		if !equalMatches(got, want) {
			t.Fatalf("banded disagrees (text=%v pat=%v k=%d)\ngot  %v\nwant %v",
				text, pattern, k, got, want)
		}
	}
}

func TestBandedQuick(t *testing.T) {
	f := func(seed int64, n16 uint16, m8, k8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		text := randomRanks(rng, 1+int(n16)%200)
		pattern := randomRanks(rng, 1+int(m8)%15)
		k := int(k8) % 6
		want, err1 := FindDP(text, pattern, k)
		got, err2 := FindBanded(text, pattern, k)
		if err1 != nil || err2 != nil {
			return false
		}
		return equalMatches(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestBandedKAtLeastM(t *testing.T) {
	text := randomRanks(rand.New(rand.NewSource(112)), 30)
	want, _ := FindDP(text, []byte{1, 2}, 2)
	got, _ := FindBanded(text, []byte{1, 2}, 2)
	if !equalMatches(got, want) {
		t.Fatalf("k>=m: got %v, want %v", got, want)
	}
}

func BenchmarkBandedVsDP(b *testing.B) {
	rng := rand.New(rand.NewSource(113))
	text := randomRanks(rng, 1<<16)
	pattern := randomRanks(rng, 100)
	b.Run("dp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			FindDP(text, pattern, 3)
		}
	})
	b.Run("banded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			FindBanded(text, pattern, 3)
		}
	})
}
