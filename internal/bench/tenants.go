package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"bwtmatch"
	"bwtmatch/internal/alphabet"
	"bwtmatch/internal/dna"
	"bwtmatch/internal/obs"
)

// TenantSummary is the multi-tenant accounting block of a RunTenants
// report: how many bytes the fleet of tenant indexes costs under the
// chosen layout, against the budget of one standalone index. The
// headline number is BudgetRatio — the relative layout's claim is that
// N low-divergence tenants fit in under 2× a single index's bytes,
// where the mono layout pays ~N×.
type TenantSummary struct {
	// Mode is "mono" (one standalone index per tenant) or "relative"
	// (one shared base plus a delta per tenant).
	Mode string `json:"mode"`
	// Tenants is the fleet size; DivergencePct the per-tenant
	// substitution rate applied to the base genome (percent of bases).
	Tenants       int     `json:"tenants"`
	DivergencePct float64 `json:"divergence_pct"`
	// BaseBytes is the shared base index's resident size (relative mode
	// only; zero for mono). TenantBytes is each tenant's own cost: the
	// standalone index size in mono mode, the delta size in relative
	// mode. TotalBytes = BaseBytes + Σ TenantBytes.
	BaseBytes   int64   `json:"base_bytes"`
	TenantBytes []int64 `json:"tenant_bytes"`
	TotalBytes  int64   `json:"total_bytes"`
	// SingleIndexBytes is the budget yardstick: the size of one
	// standalone tenant index. BudgetRatio = TotalBytes/SingleIndexBytes.
	SingleIndexBytes int64   `json:"single_index_bytes"`
	BudgetRatio      float64 `json:"budget_ratio"`
	// Equivalent reports whether every probed search returned
	// byte-identical results between the relative tenant and a
	// standalone build of the same text (relative mode; trivially true
	// with zero probes in mono mode). EquivalenceProbes counts the
	// (tenant, read, k) combinations compared.
	Equivalent        bool `json:"equivalent"`
	EquivalenceProbes int  `json:"equivalence_probes"`
	// BuildNS is the wall time to build the whole fleet (base included
	// in relative mode).
	BuildNS int64 `json:"build_ns"`
}

// tenantProbeKs are the mismatch budgets the equivalence check sweeps.
var tenantProbeKs = []int{0, 1, 2, 3}

// RunTenants benchmarks the multi-tenant serving layouts: one base
// genome, `tenants` variants of it at divergencePct substitutions, each
// variant served either by its own standalone index (relative=false) or
// by a RelativeIndex delta against the shared base (relative=true). It
// writes one kmbench/v1 JSONReport to w whose cells (experiment
// "tenant-search") time the search grid through tenant 0's serving
// index, and whose Tenant block carries the byte accounting — so a
// mono/relative report pair is diffable with kmbenchdiff and the budget
// claim is auditable from the JSON alone.
//
// In relative mode every tenant is additionally built standalone and
// probed for result equivalence; the report's Tenant.Equivalent field
// is the AND over all probes.
func RunTenants(w io.Writer, cfg Config, tenants int, divergencePct float64, relative bool, rounds int, tr obs.Tracer) error {
	cfg.normalize()
	if rounds < 1 {
		rounds = 1
	}
	if tenants < 1 {
		tenants = 8
	}
	if divergencePct <= 0 {
		divergencePct = 1.0
	}
	spec := Specs(cfg.Scale)[0]
	g, err := spec.generate()
	if err != nil {
		return err
	}
	mode := "mono"
	if relative {
		mode = "relative"
	}
	sum := TenantSummary{Mode: mode, Tenants: tenants, DivergencePct: divergencePct}

	buildStart := time.Now()
	var base *bwtmatch.Index
	if relative {
		base, err = bwtmatch.New(alphabet.Decode(g))
		if err != nil {
			return err
		}
		sum.BaseBytes = int64(base.SizeBytes())
	}
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x7e4a))
	// Tenant genomes are derived in rank space so reads can be simulated
	// from them with the same wgsim model the other experiments use.
	tenantRanks := make([][]byte, tenants)
	serving := make([]bwtmatch.Matcher, tenants)
	standalone := make([]*bwtmatch.Index, tenants)
	for i := range tenantRanks {
		tg := mutateRanks(rng, g, divergencePct/100)
		tenantRanks[i] = tg
		text := alphabet.Decode(tg)
		if relative {
			rx, err := bwtmatch.NewRelative(base, text)
			if err != nil {
				return fmt.Errorf("bench: tenant %d relative build: %w", i, err)
			}
			serving[i] = rx
			sum.TenantBytes = append(sum.TenantBytes, int64(rx.DeltaBytes()))
		}
		std, err := bwtmatch.New(text)
		if err != nil {
			return fmt.Errorf("bench: tenant %d standalone build: %w", i, err)
		}
		standalone[i] = std
		if !relative {
			serving[i] = std
			sum.TenantBytes = append(sum.TenantBytes, int64(std.SizeBytes()))
		}
	}
	sum.BuildNS = time.Since(buildStart).Nanoseconds()
	sum.TotalBytes = sum.BaseBytes
	for _, b := range sum.TenantBytes {
		sum.TotalBytes += b
	}
	sum.SingleIndexBytes = int64(standalone[0].SizeBytes())
	if sum.SingleIndexBytes > 0 {
		sum.BudgetRatio = float64(sum.TotalBytes) / float64(sum.SingleIndexBytes)
	}

	reads, err := dna.Simulate(tenantRanks[0], dna.ReadConfig{
		Length: 100, Count: cfg.Reads, ErrorRate: 0.02, Seed: cfg.Seed,
	})
	if err != nil {
		return err
	}
	probes := make([][]byte, len(reads))
	for i, r := range reads {
		probes[i] = alphabet.Decode(r.Seq)
	}

	sum.Equivalent = true
	if relative {
		for i, rx := range serving {
			for _, p := range probes {
				for _, k := range tenantProbeKs {
					got, _, err := rx.SearchMethod(p, k, bwtmatch.AlgorithmA)
					if err != nil {
						return err
					}
					want, _, err := standalone[i].SearchMethod(p, k, bwtmatch.AlgorithmA)
					if err != nil {
						return err
					}
					sum.EquivalenceProbes++
					if !matchesEqual(got, want) {
						sum.Equivalent = false
					}
				}
			}
		}
	}

	rep := JSONReport{
		Schema:          "kmbench/v1",
		Scale:           cfg.Scale,
		Reads:           len(probes),
		Seed:            cfg.Seed,
		Rounds:          rounds,
		GOOS:            runtime.GOOS,
		GOARCH:          runtime.GOARCH,
		GoVersion:       runtime.Version(),
		BuildNS:         sum.BuildNS,
		BuildGOMAXPROCS: runtime.GOMAXPROCS(0),
		Tenant:          &sum,
	}
	for _, k := range jsonKs {
		for _, m := range jsonMethods {
			if tr != nil {
				tr.Begin(fmt.Sprintf("tenant-search/%v/k=%d", m, k))
			}
			cell, err := timeCell(serving[0], probes, k, m, rounds)
			if err != nil {
				return err
			}
			cell.Experiment = "tenant-search"
			cell.Genome = spec.Name + "-tenant"
			if tr != nil {
				tr.End(obs.Arg{Key: "ns_per_read", Val: cell.NSPerRead})
			}
			rep.Results = append(rep.Results, cell)
		}
	}
	rep.PeakRSSBytes = obs.PeakRSS()
	rep.PeakBuildRSS = rep.PeakRSSBytes
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// mutateRanks returns a copy of the rank-encoded genome g with rate·len
// point substitutions (each to one of the three other bases).
func mutateRanks(rng *rand.Rand, g []byte, rate float64) []byte {
	out := make([]byte, len(g))
	copy(out, g)
	edits := int(float64(len(g)) * rate)
	for i := 0; i < edits; i++ {
		p := rng.Intn(len(out))
		// Base ranks are 1..4 (alphabet.A..alphabet.T, 0 is the
		// sentinel); rotate to one of the other three bases.
		out[p] = byte((int(out[p])-1+1+rng.Intn(3))%4 + 1)
	}
	return out
}

func matchesEqual(a, b []bwtmatch.Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
