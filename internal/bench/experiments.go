package bench

import (
	"fmt"
	"io"
	"time"

	"bwtmatch"
)

// Table1 reproduces Table 1 (genome characteristics) for the synthetic
// corpus, adding index size and construction time columns.
func Table1(w io.Writer, cfg Config) error {
	fmt.Fprintf(w, "# Table 1: characteristics of genomes (synthetic substitutes, scale=%d)\n", cfg.Scale)
	fmt.Fprintf(w, "%-16s %-22s %14s %12s %12s %10s\n",
		"genome", "substitutes", "paper-bases", "bases", "index-bytes", "build")
	for _, spec := range Specs(cfg.Scale) {
		c, err := BuildCorpus(spec)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-16s %-22s %14d %12d %12d %10v\n",
			spec.Name, spec.PaperName, spec.PaperBases, spec.Bases,
			c.Index.SizeBytes(), c.BuildTime.Round(time.Millisecond))
	}
	return nil
}

// Fig11a reproduces Fig. 11(a): average matching time per read against
// varying k, on the largest genome, reads of length 100.
func Fig11a(w io.Writer, cfg Config) error {
	spec := Specs(cfg.Scale)[0]
	c, err := BuildCorpus(spec)
	if err != nil {
		return err
	}
	reads, err := c.Reads(100, cfg.Reads, cfg.Seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "# Fig 11(a): avg time per read (ms) vs k; genome=%s (%d bases), len=100, reads=%d\n",
		spec.Name, spec.Bases, len(reads))
	fmt.Fprintf(w, "%-4s", "k")
	for _, m := range Methods {
		fmt.Fprintf(w, " %12s", m)
	}
	fmt.Fprintln(w)
	for _, k := range []int{1, 2, 3, 4, 5, 6, 8, 10} {
		fmt.Fprintf(w, "%-4d", k)
		for _, m := range Methods {
			d, _, err := TimeMethod(c.Index, reads, k, m)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " %12.3f", msPerRead(d, len(reads)))
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Fig11b reproduces Fig. 11(b): average matching time per read against
// read length, k = 5.
func Fig11b(w io.Writer, cfg Config) error {
	spec := Specs(cfg.Scale)[0]
	c, err := BuildCorpus(spec)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "# Fig 11(b): avg time per read (ms) vs read length; genome=%s, k=5, reads=%d\n",
		spec.Name, cfg.Reads)
	fmt.Fprintf(w, "%-6s", "len")
	for _, m := range Methods {
		fmt.Fprintf(w, " %12s", m)
	}
	fmt.Fprintln(w)
	for _, length := range []int{50, 100, 150, 200, 250, 300} {
		reads, err := c.Reads(length, cfg.Reads, cfg.Seed+int64(length))
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-6d", length)
		for _, m := range Methods {
			d, _, err := TimeMethod(c.Index, reads, 5, m)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " %12.3f", msPerRead(d, len(reads)))
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Table2 reproduces Table 2: the number of M-tree leaf nodes (n′) for the
// paper's k/length grid.
func Table2(w io.Writer, cfg Config) error {
	spec := Specs(cfg.Scale)[0]
	c, err := BuildCorpus(spec)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "# Table 2: number of leaf nodes of M-trees; genome=%s (%d bases), reads=%d\n",
		spec.Name, spec.Bases, cfg.Reads)
	fmt.Fprintf(w, "%-12s %15s %15s\n", "k/len", "total-leaves", "avg-per-read")
	grid := []struct{ k, length int }{{5, 50}, {10, 100}, {20, 150}, {30, 200}}
	for _, g := range grid {
		reads, err := c.Reads(g.length, cfg.Reads, cfg.Seed+int64(g.length))
		if err != nil {
			return err
		}
		total := 0
		for _, r := range reads {
			n, err := c.Index.MTreeLeaves(r, g.k)
			if err != nil {
				return err
			}
			total += n
		}
		fmt.Fprintf(w, "%2d/%-9d %15d %15d\n", g.k, g.length, total, total/len(reads))
	}
	return nil
}

// Fig12 is the reconstructed per-genome comparison (the paper's text
// truncates after introducing it): all five genomes, k = 5, length 100.
func Fig12(w io.Writer, cfg Config) error {
	fmt.Fprintf(w, "# Fig 12 (reconstructed): avg time per read (ms) per genome; k=5, len=100, reads=%d\n", cfg.Reads)
	fmt.Fprintf(w, "%-16s %10s", "genome", "bases")
	for _, m := range Methods {
		fmt.Fprintf(w, " %12s", m)
	}
	fmt.Fprintln(w)
	for _, spec := range Specs(cfg.Scale) {
		c, err := BuildCorpus(spec)
		if err != nil {
			return err
		}
		reads, err := c.Reads(100, cfg.Reads, cfg.Seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-16s %10d", spec.Name, spec.Bases)
		for _, m := range Methods {
			d, _, err := TimeMethod(c.Index, reads, 5, m)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " %12.3f", msPerRead(d, len(reads)))
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Fig13 is the reconstructed space/time trade-off of the rankall sampling
// rate (§III-A): index size per base and Algorithm A query time.
func Fig13(w io.Writer, cfg Config) error {
	spec := Specs(cfg.Scale)[0]
	fmt.Fprintf(w, "# Fig 13 (reconstructed): rankall sampling trade-off; genome=%s, k=5, len=100, reads=%d\n",
		spec.Name, cfg.Reads)
	fmt.Fprintf(w, "%-10s %14s %12s %12s\n", "layout", "index-bytes", "bits/base", "A()-ms/read")
	type variant struct {
		name string
		opts []bwtmatch.Option
	}
	variants := []variant{
		{"rate4", []bwtmatch.Option{bwtmatch.WithOccRate(4)}},
		{"rate16", []bwtmatch.Option{bwtmatch.WithOccRate(16)}},
		{"rate64", []bwtmatch.Option{bwtmatch.WithOccRate(64)}},
		{"rate128", []bwtmatch.Option{bwtmatch.WithOccRate(128)}},
		{"twolevel", []bwtmatch.Option{bwtmatch.WithTwoLevelOcc()}},
		{"2lv+packed", []bwtmatch.Option{bwtmatch.WithTwoLevelOcc(), bwtmatch.WithPackedBWT()}},
	}
	for _, v := range variants {
		c, err := BuildCorpus(spec, v.opts...)
		if err != nil {
			return err
		}
		reads, err := c.Reads(100, cfg.Reads, cfg.Seed)
		if err != nil {
			return err
		}
		d, _, err := TimeMethod(c.Index, reads, 5, bwtmatch.AlgorithmA)
		if err != nil {
			return err
		}
		sz := c.Index.SizeBytes()
		fmt.Fprintf(w, "%-10s %14d %12.2f %12.3f\n",
			v.name, sz, float64(sz*8)/float64(spec.Bases), msPerRead(d, len(reads)))
	}
	return nil
}

// Ablation quantifies the two design choices DESIGN.md calls out: the
// M-tree memoization (Algorithm A vs the plain S-tree) and the φ(i)
// heuristic (pruned vs unpruned S-tree).
func Ablation(w io.Writer, cfg Config) error {
	spec := Specs(cfg.Scale)[0]
	c, err := BuildCorpus(spec)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "# Ablations (2x2: φ bound x M-tree memo): genome=%s, len=100, reads=%d\n", spec.Name, cfg.Reads)
	fmt.Fprintf(w, "%-4s %14s %14s %14s %14s\n", "k", "S-tree(ms)", "+phi(ms)", "+memo(ms)", "A()(ms)")
	for _, k := range []int{3, 5} {
		reads, err := c.Reads(100, cfg.Reads, cfg.Seed)
		if err != nil {
			return err
		}
		methods := []bwtmatch.Method{
			bwtmatch.STree, bwtmatch.BWTBaseline,
			bwtmatch.AlgorithmANoPhi, bwtmatch.AlgorithmA,
		}
		row := make([]float64, len(methods))
		for i, m := range methods {
			d, _, err := TimeMethod(c.Index, reads, k, m)
			if err != nil {
				return err
			}
			row[i] = msPerRead(d, len(reads))
		}
		fmt.Fprintf(w, "%-4d %14.3f %14.3f %14.3f %14.3f\n", k, row[0], row[1], row[2], row[3])
	}
	return nil
}

// SeedExt is the extension experiment: the index-based seed-and-extend
// matcher against the paper's four methods across k, demonstrating the
// composition of the paper's index with its filter baseline.
func SeedExt(w io.Writer, cfg Config) error {
	spec := Specs(cfg.Scale)[0]
	c, err := BuildCorpus(spec)
	if err != nil {
		return err
	}
	reads, err := c.Reads(100, cfg.Reads, cfg.Seed)
	if err != nil {
		return err
	}
	methods := append(append([]bwtmatch.Method(nil), Methods...), bwtmatch.Seed)
	fmt.Fprintf(w, "# Extension: index-based seed-and-extend; genome=%s, len=100, reads=%d\n",
		spec.Name, len(reads))
	fmt.Fprintf(w, "%-4s", "k")
	for _, m := range methods {
		fmt.Fprintf(w, " %12s", m)
	}
	fmt.Fprintln(w)
	for _, k := range []int{1, 2, 3, 4, 5} {
		fmt.Fprintf(w, "%-4d", k)
		for _, m := range methods {
			d, _, err := TimeMethod(c.Index, reads, k, m)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " %12.3f", msPerRead(d, len(reads)))
		}
		fmt.Fprintln(w)
	}
	return nil
}

func msPerRead(d time.Duration, reads int) float64 {
	if reads == 0 {
		return 0
	}
	return float64(d.Microseconds()) / 1000 / float64(reads)
}
