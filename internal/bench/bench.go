// Package bench reconstructs the paper's evaluation (§V): the five-genome
// corpus of Table 1 (synthetic substitutes, DESIGN.md §4), the wgsim-like
// read workloads, and one driver per table/figure that prints the same
// rows/series the paper reports. Both cmd/kmbench and the root package's
// testing.B benchmarks are thin wrappers over this package.
package bench

import (
	"fmt"
	"io"
	"time"

	"bwtmatch"
	"bwtmatch/internal/alphabet"
	"bwtmatch/internal/dna"
)

// GenomeSpec describes one synthetic genome of the Table 1 corpus.
type GenomeSpec struct {
	Name string
	// PaperName and PaperBases record what the spec substitutes.
	PaperName  string
	PaperBases int64
	Bases      int
	GC         float64
	MarkovBias float64
	Repeats    float64
	Tandems    float64
	Seed       int64
}

// Specs returns the five-genome corpus. Lengths are the DESIGN.md base
// sizes divided by scale (>= 1); scale 1 yields a 16 MiB largest genome.
func Specs(scale int) []GenomeSpec {
	if scale < 1 {
		scale = 1
	}
	mi := 1 << 20
	return []GenomeSpec{
		{Name: "rat-sim", PaperName: "Rat (Rnor_6.0)", PaperBases: 2_909_701_677,
			Bases: 16 * mi / scale, GC: 0.42, MarkovBias: 0.15, Repeats: 0.40, Tandems: 0.03, Seed: 1001},
		{Name: "zebrafish-sim", PaperName: "Zebra fish (GRCz10)", PaperBases: 1_464_443_456,
			Bases: 8 * mi / scale, GC: 0.37, MarkovBias: 0.15, Repeats: 0.50, Tandems: 0.04, Seed: 1002},
		{Name: "ratchr1-sim", PaperName: "Rat chr1 (Rnor_6.0)", PaperBases: 290_094_217,
			Bases: 4 * mi / scale, GC: 0.42, MarkovBias: 0.15, Repeats: 0.40, Tandems: 0.03, Seed: 1003},
		{Name: "celegans-sim", PaperName: "C. elegans (WBcel235)", PaperBases: 100_286_401,
			Bases: 2 * mi / scale, GC: 0.35, MarkovBias: 0.10, Repeats: 0.17, Tandems: 0.02, Seed: 1004},
		{Name: "cmerolae-sim", PaperName: "C. merolae (ASM9120v1)", PaperBases: 16_728_967,
			Bases: 1 * mi / scale, GC: 0.55, MarkovBias: 0.10, Repeats: 0.10, Tandems: 0.01, Seed: 1005},
	}
}

// Corpus is one generated genome with its search index.
type Corpus struct {
	Spec      GenomeSpec
	Ranks     []byte
	Index     *bwtmatch.Index
	BuildTime time.Duration
}

// generate produces the spec's genome (rank-encoded), deterministically.
func (spec GenomeSpec) generate() ([]byte, error) {
	return dna.Generate(dna.GenomeConfig{
		Length:         spec.Bases,
		GC:             spec.GC,
		MarkovBias:     spec.MarkovBias,
		RepeatFraction: spec.Repeats,
		TandemFraction: spec.Tandems,
		Seed:           spec.Seed,
	})
}

// BuildCorpus generates the genome and constructs its index.
func BuildCorpus(spec GenomeSpec, opts ...bwtmatch.Option) (*Corpus, error) {
	g, err := spec.generate()
	if err != nil {
		return nil, err
	}
	return buildCorpusFrom(spec, g, opts...)
}

// buildCorpusFrom indexes an already generated genome — RunJSON uses it
// to reuse the genome it stream-built from before the in-memory builds.
func buildCorpusFrom(spec GenomeSpec, g []byte, opts ...bwtmatch.Option) (*Corpus, error) {
	start := time.Now()
	idx, err := bwtmatch.New(alphabet.Decode(g), opts...)
	if err != nil {
		return nil, err
	}
	return &Corpus{Spec: spec, Ranks: g, Index: idx, BuildTime: time.Since(start)}, nil
}

// Reads simulates count reads of the given length (ASCII DNA), following
// the paper's wgsim default single-read model.
func (c *Corpus) Reads(length, count int, seed int64) ([][]byte, error) {
	rs, err := dna.Simulate(c.Ranks, dna.ReadConfig{
		Length: length, Count: count, ErrorRate: 0.02, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	out := make([][]byte, len(rs))
	for i, r := range rs {
		out[i] = alphabet.Decode(r.Seq)
	}
	return out, nil
}

// Methods compared in the paper's figures, in its presentation order.
var Methods = []bwtmatch.Method{
	bwtmatch.BWTBaseline, bwtmatch.Amir, bwtmatch.Cole, bwtmatch.AlgorithmA,
}

// TimeMethod runs every read at the given k and returns total wall time
// and total matches (so the work cannot be optimized away).
func TimeMethod(idx *bwtmatch.Index, reads [][]byte, k int, method bwtmatch.Method) (time.Duration, int, error) {
	start := time.Now()
	total := 0
	for _, r := range reads {
		ms, _, err := idx.SearchMethod(r, k, method)
		if err != nil {
			return 0, 0, err
		}
		total += len(ms)
	}
	return time.Since(start), total, nil
}

// Config bundles experiment-wide knobs.
type Config struct {
	// Scale divides the corpus sizes; 1 reproduces DESIGN.md's 16 MiB
	// largest genome. cmd/kmbench defaults to 8, the testing.B wrappers
	// to 16.
	Scale int
	// Reads per configuration (the paper uses 50).
	Reads int
	// Seed offsets read simulation.
	Seed int64
}

// DefaultConfig mirrors the paper's 50-read workloads at scale 8.
func DefaultConfig() Config { return Config{Scale: 8, Reads: 50, Seed: 42} }

func (cfg *Config) normalize() {
	if cfg.Scale < 1 {
		cfg.Scale = 8
	}
	if cfg.Reads <= 0 {
		cfg.Reads = 50
	}
}

// Run dispatches one experiment by id (see EXPERIMENTS.md) and prints its
// rows to w.
func Run(id string, w io.Writer, cfg Config) error {
	cfg.normalize()
	switch id {
	case "table1":
		return Table1(w, cfg)
	case "table2":
		return Table2(w, cfg)
	case "fig11a":
		return Fig11a(w, cfg)
	case "fig11b":
		return Fig11b(w, cfg)
	case "fig12":
		return Fig12(w, cfg)
	case "fig13":
		return Fig13(w, cfg)
	case "ablation":
		return Ablation(w, cfg)
	case "seedext":
		return SeedExt(w, cfg)
	default:
		return fmt.Errorf("bench: unknown experiment %q", id)
	}
}

// Experiments lists the valid ids for Run.
func Experiments() []string {
	return []string{"table1", "table2", "fig11a", "fig11b", "fig12", "fig13", "ablation", "seedext"}
}
