package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"bwtmatch"
	"bwtmatch/internal/alphabet"
	"bwtmatch/internal/obs"
)

// JSONResult is one (method, k) cell of the machine-readable search
// benchmark: timing plus the paper's work counters, so trajectory files
// record *why* a run was fast or slow, not just how fast it was.
type JSONResult struct {
	Experiment  string  `json:"experiment"`
	Genome      string  `json:"genome"`
	Method      string  `json:"method"`
	K           int     `json:"k"`
	ReadLen     int     `json:"read_len"`
	Reads       int     `json:"reads"`
	NSPerRead   int64   `json:"ns_per_read"`        // best of Rounds
	LocateNS    int64   `json:"locate_ns_per_read"` // Σ locate wall time / reads, best round
	MSPerRead   float64 `json:"ms_per_read"`
	Matches     int     `json:"matches"`
	MTreeLeaves int64   `json:"mtree_leaves"` // Σ n′ across reads
	MemoHits    int64   `json:"memo_hits"`    // Σ merge short-circuits
	StepCalls   int64   `json:"step_calls"`   // Σ BWT rank operations
}

// JSONReport is the top-level document emitted by kmbench -json.
type JSONReport struct {
	Schema    string `json:"schema"` // "kmbench/v1"
	Scale     int    `json:"scale"`
	Reads     int    `json:"reads"`
	Seed      int64  `json:"seed"`
	Rounds    int    `json:"rounds"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	GoVersion string `json:"go_version"`
	// BuildNS and ShardedBuildNS time index construction over the same
	// text: one monolithic build versus BuildShards concurrent per-shard
	// builds (sharding is what parallelizes SA-IS; see DESIGN.md §10).
	// On a 1-CPU machine the sharded build cannot beat the monolithic
	// one — BuildGOMAXPROCS records the parallelism that was available.
	BuildNS         int64        `json:"build_ns"`
	ShardedBuildNS  int64        `json:"sharded_build_ns"`
	BuildShards     int          `json:"build_shards"`
	BuildGOMAXPROCS int          `json:"build_gomaxprocs"`
	PeakRSSBytes    int64        `json:"peak_rss_bytes"`
	Results         []JSONResult `json:"results"`
}

// jsonMethods are the BWT-path matchers the search benchmarks compare
// (the methods the Tracer instruments), in ablation order.
var jsonMethods = []bwtmatch.Method{
	bwtmatch.STree, bwtmatch.BWTBaseline,
	bwtmatch.AlgorithmANoPhi, bwtmatch.AlgorithmA,
}

// jsonKs are the mismatch budgets swept per method.
var jsonKs = []int{1, 2, 3}

// jsonShards is the shard count of the sharded-layout cells.
const jsonShards = 4

// RunJSON runs the search benchmark grid (jsonMethods × jsonKs, reads
// of length 100 on the largest genome) rounds times per cell, keeps the
// best wall time, and writes one JSONReport to w. When tr is non-nil
// each cell is wrapped in a trace span, so a -json -trace run yields a
// timeline of the whole grid.
func RunJSON(w io.Writer, cfg Config, rounds int, tr obs.Tracer) error {
	cfg.normalize()
	if rounds < 1 {
		rounds = 1
	}
	spec := Specs(cfg.Scale)[0]
	c, err := BuildCorpus(spec)
	if err != nil {
		return err
	}
	reads, err := c.Reads(100, cfg.Reads, cfg.Seed)
	if err != nil {
		return err
	}
	// The sharded counterpart: same text, jsonShards concurrent per-shard
	// builds, searched through the same grid so the report carries
	// sharded-vs-monolithic cells for every (method, k).
	text := alphabet.Decode(c.Ranks)
	shardStart := time.Now()
	sharded, err := bwtmatch.NewSharded(text,
		bwtmatch.WithShards(jsonShards), bwtmatch.WithMaxPatternLen(128))
	if err != nil {
		return err
	}
	shardedBuild := time.Since(shardStart)

	rep := JSONReport{
		Schema:          "kmbench/v1",
		Scale:           cfg.Scale,
		Reads:           len(reads),
		Seed:            cfg.Seed,
		Rounds:          rounds,
		GOOS:            runtime.GOOS,
		GOARCH:          runtime.GOARCH,
		GoVersion:       runtime.Version(),
		BuildNS:         c.BuildTime.Nanoseconds(),
		ShardedBuildNS:  shardedBuild.Nanoseconds(),
		BuildShards:     jsonShards,
		BuildGOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	layouts := []struct {
		experiment string
		idx        bwtmatch.Matcher
	}{
		{"search", c.Index},
		{"search-sharded", sharded},
	}
	for _, layout := range layouts {
		for _, k := range jsonKs {
			for _, m := range jsonMethods {
				if tr != nil {
					tr.Begin(fmt.Sprintf("%s/%v/k=%d", layout.experiment, m, k))
				}
				cell, err := timeCell(layout.idx, reads, k, m, rounds)
				if err != nil {
					return err
				}
				cell.Experiment = layout.experiment
				cell.Genome = spec.Name
				if tr != nil {
					tr.End(
						obs.Arg{Key: "ns_per_read", Val: cell.NSPerRead},
						obs.Arg{Key: "mtree_leaves", Val: cell.MTreeLeaves},
						obs.Arg{Key: "memo_hits", Val: cell.MemoHits},
					)
				}
				rep.Results = append(rep.Results, cell)
			}
		}
	}
	rep.PeakRSSBytes = peakRSS()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// timeCell measures one (method, k) cell: every read once per round,
// best round kept; work counters are summed over the reads of one round
// (they are deterministic across rounds).
func timeCell(idx bwtmatch.Matcher, reads [][]byte, k int, m bwtmatch.Method, rounds int) (JSONResult, error) {
	cell := JSONResult{Method: m.String(), K: k, ReadLen: len(reads[0]), Reads: len(reads)}
	// Warm lazy structures outside the timing.
	if _, _, err := idx.SearchMethod(reads[0], k, m); err != nil {
		return cell, err
	}
	best := time.Duration(-1)
	for r := 0; r < rounds; r++ {
		var leaves, memo, steps, locNS int64
		matches := 0
		start := time.Now()
		for _, rd := range reads {
			ms, st, err := idx.SearchMethod(rd, k, m)
			if err != nil {
				return cell, err
			}
			matches += len(ms)
			leaves += int64(st.MTreeLeaves)
			memo += int64(st.MemoHits)
			steps += int64(st.StepCalls)
			locNS += st.LocateNS
		}
		if d := time.Since(start); best < 0 || d < best {
			best = d
			cell.LocateNS = locNS / int64(len(reads))
		}
		cell.Matches = matches
		cell.MTreeLeaves = leaves
		cell.MemoHits = memo
		cell.StepCalls = steps
	}
	cell.NSPerRead = best.Nanoseconds() / int64(len(reads))
	cell.MSPerRead = float64(cell.NSPerRead) / 1e6
	return cell, nil
}

// peakRSS reads the process high-water resident set (VmHWM) from
// /proc/self/status, in bytes. On platforms without procfs it falls
// back to the Go runtime's total obtained-from-OS bytes, which at least
// bounds the footprint.
func peakRSS() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			rest, ok := strings.CutPrefix(line, "VmHWM:")
			if !ok {
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) >= 1 {
				if kb, err := strconv.ParseInt(fields[0], 10, 64); err == nil {
					return kb << 10
				}
			}
		}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.Sys)
}
