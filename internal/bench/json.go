package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"bwtmatch"
	"bwtmatch/internal/alphabet"
	"bwtmatch/internal/obs"
)

// JSONResult is one (method, k) cell of the machine-readable search
// benchmark: timing plus the paper's work counters, so trajectory files
// record *why* a run was fast or slow, not just how fast it was.
type JSONResult struct {
	Experiment  string  `json:"experiment"`
	Genome      string  `json:"genome"`
	Method      string  `json:"method"`
	K           int     `json:"k"`
	ReadLen     int     `json:"read_len"`
	Reads       int     `json:"reads"`
	NSPerRead   int64   `json:"ns_per_read"`        // best of Rounds
	LocateNS    int64   `json:"locate_ns_per_read"` // Σ locate wall time / reads, best round
	MSPerRead   float64 `json:"ms_per_read"`
	Matches     int     `json:"matches"`
	MTreeLeaves int64   `json:"mtree_leaves"` // Σ n′ across reads
	MemoHits    int64   `json:"memo_hits"`    // Σ merge short-circuits
	StepCalls   int64   `json:"step_calls"`   // Σ BWT rank operations
}

// JSONReport is the top-level document emitted by kmbench -json.
type JSONReport struct {
	Schema    string `json:"schema"` // "kmbench/v1"
	Scale     int    `json:"scale"`
	Reads     int    `json:"reads"`
	Seed      int64  `json:"seed"`
	Rounds    int    `json:"rounds"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	GoVersion string `json:"go_version"`
	// BuildNS and ShardedBuildNS time index construction over the same
	// text: one monolithic build versus BuildShards concurrent per-shard
	// builds (sharding is what parallelizes SA-IS; see DESIGN.md §10).
	// On a 1-CPU machine the sharded build cannot beat the monolithic
	// one — BuildGOMAXPROCS records the parallelism that was available.
	BuildNS         int64 `json:"build_ns"`
	ShardedBuildNS  int64 `json:"sharded_build_ns"`
	BuildShards     int   `json:"build_shards"`
	BuildGOMAXPROCS int   `json:"build_gomaxprocs"`
	// The monolithic build's phase breakdown (WithBuildPhases): the
	// suffix array, BWT extraction + C array, rankall checkpoints, and
	// packing + locate samples. Their sum can slightly undershoot
	// BuildNS (allocation and validation sit between phases).
	SANS   int64 `json:"sa_ns"`
	BWTNS  int64 `json:"bwt_ns"`
	OccNS  int64 `json:"occ_ns"`
	PackNS int64 `json:"pack_ns"`
	// StreamBuildNS times building the same text through the streaming
	// shard builder (same shard count) to a temp file. It runs before
	// the in-memory builds, so StreamPeakRSS — the VmHWM right after it
	// finishes — reflects the streaming path's bounded footprint rather
	// than the monolithic build's full-suffix-array spike, which
	// PeakBuildRSS (VmHWM after the in-memory builds) captures.
	StreamBuildNS int64        `json:"stream_build_ns"`
	StreamPeakRSS int64        `json:"stream_build_peak_rss"`
	PeakBuildRSS  int64        `json:"peak_build_rss"`
	PeakRSSBytes  int64        `json:"peak_rss_bytes"`
	Results       []JSONResult `json:"results"`
	// Tenant carries the multi-tenant accounting when the report was
	// produced by RunTenants (kmbench -json -tenants N); nil otherwise.
	Tenant *TenantSummary `json:"tenant,omitempty"`
}

// jsonMethods are the BWT-path matchers the search benchmarks compare
// (the methods the Tracer instruments), in ablation order.
var jsonMethods = []bwtmatch.Method{
	bwtmatch.STree, bwtmatch.BWTBaseline,
	bwtmatch.AlgorithmANoPhi, bwtmatch.AlgorithmA,
}

// jsonKs are the mismatch budgets swept per method. The grid runs to
// k=5 so the trajectory captures the regime where the M-tree memo and
// φ(i) pruning dominate (the paper's Fig. 11(a) inflection), not just
// the cheap low-k cells.
var jsonKs = []int{1, 2, 3, 4, 5}

// jsonShards is the shard count of the sharded-layout cells.
const jsonShards = 4

// RunJSON runs the search benchmark grid (jsonMethods × jsonKs, reads
// of length 100 on the largest genome) rounds times per cell, keeps the
// best wall time, and writes one JSONReport to w. When tr is non-nil
// each cell is wrapped in a trace span, so a -json -trace run yields a
// timeline of the whole grid.
func RunJSON(w io.Writer, cfg Config, rounds int, tr obs.Tracer) error {
	cfg.normalize()
	if rounds < 1 {
		rounds = 1
	}
	spec := Specs(cfg.Scale)[0]
	g, err := spec.generate()
	if err != nil {
		return err
	}
	text := alphabet.Decode(g)
	// Stream-build first, while the process is still small: VmHWM is
	// monotonic, so measuring before the in-memory builds (which hold a
	// full suffix array of the whole text) is the only order in which
	// the streaming path's bounded footprint is visible.
	streamNS, streamRSS, err := streamBuildDemo(text)
	if err != nil {
		return err
	}
	var phases bwtmatch.BuildPhases
	c, err := buildCorpusFrom(spec, g, bwtmatch.WithBuildPhases(&phases))
	if err != nil {
		return err
	}
	reads, err := c.Reads(100, cfg.Reads, cfg.Seed)
	if err != nil {
		return err
	}
	// The sharded counterpart: same text, jsonShards concurrent per-shard
	// builds, searched through the same grid so the report carries
	// sharded-vs-monolithic cells for every (method, k).
	shardStart := time.Now()
	sharded, err := bwtmatch.NewSharded(text,
		bwtmatch.WithShards(jsonShards), bwtmatch.WithMaxPatternLen(128))
	if err != nil {
		return err
	}
	shardedBuild := time.Since(shardStart)

	rep := JSONReport{
		Schema:          "kmbench/v1",
		Scale:           cfg.Scale,
		Reads:           len(reads),
		Seed:            cfg.Seed,
		Rounds:          rounds,
		GOOS:            runtime.GOOS,
		GOARCH:          runtime.GOARCH,
		GoVersion:       runtime.Version(),
		BuildNS:         c.BuildTime.Nanoseconds(),
		ShardedBuildNS:  shardedBuild.Nanoseconds(),
		BuildShards:     jsonShards,
		BuildGOMAXPROCS: runtime.GOMAXPROCS(0),
		SANS:            phases.SANS,
		BWTNS:           phases.BWTNS,
		OccNS:           phases.OccNS,
		PackNS:          phases.PackNS,
		StreamBuildNS:   streamNS,
		StreamPeakRSS:   streamRSS,
		PeakBuildRSS:    obs.PeakRSS(),
	}
	layouts := []struct {
		experiment string
		idx        bwtmatch.Matcher
	}{
		{"search", c.Index},
		{"search-sharded", sharded},
	}
	for _, layout := range layouts {
		for _, k := range jsonKs {
			for _, m := range jsonMethods {
				if tr != nil {
					tr.Begin(fmt.Sprintf("%s/%v/k=%d", layout.experiment, m, k))
				}
				cell, err := timeCell(layout.idx, reads, k, m, rounds)
				if err != nil {
					return err
				}
				cell.Experiment = layout.experiment
				cell.Genome = spec.Name
				if tr != nil {
					tr.End(
						obs.Arg{Key: "ns_per_read", Val: cell.NSPerRead},
						obs.Arg{Key: "mtree_leaves", Val: cell.MTreeLeaves},
						obs.Arg{Key: "memo_hits", Val: cell.MemoHits},
					)
				}
				rep.Results = append(rep.Results, cell)
			}
		}
	}
	rep.PeakRSSBytes = obs.PeakRSS()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// streamBuildDemo builds text through the streaming shard builder
// (jsonShards shards, same geometry as the sharded grid cells) into a
// throwaway temp file and reports the wall time and the process VmHWM
// right afterwards.
func streamBuildDemo(text []byte) (ns, rss int64, err error) {
	f, err := os.CreateTemp("", "kmbench-stream-*.km")
	if err != nil {
		return 0, 0, err
	}
	path := f.Name()
	if err := f.Close(); err != nil {
		return 0, 0, err
	}
	defer os.Remove(path)
	size := (len(text) + jsonShards - 1) / jsonShards
	start := time.Now()
	sb, err := bwtmatch.NewStreamBuilder(path,
		bwtmatch.WithShardSize(size), bwtmatch.WithMaxPatternLen(128))
	if err != nil {
		return 0, 0, err
	}
	if _, err := sb.Write(text); err != nil {
		sb.Abort() // the write error is the one to report
		return 0, 0, err
	}
	if err := sb.Close(); err != nil {
		return 0, 0, err
	}
	return time.Since(start).Nanoseconds(), obs.PeakRSS(), nil
}

// timeCell measures one (method, k) cell: every read once per round,
// best round kept; work counters are summed over the reads of one round
// (they are deterministic across rounds).
func timeCell(idx bwtmatch.Matcher, reads [][]byte, k int, m bwtmatch.Method, rounds int) (JSONResult, error) {
	cell := JSONResult{Method: m.String(), K: k, ReadLen: len(reads[0]), Reads: len(reads)}
	// Warm lazy structures outside the timing.
	if _, _, err := idx.SearchMethod(reads[0], k, m); err != nil {
		return cell, err
	}
	best := time.Duration(-1)
	for r := 0; r < rounds; r++ {
		var leaves, memo, steps, locNS int64
		matches := 0
		start := time.Now()
		for _, rd := range reads {
			ms, st, err := idx.SearchMethod(rd, k, m)
			if err != nil {
				return cell, err
			}
			matches += len(ms)
			leaves += int64(st.MTreeLeaves)
			memo += int64(st.MemoHits)
			steps += int64(st.StepCalls)
			locNS += st.LocateNS
		}
		if d := time.Since(start); best < 0 || d < best {
			best = d
			cell.LocateNS = locNS / int64(len(reads))
		}
		cell.Matches = matches
		cell.MTreeLeaves = leaves
		cell.MemoHits = memo
		cell.StepCalls = steps
	}
	cell.NSPerRead = best.Nanoseconds() / int64(len(reads))
	cell.MSPerRead = float64(cell.NSPerRead) / 1e6
	return cell, nil
}
