package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

// tinyConfig keeps harness tests fast: ~64 KiB largest genome, few reads.
func tinyConfig() Config { return Config{Scale: 256, Reads: 3, Seed: 1} }

func TestSpecs(t *testing.T) {
	specs := Specs(1)
	if len(specs) != 5 {
		t.Fatalf("%d specs", len(specs))
	}
	if specs[0].Bases != 16<<20 {
		t.Errorf("largest genome %d bases", specs[0].Bases)
	}
	for i := 1; i < len(specs); i++ {
		if specs[i].Bases >= specs[i-1].Bases {
			t.Errorf("sizes not decreasing at %d", i)
		}
	}
	if Specs(0)[0].Bases != 16<<20 {
		t.Error("scale 0 not clamped to 1")
	}
}

func TestBuildCorpusAndReads(t *testing.T) {
	spec := Specs(512)[4] // smallest genome, 2 KiB
	c, err := BuildCorpus(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Ranks) != spec.Bases || c.Index.Len() != spec.Bases {
		t.Fatalf("corpus size mismatch")
	}
	reads, err := c.Reads(50, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(reads) != 4 || len(reads[0]) != 50 {
		t.Fatalf("reads shape wrong")
	}
	// Reads must be mappable back into the genome with a loose budget.
	for _, r := range reads {
		ms, err := c.Index.Search(r, 6)
		if err != nil {
			t.Fatal(err)
		}
		if len(ms) == 0 {
			t.Fatalf("simulated read unmappable at k=6")
		}
	}
}

func TestRunDispatch(t *testing.T) {
	for _, id := range Experiments() {
		if id == "table2" || id == "fig12" || id == "fig13" {
			continue // covered separately / slower
		}
		var buf bytes.Buffer
		if err := Run(id, &buf, tinyConfig()); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !strings.Contains(buf.String(), "#") {
			t.Fatalf("%s produced no header:\n%s", id, buf.String())
		}
	}
	if err := Run("nope", &bytes.Buffer{}, tinyConfig()); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestTable2SmallGrid(t *testing.T) {
	// Run table2 on a tiny corpus; it exercises MTreeLeaves end to end.
	var buf bytes.Buffer
	cfg := Config{Scale: 1024, Reads: 2, Seed: 2}
	if err := Table2(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2+4 { // header comment + column header + 4 rows
		t.Fatalf("unexpected table2 output:\n%s", buf.String())
	}
}

func TestFig13Small(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig13(&buf, Config{Scale: 1024, Reads: 2, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"layout", "rate4", "twolevel"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("fig13 output missing %q:\n%s", want, buf.String())
		}
	}
}

func TestFig12Small(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig12(&buf, Config{Scale: 2048, Reads: 2, Seed: 4}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{"rat-sim", "cmerolae-sim"} {
		if !strings.Contains(out, name) {
			t.Fatalf("fig12 missing %s:\n%s", name, out)
		}
	}
}

// TestRunJSONShardedCells: the JSON report carries a sharded-layout
// twin for every monolithic cell with identical match counts, plus the
// build wall-clock fields that document the Amdahl trade.
func TestRunJSONShardedCells(t *testing.T) {
	var buf bytes.Buffer
	if err := RunJSON(&buf, tinyConfig(), 1, nil); err != nil {
		t.Fatal(err)
	}
	var rep JSONReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.BuildNS <= 0 || rep.ShardedBuildNS <= 0 || rep.BuildShards != jsonShards || rep.BuildGOMAXPROCS < 1 {
		t.Errorf("build fields unset: %+v", rep)
	}
	mono := map[string]int{}
	shardedCells := 0
	for _, r := range rep.Results {
		key := fmt.Sprintf("%s/k=%d", r.Method, r.K)
		switch r.Experiment {
		case "search":
			mono[key] = r.Matches
		case "search-sharded":
			shardedCells++
			want, ok := mono[key]
			if !ok {
				t.Errorf("sharded cell %s has no monolithic twin", key)
			} else if r.Matches != want {
				t.Errorf("%s: sharded %d matches, monolithic %d", key, r.Matches, want)
			}
		default:
			t.Errorf("unexpected experiment %q", r.Experiment)
		}
	}
	if shardedCells == 0 || shardedCells != len(mono) {
		t.Errorf("%d sharded cells vs %d monolithic", shardedCells, len(mono))
	}
}
