package shard

import (
	"bytes"
	"errors"
	"testing"
)

func validManifest(t *testing.T) Manifest {
	t.Helper()
	p, err := New(1000, 300, 99)
	if err != nil {
		t.Fatal(err)
	}
	return Manifest{
		MaxPatternLen: 100,
		Plan:          p,
		Refs: []Ref{
			{Name: "chr1", Start: 0, Len: 600},
			{Name: "chr2", Start: 600, Len: 400},
		},
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m := validManifest(t)
	var buf bytes.Buffer
	n, err := m.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadManifest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.MaxPatternLen != m.MaxPatternLen ||
		got.Plan.TotalLen != m.Plan.TotalLen ||
		got.Plan.ShardSize != m.Plan.ShardSize ||
		got.Plan.Overlap != m.Plan.Overlap ||
		len(got.Plan.Spans) != len(m.Plan.Spans) ||
		len(got.Refs) != len(m.Refs) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, m)
	}
	for i := range m.Refs {
		if got.Refs[i] != m.Refs[i] {
			t.Fatalf("ref %d: %+v vs %+v", i, got.Refs[i], m.Refs[i])
		}
	}
	if err := got.CheckInvariants(); err != nil {
		t.Fatalf("round-tripped manifest fails invariants: %v", err)
	}
}

func TestReadManifestRejectsCorruption(t *testing.T) {
	m := validManifest(t)
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	// Truncation at every prefix length must fail with ErrManifest and
	// never panic or allocate past the caps.
	for n := 0; n < len(valid); n += 7 {
		if _, err := ReadManifest(bytes.NewReader(valid[:n])); !errors.Is(err, ErrManifest) {
			t.Fatalf("truncated at %d: error %v does not wrap ErrManifest", n, err)
		}
	}

	// Single-byte corruption across the header region: either rejected
	// with ErrManifest, or (where the byte is genuinely don't-care)
	// still a fully consistent manifest.
	for i := 0; i < len(valid); i++ {
		mutated := append([]byte(nil), valid...)
		mutated[i] ^= 0xff
		got, err := ReadManifest(bytes.NewReader(mutated))
		if err != nil {
			if !errors.Is(err, ErrManifest) {
				t.Fatalf("byte %d: error %v does not wrap ErrManifest", i, err)
			}
			continue
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("byte %d: accepted manifest fails Validate: %v", i, err)
		}
	}
}

func TestReadManifestCapsAllocations(t *testing.T) {
	// A header claiming 2^33 shards must be rejected from the count
	// field alone, before any span allocation happens.
	m := validManifest(t)
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// The span-count field sits after version(4) + 4*uint64(32).
	const countOff = 36
	data[countOff+0] = 0xff
	data[countOff+1] = 0xff
	data[countOff+2] = 0xff
	data[countOff+3] = 0x7f
	if _, err := ReadManifest(bytes.NewReader(data)); !errors.Is(err, ErrManifest) {
		t.Fatalf("oversized shard count accepted: %v", err)
	}
}

func TestWriteToRejectsInvalid(t *testing.T) {
	m := validManifest(t)
	m.MaxPatternLen = m.Plan.Overlap + 2 // overlap now too small
	if _, err := m.WriteTo(&bytes.Buffer{}); err == nil {
		t.Fatal("WriteTo serialized an invalid manifest")
	}
}
