package shard

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// ErrManifest reports an unreadable or inconsistent shard manifest. The
// root package re-wraps it in bwtmatch.ErrFormat, so callers match one
// sentinel regardless of which layer rejected the file.
var ErrManifest = errors.New("shard: bad manifest")

// manifestVersion is the current manifest layout version.
const manifestVersion = uint32(1)

// Caps on untrusted length fields: a corrupt manifest must not be able
// to force a large allocation before the short read is noticed (the
// same discipline as internal/binio).
const (
	maxTotalLen   = 1 << 34
	maxShards     = MaxShards
	maxRefs       = 1 << 20
	maxRefNameLen = 1 << 16
	maxPatternCap = 1 << 30
)

// MaxShards is the largest shard count a manifest may declare. Exported
// so container loaders can re-check the cap at their own allocation
// sites (defense in depth on top of ReadManifest's validation).
const MaxShards = 1 << 16

// Ref is one named reference inside a sharded index, in concatenated
// global coordinates (mirrors bwtmatch.Ref without the import cycle).
type Ref struct {
	Name       string
	Start, Len int
}

// Manifest is the header of a multi-shard index file: the partition
// geometry, the pattern-length bound the overlap was sized for, and the
// reference table. The per-shard index payloads follow it in the
// container, each prefixed by its byte length.
type Manifest struct {
	// MaxPatternLen is the longest pattern the sharded index answers
	// exactly; Plan.Overlap must be at least MaxPatternLen-1.
	MaxPatternLen int
	Plan          Plan
	Refs          []Ref
}

// Validate checks the internal consistency of a manifest (geometry,
// overlap vs pattern bound, reference bounds). Loaders run it on
// untrusted input; builders run it as a cheap sanity gate.
func (m *Manifest) Validate() error {
	if m.MaxPatternLen < 1 || m.MaxPatternLen > maxPatternCap {
		return fmt.Errorf("%w: max pattern length %d", ErrManifest, m.MaxPatternLen)
	}
	if m.Plan.TotalLen > maxTotalLen {
		return fmt.Errorf("%w: total length %d", ErrManifest, m.Plan.TotalLen)
	}
	if len(m.Plan.Spans) > maxShards {
		return fmt.Errorf("%w: %d shards", ErrManifest, len(m.Plan.Spans))
	}
	if err := m.Plan.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrManifest, err)
	}
	if m.Plan.Overlap < m.MaxPatternLen-1 {
		return fmt.Errorf("%w: overlap %d cannot cover patterns up to %d bytes",
			ErrManifest, m.Plan.Overlap, m.MaxPatternLen)
	}
	n := m.Plan.TotalLen
	for i, r := range m.Refs {
		if r.Start < 0 || r.Len < 0 || r.Start > n || r.Len > n-r.Start {
			return fmt.Errorf("%w: ref %d spans [%d,%d) of %d", ErrManifest, i, r.Start, r.Start+r.Len, n)
		}
		if len(r.Name) > maxRefNameLen {
			return fmt.Errorf("%w: ref %d name is %d bytes", ErrManifest, i, len(r.Name))
		}
	}
	return nil
}

// WriteTo serializes the manifest. It returns the number of bytes
// written so the container can compute where the shard payloads begin.
func (m *Manifest) WriteTo(w io.Writer) (int64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	cw := &countingWriter{w: w}
	write := func(v any) error { return binary.Write(cw, binary.LittleEndian, v) }
	if err := write(manifestVersion); err != nil {
		return cw.n, err
	}
	for _, v := range []uint64{
		uint64(m.MaxPatternLen), uint64(m.Plan.TotalLen),
		uint64(m.Plan.ShardSize), uint64(m.Plan.Overlap),
	} {
		if err := write(v); err != nil {
			return cw.n, err
		}
	}
	if err := write(uint32(len(m.Plan.Spans))); err != nil {
		return cw.n, err
	}
	for _, s := range m.Plan.Spans {
		if err := write(uint64(s.Start)); err != nil {
			return cw.n, err
		}
		if err := write(uint64(s.End)); err != nil {
			return cw.n, err
		}
	}
	if err := write(uint32(len(m.Refs))); err != nil {
		return cw.n, err
	}
	for _, r := range m.Refs {
		if err := write(uint32(len(r.Name))); err != nil {
			return cw.n, err
		}
		if _, err := cw.Write([]byte(r.Name)); err != nil {
			return cw.n, err
		}
		if err := write(uint64(r.Start)); err != nil {
			return cw.n, err
		}
		if err := write(uint64(r.Len)); err != nil {
			return cw.n, err
		}
	}
	return cw.n, nil
}

// ReadManifest deserializes and validates a manifest from untrusted
// input. Every rejection wraps ErrManifest; allocations are bounded by
// the caps above regardless of what the stream claims.
func ReadManifest(r io.Reader) (Manifest, error) {
	var m Manifest
	read := func(v any) error { return binary.Read(r, binary.LittleEndian, v) }
	var version uint32
	if err := read(&version); err != nil {
		return m, fmt.Errorf("%w: version: %v", ErrManifest, err)
	}
	if version != manifestVersion {
		return m, fmt.Errorf("%w: version %d (want %d)", ErrManifest, version, manifestVersion)
	}
	var maxPat, totalLen, shardSize, overlap uint64
	for _, v := range []*uint64{&maxPat, &totalLen, &shardSize, &overlap} {
		if err := read(v); err != nil {
			return m, fmt.Errorf("%w: header: %v", ErrManifest, err)
		}
	}
	if maxPat > maxPatternCap || totalLen > maxTotalLen || shardSize > maxTotalLen || overlap > maxTotalLen {
		return m, fmt.Errorf("%w: header out of range (maxPat %d, len %d, stride %d, overlap %d)",
			ErrManifest, maxPat, totalLen, shardSize, overlap)
	}
	m.MaxPatternLen = int(maxPat)
	m.Plan.TotalLen = int(totalLen)
	m.Plan.ShardSize = int(shardSize)
	m.Plan.Overlap = int(overlap)
	var spanCount uint32
	if err := read(&spanCount); err != nil {
		return m, fmt.Errorf("%w: shard count: %v", ErrManifest, err)
	}
	if spanCount == 0 || spanCount > maxShards {
		return m, fmt.Errorf("%w: %d shards", ErrManifest, spanCount)
	}
	m.Plan.Spans = make([]Span, spanCount)
	for i := range m.Plan.Spans {
		var start, end uint64
		if err := read(&start); err != nil {
			return m, fmt.Errorf("%w: span %d: %v", ErrManifest, i, err)
		}
		if err := read(&end); err != nil {
			return m, fmt.Errorf("%w: span %d: %v", ErrManifest, i, err)
		}
		if start > maxTotalLen || end > maxTotalLen {
			return m, fmt.Errorf("%w: span %d out of range", ErrManifest, i)
		}
		m.Plan.Spans[i] = Span{Start: int(start), End: int(end)}
	}
	var refCount uint32
	if err := read(&refCount); err != nil {
		return m, fmt.Errorf("%w: ref count: %v", ErrManifest, err)
	}
	if refCount > maxRefs {
		return m, fmt.Errorf("%w: %d references", ErrManifest, refCount)
	}
	for i := uint32(0); i < refCount; i++ {
		var nameLen uint32
		if err := read(&nameLen); err != nil || nameLen > maxRefNameLen {
			return m, fmt.Errorf("%w: ref %d name length", ErrManifest, i)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(r, name); err != nil {
			return m, fmt.Errorf("%w: ref %d name: %v", ErrManifest, i, err)
		}
		var start, length uint64
		if err := read(&start); err != nil {
			return m, fmt.Errorf("%w: ref %d start: %v", ErrManifest, i, err)
		}
		if err := read(&length); err != nil {
			return m, fmt.Errorf("%w: ref %d length: %v", ErrManifest, i, err)
		}
		if start > maxTotalLen || length > maxTotalLen {
			return m, fmt.Errorf("%w: ref %d out of range", ErrManifest, i)
		}
		m.Refs = append(m.Refs, Ref{Name: string(name), Start: int(start), Len: int(length)})
	}
	if err := m.Validate(); err != nil {
		return m, err
	}
	return m, nil
}

// countingWriter tracks bytes written so WriteTo can report the
// manifest's encoded size.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
