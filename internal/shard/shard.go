// Package shard partitions one target text into fixed-size, overlapping
// shards so that per-shard FM-indexes can be built concurrently and
// searched in parallel (the terabase-scale BWT construction route: one
// serial suffix array per shard, shards composed above).
//
// The geometry is chosen so that k-mismatch search over the shards is
// exact without any cross-shard stitching: with an overlap of
// maxPatternLen-1 bytes, every window of length <= maxPatternLen lies
// wholly inside at least one shard, and ownership of a match is decided
// by its start position alone (the shard whose owned range contains the
// start reports it, every other shard that also sees it stays silent).
// Owned ranges partition [0, n), so each match is reported exactly once
// and concatenating per-shard results in shard order yields global
// position order.
package shard

import (
	"errors"
	"fmt"
)

// ErrPlan reports an unusable shard geometry.
var ErrPlan = errors.New("shard: invalid plan")

// Span is one shard's slice of the target in global coordinates: the
// shard indexes target[Start:End). Consecutive spans overlap.
type Span struct {
	Start, End int
}

// Len returns the number of bytes the shard covers.
func (s Span) Len() int { return s.End - s.Start }

// Plan is the partition geometry of one sharded index. Spans are fully
// determined by (TotalLen, ShardSize, Overlap); they are materialized —
// and persisted in the manifest — so that loaders can cross-check a
// stored plan against the recomputed one instead of trusting it.
type Plan struct {
	// TotalLen is the target length in bytes.
	TotalLen int
	// ShardSize is the stride between shard starts: shard i owns start
	// positions [i*ShardSize, (i+1)*ShardSize).
	ShardSize int
	// Overlap is how many bytes each shard extends past the next
	// shard's start (maxPatternLen-1 for exact search).
	Overlap int
	// Spans holds one entry per shard, in increasing Start order.
	Spans []Span
}

// New computes the partition of a totalLen-byte target into shards of
// the given stride with the given overlap.
func New(totalLen, shardSize, overlap int) (Plan, error) {
	if totalLen < 1 {
		return Plan{}, fmt.Errorf("%w: total length %d", ErrPlan, totalLen)
	}
	if shardSize < 1 {
		return Plan{}, fmt.Errorf("%w: shard size %d", ErrPlan, shardSize)
	}
	if overlap < 0 {
		return Plan{}, fmt.Errorf("%w: negative overlap %d", ErrPlan, overlap)
	}
	count := (totalLen + shardSize - 1) / shardSize
	p := Plan{
		TotalLen:  totalLen,
		ShardSize: shardSize,
		Overlap:   overlap,
		Spans:     make([]Span, count),
	}
	for i := range p.Spans {
		start := i * shardSize
		end := start + shardSize + overlap
		if end > totalLen {
			end = totalLen
		}
		p.Spans[i] = Span{Start: start, End: end}
	}
	return p, nil
}

// ForCount computes a plan splitting the target into (at most) count
// shards of equal stride. Tiny targets yield fewer shards: the stride
// never drops below 1 byte.
func ForCount(totalLen, count, overlap int) (Plan, error) {
	if count < 1 {
		return Plan{}, fmt.Errorf("%w: shard count %d", ErrPlan, count)
	}
	size := (totalLen + count - 1) / count
	if size < 1 {
		size = 1
	}
	return New(totalLen, size, overlap)
}

// Count returns the number of shards.
func (p Plan) Count() int { return len(p.Spans) }

// OwnedEnd returns the exclusive end of the global start positions
// shard i owns: matches starting in [Spans[i].Start, OwnedEnd(i)) are
// reported by shard i and by no other shard.
func (p Plan) OwnedEnd(i int) int {
	if i == len(p.Spans)-1 {
		return p.TotalLen
	}
	return p.Spans[i+1].Start
}

// Owner returns the index of the shard owning global start position
// pos, or -1 when pos is out of range.
func (p Plan) Owner(pos int) int {
	if pos < 0 || pos >= p.TotalLen || p.ShardSize < 1 {
		return -1
	}
	i := pos / p.ShardSize
	if i >= len(p.Spans) {
		return -1
	}
	return i
}

// Validate cross-checks the materialized spans against the geometry
// recomputed from (TotalLen, ShardSize, Overlap). It is always on —
// loaders run it on untrusted manifests — and cheap: O(count).
func (p Plan) Validate() error {
	want, err := New(p.TotalLen, p.ShardSize, p.Overlap)
	if err != nil {
		return err
	}
	if len(p.Spans) != len(want.Spans) {
		return fmt.Errorf("%w: %d spans for length %d at stride %d (want %d)",
			ErrPlan, len(p.Spans), p.TotalLen, p.ShardSize, len(want.Spans))
	}
	for i, s := range p.Spans {
		if s != want.Spans[i] {
			return fmt.Errorf("%w: span %d is [%d,%d), want [%d,%d)",
				ErrPlan, i, s.Start, s.End, want.Spans[i].Start, want.Spans[i].End)
		}
	}
	return nil
}
