//go:build kminvariants

package shard

import "fmt"

// InvariantsEnabled reports whether this build carries the deep
// invariant checks (the kminvariants build tag).
const InvariantsEnabled = true

// CheckInvariants verifies the exact-search geometry of a manifest
// beyond Validate's structural cross-check: the owned ranges partition
// [0, TotalLen) with no gap or double ownership, and every window of
// length <= MaxPatternLen whose start a shard owns lies wholly inside
// that shard — the invariant the overlap exists to provide. O(count);
// tests and fuzz harnesses only, no-op in default builds.
func (m *Manifest) CheckInvariants() error {
	if err := m.Validate(); err != nil {
		return err
	}
	p := m.Plan
	prevEnd := 0
	for i, s := range p.Spans {
		ownedStart, ownedEnd := s.Start, p.OwnedEnd(i)
		if ownedStart != prevEnd {
			return fmt.Errorf("%w: shard %d owned range starts at %d, previous ended at %d",
				ErrManifest, i, ownedStart, prevEnd)
		}
		if ownedEnd <= ownedStart {
			return fmt.Errorf("%w: shard %d owns empty range [%d,%d)",
				ErrManifest, i, ownedStart, ownedEnd)
		}
		prevEnd = ownedEnd
		// The worst-case window: the last owned start position, extended
		// by the longest permitted pattern (clipped to the text end —
		// longer windows cannot occur as matches).
		worst := ownedEnd - 1 + m.MaxPatternLen
		if worst > p.TotalLen {
			worst = p.TotalLen
		}
		if worst > s.End {
			return fmt.Errorf("%w: shard %d [%d,%d) cannot hold a %d-byte window starting at %d",
				ErrManifest, i, s.Start, s.End, m.MaxPatternLen, ownedEnd-1)
		}
		// Owner must agree with the ownership arithmetic used above.
		for _, pos := range []int{ownedStart, ownedEnd - 1} {
			if got := p.Owner(pos); got != i {
				return fmt.Errorf("%w: Owner(%d) = %d, want %d", ErrManifest, pos, got, i)
			}
		}
	}
	if prevEnd != p.TotalLen {
		return fmt.Errorf("%w: owned ranges end at %d of %d", ErrManifest, prevEnd, p.TotalLen)
	}
	return nil
}
