//go:build !kminvariants

package shard

// InvariantsEnabled reports whether this build carries the deep
// invariant checks (the kminvariants build tag).
const InvariantsEnabled = false

// CheckInvariants is a no-op in default builds; compile with
// -tags kminvariants for the real verification.
func (m *Manifest) CheckInvariants() error { return nil }
