package shard

import (
	"strings"
	"testing"
)

func TestNewGeometry(t *testing.T) {
	cases := []struct {
		name                         string
		totalLen, shardSize, overlap int
		wantCount                    int
	}{
		{"single shard", 100, 100, 9, 1},
		{"exact multiple", 100, 25, 9, 4},
		{"ragged tail", 100, 30, 9, 4},
		{"tiny target", 3, 10, 9, 1},
		{"stride one", 5, 1, 0, 5},
		{"overlap larger than stride", 50, 10, 15, 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := New(tc.totalLen, tc.shardSize, tc.overlap)
			if err != nil {
				t.Fatal(err)
			}
			if p.Count() != tc.wantCount {
				t.Fatalf("count = %d, want %d", p.Count(), tc.wantCount)
			}
			if err := p.Validate(); err != nil {
				t.Fatalf("fresh plan fails Validate: %v", err)
			}
			if p.Spans[0].Start != 0 {
				t.Fatalf("first span starts at %d", p.Spans[0].Start)
			}
			if last := p.Spans[p.Count()-1]; last.End != tc.totalLen {
				t.Fatalf("last span ends at %d of %d", last.End, tc.totalLen)
			}
			for i, s := range p.Spans {
				if s.Len() < 1 {
					t.Fatalf("span %d is empty", i)
				}
				if s.End > tc.totalLen {
					t.Fatalf("span %d overruns: end %d of %d", i, s.End, tc.totalLen)
				}
				if i > 0 && s.Start != p.Spans[i-1].Start+tc.shardSize {
					t.Fatalf("span %d start %d, want stride %d", i, s.Start, tc.shardSize)
				}
			}
		})
	}
}

func TestNewRejectsBadGeometry(t *testing.T) {
	for _, tc := range []struct{ totalLen, shardSize, overlap int }{
		{0, 10, 0}, {-1, 10, 0}, {10, 0, 0}, {10, -3, 0}, {10, 5, -1},
	} {
		if _, err := New(tc.totalLen, tc.shardSize, tc.overlap); err == nil {
			t.Errorf("New(%d, %d, %d) accepted", tc.totalLen, tc.shardSize, tc.overlap)
		}
	}
	if _, err := ForCount(10, 0, 0); err == nil {
		t.Error("ForCount with zero shards accepted")
	}
}

func TestForCount(t *testing.T) {
	p, err := ForCount(100, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	if p.Count() != 4 || p.ShardSize != 25 {
		t.Fatalf("count %d stride %d, want 4 shards of 25", p.Count(), p.ShardSize)
	}
	// More shards than bytes: stride clamps to 1, count to the length.
	p, err = ForCount(3, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Count() != 3 {
		t.Fatalf("tiny target count = %d, want 3", p.Count())
	}
}

func TestOwnership(t *testing.T) {
	p, err := New(100, 30, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Owned ranges partition [0, 100): walk every position once.
	for pos := 0; pos < 100; pos++ {
		owner := p.Owner(pos)
		if owner < 0 {
			t.Fatalf("Owner(%d) = %d", pos, owner)
		}
		if pos < p.Spans[owner].Start || pos >= p.OwnedEnd(owner) {
			t.Fatalf("Owner(%d) = %d but owned range is [%d,%d)",
				pos, owner, p.Spans[owner].Start, p.OwnedEnd(owner))
		}
	}
	for _, pos := range []int{-1, 100, 1000} {
		if got := p.Owner(pos); got != -1 {
			t.Errorf("Owner(%d) = %d, want -1", pos, got)
		}
	}
}

func TestValidateCatchesTampering(t *testing.T) {
	fresh := func(t *testing.T) Plan {
		p, err := New(100, 30, 9)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	mutations := map[string]func(*Plan){
		"shifted span":   func(p *Plan) { p.Spans[1].Start++ },
		"truncated span": func(p *Plan) { p.Spans[2].End-- },
		"dropped span":   func(p *Plan) { p.Spans = p.Spans[:len(p.Spans)-1] },
		"wrong stride":   func(p *Plan) { p.ShardSize++ },
		"wrong overlap":  func(p *Plan) { p.Overlap++ },
	}
	for name, mutate := range mutations {
		t.Run(name, func(t *testing.T) {
			p := fresh(t)
			mutate(&p)
			if err := p.Validate(); err == nil {
				t.Fatal("tampered plan passed Validate")
			}
		})
	}
}

func TestValidateRejectsOverlapTooSmall(t *testing.T) {
	p, err := New(100, 30, 5)
	if err != nil {
		t.Fatal(err)
	}
	m := Manifest{MaxPatternLen: 10, Plan: p} // needs overlap >= 9
	err = m.Validate()
	if err == nil {
		t.Fatal("undersized overlap accepted")
	}
	if !strings.Contains(err.Error(), "overlap") {
		t.Fatalf("unhelpful error: %v", err)
	}
}
