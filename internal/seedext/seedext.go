// Package seedext implements index-based seed-and-extend k-mismatch
// matching: the pigeonhole filter of the Amir baseline, but with the
// exact seed occurrences found on the BWT index instead of by scanning
// the target (the design of production read aligners, and the natural
// "future work" composition of the paper's two ingredients — its index
// and its filter baseline).
//
// The pattern is split into k+1 disjoint blocks; any occurrence with at
// most k mismatches contains at least one block exactly, so the exact
// occurrences of the blocks (one backward search each, O(m) total rank
// work) propose candidate alignments, which are verified by bounded
// mismatch counting. Per query the work is O(m + occ(blocks) + |cand|·k)
// — independent of n, unlike the scanning filter.
package seedext

import (
	"errors"
	"sort"

	"bwtmatch/internal/amir"
	"bwtmatch/internal/fmindex"
	"bwtmatch/internal/naive"
)

// Stats reports filter effectiveness for one query.
type Stats struct {
	Blocks     int // number of exact seed blocks
	Seeds      int // total located seed occurrences
	Candidates int // distinct candidate alignments verified
	Matches    int
}

// Match is one verified occurrence.
type Match struct {
	Pos        int32
	Mismatches int
}

// Matcher answers k-mismatch queries using an FM-index built over the
// REVERSED target (the same orientation internal/core uses, so one index
// serves both algorithms).
type Matcher struct {
	idx  *fmindex.Index
	text []byte // forward target, rank-encoded
}

// ErrPattern reports an unusable pattern.
var ErrPattern = errors.New("seedext: invalid pattern")

// New wraps an index over reverse(text) together with the forward text.
func New(idx *fmindex.Index, text []byte) *Matcher {
	return &Matcher{idx: idx, text: text}
}

// Find returns all k-mismatch occurrences of pattern, sorted by position.
func (s *Matcher) Find(pattern []byte, k int) ([]Match, Stats, error) {
	var st Stats
	m, n := len(pattern), len(s.text)
	if m == 0 || k < 0 {
		return nil, st, ErrPattern
	}
	if m > n {
		return nil, st, nil
	}
	if k >= m {
		out := make([]Match, 0, n-m+1)
		for p := 0; p+m <= n; p++ {
			out = append(out, Match{Pos: int32(p), Mismatches: naive.Hamming(s.text[p:p+m], pattern, m)})
		}
		st.Matches = len(out)
		return out, st, nil
	}

	offsets := amir.Breaks(pattern, k)
	st.Blocks = len(offsets)
	candidates := make(map[int32]struct{})
	var buf []int32
	for i, off := range offsets {
		end := m
		if i+1 < len(offsets) {
			end = offsets[i+1]
		}
		iv := s.searchForward(pattern[off:end])
		if iv.Empty() {
			continue
		}
		buf = s.idx.Locate(iv, buf[:0])
		blockLen := end - off
		for _, p := range buf {
			st.Seeds++
			// p is the block's start in the reversed text; convert to the
			// forward start, then to the alignment start.
			fwd := int32(n) - p - int32(blockLen)
			start := fwd - int32(off)
			if start >= 0 && int(start)+m <= n {
				candidates[start] = struct{}{}
			}
		}
	}

	out := make([]Match, 0, len(candidates))
	for p := range candidates {
		st.Candidates++
		if d := naive.Hamming(s.text[p:int(p)+m], pattern, k); d <= k {
			out = append(out, Match{Pos: p, Mismatches: d})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	st.Matches = len(out)
	return out, st, nil
}

// searchForward finds the interval of rows of the reversed-text index
// whose suffixes start with reverse(block) — i.e. the occurrences of
// block in the forward text — by consuming block left-to-right.
func (s *Matcher) searchForward(block []byte) fmindex.Interval {
	iv := s.idx.Full()
	for _, x := range block {
		iv = s.idx.Step(x, iv)
		if iv.Empty() {
			break
		}
	}
	return iv
}
