package seedext

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bwtmatch/internal/fmindex"
	"bwtmatch/internal/naive"
)

func randomRanks(rng *rand.Rand, n int) []byte {
	t := make([]byte, n)
	for i := range t {
		t[i] = byte(1 + rng.Intn(4))
	}
	return t
}

func newMatcher(t testing.TB, text []byte) *Matcher {
	t.Helper()
	rev := make([]byte, len(text))
	for i, b := range text {
		rev[len(text)-1-i] = b
	}
	idx, err := fmindex.Build(rev, fmindex.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return New(idx, text)
}

func checkAgainstNaive(t *testing.T, s *Matcher, text, pattern []byte, k int) {
	t.Helper()
	got, st, err := s.Find(pattern, k)
	if err != nil {
		t.Fatal(err)
	}
	want := naive.Find(text, pattern, k)
	if len(got) != len(want) {
		t.Fatalf("found %d, want %d (pattern %v k=%d)", len(got), len(want), pattern, k)
	}
	for i := range got {
		if got[i].Pos != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
		d := naive.Hamming(text[got[i].Pos:int(got[i].Pos)+len(pattern)], pattern, len(pattern))
		if d != got[i].Mismatches {
			t.Fatalf("pos %d reports %d mismatches, actual %d", got[i].Pos, got[i].Mismatches, d)
		}
	}
	if st.Matches != len(got) {
		t.Fatalf("stats.Matches = %d", st.Matches)
	}
}

func TestAgainstNaiveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(181))
	for trial := 0; trial < 50; trial++ {
		text := randomRanks(rng, 50+rng.Intn(500))
		s := newMatcher(t, text)
		for q := 0; q < 8; q++ {
			m := 2 + rng.Intn(30)
			if m > len(text) {
				m = len(text)
			}
			k := rng.Intn(5)
			var pattern []byte
			if rng.Intn(2) == 0 && len(text) > m {
				p := rng.Intn(len(text) - m)
				pattern = append([]byte(nil), text[p:p+m]...)
				for f := 0; f < k; f++ {
					pattern[rng.Intn(m)] = byte(1 + rng.Intn(4))
				}
			} else {
				pattern = randomRanks(rng, m)
			}
			checkAgainstNaive(t, s, text, pattern, k)
		}
	}
}

func TestRepetitiveText(t *testing.T) {
	rng := rand.New(rand.NewSource(182))
	unit := randomRanks(rng, 9)
	var text []byte
	for i := 0; i < 80; i++ {
		text = append(text, unit...)
	}
	s := newMatcher(t, text)
	for k := 0; k <= 3; k++ {
		pattern := append([]byte(nil), text[5:35]...)
		for f := 0; f < k; f++ {
			pattern[rng.Intn(len(pattern))] = byte(1 + rng.Intn(4))
		}
		checkAgainstNaive(t, s, text, pattern, k)
	}
}

func TestQuick(t *testing.T) {
	f := func(seed int64, n16 uint16, m8, k8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		text := randomRanks(rng, 10+int(n16)%300)
		m := 1 + int(m8)%20
		if m > len(text) {
			m = len(text)
		}
		k := int(k8) % 4
		pattern := randomRanks(rng, m)
		rev := make([]byte, len(text))
		for i, b := range text {
			rev[len(text)-1-i] = b
		}
		idx, err := fmindex.Build(rev, fmindex.DefaultOptions())
		if err != nil {
			return false
		}
		got, _, err := New(idx, text).Find(pattern, k)
		if err != nil {
			return false
		}
		want := naive.Find(text, pattern, k)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].Pos != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestEdgeCases(t *testing.T) {
	text := []byte{1, 2, 3, 4, 1, 2}
	s := newMatcher(t, text)
	if _, _, err := s.Find(nil, 1); err == nil {
		t.Error("empty pattern accepted")
	}
	if _, _, err := s.Find([]byte{1}, -1); err == nil {
		t.Error("negative k accepted")
	}
	if got, _, err := s.Find([]byte{1, 2, 3, 4, 1, 2, 3}, 1); err != nil || got != nil {
		t.Error("overlong pattern should yield nothing")
	}
	// k >= m: all windows.
	got, _, err := s.Find([]byte{4, 4}, 2)
	if err != nil || len(got) != 5 {
		t.Errorf("k>=m: %v, %v", got, err)
	}
}

func TestStatsPopulated(t *testing.T) {
	rng := rand.New(rand.NewSource(183))
	text := randomRanks(rng, 3000)
	s := newMatcher(t, text)
	pattern := append([]byte(nil), text[700:740]...)
	pattern[5] = byte(1 + rng.Intn(4))
	_, st, err := s.Find(pattern, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Blocks != 3 || st.Seeds == 0 || st.Candidates == 0 || st.Matches == 0 {
		t.Errorf("stats = %+v", st)
	}
}
