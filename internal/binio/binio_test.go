package binio

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
)

func TestReadSliceRoundTrip(t *testing.T) {
	want := make([]uint64, 100_000) // several chunks
	for i := range want {
		want[i] = uint64(i) * 0x9e3779b97f4a7c15
	}
	var buf bytes.Buffer
	if err := binary.Write(&buf, binary.LittleEndian, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSlice[uint64](&buf, uint64(len(want)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("got[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestReadSliceEmpty(t *testing.T) {
	got, err := ReadSlice[int32](bytes.NewReader(nil), 0)
	if err != nil || len(got) != 0 {
		t.Fatalf("ReadSlice(0) = %v, %v", got, err)
	}
}

// TestReadSliceTruncated is the point of the package: a header claiming
// 1<<30 elements over a 16-byte stream must fail after a bounded
// allocation, not attempt an 8 GiB make.
func TestReadSliceTruncated(t *testing.T) {
	data := make([]byte, 16)
	_, err := ReadSlice[uint64](bytes.NewReader(data), 1<<30)
	if err != io.ErrUnexpectedEOF && err != io.EOF {
		t.Fatalf("truncated read error = %v", err)
	}
}

func TestReadSliceBytes(t *testing.T) {
	src := []byte("hello bounded world")
	got, err := ReadSlice[byte](bytes.NewReader(src), uint64(len(src)))
	if err != nil || !bytes.Equal(got, src) {
		t.Fatalf("ReadSlice bytes = %q, %v", got, err)
	}
}
