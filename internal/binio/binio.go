// Package binio provides bounded binary deserialization helpers for the
// index load paths. Saved-index readers learn element counts from length
// prefixes in the (untrusted) stream; allocating the full slice up front
// lets a corrupt header force a multi-gigabyte allocation before the
// short read is ever noticed. ReadSlice instead grows the result in
// fixed-size chunks, so memory consumption tracks the bytes actually
// present in the stream.
package binio

import (
	"encoding/binary"
	"io"
)

// Scalar enumerates the fixed-size little-endian element types the index
// serializers use.
type Scalar interface {
	~uint8 | ~int8 | ~uint16 | ~int16 | ~uint32 | ~int32 | ~uint64 | ~int64
}

// chunkElems bounds the per-step allocation of ReadSlice (32Ki elements,
// at most 256 KiB per chunk for uint64).
const chunkElems = 1 << 15

// ReadSlice reads exactly n little-endian values of type T from r,
// allocating in bounded chunks. A truncated stream returns the
// binary.Read error (io.ErrUnexpectedEOF or io.EOF) with only the
// already-read prefix allocated.
func ReadSlice[T Scalar](r io.Reader, n uint64) ([]T, error) {
	cap0 := n
	if cap0 > chunkElems {
		cap0 = chunkElems
	}
	out := make([]T, 0, cap0)
	for uint64(len(out)) < n {
		c := n - uint64(len(out))
		if c > chunkElems {
			c = chunkElems
		}
		tmp := make([]T, c)
		if err := binary.Read(r, binary.LittleEndian, tmp); err != nil {
			return nil, err
		}
		out = append(out, tmp...)
	}
	return out, nil
}
