//go:build !kminvariants

package wavelet

// InvariantsEnabled reports whether this build carries the deep
// invariant checks (the kminvariants build tag).
const InvariantsEnabled = false

// CheckInvariants is a no-op in default builds; compile with
// -tags kminvariants for the real verification.
func (t *Tree) CheckInvariants() error { return nil }

// CheckAgainst is a no-op in default builds; compile with
// -tags kminvariants for the real verification.
func (t *Tree) CheckAgainst(seq []byte) error { return nil }
