package wavelet

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomSeq(rng *rand.Rand, n, sigma int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = byte(rng.Intn(sigma))
	}
	return s
}

func TestAccess(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for _, sigma := range []int{1, 2, 3, 5, 8, 17} {
		seq := randomSeq(rng, 500, sigma)
		w, err := New(seq, sigma)
		if err != nil {
			t.Fatal(err)
		}
		for i, want := range seq {
			if got := w.Access(i); got != want {
				t.Fatalf("sigma=%d Access(%d) = %d, want %d", sigma, i, got, want)
			}
		}
	}
}

func TestRankAgainstScan(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	for _, sigma := range []int{1, 2, 5, 16} {
		seq := randomSeq(rng, 800, sigma)
		w, _ := New(seq, sigma)
		counts := make([]int, sigma)
		for i := 0; i <= len(seq); i++ {
			for c := 0; c < sigma; c++ {
				if got := w.Rank(byte(c), i); got != counts[c] {
					t.Fatalf("sigma=%d Rank(%d,%d) = %d, want %d", sigma, c, i, got, counts[c])
				}
			}
			if i < len(seq) {
				counts[seq[i]]++
			}
		}
	}
}

func TestSelectInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	for _, sigma := range []int{1, 2, 5, 16} {
		seq := randomSeq(rng, 600, sigma)
		w, _ := New(seq, sigma)
		for c := 0; c < sigma; c++ {
			total := w.Rank(byte(c), len(seq))
			for j := 1; j <= total; j++ {
				p := w.Select(byte(c), j)
				if p < 0 || seq[p] != byte(c) {
					t.Fatalf("Select(%d,%d) = %d", c, j, p)
				}
				if w.Rank(byte(c), p+1) != j {
					t.Fatalf("Rank(Select) inconsistency at c=%d j=%d", c, j)
				}
			}
			if w.Select(byte(c), total+1) != -1 {
				t.Fatalf("Select past end should be -1 (c=%d)", c)
			}
		}
	}
}

func TestValidation(t *testing.T) {
	if _, err := New([]byte{0}, 0); err == nil {
		t.Error("sigma 0 accepted")
	}
	if _, err := New([]byte{5}, 3); err == nil {
		t.Error("out-of-range symbol accepted")
	}
	w, _ := New([]byte{0, 1}, 2)
	if w.Rank(9, 2) != 0 || w.Select(9, 1) != -1 || w.Select(0, 0) != -1 {
		t.Error("out-of-range queries misbehaved")
	}
}

func TestQuick(t *testing.T) {
	f := func(seed int64, n16 uint16, sigma8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		sigma := 1 + int(sigma8)%20
		seq := randomSeq(rng, int(n16)%1000, sigma)
		w, err := New(seq, sigma)
		if err != nil {
			return false
		}
		for trial := 0; trial < 30 && len(seq) > 0; trial++ {
			i := rng.Intn(len(seq))
			if w.Access(i) != seq[i] {
				return false
			}
			c := byte(rng.Intn(sigma))
			want := 0
			for _, b := range seq[:i] {
				if b == c {
					want++
				}
			}
			if w.Rank(c, i) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
