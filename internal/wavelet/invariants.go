//go:build kminvariants

package wavelet

import "fmt"

// InvariantsEnabled reports whether this build carries the deep
// invariant checks (the kminvariants build tag).
const InvariantsEnabled = true

// CheckInvariants reconstructs the encoded sequence via Access and then
// verifies the whole tree against it with CheckAgainst. O(n log sigma);
// tests and fuzz harnesses only (no-op in default builds).
func (t *Tree) CheckInvariants() error {
	// Shape first: Access indexes child bitmaps through parent ranks,
	// so a malformed tree could read out of range before CheckAgainst
	// ever saw it.
	if err := checkShape(t.root, 0, t.sigma, t.n); err != nil {
		return err
	}
	seq := make([]byte, t.n)
	for i := range seq {
		seq[i] = t.Access(i)
	}
	return t.CheckAgainst(seq)
}

// checkShape verifies node ranges and bitmap lengths bottom out
// consistently: the left child holds the parent's zeros, the right its
// ones. It touches no sequence data, so it is safe on arbitrary trees.
func checkShape(v *node, lo, hi, n int) error {
	if hi-lo <= 1 {
		if v != nil {
			return fmt.Errorf("wavelet: leaf range [%d,%d) has an internal node", lo, hi)
		}
		return nil
	}
	if v == nil {
		return fmt.Errorf("wavelet: missing node for range [%d,%d)", lo, hi)
	}
	if v.lo != lo || v.hi != hi {
		return fmt.Errorf("wavelet: node range [%d,%d), want [%d,%d)", v.lo, v.hi, lo, hi)
	}
	if v.bits.Len() != n {
		return fmt.Errorf("wavelet: node [%d,%d) bitmap length %d, want %d", lo, hi, v.bits.Len(), n)
	}
	mid := (lo + hi) / 2
	ones := v.bits.Ones()
	if err := checkShape(v.left, lo, mid, n-ones); err != nil {
		return err
	}
	return checkShape(v.right, mid, hi, ones)
}

// CheckAgainst verifies the tree is exactly the wavelet tree of seq:
//   - the node shape matches the recursion (a node exists iff its symbol
//     range holds more than one symbol; ranges partition at mid)
//   - every node's bitmap routes each position to the correct half and
//     passes the bitvec rank invariants
//   - Access reproduces seq
//   - Rank matches a running per-symbol count at sampled prefixes
//   - Select round-trips through Rank for every symbol
func (t *Tree) CheckAgainst(seq []byte) error {
	if len(seq) != t.n {
		return fmt.Errorf("wavelet: tree length %d, sequence length %d", t.n, len(seq))
	}
	if t.sigma < 1 || t.sigma > 256 {
		return fmt.Errorf("wavelet: invalid sigma %d", t.sigma)
	}
	for i, b := range seq {
		if int(b) >= t.sigma {
			return fmt.Errorf("wavelet: symbol %d at %d out of range [0,%d)", b, i, t.sigma)
		}
	}
	if err := checkNode(t.root, 0, t.sigma, seq); err != nil {
		return err
	}
	for i, b := range seq {
		if got := t.Access(i); got != b {
			return fmt.Errorf("wavelet: Access(%d) = %d, want %d", i, got, b)
		}
	}

	// Rank vs running counts at sampled prefixes (always including the
	// full prefix), then Select round-trips per symbol.
	counts := make([]int, t.sigma)
	stride := 1
	if t.n > 2048 {
		stride = t.n / 2048
	}
	check := func(i int) error {
		for c := 0; c < t.sigma; c++ {
			if got := t.Rank(byte(c), i); got != counts[c] {
				return fmt.Errorf("wavelet: Rank(%d, %d) = %d, want %d", c, i, got, counts[c])
			}
		}
		return nil
	}
	for i := 0; i < t.n; i++ {
		if i%stride == 0 {
			if err := check(i); err != nil {
				return err
			}
		}
		counts[seq[i]]++
	}
	if err := check(t.n); err != nil {
		return err
	}
	for c := 0; c < t.sigma; c++ {
		jStride := 1
		if counts[c] > 512 {
			jStride = counts[c] / 512
		}
		for j := 1; j <= counts[c]; j += jStride {
			p := t.Select(byte(c), j)
			if p < 0 || p >= t.n || seq[p] != byte(c) || t.Rank(byte(c), p) != j-1 {
				return fmt.Errorf("wavelet: Select(%d, %d) = %d fails round-trip", c, j, p)
			}
		}
		if p := t.Select(byte(c), counts[c]+1); p != -1 {
			return fmt.Errorf("wavelet: Select(%d, %d) = %d, want -1", c, counts[c]+1, p)
		}
	}
	return nil
}

// checkNode recursively verifies the subtree covering symbol range
// [lo, hi) against its subsequence.
func checkNode(v *node, lo, hi int, seq []byte) error {
	if hi-lo <= 1 {
		if v != nil {
			return fmt.Errorf("wavelet: leaf range [%d,%d) has an internal node", lo, hi)
		}
		return nil
	}
	if v == nil {
		return fmt.Errorf("wavelet: missing node for range [%d,%d)", lo, hi)
	}
	if v.lo != lo || v.hi != hi {
		return fmt.Errorf("wavelet: node range [%d,%d), want [%d,%d)", v.lo, v.hi, lo, hi)
	}
	if v.bits.Len() != len(seq) {
		return fmt.Errorf("wavelet: node [%d,%d) bitmap length %d, subsequence length %d",
			lo, hi, v.bits.Len(), len(seq))
	}
	if err := v.bits.CheckInvariants(); err != nil {
		return fmt.Errorf("wavelet: node [%d,%d): %w", lo, hi, err)
	}
	mid := (lo + hi) / 2
	var left, right []byte
	for i, b := range seq {
		if int(b) < lo || int(b) >= hi {
			return fmt.Errorf("wavelet: symbol %d routed into range [%d,%d)", b, lo, hi)
		}
		if int(b) >= mid {
			if !v.bits.Get(i) {
				return fmt.Errorf("wavelet: node [%d,%d) bit %d clear for upper-half symbol %d",
					lo, hi, i, b)
			}
			right = append(right, b)
		} else {
			if v.bits.Get(i) {
				return fmt.Errorf("wavelet: node [%d,%d) bit %d set for lower-half symbol %d",
					lo, hi, i, b)
			}
			left = append(left, b)
		}
	}
	if err := checkNode(v.left, lo, mid, left); err != nil {
		return err
	}
	return checkNode(v.right, mid, hi, right)
}
