package wavelet

import (
	"math/rand"
	"testing"
)

// TestCheckInvariants exercises the deep verification across alphabet
// sizes and shapes. In default builds CheckInvariants/CheckAgainst are
// no-ops; under -tags kminvariants they run the real checks.
func TestCheckInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, sigma := range []int{1, 2, 3, 5, 8, 17} {
		for _, n := range []int{0, 1, 2, 100, 1500} {
			seq := make([]byte, n)
			for i := range seq {
				seq[i] = byte(rng.Intn(sigma))
			}
			tr, err := New(seq, sigma)
			if err != nil {
				t.Fatalf("New(sigma=%d, n=%d): %v", sigma, n, err)
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Errorf("sigma=%d n=%d: %v", sigma, n, err)
			}
			if err := tr.CheckAgainst(seq); err != nil {
				t.Errorf("sigma=%d n=%d against source: %v", sigma, n, err)
			}
		}
	}
}
