//go:build kminvariants

package wavelet

import (
	"math/rand"
	"testing"

	"bwtmatch/internal/bitvec"
)

// TestCheckInvariantsDetectsCorruption tampers with the tree structure
// and bitmap payloads and requires the checks to notice. Only built
// under the kminvariants tag.
func TestCheckInvariantsDetectsCorruption(t *testing.T) {
	build := func() (*Tree, []byte) {
		rng := rand.New(rand.NewSource(17))
		seq := make([]byte, 800)
		for i := range seq {
			seq[i] = byte(rng.Intn(5))
		}
		tr, err := New(seq, 5)
		if err != nil {
			t.Fatal(err)
		}
		return tr, seq
	}

	tr, seq := build()
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("pristine tree rejected: %v", err)
	}

	// Swapped children: the left child now claims the upper symbol range.
	tr.root.left, tr.root.right = tr.root.right, tr.root.left
	if err := tr.CheckInvariants(); err == nil {
		t.Error("swapped children not detected")
	}

	// Flipped routing bit (rank directory rebuilt, so only the routing
	// is wrong): the tree no longer encodes the source sequence.
	tr, seq = build()
	tr.root.bits = flipBit(tr.root.bits, 40)
	if err := tr.CheckAgainst(seq); err == nil {
		t.Error("flipped root bit not detected against source sequence")
	}

	// Truncated subtree: an internal range with a missing node.
	tr, _ = build()
	tr.root.right = nil
	if err := tr.CheckInvariants(); err == nil {
		t.Error("missing subtree not detected")
	}
}

// flipBit rebuilds a rank structure with payload bit i flipped.
func flipBit(r *bitvec.Rank, i int) *bitvec.Rank {
	v := bitvec.New(r.Len())
	for p := 0; p < r.Len(); p++ {
		if r.Get(p) != (p == i) {
			v.Set(p)
		}
	}
	return bitvec.NewRank(v)
}
