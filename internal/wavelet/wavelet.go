// Package wavelet implements a wavelet tree: a succinct rank/select/access
// structure over sequences from a small alphabet. The DNA FM-index uses
// the specialized rankall tables of internal/fmindex (the paper's layout);
// the wavelet tree is the general-alphabet alternative the BWT literature
// uses for larger alphabets, and it cross-checks the rankall tables in
// tests.
package wavelet

import (
	"fmt"

	"bwtmatch/internal/bitvec"
)

// Tree is an immutable wavelet tree over symbols in [0, sigma).
type Tree struct {
	sigma int
	n     int
	root  *node
}

type node struct {
	// bits marks, for each position of the node's subsequence, whether
	// the symbol belongs to the upper half of the node's symbol range.
	bits        *bitvec.Rank
	lo, hi      int // symbol range [lo, hi)
	left, right *node
}

// New builds a wavelet tree over seq with alphabet size sigma.
func New(seq []byte, sigma int) (*Tree, error) {
	if sigma < 1 || sigma > 256 {
		return nil, fmt.Errorf("wavelet: invalid sigma %d", sigma)
	}
	for i, b := range seq {
		if int(b) >= sigma {
			return nil, fmt.Errorf("wavelet: symbol %d at %d out of range", b, i)
		}
	}
	t := &Tree{sigma: sigma, n: len(seq)}
	t.root = build(seq, 0, sigma)
	return t, nil
}

func build(seq []byte, lo, hi int) *node {
	if hi-lo <= 1 {
		return nil
	}
	mid := (lo + hi) / 2
	v := bitvec.New(len(seq))
	var left, right []byte
	for i, b := range seq {
		if int(b) >= mid {
			v.Set(i)
			right = append(right, b)
		} else {
			left = append(left, b)
		}
	}
	return &node{
		bits:  bitvec.NewRank(v),
		lo:    lo,
		hi:    hi,
		left:  build(left, lo, mid),
		right: build(right, mid, hi),
	}
}

// Len returns the sequence length.
func (t *Tree) Len() int { return t.n }

// Access returns the symbol at position i.
func (t *Tree) Access(i int) byte {
	v := t.root
	lo, hi := 0, t.sigma
	for v != nil {
		mid := (lo + hi) / 2
		if v.bits.Get(i) {
			i = v.bits.Rank1(i)
			lo = mid
			v = v.right
		} else {
			i = v.bits.Rank0(i)
			hi = mid
			v = v.left
		}
	}
	return byte(lo)
}

// Rank returns the number of occurrences of symbol c in seq[0:i].
func (t *Tree) Rank(c byte, i int) int {
	if int(c) >= t.sigma {
		return 0
	}
	v := t.root
	lo, hi := 0, t.sigma
	for v != nil {
		mid := (lo + hi) / 2
		if int(c) >= mid {
			i = v.bits.Rank1(i)
			lo = mid
			v = v.right
		} else {
			i = v.bits.Rank0(i)
			hi = mid
			v = v.left
		}
	}
	return i
}

// Select returns the position of the j-th occurrence (1-based) of symbol
// c, or -1 if there are fewer than j.
func (t *Tree) Select(c byte, j int) int {
	if int(c) >= t.sigma || j < 1 {
		return -1
	}
	p := t.selectRec(t.root, 0, t.sigma, c, j)
	if p >= t.n {
		return -1 // only reachable in the single-symbol (sigma==1) case
	}
	return p
}

func (t *Tree) selectRec(v *node, lo, hi int, c byte, j int) int {
	if v == nil {
		// Leaf range: position j-1 within the leaf subsequence.
		if j > 0 {
			return j - 1 // resolved by the caller's upward mapping
		}
		return -1
	}
	mid := (lo + hi) / 2
	var p int
	if int(c) >= mid {
		p = t.selectRec(v.right, mid, hi, c, j)
		if p < 0 {
			return -1
		}
		return v.bits.Select1(p + 1)
	}
	p = t.selectRec(v.left, lo, mid, c, j)
	if p < 0 {
		return -1
	}
	return v.bits.Select0(p + 1)
}
