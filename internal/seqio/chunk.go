package seqio

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
)

// Chunk is one piece of one record's sequence, delivered in input
// order. A record arrives as one or more chunks: First marks the
// opening piece (carrying a fresh ID), and subsequent pieces continue
// the same record. Seq aliases the reader's internal buffer and is
// valid only until the next call to Next.
type Chunk struct {
	ID    string
	First bool
	Seq   []byte
}

// ChunkReader streams FASTA, FASTQ or line-oriented input (format
// sniffed from the first byte, exactly like Reader) without ever
// materializing a whole record: sequence data is delivered in pieces no
// larger than the internal buffer, so indexing a multi-gigabase
// single-record FASTA needs O(buffer) reader memory. It is the input
// side of the streaming index builder; Reader remains the right tool
// when whole records are wanted.
type ChunkReader struct {
	br     *bufio.Reader
	mode   byte // '>', '@' or 0 for line mode
	lineNo int
	inited bool

	curID   string
	started bool // inside a record (FASTA)
	first   bool // next chunk opens the record
	emitted int  // sequence bytes emitted for the current record
	heldCR  bool // fragment ended in '\r'; resolved by the next read
}

// NewChunkReader wraps r with the default 64 KiB buffer.
func NewChunkReader(r io.Reader) *ChunkReader {
	return NewChunkReaderSize(r, 1<<16)
}

// NewChunkReaderSize wraps r with a specific buffer size (the maximum
// chunk length). Mainly for tests, which shrink it to force long lines
// to fragment.
func NewChunkReaderSize(r io.Reader, size int) *ChunkReader {
	return &ChunkReader{br: bufio.NewReaderSize(r, size)}
}

func (r *ChunkReader) init() error {
	if r.inited {
		return nil
	}
	r.inited = true
	b, err := r.br.Peek(1)
	if err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return err
	}
	switch b[0] {
	case '>', '@':
		r.mode = b[0]
	default:
		r.mode = 0
	}
	return nil
}

// Format reports the sniffed input format — "fasta", "fastq" or
// "lines" — reading the first byte if no chunk has been requested yet.
// Line-oriented inputs carry no sequence names ("line<n>" placeholders
// only), which index builders use to skip the reference table. Returns
// io.EOF for empty input.
func (r *ChunkReader) Format() (string, error) {
	if err := r.init(); err != nil {
		return "", err
	}
	switch r.mode {
	case '>':
		return "fasta", nil
	case '@':
		return "fastq", nil
	default:
		return "lines", nil
	}
}

// Next returns the next chunk, or io.EOF when the input is exhausted.
func (r *ChunkReader) Next() (Chunk, error) {
	if err := r.init(); err != nil {
		return Chunk{}, err
	}
	switch r.mode {
	case '>':
		return r.nextFasta()
	case '@':
		return r.nextFastq()
	default:
		return r.nextLine()
	}
}

// readFragment returns the next piece of the current line: up to the
// buffer's worth of bytes, with eol reporting whether the line ended
// within this piece. A '\r' at a fragment boundary is held back until
// the following read decides whether it closed a CRLF line ending or
// was literal (malformed) data.
func (r *ChunkReader) readFragment() (data []byte, eol bool, err error) {
	data, err = r.br.ReadSlice('\n')
	switch err {
	case nil:
		r.lineNo++
		data = bytes.TrimRight(data, "\r\n")
		eol = true
	case bufio.ErrBufferFull:
		err = nil
	case io.EOF:
		if len(data) == 0 {
			return nil, false, io.EOF
		}
		r.lineNo++
		data = bytes.TrimRight(data, "\r")
		eol = true
		err = nil
	default:
		return nil, false, err
	}
	if r.heldCR {
		r.heldCR = false
		if !(eol && len(data) == 0) {
			// The carriage return did not precede a line feed: surface
			// it as data so downstream validation rejects it, exactly
			// as a mid-line '\r' read whole would be.
			data = append([]byte{'\r'}, data...)
		}
	}
	if !eol && len(data) > 0 && data[len(data)-1] == '\r' {
		r.heldCR = true
		data = data[:len(data)-1]
	}
	return data, eol, nil
}

func (r *ChunkReader) nextFasta() (Chunk, error) {
	for {
		b, err := r.br.Peek(1)
		if err != nil {
			if r.started && r.emitted == 0 {
				return Chunk{}, fmt.Errorf("%w: line %d: record %q has no sequence", ErrFormat, r.lineNo, r.curID)
			}
			if err == io.EOF {
				return Chunk{}, io.EOF
			}
			return Chunk{}, err
		}
		if b[0] == '>' && !r.heldCR {
			if r.started && r.emitted == 0 {
				return Chunk{}, fmt.Errorf("%w: line %d: record %q has no sequence", ErrFormat, r.lineNo, r.curID)
			}
			// Header lines are bounded by the buffer (a header longer
			// than the buffer is rejected, not silently split).
			header, eol, err := r.readFragment()
			if err != nil {
				return Chunk{}, err
			}
			if !eol {
				return Chunk{}, fmt.Errorf("%w: line %d: header exceeds the %d-byte buffer", ErrFormat, r.lineNo, r.br.Size())
			}
			r.curID = string(header[1:])
			r.started = true
			r.first = true
			r.emitted = 0
			continue
		}
		data, _, err := r.readFragment()
		if err != nil {
			return Chunk{}, err
		}
		if len(data) == 0 {
			continue // blank line (or a bare CRLF)
		}
		if !r.started {
			return Chunk{}, fmt.Errorf("%w: line %d: expected '>' header", ErrFormat, r.lineNo)
		}
		ch := Chunk{ID: r.curID, First: r.first, Seq: data}
		r.first = false
		r.emitted += len(data)
		return ch, nil
	}
}

// nextFastq delivers one whole FASTQ record per chunk: reads are short,
// so record-at-a-time is already bounded. The parse matches
// Reader.nextFastq.
func (r *ChunkReader) nextFastq() (Chunk, error) {
	header, eol, err := r.readFragment()
	if err != nil {
		return Chunk{}, io.EOF
	}
	if !eol || len(header) == 0 || header[0] != '@' {
		return Chunk{}, fmt.Errorf("%w: line %d: expected '@' header", ErrFormat, r.lineNo)
	}
	id := string(header[1:])
	seq, eol, err := r.readFragment()
	if err != nil || !eol {
		return Chunk{}, fmt.Errorf("%w: line %d: truncated record", ErrFormat, r.lineNo)
	}
	seqCopy := append([]byte(nil), seq...)
	plus, eol, err := r.readFragment()
	if err != nil || !eol || len(plus) == 0 || plus[0] != '+' {
		return Chunk{}, fmt.Errorf("%w: line %d: expected '+' separator", ErrFormat, r.lineNo)
	}
	qual, eol, err := r.readFragment()
	if err != nil || !eol {
		return Chunk{}, fmt.Errorf("%w: line %d: missing quality line", ErrFormat, r.lineNo)
	}
	if len(qual) != len(seqCopy) {
		return Chunk{}, fmt.Errorf("%w: line %d: %d quality bytes for %d bases",
			ErrFormat, r.lineNo, len(qual), len(seqCopy))
	}
	return Chunk{ID: id, First: true, Seq: seqCopy}, nil
}

func (r *ChunkReader) nextLine() (Chunk, error) {
	for {
		data, eol, err := r.readFragment()
		if err != nil {
			return Chunk{}, io.EOF
		}
		if len(data) == 0 {
			if eol {
				r.started = false
			}
			continue
		}
		// A fragmented long line is one record: First only on the
		// opening fragment. readFragment bumps lineNo only when a line
		// ends, so the line's number is lineNo if this fragment closed
		// it and lineNo+1 if the line is still open.
		first := !r.started
		if first {
			n := r.lineNo + 1
			if eol {
				n = r.lineNo
			}
			r.curID = fmt.Sprintf("line%d", n)
		}
		r.started = !eol
		return Chunk{ID: r.curID, First: first, Seq: data}, nil
	}
}
