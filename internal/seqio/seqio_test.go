package seqio

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"strings"
	"testing"
)

func readAll(t *testing.T, input string) []Record {
	t.Helper()
	recs, err := NewReader(strings.NewReader(input)).ReadAll()
	if err != nil {
		t.Fatalf("ReadAll(%q): %v", input, err)
	}
	return recs
}

func TestFastaSingle(t *testing.T) {
	recs := readAll(t, ">chr1 test\nacgt\nACGT\n")
	if len(recs) != 1 {
		t.Fatalf("%d records", len(recs))
	}
	if recs[0].ID != "chr1 test" || string(recs[0].Seq) != "acgtACGT" || recs[0].Qual != nil {
		t.Fatalf("record = %+v", recs[0])
	}
}

func TestFastaMulti(t *testing.T) {
	recs := readAll(t, ">a\nac\ngt\n>b\ntttt\n")
	if len(recs) != 2 || string(recs[0].Seq) != "acgt" || string(recs[1].Seq) != "tttt" {
		t.Fatalf("records = %+v", recs)
	}
}

func TestFastaCRLF(t *testing.T) {
	recs := readAll(t, ">a\r\nacgt\r\n")
	if string(recs[0].Seq) != "acgt" {
		t.Fatalf("CRLF seq = %q", recs[0].Seq)
	}
}

func TestFastaNoTrailingNewline(t *testing.T) {
	recs := readAll(t, ">a\nacgt")
	if len(recs) != 1 || string(recs[0].Seq) != "acgt" {
		t.Fatalf("records = %+v", recs)
	}
}

func TestFastaEmptySequence(t *testing.T) {
	_, err := NewReader(strings.NewReader(">a\n>b\nacgt\n")).ReadAll()
	if !errors.Is(err, ErrFormat) {
		t.Errorf("empty record error = %v", err)
	}
}

func TestFastq(t *testing.T) {
	recs := readAll(t, "@r1\nacgt\n+\nIIII\n@r2\ntt\n+anything\n;;\n")
	if len(recs) != 2 {
		t.Fatalf("%d records", len(recs))
	}
	if recs[0].ID != "r1" || string(recs[0].Seq) != "acgt" || string(recs[0].Qual) != "IIII" {
		t.Fatalf("r1 = %+v", recs[0])
	}
	if string(recs[1].Qual) != ";;" {
		t.Fatalf("r2 = %+v", recs[1])
	}
}

func TestFastqQualityMismatch(t *testing.T) {
	_, err := NewReader(strings.NewReader("@r\nacgt\n+\nII\n")).ReadAll()
	if !errors.Is(err, ErrFormat) {
		t.Errorf("quality mismatch error = %v", err)
	}
}

func TestFastqMissingPlus(t *testing.T) {
	_, err := NewReader(strings.NewReader("@r\nacgt\nIIII\n")).ReadAll()
	if !errors.Is(err, ErrFormat) {
		t.Errorf("missing plus error = %v", err)
	}
}

func TestLineMode(t *testing.T) {
	recs := readAll(t, "acgt\n\nttaa\n")
	if len(recs) != 2 || string(recs[0].Seq) != "acgt" || string(recs[1].Seq) != "ttaa" {
		t.Fatalf("records = %+v", recs)
	}
}

func TestEmptyInput(t *testing.T) {
	r := NewReader(strings.NewReader(""))
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("empty input: %v", err)
	}
}

func TestWriteFastaRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(161))
	recs := make([]Record, 3)
	for i := range recs {
		seq := make([]byte, 1+rng.Intn(300))
		for j := range seq {
			seq[j] = "acgt"[rng.Intn(4)]
		}
		recs[i] = Record{ID: strings.Repeat("x", i+1), Seq: seq}
	}
	var buf bytes.Buffer
	if err := WriteFasta(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("%d records after round trip", len(got))
	}
	for i := range recs {
		if got[i].ID != recs[i].ID || !bytes.Equal(got[i].Seq, recs[i].Seq) {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestWriteFastqRoundTrip(t *testing.T) {
	recs := []Record{
		{ID: "a", Seq: []byte("acgt"), Qual: []byte("IIJJ")},
		{ID: "b", Seq: []byte("tt")}, // placeholder qualities
	}
	var buf bytes.Buffer
	if err := WriteFastq(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || string(got[0].Qual) != "IIJJ" || string(got[1].Qual) != "II" {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestWriteFastqRejectsBadQual(t *testing.T) {
	err := WriteFastq(io.Discard, []Record{{ID: "a", Seq: []byte("acgt"), Qual: []byte("I")}})
	if !errors.Is(err, ErrFormat) {
		t.Errorf("bad qual error = %v", err)
	}
}

func TestLongFastaWrapped(t *testing.T) {
	seq := bytes.Repeat([]byte("acgt"), 100)
	var buf bytes.Buffer
	if err := WriteFasta(&buf, []Record{{ID: "long", Seq: seq}}); err != nil {
		t.Fatal(err)
	}
	for _, line := range bytes.Split(buf.Bytes(), []byte("\n")) {
		if len(line) > 70 {
			t.Fatalf("line longer than wrap width: %d", len(line))
		}
	}
	got := readAll(t, buf.String())
	if !bytes.Equal(got[0].Seq, seq) {
		t.Fatal("wrapped sequence did not round trip")
	}
}
