package seqio

import (
	"errors"
	"io"
	"math/rand"
	"strings"
	"testing"
)

// reassemble drains a ChunkReader and glues chunks back into whole
// records, so every test below can check equivalence with Reader.
func reassemble(t *testing.T, r *ChunkReader) []Record {
	t.Helper()
	var recs []Record
	for {
		ch, err := r.Next()
		if err == io.EOF {
			return recs
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if ch.First {
			recs = append(recs, Record{ID: ch.ID})
		} else {
			if len(recs) == 0 {
				t.Fatalf("continuation chunk %+v before any First chunk", ch)
			}
			if got := recs[len(recs)-1].ID; got != ch.ID {
				t.Fatalf("continuation chunk ID %q inside record %q", ch.ID, got)
			}
		}
		last := &recs[len(recs)-1]
		last.Seq = append(last.Seq, ch.Seq...)
	}
}

func checkChunksMatchReader(t *testing.T, input string, bufSize int) {
	t.Helper()
	want, err := NewReader(strings.NewReader(input)).ReadAll()
	if err != nil {
		t.Fatalf("ReadAll(%q): %v", input, err)
	}
	got := reassemble(t, NewChunkReaderSize(strings.NewReader(input), bufSize))
	if len(got) != len(want) {
		t.Fatalf("bufSize=%d: %d records via chunks, %d via Reader", bufSize, len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID || string(got[i].Seq) != string(want[i].Seq) {
			t.Fatalf("bufSize=%d record %d: chunks gave %q/%q, Reader %q/%q",
				bufSize, i, got[i].ID, got[i].Seq, want[i].ID, want[i].Seq)
		}
	}
}

func TestChunkReaderMatchesReader(t *testing.T) {
	inputs := []string{
		">chr1 test\nacgt\nACGT\n",
		">a\nac\ngt\n>b\ntttt\n",
		">a\r\nacgt\r\n>b\r\ncc\r\n",
		">a\nacgt",
		">a\n\nac\n\ngt\n",
		"@r1\nacgt\n+\nIIII\n@r2\ntt\n+anything\n;;\n",
		"acgtacgt\nttttt\n",
		"acgt\n\n\ncc\n",
		"acgt",
	}
	for _, input := range inputs {
		for _, bufSize := range []int{16, 64, 1 << 16} {
			checkChunksMatchReader(t, input, bufSize)
		}
	}
}

// TestChunkReaderLongLines forces sequence lines much longer than the
// buffer, so single lines arrive as many fragments — the case the chunk
// reader exists for. Includes CRLF endings so the held-back '\r' path
// at fragment boundaries is exercised across every split position.
func TestChunkReaderLongLines(t *testing.T) {
	rng := rand.New(rand.NewSource(991))
	line := make([]byte, 1000)
	for i := range line {
		line[i] = "acgt"[rng.Intn(4)]
	}
	for _, nl := range []string{"\n", "\r\n"} {
		fasta := ">big" + nl + string(line) + nl + string(line[:333]) + nl +
			">tail" + nl + string(line[:100]) + nl
		lineMode := string(line) + nl + string(line[:77]) + nl
		// Buffer sizes 16..40 sweep the '\r' across every boundary
		// offset; ReadSlice fragments are bufSize-length, so some size
		// in the range lands the '\r' exactly at a fragment edge.
		for bufSize := 16; bufSize <= 40; bufSize++ {
			checkChunksMatchReader(t, fasta, bufSize)
			checkChunksMatchReader(t, lineMode, bufSize)
		}
	}
}

func TestChunkReaderFirstFlags(t *testing.T) {
	r := NewChunkReaderSize(strings.NewReader(">a\nacgt\ncc\n>b\ntt\n"), 1<<16)
	var firsts []bool
	var ids []string
	for {
		ch, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		firsts = append(firsts, ch.First)
		ids = append(ids, ch.ID)
	}
	wantFirsts := []bool{true, false, true}
	wantIDs := []string{"a", "a", "b"}
	if len(firsts) != len(wantFirsts) {
		t.Fatalf("%d chunks, want %d", len(firsts), len(wantFirsts))
	}
	for i := range wantFirsts {
		if firsts[i] != wantFirsts[i] || ids[i] != wantIDs[i] {
			t.Fatalf("chunk %d = first=%v id=%q, want first=%v id=%q",
				i, firsts[i], ids[i], wantFirsts[i], wantIDs[i])
		}
	}
}

func TestChunkReaderErrors(t *testing.T) {
	cases := []string{
		">a\n>b\nacgt\n",        // empty record mid-file
		">a\nacgt\n>b\n",        // empty record at EOF
		">a\n",                  // lone header
		"@r1\nacgt\n+\nIII\n",   // quality length mismatch
		"@r1\nacgt\n",           // truncated FASTQ
		"@r1\nacgt\nIIII\nxx\n", // missing '+' separator
	}
	for _, input := range cases {
		r := NewChunkReaderSize(strings.NewReader(input), 1<<16)
		var err error
		for err == nil {
			_, err = r.Next()
		}
		if !errors.Is(err, ErrFormat) {
			t.Errorf("input %q: error = %v, want ErrFormat", input, err)
		}
	}
}

func TestChunkReaderLongHeaderRejected(t *testing.T) {
	input := ">" + strings.Repeat("x", 100) + "\nacgt\n"
	r := NewChunkReaderSize(strings.NewReader(input), 32)
	var err error
	for err == nil {
		_, err = r.Next()
	}
	if !errors.Is(err, ErrFormat) {
		t.Errorf("overlong header error = %v, want ErrFormat", err)
	}
}

func TestChunkReaderEmptyInput(t *testing.T) {
	if _, err := NewChunkReader(strings.NewReader("")).Next(); err != io.EOF {
		t.Fatalf("empty input error = %v, want io.EOF", err)
	}
}
