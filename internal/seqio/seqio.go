// Package seqio reads and writes the two sequence formats DNA pipelines
// actually use — FASTA for references and FASTQ for reads — plus the
// bare one-sequence-per-line format of the cmd tools. Parsing is
// streaming and allocation-conscious: multi-gigabase references arrive
// in one record without quadratic re-copying.
package seqio

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
)

// Record is one sequence with its metadata.
type Record struct {
	// ID is the header text after '>' or '@' (up to the first newline).
	ID string
	// Seq is the raw sequence bytes (no newlines).
	Seq []byte
	// Qual holds FASTQ quality bytes; nil for FASTA records.
	Qual []byte
}

// ErrFormat reports malformed input.
var ErrFormat = errors.New("seqio: malformed input")

// Reader streams records from FASTA, FASTQ or line-oriented input; the
// format is sniffed from the first byte.
type Reader struct {
	br     *bufio.Reader
	mode   byte // '>', '@' or 0 for line mode
	lineNo int
	inited bool
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 1<<16)}
}

func (r *Reader) init() error {
	if r.inited {
		return nil
	}
	r.inited = true
	b, err := r.br.Peek(1)
	if err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return err
	}
	switch b[0] {
	case '>', '@':
		r.mode = b[0]
	default:
		r.mode = 0
	}
	return nil
}

// Next returns the next record, or io.EOF when the input is exhausted.
func (r *Reader) Next() (Record, error) {
	if err := r.init(); err != nil {
		return Record{}, err
	}
	switch r.mode {
	case '>':
		return r.nextFasta()
	case '@':
		return r.nextFastq()
	default:
		return r.nextLine()
	}
}

// ReadAll drains the reader.
func (r *Reader) ReadAll() ([]Record, error) {
	var out []Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
}

func (r *Reader) readLine() ([]byte, error) {
	line, err := r.br.ReadBytes('\n')
	if len(line) > 0 {
		r.lineNo++
		line = bytes.TrimRight(line, "\r\n")
		return line, nil
	}
	return nil, err
}

func (r *Reader) nextLine() (Record, error) {
	for {
		line, err := r.readLine()
		if err != nil {
			return Record{}, io.EOF
		}
		if len(line) == 0 {
			continue
		}
		return Record{ID: fmt.Sprintf("line%d", r.lineNo), Seq: line}, nil
	}
}

func (r *Reader) nextFasta() (Record, error) {
	header, err := r.readLine()
	if err != nil {
		return Record{}, io.EOF
	}
	if len(header) == 0 || header[0] != '>' {
		return Record{}, fmt.Errorf("%w: line %d: expected '>' header", ErrFormat, r.lineNo)
	}
	rec := Record{ID: string(header[1:])}
	for {
		b, err := r.br.Peek(1)
		if err != nil || b[0] == '>' {
			break
		}
		line, err := r.readLine()
		if err != nil {
			break
		}
		rec.Seq = append(rec.Seq, line...)
	}
	if len(rec.Seq) == 0 {
		return Record{}, fmt.Errorf("%w: line %d: record %q has no sequence", ErrFormat, r.lineNo, rec.ID)
	}
	return rec, nil
}

func (r *Reader) nextFastq() (Record, error) {
	header, err := r.readLine()
	if err != nil {
		return Record{}, io.EOF
	}
	if len(header) == 0 || header[0] != '@' {
		return Record{}, fmt.Errorf("%w: line %d: expected '@' header", ErrFormat, r.lineNo)
	}
	seq, err := r.readLine()
	if err != nil {
		return Record{}, fmt.Errorf("%w: line %d: truncated record", ErrFormat, r.lineNo)
	}
	plus, err := r.readLine()
	if err != nil || len(plus) == 0 || plus[0] != '+' {
		return Record{}, fmt.Errorf("%w: line %d: expected '+' separator", ErrFormat, r.lineNo)
	}
	qual, err := r.readLine()
	if err != nil {
		return Record{}, fmt.Errorf("%w: line %d: missing quality line", ErrFormat, r.lineNo)
	}
	if len(qual) != len(seq) {
		return Record{}, fmt.Errorf("%w: line %d: %d quality bytes for %d bases",
			ErrFormat, r.lineNo, len(qual), len(seq))
	}
	return Record{ID: string(header[1:]), Seq: append([]byte(nil), seq...), Qual: append([]byte(nil), qual...)}, nil
}

// lineWidth is the wrap width for FASTA output.
const lineWidth = 70

// WriteFasta writes records in FASTA format.
func WriteFasta(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	for _, rec := range recs {
		if _, err := fmt.Fprintf(bw, ">%s\n", rec.ID); err != nil {
			return err
		}
		for off := 0; off < len(rec.Seq); off += lineWidth {
			end := off + lineWidth
			if end > len(rec.Seq) {
				end = len(rec.Seq)
			}
			bw.Write(rec.Seq[off:end])
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// WriteFastq writes records in FASTQ format; records without qualities
// get a constant placeholder ('I' = Q40).
func WriteFastq(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	for _, rec := range recs {
		qual := rec.Qual
		if qual == nil {
			qual = bytes.Repeat([]byte{'I'}, len(rec.Seq))
		}
		if len(qual) != len(rec.Seq) {
			return fmt.Errorf("%w: record %q: quality length mismatch", ErrFormat, rec.ID)
		}
		if _, err := fmt.Fprintf(bw, "@%s\n%s\n+\n%s\n", rec.ID, rec.Seq, qual); err != nil {
			return err
		}
	}
	return bw.Flush()
}
