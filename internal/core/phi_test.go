package core

import (
	"bytes"
	"math/rand"
	"testing"

	"bwtmatch/internal/fmindex"
	"bwtmatch/internal/naive"
)

// naivePhi computes φ per its definition: the number of consecutive,
// disjoint substrings of pattern[i:] absent from the target, taking at
// each step the SHORTEST absent prefix (greedy), which is what the
// FM-based computation produces.
func naivePhi(text, pattern []byte) []int {
	m := len(pattern)
	occurs := func(sub []byte) bool {
		return len(naive.Find(text, sub, 0)) > 0
	}
	phi := make([]int, m+1)
	for i := m - 1; i >= 0; i-- {
		// Find the smallest q >= i with pattern[i..q] absent.
		q := i
		for q < m && occurs(pattern[i:q+1]) {
			q++
		}
		if q >= m {
			phi[i] = 0
		} else {
			phi[i] = 1 + phi[q+1]
		}
	}
	return phi
}

func TestComputePhiAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 60; trial++ {
		text := randomRanks(rng, 20+rng.Intn(300))
		s, err := NewSearcher(text, fmindex.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < 5; q++ {
			m := 1 + rng.Intn(25)
			var pattern []byte
			if rng.Intn(2) == 0 && len(text) > m {
				p := rng.Intn(len(text) - m)
				pattern = append([]byte(nil), text[p:p+m]...)
				pattern[rng.Intn(m)] = byte(1 + rng.Intn(4))
			} else {
				pattern = randomRanks(rng, m)
			}
			got, _ := s.computePhi(NewScratch(), pattern)
			want := naivePhi(text, pattern)
			if len(got) != len(want) {
				t.Fatalf("phi length %d, want %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("phi[%d] = %d, want %d (text=%v pattern=%v)",
						i, got[i], want[i], text, pattern)
				}
			}
		}
	}
}

func TestPhiIsLowerBound(t *testing.T) {
	// φ[i] must never exceed the true minimal number of mismatches of any
	// alignment of pattern[i:] in the target — otherwise pruning with it
	// would drop real matches.
	rng := rand.New(rand.NewSource(82))
	for trial := 0; trial < 40; trial++ {
		text := randomRanks(rng, 30+rng.Intn(200))
		s, _ := NewSearcher(text, fmindex.DefaultOptions())
		m := 3 + rng.Intn(15)
		if m > len(text) {
			m = len(text)
		}
		pattern := randomRanks(rng, m)
		phi, _ := s.computePhi(NewScratch(), pattern)
		for i := 0; i <= m; i++ {
			suffix := pattern[i:]
			if len(suffix) == 0 {
				if phi[i] != 0 {
					t.Fatalf("phi[m] = %d", phi[i])
				}
				continue
			}
			best := len(suffix) + 1
			for p := 0; p+len(suffix) <= len(text); p++ {
				if d := naive.Hamming(text[p:p+len(suffix)], suffix, len(suffix)); d < best {
					best = d
				}
			}
			if len(text) >= len(suffix) && phi[i] > best {
				t.Fatalf("phi[%d] = %d exceeds true minimum %d (suffix %v, text %v)",
					i, phi[i], best, suffix, text)
			}
		}
	}
}

func TestPhiZeroForPlantedPattern(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	text := randomRanks(rng, 1000)
	s, _ := NewSearcher(text, fmindex.DefaultOptions())
	pattern := text[200:240]
	phi, _ := s.computePhi(NewScratch(), pattern)
	for i, v := range phi {
		if v != 0 {
			t.Fatalf("phi[%d] = %d for an exactly-occurring pattern", i, v)
		}
	}
}

func TestPhiPaperSemantics(t *testing.T) {
	// Paper example (§IV-A): s = acagaca, r = tcaca: φ(1) = 2 because both
	// "t" and "cac" are absent; φ(3) = 0 since every substring of "aca"
	// occurs. (1-based paper positions; 0-based here.)
	text := mustRanks(t, "acagaca")
	s, _ := NewSearcher(text, fmindex.DefaultOptions())
	pattern := mustRanks(t, "tcaca")
	phi, _ := s.computePhi(NewScratch(), pattern)
	if phi[0] != 2 {
		t.Errorf("phi[0] = %d, want 2", phi[0])
	}
	if phi[2] != 0 {
		t.Errorf("phi[2] = %d, want 0", phi[2])
	}
}

func mustRanks(t *testing.T, s string) []byte {
	t.Helper()
	out := make([]byte, len(s))
	for i := range s {
		switch s[i] {
		case 'a':
			out[i] = 1
		case 'c':
			out[i] = 2
		case 'g':
			out[i] = 3
		case 't':
			out[i] = 4
		default:
			t.Fatalf("bad char %q", s[i])
		}
	}
	return out
}

func TestPhiEmptyishInputs(t *testing.T) {
	text := []byte{1, 2, 3}
	s, _ := NewSearcher(text, fmindex.DefaultOptions())
	phi, _ := s.computePhi(NewScratch(), []byte{4})
	if !bytes.Equal(intsToBytes(phi), []byte{1, 0}) {
		t.Fatalf("phi for absent single char = %v", phi)
	}
}

func intsToBytes(in []int) []byte {
	out := make([]byte, len(in))
	for i, v := range in {
		out[i] = byte(v)
	}
	return out
}
