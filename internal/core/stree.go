package core

import (
	"bwtmatch/internal/alphabet"
	"bwtmatch/internal/fmindex"
	"bwtmatch/internal/obs"
)

// searchSTree is the brute-force S-tree traversal of [34] (§IV-A): a DFS
// over ⟨x, [α, β]⟩ pairs, branching into all four bases at every level and
// charging one mismatch whenever the consumed base differs from the
// pattern character at that level. When usePhi is set, the φ(i) heuristic
// prunes branches that provably cannot finish within budget. A non-nil tr
// receives a phi span plus one EvLeaf per maximal path, matching
// Stats.MTreeLeaves exactly as in the M-tree search.
func (s *Searcher) searchSTree(sc *Scratch, pattern []byte, k int, usePhi bool, stats *Stats, tr obs.Tracer) []leaf {
	m := len(pattern)
	var phi []int
	if usePhi {
		if tr != nil {
			tr.Begin("phi")
		}
		var phiSteps int
		phi, phiSteps = s.computePhi(sc, pattern)
		if tr != nil {
			tr.End(
				obs.Arg{Key: "phi0", Val: int64(phi[0])},
				obs.Arg{Key: "step_calls", Val: int64(phiSteps)})
		}
	}

	stack := append(sc.frames[:0], frame{iv: s.idx.Full()})
	leaves := sc.out[:0]
	defer func() { sc.frames, sc.out = stack, leaves }()
	var kids [alphabet.Bases]fmindex.Interval
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		stats.Nodes++
		if f.j == m {
			stats.MTreeLeaves++
			if tr != nil {
				tr.Emit(obs.EvLeaf,
					obs.Arg{Key: "mism", Val: int64(f.mism)},
					obs.Arg{Key: "rows", Val: int64(f.iv.Len())})
			}
			leaves = append(leaves, leaf{iv: f.iv, mism: f.mism})
			continue
		}
		s.idx.StepAll(f.iv, &kids)
		stats.StepCalls++
		pushed := false
		for x := byte(alphabet.A); x <= alphabet.T; x++ {
			civ := kids[x-1]
			if civ.Empty() {
				continue
			}
			e := f.mism
			if x != pattern[f.j] {
				e++
				if e > k {
					continue
				}
			}
			if usePhi && e+phi[f.j+1] > k {
				stats.PhiPruned++
				continue
			}
			stack = append(stack, frame{iv: civ, j: f.j + 1, mism: e})
			pushed = true
		}
		if !pushed {
			// Dead end: a maximal path terminates here.
			stats.MTreeLeaves++
			if tr != nil {
				tr.Emit(obs.EvLeaf)
			}
		}
	}
	return leaves
}

// computePhi returns φ where φ[i] (0-based, φ[m] = 0) is the number of
// consecutive, disjoint substrings of pattern[i:] that do not occur in the
// target (§IV-A). Each absent substring forces at least one mismatch, so a
// branch with e mismatches spent at position i is hopeless if e + φ[i] > k.
// The second result is the number of backward-search steps spent on the
// occurrence tests (reported in the traced phi span; not part of
// Stats.StepCalls, which counts only traversal work).
//
// absentEnd[i] = the smallest q such that pattern[i..q] is absent from the
// target (or m if no prefix of pattern[i:] is absent). Occurrence tests are
// forward extensions of the pattern, which on the reverse-text index are
// plain backward-search steps.
func (s *Searcher) computePhi(sc *Scratch, pattern []byte) ([]int, int) {
	m := len(pattern)
	steps := 0
	sc.absent = intBuf(sc.absent, m)
	absentEnd := sc.absent
	for i := 0; i < m; i++ {
		matched, st := s.idx.MatchLen(pattern[i:])
		steps += st
		absentEnd[i] = i + matched // pattern[i..i+matched] is absent (== m: none)
	}
	sc.phi = intBuf(sc.phi, m+1)
	phi := sc.phi
	phi[m] = 0
	for i := m - 1; i >= 0; i-- {
		if absentEnd[i] >= m {
			phi[i] = 0
		} else {
			phi[i] = 1 + phi[absentEnd[i]+1]
		}
	}
	return phi, steps
}
