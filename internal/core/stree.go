package core

import (
	"bwtmatch/internal/alphabet"
	"bwtmatch/internal/fmindex"
)

// searchSTree is the brute-force S-tree traversal of [34] (§IV-A): a DFS
// over ⟨x, [α, β]⟩ pairs, branching into all four bases at every level and
// charging one mismatch whenever the consumed base differs from the
// pattern character at that level. When usePhi is set, the φ(i) heuristic
// prunes branches that provably cannot finish within budget.
func (s *Searcher) searchSTree(pattern []byte, k int, usePhi bool, stats *Stats) []leaf {
	m := len(pattern)
	var phi []int
	if usePhi {
		phi = s.computePhi(pattern)
	}

	type frame struct {
		iv   fmindex.Interval
		j    int // characters consumed so far
		mism int
	}
	stack := []frame{{iv: s.idx.Full()}}
	var leaves []leaf
	var kids [alphabet.Bases]fmindex.Interval
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		stats.Nodes++
		if f.j == m {
			stats.MTreeLeaves++
			leaves = append(leaves, leaf{iv: f.iv, mism: f.mism})
			continue
		}
		s.idx.StepAll(f.iv, &kids)
		stats.StepCalls++
		pushed := false
		for x := byte(alphabet.A); x <= alphabet.T; x++ {
			civ := kids[x-1]
			if civ.Empty() {
				continue
			}
			e := f.mism
			if x != pattern[f.j] {
				e++
				if e > k {
					continue
				}
			}
			if usePhi && e+phi[f.j+1] > k {
				stats.PhiPruned++
				continue
			}
			stack = append(stack, frame{iv: civ, j: f.j + 1, mism: e})
			pushed = true
		}
		if !pushed {
			// Dead end: a maximal path terminates here.
			stats.MTreeLeaves++
		}
	}
	return leaves
}

// computePhi returns φ where φ[i] (0-based, φ[m] = 0) is the number of
// consecutive, disjoint substrings of pattern[i:] that do not occur in the
// target (§IV-A). Each absent substring forces at least one mismatch, so a
// branch with e mismatches spent at position i is hopeless if e + φ[i] > k.
//
// absentEnd[i] = the smallest q such that pattern[i..q] is absent from the
// target (or m if no prefix of pattern[i:] is absent). Occurrence tests are
// forward extensions of the pattern, which on the reverse-text index are
// plain backward-search steps.
func (s *Searcher) computePhi(pattern []byte) []int {
	m := len(pattern)
	absentEnd := make([]int, m)
	for i := 0; i < m; i++ {
		iv := s.idx.Full()
		q := i
		for q < m {
			iv = s.idx.Step(pattern[q], iv)
			if iv.Empty() {
				break
			}
			q++
		}
		absentEnd[i] = q // pattern[i..q] is absent (q == m means none)
	}
	phi := make([]int, m+1)
	for i := m - 1; i >= 0; i-- {
		if absentEnd[i] >= m {
			phi[i] = 0
		} else {
			phi[i] = 1 + phi[absentEnd[i]+1]
		}
	}
	return phi
}
