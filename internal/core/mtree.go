package core

import (
	"bwtmatch/internal/alphabet"
	"bwtmatch/internal/fmindex"
	"bwtmatch/internal/mismatch"
	"bwtmatch/internal/obs"
)

// Algorithm A (paper §IV-C/D). The S-tree is explored depth-first, but
// explored subtrees are recorded in a hash table keyed by their BWT
// interval. A BWT interval determines the entire structure of the subtree
// below it (which continuations exist, with which intervals) independently
// of the pattern position it is compared against; only the match/mismatch
// classification depends on the alignment. So when an interval recurs at a
// different pattern position, the cached structure is *derived* against
// the new alignment using the pattern's self-mismatch information (the
// R_ij stream) instead of re-searching the BWT.
//
// The cached form is the paper's M-tree: maximal match runs (w.r.t. the
// alignment they were explored under) are collapsed into run nodes;
// mismatching children hang off run levels as branches. Derivation jumps
// between events (branch offsets, alignment-mismatch offsets from the
// R_ij stream, and the run end), so a long match run costs O(#events),
// the per-path O(k) the paper claims.
//
// Engineering refinements on top of the paper (DESIGN.md §3.4/3.5):
//
//   - Only multi-row intervals are structured and memoized. A one-row
//     interval has exactly one continuation per level, so its subtree is a
//     chain; chains are walked by a tight, allocation-free loop
//     (singletonWalk) both during exploration and during derivation. This
//     keeps the hash table proportional to the repeat structure of the
//     target rather than to the whole S-tree.
//
//   - All M-tree state lives in flat, pointer-free arenas (runs and
//     branches addressed by index, the memo keyed by the packed interval),
//     so a search allocates a handful of slices rather than one node per
//     S-tree vertex. Interior run intervals are recomputed by re-stepping
//     the run's (known) match characters when a fallback needs one.
//
//   - Exploration and derivation both honor the φ(i) lower bound (§IV-A):
//     any completion of r[i..m] needs at least φ[i] mismatches regardless
//     of alignment, so a node whose budget is below φ of its own alignment
//     position is pruned. Branches the cached exploration pruned this way
//     are kept as interval stubs, so a later alignment with a laxer φ can
//     resume them live.
//
//   - Under-specified repeat cases fall back to live search: a repeat
//     arriving with a larger remaining budget than the cached exploration
//     used, and continuations the cached exploration never needed (deeper
//     alignments, budget-starved branch sets). Fallbacks re-enter the same
//     memoized machinery, so each interval is re-explored at most k+1
//     times.

// structuredMin is the smallest interval width that is structured and
// memoized. Narrower intervals have subtrees so small that re-walking
// them live is cheaper than recording and deriving them; wider intervals
// are exactly the repeat regions where the paper's reuse pays off.
const structuredMin = 64

// runEnd describes why an mrun stopped.
type runEnd uint8

const (
	endComplete runEnd = iota // reached pattern depth m under its alignment
	endDead                   // the match continuation interval was empty
	endPhiCut                 // pruned by the φ bound of its own alignment
	endNarrow                 // the match continuation narrowed below structuredMin
)

// branchKind classifies an mbranch.
type branchKind uint8

const (
	branchStructured branchKind = iota // child indexes the cached subtree
	branchNarrow                       // below structuredMin, walked live on use
	branchStub                         // φ-pruned during exploration
)

const nilIdx = int32(-1)

// mrun is one M-tree node: a maximal run of characters that matched the
// pattern under the alignment the run was explored at (basePos), plus a
// linked list of mismatching branches hanging off run levels.
type mrun struct {
	entryIv     fmindex.Interval // interval of the run's entry node
	endIv       fmindex.Interval // interval after runLen characters
	basePos     int32            // pattern offset at run entry during exploration
	bRem        int32            // relative mismatch budget the exploration had
	runLen      int32            // number of (cached-alignment) match characters
	firstBranch int32            // head of the branch list (nilIdx if none)
	end         runEnd
}

// mbranch hangs off the run node after off characters; it consumes
// character ch (≠ the pattern character of the run's alignment) at pattern
// offset basePos+off. Branches of one run are linked in increasing off.
type mbranch struct {
	iv    fmindex.Interval
	off   int32
	child int32 // run index for branchStructured
	next  int32
	ch    byte
	kind  branchKind
}

// asearch is the per-search state of Algorithm A. It lives inside a
// Scratch rather than being heap-allocated per query; the slice headers
// are borrowed from the Scratch at entry and written back at exit so
// their grown capacity carries over to the next search.
type asearch struct {
	s     *Searcher
	r     []byte
	m, k  int
	src   *mismatch.IterSource
	phi   []int // φ lower bounds; all-zero when the φ bound is disabled
	memo  *memoTable
	runs  []mrun
	brs   []mbranch
	out   []leaf
	stats *Stats
	tr    obs.Tracer // nil unless the query is traced
}

// leafTerm records a maximal-path terminal that is not a surviving leaf
// (φ cut, dead end, exhausted budget): the paper's n′ counts these too.
// Every MTreeLeaves increment goes through leafTerm or emit, so a traced
// query sees exactly Stats.MTreeLeaves EvLeaf events.
func (a *asearch) leafTerm() {
	a.stats.MTreeLeaves++
	if a.tr != nil {
		a.tr.Emit(obs.EvLeaf)
	}
}

// memoHit records a repeated interval resolved by derivation (a merge in
// the paper's terms) at run ri under alignment position j.
func (a *asearch) memoHit(ri int32, j int) {
	a.stats.MemoHits++
	if a.tr != nil {
		a.tr.Emit(obs.EvMerge,
			obs.Arg{Key: "run", Val: int64(ri)},
			obs.Arg{Key: "pos", Val: int64(j)})
	}
}

// fallback records a derivation that had to resume live search.
func (a *asearch) fallback() {
	a.stats.LiveFallbacks++
	if a.tr != nil {
		a.tr.Emit(obs.EvFallback)
	}
}

func ivKey(iv fmindex.Interval) uint64 {
	return uint64(uint32(iv.Lo))<<32 | uint64(uint32(iv.Hi))
}

// searchMTree runs Algorithm A for one pattern. usePhi composes the φ(i)
// bound with the derivation machinery (the production configuration);
// disabling it reproduces the paper's unpruned Algorithm A for ablations.
// All working memory comes from sc; a warm Scratch makes this
// allocation-free.
func (s *Searcher) searchMTree(sc *Scratch, pattern []byte, k int, usePhi bool, stats *Stats, tr obs.Tracer) []leaf {
	sc.memo.begin()
	sc.src.Reset(pattern)
	a := &sc.as
	*a = asearch{
		s:     s,
		r:     pattern,
		m:     len(pattern),
		k:     k,
		src:   &sc.src,
		memo:  &sc.memo,
		runs:  sc.runs[:0],
		brs:   sc.brs[:0],
		out:   sc.out[:0],
		stats: stats,
		tr:    tr,
	}
	defer func() {
		sc.runs, sc.brs, sc.out = a.runs, a.brs, a.out
		a.s, a.r, a.src, a.memo, a.stats, a.tr = nil, nil, nil, nil, nil, nil
	}()
	if usePhi {
		if tr != nil {
			tr.Begin("phi")
		}
		var phiSteps int
		a.phi, phiSteps = s.computePhi(sc, pattern)
		if tr != nil {
			tr.End(
				obs.Arg{Key: "phi0", Val: int64(a.phi[0])},
				obs.Arg{Key: "step_calls", Val: int64(phiSteps)})
		}
	} else {
		sc.phi = intBuf(sc.phi, len(pattern)+1)
		clear(sc.phi)
		a.phi = sc.phi
	}
	if k < a.phi[0] {
		return nil
	}
	a.walk(s.idx.Full(), 0, k, 0)
	return a.out
}

// walk searches the subtree under iv with the next pattern character r[j],
// brem spendable mismatches and e mismatches already on the path, emitting
// every surviving leaf. It dispatches between the singleton fast path, a
// cached derivation, and a fresh exploration. The caller must have
// established brem >= phi[j].
func (a *asearch) walk(iv fmindex.Interval, j, brem, e int) {
	if iv.Len() < structuredMin {
		a.smallWalk(iv, j, brem, e)
		return
	}
	if ri, ok := a.memo.get(ivKey(iv)); ok && int(a.runs[ri].bRem) >= brem {
		a.memoHit(ri, j)
		a.derive(ri, j, brem, e)
		return
	}
	a.exploreFresh(iv, j, brem, e)
}

// smallWalk is a plain φ-pruned DFS over a narrow interval's subtree —
// no memoization, no structure, no allocation beyond the shared scratch
// stack. Narrow subtrees degrade into a handful of singleton chains
// almost immediately, so this is the cheapest way through them.
func (a *asearch) smallWalk(iv fmindex.Interval, j, brem, e int) {
	if iv.Len() == 1 {
		a.singletonWalk(iv, j, brem, e)
		return
	}
	if j == a.m {
		a.emit(iv, e, false)
		return
	}
	if brem < a.phi[j] {
		a.leafTerm() // φ-pruned path terminal
		return
	}
	var kids [alphabet.Bases]fmindex.Interval
	a.s.idx.StepAll(iv, &kids)
	a.stats.StepCalls++
	a.stats.Nodes++
	progressed := false
	for x := byte(alphabet.A); x <= alphabet.T; x++ {
		civ := kids[x-1]
		if civ.Empty() {
			continue
		}
		cost := 0
		if x != a.r[j] {
			cost = 1
		}
		if brem-cost < 0 {
			continue
		}
		progressed = true
		if civ.Len() == 1 {
			a.singletonWalk(civ, j+1, brem-cost, e+cost)
		} else {
			a.smallWalk(civ, j+1, brem-cost, e+cost)
		}
	}
	if !progressed {
		a.leafTerm()
	}
}

// singletonWalk follows the unique continuation chain of a one-row
// interval, spending mismatches as the chain's characters disagree with
// the pattern. No structure is built: deriving a chain would cost the same
// as re-walking it.
func (a *asearch) singletonWalk(iv fmindex.Interval, j, brem, e int) {
	for {
		if j == a.m {
			a.emit(iv, e, false)
			return
		}
		if brem < a.phi[j] {
			a.leafTerm() // φ-pruned path terminal
			return
		}
		x, child, ok := a.s.idx.StepSingleton(iv)
		a.stats.StepCalls++
		a.stats.Nodes++
		if !ok {
			a.leafTerm() // ran into the text start
			return
		}
		if x != a.r[j] {
			if brem == 0 {
				a.leafTerm()
				return
			}
			brem--
			e++
		}
		iv = child
		j++
	}
}

// exploreFresh explores a multi-row interval with the BWT, emitting leaves
// as they are reached and recording the subtree in the memo for later
// derivation. Branch children consult the memo again, so repeats are
// caught at any level. It returns the new run's index.
func (a *asearch) exploreFresh(iv fmindex.Interval, j, brem, e int) int32 {
	if a.tr != nil {
		a.tr.Emit(obs.EvExpand,
			obs.Arg{Key: "rows", Val: int64(iv.Len())},
			obs.Arg{Key: "pos", Val: int64(j)})
	}
	ri := int32(len(a.runs))
	a.runs = append(a.runs, mrun{
		entryIv:     iv,
		basePos:     int32(j),
		bRem:        int32(brem),
		firstBranch: nilIdx,
	})
	lastBranch := nilIdx

	cur := iv
	t := j
	var end runEnd
	var kids [alphabet.Bases]fmindex.Interval
	for {
		if t == a.m {
			end = endComplete
			a.emit(cur, e, false)
			break
		}
		if brem < a.phi[t] {
			end = endPhiCut
			a.leafTerm() // φ-pruned path terminal
			break
		}
		a.s.idx.StepAll(cur, &kids)
		a.stats.StepCalls++
		a.stats.Nodes++
		if brem > 0 {
			for x := byte(alphabet.A); x <= alphabet.T; x++ {
				civ := kids[x-1]
				if x == a.r[t] || civ.Empty() {
					continue
				}
				b := mbranch{off: int32(t - j), ch: x, iv: civ, child: nilIdx, next: nilIdx}
				switch {
				case civ.Len() < structuredMin:
					b.kind = branchNarrow
					if brem-1 >= a.phi[t+1] {
						a.smallWalk(civ, t+1, brem-1, e+1)
					}
				case brem-1 >= a.phi[t+1]:
					b.kind = branchStructured
					b.child = a.exploreBranch(civ, t+1, brem-1, e+1)
				default:
					b.kind = branchStub
				}
				bi := int32(len(a.brs))
				a.brs = append(a.brs, b)
				if lastBranch == nilIdx {
					a.runs[ri].firstBranch = bi
				} else {
					a.brs[lastBranch].next = bi
				}
				lastBranch = bi
			}
		}
		matchIv := kids[a.r[t]-1]
		if matchIv.Empty() {
			end = endDead
			break
		}
		cur = matchIv
		t++
		if matchIv.Len() < structuredMin {
			end = endNarrow
			a.smallWalk(matchIv, t, brem, e)
			break
		}
	}
	run := &a.runs[ri]
	run.endIv = cur
	run.runLen = int32(t - j)
	run.end = end
	// Register only the finished run: a forced-extension descendant can
	// carry the same interval and must not hit a half-built entry. The
	// last writer wins, which also lets fallbacks strengthen weak entries.
	a.memo.put(ivKey(iv), ri)
	return ri
}

// exploreBranch resolves a structured branch child: a memo hit is derived
// (emitting its leaves under the current path) and reused; otherwise the
// child is explored fresh.
func (a *asearch) exploreBranch(iv fmindex.Interval, j, brem, e int) int32 {
	if ri, ok := a.memo.get(ivKey(iv)); ok && int(a.runs[ri].bRem) >= brem {
		a.memoHit(ri, j)
		a.derive(ri, j, brem, e)
		return ri
	}
	return a.exploreFresh(iv, j, brem, e)
}

// runIvAt returns the interval of run ri's node after t characters,
// re-stepping the run's match characters when t is interior (fallback
// paths only; the ends are stored).
func (a *asearch) runIvAt(ri int32, t int) fmindex.Interval {
	run := &a.runs[ri]
	switch t {
	case 0:
		return run.entryIv
	case int(run.runLen):
		return run.endIv
	}
	iv := run.entryIv
	for i := 0; i < t; i++ {
		iv = a.s.idx.Step(a.r[int(run.basePos)+i], iv)
		a.stats.StepCalls++
	}
	return iv
}

// derive walks a cached run under the (possibly different) alignment jNew
// with rem remaining mismatches and e mismatches already spent, emitting
// every surviving leaf. The caller must have established rem >= phi[jNew].
func (a *asearch) derive(ri int32, jNew, rem, e int) {
	if rem > int(a.runs[ri].bRem) {
		// The cached exploration pruned branches this alignment can
		// afford: re-explore (memoized, replaces the weaker entry).
		a.fallback()
		a.exploreFresh(a.runs[ri].entryIv, jNew, rem, e)
		return
	}
	basePos := int(a.runs[ri].basePos)
	runLen := int(a.runs[ri].runLen)
	runBRem := int(a.runs[ri].bRem)
	bi := a.runs[ri].firstBranch
	needDepth := a.m - jNew

	it := a.src.Iter(basePos+1, jNew+1)
	nextMM := -1 // 0-based run offset of the next new-alignment mismatch
	if p, ok := it.Next(); ok {
		nextMM = int(p) - 1
	}

	budget := rem
	for {
		// Jump to the next event offset: a branch point, an alignment
		// mismatch, the run's end, or the pattern's end.
		t := needDepth
		if runLen < t {
			t = runLen
		}
		if bi != nilIdx && int(a.brs[bi].off) < t {
			t = int(a.brs[bi].off)
		}
		if nextMM >= 0 && nextMM < t {
			t = nextMM
		}

		if t == needDepth {
			a.emit(a.runIvAt(ri, t), e, true)
			return
		}
		if budget < a.phi[jNew+t] {
			// No completion of r[jNew+t..] fits the remaining budget, for
			// any continuation below this node.
			a.leafTerm() // φ-pruned path terminal
			return
		}
		// Branches leaving the node after t run characters.
		for bi != nilIdx && int(a.brs[bi].off) == t {
			b := a.brs[bi]
			bi = b.next
			cost := 0
			if b.ch != a.r[jNew+t] {
				cost = 1
			}
			nb := budget - cost
			if nb < 0 || nb < a.phi[jNew+t+1] {
				continue
			}
			switch b.kind {
			case branchNarrow:
				a.smallWalk(b.iv, jNew+t+1, nb, e+cost)
			case branchStub:
				// φ-pruned under the cached alignment; this alignment can
				// afford it, so explore it now.
				a.fallback()
				a.exploreFresh(b.iv, jNew+t+1, nb, e+cost)
			default:
				a.derive(b.child, jNew+t+1, nb, e+cost)
			}
		}
		if t == runLen {
			a.deriveRunEnd(ri, t, jNew, budget, e)
			return
		}
		// Consume the run character at offset t. Under the cached
		// alignment it is a match; under the new one it mismatches
		// exactly at the R_ij offsets — and t is such an offset here,
		// since branch-only and end events were handled above.
		if t == nextMM {
			if budget == 0 {
				// Cannot follow the run character. The only continuation
				// is the new alignment's match character, which differs
				// from the run character here; it lives among the
				// branches just processed when they were recorded at all.
				if runBRem == 0 {
					a.fallback()
					a.walkLive(a.runIvAt(ri, t), jNew+t, 0, e)
				}
				return
			}
			budget--
			e++
			if p, ok := it.Next(); ok {
				nextMM = int(p) - 1
			} else {
				nextMM = -1
			}
		}
	}
}

// walkLive resumes live search at iv, bypassing a memo entry known to be
// insufficient for this (alignment, budget) pair.
func (a *asearch) walkLive(iv fmindex.Interval, j, brem, e int) {
	if iv.Len() < structuredMin {
		a.smallWalk(iv, j, brem, e)
		return
	}
	a.exploreFresh(iv, j, brem, e)
}

// deriveRunEnd handles a cached run that stops (dead end, φ cut, cached
// leaf, or singleton narrowing) before the new alignment's required depth.
// The φ bound for the node at offset t has already been checked.
func (a *asearch) deriveRunEnd(ri int32, t, jNew, budget, e int) {
	endIv := a.runs[ri].endIv
	switch a.runs[ri].end {
	case endNarrow:
		a.smallWalk(endIv, jNew+t, budget, e)
	case endComplete, endPhiCut:
		// A cached leaf that is interior for the deeper new alignment, or
		// a cut by the cached alignment's φ bound: this alignment passed
		// its own checks, so resume live.
		a.fallback()
		a.walkLive(endIv, jNew+t, budget, e)
	case endDead:
		oldMatch := a.r[int(a.runs[ri].basePos)+t]
		newMatch := a.r[jNew+t]
		if newMatch != oldMatch && a.runs[ri].bRem == 0 {
			// The new match character's continuation was never probed.
			a.fallback()
			a.walkLive(endIv, jNew+t, budget, e)
			return
		}
		// Otherwise every continuation was either the (empty) old match
		// character or a recorded branch, already handled by the caller.
		a.leafTerm()
	}
}

// emit records a surviving leaf.
func (a *asearch) emit(iv fmindex.Interval, e int, derived bool) {
	a.stats.MTreeLeaves++
	if derived {
		a.stats.DerivedLeaves++
	}
	if a.tr != nil {
		a.tr.Emit(obs.EvLeaf,
			obs.Arg{Key: "mism", Val: int64(e)},
			obs.Arg{Key: "rows", Val: int64(iv.Len())})
	}
	a.out = append(a.out, leaf{iv: iv, mism: e})
}
