// Package core implements the paper's search algorithms over a BWT-array
// index: the brute-force search-tree traversal of [34] with the φ(i)
// pruning heuristic (the paper's "BWT" baseline, §IV-A) and the paper's
// contribution, Algorithm A, which builds a mismatching tree (M-tree) and
// derives repeated subtrees from precomputed pattern mismatch information
// instead of re-searching the BWT (§IV-C/D).
//
// The index is built over the REVERSE of the target, so the pattern is
// consumed left-to-right (each consumed character is one backward-search
// step), exactly as in the paper's S-tree definition ("the search of r
// against BWT(s̄)", Definition 1).
package core

import (
	"errors"
	"fmt"
	"slices"
	"time"

	"bwtmatch/internal/alphabet"
	"bwtmatch/internal/fmindex"
	"bwtmatch/internal/obs"
)

// Method selects the search strategy.
type Method int

const (
	// MethodSTree is the brute-force S-tree traversal without pruning.
	MethodSTree Method = iota
	// MethodSTreePhi is the S-tree traversal with the φ(i) heuristic of
	// [34]: prune when mismatches-used + φ(next position) exceeds k.
	MethodSTreePhi
	// MethodMTree is the paper's Algorithm A: S-tree traversal with a hash
	// table of BWT intervals and M-tree subtree derivation via pattern
	// mismatch information, composed with the φ(i) bound.
	MethodMTree
	// MethodMTreeNoPhi is Algorithm A exactly as the paper states it,
	// without the φ(i) bound (ablation).
	MethodMTreeNoPhi
)

// String names the method as in the paper's experiment section.
func (m Method) String() string {
	switch m {
	case MethodSTree:
		return "stree"
	case MethodSTreePhi:
		return "bwt" // the paper's "BWT" baseline
	case MethodMTree:
		return "a" // the paper's "A()" plus the φ bound
	case MethodMTreeNoPhi:
		return "a-nophi"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// Match is one k-mismatch occurrence of the pattern in the target.
type Match struct {
	Pos        int32 // 0-based start position in the target
	Mismatches int   // Hamming distance of this occurrence
}

// Stats reports work counters of one search; the paper's Table 2 reports
// MTreeLeaves (n′).
type Stats struct {
	// Nodes is the number of S-tree nodes materialized by live search.
	Nodes int
	// StepCalls is the number of BWT StepAll invocations (rank work).
	StepCalls int
	// MTreeLeaves is n′: the number of maximal root-to-leaf paths of the
	// (conceptual) M-tree, counting both live-explored and derived paths.
	MTreeLeaves int
	// Occurrences is the number of matches found (before locating).
	Occurrences int
	// MemoHits counts repeated-interval events resolved by derivation.
	MemoHits int
	// DerivedLeaves counts leaves obtained by derivation rather than by
	// BWT search.
	DerivedLeaves int
	// LiveFallbacks counts derivations that had to resume live search
	// because the cached subtree was explored with a smaller budget or to
	// a smaller depth (see DESIGN.md §3.4).
	LiveFallbacks int
	// PhiPruned counts branches cut by the φ(i) heuristic.
	PhiPruned int
	// LocateNS is the wall time spent resolving surviving leaves to text
	// positions (the SA-sample LF walks), separated from the traversal so
	// occ-path improvements are not masked by locate cost in benchmarks.
	LocateNS int64
}

// Searcher answers k-mismatch queries against one target text.
type Searcher struct {
	idx *fmindex.Index // FM-index of reverse(target)
	n   int            // target length
}

// ErrPattern reports an unusable pattern.
var ErrPattern = errors.New("core: invalid pattern")

// NewSearcher builds a Searcher for a rank-encoded target text (values
// 1..4). The index is constructed over the reversed text per §IV.
func NewSearcher(text []byte, opts fmindex.Options) (*Searcher, error) {
	rev := make([]byte, len(text))
	for i, b := range text {
		rev[len(text)-1-i] = b
	}
	idx, err := fmindex.Build(rev, opts)
	if err != nil {
		return nil, err
	}
	return &Searcher{idx: idx, n: len(text)}, nil
}

// NewSearcherFromIndex wraps an existing index that was already built over
// the reversed target of length n.
func NewSearcherFromIndex(idx *fmindex.Index, n int) *Searcher {
	return &Searcher{idx: idx, n: n}
}

// N returns the target length.
func (s *Searcher) N() int { return s.n }

// Index exposes the underlying FM-index (over the reversed target).
func (s *Searcher) Index() *fmindex.Index { return s.idx }

// Find returns all k-mismatch occurrences of the rank-encoded pattern,
// sorted by position, along with search statistics.
func (s *Searcher) Find(pattern []byte, k int, method Method) ([]Match, Stats, error) {
	return s.FindTraced(pattern, k, method, nil)
}

// FindTraced is Find with per-query telemetry; it borrows a pooled
// Scratch, so only the returned matches are allocated. See FindScratch
// for the telemetry contract.
func (s *Searcher) FindTraced(pattern []byte, k int, method Method, tr obs.Tracer) ([]Match, Stats, error) {
	sc := scratchPool.Get().(*Scratch)
	out, stats, err := s.FindScratch(sc, nil, pattern, k, method, tr)
	scratchPool.Put(sc)
	return out, stats, err
}

// FindScratch is the zero-allocation entry point: all working memory
// comes from sc and matches are appended to dst (which may be nil).
// With a warm Scratch and a dst of sufficient capacity a call performs
// no heap allocation. sc must not be shared between concurrent calls.
//
// When tr is non-nil the search is wrapped in phase spans (phi,
// traverse, locate) and the traversal emits one EvLeaf per maximal
// M-tree path — so the EvLeaf count equals Stats.MTreeLeaves (the
// paper's n′) — one EvMerge per memoized derivation (equals
// Stats.MemoHits), one EvFallback per live fallback, and EvExpand for
// every fresh multi-row expansion. A nil tr follows the exact untraced
// code path.
func (s *Searcher) FindScratch(sc *Scratch, dst []Match, pattern []byte, k int, method Method, tr obs.Tracer) ([]Match, Stats, error) {
	// The counters live in sc so that taking their address (the M-tree
	// search stores it in the heap-resident asearch) does not force a
	// heap allocation of a stack-local Stats on every call.
	sc.stats = Stats{}
	stats := &sc.stats
	if len(pattern) == 0 {
		return dst, *stats, fmt.Errorf("%w: empty", ErrPattern)
	}
	for i, r := range pattern {
		if r < alphabet.A || r > alphabet.T {
			return dst, *stats, fmt.Errorf("%w: rank %d at position %d", ErrPattern, r, i)
		}
	}
	if k < 0 {
		return dst, *stats, fmt.Errorf("%w: negative k", ErrPattern)
	}
	if len(pattern) > s.n {
		return dst, *stats, nil
	}

	if tr != nil {
		tr.Begin("traverse")
	}
	var leaves []leaf
	switch method {
	case MethodSTree:
		leaves = s.searchSTree(sc, pattern, k, false, stats, tr)
	case MethodSTreePhi:
		leaves = s.searchSTree(sc, pattern, k, true, stats, tr)
	case MethodMTree:
		leaves = s.searchMTree(sc, pattern, k, true, stats, tr)
	case MethodMTreeNoPhi:
		leaves = s.searchMTree(sc, pattern, k, false, stats, tr)
	default:
		if tr != nil {
			tr.End()
		}
		return dst, *stats, fmt.Errorf("core: unknown method %d", method)
	}
	if tr != nil {
		tr.End(
			obs.Arg{Key: "step_calls", Val: int64(stats.StepCalls)},
			obs.Arg{Key: "nodes", Val: int64(stats.Nodes)},
			obs.Arg{Key: "leaves", Val: int64(stats.MTreeLeaves)},
			obs.Arg{Key: "memo_hits", Val: int64(stats.MemoHits)},
			obs.Arg{Key: "fallbacks", Val: int64(stats.LiveFallbacks)})
		tr.Begin("locate")
	}
	stats.Occurrences = 0
	locateStart := time.Now()
	out := dst
	buf := sc.locBuf
	m := len(pattern)
	if tr == nil {
		for _, lf := range leaves {
			buf = s.idx.Locate(lf.iv, buf[:0])
			for _, p := range buf {
				out = append(out, Match{Pos: int32(s.n) - p - int32(m), Mismatches: lf.mism})
			}
		}
	} else {
		for _, lf := range leaves {
			buf = s.idx.LocateTraced(lf.iv, buf[:0], tr)
			for _, p := range buf {
				out = append(out, Match{Pos: int32(s.n) - p - int32(m), Mismatches: lf.mism})
			}
		}
	}
	sc.locBuf = buf
	stats.Occurrences = len(out) - len(dst)
	slices.SortFunc(out[len(dst):], func(a, b Match) int { return int(a.Pos) - int(b.Pos) })
	stats.LocateNS = time.Since(locateStart).Nanoseconds()
	if tr != nil {
		tr.End(obs.Arg{Key: "occurrences", Val: int64(stats.Occurrences)})
	}
	return out, *stats, nil
}

// leaf is a surviving S-tree leaf: an interval of rows whose length-m
// context matches the pattern with mism mismatches.
type leaf struct {
	iv   fmindex.Interval
	mism int
}

// CountLeaves runs Algorithm A and returns only n′ (Table 2) and stats,
// without locating occurrences.
func (s *Searcher) CountLeaves(pattern []byte, k int) (Stats, error) {
	var stats Stats
	if len(pattern) == 0 || len(pattern) > s.n {
		return stats, nil
	}
	sc := scratchPool.Get().(*Scratch)
	s.searchMTree(sc, pattern, k, true, &stats, nil)
	scratchPool.Put(sc)
	return stats, nil
}
