package core

import (
	"math/rand"
	"testing"

	"bwtmatch/internal/fmindex"
)

// TestMemoTableBasic exercises put/get within one generation.
func TestMemoTableBasic(t *testing.T) {
	var m memoTable
	m.begin()
	if _, ok := m.get(42); ok {
		t.Fatal("empty table reported a hit")
	}
	m.put(42, 7)
	if v, ok := m.get(42); !ok || v != 7 {
		t.Fatalf("get(42) = %d, %v; want 7, true", v, ok)
	}
	m.put(42, 9) // last writer wins (fallbacks strengthen weak entries)
	if v, ok := m.get(42); !ok || v != 9 {
		t.Fatalf("after overwrite: get(42) = %d, %v; want 9, true", v, ok)
	}
}

// TestMemoTableGenerationClear proves the O(1) generation-stamp clear:
// after begin(), no entry from any earlier generation is visible, even
// without touching the slots.
func TestMemoTableGenerationClear(t *testing.T) {
	var m memoTable
	m.begin()
	for i := uint64(0); i < 500; i++ {
		m.put(i, int32(i))
	}
	m.begin()
	for i := uint64(0); i < 500; i++ {
		if v, ok := m.get(i); ok {
			t.Fatalf("stale entry leaked across begin(): key %d → %d", i, v)
		}
	}
	// Entries written after the clear are visible and independent.
	m.put(3, -1)
	if v, ok := m.get(3); !ok || v != -1 {
		t.Fatalf("fresh entry after clear: get(3) = %d, %v", v, ok)
	}
}

// TestMemoTableAgainstMap drives the table with a randomized workload
// across many generations and cross-checks every answer against a
// plain map rebuilt per generation. Keys are drawn from a small space
// so probe chains collide, generations interleave hot keys, and grow()
// fires mid-generation.
func TestMemoTableAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(991))
	var m memoTable
	for gen := 0; gen < 50; gen++ {
		m.begin()
		ref := make(map[uint64]int32)
		ops := 100 + rng.Intn(2000)
		for op := 0; op < ops; op++ {
			key := uint64(rng.Intn(700))
			if rng.Intn(2) == 0 {
				val := int32(rng.Intn(1 << 20))
				m.put(key, val)
				ref[key] = val
			} else {
				gv, gok := m.get(key)
				rv, rok := ref[key]
				if gok != rok || (gok && gv != rv) {
					t.Fatalf("gen %d op %d: get(%d) = (%d,%v), want (%d,%v)",
						gen, op, key, gv, gok, rv, rok)
				}
			}
		}
	}
}

// TestMemoTableGrowKeepsEntries forces growth past several doublings in
// one generation and verifies nothing is lost or corrupted.
func TestMemoTableGrowKeepsEntries(t *testing.T) {
	var m memoTable
	m.begin()
	const n = 10 * memoMinSize
	for i := uint64(0); i < n; i++ {
		m.put(i*0x10001, int32(i))
	}
	for i := uint64(0); i < n; i++ {
		if v, ok := m.get(i * 0x10001); !ok || v != int32(i) {
			t.Fatalf("after growth: get(%d) = %d, %v; want %d, true", i*0x10001, v, ok, int32(i))
		}
	}
}

// TestMemoTableWrapHardClear drives the generation counter to the wrap
// point and checks the hard clear: entries stamped with old generation
// numbers must not alias entries of the restarted counter.
func TestMemoTableWrapHardClear(t *testing.T) {
	var m memoTable
	m.begin()
	m.put(1, 100)
	// Jump the counter to just before the wrap, simulating 2^32-2
	// intervening searches; the entry above carries gen 1.
	m.gen = ^uint32(0) - 1
	m.begin() // gen = max
	m.put(2, 200)
	m.begin() // wraps: hard clear, gen = 1 again — same stamp key 1 had
	if v, ok := m.get(1); ok {
		t.Fatalf("entry from the pre-wrap generation 1 aliased the post-wrap generation 1: %d", v)
	}
	if _, ok := m.get(2); ok {
		t.Fatal("entry from generation max survived the wrap clear")
	}
	m.put(3, 300)
	if v, ok := m.get(3); !ok || v != 300 {
		t.Fatalf("post-wrap put/get broken: %d, %v", v, ok)
	}
}

// TestScratchReuseNoStaleDerivations is the end-to-end guard the memo
// exists for: one Scratch reused across many different queries (and
// different searchers) must never let a previous query's cached
// derivations contaminate a later answer. Results are cross-checked
// against a fresh-scratch search and the brute-force S-tree.
func TestScratchReuseNoStaleDerivations(t *testing.T) {
	rng := rand.New(rand.NewSource(992))
	targets := [][]byte{
		randomRanks(rng, 2000),
		periodicRanks(rng, 2000, 7), // repetitive: heavy memo traffic
	}
	var searchers []*Searcher
	for _, tgt := range targets {
		s, err := NewSearcher(tgt, fmindex.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		searchers = append(searchers, s)
	}
	sc := NewScratch()
	for trial := 0; trial < 150; trial++ {
		si := trial % len(searchers)
		s, tgt := searchers[si], targets[si]
		m := 5 + rng.Intn(25)
		p := rng.Intn(len(tgt) - m)
		pat := append([]byte(nil), tgt[p:p+m]...)
		pat[rng.Intn(m)] = byte(1 + rng.Intn(4))
		k := rng.Intn(3)

		got, gotStats, err := s.FindScratch(sc, nil, pat, k, MethodMTree, nil)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := s.Find(pat, k, MethodSTree)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: reused scratch found %d matches, S-tree %d (stats %+v)",
				trial, len(got), len(want), gotStats)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d match %d: %+v vs %+v", trial, i, got[i], want[i])
			}
		}
	}
}

func periodicRanks(rng *rand.Rand, n, period int) []byte {
	unit := randomRanks(rng, period)
	out := make([]byte, 0, n)
	for len(out) < n {
		out = append(out, unit...)
	}
	out = out[:n]
	// Sprinkle mutations so derivations hit the fallback paths too.
	for i := 0; i < n/50; i++ {
		out[rng.Intn(n)] = byte(1 + rng.Intn(4))
	}
	return out
}
