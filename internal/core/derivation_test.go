package core

import (
	"math/rand"
	"testing"

	"bwtmatch/internal/fmindex"
	"bwtmatch/internal/naive"
)

// periodicPattern repeats unit to length m (self-similar under shift
// |unit|) — the regime in which BWT intervals recur in the S-tree and the
// M-tree derivation machinery actually fires.
func periodicPattern(unit []byte, m int) []byte {
	p := make([]byte, m)
	for i := range p {
		p[i] = unit[i%len(unit)]
	}
	return p
}

// tandemText embeds a long tandem array of unit inside random sequence.
func tandemText(rng *rand.Rand, unit []byte, copies, flank int) []byte {
	text := randomRanks(rng, flank)
	for i := 0; i < copies; i++ {
		text = append(text, unit...)
	}
	return append(text, randomRanks(rng, flank)...)
}

func TestPeriodicPatternsOnTandemText(t *testing.T) {
	// Periodic patterns over a tandem array are the adversarial case for
	// the derivation bookkeeping: intervals stay wide (hundreds of rows)
	// for the whole pattern length, yet exact interval repeats are broken
	// by the array boundary (each full-period extension loses exactly the
	// final copy), so the memo must stay correct while almost never
	// firing. See the reproduction finding in DESIGN.md §3.4.
	rng := rand.New(rand.NewSource(71))
	unit := []byte{1, 3, 2, 4, 1, 2}
	text := tandemText(rng, unit, 400, 500)
	s, err := NewSearcher(text, fmindex.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	pattern := periodicPattern(unit, 60)
	for k := 0; k <= 3; k++ {
		got, _, err := s.Find(pattern, k, MethodMTree)
		if err != nil {
			t.Fatal(err)
		}
		want := naive.Find(text, pattern, k)
		matchesEqual(t, got, want, text, pattern, k)
		if len(want) < 300 {
			t.Fatalf("workload broken: only %d true matches", len(want))
		}
	}
}

func TestDerivationFiresInDenseRegion(t *testing.T) {
	// Exact interval repeats arise cross-branch in the dense shallow
	// region of larger searches; pin a configuration where they are known
	// to occur and check both that they fire and that results stay
	// correct against the φ-pruned baseline.
	g := repeatRichGenome(1<<16, 1001)
	s, err := NewSearcher(g, fmindex.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	hits := 0
	for trial := 0; trial < 3; trial++ {
		pos := rng.Intn(len(g) - 60)
		pattern := mutate(rng, g, pos, 60, 2)
		a, astats, err := s.Find(pattern, 8, MethodMTree)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := s.Find(pattern, 8, MethodSTreePhi)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("A and baseline disagree: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("match %d differs: %v vs %v", i, a[i], b[i])
			}
		}
		hits += astats.MemoHits
	}
	if hits == 0 {
		t.Errorf("no memo hits in the dense-region configuration")
	}
}

// repeatRichGenome mirrors the bench corpus generator at small scale.
func repeatRichGenome(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	g := randomRanks(rng, n)
	unit := 300
	for covered := 0; covered < n*2/5; covered += unit {
		// Single family: copy one window across the genome with noise.
		src := 1000
		dst := rng.Intn(n - unit)
		for i := 0; i < unit; i++ {
			if rng.Intn(33) == 0 {
				g[dst+i] = byte(1 + rng.Intn(4))
			} else {
				g[dst+i] = g[src+i]
			}
		}
	}
	return g
}

func TestDerivationCorrectUnderBudgetUpgrades(t *testing.T) {
	// Mixed-period patterns at higher k exercise the rem > bRem fallback:
	// the same interval is reached first on a mismatch-heavy path (small
	// remaining budget) and later on a cleaner path (larger budget).
	rng := rand.New(rand.NewSource(72))
	unit := []byte{2, 2, 1, 4}
	text := tandemText(rng, unit, 300, 400)
	s, _ := NewSearcher(text, fmindex.DefaultOptions())
	for trial := 0; trial < 20; trial++ {
		pattern := periodicPattern(unit, 24+rng.Intn(24))
		for f := 0; f < rng.Intn(4); f++ {
			pattern[rng.Intn(len(pattern))] = byte(1 + rng.Intn(4))
		}
		k := 1 + rng.Intn(4)
		got, stats, err := s.Find(pattern, k, MethodMTree)
		if err != nil {
			t.Fatal(err)
		}
		want := naive.Find(text, pattern, k)
		matchesEqual(t, got, want, text, pattern, k)
		_ = stats
	}
}

func TestDerivationAllPeriods(t *testing.T) {
	// Sweep unit lengths so run/branch/end derivation paths all trigger
	// at varied shift distances.
	rng := rand.New(rand.NewSource(73))
	for unitLen := 1; unitLen <= 8; unitLen++ {
		unit := randomRanks(rng, unitLen)
		text := tandemText(rng, unit, 600/unitLen, 200)
		s, _ := NewSearcher(text, fmindex.DefaultOptions())
		for _, k := range []int{0, 1, 2} {
			pattern := periodicPattern(unit, 20)
			got, _, err := s.Find(pattern, k, MethodMTree)
			if err != nil {
				t.Fatal(err)
			}
			want := naive.Find(text, pattern, k)
			matchesEqual(t, got, want, text, pattern, k)
		}
	}
}

func TestNoPhiMatchesPhiResults(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	text := randomRanks(rng, 2000)
	s, _ := NewSearcher(text, fmindex.DefaultOptions())
	for trial := 0; trial < 30; trial++ {
		m := 5 + rng.Intn(30)
		pattern := mutate(rng, text, rng.Intn(len(text)-m), m, rng.Intn(3))
		k := rng.Intn(4)
		a, _, err := s.Find(pattern, k, MethodMTree)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := s.Find(pattern, k, MethodMTreeNoPhi)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("phi changed results: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("phi changed match %d: %v vs %v", i, a[i], b[i])
			}
		}
	}
}

func TestStructuredRegionStats(t *testing.T) {
	// On a text dominated by one repeat family the structured region is
	// deep; the search must stay correct and populate the work counters.
	rng := rand.New(rand.NewSource(75))
	unit := randomRanks(rng, 5)
	text := tandemText(rng, unit, 500, 100)
	s, _ := NewSearcher(text, fmindex.DefaultOptions())

	periodic := periodicPattern(unit, 40)
	got, pstats, err := s.Find(periodic, 2, MethodMTree)
	if err != nil {
		t.Fatal(err)
	}
	want := naive.Find(text, periodic, 2)
	matchesEqual(t, got, want, text, periodic, 2)
	if pstats.StepCalls == 0 || pstats.MTreeLeaves == 0 {
		t.Errorf("stats not populated: %+v", pstats)
	}
}
