package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bwtmatch/internal/alphabet"
	"bwtmatch/internal/fmindex"
	"bwtmatch/internal/naive"
)

func randomRanks(rng *rand.Rand, n int) []byte {
	t := make([]byte, n)
	for i := range t {
		t[i] = byte(1 + rng.Intn(4))
	}
	return t
}

// mutate copies a window of text and flips d random positions, giving a
// pattern guaranteed to occur with at most d mismatches.
func mutate(rng *rand.Rand, text []byte, pos, m, d int) []byte {
	p := append([]byte(nil), text[pos:pos+m]...)
	for i := 0; i < d; i++ {
		q := rng.Intn(m)
		p[q] = byte(1 + rng.Intn(4))
	}
	return p
}

func matchesEqual(t *testing.T, got []Match, want []int32, text, pattern []byte, k int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("found %d matches, want %d (text=%v pattern=%v k=%d)\ngot: %v\nwant: %v",
			len(got), len(want), text, pattern, k, got, want)
	}
	for i := range got {
		if got[i].Pos != want[i] {
			t.Fatalf("match %d at %d, want %d", i, got[i].Pos, want[i])
		}
		// Verify the reported mismatch count directly.
		d := naive.Hamming(text[got[i].Pos:int(got[i].Pos)+len(pattern)], pattern, len(pattern))
		if d != got[i].Mismatches {
			t.Fatalf("match at %d reports %d mismatches, actual %d", got[i].Pos, got[i].Mismatches, d)
		}
	}
}

func TestPaperIntroExample(t *testing.T) {
	// §I: r = aaaaacaaac occurs in s = ccacacagaagcc at (1-based) position
	// 3 with 4 mismatches.
	text, _ := alphabet.Encode([]byte("ccacacagaagcc"))
	pattern, _ := alphabet.Encode([]byte("aaaaacaaac"))
	s, err := NewSearcher(text, fmindex.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, method := range []Method{MethodSTree, MethodSTreePhi, MethodMTree, MethodMTreeNoPhi} {
		got, _, err := s.Find(pattern, 4, method)
		if err != nil {
			t.Fatal(err)
		}
		want := naive.Find(text, pattern, 4)
		matchesEqual(t, got, want, text, pattern, 4)
		has2 := false
		for _, mt := range got {
			if mt.Pos == 2 {
				has2 = true
			}
		}
		if !has2 {
			t.Fatalf("%v: missing the paper's occurrence at position 2: %v", method, got)
		}
	}
}

func TestPaperSTreeExample(t *testing.T) {
	// §IV-A: r = tcaca against s = acagaca with k = 2 finds occurrences
	// s[1..5] and s[3..7] (1-based), i.e. 0-based positions 0 and 2.
	text, _ := alphabet.Encode([]byte("acagaca"))
	pattern, _ := alphabet.Encode([]byte("tcaca"))
	s, _ := NewSearcher(text, fmindex.DefaultOptions())
	for _, method := range []Method{MethodSTree, MethodSTreePhi, MethodMTree, MethodMTreeNoPhi} {
		got, _, err := s.Find(pattern, 2, method)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 2 || got[0].Pos != 0 || got[1].Pos != 2 {
			t.Fatalf("%v: got %v, want positions 0 and 2", method, got)
		}
		if got[0].Mismatches != 2 || got[1].Mismatches != 2 {
			t.Fatalf("%v: mismatch counts %v, want 2 and 2", method, got)
		}
	}
}

func TestAllMethodsAgainstOracleRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 40; trial++ {
		n := 50 + rng.Intn(400)
		text := randomRanks(rng, n)
		s, err := NewSearcher(text, fmindex.Options{OccRate: 1 + rng.Intn(6), SARate: 1 + rng.Intn(6)})
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < 8; q++ {
			m := 1 + rng.Intn(20)
			if m > n {
				m = n
			}
			k := rng.Intn(4)
			var pattern []byte
			if rng.Intn(2) == 0 && n > m {
				pattern = mutate(rng, text, rng.Intn(n-m), m, rng.Intn(k+1))
			} else {
				pattern = randomRanks(rng, m)
			}
			want := naive.Find(text, pattern, k)
			for _, method := range []Method{MethodSTree, MethodSTreePhi, MethodMTree, MethodMTreeNoPhi} {
				got, _, err := s.Find(pattern, k, method)
				if err != nil {
					t.Fatal(err)
				}
				matchesEqual(t, got, want, text, pattern, k)
			}
		}
	}
}

func TestMTreeAgainstOracleRepetitiveText(t *testing.T) {
	// Repetitive texts maximize interval reuse, stressing the derivation
	// machinery (memo hits, fallbacks).
	rng := rand.New(rand.NewSource(52))
	for trial := 0; trial < 30; trial++ {
		unit := randomRanks(rng, 2+rng.Intn(12))
		var text []byte
		for len(text) < 200+rng.Intn(200) {
			text = append(text, unit...)
			if rng.Intn(4) == 0 { // sprinkle noise between repeats
				text = append(text, byte(1+rng.Intn(4)))
			}
		}
		s, _ := NewSearcher(text, fmindex.DefaultOptions())
		for q := 0; q < 6; q++ {
			m := 2 + rng.Intn(24)
			if m > len(text) {
				m = len(text)
			}
			k := rng.Intn(5)
			pattern := mutate(rng, text, rng.Intn(len(text)-m+1), m, rng.Intn(k+2))
			want := naive.Find(text, pattern, k)
			got, stats, err := s.Find(pattern, k, MethodMTree)
			if err != nil {
				t.Fatal(err)
			}
			matchesEqual(t, got, want, text, pattern, k)
			if stats.MTreeLeaves == 0 && len(want) > 0 {
				t.Fatal("no leaves recorded despite matches")
			}
		}
	}
}

func TestMTreeQuick(t *testing.T) {
	f := func(seed int64, n16 uint16, m8, k8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + int(n16)%300
		text := randomRanks(rng, n)
		m := 1 + int(m8)%15
		k := int(k8) % 4
		pattern := randomRanks(rng, m)
		s, err := NewSearcher(text, fmindex.DefaultOptions())
		if err != nil {
			return false
		}
		got, _, err := s.Find(pattern, k, MethodMTree)
		if err != nil {
			return false
		}
		want := naive.Find(text, pattern, k)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].Pos != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestKZeroIsExactMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	text := randomRanks(rng, 500)
	s, _ := NewSearcher(text, fmindex.DefaultOptions())
	for q := 0; q < 20; q++ {
		p := rng.Intn(480)
		pattern := text[p : p+12]
		for _, method := range []Method{MethodSTree, MethodSTreePhi, MethodMTree, MethodMTreeNoPhi} {
			got, _, err := s.Find(pattern, 0, method)
			if err != nil {
				t.Fatal(err)
			}
			want := naive.Find(text, pattern, 0)
			matchesEqual(t, got, want, text, pattern, 0)
		}
	}
}

func TestKAtLeastM(t *testing.T) {
	// k >= m: every window qualifies.
	rng := rand.New(rand.NewSource(54))
	text := randomRanks(rng, 40)
	s, _ := NewSearcher(text, fmindex.DefaultOptions())
	pattern := randomRanks(rng, 3)
	for _, method := range []Method{MethodSTree, MethodMTree} {
		got, _, err := s.Find(pattern, 3, method)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(text)-len(pattern)+1 {
			t.Fatalf("%v: %d matches, want %d", method, len(got), len(text)-len(pattern)+1)
		}
	}
}

func TestFindValidation(t *testing.T) {
	text := []byte{1, 2, 3, 4}
	s, _ := NewSearcher(text, fmindex.DefaultOptions())
	if _, _, err := s.Find(nil, 1, MethodMTree); err == nil {
		t.Error("empty pattern accepted")
	}
	if _, _, err := s.Find([]byte{0}, 1, MethodMTree); err == nil {
		t.Error("sentinel in pattern accepted")
	}
	if _, _, err := s.Find([]byte{1}, -1, MethodMTree); err == nil {
		t.Error("negative k accepted")
	}
	if _, _, err := s.Find([]byte{1}, 1, Method(99)); err == nil {
		t.Error("unknown method accepted")
	}
	got, _, err := s.Find([]byte{1, 2, 3, 4, 1}, 1, MethodMTree)
	if err != nil || got != nil {
		t.Errorf("pattern longer than text: got %v, err %v", got, err)
	}
}

func TestNewSearcherFromIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	text := randomRanks(rng, 300)
	s1, err := NewSearcher(text, fmindex.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewSearcherFromIndex(s1.Index(), s1.N())
	if s2.N() != len(text) {
		t.Fatalf("N = %d", s2.N())
	}
	pattern := mutate(rng, text, 50, 20, 1)
	a, _, err := s1.Find(pattern, 2, MethodMTree)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := s2.Find(pattern, 2, MethodMTree)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("wrapped searcher disagrees: %d vs %d", len(a), len(b))
	}
}

func TestMethodString(t *testing.T) {
	if MethodSTreePhi.String() != "bwt" || MethodMTree.String() != "a" {
		t.Error("Method.String mismatch with paper naming")
	}
	if Method(42).String() == "" {
		t.Error("unknown method string empty")
	}
}

func TestStatsPopulated(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	text := randomRanks(rng, 3000)
	s, _ := NewSearcher(text, fmindex.DefaultOptions())
	pattern := mutate(rng, text, 100, 30, 2)
	_, stats, err := s.Find(pattern, 3, MethodMTree)
	if err != nil {
		t.Fatal(err)
	}
	if stats.StepCalls == 0 || stats.Nodes == 0 || stats.MTreeLeaves == 0 {
		t.Errorf("stats look empty: %+v", stats)
	}
	_, pstats, _ := s.Find(pattern, 3, MethodSTreePhi)
	if pstats.StepCalls == 0 {
		t.Errorf("phi stats empty: %+v", pstats)
	}
}

func TestCountLeaves(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	text := randomRanks(rng, 2000)
	s, _ := NewSearcher(text, fmindex.DefaultOptions())
	pattern := mutate(rng, text, 50, 40, 3)
	stats, err := s.CountLeaves(pattern, 3)
	if err != nil {
		t.Fatal(err)
	}
	if stats.MTreeLeaves == 0 {
		t.Error("CountLeaves found nothing")
	}
	// Degenerate inputs are a no-op.
	if st, err := s.CountLeaves(nil, 3); err != nil || st.MTreeLeaves != 0 {
		t.Error("CountLeaves(nil) misbehaved")
	}
}

func TestPhiPrunesButPreservesResults(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	text := randomRanks(rng, 5000)
	s, _ := NewSearcher(text, fmindex.DefaultOptions())
	// A random (non-planted) pattern has absent substrings, activating φ.
	pattern := randomRanks(rng, 40)
	k := 3
	plain, pstats, _ := s.Find(pattern, k, MethodSTree)
	pruned, qstats, _ := s.Find(pattern, k, MethodSTreePhi)
	if len(plain) != len(pruned) {
		t.Fatalf("phi changed results: %d vs %d", len(plain), len(pruned))
	}
	if qstats.StepCalls > pstats.StepCalls {
		t.Errorf("phi did not reduce work: %d > %d", qstats.StepCalls, pstats.StepCalls)
	}
}

func TestMTreeDoesLessBWTWorkOnRepetitiveText(t *testing.T) {
	// On a highly repetitive target the memo must pay off in rank work.
	rng := rand.New(rand.NewSource(58))
	unit := randomRanks(rng, 10)
	var text []byte
	for i := 0; i < 400; i++ {
		text = append(text, unit...)
	}
	s, _ := NewSearcher(text, fmindex.DefaultOptions())
	pattern := mutate(rng, text, 30, 40, 2)
	_, brute, _ := s.Find(pattern, 3, MethodSTree)
	_, atree, _ := s.Find(pattern, 3, MethodMTree)
	if atree.StepCalls >= brute.StepCalls {
		t.Errorf("Algorithm A did not save BWT work: %d vs %d (memo hits %d)",
			atree.StepCalls, brute.StepCalls, atree.MemoHits)
	}
}
