package core

import (
	"sync"

	"bwtmatch/internal/fmindex"
	"bwtmatch/internal/mismatch"
)

// Scratch is the reusable per-search working set: the M-tree run and
// branch arenas, the interval memo, the φ buffers, the S-tree stack, the
// leaf list and the locate buffer. A warm Scratch lets FindScratch run
// without any heap allocation (DESIGN.md §8), which is where the map
// memo and the fresh per-query slices of the original implementation
// spent a large share of wall-clock.
//
// A Scratch is not safe for concurrent use; pin one per worker
// goroutine (bwtmatch.MapAllContext does) or recycle through a
// sync.Pool. It holds no reference to any index, so one Scratch serves
// searches against different Searchers interchangeably.
type Scratch struct {
	memo   memoTable
	runs   []mrun
	brs    []mbranch
	out    []leaf
	phi    []int
	absent []int
	frames []frame
	locBuf []int32
	src    mismatch.IterSource
	as     asearch
	// stats is the working counter block for an in-flight search. It
	// lives here (not on the caller's stack) because the M-tree search
	// stores its address in the heap-resident asearch, which would
	// otherwise force a per-call heap allocation of a stack Stats.
	stats Stats
}

// NewScratch returns an empty Scratch; buffers grow on first use and
// are retained across searches.
func NewScratch() *Scratch { return &Scratch{} }

// frame is one pending S-tree node of the brute-force traversal.
type frame struct {
	iv   fmindex.Interval
	j    int
	mism int
}

// scratchPool recycles Scratches for the convenience entry points
// (Find/FindTraced) that do not thread their own.
var scratchPool = sync.Pool{New: func() any { return NewScratch() }}

// intBuf returns buf resized to n entries, reallocating only when the
// capacity is insufficient. Contents are unspecified.
func intBuf(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n, max(n, 2*cap(buf)))
	}
	return buf[:n]
}

// memoTable is an open-addressed, linear-probe hash table keyed by the
// packed BWT interval, replacing the per-search map[uint64]int32. Slots
// carry a generation stamp: begin() bumps the generation, invalidating
// every slot in O(1) instead of clearing or reallocating the table.
// Probe chains only ever run through slots of the current generation,
// so a stale slot terminates a lookup exactly like a never-used one.
type memoTable struct {
	slots []memoSlot
	mask  uint64
	gen   uint32
	used  int // live entries in the current generation
}

type memoSlot struct {
	key uint64
	val int32
	gen uint32
}

// memoMinSize is the initial slot count (a power of two).
const memoMinSize = 1024

// begin invalidates all entries for a new search. The generation wraps
// after 2^32-1 searches; on wrap every slot is hard-cleared so a stale
// stamp can never alias the restarted counter.
func (t *memoTable) begin() {
	if t.slots == nil {
		t.slots = make([]memoSlot, memoMinSize)
		t.mask = memoMinSize - 1
	}
	t.gen++
	if t.gen == 0 {
		clear(t.slots)
		t.gen = 1
	}
	t.used = 0
}

// memoHash spreads the packed interval over the table (Fibonacci
// multiplicative hashing; the high bits are the well-mixed ones).
func memoHash(key uint64) uint64 {
	return (key * 0x9E3779B97F4A7C15) >> 32
}

// get returns the run index recorded for key in the current generation.
func (t *memoTable) get(key uint64) (int32, bool) {
	i := memoHash(key) & t.mask
	for {
		s := &t.slots[i]
		if s.gen != t.gen {
			return 0, false
		}
		if s.key == key {
			return s.val, true
		}
		i = (i + 1) & t.mask
	}
}

// put records key → val, overwriting a same-generation entry (last
// writer wins, as the derivation machinery requires: fallbacks
// strengthen weak entries).
func (t *memoTable) put(key uint64, val int32) {
	if t.used >= len(t.slots)-len(t.slots)/4 {
		t.grow()
	}
	i := memoHash(key) & t.mask
	for {
		s := &t.slots[i]
		if s.gen != t.gen {
			s.key, s.val, s.gen = key, val, t.gen
			t.used++
			return
		}
		if s.key == key {
			s.val = val
			return
		}
		i = (i + 1) & t.mask
	}
}

// grow doubles the table, re-inserting the current generation's
// entries. Growth only happens while a search is still discovering new
// intervals; a warm steady-state table never reallocates.
func (t *memoTable) grow() {
	old := t.slots
	t.slots = make([]memoSlot, 2*len(old))
	t.mask = uint64(len(t.slots) - 1)
	for _, s := range old {
		if s.gen != t.gen {
			continue
		}
		i := memoHash(s.key) & t.mask
		for t.slots[i].gen == t.gen {
			i = (i + 1) & t.mask
		}
		t.slots[i] = s
	}
}
