package core

import (
	"testing"

	"bwtmatch/internal/dna"
	"bwtmatch/internal/fmindex"
)

// benchWorkload is shared by the method benchmarks: a repeat-rich 256 KiB
// genome and five 100 bp reads with sequencing errors.
func benchWorkload(b *testing.B) (*Searcher, [][]byte) {
	b.Helper()
	g, err := dna.Generate(dna.GenomeConfig{
		Length: 256 << 10, GC: 0.42, MarkovBias: 0.15,
		RepeatFraction: 0.4, TandemFraction: 0.03, Seed: 1001,
	})
	if err != nil {
		b.Fatal(err)
	}
	s, err := NewSearcher(g, fmindex.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	reads, err := dna.Simulate(g, dna.ReadConfig{Length: 100, Count: 5, ErrorRate: 0.02, Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	out := make([][]byte, len(reads))
	for i, r := range reads {
		out[i] = r.Seq
	}
	return s, out
}

func benchMethod(b *testing.B, method Method, k int) {
	s, reads := benchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range reads {
			if _, _, err := s.Find(r, k, method); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkAlgorithmA_K5(b *testing.B)    { benchMethod(b, MethodMTree, 5) }
func BenchmarkAlgorithmA_K8(b *testing.B)    { benchMethod(b, MethodMTree, 8) }
func BenchmarkBWTBaseline_K5(b *testing.B)   { benchMethod(b, MethodSTreePhi, 5) }
func BenchmarkBWTBaseline_K8(b *testing.B)   { benchMethod(b, MethodSTreePhi, 8) }
func BenchmarkSTreeUnpruned_K5(b *testing.B) { benchMethod(b, MethodSTree, 5) }
