package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomVector(rng *rand.Rand, n int, density float64) *Vector {
	v := New(n)
	for i := 0; i < n; i++ {
		if rng.Float64() < density {
			v.Set(i)
		}
	}
	return v
}

func TestSetGetClear(t *testing.T) {
	v := New(130)
	v.Set(0)
	v.Set(64)
	v.Set(129)
	for i := 0; i < 130; i++ {
		want := i == 0 || i == 64 || i == 129
		if v.Get(i) != want {
			t.Fatalf("Get(%d) = %v, want %v", i, v.Get(i), want)
		}
	}
	v.Clear(64)
	if v.Get(64) {
		t.Error("Clear(64) did not clear")
	}
	if v.Count() != 2 {
		t.Errorf("Count = %d, want 2", v.Count())
	}
}

func TestAppend(t *testing.T) {
	var v Vector
	pattern := []bool{true, false, true, true, false}
	for i := 0; i < 100; i++ {
		v.Append(pattern[i%len(pattern)])
	}
	if v.Len() != 100 {
		t.Fatalf("Len = %d", v.Len())
	}
	for i := 0; i < 100; i++ {
		if v.Get(i) != pattern[i%len(pattern)] {
			t.Fatalf("Get(%d) mismatch", i)
		}
	}
}

func TestRank1AgainstScan(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 63, 64, 65, 511, 512, 513, 4000} {
		v := randomVector(rng, n, 0.3)
		r := NewRank(v)
		c := 0
		for i := 0; i <= n; i++ {
			if got := r.Rank1(i); got != c {
				t.Fatalf("n=%d Rank1(%d) = %d, want %d", n, i, got, c)
			}
			if got := r.Rank0(i); got != i-c {
				t.Fatalf("n=%d Rank0(%d) = %d, want %d", n, i, got, i-c)
			}
			if i < n && v.Get(i) {
				c++
			}
		}
	}
}

func TestSelect1Inverse(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	v := randomVector(rng, 3000, 0.5)
	r := NewRank(v)
	for j := 1; j <= r.Ones(); j++ {
		p := r.Select1(j)
		if p < 0 || !v.Get(p) {
			t.Fatalf("Select1(%d) = %d not a set bit", j, p)
		}
		if r.Rank1(p+1) != j {
			t.Fatalf("Rank1(Select1(%d)+1) = %d", j, r.Rank1(p+1))
		}
	}
	if r.Select1(0) != -1 || r.Select1(r.Ones()+1) != -1 {
		t.Error("Select1 out of range should return -1")
	}
}

func TestSelect0Inverse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	v := randomVector(rng, 2000, 0.7)
	r := NewRank(v)
	zeros := v.Len() - r.Ones()
	for j := 1; j <= zeros; j++ {
		p := r.Select0(j)
		if p < 0 || v.Get(p) {
			t.Fatalf("Select0(%d) = %d not a zero bit", j, p)
		}
		if r.Rank0(p+1) != j {
			t.Fatalf("Rank0(Select0(%d)+1) = %d", j, r.Rank0(p+1))
		}
	}
	if r.Select0(0) != -1 || r.Select0(zeros+1) != -1 {
		t.Error("Select0 out of range should return -1")
	}
}

func TestSelect0AgainstScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 63, 64, 65, 511, 512, 513, 1000, 4096, 5000} {
		for _, density := range []float64{0, 0.05, 0.5, 0.95, 1} {
			v := randomVector(rng, n, density)
			r := NewRank(v)
			j := 0
			for i := 0; i < n; i++ {
				if !v.Get(i) {
					j++
					if got := r.Select0(j); got != i {
						t.Fatalf("n=%d d=%.2f Select0(%d) = %d, want %d", n, density, j, got, i)
					}
				}
			}
			if got := r.Select0(j + 1); got != -1 {
				t.Fatalf("n=%d d=%.2f Select0(zeros+1) = %d, want -1", n, density, got)
			}
		}
	}
}

func TestRankWordsSizeBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	v := randomVector(rng, 777, 0.4)
	r := NewRank(v)
	if len(r.Words()) != len(v.Words()) {
		t.Fatalf("Rank.Words len %d, Vector.Words len %d", len(r.Words()), len(v.Words()))
	}
	if r.SizeBytes() < v.SizeBytes() {
		t.Fatalf("Rank.SizeBytes %d smaller than payload %d", r.SizeBytes(), v.SizeBytes())
	}
}

func TestRankSelectQuick(t *testing.T) {
	f := func(seed int64, n16 uint16, density uint8) bool {
		n := int(n16) % 2048
		rng := rand.New(rand.NewSource(seed))
		v := randomVector(rng, n, float64(density)/255)
		r := NewRank(v)
		// rank law: Rank1(i+1) - Rank1(i) == bit i
		for trial := 0; trial < 32 && n > 0; trial++ {
			i := rng.Intn(n)
			d := r.Rank1(i+1) - r.Rank1(i)
			if (d == 1) != v.Get(i) {
				return false
			}
		}
		return r.Rank1(n) == v.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestAllOnesAllZeros(t *testing.T) {
	n := 1000
	ones := New(n)
	for i := 0; i < n; i++ {
		ones.Set(i)
	}
	r := NewRank(ones)
	if r.Rank1(n) != n || r.Select1(n) != n-1 {
		t.Error("all-ones rank/select wrong")
	}
	zeros := New(n)
	rz := NewRank(zeros)
	if rz.Rank1(n) != 0 || rz.Select0(n) != n-1 {
		t.Error("all-zeros rank/select wrong")
	}
}

func TestWordsFromWordsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, n := range []int{0, 1, 63, 64, 65, 777} {
		v := randomVector(rng, n, 0.4)
		rebuilt := FromWords(append([]uint64(nil), v.Words()...), n)
		if rebuilt.Len() != n {
			t.Fatalf("Len = %d, want %d", rebuilt.Len(), n)
		}
		for i := 0; i < n; i++ {
			if rebuilt.Get(i) != v.Get(i) {
				t.Fatalf("bit %d differs after round trip (n=%d)", i, n)
			}
		}
	}
}

func TestFromWordsPadsShortPayload(t *testing.T) {
	v := FromWords([]uint64{0xFF}, 256) // needs 4 words, given 1
	if v.Len() != 256 {
		t.Fatalf("Len = %d", v.Len())
	}
	for i := 0; i < 8; i++ {
		if !v.Get(i) {
			t.Fatalf("low bit %d lost", i)
		}
	}
	for i := 64; i < 256; i++ {
		if v.Get(i) {
			t.Fatalf("padded bit %d set", i)
		}
	}
}

func TestSizeBytes(t *testing.T) {
	v := New(128)
	if v.SizeBytes() != 16 {
		t.Errorf("SizeBytes = %d, want 16", v.SizeBytes())
	}
}

func BenchmarkRank1(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	v := randomVector(rng, 1<<20, 0.5)
	r := NewRank(v)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Rank1(i % (1 << 20))
	}
}

func BenchmarkSelect1(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	v := randomVector(rng, 1<<20, 0.5)
	r := NewRank(v)
	ones := r.Ones()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Select1(i%ones + 1)
	}
}
