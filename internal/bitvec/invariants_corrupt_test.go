//go:build kminvariants

package bitvec

import (
	"math/rand"
	"testing"
)

// TestCheckInvariantsDetectsCorruption tampers with each piece of the
// rank structure and requires CheckInvariants to notice. Only built
// under the kminvariants tag (the stub cannot detect anything).
func TestCheckInvariantsDetectsCorruption(t *testing.T) {
	build := func() *Rank {
		rng := rand.New(rand.NewSource(11))
		v := New(1500)
		for i := 0; i < 1500; i++ {
			if rng.Intn(2) == 0 {
				v.Set(i)
			}
		}
		return NewRank(v)
	}

	cases := []struct {
		name   string
		tamper func(r *Rank)
	}{
		{"block checkpoint", func(r *Rank) { r.blocks[1]++ }},
		{"cached ones", func(r *Rank) { r.ones++ }},
		{"payload bit flip", func(r *Rank) { r.v.words[3] ^= 1 << 17 }},
		{"stale tail bit", func(r *Rank) { r.v.words[len(r.v.words)-1] |= 1 << 63 }},
		{"truncated blocks", func(r *Rank) { r.blocks = r.blocks[:len(r.blocks)-1] }},
	}
	for _, tc := range cases {
		r := build()
		if err := r.CheckInvariants(); err != nil {
			t.Fatalf("pristine structure rejected: %v", err)
		}
		tc.tamper(r)
		if err := r.CheckInvariants(); err == nil {
			t.Errorf("%s: corruption not detected", tc.name)
		}
	}
}
