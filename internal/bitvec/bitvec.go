// Package bitvec provides plain and rank/select-capable bit vectors.
//
// The rank structure is the classic one-level sampled scheme: a cumulative
// popcount is stored every 512 bits (8 words) and ranks inside a block are
// completed with hardware popcounts. This is the "manual bit tricks"
// substrate for the FM-index occ tables and the wavelet tree.
package bitvec

import "math/bits"

// Vector is a growable bit vector.
type Vector struct {
	words []uint64
	n     int
}

// New returns a Vector with n zero bits.
func New(n int) *Vector {
	return &Vector{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the number of bits.
func (v *Vector) Len() int { return v.n }

// Set sets bit i to 1.
func (v *Vector) Set(i int) { v.words[i>>6] |= 1 << uint(i&63) }

// Clear sets bit i to 0.
func (v *Vector) Clear(i int) { v.words[i>>6] &^= 1 << uint(i&63) }

// Get reports bit i.
func (v *Vector) Get(i int) bool { return v.words[i>>6]>>uint(i&63)&1 == 1 }

// Append adds a bit at the end.
func (v *Vector) Append(b bool) {
	if v.n&63 == 0 {
		v.words = append(v.words, 0)
	}
	if b {
		v.words[v.n>>6] |= 1 << uint(v.n&63)
	}
	v.n++
}

// Count returns the total number of set bits.
func (v *Vector) Count() int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// SizeBytes returns the payload size in bytes.
func (v *Vector) SizeBytes() int { return len(v.words) * 8 }

// Words exposes the raw word payload for serialization. The caller must
// not modify it.
func (v *Vector) Words() []uint64 { return v.words }

// FromWords reconstructs a Vector of n bits over a word payload (as
// returned by Words). The slice is adopted, not copied.
func FromWords(words []uint64, n int) *Vector {
	need := (n + 63) / 64
	if len(words) < need {
		padded := make([]uint64, need)
		copy(padded, words)
		words = padded
	}
	return &Vector{words: words, n: n}
}

// blockWords is the number of 64-bit words per rank superblock (512 bits).
const blockWords = 8

// Rank supports O(1) rank and O(log n)-ish select queries over an immutable
// bit sequence.
type Rank struct {
	v      *Vector
	blocks []uint32 // cumulative popcount before each superblock
	ones   int
}

// NewRank freezes v (which must not be modified afterwards) and builds the
// rank directory.
func NewRank(v *Vector) *Rank {
	nb := (len(v.words) + blockWords - 1) / blockWords
	r := &Rank{v: v, blocks: make([]uint32, nb+1)}
	c := 0
	for i, w := range v.words {
		if i%blockWords == 0 {
			r.blocks[i/blockWords] = uint32(c)
		}
		c += bits.OnesCount64(w)
	}
	r.blocks[nb] = uint32(c)
	r.ones = c
	return r
}

// Len returns the number of bits.
func (r *Rank) Len() int { return r.v.n }

// Ones returns the total number of set bits.
func (r *Rank) Ones() int { return r.ones }

// Get reports bit i.
func (r *Rank) Get(i int) bool { return r.v.Get(i) }

// Words exposes the frozen word payload for serialization. The caller
// must not modify it.
func (r *Rank) Words() []uint64 { return r.v.words }

// SizeBytes returns the resident size: bit payload plus the rank
// directory.
func (r *Rank) SizeBytes() int { return len(r.v.words)*8 + len(r.blocks)*4 }

// Rank1 returns the number of 1-bits in positions [0, i). Rank1(Len()) is
// the total popcount.
func (r *Rank) Rank1(i int) int {
	word := i >> 6
	c := int(r.blocks[word/blockWords])
	for w := word - word%blockWords; w < word; w++ {
		c += bits.OnesCount64(r.v.words[w])
	}
	if i&63 != 0 {
		c += bits.OnesCount64(r.v.words[word] << uint(64-i&63) >> uint(64-i&63))
	}
	return c
}

// Rank0 returns the number of 0-bits in positions [0, i).
func (r *Rank) Rank0(i int) int { return i - r.Rank1(i) }

// Select1 returns the position of the j-th 1-bit (1-based), or -1 if there
// are fewer than j set bits.
func (r *Rank) Select1(j int) int {
	if j < 1 || j > r.ones {
		return -1
	}
	// Binary search over superblocks, then scan words.
	lo, hi := 0, len(r.blocks)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if int(r.blocks[mid]) < j {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	rem := j - int(r.blocks[lo])
	for w := lo * blockWords; w < len(r.v.words); w++ {
		c := bits.OnesCount64(r.v.words[w])
		if rem <= c {
			return w*64 + selectInWord(r.v.words[w], rem)
		}
		rem -= c
	}
	return -1
}

// Select0 returns the position of the j-th 0-bit (1-based), or -1.
func (r *Rank) Select0(j int) int {
	zeros := r.v.n - r.ones
	if j < 1 || j > zeros {
		return -1
	}
	// Binary search over superblocks on the complement count (zeros
	// before superblock i = i*512 - ones before it), then scan words.
	// Padding zeros past Len() in the final word cannot be selected:
	// j <= zeros, and every real zero precedes the padding bits.
	lo, hi := 0, len(r.blocks)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if mid*blockWords*64-int(r.blocks[mid]) < j {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	rem := j - (lo*blockWords*64 - int(r.blocks[lo]))
	for w := lo * blockWords; w < len(r.v.words); w++ {
		c := 64 - bits.OnesCount64(r.v.words[w])
		if rem <= c {
			return w*64 + selectInWord(^r.v.words[w], rem)
		}
		rem -= c
	}
	return -1
}

// selectInWord returns the position (0..63) of the j-th set bit of w,
// 1-based; behaviour is undefined if w has fewer than j bits.
func selectInWord(w uint64, j int) int {
	for i := 0; i < 64; i++ {
		if w>>uint(i)&1 == 1 {
			j--
			if j == 0 {
				return i
			}
		}
	}
	return -1
}
