//go:build kminvariants

package bitvec

import (
	"fmt"
	"math/bits"
)

// InvariantsEnabled reports whether this build carries the deep
// invariant checks (the kminvariants build tag).
const InvariantsEnabled = true

// CheckInvariants verifies the rank directory against a naive popcount
// recomputation and exercises rank/select round-trips. It is O(n) and
// intended for tests and fuzz harnesses under the kminvariants tag; the
// default build compiles it to a no-op.
//
// Checked:
//   - every superblock checkpoint equals the running popcount
//   - the cached total equals the true popcount
//   - bits at positions >= Len() are all zero (no stale tail garbage)
//   - Rank1(i) equals a bit-by-bit running count at sampled positions
//   - Select1/Select0 round-trip through Rank1/Rank0 at sampled j
func (r *Rank) CheckInvariants() error {
	n := r.v.n
	if need := (n + 63) / 64; len(r.v.words) < need {
		return fmt.Errorf("bitvec: %d words cannot hold %d bits", len(r.v.words), n)
	}
	nb := (len(r.v.words) + blockWords - 1) / blockWords
	if len(r.blocks) != nb+1 {
		return fmt.Errorf("bitvec: %d superblock checkpoints for %d words, want %d",
			len(r.blocks), len(r.v.words), nb+1)
	}
	c := 0
	for i, w := range r.v.words {
		if i%blockWords == 0 {
			if got := int(r.blocks[i/blockWords]); got != c {
				return fmt.Errorf("bitvec: block[%d] = %d, want %d", i/blockWords, got, c)
			}
		}
		c += bits.OnesCount64(w)
	}
	if got := int(r.blocks[nb]); got != c {
		return fmt.Errorf("bitvec: final block checkpoint = %d, want %d", got, c)
	}
	if r.ones != c {
		return fmt.Errorf("bitvec: cached ones = %d, true popcount %d", r.ones, c)
	}
	for i := n; i < len(r.v.words)*64; i++ {
		if r.v.words[i>>6]>>uint(i&63)&1 == 1 {
			return fmt.Errorf("bitvec: stale bit set at tail position %d (len %d)", i, n)
		}
	}

	// Rank cross-check against a running count; sampled so huge vectors
	// stay O(n) with a small constant.
	stride := 1
	if n > 4096 {
		stride = n / 4096
	}
	run := 0
	for i := 0; i < n; i++ {
		if i%stride == 0 {
			if got := r.Rank1(i); got != run {
				return fmt.Errorf("bitvec: Rank1(%d) = %d, want %d", i, got, run)
			}
		}
		if r.v.Get(i) {
			run++
		}
	}
	if got := r.Rank1(n); got != run {
		return fmt.Errorf("bitvec: Rank1(len) = %d, want %d", got, run)
	}

	// Select round-trips: the j-th 1 must be a set bit with exactly j-1
	// ones before it (and symmetrically for zeros).
	jStride := 1
	if r.ones > 2048 {
		jStride = r.ones / 2048
	}
	for j := 1; j <= r.ones; j += jStride {
		p := r.Select1(j)
		if p < 0 || p >= n || !r.Get(p) || r.Rank1(p) != j-1 {
			return fmt.Errorf("bitvec: Select1(%d) = %d fails round-trip", j, p)
		}
	}
	if p := r.Select1(r.ones + 1); p != -1 {
		return fmt.Errorf("bitvec: Select1(ones+1) = %d, want -1", p)
	}
	zeros := n - r.ones
	jStride = 1
	if zeros > 2048 {
		jStride = zeros / 2048
	}
	for j := 1; j <= zeros; j += jStride {
		p := r.Select0(j)
		if p < 0 || p >= n || r.Get(p) || r.Rank0(p) != j-1 {
			return fmt.Errorf("bitvec: Select0(%d) = %d fails round-trip", j, p)
		}
	}
	if p := r.Select0(zeros + 1); p != -1 {
		return fmt.Errorf("bitvec: Select0(zeros+1) = %d, want -1", p)
	}
	return nil
}
