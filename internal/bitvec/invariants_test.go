package bitvec

import (
	"math/rand"
	"testing"
)

// TestCheckInvariants exercises the deep verification over assorted
// shapes. In default builds CheckInvariants is a no-op and this only
// pins the API; under -tags kminvariants it runs the real checks.
func TestCheckInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 63, 64, 65, 511, 512, 513, 4097, 20000} {
		v := New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				v.Set(i)
			}
		}
		if err := NewRank(v).CheckInvariants(); err != nil {
			t.Errorf("random n=%d: %v", n, err)
		}

		ones := New(n)
		for i := 0; i < n; i++ {
			ones.Set(i)
		}
		if err := NewRank(ones).CheckInvariants(); err != nil {
			t.Errorf("all-ones n=%d: %v", n, err)
		}
		if err := NewRank(New(n)).CheckInvariants(); err != nil {
			t.Errorf("all-zeros n=%d: %v", n, err)
		}
	}

	// Appended vectors share the invariant surface with preallocated
	// ones.
	v := New(0)
	for i := 0; i < 1000; i++ {
		v.Append(i%7 == 0)
	}
	if err := NewRank(v).CheckInvariants(); err != nil {
		t.Errorf("appended: %v", err)
	}
}
