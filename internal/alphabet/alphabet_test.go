package alphabet

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRankRoundTrip(t *testing.T) {
	for _, b := range []byte("$acgt") {
		r, err := Rank(b)
		if err != nil {
			t.Fatalf("Rank(%q): %v", b, err)
		}
		if got := Byte(r); got != b {
			t.Errorf("Byte(Rank(%q)) = %q", b, got)
		}
	}
}

func TestRankUpperCase(t *testing.T) {
	for i, b := range []byte("ACGT") {
		r, err := Rank(b)
		if err != nil {
			t.Fatalf("Rank(%q): %v", b, err)
		}
		if int(r) != i+1 {
			t.Errorf("Rank(%q) = %d, want %d", b, r, i+1)
		}
	}
}

func TestRankInvalid(t *testing.T) {
	for _, b := range []byte("nNxX 0-") {
		if _, err := Rank(b); !errors.Is(err, ErrInvalidChar) {
			t.Errorf("Rank(%q) error = %v, want ErrInvalidChar", b, err)
		}
	}
}

func TestValidPredicates(t *testing.T) {
	if !Valid('$') || !Valid('a') || Valid('x') {
		t.Error("Valid misbehaved")
	}
	if ValidBase('$') || !ValidBase('T') || ValidBase('n') {
		t.Error("ValidBase misbehaved")
	}
}

func TestOrdering(t *testing.T) {
	// The paper requires $ < a < c < g < t.
	order := []byte{Sentinel, A, C, G, T}
	for i := 1; i < len(order); i++ {
		if order[i-1] >= order[i] {
			t.Fatalf("rank order violated at %d", i)
		}
	}
}

func TestEncodeDecode(t *testing.T) {
	in := []byte("acgtACGT")
	ranks, err := Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("acgtacgt")
	if got := Decode(ranks); !bytes.Equal(got, want) {
		t.Errorf("Decode(Encode(%q)) = %q, want %q", in, got, want)
	}
}

func TestEncodeRejectsSentinel(t *testing.T) {
	if _, err := Encode([]byte("ac$gt")); !errors.Is(err, ErrInvalidChar) {
		t.Errorf("Encode with sentinel: err = %v, want ErrInvalidChar", err)
	}
}

func TestEncodeRejectsInvalid(t *testing.T) {
	if _, err := Encode([]byte("acNgt")); !errors.Is(err, ErrInvalidChar) {
		t.Errorf("Encode with N: err = %v, want ErrInvalidChar", err)
	}
}

func TestEncodeEmpty(t *testing.T) {
	ranks, err := Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranks) != 0 {
		t.Errorf("Encode(nil) = %v, want empty", ranks)
	}
}

func TestSanitize(t *testing.T) {
	clean, replaced := Sanitize([]byte("acNGt$x"))
	if want := []byte("acagtaa"); !bytes.Equal(clean, want) {
		t.Errorf("Sanitize = %q, want %q", clean, want)
	}
	if replaced != 3 {
		t.Errorf("replaced = %d, want 3", replaced)
	}
}

func TestComplement(t *testing.T) {
	pairs := map[byte]byte{A: T, T: A, C: G, G: C, Sentinel: Sentinel}
	for r, want := range pairs {
		if got := Complement(r); got != want {
			t.Errorf("Complement(%d) = %d, want %d", r, got, want)
		}
	}
}

func TestReverseComplement(t *testing.T) {
	ranks, _ := Encode([]byte("aacgt"))
	got := Decode(ReverseComplement(ranks))
	if want := []byte("acgtt"); !bytes.Equal(got, want) {
		t.Errorf("ReverseComplement(aacgt) = %q, want %q", got, want)
	}
}

func TestReverseComplementInvolution(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		ranks := make([]byte, int(n))
		for i := range ranks {
			ranks[i] = byte(1 + rng.Intn(4))
		}
		orig := append([]byte(nil), ranks...)
		ReverseComplement(ReverseComplement(ranks))
		return bytes.Equal(orig, ranks)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReverse(t *testing.T) {
	b := []byte("abcde")
	if got := Reverse(b); !bytes.Equal(got, []byte("edcba")) {
		t.Errorf("Reverse = %q", got)
	}
	var empty []byte
	Reverse(empty) // must not panic
}

func TestPackRoundTrip(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		ranks := make([]byte, int(n)%5000)
		for i := range ranks {
			ranks[i] = byte(1 + rng.Intn(4))
		}
		p, err := Pack(ranks)
		if err != nil {
			return false
		}
		if p.Len() != len(ranks) {
			return false
		}
		return bytes.Equal(p.Unpack(), ranks)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPackGet(t *testing.T) {
	ranks, _ := Encode([]byte("acgtacgtacgtacgtacgtacgtacgtacgtacgta"))
	p, err := Pack(ranks)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range ranks {
		if got := p.Get(i); got != want {
			t.Fatalf("Get(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestPackRejectsSentinel(t *testing.T) {
	if _, err := Pack([]byte{Sentinel}); err == nil {
		t.Error("Pack(sentinel) succeeded, want error")
	}
}

func TestPackSlice(t *testing.T) {
	ranks, _ := Encode([]byte("acgtgca"))
	p, _ := Pack(ranks)
	got := p.Slice(nil, 2, 5)
	if want := []byte{G, T, G}; !bytes.Equal(got, want) {
		t.Errorf("Slice(2,5) = %v, want %v", got, want)
	}
}

func TestPackSizeBytes(t *testing.T) {
	ranks := make([]byte, 100)
	for i := range ranks {
		ranks[i] = A
	}
	p, _ := Pack(ranks)
	if got := p.SizeBytes(); got != 32 { // ceil(100/32) words * 8 bytes
		t.Errorf("SizeBytes = %d, want 32", got)
	}
}
