package alphabet

import "fmt"

// Packed is a 2-bit-per-base packed DNA text, matching the paper's storage
// scheme ("we use 2 bits to represent a character in {a,c,g,t}"). The
// sentinel cannot be packed; Packed therefore stores only proper bases and
// records its logical length separately.
type Packed struct {
	words []uint64
	n     int
}

// basesPerWord is how many 2-bit bases fit in one 64-bit word.
const basesPerWord = 32

// Pack packs rank-encoded bases (values 1..4, i.e. A..T) into 2-bit codes.
// Rank r is stored as r-1 so the codes are 0..3.
func Pack(ranks []byte) (*Packed, error) {
	p := &Packed{
		words: make([]uint64, (len(ranks)+basesPerWord-1)/basesPerWord),
		n:     len(ranks),
	}
	for i, r := range ranks {
		if r < A || r > T {
			return nil, fmt.Errorf("alphabet: cannot pack rank %d at position %d", r, i)
		}
		p.words[i/basesPerWord] |= uint64(r-1) << uint((i%basesPerWord)*2)
	}
	return p, nil
}

// Len returns the number of bases stored.
func (p *Packed) Len() int { return p.n }

// Get returns the rank (1..4) of the base at position i.
func (p *Packed) Get(i int) byte {
	code := byte(p.words[i/basesPerWord]>>uint((i%basesPerWord)*2)) & 3
	return code + 1
}

// Slice appends the ranks of positions [lo, hi) to dst and returns it.
func (p *Packed) Slice(dst []byte, lo, hi int) []byte {
	for i := lo; i < hi; i++ {
		dst = append(dst, p.Get(i))
	}
	return dst
}

// SizeBytes returns the in-memory payload size of the packed text.
func (p *Packed) SizeBytes() int { return len(p.words) * 8 }

// Unpack expands the whole packed text back to rank encoding.
func (p *Packed) Unpack() []byte {
	out := make([]byte, p.n)
	for i := range out {
		out[i] = p.Get(i)
	}
	return out
}
