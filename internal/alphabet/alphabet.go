// Package alphabet defines the DNA alphabet used throughout the library and
// utilities to encode, decode, pack and validate DNA strings.
//
// The ordering follows the paper: the sentinel '$' sorts before every other
// character and the bases sort alphabetically, i.e. $ < a < c < g < t.
// Internally characters are represented by small integer ranks so that rank
// arithmetic (C arrays, occ tables) is branch-free.
package alphabet

import (
	"errors"
	"fmt"
)

// Ranks of the five characters of the indexable alphabet.
const (
	Sentinel = 0 // '$', string terminator, lexicographically smallest
	A        = 1
	C        = 2
	G        = 3
	T        = 4
)

// Size is the number of distinct ranks including the sentinel.
const Size = 5

// Bases is the number of proper DNA bases (excluding the sentinel).
const Bases = 4

// SentinelByte is the literal terminator character.
const SentinelByte = '$'

// ErrInvalidChar reports a character outside {$, a, c, g, t, A, C, G, T}.
var ErrInvalidChar = errors.New("alphabet: invalid character")

// rankOf maps a byte to its rank+1 (0 means invalid). Upper and lower case
// bases are accepted; 'n'/'N' is intentionally rejected so callers must
// decide a policy for ambiguous bases (see Sanitize).
var rankOf = [256]byte{
	'$': Sentinel + 1,
	'a': A + 1, 'A': A + 1,
	'c': C + 1, 'C': C + 1,
	'g': G + 1, 'G': G + 1,
	't': T + 1, 'T': T + 1,
}

// byteOf maps a rank back to its canonical (lower-case) byte.
var byteOf = [Size]byte{'$', 'a', 'c', 'g', 't'}

// Rank returns the rank of b, or an error if b is not in the alphabet.
func Rank(b byte) (byte, error) {
	r := rankOf[b]
	if r == 0 {
		return 0, fmt.Errorf("%w: %q", ErrInvalidChar, b)
	}
	return r - 1, nil
}

// Byte returns the canonical byte for rank r.
func Byte(r byte) byte {
	return byteOf[r]
}

// Valid reports whether b belongs to the alphabet (including the sentinel).
func Valid(b byte) bool { return rankOf[b] != 0 }

// ValidBase reports whether b is a proper base (a, c, g, t in either case).
func ValidBase(b byte) bool { return rankOf[b] != 0 && b != SentinelByte }

// Encode converts a DNA string to ranks. The input must not contain the
// sentinel; Encode is for pattern/target payloads, the sentinel is appended
// by index construction.
func Encode(s []byte) ([]byte, error) {
	out := make([]byte, len(s))
	for i, b := range s {
		if b == SentinelByte {
			return nil, fmt.Errorf("%w: sentinel %q at position %d", ErrInvalidChar, b, i)
		}
		r := rankOf[b]
		if r == 0 {
			return nil, fmt.Errorf("%w: %q at position %d", ErrInvalidChar, b, i)
		}
		out[i] = r - 1
	}
	return out, nil
}

// AppendEncode appends the ranks of s to dst and returns the extended
// slice, allocating only when dst lacks capacity. Validation matches
// Encode; on error the returned slice is dst unmodified (its length is
// restored even if some bytes were staged).
func AppendEncode(dst []byte, s []byte) ([]byte, error) {
	n := len(dst)
	for i, b := range s {
		if b == SentinelByte {
			return dst[:n], fmt.Errorf("%w: sentinel %q at position %d", ErrInvalidChar, b, i)
		}
		r := rankOf[b]
		if r == 0 {
			return dst[:n], fmt.Errorf("%w: %q at position %d", ErrInvalidChar, b, i)
		}
		dst = append(dst, r-1)
	}
	return dst, nil
}

// Decode converts ranks back to a canonical lower-case DNA string.
func Decode(ranks []byte) []byte {
	out := make([]byte, len(ranks))
	for i, r := range ranks {
		out[i] = byteOf[r]
	}
	return out
}

// Sanitize replaces every byte outside the alphabet (e.g. 'N') with 'a' and
// lower-cases bases, returning a copy. It reports how many bytes were
// replaced so callers can decide whether the input was usable at all.
func Sanitize(s []byte) (clean []byte, replaced int) {
	clean = make([]byte, len(s))
	for i, b := range s {
		if r := rankOf[b]; r != 0 && b != SentinelByte {
			clean[i] = byteOf[r-1]
		} else {
			clean[i] = 'a'
			replaced++
		}
	}
	return clean, replaced
}

// Complement returns the Watson–Crick complement rank of a base rank.
// The sentinel maps to itself.
func Complement(r byte) byte {
	switch r {
	case A:
		return T
	case C:
		return G
	case G:
		return C
	case T:
		return A
	default:
		return r
	}
}

// ReverseComplement reverse-complements a rank-encoded base string in place
// and returns it for convenience.
func ReverseComplement(ranks []byte) []byte {
	for i, j := 0, len(ranks)-1; i <= j; i, j = i+1, j-1 {
		ranks[i], ranks[j] = Complement(ranks[j]), Complement(ranks[i])
	}
	return ranks
}

// Reverse reverses a byte slice in place and returns it.
func Reverse(b []byte) []byte {
	for i, j := 0, len(b)-1; i < j; i, j = i+1, j-1 {
		b[i], b[j] = b[j], b[i]
	}
	return b
}
