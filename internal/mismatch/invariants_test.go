package mismatch

import (
	"math/rand"
	"testing"
)

// TestRCheckInvariants exercises the deep R-array verification against
// the brute-force reference on assorted patterns. In default builds
// CheckInvariants is a no-op; under -tags kminvariants it runs the real
// checks.
func TestRCheckInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	long := make([]byte, 300)
	for i := range long {
		long[i] = byte(1 + rng.Intn(4))
	}
	patterns := [][]byte{
		nil,
		{1},
		{1, 1, 1, 1, 1},
		{1, 2, 1, 2, 1, 2},
		{1, 2, 3, 4, 1, 2, 3, 4, 2},
		long,
	}
	for _, pat := range patterns {
		for _, k := range []int{0, 1, 3, 6} {
			r := BuildR(pat, k)
			if err := r.CheckInvariants(pat); err != nil {
				t.Errorf("m=%d k=%d: %v", len(pat), k, err)
			}
		}
	}
}

// TestCheckMergeAgreement verifies Merge against the brute-force
// Hamming walk via CheckMerge, using untruncated inputs (the exact
// regime for every limit).
func TestCheckMergeAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 50; trial++ {
		m := 1 + rng.Intn(60)
		alpha := make([]byte, m)
		beta := make([]byte, m)
		gamma := make([]byte, m)
		for i := 0; i < m; i++ {
			alpha[i] = byte(1 + rng.Intn(3))
			beta[i] = byte(1 + rng.Intn(3))
			gamma[i] = byte(1 + rng.Intn(3))
		}
		mismatches := func(a, b []byte) []int32 {
			var out []int32
			for t := 1; t <= m; t++ {
				if a[t-1] != b[t-1] {
					out = append(out, int32(t))
				}
			}
			return out
		}
		a1 := mismatches(alpha, beta)
		a2 := mismatches(alpha, gamma)
		for _, limit := range []int{0, 1, 3, m, m + 1} {
			got := Merge(a1, a2, beta, gamma, limit)
			if err := CheckMerge(got, beta, gamma, limit); err != nil {
				t.Fatalf("trial %d limit %d: %v", trial, limit, err)
			}
		}
	}
}
