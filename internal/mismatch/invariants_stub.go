//go:build !kminvariants

package mismatch

// InvariantsEnabled reports whether this build carries the deep
// invariant checks (the kminvariants build tag).
const InvariantsEnabled = false

// CheckInvariants is a no-op in default builds; compile with
// -tags kminvariants for the real verification.
func (r *R) CheckInvariants(pat []byte) error { return nil }

// CheckMerge is a no-op in default builds; compile with
// -tags kminvariants for the real verification.
func CheckMerge(got []int32, beta, gamma []byte, limit int) error { return nil }
