//go:build kminvariants

package mismatch

import "testing"

// TestCheckInvariantsDetectsCorruption tampers with R arrays and merge
// outputs and requires the checks to reject them. Only built under the
// kminvariants tag.
func TestCheckInvariantsDetectsCorruption(t *testing.T) {
	pat := []byte{1, 2, 3, 4, 1, 2, 3, 4, 2, 1}
	r := BuildR(pat, 2)
	if err := r.CheckInvariants(pat); err != nil {
		t.Fatalf("pristine R rejected: %v", err)
	}

	cases := []struct {
		name   string
		tamper func(r *R)
	}{
		{"out-of-range entry", func(r *R) { r.rows[1] = []int32{0} }},
		{"non-mismatch entry", func(r *R) {
			// Position 4 of shift 4 compares pat[3] with pat[7]: both 4.
			r.rows[4] = []int32{4}
		}},
		{"dropped entry", func(r *R) { r.rows[1] = r.rows[1][1:] }},
		{"unsorted row", func(r *R) {
			row := append([]int32(nil), r.rows[1]...)
			row[0], row[1] = row[1], row[0]
			r.rows[1] = row
		}},
	}
	for _, tc := range cases {
		r := BuildR(pat, 2)
		tc.tamper(r)
		if err := r.CheckInvariants(pat); err == nil {
			t.Errorf("%s: corruption not detected", tc.name)
		}
	}

	beta := []byte{1, 2, 3, 1}
	gamma := []byte{1, 3, 3, 2}
	if err := CheckMerge([]int32{1}, beta, gamma, 4); err == nil {
		t.Error("fabricated merge output not detected")
	}
	if err := CheckMerge([]int32{2, 4}, beta, gamma, 1); err == nil {
		t.Error("over-limit merge output not detected")
	}
}
