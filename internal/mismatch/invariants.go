//go:build kminvariants

package mismatch

import (
	"fmt"
	"slices"
)

// InvariantsEnabled reports whether this build carries the deep
// invariant checks (the kminvariants build tag).
const InvariantsEnabled = true

// CheckInvariants verifies the LCE-built R arrays against the O(m^2 k)
// brute-force reference and their structural properties: every row i
// lists strictly increasing 1-based positions t <= m-i that are true
// mismatches pat[t] != pat[t+i] (paper notation), truncated at Cap.
// Tests and fuzz harnesses only; no-op in default builds.
func (r *R) CheckInvariants(pat []byte) error {
	if len(pat) != r.m {
		return fmt.Errorf("mismatch: pattern length %d, R built for m=%d", len(pat), r.m)
	}
	if r.m == 0 {
		if len(r.rows) != 0 {
			return fmt.Errorf("mismatch: empty pattern with %d rows", len(r.rows))
		}
		return nil
	}
	if r.cap < 2 {
		return fmt.Errorf("mismatch: cap %d < 2 (must be k+2 with k >= 0)", r.cap)
	}
	if len(r.rows) != r.m {
		return fmt.Errorf("mismatch: %d rows, want %d", len(r.rows), r.m)
	}
	if len(r.rows[0]) != 0 {
		return fmt.Errorf("mismatch: R_0 must be empty, has %d entries", len(r.rows[0]))
	}
	ref := BuildRNaive(pat, r.cap-2)
	for i := 1; i < r.m; i++ {
		row := r.rows[i]
		if len(row) > r.cap {
			return fmt.Errorf("mismatch: R_%d has %d entries, cap %d", i, len(row), r.cap)
		}
		for j, t := range row {
			if t < 1 || int(t) > r.m-i {
				return fmt.Errorf("mismatch: R_%d[%d] = %d out of range [1,%d]", i, j, t, r.m-i)
			}
			if j > 0 && row[j-1] >= t {
				return fmt.Errorf("mismatch: R_%d not strictly increasing at entry %d", i, j)
			}
			if pat[t-1] == pat[int(t)+i-1] {
				return fmt.Errorf("mismatch: R_%d[%d] = %d is not a mismatch", i, j, t)
			}
		}
		if !slices.Equal(row, ref.rows[i]) {
			return fmt.Errorf("mismatch: R_%d = %v, brute force %v", i, row, ref.rows[i])
		}
	}
	return nil
}

// CheckMerge verifies a Merge result against a brute-force Hamming walk
// over beta and gamma, truncated at limit. The caller must keep limit
// within the exact regime (<= k+1 when the inputs carried k+2 entries,
// per §IV-B). Tests and fuzz harnesses only; no-op in default builds.
func CheckMerge(got []int32, beta, gamma []byte, limit int) error {
	if len(beta) != len(gamma) {
		return fmt.Errorf("mismatch: CheckMerge on unequal lengths %d, %d", len(beta), len(gamma))
	}
	var want []int32
	for t := 1; t <= len(beta) && len(want) < limit; t++ {
		if beta[t-1] != gamma[t-1] {
			want = append(want, int32(t))
		}
	}
	if !slices.Equal(got, want) {
		return fmt.Errorf("mismatch: merge = %v, brute force %v (limit %d)", got, want, limit)
	}
	return nil
}
