// Package mismatch implements the pattern self-mismatch machinery of the
// paper's §IV-B: the arrays R_1..R_{m-1} holding the positions of the first
// k+2 mismatches between the pattern and itself at each relative shift, the
// O(k) merge() procedure that derives the mismatches between two shifted
// copies from two R arrays, and a streaming iterator over the mismatch
// positions between any two pattern suffixes (the form consumed by the
// M-tree derivation in internal/core).
package mismatch

import "bwtmatch/internal/suffixarray"

// R holds the self-mismatch arrays of one pattern. R.At(i) lists, 1-based,
// the positions of the first Cap mismatches between r[1..m-i] and
// r[i+1..m] (paper notation; both substrings have length m-i). Cap is k+2
// as required by the paper so that merged arrays retain k+1 valid entries.
type R struct {
	m    int
	cap  int
	rows [][]int32 // rows[i] = R_i for i in 1..m-1; rows[0] is R_0 = empty
}

// BuildR constructs all R arrays for the rank-encoded pattern r with
// mismatch budget k (each array stores up to k+2 positions). It uses LCE
// (kangaroo) jumps over a suffix-array/LCP/RMQ of r: O(k) per shift after
// O(m log m) preprocessing. A quadratic reference lives in BuildRNaive.
func BuildR(r []byte, k int) *R {
	m := len(r)
	out := &R{m: m, cap: k + 2, rows: make([][]int32, m)}
	if m == 0 {
		return out
	}
	lce := suffixarray.NewLCE(r)
	for i := 1; i < m; i++ {
		out.rows[i] = shiftMismatches(lce, m, i, out.cap)
	}
	return out
}

// shiftMismatches returns up to cap 1-based positions t with
// r[t] != r[t+i], t in [1, m-i], using LCE jumps.
func shiftMismatches(lce *suffixarray.LCE, m, i, cap int) []int32 {
	var row []int32
	t := 1 // 1-based position within the overlap
	for len(row) < cap {
		e := lce.Extend(t-1, t-1+i) // 0-based suffix starts
		t += e
		if t > m-i {
			break
		}
		row = append(row, int32(t))
		t++
	}
	return row
}

// BuildRNaive is the O(m^2 k) reference implementation used in tests.
func BuildRNaive(r []byte, k int) *R {
	m := len(r)
	out := &R{m: m, cap: k + 2, rows: make([][]int32, m)}
	for i := 1; i < m; i++ {
		var row []int32
		for t := 1; t <= m-i && len(row) < out.cap; t++ {
			if r[t-1] != r[t+i-1] {
				row = append(row, int32(t))
			}
		}
		out.rows[i] = row
	}
	return out
}

// M returns the pattern length.
func (r *R) M() int { return r.m }

// Cap returns the per-array entry capacity (k+2).
func (r *R) Cap() int { return r.cap }

// At returns R_i (positions of the first Cap mismatches at shift i). The
// returned slice must not be modified. At(0) is empty by definition
// ("Trivially, R_0 = [⊥,…,⊥]").
func (r *R) At(i int) []int32 {
	if i <= 0 || i >= r.m {
		return nil
	}
	return r.rows[i]
}

// Merge implements the paper's merge(A1, A2, β, γ): given A1 = the sorted
// mismatch positions between some α and β, and A2 = those between α and γ
// (β and γ of equal length), it returns the mismatch positions between β
// and γ, truncated to limit entries. Positions are 1-based. The character
// comparison of the equal-position case (step 4) reads β and γ directly.
//
// The result is exact as long as neither input was truncated before the
// position where the limit-th output mismatch occurs; the R arrays carry
// k+2 entries precisely so that k+1 output entries are always exact
// (paper §IV-B).
func Merge(a1, a2 []int32, beta, gamma []byte, limit int) []int32 {
	var out []int32
	p, q := 0, 0
	for len(out) < limit {
		switch {
		case p < len(a1) && q < len(a2):
			switch {
			case a1[p] < a2[q]:
				out = append(out, a1[p])
				p++
			case a2[q] < a1[p]:
				out = append(out, a2[q])
				q++
			default: // equal positions: both differ from α; compare directly
				pos := a1[p]
				if beta[pos-1] != gamma[pos-1] {
					out = append(out, pos)
				}
				p++
				q++
			}
		case p < len(a1):
			out = append(out, a1[p])
			p++
		case q < len(a2):
			out = append(out, a2[q])
			q++
		default:
			return out
		}
	}
	return out
}

// Iter streams the mismatch positions between two suffixes of the pattern,
// r[i..m] and r[j..m] (1-based i, j), in increasing order. It is the
// on-demand form of the paper's R_ij: position t (1-based, relative to the
// suffix starts) is yielded iff r[i+t-1] != r[j+t-1] and both exist. The
// iteration stops at the end of the shorter suffix.
//
// Backed by LCE jumps, each Next call is O(1); a full drain of k+1 entries
// is O(k) — the same cost as the paper's merge(R_i, R_j, …) but immune to
// the truncation limits of precomputed arrays. Sources over patterns of
// at most LCEMinLen characters skip the LCE structure entirely and scan
// for the next mismatch directly (see LCEMinLen).
type Iter struct {
	lce  *suffixarray.LCE
	r    []byte
	i, j int // 0-based suffix starts
	t    int // next candidate offset, 0-based
	end  int // overlap length
}

// NewIterSource prepares the shared LCE structure for a pattern; the source
// can then mint any number of iterators cheaply.
type IterSource struct {
	lce *suffixarray.LCE
	r   []byte
}

// LCEMinLen is the smallest pattern length for which an IterSource
// builds the LCE (suffix array + LCP + RMQ) structure. Below it, Next
// finds the following mismatch by comparing characters directly: each
// yielded position then costs O(gap) single-byte compares instead of
// O(1), but building the LCE costs O(m log m) time *and allocation* per
// pattern — far more than the total compare work at read-sized m. The
// direct mode is what keeps a warm search allocation-free (DESIGN.md
// §8); the asymptotic O(k)-per-path guarantee of the paper is retained
// for patterns long enough for it to matter.
const LCEMinLen = 2048

// NewIterSource builds an iterator source over the rank-encoded
// pattern (the LCE structure only when the pattern is at least
// LCEMinLen long).
func NewIterSource(r []byte) *IterSource {
	s := &IterSource{}
	s.Reset(r)
	return s
}

// Reset re-targets the source at a new pattern, dropping any previous
// LCE structure. For patterns shorter than LCEMinLen it performs no
// allocation, which lets a pooled search scratch reuse one IterSource
// across queries.
func (s *IterSource) Reset(r []byte) {
	s.r = r
	s.lce = nil
	if len(r) >= LCEMinLen {
		s.lce = suffixarray.NewLCE(r)
	}
}

// Iter returns an iterator over mismatches between r[i..] and r[j..]
// (1-based pattern positions).
func (s *IterSource) Iter(i, j int) Iter {
	m := len(s.r)
	end := m - i + 1
	if e2 := m - j + 1; e2 < end {
		end = e2
	}
	if end < 0 {
		end = 0
	}
	return Iter{lce: s.lce, r: s.r, i: i - 1, j: j - 1, end: end}
}

// Next returns the next 1-based mismatch offset and true, or 0 and false
// when the overlap is exhausted.
func (it *Iter) Next() (int32, bool) {
	if it.i == it.j {
		return 0, false
	}
	if it.lce == nil {
		// Direct mode (short patterns): scan for the next disagreeing
		// offset. The two indexed loops let the compiler hoist the bounds
		// checks out of the comparison loop.
		r := it.r
		for t := it.t; t < it.end; t++ {
			if r[it.i+t] != r[it.j+t] {
				it.t = t + 1
				return int32(t + 1), true
			}
		}
		it.t = it.end
		return 0, false
	}
	for it.t < it.end {
		e := it.lce.Extend(it.i+it.t, it.j+it.t)
		it.t += e
		if it.t >= it.end {
			return 0, false
		}
		pos := int32(it.t + 1)
		it.t++
		return pos, true
	}
	return 0, false
}

// SkipTo advances the iterator so that subsequent Next results are > t
// (1-based offset). Used when a derivation jumps over an already-resolved
// region.
func (it *Iter) SkipTo(t int32) {
	if int(t) > it.t {
		it.t = int(t)
	}
}
