package mismatch

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bwtmatch/internal/alphabet"
)

func randomRanks(rng *rand.Rand, n int) []byte {
	t := make([]byte, n)
	for i := range t {
		t[i] = byte(1 + rng.Intn(4))
	}
	return t
}

func equalRows(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBuildRPaperExample(t *testing.T) {
	// Paper Fig. 4: r = tcacg, mismatches between shifted copies.
	r, err := alphabet.Encode([]byte("tcacg"))
	if err != nil {
		t.Fatal(err)
	}
	rr := BuildR(r, 2)
	// R_1: tcac vs cacg -> all four positions mismatch, capped at k+2 = 4.
	if got := rr.At(1); !equalRows(got, []int32{1, 2, 3, 4}) {
		t.Errorf("R_1 = %v, want [1 2 3 4]", got)
	}
	// R_2: tca vs acg -> positions 1 (t!=a) and 3 (a!=g).
	if got := rr.At(2); !equalRows(got, []int32{1, 3}) {
		t.Errorf("R_2 = %v, want [1 3]", got)
	}
	// R_4: t vs g -> position 1.
	if got := rr.At(4); !equalRows(got, []int32{1}) {
		t.Errorf("R_4 = %v, want [1]", got)
	}
	if rr.At(0) != nil || rr.At(5) != nil {
		t.Error("out-of-range shifts should be nil")
	}
}

func TestBuildRAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 100; trial++ {
		r := randomRanks(rng, 1+rng.Intn(120))
		k := rng.Intn(6)
		fast, slow := BuildR(r, k), BuildRNaive(r, k)
		for i := 1; i < len(r); i++ {
			if !equalRows(fast.At(i), slow.At(i)) {
				t.Fatalf("shift %d: fast %v, naive %v (r=%v k=%d)",
					i, fast.At(i), slow.At(i), r, k)
			}
		}
	}
}

func TestBuildRQuick(t *testing.T) {
	f := func(seed int64, n8, k8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomRanks(rng, int(n8)%80)
		k := int(k8) % 5
		fast, slow := BuildR(r, k), BuildRNaive(r, k)
		for i := 1; i < len(r); i++ {
			if !equalRows(fast.At(i), slow.At(i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// naiveMismatches returns 1-based positions where beta and gamma differ.
func naiveMismatches(beta, gamma []byte, limit int) []int32 {
	var out []int32
	n := len(beta)
	if len(gamma) < n {
		n = len(gamma)
	}
	for t := 0; t < n && len(out) < limit; t++ {
		if beta[t] != gamma[t] {
			out = append(out, int32(t+1))
		}
	}
	return out
}

func TestMergePaperExample(t *testing.T) {
	// Paper Fig. 5: beta = r[2..5] = cacg, gamma = r[3..5]+pad... the paper
	// merges R_1 and R_2 of r = tcacg for the overlap of shifts 1 and 2.
	// alpha = tcac(g), beta = cacg, gamma = acg: merged mismatches between
	// beta[1..3] = cac and gamma = acg are positions 1, 2, 3; with beta of
	// length 4 the trailing entry 4 also survives via the tail rule.
	r, _ := alphabet.Encode([]byte("tcacg"))
	a1 := []int32{1, 2, 3, 4} // mism(tcac, cacg)
	a2 := []int32{1, 3}       // mism(tca, acg)
	beta, _ := alphabet.Encode([]byte("cacg"))
	gamma, _ := alphabet.Encode([]byte("acg"))
	got := Merge(a1, a2, beta, gamma, 10)
	want := naiveMismatches(beta, gamma, 10)
	// Positions beyond the shorter string come from the tail rule; the
	// naive oracle stops at the shorter length, so compare the prefix and
	// accept the documented tail behaviour for the rest.
	for i, w := range want {
		if i >= len(got) || got[i] != w {
			t.Fatalf("Merge = %v, want prefix %v", got, want)
		}
	}
	_ = r
}

func TestMergeAgainstOracleEqualLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(60)
		alpha := randomRanks(rng, n)
		beta := randomRanks(rng, n)
		gamma := randomRanks(rng, n)
		limit := n + 2
		a1 := naiveMismatches(alpha, beta, limit)
		a2 := naiveMismatches(alpha, gamma, limit)
		got := Merge(a1, a2, beta, gamma, limit)
		want := naiveMismatches(beta, gamma, limit)
		if !equalRows(got, want) {
			t.Fatalf("Merge = %v, want %v (alpha=%v beta=%v gamma=%v)",
				got, want, alpha, beta, gamma)
		}
	}
}

func TestMergeTruncation(t *testing.T) {
	// With untruncated inputs, limit bounds the output exactly.
	alpha := []byte{1, 1, 1, 1, 1, 1}
	beta := []byte{2, 2, 2, 2, 2, 2}
	gamma := []byte{1, 1, 1, 1, 1, 1}
	a1 := naiveMismatches(alpha, beta, 10)
	a2 := naiveMismatches(alpha, gamma, 10)
	got := Merge(a1, a2, beta, gamma, 3)
	if !equalRows(got, []int32{1, 2, 3}) {
		t.Fatalf("Merge limited = %v", got)
	}
}

func TestMergeEmptyInputs(t *testing.T) {
	beta := []byte{1, 2}
	gamma := []byte{1, 2}
	if got := Merge(nil, nil, beta, gamma, 5); len(got) != 0 {
		t.Errorf("Merge(nil,nil) = %v", got)
	}
	// One side empty: all of the other side passes through (tail rule).
	if got := Merge([]int32{2}, nil, []byte{1, 3}, []byte{1, 2}, 5); !equalRows(got, []int32{2}) {
		t.Errorf("Merge tail = %v", got)
	}
}

func TestMergeEqualsRijIdentity(t *testing.T) {
	// R_{i,j} (mismatches between r[i..] and r[j..]) must equal both the
	// merge of R arrays and the rebased suffix of R_{j-i}.
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 100; trial++ {
		m := 2 + rng.Intn(60)
		r := randomRanks(rng, m)
		k := 1 + rng.Intn(4)
		rr := BuildRNaive(r, m) // full arrays, no truncation
		i := 1 + rng.Intn(m-1)
		j := 1 + rng.Intn(m-1)
		if i == j {
			continue
		}
		q := i
		if j > q {
			q = j
		}
		// Overlap per the paper: r[i..m-q+i] vs r[j..m-q+j].
		beta := r[i-1 : m-q+i]
		gamma := r[j-1 : m-q+j]
		want := naiveMismatches(beta, gamma, k+1)

		// Via merge of R_{i-1} and R_{j-1} (alpha = r[1..]).
		// R_{i-1} compares r[1..m-i+1] with r[i..m]; restricted to the
		// overlap both cover positions 1..m-q+1.
		a1 := rr.At(i - 1)
		a2 := rr.At(j - 1)
		got := Merge(a1, a2, beta, gamma, k+1)
		// Drop merged entries beyond the overlap length.
		filtered := got[:0:0]
		for _, p := range got {
			if int(p) <= len(beta) {
				filtered = append(filtered, p)
			}
		}
		if !equalRows(filtered, want) {
			t.Fatalf("merge-derived R_ij = %v, want %v (r=%v i=%d j=%d)",
				filtered, want, r, i, j)
		}
	}
}

func TestIterAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	for trial := 0; trial < 100; trial++ {
		m := 1 + rng.Intn(100)
		r := randomRanks(rng, m)
		src := NewIterSource(r)
		for q := 0; q < 20; q++ {
			i := 1 + rng.Intn(m)
			j := 1 + rng.Intn(m)
			it := src.Iter(i, j)
			var got []int32
			for {
				p, ok := it.Next()
				if !ok {
					break
				}
				got = append(got, p)
			}
			want := naiveMismatches(r[i-1:], r[j-1:], m+1)
			if !equalRows(got, want) {
				t.Fatalf("Iter(%d,%d) = %v, want %v (r=%v)", i, j, got, want, r)
			}
		}
	}
}

func TestIterSkipTo(t *testing.T) {
	r, _ := alphabet.Encode([]byte("acgtacgaacct"))
	src := NewIterSource(r)
	it := src.Iter(1, 5)
	it.SkipTo(4)
	var got []int32
	for {
		p, ok := it.Next()
		if !ok {
			break
		}
		got = append(got, p)
	}
	all := naiveMismatches(r[0:], r[4:], 100)
	var want []int32
	for _, p := range all {
		if p > 4 {
			want = append(want, p)
		}
	}
	if !equalRows(got, want) {
		t.Fatalf("SkipTo: got %v, want %v", got, want)
	}
}

func TestIterSameSuffix(t *testing.T) {
	r := []byte{1, 2, 3}
	src := NewIterSource(r)
	it := src.Iter(2, 2)
	if _, ok := it.Next(); ok {
		t.Error("Iter(i,i) yielded a mismatch")
	}
}

func TestBuildREmptyAndTiny(t *testing.T) {
	if rr := BuildR(nil, 3); rr.M() != 0 {
		t.Error("empty pattern M != 0")
	}
	rr := BuildR([]byte{1}, 3)
	if rr.At(1) != nil {
		t.Error("single-char pattern should have no shifts")
	}
	if rr.Cap() != 5 {
		t.Errorf("Cap = %d, want k+2 = 5", rr.Cap())
	}
}

func BenchmarkBuildR(b *testing.B) {
	rng := rand.New(rand.NewSource(35))
	r := randomRanks(rng, 300)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildR(r, 5)
	}
}
