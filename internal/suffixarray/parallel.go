package suffixarray

import "sync"

// Parallel-construction thresholds. They are variables, not constants,
// so the property tests can lower them and force every parallel code
// path on inputs small enough to cross-check exhaustively under -race.
var (
	// parallelMinN is the text length below which BuildParallel
	// dispatches to the serial SA-IS Build: goroutine and barrier
	// overhead beats the win long before this point.
	parallelMinN = 64 << 10

	// parallelMinWork is the per-stage element count below which an
	// individual pDC3 stage (radix pass, naming scan, merge) runs
	// serially even inside a parallel build. Deep recursion levels
	// shrink by 2/3 per level and quickly fall under it.
	parallelMinWork = 8 << 10
)

// BuildParallel returns exactly the suffix array Build returns, built
// with up to workers goroutines. The suffix array of a text is unique
// (strict total order on suffixes), so any correct construction is
// bit-identical to the serial one; the property tests additionally
// verify this equality under -race on adversarial inputs.
//
// The algorithm is pDC3: the Kärkkäinen–Sanders skew recursion from
// dc3.go with its three data-parallel phases actually run in parallel —
// stable radix passes (per-worker histograms, a serial per-bucket
// layout, disjoint scatters), triple naming (parallel difference flags
// plus a two-pass prefix sum), and the final mod-0/mod-1,2 merge (merge
// path: binary-searched diagonal splits, then independent serial
// merges of disjoint output ranges). workers <= 1 or a small text
// degrade to the serial SA-IS Build.
func BuildParallel(text []byte, workers int) []int32 {
	n := len(text)
	if workers <= 1 || n < parallelMinN {
		return Build(text)
	}
	sa := make([]int32, n)
	s := make([]int32, n+3) // padded with three zeros as DC3 requires
	parallelFor(n, workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			s[i] = int32(text[i]) + 1
		}
	})
	copy(sa, pdc3(s, n, 257, workers))
	return sa
}

// pdc3 is dc3 with parallel radix, naming and merge phases. It computes
// the suffix array of s[0:n] (values in [1, sigma), padding zeros
// beyond n) and produces output identical to dc3 on every input.
func pdc3(s []int32, n, sigma, workers int) []int32 {
	if workers < 2 || n < parallelMinWork {
		return dc3(s, n, sigma)
	}
	n0 := (n + 2) / 3
	n1 := (n + 1) / 3
	n2 := n / 3
	n02 := n0 + n2

	// Positions i mod 3 != 0 in increasing order. The serial version
	// fills these with a sequential scan; the j-th such position has
	// the closed form 3*(j/2) + 1 + (j&1), so the fill parallelizes
	// with no carried state.
	s12 := make([]int32, n02+3)
	parallelFor(n02, workers, func(_, lo, hi int) {
		for j := lo; j < hi; j++ {
			s12[j] = int32(3*(j/2) + 1 + (j & 1))
		}
	})

	// Radix sort the mod-1/2 suffixes by their first three characters.
	sa12 := make([]int32, n02+3)
	pradixPass(s12, sa12, s[2:], n02, sigma, workers)
	pradixPass(sa12, s12, s[1:], n02, sigma, workers)
	pradixPass(s12, sa12, s, n02, sigma, workers)

	// Name the triples: diff[i] says whether sa12[i]'s triple differs
	// from its predecessor's; the inclusive prefix sum of diff is the
	// name. Both halves parallelize (two-pass prefix sum); the writes
	// into s12 scatter to distinct slots because sa12 holds distinct
	// positions.
	nParts := partCount(n02, workers)
	diff := make([]int32, n02)
	partSum := make([]int32, nParts)
	parallelParts(n02, nParts, func(w, lo, hi int) {
		var sum int32
		for i := lo; i < hi; i++ {
			if i == 0 {
				diff[i] = 1
			} else {
				p, q := sa12[i], sa12[i-1]
				if s[p] != s[q] || s[p+1] != s[q+1] || s[p+2] != s[q+2] {
					diff[i] = 1
				}
			}
			sum += diff[i]
		}
		partSum[w] = sum
	})
	name := 0
	for w := 0; w < nParts; w++ {
		name += int(partSum[w])
	}
	offsets := make([]int32, nParts)
	var running int32
	for w := 0; w < nParts; w++ {
		offsets[w], running = running, running+partSum[w]
	}
	parallelParts(n02, nParts, func(w, lo, hi int) {
		nm := offsets[w]
		for i := lo; i < hi; i++ {
			nm += diff[i]
			p := sa12[i]
			if p%3 == 1 {
				s12[p/3] = nm // left half
			} else {
				s12[p/3+int32(n0)] = nm // right half
			}
		}
	})

	if name < n02 {
		// Recurse on the named sequence.
		sub := pdc3(s12, n02, name+1, workers)
		copy(sa12, sub)
		// Restore the names as ranks. sa12 is a permutation of
		// [0, n02), so the writes are disjoint.
		parallelFor(n02, workers, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				s12[sa12[i]] = int32(i) + 1
			}
		})
	} else {
		// Names unique: derive sa12 directly (s12[i]-1 is a
		// permutation of [0, n02), so again disjoint writes).
		parallelFor(n02, workers, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				sa12[s12[i]-1] = int32(i)
			}
		})
	}

	// Sort the mod-0 suffixes by (first char, rank of following mod-1).
	// The extraction is a stable order-dependent compaction; it stays
	// serial (a single O(n02) scan, well under the radix-pass cost).
	s0 := make([]int32, n0)
	j := 0
	for i := 0; i < n02; i++ {
		if sa12[i] < int32(n0) {
			s0[j] = 3 * sa12[i]
			j++
		}
	}
	sa0 := make([]int32, n0)
	pradixPass(s0, sa0, s, n0, sigma, workers)

	// Merge sa0 and sa12 with the same comparisons as dc3, split into
	// disjoint output ranges by merge-path binary search.
	sa := make([]int32, n)
	getI := func(t int) int32 {
		if sa12[t] < int32(n0) {
			return sa12[t]*3 + 1
		}
		return (sa12[t]-int32(n0))*3 + 2
	}
	rank12 := func(i int32) int32 {
		if i%3 == 1 {
			return s12[i/3]
		}
		return s12[i/3+int32(n0)]
	}
	leq2 := func(a1, a2, b1, b2 int32) bool {
		return a1 < b1 || (a1 == b1 && a2 <= b2)
	}
	leq3 := func(a1, a2, a3, b1, b2, b3 int32) bool {
		return a1 < b1 || (a1 == b1 && leq2(a2, a3, b2, b3))
	}
	// takeI reports whether mod-1/2 suffix i precedes mod-0 suffix jj;
	// equality takes i first, exactly as the serial merge does.
	takeI := func(i, jj int32) bool {
		if i%3 == 1 {
			return leq2(s[i], rank12(i+1), s[jj], rank12(jj+1))
		}
		return leq3(s[i], s[i+1], rank12(i+2), s[jj], s[jj+1], rank12(jj+2))
	}

	tStart := n0 - n1    // first live index into sa12 (skips padding)
	lenA := n02 - tStart // mod-1/2 elements to merge
	lenB := n0           // mod-0 elements to merge
	mergeRange := func(t, p, k, kEnd int) {
		for k < kEnd {
			var take bool
			var i, jj int32
			if t < n02 {
				i = getI(t)
			}
			if p < n0 {
				jj = sa0[p]
			}
			switch {
			case t >= n02:
				take = false
			case p >= n0:
				take = true
			default:
				take = takeI(i, jj)
			}
			if take {
				sa[k] = i
				t++
			} else {
				sa[k] = jj
				p++
			}
			k++
		}
	}
	if n < parallelMinWork {
		mergeRange(tStart, 0, 0, n)
		return sa
	}
	// split(k) returns how many A (mod-1/2) elements appear among the
	// first k merged outputs: the smallest a in the diagonal's feasible
	// range such that B[k-a-1] precedes A[a].
	split := func(k int) int {
		lo, hi := k-lenB, lenA
		if lo < 0 {
			lo = 0
		}
		if hi > k {
			hi = k
		}
		for lo < hi {
			mid := (lo + hi) / 2
			// mid < hi <= k, so b-1 = k-mid-1 >= 0; mid < lenA.
			if takeI(getI(tStart+mid), sa0[k-mid-1]) {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}
	parallelFor(n, workers, func(_, lo, hi int) {
		a := split(lo)
		mergeRange(tStart+a, lo-a, lo, hi)
	})
	return sa
}

// pradixPass is radixPass parallelized: per-worker histograms over
// contiguous input ranges, one serial pass laying out each (bucket,
// worker) run, then disjoint scatters. Bucket-internal order is worker
// order = input order, so the sort stays stable and the output is
// byte-identical to the serial pass. Falls back to radixPass when the
// histogram memory ((sigma+1) counters per worker) would rival the
// input itself — deep pDC3 recursion levels have sigma ~ 2n/3.
func pradixPass(src, dst, key []int32, n, sigma, workers int) {
	if workers < 2 || n < parallelMinWork || (sigma+1)*workers > n {
		radixPass(src, dst, key, n, sigma)
		return
	}
	nParts := partCount(n, workers)
	counts := make([]int32, nParts*(sigma+1))
	parallelParts(n, nParts, func(w, lo, hi int) {
		row := counts[w*(sigma+1) : (w+1)*(sigma+1)]
		for i := lo; i < hi; i++ {
			row[key[src[i]]]++
		}
	})
	var sum int32
	for c := 0; c <= sigma; c++ {
		for w := 0; w < nParts; w++ {
			i := w*(sigma+1) + c
			counts[i], sum = sum, sum+counts[i]
		}
	}
	parallelParts(n, nParts, func(w, lo, hi int) {
		row := counts[w*(sigma+1) : (w+1)*(sigma+1)]
		for i := lo; i < hi; i++ {
			c := key[src[i]]
			dst[row[c]] = src[i]
			row[c]++
		}
	})
}

// partCount caps the worker count at one element per part.
func partCount(n, workers int) int {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// parallelParts runs f(w, lo, hi) over exactly nParts contiguous,
// disjoint ranges covering [0, n), one goroutine per part. Part w is
// deterministic for a given (n, nParts), which the histogram layout in
// pradixPass relies on.
func parallelParts(n, nParts int, f func(w, lo, hi int)) {
	chunk := (n + nParts - 1) / nParts
	var wg sync.WaitGroup
	for w := 0; w < nParts; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			// Empty trailing part: still deterministic, nothing to do.
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			f(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}

// parallelFor is parallelParts with the part count derived from the
// worker budget.
func parallelFor(n, workers int, f func(w, lo, hi int)) {
	parallelParts(n, partCount(n, workers), f)
}
