//go:build kminvariants

package suffixarray

import (
	"math/rand"
	"testing"
)

// TestCheckSADetectsCorruption feeds CheckSA broken arrays and requires
// it to reject each. Only built under the kminvariants tag.
func TestCheckSADetectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	text := make([]byte, 500)
	for i := range text {
		text[i] = "acgt"[rng.Intn(4)]
	}
	pristine := Build(text)
	if err := CheckSA(text, pristine); err != nil {
		t.Fatalf("pristine SA rejected: %v", err)
	}

	cases := []struct {
		name   string
		tamper func(sa []int32)
	}{
		{"swapped entries", func(sa []int32) { sa[10], sa[11] = sa[11], sa[10] }},
		{"duplicate entry", func(sa []int32) { sa[0] = sa[1] }},
		{"out of range", func(sa []int32) { sa[5] = int32(len(sa)) }},
		{"rotated tail", func(sa []int32) {
			tail := sa[len(sa)-3:]
			tail[0], tail[1], tail[2] = tail[2], tail[0], tail[1]
		}},
	}
	for _, tc := range cases {
		sa := append([]int32(nil), pristine...)
		tc.tamper(sa)
		if err := CheckSA(text, sa); err == nil {
			t.Errorf("%s: corruption not detected", tc.name)
		}
	}
	if err := CheckSA(text, pristine[:len(pristine)-1]); err == nil {
		t.Error("truncated SA not detected")
	}
}
