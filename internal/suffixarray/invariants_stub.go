//go:build !kminvariants

package suffixarray

// InvariantsEnabled reports whether this build carries the deep
// invariant checks (the kminvariants build tag).
const InvariantsEnabled = false

// CheckSA is a no-op in default builds; compile with -tags kminvariants
// for the real verification.
func CheckSA(text []byte, sa []int32) error { return nil }
