package suffixarray

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDC3Fixed(t *testing.T) {
	cases := []string{
		"", "a", "aa", "ab", "ba", "banana", "mississippi", "acagaca",
		"aaaaaaaaaa", "abababababab", "cagtcagtcagt", "yabbadabbado",
	}
	for _, s := range cases {
		got := BuildDC3([]byte(s))
		want := naiveSA([]byte(s))
		if !equalInt32(got, want) {
			t.Errorf("BuildDC3(%q) = %v, want %v", s, got, want)
		}
	}
}

func TestDC3AgainstSAIS(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(400)
		sigma := 1 + rng.Intn(5)
		text := randomText(rng, n, sigma)
		a := BuildDC3(text)
		b := Build(text)
		if !equalInt32(a, b) {
			t.Fatalf("DC3 and SA-IS disagree on %q:\n%v\n%v", text, a, b)
		}
	}
}

func TestDC3Quick(t *testing.T) {
	f := func(seed int64, n16 uint16, sigma8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		text := randomText(rng, int(n16)%600, 1+int(sigma8)%4)
		return equalInt32(BuildDC3(text), Build(text))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestDC3AllLengthsMod3(t *testing.T) {
	// DC3's bookkeeping depends delicately on n mod 3; sweep all residues
	// over a range of lengths.
	rng := rand.New(rand.NewSource(212))
	for n := 0; n < 60; n++ {
		text := randomText(rng, n, 2)
		if !equalInt32(BuildDC3(text), naiveSA(text)) {
			t.Fatalf("n=%d: DC3 wrong for %q", n, text)
		}
	}
}

func BenchmarkBuildDC3_1MB(b *testing.B) {
	rng := rand.New(rand.NewSource(213))
	text := randomText(rng, 1<<20, 4)
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildDC3(text)
	}
}
