//go:build kminvariants

package suffixarray

import "fmt"

// InvariantsEnabled reports whether this build carries the deep
// invariant checks (the kminvariants build tag).
const InvariantsEnabled = true

// CheckSA verifies that sa is the suffix array of text:
//   - sa is a permutation of 0..n-1
//   - adjacent suffixes strictly increase (direct byte comparison, so
//     the cost is the sum of adjacent common prefixes — O(n) expected
//     on non-degenerate inputs)
//   - the Kasai LCP array matches the common prefixes measured during
//     the sortedness scan
//   - the LF mapping round-trips: suffixes sharing a preceding
//     character keep their relative order when that character is
//     prepended, i.e. rank[sa[i]-1] == C[c] + seen[c] row by row
//
// Tests and fuzz harnesses only; no-op in default builds.
func CheckSA(text []byte, sa []int32) error {
	n := len(text)
	if len(sa) != n {
		return fmt.Errorf("suffixarray: len(sa) = %d, want %d", len(sa), n)
	}
	seen := make([]bool, n)
	for i, p := range sa {
		if p < 0 || int(p) >= n {
			return fmt.Errorf("suffixarray: sa[%d] = %d out of range", i, p)
		}
		if seen[p] {
			return fmt.Errorf("suffixarray: position %d appears twice", p)
		}
		seen[p] = true
	}

	// Sortedness and LCP in one scan: measure the common prefix of each
	// adjacent pair, then require a strict < at the first difference (or
	// the earlier suffix to be the shorter, proper prefix).
	lcp := LCP(text, sa)
	if len(lcp) != n {
		return fmt.Errorf("suffixarray: len(lcp) = %d, want %d", len(lcp), n)
	}
	for i := 1; i < n; i++ {
		a, b := int(sa[i-1]), int(sa[i])
		h := 0
		for a+h < n && b+h < n && text[a+h] == text[b+h] {
			h++
		}
		if int(lcp[i]) != h {
			return fmt.Errorf("suffixarray: lcp[%d] = %d, want %d", i, lcp[i], h)
		}
		switch {
		case b+h == n: // suffix b is a proper prefix of (or equal to) a
			return fmt.Errorf("suffixarray: sa[%d]=%d, sa[%d]=%d out of order (prefix)", i-1, a, i, b)
		case a+h == n: // a ran out first: a < b, fine
		case text[a+h] >= text[b+h]:
			return fmt.Errorf("suffixarray: sa[%d]=%d, sa[%d]=%d out of order at offset %d", i-1, a, i, b, h)
		}
	}

	// LF round-trip. rank is the inverse permutation; prepending the
	// character c = text[p-1] to suffix p must land suffix p-1 at row
	// C[c] + (number of earlier rows whose suffix is also preceded by
	// c). This is the counting argument behind the BWT's LF mapping and
	// fails loudly for any mis-sorted bucket.
	rank := make([]int32, n)
	for i, p := range sa {
		rank[p] = int32(i)
	}
	var cnt [256]int32
	for _, b := range text {
		cnt[b]++
	}
	var c [257]int32
	for x := 0; x < 256; x++ {
		c[x+1] = c[x] + cnt[x]
	}
	var running [256]int32
	if n > 0 {
		// The suffix starting at the last position is never reached as a
		// predecessor (there is no row for the empty suffix), yet it is
		// the shortest — hence first — suffix of its character bucket.
		// With a sentinel row (as in fmindex) this seed is unnecessary.
		running[text[n-1]]++
	}
	for i := 0; i < n; i++ {
		p := sa[i]
		if p == 0 {
			continue // no predecessor character
		}
		ch := text[p-1]
		if got, want := rank[p-1], c[ch]+running[ch]; got != want {
			return fmt.Errorf("suffixarray: LF round-trip: rank[%d] = %d, want %d (row %d, char %d)",
				p-1, got, want, i, ch)
		}
		running[ch]++
	}
	return nil
}
