package suffixarray

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// naiveSA builds a suffix array by direct sorting, for differential testing.
func naiveSA(text []byte) []int32 {
	n := len(text)
	sa := make([]int32, n)
	for i := range sa {
		sa[i] = int32(i)
	}
	sort.Slice(sa, func(a, b int) bool {
		return bytes.Compare(text[sa[a]:], text[sa[b]:]) < 0
	})
	return sa
}

func equalInt32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func randomText(rng *rand.Rand, n, sigma int) []byte {
	t := make([]byte, n)
	for i := range t {
		t[i] = byte('a' + rng.Intn(sigma))
	}
	return t
}

func TestBuildFixed(t *testing.T) {
	cases := []string{
		"",
		"a",
		"aa",
		"ab",
		"ba",
		"banana",
		"mississippi",
		"acagaca",
		"aaaaaaaaaa",
		"abababababab",
		"cagtcagtcagt",
	}
	for _, s := range cases {
		got := Build([]byte(s))
		want := naiveSA([]byte(s))
		if !equalInt32(got, want) {
			t.Errorf("Build(%q) = %v, want %v", s, got, want)
		}
	}
}

func TestBuildPaperExample(t *testing.T) {
	// Paper §III: s = acagaca$ (we model the sentinel explicitly here since
	// Build itself appends only a virtual one).
	s := []byte("acagaca")
	sa := Build(s)
	// Sortedness invariant.
	for i := 1; i < len(sa); i++ {
		if bytes.Compare(s[sa[i-1]:], s[sa[i]:]) >= 0 {
			t.Fatalf("suffixes out of order at %d", i)
		}
	}
}

func TestBuildRandomDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(200)
		sigma := 1 + rng.Intn(4)
		text := randomText(rng, n, sigma)
		got := Build(text)
		want := naiveSA(text)
		if !equalInt32(got, want) {
			t.Fatalf("mismatch for %q: got %v want %v", text, got, want)
		}
	}
}

func TestBuildLargeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	text := randomText(rng, 50000, 4)
	sa := Build(text)
	perm := make([]bool, len(text))
	for i := 1; i < len(sa); i++ {
		if bytes.Compare(text[sa[i-1]:], text[sa[i]:]) >= 0 {
			t.Fatalf("order violated at %d", i)
		}
	}
	for _, p := range sa {
		if perm[p] {
			t.Fatal("not a permutation")
		}
		perm[p] = true
	}
}

func TestBuildQuick(t *testing.T) {
	f := func(seed int64, n8 uint8, sigma8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		text := randomText(rng, int(n8), 1+int(sigma8)%4)
		return equalInt32(Build(text), naiveSA(text))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func naiveLCP(a, b []byte) int32 {
	var h int32
	for int(h) < len(a) && int(h) < len(b) && a[h] == b[h] {
		h++
	}
	return h
}

func TestLCPAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		text := randomText(rng, rng.Intn(300), 1+rng.Intn(3))
		sa := Build(text)
		lcp := LCP(text, sa)
		for i := 1; i < len(sa); i++ {
			want := naiveLCP(text[sa[i-1]:], text[sa[i]:])
			if lcp[i] != want {
				t.Fatalf("lcp[%d] = %d, want %d (text %q)", i, lcp[i], want, text)
			}
		}
		if len(lcp) > 0 && lcp[0] != 0 {
			t.Fatal("lcp[0] != 0")
		}
	}
}

func TestRMQ(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		a := make([]int32, n)
		for i := range a {
			a[i] = int32(rng.Intn(1000))
		}
		r := NewRMQ(a)
		for q := 0; q < 100; q++ {
			lo := rng.Intn(n)
			hi := lo + 1 + rng.Intn(n-lo)
			want := a[lo]
			for _, v := range a[lo+1 : hi] {
				if v < want {
					want = v
				}
			}
			if got := r.Min(lo, hi); got != want {
				t.Fatalf("Min(%d,%d) = %d, want %d", lo, hi, got, want)
			}
		}
	}
}

func TestLCEAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		text := randomText(rng, 1+rng.Intn(200), 1+rng.Intn(3))
		l := NewLCE(text)
		n := len(text)
		for q := 0; q < 200; q++ {
			i, j := rng.Intn(n), rng.Intn(n)
			want := int(naiveLCP(text[i:], text[j:]))
			if got := l.Extend(i, j); got != want {
				t.Fatalf("Extend(%d,%d) = %d, want %d (text %q)", i, j, got, want, text)
			}
		}
	}
}

func TestLCEEdges(t *testing.T) {
	l := NewLCE([]byte("abcabc"))
	if got := l.Extend(0, 0); got != 6 {
		t.Errorf("Extend(0,0) = %d, want 6", got)
	}
	if got := l.Extend(0, 3); got != 3 {
		t.Errorf("Extend(0,3) = %d, want 3", got)
	}
	if got := l.Extend(0, 6); got != 0 {
		t.Errorf("Extend(0,6) = %d, want 0", got)
	}
}

func BenchmarkBuild1MB(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	text := randomText(rng, 1<<20, 4)
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(text)
	}
}
