package suffixarray

import (
	"bytes"
	"math/rand"
	"testing"
)

// lowerThresholds forces every parallel code path (radix, naming,
// merge, recursion) on inputs small enough to test exhaustively, and
// restores the production thresholds afterwards. Tests that call it
// must not use t.Parallel.
func lowerThresholds(t *testing.T) {
	t.Helper()
	oldMinN, oldMinWork := parallelMinN, parallelMinWork
	parallelMinN, parallelMinWork = 2, 2
	t.Cleanup(func() { parallelMinN, parallelMinWork = oldMinN, oldMinWork })
}

func checkParallelEqual(t *testing.T, label string, text []byte, workers int) {
	t.Helper()
	want := Build(text)
	got := BuildParallel(text, workers)
	if len(got) != len(want) {
		t.Fatalf("%s (workers=%d): length %d, want %d", label, workers, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s (workers=%d): sa[%d] = %d, want %d", label, workers, i, got[i], want[i])
		}
	}
}

var parallelWorkerCounts = []int{2, 3, 4, 7, 16}

// TestBuildParallelRandom cross-checks pDC3 against SA-IS on uniform
// random texts over several alphabet sizes, across worker counts and
// lengths that straddle the chunking boundaries.
func TestBuildParallelRandom(t *testing.T) {
	lowerThresholds(t)
	rng := rand.New(rand.NewSource(9))
	for _, sigma := range []int{1, 2, 4, 5, 256} {
		for _, n := range []int{0, 1, 2, 3, 5, 17, 64, 255, 256, 1000, 4096} {
			text := make([]byte, n)
			for i := range text {
				text[i] = byte(rng.Intn(sigma))
			}
			for _, w := range parallelWorkerCounts {
				checkParallelEqual(t, "random", text, w)
			}
		}
	}
}

// TestBuildParallelHomopolymer saturates the naming phase: long runs of
// a single base force maximal triple collisions and the deepest
// recursion, the worst case for the prefix-sum naming.
func TestBuildParallelHomopolymer(t *testing.T) {
	lowerThresholds(t)
	for _, n := range []int{10, 100, 1023, 4096} {
		text := bytes.Repeat([]byte{'a'}, n)
		for _, w := range parallelWorkerCounts {
			checkParallelEqual(t, "homopolymer", text, w)
		}
		// A single foreign base breaks the symmetry at each end.
		text[0] = 'b'
		checkParallelEqual(t, "homopolymer-head", text, 3)
		text[0], text[n-1] = 'a', 'b'
		checkParallelEqual(t, "homopolymer-tail", text, 3)
	}
}

// TestBuildParallelAllDistinct exercises the unique-names fast path
// (no recursion): every triple distinct on the first pass.
func TestBuildParallelAllDistinct(t *testing.T) {
	lowerThresholds(t)
	asc := make([]byte, 256)
	desc := make([]byte, 256)
	for i := range asc {
		asc[i] = byte(i)
		desc[i] = byte(255 - i)
	}
	perm := make([]byte, 256)
	for i, p := range rand.New(rand.NewSource(7)).Perm(256) {
		perm[i] = byte(p)
	}
	for _, text := range [][]byte{asc, desc, perm} {
		for _, w := range parallelWorkerCounts {
			checkParallelEqual(t, "all-distinct", text, w)
		}
	}
}

// TestBuildParallelDNA checks realistic inputs at production
// thresholds: a random ACGT text large enough that BuildParallel takes
// the pDC3 path without any test-side threshold lowering.
func TestBuildParallelDNA(t *testing.T) {
	n := parallelMinN + 12345
	if testing.Short() {
		n = parallelMinN + 123
	}
	rng := rand.New(rand.NewSource(11))
	text := make([]byte, n)
	for i := range text {
		text[i] = "acgt"[rng.Intn(4)]
	}
	for _, w := range []int{2, 4} {
		checkParallelEqual(t, "dna", text, w)
	}
}

// TestBuildParallelSerialFallback pins the dispatch rule: one worker or
// a small text must take the serial Build path (still bit-identical,
// but with no goroutines spawned).
func TestBuildParallelSerialFallback(t *testing.T) {
	text := []byte("gattacagattaca")
	checkParallelEqual(t, "fallback-small", text, 8)
	checkParallelEqual(t, "fallback-one-worker", text, 1)
	checkParallelEqual(t, "fallback-zero-worker", text, 0)
}

func BenchmarkBuildParallel_1MB(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	text := make([]byte, 1<<20)
	for i := range text {
		text[i] = "acgt"[rng.Intn(4)]
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "w1", 2: "w2", 4: "w4"}[workers], func(b *testing.B) {
			b.SetBytes(int64(len(text)))
			for i := 0; i < b.N; i++ {
				BuildParallel(text, workers)
			}
		})
	}
}
