package suffixarray

import (
	"math/rand"
	"testing"
)

// TestCheckSA exercises the deep suffix-array verification over both
// construction algorithms and assorted texts. In default builds CheckSA
// is a no-op; under -tags kminvariants it runs the real checks.
func TestCheckSA(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	dna := make([]byte, 3000)
	for i := range dna {
		dna[i] = "acgt"[rng.Intn(4)]
	}
	texts := [][]byte{
		nil,
		[]byte("a"),
		[]byte("banana"),
		[]byte("mississippi"),
		[]byte("aaaaaaaaaa"),
		[]byte("abababababab"),
		dna,
	}
	for _, text := range texts {
		label := string(text)
		if len(label) > 20 {
			label = label[:20] + "..."
		}
		if err := CheckSA(text, Build(text)); err != nil {
			t.Errorf("SA-IS %q: %v", label, err)
		}
		if err := CheckSA(text, BuildDC3(text)); err != nil {
			t.Errorf("DC3 %q: %v", label, err)
		}
	}
}
