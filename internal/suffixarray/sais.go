// Package suffixarray builds suffix arrays with the linear-time SA-IS
// algorithm and derives LCP arrays (Kasai), range-minimum structures and
// longest-common-extension queries from them. It is the substrate under the
// BWT construction (paper §III-B) and under the R-array "kangaroo"
// construction (paper §IV-B).
package suffixarray

// Build returns the suffix array of text: a permutation sa of 0..n-1 with
// text[sa[i]:] < text[sa[i+1]:] lexicographically. The text is treated as a
// sequence of bytes; no implicit sentinel is appended, suffixes are compared
// with the usual "prefix is smaller" rule (SA-IS handles this by appending a
// virtual smallest sentinel internally).
func Build(text []byte) []int32 {
	n := len(text)
	sa := make([]int32, n)
	if n == 0 {
		return sa
	}
	// Recast to int32 workspace with a fresh sentinel 0; shift bytes by +1.
	s := make([]int32, n+1)
	for i, b := range text {
		s[i] = int32(b) + 1
	}
	s[n] = 0
	tmp := sais(s, 257)
	copy(sa, tmp[1:]) // drop the sentinel suffix, which sorts first
	return sa
}

// sais computes the suffix array of s whose characters lie in [0, sigma) and
// whose last character is the unique smallest (a sentinel).
func sais(s []int32, sigma int) []int32 {
	n := len(s)
	sa := make([]int32, n)
	if n == 1 {
		sa[0] = 0
		return sa
	}
	if n == 2 {
		sa[0], sa[1] = 1, 0
		return sa
	}

	// Classify suffixes: true = S-type, false = L-type.
	isS := make([]bool, n)
	isS[n-1] = true
	for i := n - 2; i >= 0; i-- {
		switch {
		case s[i] < s[i+1]:
			isS[i] = true
		case s[i] > s[i+1]:
			isS[i] = false
		default:
			isS[i] = isS[i+1]
		}
	}
	isLMS := func(i int) bool { return i > 0 && isS[i] && !isS[i-1] }

	// Bucket boundaries.
	bucket := make([]int32, sigma)
	for _, c := range s {
		bucket[c]++
	}
	bktHead := make([]int32, sigma)
	bktTail := make([]int32, sigma)
	resetBuckets := func() {
		var sum int32
		for c := 0; c < sigma; c++ {
			bktHead[c] = sum
			sum += bucket[c]
			bktTail[c] = sum
		}
	}

	const empty = int32(-1)

	induce := func() {
		// Induce L-type from LMS placements.
		resetBuckets()
		head := append([]int32(nil), bktHead...)
		for i := 0; i < n; i++ {
			j := sa[i]
			if j > 0 && !isS[j-1] {
				c := s[j-1]
				sa[head[c]] = j - 1
				head[c]++
			}
		}
		// Induce S-type right to left.
		tail := append([]int32(nil), bktTail...)
		for i := n - 1; i >= 0; i-- {
			j := sa[i]
			if j > 0 && isS[j-1] {
				c := s[j-1]
				tail[c]--
				sa[tail[c]] = j - 1
			}
		}
	}

	placeLMS := func(positions []int32) {
		for i := range sa {
			sa[i] = empty
		}
		resetBuckets()
		tail := append([]int32(nil), bktTail...)
		for i := len(positions) - 1; i >= 0; i-- {
			p := positions[i]
			c := s[p]
			tail[c]--
			sa[tail[c]] = p
		}
		// The sentinel suffix is LMS and already placed via positions; the
		// empty slots are filled by induction below, reading empty as "no
		// suffix yet" (j = -1 is skipped because -1 > 0 is false).
	}

	// First pass: place LMS suffixes in text order, induce, then extract the
	// LMS order they induce.
	var lms []int32
	for i := 1; i < n; i++ {
		if isLMS(i) {
			lms = append(lms, int32(i))
		}
	}
	placeLMS(lms)
	induce()

	// Collect LMS suffixes in the induced order and name their substrings.
	sortedLMS := make([]int32, 0, len(lms))
	for _, j := range sa {
		if j > 0 && isLMS(int(j)) {
			sortedLMS = append(sortedLMS, j)
		}
	}
	name := make([]int32, n)
	for i := range name {
		name[i] = empty
	}
	var curName int32
	var prev int32 = -1
	for _, p := range sortedLMS {
		if prev >= 0 && !lmsEqual(s, isS, int(prev), int(p)) {
			curName++
		}
		name[p] = curName
		prev = p
	}
	numNames := int(curName) + 1

	// Build the reduced problem: names of LMS substrings in text order.
	reduced := make([]int32, 0, len(lms))
	for _, p := range lms {
		reduced = append(reduced, name[p])
	}

	var lmsOrder []int32
	if numNames == len(lms) {
		// All names distinct: order directly from names.
		lmsOrder = make([]int32, len(lms))
		for _, p := range lms {
			lmsOrder[name[p]] = p
		}
	} else {
		subSA := sais(reduced, numNames)
		lmsOrder = make([]int32, len(lms))
		for i, idx := range subSA {
			lmsOrder[i] = lms[idx]
		}
	}

	// Second pass: place LMS suffixes in their true order and induce.
	placeLMS(lmsOrder)
	induce()
	return sa
}

// lmsEqual reports whether the LMS substrings starting at a and b are equal.
func lmsEqual(s []int32, isS []bool, a, b int) bool {
	n := len(s)
	if a == n-1 || b == n-1 {
		return a == b
	}
	for i := 0; ; i++ {
		aLMS := isLMSAt(isS, a+i)
		bLMS := isLMSAt(isS, b+i)
		if i > 0 && aLMS && bLMS {
			return true
		}
		if aLMS != bLMS || s[a+i] != s[b+i] {
			return false
		}
	}
}

func isLMSAt(isS []bool, i int) bool { return i > 0 && isS[i] && !isS[i-1] }
