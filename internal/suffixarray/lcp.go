package suffixarray

import "math/bits"

// LCP computes the longest-common-prefix array of text under suffix array
// sa using Kasai's algorithm: lcp[i] = LCP(text[sa[i-1]:], text[sa[i]:]) for
// i >= 1, lcp[0] = 0. Runs in O(n).
func LCP(text []byte, sa []int32) []int32 {
	n := len(text)
	lcp := make([]int32, n)
	if n == 0 {
		return lcp
	}
	rank := make([]int32, n)
	for i, p := range sa {
		rank[p] = int32(i)
	}
	h := 0
	for i := 0; i < n; i++ {
		if rank[i] == 0 {
			h = 0
			continue
		}
		j := int(sa[rank[i]-1])
		for i+h < n && j+h < n && text[i+h] == text[j+h] {
			h++
		}
		lcp[rank[i]] = int32(h)
		if h > 0 {
			h--
		}
	}
	return lcp
}

// RMQ answers range-minimum queries over an int32 array in O(1) after
// O(n log n) preprocessing (sparse table).
type RMQ struct {
	table [][]int32
}

// NewRMQ builds a sparse table over a.
func NewRMQ(a []int32) *RMQ {
	n := len(a)
	levels := 1
	if n > 1 {
		levels = bits.Len(uint(n)) // floor(log2 n) + 1
	}
	t := make([][]int32, levels)
	t[0] = append([]int32(nil), a...)
	for k := 1; k < levels; k++ {
		width := 1 << uint(k)
		if n-width+1 <= 0 {
			t = t[:k]
			break
		}
		t[k] = make([]int32, n-width+1)
		for i := range t[k] {
			t[k][i] = min32(t[k-1][i], t[k-1][i+width/2])
		}
	}
	return &RMQ{table: t}
}

// Min returns the minimum of a[lo:hi]; hi must be > lo.
func (r *RMQ) Min(lo, hi int) int32 {
	k := bits.Len(uint(hi-lo)) - 1
	return min32(r.table[k][lo], r.table[k][hi-(1<<uint(k))])
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

// LCE answers longest-common-extension queries over a fixed text:
// LCE(i, j) = length of the longest common prefix of text[i:] and text[j:].
// Built from SA + LCP + RMQ; each query is O(1). This is the paper's
// "kangaroo" substrate used to construct the R arrays.
type LCE struct {
	n    int
	rank []int32
	rmq  *RMQ
}

// NewLCE builds the LCE structure for text.
func NewLCE(text []byte) *LCE {
	sa := Build(text)
	return NewLCEFromSA(text, sa)
}

// NewLCEFromSA builds the LCE structure when the suffix array is already
// available.
func NewLCEFromSA(text []byte, sa []int32) *LCE {
	n := len(text)
	l := &LCE{n: n, rank: make([]int32, n)}
	for i, p := range sa {
		l.rank[p] = int32(i)
	}
	l.rmq = NewRMQ(LCP(text, sa))
	return l
}

// Extend returns the length of the longest common prefix of the suffixes
// starting at i and j (0-based). Extend(i, i) is n-i.
func (l *LCE) Extend(i, j int) int {
	if i == j {
		return l.n - i
	}
	if i >= l.n || j >= l.n {
		return 0
	}
	ri, rj := l.rank[i], l.rank[j]
	if ri > rj {
		ri, rj = rj, ri
	}
	return int(l.rmq.Min(int(ri)+1, int(rj)+1))
}
