package suffixarray

// BuildDC3 constructs the suffix array with the Kärkkäinen–Sanders DC3
// (skew) algorithm — the other classic linear-time construction the
// BWT-construction literature the paper cites builds on. It serves two
// roles: an independent implementation to cross-validate SA-IS (the two
// must agree on every input), and the serial reference for the parallel
// builder — BuildParallel's pdc3 is this recursion with the three
// data-parallel phases (radix passes, triple naming, final merge)
// actually run in parallel, degrading back to dc3 below the work
// thresholds. SA-IS stays the serial default (Build): it is faster at
// one worker; DC3's phase structure is what parallelizes cleanly.
func BuildDC3(text []byte) []int32 {
	n := len(text)
	sa := make([]int32, n)
	if n == 0 {
		return sa
	}
	if n == 1 {
		sa[0] = 0
		return sa
	}
	s := make([]int32, n+3) // padded with three zeros as DC3 requires
	for i, b := range text {
		s[i] = int32(b) + 1
	}
	res := dc3(s, n, 257)
	copy(sa, res)
	return sa
}

// dc3 computes the suffix array of s[0:n] (values in [1, sigma), padding
// zeros beyond n).
func dc3(s []int32, n, sigma int) []int32 {
	n0 := (n + 2) / 3
	n1 := (n + 1) / 3
	n2 := n / 3
	n02 := n0 + n2

	// Positions i mod 3 != 0, padded so that n1+n2 entries exist even
	// when n mod 3 == 1.
	s12 := make([]int32, n02+3)
	j := 0
	for i := 0; i < n+(n0-n1); i++ {
		if i%3 != 0 {
			s12[j] = int32(i)
			j++
		}
	}

	// Radix sort the mod-1/2 suffixes by their first three characters.
	sa12 := make([]int32, n02+3)
	radixPass(s12, sa12, s[2:], n02, sigma)
	radixPass(sa12, s12, s[1:], n02, sigma)
	radixPass(s12, sa12, s, n02, sigma)

	// Name the triples.
	name := 0
	var c0, c1, c2 int32 = -1, -1, -1
	for i := 0; i < n02; i++ {
		p := sa12[i]
		if s[p] != c0 || s[p+1] != c1 || s[p+2] != c2 {
			name++
			c0, c1, c2 = s[p], s[p+1], s[p+2]
		}
		if p%3 == 1 {
			s12[p/3] = int32(name) // left half
		} else {
			s12[p/3+int32(n0)] = int32(name) // right half
		}
	}

	if name < n02 {
		// Recurse on the named sequence.
		sub := dc3(s12, n02, name+1)
		copy(sa12, sub)
		// Restore the names as ranks.
		for i := 0; i < n02; i++ {
			s12[sa12[i]] = int32(i) + 1
		}
	} else {
		// Names unique: derive sa12 directly.
		for i := 0; i < n02; i++ {
			sa12[s12[i]-1] = int32(i)
		}
	}

	// Sort the mod-0 suffixes by (first char, rank of following mod-1).
	s0 := make([]int32, n0)
	j = 0
	for i := 0; i < n02; i++ {
		if sa12[i] < int32(n0) {
			s0[j] = 3 * sa12[i]
			j++
		}
	}
	sa0 := make([]int32, n0)
	radixPass(s0, sa0, s, n0, sigma)

	// Merge sa0 and sa12.
	sa := make([]int32, n)
	getI := func(t int) int32 {
		if sa12[t] < int32(n0) {
			return sa12[t]*3 + 1
		}
		return (sa12[t]-int32(n0))*3 + 2
	}
	rank12 := func(i int32) int32 {
		// Rank of suffix i (i mod 3 != 0) within the 1/2 group.
		if i%3 == 1 {
			return s12[i/3]
		}
		return s12[i/3+int32(n0)]
	}
	leq2 := func(a1, a2, b1, b2 int32) bool {
		return a1 < b1 || (a1 == b1 && a2 <= b2)
	}
	leq3 := func(a1, a2, a3, b1, b2, b3 int32) bool {
		return a1 < b1 || (a1 == b1 && leq2(a2, a3, b2, b3))
	}
	p, t, k := 0, n0-n1, 0
	for k < n {
		i := getI(t) // current mod-1/2 suffix
		var jj int32
		if p < n0 {
			jj = sa0[p]
		}
		var takeI bool
		if t >= n02 {
			takeI = false
		} else if p >= n0 {
			takeI = true
		} else if i%3 == 1 {
			takeI = leq2(s[i], rank12(i+1), s[jj], rank12(jj+1))
		} else {
			takeI = leq3(s[i], s[i+1], rank12(i+2), s[jj], s[jj+1], rank12(jj+2))
		}
		if takeI {
			sa[k] = i
			t++
		} else {
			sa[k] = jj
			p++
		}
		k++
	}
	return sa
}

// radixPass stable-sorts src (suffix start positions) into dst by the
// character key[src[i]].
func radixPass(src, dst []int32, key []int32, n, sigma int) {
	count := make([]int32, sigma+1)
	for i := 0; i < n; i++ {
		count[key[src[i]]]++
	}
	var sum int32
	for c := 0; c <= sigma; c++ {
		count[c], sum = sum, sum+count[c]
	}
	for i := 0; i < n; i++ {
		dst[count[key[src[i]]]] = src[i]
		count[key[src[i]]]++
	}
}
