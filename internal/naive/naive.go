// Package naive provides online (index-free) k-mismatch matchers used both
// as correctness oracles and as the on-line baselines the paper's related
// work discusses: the O(nm) sliding counter and a Landau–Vishkin style
// O(kn) kangaroo matcher built on longest-common-extension queries.
package naive

import "bwtmatch/internal/suffixarray"

// Hamming returns the number of mismatching positions between a and b,
// which must have equal length, stopping early once the count exceeds
// limit (it returns limit+1 in that case).
func Hamming(a, b []byte, limit int) int {
	d := 0
	for i := range a {
		if a[i] != b[i] {
			d++
			if d > limit {
				return d
			}
		}
	}
	return d
}

// Find returns every 0-based position p such that text[p:p+len(pattern)]
// differs from pattern in at most k positions, by direct comparison with
// early exit: the O(nm) (practically O(nk)) reference matcher.
func Find(text, pattern []byte, k int) []int32 {
	var out []int32
	m := len(pattern)
	if m == 0 || m > len(text) {
		return out
	}
	for p := 0; p+m <= len(text); p++ {
		if Hamming(text[p:p+m], pattern, k) <= k {
			out = append(out, int32(p))
		}
	}
	return out
}

// LandauVishkin is an online O(kn) k-mismatch matcher: it preprocesses a
// generalized LCE structure over pattern#text and verifies each alignment
// with at most k+1 kangaroo jumps (Landau & Vishkin 1986, the paper's
// reference [9] family).
type LandauVishkin struct {
	lce  *suffixarray.LCE
	m, n int
}

// NewLandauVishkin builds the matcher for one pattern/text pair. The
// concatenation uses a separator byte 0, which must not appear in either
// rank-encoded input (ranks are 1..4 for DNA payloads).
func NewLandauVishkin(text, pattern []byte) *LandauVishkin {
	m, n := len(pattern), len(text)
	cat := make([]byte, 0, m+1+n)
	cat = append(cat, pattern...)
	cat = append(cat, 0)
	cat = append(cat, text...)
	return &LandauVishkin{lce: suffixarray.NewLCE(cat), m: m, n: n}
}

// Mismatches counts mismatches of the alignment at text position p,
// stopping after limit+1. O(limit) LCE queries.
func (lv *LandauVishkin) Mismatches(p, limit int) int {
	d := 0
	off := 0
	for off < lv.m {
		e := lv.lce.Extend(off, lv.m+1+p+off)
		off += e
		if off >= lv.m {
			break
		}
		d++
		if d > limit {
			return d
		}
		off++
	}
	return d
}

// Find returns all 0-based k-mismatch occurrence positions.
func (lv *LandauVishkin) Find(k int) []int32 {
	var out []int32
	for p := 0; p+lv.m <= lv.n; p++ {
		if lv.Mismatches(p, k) <= k {
			out = append(out, int32(p))
		}
	}
	return out
}
