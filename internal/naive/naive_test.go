package naive

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bwtmatch/internal/alphabet"
)

func randomRanks(rng *rand.Rand, n int) []byte {
	t := make([]byte, n)
	for i := range t {
		t[i] = byte(1 + rng.Intn(4))
	}
	return t
}

func TestHamming(t *testing.T) {
	a := []byte{1, 2, 3, 4}
	b := []byte{1, 3, 3, 1}
	if got := Hamming(a, b, 4); got != 2 {
		t.Errorf("Hamming = %d, want 2", got)
	}
	if got := Hamming(a, b, 0); got != 1 {
		t.Errorf("Hamming with limit 0 = %d, want 1 (early exit)", got)
	}
	if got := Hamming(nil, nil, 0); got != 0 {
		t.Errorf("Hamming(empty) = %d", got)
	}
}

func TestFindPaperExample(t *testing.T) {
	// Paper §I: r = aaaaacaaac occurs in s = ccacacagaagcc at position 3
	// (1-based) with 4 mismatches.
	s, _ := alphabet.Encode([]byte("ccacacagaagcc"))
	r, _ := alphabet.Encode([]byte("aaaaacaaac"))
	got := Find(s, r, 4)
	found := false
	for _, p := range got {
		if p == 2 { // 0-based
			found = true
		}
	}
	if !found {
		t.Fatalf("Find = %v, want to include position 2", got)
	}
}

func TestFindEdges(t *testing.T) {
	s := []byte{1, 2, 3}
	if got := Find(s, nil, 1); got != nil {
		t.Errorf("empty pattern: %v", got)
	}
	if got := Find(s, []byte{1, 2, 3, 4}, 9); got != nil {
		t.Errorf("pattern longer than text: %v", got)
	}
	// k >= m: every position matches.
	if got := Find(s, []byte{4, 4}, 2); len(got) != 2 {
		t.Errorf("k>=m: %v, want 2 positions", got)
	}
}

func TestLandauVishkinAgainstFind(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 60; trial++ {
		text := randomRanks(rng, 50+rng.Intn(300))
		pattern := randomRanks(rng, 1+rng.Intn(30))
		k := rng.Intn(6)
		lv := NewLandauVishkin(text, pattern)
		got := lv.Find(k)
		want := Find(text, pattern, k)
		if len(got) != len(want) {
			t.Fatalf("LV found %d, naive %d (k=%d)", len(got), len(want), k)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("LV = %v, naive = %v", got, want)
			}
		}
	}
}

func TestLandauVishkinMismatchCount(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	text := randomRanks(rng, 200)
	pattern := randomRanks(rng, 20)
	lv := NewLandauVishkin(text, pattern)
	for p := 0; p+len(pattern) <= len(text); p++ {
		want := Hamming(text[p:p+len(pattern)], pattern, len(pattern))
		if got := lv.Mismatches(p, len(pattern)); got != want {
			t.Fatalf("Mismatches(%d) = %d, want %d", p, got, want)
		}
	}
}

func TestLandauVishkinQuick(t *testing.T) {
	f := func(seed int64, n8, m8, k8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		text := randomRanks(rng, 1+int(n8))
		pattern := randomRanks(rng, 1+int(m8)%20)
		k := int(k8) % 4
		lv := NewLandauVishkin(text, pattern)
		got, want := lv.Find(k), Find(text, pattern, k)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
