// Package exact implements the classical exact string matchers the paper
// surveys in §II — Knuth–Morris–Pratt, Boyer–Moore(–Horspool), and the
// Aho–Corasick multi-pattern automaton — used both as standalone tools and
// as the seed-filter substrate of the Amir baseline (internal/amir).
//
// All matchers operate on arbitrary byte strings; the DNA pipeline passes
// rank-encoded text.
package exact

// KMPNext builds the failure function ("next-table") of pattern:
// next[i] = length of the longest proper prefix of pattern[:i+1] that is
// also its suffix.
func KMPNext(pattern []byte) []int {
	next := make([]int, len(pattern))
	k := 0
	for i := 1; i < len(pattern); i++ {
		for k > 0 && pattern[k] != pattern[i] {
			k = next[k-1]
		}
		if pattern[k] == pattern[i] {
			k++
		}
		next[i] = k
	}
	return next
}

// KMP returns all 0-based occurrence positions of pattern in text in
// O(n + m) time.
func KMP(text, pattern []byte) []int32 {
	if len(pattern) == 0 || len(pattern) > len(text) {
		return nil
	}
	next := KMPNext(pattern)
	var out []int32
	k := 0
	for i := 0; i < len(text); i++ {
		for k > 0 && pattern[k] != text[i] {
			k = next[k-1]
		}
		if pattern[k] == text[i] {
			k++
		}
		if k == len(pattern) {
			out = append(out, int32(i-k+1))
			k = next[k-1]
		}
	}
	return out
}

// Period returns the smallest period of s: the least p >= 1 such that
// s[i] == s[i+p] for all valid i. A string with Period(s) <= len(s)/2 is
// periodic; Amir's break selection prefers aperiodic blocks.
func Period(s []byte) int {
	if len(s) == 0 {
		return 0
	}
	next := KMPNext(s)
	return len(s) - next[len(s)-1]
}
