package exact

// AhoCorasick is a multi-pattern matching automaton (paper ref [1]): it
// finds every occurrence of any of a set of patterns in one pass over the
// text, in O(sum of pattern lengths + n + #occurrences).
type AhoCorasick struct {
	next [][256]int32 // goto function per state
	fail []int32
	out  [][]int32 // pattern ids ending at each state
	lens []int     // pattern lengths by id
}

// Hit is one occurrence: pattern PatternID ends such that it starts at Pos.
type Hit struct {
	Pos       int32
	PatternID int32
}

// NewAhoCorasick builds the automaton for the given patterns. Empty
// patterns are rejected by omission (they never match).
func NewAhoCorasick(patterns [][]byte) *AhoCorasick {
	ac := &AhoCorasick{lens: make([]int, len(patterns))}
	ac.addState() // root
	for id, p := range patterns {
		ac.lens[id] = len(p)
		if len(p) == 0 {
			continue
		}
		s := int32(0)
		for _, b := range p {
			if ac.next[s][b] == 0 {
				ac.next[s][b] = ac.addState()
			}
			s = ac.next[s][b]
		}
		ac.out[s] = append(ac.out[s], int32(id))
	}
	ac.buildFailure()
	return ac
}

func (ac *AhoCorasick) addState() int32 {
	ac.next = append(ac.next, [256]int32{})
	ac.fail = append(ac.fail, 0)
	ac.out = append(ac.out, nil)
	return int32(len(ac.next) - 1)
}

// buildFailure computes failure links breadth-first and converts the goto
// function into a total transition function.
func (ac *AhoCorasick) buildFailure() {
	var queue []int32
	for b := 0; b < 256; b++ {
		if s := ac.next[0][b]; s != 0 {
			ac.fail[s] = 0
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for b := 0; b < 256; b++ {
			v := ac.next[u][b]
			if v == 0 {
				ac.next[u][b] = ac.next[ac.fail[u]][b]
				continue
			}
			ac.fail[v] = ac.next[ac.fail[u]][b]
			ac.out[v] = append(ac.out[v], ac.out[ac.fail[v]]...)
			queue = append(queue, v)
		}
	}
}

// Find returns every hit in text. Positions are the pattern START offsets.
func (ac *AhoCorasick) Find(text []byte) []Hit {
	var hits []Hit
	s := int32(0)
	for i, b := range text {
		s = ac.next[s][b]
		for _, id := range ac.out[s] {
			hits = append(hits, Hit{Pos: int32(i - ac.lens[id] + 1), PatternID: id})
		}
	}
	return hits
}

// Scan streams hits to fn instead of materializing them; fn returning
// false stops the scan early.
func (ac *AhoCorasick) Scan(text []byte, fn func(Hit) bool) {
	s := int32(0)
	for i, b := range text {
		s = ac.next[s][b]
		for _, id := range ac.out[s] {
			if !fn(Hit{Pos: int32(i - ac.lens[id] + 1), PatternID: id}) {
				return
			}
		}
	}
}
