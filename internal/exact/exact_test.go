package exact

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func naiveFind(text, pattern []byte) []int32 {
	if len(pattern) == 0 {
		return nil
	}
	var out []int32
	for i := 0; i+len(pattern) <= len(text); i++ {
		if bytes.Equal(text[i:i+len(pattern)], pattern) {
			out = append(out, int32(i))
		}
	}
	return out
}

func randomBytes(rng *rand.Rand, n, sigma int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + rng.Intn(sigma))
	}
	return b
}

func equal32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestKMPNext(t *testing.T) {
	next := KMPNext([]byte("ababaca"))
	want := []int{0, 0, 1, 2, 3, 0, 1}
	for i := range want {
		if next[i] != want[i] {
			t.Fatalf("next = %v, want %v", next, want)
		}
	}
}

func TestKMPFixed(t *testing.T) {
	got := KMP([]byte("abababab"), []byte("abab"))
	if !equal32(got, []int32{0, 2, 4}) {
		t.Fatalf("KMP = %v", got)
	}
}

func TestKMPAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 200; trial++ {
		text := randomBytes(rng, rng.Intn(300), 1+rng.Intn(3))
		pat := randomBytes(rng, 1+rng.Intn(8), 1+rng.Intn(3))
		if !equal32(KMP(text, pat), naiveFind(text, pat)) {
			t.Fatalf("KMP mismatch text=%q pat=%q", text, pat)
		}
	}
}

func TestBMHAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 200; trial++ {
		text := randomBytes(rng, rng.Intn(300), 1+rng.Intn(4))
		pat := randomBytes(rng, 1+rng.Intn(8), 1+rng.Intn(4))
		if !equal32(BMH(text, pat), naiveFind(text, pat)) {
			t.Fatalf("BMH mismatch text=%q pat=%q", text, pat)
		}
	}
}

func TestMatchersQuick(t *testing.T) {
	f := func(seed int64, n16 uint16, m8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		text := randomBytes(rng, int(n16)%500, 2)
		pat := randomBytes(rng, 1+int(m8)%10, 2)
		want := naiveFind(text, pat)
		return equal32(KMP(text, pat), want) && equal32(BMH(text, pat), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPeriod(t *testing.T) {
	cases := []struct {
		s    string
		want int
	}{
		{"", 0},
		{"a", 1},
		{"aa", 1},
		{"ab", 2},
		{"abab", 2},
		{"abcabcab", 3},
		{"aabaab", 3},
		{"abcd", 4},
	}
	for _, c := range cases {
		if got := Period([]byte(c.s)); got != c.want {
			t.Errorf("Period(%q) = %d, want %d", c.s, got, c.want)
		}
	}
}

func TestAhoCorasickSingle(t *testing.T) {
	ac := NewAhoCorasick([][]byte{[]byte("aba")})
	hits := ac.Find([]byte("ababa"))
	if len(hits) != 2 || hits[0].Pos != 0 || hits[1].Pos != 2 {
		t.Fatalf("hits = %v", hits)
	}
}

func TestAhoCorasickMulti(t *testing.T) {
	pats := [][]byte{[]byte("he"), []byte("she"), []byte("his"), []byte("hers")}
	ac := NewAhoCorasick(pats)
	hits := ac.Find([]byte("ushers"))
	type key struct {
		pos int32
		id  int32
	}
	got := make(map[key]bool)
	for _, h := range hits {
		got[key{h.Pos, h.PatternID}] = true
	}
	want := []key{{1, 1}, {2, 0}, {2, 3}} // she@1, he@2, hers@2
	if len(got) != len(want) {
		t.Fatalf("hits = %v", hits)
	}
	for _, w := range want {
		if !got[w] {
			t.Fatalf("missing %v in %v", w, hits)
		}
	}
}

func TestAhoCorasickAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 60; trial++ {
		text := randomBytes(rng, 50+rng.Intn(300), 2)
		numPats := 1 + rng.Intn(6)
		pats := make([][]byte, numPats)
		for i := range pats {
			pats[i] = randomBytes(rng, 1+rng.Intn(6), 2)
		}
		ac := NewAhoCorasick(pats)
		var got []Hit
		ac.Scan(text, func(h Hit) bool { got = append(got, h); return true })
		var want []Hit
		for id, p := range pats {
			for _, pos := range naiveFind(text, p) {
				want = append(want, Hit{Pos: pos, PatternID: int32(id)})
			}
		}
		lessHit := func(a, b Hit) bool {
			if a.Pos != b.Pos {
				return a.Pos < b.Pos
			}
			return a.PatternID < b.PatternID
		}
		sort.Slice(got, func(i, j int) bool { return lessHit(got[i], got[j]) })
		sort.Slice(want, func(i, j int) bool { return lessHit(want[i], want[j]) })
		if len(got) != len(want) {
			t.Fatalf("got %d hits, want %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("got %v, want %v", got, want)
			}
		}
	}
}

func TestAhoCorasickEmptyPattern(t *testing.T) {
	ac := NewAhoCorasick([][]byte{nil, []byte("ab")})
	hits := ac.Find([]byte("abab"))
	for _, h := range hits {
		if h.PatternID == 0 {
			t.Fatal("empty pattern produced a hit")
		}
	}
	if len(hits) != 2 {
		t.Fatalf("hits = %v", hits)
	}
}

func TestAhoCorasickScanEarlyStop(t *testing.T) {
	ac := NewAhoCorasick([][]byte{[]byte("a")})
	count := 0
	ac.Scan([]byte("aaaa"), func(Hit) bool { count++; return count < 2 })
	if count != 2 {
		t.Fatalf("scan visited %d hits, want 2", count)
	}
}

func BenchmarkAhoCorasick(b *testing.B) {
	rng := rand.New(rand.NewSource(74))
	text := randomBytes(rng, 1<<20, 4)
	pats := make([][]byte, 16)
	for i := range pats {
		p := rng.Intn(len(text) - 20)
		pats[i] = text[p : p+20]
	}
	ac := NewAhoCorasick(pats)
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ac.Scan(text, func(Hit) bool { return true })
	}
}
