package exact

// BMH returns all 0-based occurrence positions of pattern in text using
// the Boyer–Moore–Horspool simplification: the bad-character skip table
// alone, scanning the pattern right to left. Expected sublinear scans on
// random text, O(nm) worst case.
func BMH(text, pattern []byte) []int32 {
	m, n := len(pattern), len(text)
	if m == 0 || m > n {
		return nil
	}
	var skip [256]int
	for i := range skip {
		skip[i] = m
	}
	for i := 0; i < m-1; i++ {
		skip[pattern[i]] = m - 1 - i
	}
	var out []int32
	for p := 0; p+m <= n; {
		i := m - 1
		for i >= 0 && text[p+i] == pattern[i] {
			i--
		}
		if i < 0 {
			out = append(out, int32(p))
		}
		p += skip[text[p+m-1]]
	}
	return out
}
