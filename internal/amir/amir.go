// Package amir implements the filtering k-mismatch matcher the paper uses
// as its "Amir's method" baseline (§V): the pattern is cut into pieces
// ("breaks"), exact occurrences of the pieces are found in one pass over
// the target, candidate alignments are marked, and every surviving
// candidate is verified.
//
// The full Amir–Lewenstein–Porat O(n·sqrt(k·log k)) algorithm relies on
// convolutions over periodic stretches; per DESIGN.md §3.6 this package
// substitutes the practical filter with the same structure: k+1 disjoint
// blocks (pigeonhole: an occurrence with at most k mismatches contains at
// least one block exactly), Aho–Corasick for the single-pass multi-block
// scan, and bounded-mismatch verification. Break boundaries are nudged
// toward aperiodic blocks as the paper's Fig. 10 discussion prescribes,
// which keeps the number of spurious candidates low on repetitive targets.
package amir

import (
	"errors"
	"sort"

	"bwtmatch/internal/exact"
	"bwtmatch/internal/naive"
)

// Stats reports filter effectiveness for one query.
type Stats struct {
	Blocks     int // number of exact seed blocks
	Seeds      int // total seed hits in the target
	Candidates int // distinct candidate alignments verified
	Matches    int
}

// Match is one verified occurrence.
type Match struct {
	Pos        int32
	Mismatches int
}

// Matcher answers k-mismatch queries against one target text by
// filtering + verification. It keeps only a reference to the text; all
// per-query state is local.
type Matcher struct {
	text []byte
}

// ErrPattern reports an unusable pattern.
var ErrPattern = errors.New("amir: invalid pattern")

// New returns a Matcher over text (any byte alphabet).
func New(text []byte) *Matcher { return &Matcher{text: text} }

// Find returns all k-mismatch occurrences of pattern, sorted by position.
func (a *Matcher) Find(pattern []byte, k int) ([]Match, Stats, error) {
	var st Stats
	m, n := len(pattern), len(a.text)
	if m == 0 {
		return nil, st, ErrPattern
	}
	if k < 0 {
		return nil, st, ErrPattern
	}
	if m > n {
		return nil, st, nil
	}
	if k >= m {
		// Every alignment trivially qualifies.
		out := make([]Match, 0, n-m+1)
		for p := 0; p+m <= n; p++ {
			out = append(out, Match{Pos: int32(p), Mismatches: naive.Hamming(a.text[p:p+m], pattern, m)})
		}
		st.Matches = len(out)
		return out, st, nil
	}

	offsets := Breaks(pattern, k)
	st.Blocks = len(offsets)
	blocks := make([][]byte, len(offsets))
	for i, off := range offsets {
		end := m
		if i+1 < len(offsets) {
			end = offsets[i+1]
		}
		blocks[i] = pattern[off:end]
	}

	// One pass: every block hit proposes the alignment start that would
	// place the block at its pattern offset.
	ac := exact.NewAhoCorasick(blocks)
	candidates := make(map[int32]struct{})
	ac.Scan(a.text, func(h exact.Hit) bool {
		st.Seeds++
		start := h.Pos - int32(offsets[h.PatternID])
		if start >= 0 && int(start)+m <= n {
			candidates[start] = struct{}{}
		}
		return true
	})

	// Verification with early exit after k+1 mismatches.
	out := make([]Match, 0, len(candidates))
	for p := range candidates {
		st.Candidates++
		if d := naive.Hamming(a.text[p:int(p)+m], pattern, k); d <= k {
			out = append(out, Match{Pos: p, Mismatches: d})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	st.Matches = len(out)
	return out, st, nil
}

// Breaks partitions pattern (of length m > k) into k+1 disjoint,
// non-empty blocks and returns their start offsets (offsets[0] == 0).
// Boundaries start at the even partition and are then nudged by up to
// nudgeWindow positions to raise the period of short-period ("periodic
// stretch") blocks, imitating the paper's break selection.
func Breaks(pattern []byte, k int) []int {
	m := len(pattern)
	parts := k + 1
	offsets := make([]int, parts)
	for i := 1; i < parts; i++ {
		offsets[i] = i * m / parts
	}
	const nudgeWindow = 2
	for i := 1; i < parts; i++ {
		lo := offsets[i-1] + 1
		hi := m - (parts - i) // leave room for the remaining blocks
		best, bestScore := lo, -1
		for d := -nudgeWindow; d <= nudgeWindow; d++ {
			o := offsets[i] + d
			if o < lo || o > hi {
				continue
			}
			end := m
			if i+1 < parts {
				end = offsets[i+1]
				if end <= o {
					end = o + 1
				}
			}
			score := exact.Period(pattern[o:end])
			if score > bestScore {
				best, bestScore = o, score
			}
		}
		offsets[i] = best
	}
	return offsets
}
