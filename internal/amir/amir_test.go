package amir

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bwtmatch/internal/alphabet"
	"bwtmatch/internal/naive"
)

func randomRanks(rng *rand.Rand, n int) []byte {
	t := make([]byte, n)
	for i := range t {
		t[i] = byte(1 + rng.Intn(4))
	}
	return t
}

func checkAgainstNaive(t *testing.T, text, pattern []byte, k int) {
	t.Helper()
	got, st, err := New(text).Find(pattern, k)
	if err != nil {
		t.Fatal(err)
	}
	want := naive.Find(text, pattern, k)
	if len(got) != len(want) {
		t.Fatalf("found %d, want %d (text=%v pat=%v k=%d)", len(got), len(want), text, pattern, k)
	}
	for i := range got {
		if got[i].Pos != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
		d := naive.Hamming(text[got[i].Pos:int(got[i].Pos)+len(pattern)], pattern, len(pattern))
		if d != got[i].Mismatches {
			t.Fatalf("pos %d reports %d mismatches, actual %d", got[i].Pos, got[i].Mismatches, d)
		}
	}
	if st.Matches != len(got) {
		t.Fatalf("stats.Matches = %d, want %d", st.Matches, len(got))
	}
}

func TestPaperIntroExample(t *testing.T) {
	text, _ := alphabet.Encode([]byte("ccacacagaagcc"))
	pattern, _ := alphabet.Encode([]byte("aaaaacaaac"))
	checkAgainstNaive(t, text, pattern, 4)
}

func TestAgainstNaiveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 60; trial++ {
		text := randomRanks(rng, 30+rng.Intn(400))
		m := 1 + rng.Intn(30)
		if m > len(text) {
			m = len(text)
		}
		k := rng.Intn(6)
		var pattern []byte
		if rng.Intn(2) == 0 && len(text) > m {
			p := rng.Intn(len(text) - m)
			pattern = append([]byte(nil), text[p:p+m]...)
			for f := 0; f < k; f++ {
				pattern[rng.Intn(m)] = byte(1 + rng.Intn(4))
			}
		} else {
			pattern = randomRanks(rng, m)
		}
		checkAgainstNaive(t, text, pattern, k)
	}
}

func TestRepetitiveText(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	unit := randomRanks(rng, 7)
	var text []byte
	for i := 0; i < 60; i++ {
		text = append(text, unit...)
	}
	for k := 0; k <= 4; k++ {
		pattern := append([]byte(nil), text[10:35]...)
		for f := 0; f < k; f++ {
			pattern[rng.Intn(len(pattern))] = byte(1 + rng.Intn(4))
		}
		checkAgainstNaive(t, text, pattern, k)
	}
}

func TestQuick(t *testing.T) {
	f := func(seed int64, n16 uint16, m8, k8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		text := randomRanks(rng, 10+int(n16)%300)
		m := 1 + int(m8)%20
		if m > len(text) {
			m = len(text)
		}
		k := int(k8) % 5
		pattern := randomRanks(rng, m)
		got, _, err := New(text).Find(pattern, k)
		if err != nil {
			return false
		}
		want := naive.Find(text, pattern, k)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].Pos != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestKAtLeastM(t *testing.T) {
	text := []byte{1, 2, 3, 4, 1, 2}
	got, _, err := New(text).Find([]byte{4, 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("k>=m: %d matches, want 5", len(got))
	}
}

func TestValidation(t *testing.T) {
	m := New([]byte{1, 2, 3})
	if _, _, err := m.Find(nil, 1); err == nil {
		t.Error("empty pattern accepted")
	}
	if _, _, err := m.Find([]byte{1}, -1); err == nil {
		t.Error("negative k accepted")
	}
	if got, _, err := m.Find([]byte{1, 2, 3, 4}, 1); err != nil || got != nil {
		t.Error("overlong pattern should yield no matches, no error")
	}
}

func TestBreaksPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 200; trial++ {
		k := rng.Intn(8)
		m := k + 1 + rng.Intn(50)
		pattern := randomRanks(rng, m)
		offs := Breaks(pattern, k)
		if len(offs) != k+1 {
			t.Fatalf("got %d blocks, want %d", len(offs), k+1)
		}
		if offs[0] != 0 {
			t.Fatalf("first offset %d", offs[0])
		}
		for i := 1; i < len(offs); i++ {
			if offs[i] <= offs[i-1] || offs[i] >= m {
				t.Fatalf("offsets not a proper partition: %v (m=%d)", offs, m)
			}
		}
	}
}

func TestBreaksPreferAperiodic(t *testing.T) {
	// On a highly periodic pattern with a single irregularity the nudged
	// boundary should not make things worse than the even split; this is
	// a smoke test that the scoring runs and yields a valid partition.
	pattern := []byte{1, 2, 1, 2, 1, 2, 3, 1, 2, 1, 2, 1}
	offs := Breaks(pattern, 2)
	if len(offs) != 3 || offs[0] != 0 {
		t.Fatalf("Breaks = %v", offs)
	}
}

func TestSeedStatsPopulated(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	text := randomRanks(rng, 2000)
	p := 500
	pattern := append([]byte(nil), text[p:p+40]...)
	pattern[3] = byte(1 + rng.Intn(4))
	_, st, err := New(text).Find(pattern, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Blocks != 3 || st.Seeds == 0 || st.Candidates == 0 {
		t.Errorf("stats = %+v", st)
	}
}
