package analyze

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// runNoPanic flags panic calls in library packages. Commands (package
// main) may still die loudly, and invariants*.go files — the
// kminvariants-tagged assertion layer, plus their always-built stubs —
// are exempt because a tripped structural invariant has no saner
// recovery than crashing. Everything else in a library returns an
// error: the server embeds these packages, and a panic in a shared
// daemon is an outage, not a diagnostic.
func runNoPanic(p *Package) []Finding {
	if p.Name == "main" {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		name := filepath.Base(p.Fset.Position(f.Pos()).Filename)
		if strings.HasPrefix(name, "invariants") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); !isBuiltin {
				return true
			}
			out = append(out, p.finding(call.Pos(), "nopanic",
				"panic in library code; return an error (assertions belong in kminvariants-tagged invariants*.go files)"))
			return true
		})
	}
	return out
}
