package analyze

import (
	"go/ast"
	"go/types"
)

// stdlogCalls maps package path -> forbidden package-level functions.
// fmt's writer-taking variants (Fprintf etc.) and log.New loggers are
// fine; what the rule bans is writing to process-global stdout/stderr
// from code that may run inside a daemon.
var stdlogCalls = map[string]map[string]bool{
	"fmt": {"Print": true, "Printf": true, "Println": true},
	"log": {
		"Print": true, "Printf": true, "Println": true,
		"Fatal": true, "Fatalf": true, "Fatalln": true,
		"Panic": true, "Panicf": true, "Panicln": true,
	},
}

// runNoStdLog flags fmt.Print*/log.Print* (and log.Fatal*/Panic*) in
// library packages. Commands own their process and may print; library
// and server code runs embedded in kmserved, where ad-hoc writes to
// stdout corrupt machine-readable output and bypass the structured
// log stream. Such code must log through an injected *slog.Logger
// (server.Config.Logger) or write to a caller-supplied io.Writer.
func runNoStdLog(p *Package) []Finding {
	if p.Name == "main" {
		return nil
	}
	var out []Finding
	funcBodies(p.Files, func(body *ast.BlockStmt) {
		inspectShallow(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			// The print/println builtins are the sneakiest variant: no
			// import to grep for, bootstrap-only semantics, straight to
			// stderr.
			if id, ok := call.Fun.(*ast.Ident); ok {
				if b, ok := p.Info.Uses[id].(*types.Builtin); ok &&
					(b.Name() == "print" || b.Name() == "println") {
					out = append(out, p.finding(call.Pos(), "nostdlog",
						"builtin %s writes to stderr from library code; use an injected *slog.Logger or a caller-supplied io.Writer",
						b.Name()))
					return true
				}
			}
			fn := calleeFunc(p, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			banned := stdlogCalls[fn.Pkg().Path()]
			if banned == nil || !banned[fn.Name()] {
				return true
			}
			if fn.Signature().Recv() != nil {
				return true // a method like (*log.Logger).Printf targets an explicit sink
			}
			out = append(out, p.finding(call.Pos(), "nostdlog",
				"%s.%s writes to process-global output from library code; use an injected *slog.Logger or a caller-supplied io.Writer",
				fn.Pkg().Name(), fn.Name()))
			return true
		})
	})
	return out
}
