package analyze

import (
	"go/token"
	"strings"
)

// The //kmvet:ignore escape hatch: a comment of the form
//
//	//kmvet:ignore <rule> <reason>
//
// suppresses findings of <rule> on the same line or the line
// immediately below it in the same file. The reason is mandatory — a
// suppression without a justification is itself an error — and every
// directive must actually suppress something: stale ignores surface as
// `unusedignore` findings so suppressions can't outlive the code they
// excused. Directives naming a rule that is disabled for this run are
// exempt from the unused check (the finding they suppress isn't being
// computed).

const ignorePrefix = "//kmvet:ignore"

// ignoreDirective is one parsed //kmvet:ignore comment.
type ignoreDirective struct {
	p      *Package
	file   string
	line   int // line the comment is on; applies to line and line+1
	rule   string
	reason string
	pos    token.Pos
	used   bool
}

// collectIgnores parses every //kmvet:ignore directive in the package,
// reporting malformed ones (missing rule or reason) as findings.
func collectIgnores(p *Package) (dirs []*ignoreDirective, malformed []Finding) {
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					malformed = append(malformed, p.finding(c.Pos(), "unusedignore",
						"malformed %s directive: want //kmvet:ignore <rule> <reason>", ignorePrefix))
					continue
				}
				pos := p.Fset.Position(c.Pos())
				dirs = append(dirs, &ignoreDirective{
					p:      p,
					file:   pos.Filename,
					line:   pos.Line,
					rule:   fields[0],
					reason: strings.Join(fields[1:], " "),
					pos:    c.Pos(),
				})
			}
		}
	}
	return dirs, malformed
}

// applyIgnores filters findings through the module's ignore directives
// and appends an `unusedignore` finding for every directive that
// suppressed nothing (unless its rule is not in enabled). enabled is
// the set of rule names this run computed; nil means all.
func (m *Module) applyIgnores(findings []Finding, enabled map[string]bool) []Finding {
	var dirs []*ignoreDirective
	var out []Finding
	for _, p := range m.Packages {
		d, malformed := collectIgnores(p)
		dirs = append(dirs, d...)
		out = append(out, malformed...)
	}
	byKey := make(map[string][]*ignoreDirective)
	for _, d := range dirs {
		byKey[d.file+"\x00"+d.rule] = append(byKey[d.file+"\x00"+d.rule], d)
	}
	for _, f := range findings {
		suppressed := false
		for _, d := range byKey[f.Pos.Filename+"\x00"+f.Rule] {
			if f.Pos.Line == d.line || f.Pos.Line == d.line+1 {
				d.used = true
				suppressed = true
			}
		}
		if !suppressed {
			out = append(out, f)
		}
	}
	for _, d := range dirs {
		if d.used {
			continue
		}
		if enabled != nil && !enabled[d.rule] {
			continue // its rule didn't run; can't know if it's stale
		}
		out = append(out, Finding{
			Pos:     d.p.Fset.Position(d.pos),
			Rule:    "unusedignore",
			Message: "//kmvet:ignore " + d.rule + " suppresses nothing here; remove the stale directive",
		})
	}
	return out
}
