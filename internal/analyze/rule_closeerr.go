package analyze

import (
	"go/ast"
	"go/types"
)

// closeerr: on save paths, the error from Close/Flush/Sync is the
// write: a full disk or failed flush surfaces *there*, after every
// Write call happily buffered into oblivion. Dropping it means
// reporting success over a truncated index file.
//
// The rule tracks variables bound to os.Create / os.CreateTemp /
// os.OpenFile / bufio.NewWriter results within each function and flags:
//
//   - `f.Close()` / `w.Flush()` / `f.Sync()` as a bare statement,
//   - `defer f.Close()` (the deferred error is silently discarded),
//   - `_ = f.Close()` (an explicit discard still hides the failure).
//
// Compliant forms capture the error (`if err := f.Close(); err != nil`,
// `cerr := w.Flush()`, `return f.Close()`) or annotate a deliberate
// discard with //kmvet:ignore closeerr <reason> — the error-path
// `f.Close()` after a failed write is the typical annotated case.
// Read-path files (os.Open) are out of scope: their Close error is
// inert.

// closeSources are the constructors whose results carry a must-check
// Close/Flush/Sync obligation.
var closeSources = map[string]bool{
	"os.Create":           true,
	"os.CreateTemp":       true,
	"os.OpenFile":         true,
	"bufio.NewWriter":     true,
	"bufio.NewWriterSize": true,
}

var closeMethods = map[string]bool{
	"Close": true,
	"Flush": true,
	"Sync":  true,
}

func runCloseErr(p *Package) []Finding {
	var out []Finding
	funcBodies(p.Files, func(body *ast.BlockStmt) {
		out = append(out, closeErrInBody(p, body)...)
	})
	return out
}

func closeErrInBody(p *Package, body *ast.BlockStmt) []Finding {
	// Pass 1: variables assigned from a close-source constructor.
	tracked := make(map[types.Object]bool)
	track := func(lhs []ast.Expr, rhs []ast.Expr) {
		srcAt := func(e ast.Expr) bool {
			call, ok := ast.Unparen(e).(*ast.CallExpr)
			if !ok {
				return false
			}
			fn := calleeFunc(p, call)
			return fn != nil && closeSources[fn.FullName()]
		}
		// f, err := os.Create(...) — one call, first LHS is the value.
		if len(rhs) == 1 && srcAt(rhs[0]) {
			if id, ok := ast.Unparen(lhs[0]).(*ast.Ident); ok {
				if obj := p.Info.Defs[id]; obj != nil {
					tracked[obj] = true
				} else if obj := p.Info.Uses[id]; obj != nil {
					tracked[obj] = true
				}
			}
			return
		}
		for i, r := range rhs {
			if i < len(lhs) && srcAt(r) {
				if id, ok := ast.Unparen(lhs[i]).(*ast.Ident); ok {
					if obj := p.Info.Defs[id]; obj != nil {
						tracked[obj] = true
					} else if obj := p.Info.Uses[id]; obj != nil {
						tracked[obj] = true
					}
				}
			}
		}
	}
	inspectShallow(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			track(x.Lhs, x.Rhs)
		case *ast.ValueSpec:
			lhs := make([]ast.Expr, len(x.Names))
			for i, id := range x.Names {
				lhs[i] = id
			}
			track(lhs, x.Values)
		}
		return true
	})
	if len(tracked) == 0 {
		return nil
	}

	// trackedClose returns the "f.Close" label when call is a
	// Close/Flush/Sync on a tracked variable.
	trackedClose := func(call *ast.CallExpr) (string, bool) {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || !closeMethods[sel.Sel.Name] {
			return "", false
		}
		id, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok {
			return "", false
		}
		obj := p.Info.Uses[id]
		if obj == nil || !tracked[obj] {
			return "", false
		}
		return id.Name + "." + sel.Sel.Name, true
	}

	// Pass 2: dropped-error sites.
	var out []Finding
	report := func(pos ast.Node, label, how string) Finding {
		return p.finding(pos.Pos(), "closeerr",
			"error from %s %s: on save paths Close/Flush/Sync is where write failures surface; check it or annotate //kmvet:ignore closeerr <reason>",
			label, how)
	}
	inspectShallow(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ExprStmt:
			if call, ok := x.X.(*ast.CallExpr); ok {
				if label, ok := trackedClose(call); ok {
					out = append(out, report(x, label, "is dropped"))
				}
			}
		case *ast.DeferStmt:
			if label, ok := trackedClose(x.Call); ok {
				out = append(out, report(x, label, "is discarded by a bare defer (capture it in a named-return closure instead)"))
			}
		case *ast.AssignStmt:
			if len(x.Lhs) == 1 && len(x.Rhs) == 1 {
				if id, ok := x.Lhs[0].(*ast.Ident); ok && id.Name == "_" {
					if call, ok := ast.Unparen(x.Rhs[0]).(*ast.CallExpr); ok {
						if label, ok := trackedClose(call); ok {
							out = append(out, report(x, label, "is blanked away"))
						}
					}
				}
			}
		}
		return true
	})
	return out
}
