package analyze

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// loadPathPackages are the packages whose Load*/Read*/Open* functions
// constitute "index load paths" for the wrapformat rule. All already
// return errors matchable as a package sentinel (ErrFormat, or
// cluster's ErrRoutes); the rule enforces that callers re-wrap with %w
// (adding context, preserving the chain) instead of returning the
// error bare.
var loadPathPackages = map[string]bool{
	"bwtmatch":                  true,
	"bwtmatch/internal/fmindex": true,
	"bwtmatch/internal/shard":   true,
	"bwtmatch/server/cluster":   true,
}

// isLoadPathCall reports whether call invokes a load-path function, and
// if so returns a printable callee name.
func isLoadPathCall(p *Package, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(p, call)
	if fn == nil || fn.Pkg() == nil || !loadPathPackages[fn.Pkg().Path()] {
		return "", false
	}
	// Open* covers the streaming append path (bwtmatch.OpenAppend); the
	// package allowlist above keeps os.Open and friends out of scope.
	name := fn.Name()
	for _, prefix := range []string{"Load", "Read", "Open"} {
		if strings.HasPrefix(name, prefix) {
			return fn.Pkg().Name() + "." + name, true
		}
	}
	return "", false
}

// runWrapFormat flags `return ..., err` where err was produced by an
// index load-path call and reaches the return untouched. The fix is
// fmt.Errorf("<context>: %w", err): callers still match ErrFormat via
// errors.Is, and the failing layer stays identifiable.
func runWrapFormat(p *Package) []Finding {
	var out []Finding
	funcBodies(p.Files, func(body *ast.BlockStmt) {
		// Pass 1: error variables assigned from load-path calls.
		errVars := make(map[types.Object]string)
		inspectShallow(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Rhs) != 1 {
				return true
			}
			call, ok := as.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			callee, ok := isLoadPathCall(p, call)
			if !ok {
				return true
			}
			for _, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := p.Info.Defs[id]
				if obj == nil && as.Tok == token.ASSIGN {
					obj = p.Info.Uses[id]
				}
				if obj != nil && isErrorType(obj.Type()) {
					errVars[obj] = callee
				}
			}
			return true
		})
		if len(errVars) == 0 {
			return
		}
		// Pass 2: returns handing one of those variables back bare.
		inspectShallow(body, func(n ast.Node) bool {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok {
				return true
			}
			for _, res := range ret.Results {
				id, ok := ast.Unparen(res).(*ast.Ident)
				if !ok {
					continue
				}
				obj := p.Info.Uses[id]
				if obj == nil {
					continue
				}
				if callee, hit := errVars[obj]; hit {
					out = append(out, p.finding(id.Pos(), "wrapformat",
						"error from %s returned bare; wrap it with fmt.Errorf(\"<context>: %%w\", err) so the ErrFormat chain carries context", callee))
				}
			}
			return true
		})
	})
	return out
}
