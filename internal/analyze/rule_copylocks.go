package analyze

import (
	"go/ast"
	"go/types"
)

// runCopyLocks flags value copies of types that (transitively) contain
// a sync.Mutex or sync.RWMutex: by-value parameters, results and
// receivers; assignments and var initializers whose right side is an
// existing value (not a fresh composite literal or call result); call
// arguments; and range clauses that copy lock-bearing elements.
//
// This overlaps go vet's copylocks on purpose — kmvet runs it over the
// whole module including build configurations vet may skip, and the
// index registry/server structs are exactly the concurrently-mutated
// state where a silent lock copy turns into a production bug.
func runCopyLocks(p *Package) []Finding {
	var out []Finding
	report := func(pos ast.Node, what string, t types.Type) {
		out = append(out, p.finding(pos.Pos(), "copylocks",
			"%s copies %s, which contains sync.%s; use a pointer", what, types.TypeString(t, types.RelativeTo(p.Types)), lockIn(t)))
	}

	// Signatures: params, results, receivers declared by value.
	checkFieldList := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			tv, ok := p.Info.Types[field.Type]
			if !ok {
				continue
			}
			if lockIn(tv.Type) != "" {
				report(field.Type, what, tv.Type)
			}
		}
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				checkFieldList(fn.Recv, "receiver")
				checkFieldList(fn.Type.Params, "parameter")
				checkFieldList(fn.Type.Results, "result")
			case *ast.FuncLit:
				checkFieldList(fn.Type.Params, "parameter")
				checkFieldList(fn.Type.Results, "result")
			}
			return true
		})
	}

	// Statements and expressions.
	funcBodies(p.Files, func(body *ast.BlockStmt) {
		inspectShallow(body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				if len(st.Lhs) == len(st.Rhs) {
					for _, rhs := range st.Rhs {
						if t := copiedLockType(p, rhs); t != nil {
							report(rhs, "assignment", t)
						}
					}
				}
			case *ast.ValueSpec:
				for _, v := range st.Values {
					if t := copiedLockType(p, v); t != nil {
						report(v, "variable initializer", t)
					}
				}
			case *ast.CallExpr:
				for _, arg := range st.Args {
					if t := copiedLockType(p, arg); t != nil {
						report(arg, "call argument", t)
					}
				}
			case *ast.RangeStmt:
				for _, v := range []ast.Expr{st.Key, st.Value} {
					if v == nil {
						continue
					}
					id, ok := v.(*ast.Ident)
					if !ok || id.Name == "_" {
						continue
					}
					obj := p.Info.Defs[id]
					if obj == nil {
						obj = p.Info.Uses[id]
					}
					if obj != nil && lockIn(obj.Type()) != "" {
						report(v, "range clause", obj.Type())
					}
				}
			}
			return true
		})
	})
	return out
}

// copiedLockType returns the lock-containing type of expr if evaluating
// it copies an existing value — a variable, field, dereference or index
// — and nil otherwise (composite literals and call results are fresh
// values, flagged at their own declaration sites instead).
func copiedLockType(p *Package, expr ast.Expr) types.Type {
	switch ast.Unparen(expr).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
	default:
		return nil
	}
	tv, ok := p.Info.Types[expr]
	if !ok || tv.Type == nil {
		return nil
	}
	// A selector resolving to a package-qualified function/type is not a
	// value copy.
	if !tv.IsValue() {
		return nil
	}
	if lockIn(tv.Type) == "" {
		return nil
	}
	return tv.Type
}

// lockIn reports which sync lock t transitively contains by value
// ("Mutex", "RWMutex"), or "" if none. Pointers, slices, maps and
// channels stop the recursion: sharing those is fine.
func lockIn(t types.Type) string {
	return lockInRec(t, make(map[types.Type]bool))
}

func lockInRec(t types.Type, seen map[types.Type]bool) string {
	if t == nil || seen[t] {
		return ""
	}
	seen[t] = true
	switch tt := t.(type) {
	case *types.Named:
		obj := tt.Obj()
		if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			if obj.Name() == "Mutex" || obj.Name() == "RWMutex" {
				return obj.Name()
			}
		}
		return lockInRec(tt.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < tt.NumFields(); i++ {
			if lock := lockInRec(tt.Field(i).Type(), seen); lock != "" {
				return lock
			}
		}
	case *types.Array:
		return lockInRec(tt.Elem(), seen)
	}
	return ""
}
