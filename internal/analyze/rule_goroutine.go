package analyze

import (
	"go/ast"
	"go/types"
)

// goroutinelifecycle: every `go` statement in a library (non-main)
// package must be tied to a join or a context bound:
//
//   - a launched literal whose body calls (*sync.WaitGroup).Done (the
//     Add/Done/Wait join discipline), or
//   - a launched literal that observes a context.Context (so drains and
//     shutdowns can stop its loop), or
//   - a named callee handed a context.Context or *sync.WaitGroup
//     argument.
//
// Anything else is fire-and-forget: it outlives Shutdown, races test
// teardown, and leaks under churn. Deliberate detachment needs a
// //kmvet:ignore goroutinelifecycle <reason> annotation.

func runGoroutineLifecycle(p *Package) []Finding {
	if p.Name == "main" {
		return nil
	}
	var out []Finding
	funcBodies(p.Files, func(body *ast.BlockStmt) {
		inspectShallow(body, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !goStmtBounded(p, g) {
				out = append(out, p.finding(g.Pos(), "goroutinelifecycle",
					"goroutine is neither joined nor ctx-bounded: tie it to a sync.WaitGroup (Add/Done/Wait) or have it observe a context.Context"))
			}
			return true
		})
	})
	return out
}

// goStmtBounded reports whether the go statement satisfies the
// lifecycle discipline.
func goStmtBounded(p *Package, g *ast.GoStmt) bool {
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		return litBounded(p, lit)
	}
	// Named (or value) callee: a context or WaitGroup argument means
	// the callee can bound or signal itself.
	for _, arg := range g.Call.Args {
		if tv, ok := p.Info.Types[arg]; ok {
			if isContextType(tv.Type) || isWaitGroupPtr(tv.Type) {
				return true
			}
		}
	}
	return false
}

// litBounded scans a launched literal's body (nested literals included:
// a worker that defers wg.Done inside a helper closure still counts)
// for a WaitGroup.Done call or any use of a context.Context value.
func litBounded(p *Package, lit *ast.FuncLit) bool {
	bounded := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if bounded {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			// Done is the join half of the Add/Done/Wait discipline.
			// Wait deliberately does NOT count: a `go func() {
			// wg.Wait(); ... }()` waiter is itself detached — it
			// outlives a ctx-aborted shutdown.
			if fn := calleeFunc(p, x); fn != nil && fn.FullName() == "(*sync.WaitGroup).Done" {
				bounded = true
				return false
			}
		case *ast.Ident:
			if obj := p.Info.Uses[x]; obj != nil && isContextType(obj.Type()) {
				bounded = true
				return false
			}
		case *ast.SelectorExpr:
			if tv, ok := p.Info.Types[x]; ok && isContextType(tv.Type) {
				bounded = true
				return false
			}
		}
		return true
	})
	return bounded
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isWaitGroupPtr reports whether t is *sync.WaitGroup.
func isWaitGroupPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}
