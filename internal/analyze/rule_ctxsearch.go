package analyze

import (
	"go/ast"
)

// runCtxSearch flags calls to (*bwtmatch.Index).MapAll outside the root
// bwtmatch package. MapAll is the context-free convenience wrapper the
// library keeps for its own API surface; every other layer — server
// handlers above all — must call MapAllContext with the caller's
// context so shutdown drains, request deadlines and client
// cancellations propagate into the batch instead of leaving orphaned
// worker goroutines grinding through dead queries.
func runCtxSearch(p *Package) []Finding {
	if p.Types.Path() == "bwtmatch" {
		return nil // the defining package implements MapAll itself
	}
	var out []Finding
	funcBodies(p.Files, func(body *ast.BlockStmt) {
		inspectShallow(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p, call)
			if fn == nil || fn.Name() != "MapAll" || fn.Pkg() == nil || fn.Pkg().Path() != "bwtmatch" {
				return true
			}
			out = append(out, p.finding(call.Pos(), "ctxsearch",
				"bare (*Index).MapAll ignores cancellation; call MapAllContext and thread the caller's context"))
			return true
		})
	})
	return out
}
