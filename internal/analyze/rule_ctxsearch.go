package analyze

import (
	"go/ast"
)

// ctxFreeSearch maps the context-free batch-search conveniences to the
// context-threading replacement each caller outside bwtmatch must use.
var ctxFreeSearch = map[string]string{
	"MapAll":    "MapAllContext",
	"MapShards": "MapShardsContext",
}

// runCtxSearch flags calls to the context-free batch searches (MapAll,
// MapShards) outside the root bwtmatch package. They are convenience
// wrappers the library keeps for its own API surface; every other
// layer — server handlers and the cluster tier above all — must call
// the *Context variant with the caller's context so shutdown drains,
// request deadlines and client cancellations propagate into the batch
// instead of leaving orphaned worker goroutines grinding through dead
// queries.
func runCtxSearch(p *Package) []Finding {
	if p.Types.Path() == "bwtmatch" {
		return nil // the defining package implements the wrappers itself
	}
	var out []Finding
	funcBodies(p.Files, func(body *ast.BlockStmt) {
		inspectShallow(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "bwtmatch" {
				return true
			}
			repl, hit := ctxFreeSearch[fn.Name()]
			if !hit {
				return true
			}
			out = append(out, p.finding(call.Pos(), "ctxsearch",
				"bare %s ignores cancellation; call %s and thread the caller's context", fn.Name(), repl))
			return true
		})
	})
	return out
}
