package analyze

import (
	"go/ast"
	"go/token"
	"go/types"
)

// lockheld: no blocking operation may be reachable while a sync.Mutex
// or sync.RWMutex is held. "Blocking" means a primitive channel
// operation (send, receive, range over a channel, select without
// default), a known-blocking external call (WaitGroup/Cond Wait,
// net/http round-trips, net dials, time.Sleep, os/exec waits), or —
// transitively — any module function from which one of those is
// reachable without crossing a `go` launch (the spawned goroutine
// blocks, not the caller).
//
// Lock regions are detected flatly within each function body: a
// Lock/RLock call opens a region for its receiver expression that ends
// at the earliest matching non-deferred Unlock/RUnlock, or at the end
// of the body when the unlock is deferred. Code inside go-launched
// literals runs on its own stack and is excluded; nested non-go
// literals are scanned as their own contexts (their locks are their
// own) but calls inside them still count against an enclosing region
// only when the literal is invoked in place — to stay tractable the
// rule treats every nested literal as a separate context and relies on
// the call graph for what the region's *calls* can reach.

// extBlocking maps known-blocking external functions to a short reason.
var extBlocking = map[string]string{
	"(*sync.WaitGroup).Wait":                   "waits on a sync.WaitGroup",
	"(*sync.Cond).Wait":                        "waits on a sync.Cond",
	"time.Sleep":                               "sleeps",
	"(*net/http.Client).Do":                    "performs an HTTP round-trip",
	"(*net/http.Client).Get":                   "performs an HTTP round-trip",
	"(*net/http.Client).Post":                  "performs an HTTP round-trip",
	"(*net/http.Client).PostForm":              "performs an HTTP round-trip",
	"(*net/http.Client).Head":                  "performs an HTTP round-trip",
	"net/http.Get":                             "performs an HTTP round-trip",
	"net/http.Post":                            "performs an HTTP round-trip",
	"net/http.PostForm":                        "performs an HTTP round-trip",
	"net/http.Head":                            "performs an HTTP round-trip",
	"net.Dial":                                 "dials the network",
	"net.DialTimeout":                          "dials the network",
	"net.Listen":                               "listens on the network",
	"(*net.Dialer).Dial":                       "dials the network",
	"(*net.Dialer).DialContext":                "dials the network",
	"(*os/exec.Cmd).Run":                       "waits on a subprocess",
	"(*os/exec.Cmd).Wait":                      "waits on a subprocess",
	"(*os/exec.Cmd).Output":                    "waits on a subprocess",
	"(*os/exec.Cmd).CombinedOutput":            "waits on a subprocess",
	"(*golang.org/x/sync/errgroup.Group).Wait": "waits on an errgroup",
}

// lock method FullNames; read marks the RLock/RUnlock pair.
type lockMethod struct {
	lock, read bool
}

var lockMethods = map[string]lockMethod{
	"(*sync.Mutex).Lock":      {lock: true},
	"(*sync.Mutex).Unlock":    {},
	"(*sync.RWMutex).Lock":    {lock: true},
	"(*sync.RWMutex).Unlock":  {},
	"(*sync.RWMutex).RLock":   {lock: true, read: true},
	"(*sync.RWMutex).RUnlock": {read: true},
}

// blockInfo explains why a node is (transitively) blocking.
type blockInfo struct {
	reason string
}

// blockingNodes computes, for every call-graph node, whether calling it
// can block, with a human-readable reason. Propagation follows reverse
// edges and never crosses ViaGo edges.
func blockingNodes(g *CallGraph) map[*Node]blockInfo {
	out := make(map[*Node]blockInfo)
	var frontier []*Node
	for _, n := range g.Nodes {
		var reason string
		for _, op := range n.chanOps {
			if !op.viaGo {
				reason = op.what
				break
			}
		}
		if reason == "" {
			for _, e := range n.exts {
				if r, ok := extBlocking[e.id]; ok && !e.viaGo {
					reason = r
					break
				}
			}
		}
		if reason != "" {
			out[n] = blockInfo{reason: reason}
			frontier = append(frontier, n)
		}
	}
	for len(frontier) > 0 {
		n := frontier[0]
		frontier = frontier[1:]
		for _, e := range n.In {
			if e.ViaGo {
				continue
			}
			if _, ok := out[e.From]; ok {
				continue
			}
			out[e.From] = blockInfo{reason: "calls " + n.Fn.Name() + ", which " + out[n].reason}
			frontier = append(frontier, e.From)
		}
	}
	return out
}

func runLockHeld(m *Module) []Finding {
	blocking := blockingNodes(m.Graph)
	var out []Finding
	for _, n := range m.Graph.Nodes {
		out = append(out, lockHeldInFunc(n, blocking)...)
	}
	return out
}

// lockRegion is one held-lock span within a body context.
type lockRegion struct {
	recv  string // receiver expression, e.g. "s.mu"
	read  bool
	start token.Pos
	end   token.Pos
}

// lockHeldInFunc scans every body context of one declaration (the
// function body plus each nested non-go literal) for lock regions and
// reports blocking operations inside them.
func lockHeldInFunc(n *Node, blocking map[*Node]blockInfo) []Finding {
	var out []Finding
	var contexts []*ast.BlockStmt
	contexts = append(contexts, n.Decl.Body)
	ast.Inspect(n.Decl.Body, func(c ast.Node) bool {
		if lit, ok := c.(*ast.FuncLit); ok {
			contexts = append(contexts, lit.Body)
		}
		return true
	})
	for _, body := range contexts {
		out = append(out, lockHeldInContext(n, body, blocking)...)
	}
	return out
}

// ctxEvent is a lock/unlock call found in one body context.
type ctxEvent struct {
	pos      token.Pos
	recv     string
	lock     bool
	read     bool
	deferred bool
}

// ctxBlocker is a potentially blocking site found in one body context.
type ctxBlocker struct {
	pos  token.Pos
	what string
}

func lockHeldInContext(n *Node, body *ast.BlockStmt, blocking map[*Node]blockInfo) []Finding {
	p := n.Pkg
	var events []ctxEvent
	var blockers []ctxBlocker

	var scan func(node ast.Node, inDefer bool)
	scan = func(node ast.Node, inDefer bool) {
		ast.Inspect(node, func(c ast.Node) bool {
			if c == nil {
				return true
			}
			switch x := c.(type) {
			case *ast.FuncLit:
				return false // its own context
			case *ast.GoStmt:
				// Runs on another stack; its callee matters for the
				// goroutine's own locks, not this region.
				return false
			case *ast.DeferStmt:
				if ev, ok := lockEventOf(p, x.Call, true); ok {
					events = append(events, ev)
					return false
				}
				// A deferred call runs at function exit, after the
				// deferred unlocks stacked above it — its body is not
				// a blocker for this region, but its arguments are
				// evaluated here and now.
				for _, a := range x.Call.Args {
					scan(a, false)
				}
				return false
			case *ast.CallExpr:
				if ev, ok := lockEventOf(p, x, inDefer); ok {
					events = append(events, ev)
					return true
				}
				if what, ok := callBlocks(p, x, blocking); ok {
					blockers = append(blockers, ctxBlocker{pos: x.Pos(), what: what})
				}
				return true
			case *ast.SendStmt:
				blockers = append(blockers, ctxBlocker{pos: x.Pos(), what: "channel send"})
			case *ast.UnaryExpr:
				if x.Op == token.ARROW {
					blockers = append(blockers, ctxBlocker{pos: x.Pos(), what: "channel receive"})
				}
			case *ast.RangeStmt:
				if tv, ok := p.Info.Types[x.X]; ok {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						blockers = append(blockers, ctxBlocker{pos: x.Pos(), what: "range over channel"})
					}
				}
			case *ast.SelectStmt:
				hasDefault := false
				for _, cc := range x.Body.List {
					if c, ok := cc.(*ast.CommClause); ok && c.Comm == nil {
						hasDefault = true
					}
				}
				if !hasDefault {
					blockers = append(blockers, ctxBlocker{pos: x.Pos(), what: "select without default"})
				}
				// Comm-clause channel ops belong to the select; bodies
				// and call operands still get scanned.
				for _, cc := range x.Body.List {
					c, ok := cc.(*ast.CommClause)
					if !ok {
						continue
					}
					if c.Comm != nil {
						ast.Inspect(c.Comm, func(cn ast.Node) bool {
							if call, ok := cn.(*ast.CallExpr); ok {
								scan(call, inDefer)
								return false
							}
							_, isLit := cn.(*ast.FuncLit)
							return !isLit
						})
					}
					for _, s := range c.Body {
						scan(s, inDefer)
					}
				}
				return false
			}
			return true
		})
	}
	scan(body, false)

	if len(events) == 0 || len(blockers) == 0 {
		return nil
	}

	// Build regions: each Lock opens at its position and closes at the
	// earliest later matching non-deferred unlock, else end of body.
	var regions []lockRegion
	for _, ev := range events {
		if !ev.lock || ev.deferred {
			continue
		}
		end := body.End()
		for _, un := range events {
			if un.lock || un.deferred || un.recv != ev.recv || un.read != ev.read {
				continue
			}
			if un.pos > ev.pos && un.pos < end {
				end = un.pos
			}
		}
		regions = append(regions, lockRegion{recv: ev.recv, read: ev.read, start: ev.pos, end: end})
	}

	var out []Finding
	for _, r := range regions {
		for _, bl := range blockers {
			if bl.pos > r.start && bl.pos < r.end {
				kind := "Lock"
				if r.read {
					kind = "RLock"
				}
				out = append(out, p.finding(bl.pos, "lockheld",
					"%s while %s.%s is held (acquired at line %d): blocking under a mutex stalls every other path through it",
					bl.what, r.recv, kind, p.Fset.Position(r.start).Line))
			}
		}
	}
	return out
}

// lockEventOf recognizes mutex Lock/Unlock family calls.
func lockEventOf(p *Package, call *ast.CallExpr, inDefer bool) (ctxEvent, bool) {
	fn := calleeFunc(p, call)
	if fn == nil {
		return ctxEvent{}, false
	}
	lm, ok := lockMethods[fn.FullName()]
	if !ok {
		return ctxEvent{}, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ctxEvent{}, false
	}
	return ctxEvent{
		pos:      call.Pos(),
		recv:     types.ExprString(sel.X),
		lock:     lm.lock,
		read:     lm.read,
		deferred: inDefer,
	}, true
}

// callBlocks reports whether a (non-lock-method) call can block,
// resolving through the call graph: module callees use the transitive
// blocking set, external callees the known-blocking list, interface
// calls any compatible blocking method. Unresolved dynamic calls are
// not treated as blocking (documented imprecision).
func callBlocks(p *Package, call *ast.CallExpr, blocking map[*Node]blockInfo) (string, bool) {
	ct := classifyCall(p, call)
	switch {
	case ct.isConv || ct.builtin != "":
		return "", false
	case ct.kind == EdgeStatic && ct.fn != nil:
		id := funcID(ct.fn)
		if r, ok := extBlocking[id]; ok {
			return "call to " + ct.fn.Name() + ", which " + r, true
		}
		// Module callee? The blocking map is keyed by node; find it.
		for n, info := range blocking {
			if n.ID == id {
				return "call to " + ct.fn.Name() + ", which " + info.reason, true
			}
		}
	case ct.kind == EdgeIface && ct.fn != nil:
		key := sigKey(ct.fn.Signature())
		for n, info := range blocking {
			if n.IsMethod() && n.Fn.Name() == ct.fn.Name() && sigKey(n.Fn.Signature()) == key {
				return "interface call that may dispatch to " + n.Fn.Name() + ", which " + info.reason, true
			}
		}
	}
	return "", false
}
