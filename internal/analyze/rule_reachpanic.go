package analyze

import (
	"strings"
)

// reachpanic: the old nopanic rule flags direct panics in library
// packages; this rule closes the loophole where a library function
// *reaches* a panic through a module-local call chain (helper in
// another package, interface dispatch onto a panicking method, a
// function value). In a request-serving fleet one panicking helper
// takes down every in-flight batch on the process.
//
// Carve-outs, matching nopanic's philosophy:
//   - panics inside invariants*.go files are assertions and never count
//     as sources;
//   - Must*-prefixed helpers are documented panic-on-misuse wrappers:
//     they are not themselves reported (their contract is the panic),
//     but calling one from library code is — the caller chose the
//     panicking form;
//   - main packages may panic (top-level tooling), so neither their
//     panics' callers inside main nor main functions themselves are
//     reported — but a panic in main cannot be reached from a library
//     package anyway.
//
// Functions that panic directly are nopanic's findings, not ours: this
// rule reports only the *indirect* reachers, once per function, at the
// call that enters the panicking chain, with the chain in the message.
// Reachability follows every edge kind, go-launched calls included — a
// goroutine panic still crashes the process.

func runReachPanic(m *Module) []Finding {
	g := m.Graph
	direct := func(n *Node) bool { return len(n.panics) > 0 }
	via := g.reachers(direct, false /* go edges count */)
	var out []Finding
	for n, e := range via {
		if n.Pkg.Name == "main" {
			continue
		}
		if direct(n) {
			continue // nopanic's territory
		}
		if n.invariantsFile {
			continue
		}
		if strings.HasPrefix(n.Fn.Name(), "Must") {
			continue
		}
		chain := chainTo(n, via, direct)
		out = append(out, n.Pkg.finding(e.Pos, "reachpanic",
			"call chain reaches a panic: %s; return an error instead (or move the assertion into an invariants*.go file)", chain))
	}
	return out
}
