package analyze_test

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"reflect"
	"testing"

	"bwtmatch/internal/analyze"
)

// TestJSONRoundTrip pins the -json wire schema: it writes a report for
// a fixture with real findings, checks the exact key set at both
// levels against the documented schema, and round-trips the document
// back through the typed structs without loss.
func TestJSONRoundTrip(t *testing.T) {
	a := analyzer(t)
	dir, err := filepath.Abs(filepath.Join("testdata", "badcloseerr"))
	if err != nil {
		t.Fatal(err)
	}
	findings, err := a.CheckDir(dir, "fixture/badcloseerr")
	if err != nil {
		t.Fatalf("CheckDir: %v", err)
	}
	if len(findings) == 0 {
		t.Fatal("fixture produced no findings; the round-trip needs some")
	}

	var buf bytes.Buffer
	rules := analyze.RuleNames()
	if err := analyze.WriteJSON(&buf, "bwtmatch", rules, findings); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}

	// Schema check: exact keys, via an untyped decode so renamed or
	// added fields fail loudly.
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatalf("report is not a JSON object: %v", err)
	}
	wantTop := []string{"module", "rules", "findings"}
	if len(raw) != len(wantTop) {
		t.Errorf("top-level has %d keys, want %d", len(raw), len(wantTop))
	}
	for _, k := range wantTop {
		if _, ok := raw[k]; !ok {
			t.Errorf("top-level key %q missing", k)
		}
	}
	var rawFindings []map[string]json.RawMessage
	if err := json.Unmarshal(raw["findings"], &rawFindings); err != nil {
		t.Fatalf("findings is not an array of objects: %v", err)
	}
	wantKeys := []string{"file", "line", "column", "rule", "message"}
	for i, rf := range rawFindings {
		if len(rf) != len(wantKeys) {
			t.Errorf("finding %d has %d keys, want %d", i, len(rf), len(wantKeys))
		}
		for _, k := range wantKeys {
			if _, ok := rf[k]; !ok {
				t.Errorf("finding %d: key %q missing", i, k)
			}
		}
	}

	// Round trip: the typed decode must reproduce the input exactly.
	var rep analyze.JSONReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("typed decode: %v", err)
	}
	if rep.Module != "bwtmatch" {
		t.Errorf("module = %q, want bwtmatch", rep.Module)
	}
	if !reflect.DeepEqual(rep.Rules, rules) {
		t.Errorf("rules = %v, want %v", rep.Rules, rules)
	}
	if !reflect.DeepEqual(rep.Findings, analyze.ToJSON(findings)) {
		t.Errorf("findings did not round-trip:\n got %+v\nwant %+v", rep.Findings, analyze.ToJSON(findings))
	}

	// Every reported rule is either a catalogue rule or the
	// unusedignore pseudo-rule emitted by the annotation checker.
	known := map[string]bool{"unusedignore": true}
	for _, r := range rules {
		known[r] = true
	}
	for _, f := range rep.Findings {
		if !known[f.Rule] {
			t.Errorf("finding reports unknown rule %q", f.Rule)
		}
	}
}
