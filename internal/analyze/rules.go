package analyze

import (
	"go/ast"
	"go/types"
)

// Rule is one kmvet check. Run sees the whole module (packages plus
// the call graph), so rules may be intraprocedural (walk one package at
// a time via perPackage) or interprocedural (walk Graph).
type Rule struct {
	Name string
	Doc  string
	Run  func(m *Module) []Finding
}

// perPackage lifts a per-package checker into the module-rule shape.
func perPackage(run func(p *Package) []Finding) func(m *Module) []Finding {
	return func(m *Module) []Finding {
		var out []Finding
		for _, p := range m.Packages {
			out = append(out, run(p)...)
		}
		return out
	}
}

// Rules returns every registered rule in reporting order.
func Rules() []Rule {
	return []Rule{
		{
			Name: "wrapformat",
			Doc:  "errors from index load paths (bwtmatch.Load*, fmindex.Read*, cluster.LoadRoutesFile) must be wrapped with %w before being returned, so each layer adds context and errors.Is against the sentinel (ErrFormat, ErrRoutes) keeps matching",
			Run:  perPackage(runWrapFormat),
		},
		{
			Name: "copylocks",
			Doc:  "structs containing sync.Mutex or sync.RWMutex must not be copied by value (parameters, results, receivers, assignments, call arguments, range clauses)",
			Run:  perPackage(runCopyLocks),
		},
		{
			Name: "ctxsearch",
			Doc:  "outside the root bwtmatch package, call MapAllContext/MapShardsContext with the caller's context instead of bare MapAll/MapShards, so drains and deadlines propagate into batches",
			Run:  perPackage(runCtxSearch),
		},
		{
			Name: "nopanic",
			Doc:  "no panic in library (non-main) packages; assertions belong in kminvariants-tagged invariants*.go files, everything else returns an error",
			Run:  perPackage(runNoPanic),
		},
		{
			Name: "nostdlog",
			Doc:  "no fmt.Print*/log.Print* or builtin print/println in library (non-main) packages; log through an injected *slog.Logger or write to a caller-supplied io.Writer so daemons keep one structured log stream",
			Run:  perPackage(runNoStdLog),
		},
		{
			Name: "goroutinelifecycle",
			Doc:  "every go statement in library packages must be joined (sync.WaitGroup/Done discipline) or ctx-bounded (the goroutine observes a context.Context); fire-and-forget goroutines outlive drains and leak under churn",
			Run:  perPackage(runGoroutineLifecycle),
		},
		{
			Name: "lockheld",
			Doc:  "no blocking operation (channel send/receive, select without default, WaitGroup/Cond Wait, network or HTTP round-trips, time.Sleep) may be reachable — transitively through the call graph — while a sync.Mutex/RWMutex is held",
			Run:  runLockHeld,
		},
		{
			Name: "reachpanic",
			Doc:  "library functions must not reach a panic through any module-local call chain (invariants*.go files and Must*-prefixed helpers are carve-outs); panics in a request-serving fleet take down every in-flight batch",
			Run:  runReachPanic,
		},
		{
			Name: "boundedalloc",
			Doc:  "in decode paths (internal/binio, internal/fmindex, internal/shard, server/cluster, saveload), any make/ReadSlice sized by a value read from file or network input must be dominated by a length-cap check, so corrupt inputs fail cleanly instead of alloc-bombing",
			Run:  perPackage(runBoundedAlloc),
		},
		{
			Name: "closeerr",
			Doc:  "errors from Close/Flush/Sync on save paths (os.Create files, bufio.NewWriter) must be checked, not dropped or deferred bare — a full disk otherwise reports success over a truncated index; discards need //kmvet:ignore closeerr <reason>",
			Run:  perPackage(runCloseErr),
		},
	}
}

// RuleNames returns the names of every registered rule, in order.
func RuleNames() []string {
	rs := Rules()
	names := make([]string, len(rs))
	for i, r := range rs {
		names[i] = r.Name
	}
	return names
}

// funcBodies visits every function body in the package exactly once
// (FuncDecl and FuncLit alike) — visit receives the body and must not
// descend into nested function literals itself.
func funcBodies(files []*ast.File, visit func(body *ast.BlockStmt)) {
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					visit(fn.Body)
				}
			case *ast.FuncLit:
				if fn.Body != nil {
					visit(fn.Body)
				}
			}
			return true
		})
	}
}

// inspectShallow walks body without entering nested function literals
// (they get their own funcBodies visit).
func inspectShallow(body *ast.BlockStmt, visit func(n ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return visit(n)
	})
}

// calleeFunc resolves the called function of a CallExpr to its types
// object, or nil for builtins, conversions and indirect calls.
func calleeFunc(p *Package, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return nil
	}
	fn, _ := p.Info.Uses[id].(*types.Func)
	return fn
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, errorType)
}
