package analyze

import (
	"go/ast"
	"go/types"
)

// Rule is one kmvet check.
type Rule struct {
	Name string
	Doc  string
	Run  func(p *Package) []Finding
}

// Rules returns every registered rule in reporting order.
func Rules() []Rule {
	return []Rule{
		{
			Name: "wrapformat",
			Doc:  "errors from index load paths (bwtmatch.Load*, fmindex.Read*, cluster.LoadRoutesFile) must be wrapped with %w before being returned, so each layer adds context and errors.Is against the sentinel (ErrFormat, ErrRoutes) keeps matching",
			Run:  runWrapFormat,
		},
		{
			Name: "copylocks",
			Doc:  "structs containing sync.Mutex or sync.RWMutex must not be copied by value (parameters, results, receivers, assignments, call arguments, range clauses)",
			Run:  runCopyLocks,
		},
		{
			Name: "ctxsearch",
			Doc:  "outside the root bwtmatch package, call MapAllContext/MapShardsContext with the caller's context instead of bare MapAll/MapShards, so drains and deadlines propagate into batches",
			Run:  runCtxSearch,
		},
		{
			Name: "nopanic",
			Doc:  "no panic in library (non-main) packages; assertions belong in kminvariants-tagged invariants*.go files, everything else returns an error",
			Run:  runNoPanic,
		},
		{
			Name: "nostdlog",
			Doc:  "no fmt.Print*/log.Print* in library (non-main) packages; log through an injected *slog.Logger or write to a caller-supplied io.Writer so daemons keep one structured log stream",
			Run:  runNoStdLog,
		},
	}
}

// funcBodies visits every function body in the package exactly once
// (FuncDecl and FuncLit alike) — visit receives the body and must not
// descend into nested function literals itself.
func funcBodies(files []*ast.File, visit func(body *ast.BlockStmt)) {
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					visit(fn.Body)
				}
			case *ast.FuncLit:
				if fn.Body != nil {
					visit(fn.Body)
				}
			}
			return true
		})
	}
}

// inspectShallow walks body without entering nested function literals
// (they get their own funcBodies visit).
func inspectShallow(body *ast.BlockStmt, visit func(n ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return visit(n)
	})
}

// calleeFunc resolves the called function of a CallExpr to its types
// object, or nil for builtins, conversions and indirect calls.
func calleeFunc(p *Package, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return nil
	}
	fn, _ := p.Info.Uses[id].(*types.Func)
	return fn
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, errorType)
}
