package analyze

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// boundedalloc: in decode paths, an allocation sized by a value that
// was read from file or network input must be dominated by a length
// cap check — otherwise a corrupt or hostile input with a huge length
// field alloc-bombs the process before any content validation runs.
// This machine-enforces the PR 2 hardening discipline (DESIGN.md §6).
//
// Scope: the binary-decode packages (internal/binio, internal/fmindex,
// internal/shard), the save/load files of the root package,
// server/cluster (routes/wire decoding), and internal/seqio (streamed
// sequence input for the shard builders). Fixture packages (label
// "fixture/...") are always in scope.
//
// Taint, per function, by a small fixed point:
//   - a variable passed by address to a Read-like call
//     (binary.Read(r, le, &n), read(&m.Version), io.ReadFull) is
//     tainted;
//   - a variable assigned from a Read*/Uint* call result
//     (binio.ReadUint32, binary.LittleEndian.Uint64) is tainted;
//   - assignment propagates taint through conversions and arithmetic
//     (n := int(raw); total := n * 8).
//
// Sinks: make() size/cap arguments and binio.ReadSlice length
// arguments mentioning a tainted variable. A sink is clean when every
// tainted variable it mentions appears earlier in the function inside
// an if-condition comparison (<, >, <=, >=) — both the reject form
// (`if n > maxLen { return ErrFormat }`) and the clamp form
// (`if c > chunkElems { c = chunkElems }`) qualify. Function
// parameters are never tainted: the caller validated (or is itself in
// scope and gets checked).

func boundedAllocInScope(p *Package) bool {
	if strings.HasPrefix(p.Path, "fixture/") {
		return true
	}
	switch {
	case p.Path == "bwtmatch",
		strings.HasSuffix(p.Path, "internal/binio"),
		strings.HasSuffix(p.Path, "internal/fmindex"),
		strings.HasSuffix(p.Path, "internal/seqio"),
		strings.HasSuffix(p.Path, "internal/shard"),
		strings.HasSuffix(p.Path, "server/cluster"):
		return true
	}
	return false
}

// readLikeCallee reports whether a call reads decoded input: a callee
// named Read*/read*/Uint* (binary.Read, binio.ReadUint32, local read
// closures, binary.LittleEndian.Uint64).
func readLikeCallee(call *ast.CallExpr) bool {
	var name string
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return false
	}
	return strings.HasPrefix(name, "Read") || strings.HasPrefix(name, "read") ||
		strings.HasPrefix(name, "Uint")
}

func runBoundedAlloc(p *Package) []Finding {
	if !boundedAllocInScope(p) {
		return nil
	}
	var out []Finding
	funcBodies(p.Files, func(body *ast.BlockStmt) {
		out = append(out, boundedAllocInBody(p, body)...)
	})
	return out
}

type allocSink struct {
	pos  token.Pos
	size ast.Expr
	what string
}

func boundedAllocInBody(p *Package, body *ast.BlockStmt) []Finding {
	tainted := make(map[types.Object]bool)
	// objOf resolves an expression to the root variable it denotes:
	// `n` → n, `&m.Version` (after unwrapping &) → m, `buf[i]` → buf.
	// Field-level taint collapses onto the whole struct — coarse, but
	// the guard check is per-object too, so a cap on any field of m
	// covers m (decode structs are validated as a unit in this repo).
	var objOf func(e ast.Expr) types.Object
	objOf = func(e ast.Expr) types.Object {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := p.Info.Defs[x]; obj != nil {
				return obj
			}
			return p.Info.Uses[x]
		case *ast.SelectorExpr:
			return objOf(x.X)
		case *ast.IndexExpr:
			return objOf(x.X)
		case *ast.StarExpr:
			return objOf(x.X)
		}
		return nil
	}
	mentionsTainted := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := p.Info.Uses[id]; obj != nil && tainted[obj] {
					found = true
				}
			}
			return !found
		})
		return found
	}

	// Seed: address-taken into Read-like calls.
	inspectShallow(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !readLikeCallee(call) {
			return true
		}
		for _, arg := range call.Args {
			if un, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && un.Op == token.AND {
				if obj := objOf(un.X); obj != nil {
					tainted[obj] = true
				}
			}
		}
		return true
	})

	// Seed + propagate through assignments until fixed point (depth of
	// real decode chains is tiny; cap the loop defensively).
	for range 4 {
		changed := false
		taint := func(lhs []ast.Expr, rhs []ast.Expr) {
			dirty := false
			for _, r := range rhs {
				hasRead := false
				ast.Inspect(r, func(n ast.Node) bool {
					if c, ok := n.(*ast.CallExpr); ok && readLikeCallee(c) {
						hasRead = true
					}
					return !hasRead
				})
				if hasRead || mentionsTainted(r) {
					dirty = true
				}
			}
			if !dirty {
				return
			}
			for _, l := range lhs {
				if obj := objOf(l); obj != nil && !tainted[obj] {
					tainted[obj] = true
					changed = true
				}
			}
		}
		inspectShallow(body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				taint(x.Lhs, x.Rhs)
			case *ast.ValueSpec:
				lhs := make([]ast.Expr, len(x.Names))
				for i, id := range x.Names {
					lhs[i] = id
				}
				taint(lhs, x.Values)
			}
			return true
		})
		if !changed {
			break
		}
	}
	if len(tainted) == 0 {
		return nil
	}

	// Guards: if-condition comparisons mentioning a tainted variable.
	type guard struct {
		obj types.Object
		pos token.Pos
	}
	var guards []guard
	inspectShallow(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		ast.Inspect(ifs.Cond, func(c ast.Node) bool {
			be, ok := c.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			switch be.Op {
			case token.LSS, token.GTR, token.LEQ, token.GEQ:
				for _, side := range []ast.Expr{be.X, be.Y} {
					ast.Inspect(side, func(sn ast.Node) bool {
						if id, ok := sn.(*ast.Ident); ok {
							if obj := p.Info.Uses[id]; obj != nil && tainted[obj] {
								guards = append(guards, guard{obj: obj, pos: ifs.Pos()})
							}
						}
						return true
					})
				}
			}
			return true
		})
		return true
	})
	guardedBefore := func(obj types.Object, pos token.Pos) bool {
		for _, g := range guards {
			if g.obj == obj && g.pos < pos {
				return true
			}
		}
		return false
	}

	// Sinks.
	var sinks []allocSink
	inspectShallow(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			if _, isBuiltin := p.Info.Uses[fun].(*types.Builtin); isBuiltin && fun.Name == "make" {
				for _, sz := range call.Args[1:] {
					sinks = append(sinks, allocSink{pos: call.Pos(), size: sz, what: "make"})
				}
			}
		case *ast.SelectorExpr:
			if fun.Sel.Name == "ReadSlice" {
				for _, a := range call.Args[1:] {
					sinks = append(sinks, allocSink{pos: call.Pos(), size: a, what: "ReadSlice"})
				}
			}
		}
		return true
	})

	var out []Finding
	for _, s := range sinks {
		var bad []string
		ast.Inspect(s.size, func(n ast.Node) bool {
			// len/cap of tainted data is not a hostile size: the slice it
			// measures was already allocated under its own cap check, so an
			// allocation proportional to it cannot outgrow what the decode
			// admitted (make([]T, len(toc.frames)) after readShardedTOC).
			if c, ok := n.(*ast.CallExpr); ok {
				if id, ok := ast.Unparen(c.Fun).(*ast.Ident); ok {
					if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin && (id.Name == "len" || id.Name == "cap") {
						return false
					}
				}
			}
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := p.Info.Uses[id]
			if obj != nil && tainted[obj] && !guardedBefore(obj, s.pos) {
				bad = append(bad, id.Name)
			}
			return true
		})
		if len(bad) > 0 {
			out = append(out, p.finding(s.pos, "boundedalloc",
				"%s sized by %s, which was read from input without a dominating length-cap check; compare it against a cap (and fail with ErrFormat) first",
				s.what, strings.Join(bad, ", ")))
		}
	}
	return out
}
