package analyze

import (
	"encoding/json"
	"io"
)

// JSONFinding is the machine-readable form of one finding, stable for
// CI and tooling consumers (cmd/kmvet -json). Field names are the
// schema; the round-trip test pins them.
type JSONFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// JSONReport is the top-level -json document.
type JSONReport struct {
	Module   string        `json:"module"`
	Rules    []string      `json:"rules"` // rules that ran, in order
	Findings []JSONFinding `json:"findings"`
}

// ToJSON converts findings to their wire form.
func ToJSON(fs []Finding) []JSONFinding {
	out := make([]JSONFinding, 0, len(fs))
	for _, f := range fs {
		out = append(out, JSONFinding{
			File:    f.Pos.Filename,
			Line:    f.Pos.Line,
			Column:  f.Pos.Column,
			Rule:    f.Rule,
			Message: f.Message,
		})
	}
	return out
}

// WriteJSON emits a JSONReport for the findings of one run.
func WriteJSON(w io.Writer, module string, rules []string, fs []Finding) error {
	rep := JSONReport{Module: module, Rules: rules, Findings: ToJSON(fs)}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
