package analyze

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// This file builds the module-local call graph that the interprocedural
// rules (lockheld, reachpanic) walk. The graph is deliberately
// conservative: a dynamic call that *might* land on a module function
// gets an edge to every compatible candidate, so "unreachable" is a
// proof and "reachable" is a possibility.
//
// Design notes (see DESIGN.md §6):
//
//   - Nodes are keyed by types.Func.FullName() strings, not object
//     pointers. The analyzer type-checks each package from source while
//     its dependencies come in as export data, so the same function is
//     represented by *different* types.Func objects depending on which
//     package is looking at it; the FullName string is the stable
//     identity across both views.
//   - Function literals are attributed to their enclosing declaration:
//     a FuncLit body's calls become edges out of the enclosing
//     FuncDecl's node. This matches how the lock/blocking rules reason
//     ("what can run while this function is on the stack").
//   - Edges launched via `go` (a go statement, or any call inside a
//     go-launched literal) carry ViaGo. Blocking-ness does not
//     propagate across them — the goroutine blocks, not the caller —
//     but panic reachability does (a goroutine panic still crashes the
//     process).
//   - Interface method calls edge to every module-local method with the
//     same name and parameter/result count. Name+arity matching (rather
//     than types.Implements) is deliberate: the dual object identities
//     above make Implements unreliable across the export-data/source
//     boundary, and over-approximating keeps the graph conservative.
//   - Calls through function values edge to every address-taken module
//     function with a matching signature shape. Dynamic calls that
//     resolve to nothing (e.g. a stored callback of external origin)
//     get no edge and are NOT treated as blocking; that imprecision is
//     documented rather than papered over.

// Module is the whole-program view handed to rules: every loaded
// package plus the call graph across them.
type Module struct {
	Packages []*Package
	Graph    *CallGraph
}

// EdgeKind classifies how a call site resolved to its callee.
type EdgeKind int

const (
	// EdgeStatic is a direct call to a known function or method.
	EdgeStatic EdgeKind = iota
	// EdgeIface is a conservative interface-dispatch edge (matched by
	// method name and arity).
	EdgeIface
	// EdgeDynamic is a conservative function-value edge (matched
	// against address-taken module functions by signature shape).
	EdgeDynamic
)

// Edge is one call-graph edge.
type Edge struct {
	From, To *Node
	Pos      token.Pos
	Kind     EdgeKind
	// ViaGo marks calls launched on a new goroutine: either the call
	// itself is the operand of a go statement, or the call site lives
	// inside a go-launched function literal.
	ViaGo bool
}

// extCall is a call that leaves the module (stdlib or otherwise);
// recorded per node so rules can match against known-blocking sets.
type extCall struct {
	id    string // types.Func.FullName of the callee
	pos   token.Pos
	viaGo bool
}

// chanOp is a primitive channel/select operation found in a node.
type chanOp struct {
	pos   token.Pos
	what  string // "channel send", "channel receive", ...
	viaGo bool
}

// Node is one module function (FuncDecl) in the call graph.
type Node struct {
	ID   string // types.Func.FullName()
	Fn   *types.Func
	Pkg  *Package
	Decl *ast.FuncDecl

	Out []*Edge // calls made by this function (literals included)
	In  []*Edge // reverse edges

	exts    []extCall
	chanOps []chanOp
	panics  []token.Pos // direct builtin panic calls

	// invariantsFile marks declarations in invariants*.go files, where
	// assertion panics are the point (kminvariants carve-out).
	invariantsFile bool
}

// IsMethod reports whether the node is a method (has a receiver).
func (n *Node) IsMethod() bool {
	return n.Fn.Signature().Recv() != nil
}

// CallGraph holds every module function node, keyed by FullName.
type CallGraph struct {
	Nodes map[string]*Node

	// methodsByName indexes methods for conservative interface
	// dispatch; addrTaken marks functions whose value escapes (used as
	// an operand outside call position).
	methodsByName map[string][]*Node
	addrTaken     map[string]bool
}

// Lookup returns the node for a FullName ID, or nil.
func (g *CallGraph) Lookup(id string) *Node { return g.Nodes[id] }

// Size returns the number of nodes.
func (g *CallGraph) Size() int { return len(g.Nodes) }

// funcID is the canonical node key for a function object. Generic
// instantiations collapse onto their origin declaration.
func funcID(fn *types.Func) string {
	if o := fn.Origin(); o != nil {
		fn = o
	}
	return fn.FullName()
}

// BuildModule assembles the call graph over the given packages.
func BuildModule(pkgs []*Package) *Module {
	g := &CallGraph{
		Nodes:         make(map[string]*Node),
		methodsByName: make(map[string][]*Node),
		addrTaken:     make(map[string]bool),
	}
	// Pass 1: create a node per FuncDecl.
	for _, p := range pkgs {
		for _, f := range p.Files {
			fname := filepath.Base(p.Fset.Position(f.Pos()).Filename)
			inv := strings.HasPrefix(fname, "invariants")
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &Node{
					ID:             funcID(fn),
					Fn:             fn,
					Pkg:            p,
					Decl:           fd,
					invariantsFile: inv,
				}
				g.Nodes[n.ID] = n
				if n.IsMethod() {
					g.methodsByName[fn.Name()] = append(g.methodsByName[fn.Name()], n)
				}
			}
		}
	}
	// Pass 2: mark address-taken functions (any use of a func object
	// outside call position, in any package).
	for _, p := range pkgs {
		markAddressTaken(p, g)
	}
	// Pass 3: walk bodies, recording facts and resolving call sites.
	for _, n := range g.Nodes {
		b := &bodyWalker{p: n.Pkg, g: g, node: n}
		b.walkStmts(n.Decl.Body.List, 0)
	}
	// Reverse edges.
	for _, n := range g.Nodes {
		for _, e := range n.Out {
			e.To.In = append(e.To.In, e)
		}
	}
	return &Module{Packages: pkgs, Graph: g}
}

// markAddressTaken records every *types.Func used as a value: an
// identifier or selector that resolves to a function but is not the
// operand of a call. These become dynamic-dispatch candidates.
func markAddressTaken(p *Package, g *CallGraph) {
	inCallPos := make(map[ast.Node]bool)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				fun := ast.Unparen(call.Fun)
				inCallPos[fun] = true
				if sel, ok := fun.(*ast.SelectorExpr); ok {
					inCallPos[sel.Sel] = true
				}
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.Ident:
				if inCallPos[x] {
					return true
				}
				if fn, ok := p.Info.Uses[x].(*types.Func); ok {
					g.addrTaken[funcID(fn)] = true
				}
			case *ast.SelectorExpr:
				if inCallPos[x] || inCallPos[x.Sel] {
					return true
				}
				if fn, ok := p.Info.Uses[x.Sel].(*types.Func); ok {
					g.addrTaken[funcID(fn)] = true
				}
			}
			return true
		})
	}
}

// callTarget is the resolution of one call expression.
type callTarget struct {
	kind    EdgeKind
	fn      *types.Func // static callee, or the interface method object
	builtin string      // builtin name ("panic", "make", ...), else ""
	isConv  bool        // type conversion, not a call
	dynSig  *types.Signature
}

// classifyCall resolves what a call expression invokes.
func classifyCall(p *Package, call *ast.CallExpr) callTarget {
	fun := ast.Unparen(call.Fun)
	if tv, ok := p.Info.Types[fun]; ok && tv.IsType() {
		return callTarget{isConv: true}
	}
	var id *ast.Ident
	var sel *ast.SelectorExpr
	switch x := fun.(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id, sel = x.Sel, x
	}
	if id != nil {
		switch obj := p.Info.Uses[id].(type) {
		case *types.Builtin:
			return callTarget{builtin: obj.Name()}
		case *types.Func:
			if sel != nil {
				if s, ok := p.Info.Selections[sel]; ok && types.IsInterface(s.Recv()) {
					return callTarget{kind: EdgeIface, fn: obj}
				}
			}
			return callTarget{kind: EdgeStatic, fn: obj}
		}
	}
	// Indirect call through a function value (variable, field, call
	// result, index expression...).
	ct := callTarget{kind: EdgeDynamic}
	if tv, ok := p.Info.Types[fun]; ok {
		if sig, ok := tv.Type.Underlying().(*types.Signature); ok {
			ct.dynSig = sig
		}
	}
	return ct
}

// pathQual qualifies type names by full package path, so the same type
// renders identically whether it came from source or export data.
func pathQual(p *types.Package) string { return p.Path() }

// sigKey renders a signature's parameter and result types (receiver
// excluded) as a stable string. Two functions are dispatch-compatible
// when their keys match: interface implementations must have identical
// parameter/result types, and a function value can only hold functions
// of its exact type.
func sigKey(sig *types.Signature) string {
	var b strings.Builder
	for i := 0; i < sig.Params().Len(); i++ {
		b.WriteString(types.TypeString(sig.Params().At(i).Type(), pathQual))
		b.WriteByte(',')
	}
	if sig.Variadic() {
		b.WriteByte('~')
	}
	b.WriteByte('|')
	for i := 0; i < sig.Results().Len(); i++ {
		b.WriteString(types.TypeString(sig.Results().At(i).Type(), pathQual))
		b.WriteByte(',')
	}
	return b.String()
}

// bodyWalker walks one declaration's body (and its nested literals),
// recording call edges, external calls, channel ops, and panics on the
// node. goDepth > 0 means the code runs on a spawned goroutine.
type bodyWalker struct {
	p    *Package
	g    *CallGraph
	node *Node
	seen map[string]bool // edge dedup: "toID|viaGo"
}

func (b *bodyWalker) walkStmts(list []ast.Stmt, goDepth int) {
	for _, s := range list {
		b.walk(s, goDepth)
	}
}

// walk dispatches on the statements that change goroutine context or
// blocking semantics, and inspects everything else generically.
func (b *bodyWalker) walk(n ast.Node, goDepth int) {
	if n == nil {
		return
	}
	switch x := n.(type) {
	case *ast.GoStmt:
		b.walkCall(x.Call, goDepth, true)
		return
	case *ast.DeferStmt:
		b.walkCall(x.Call, goDepth, false)
		return
	case *ast.CallExpr:
		b.walkCall(x, goDepth, false)
		return
	case *ast.FuncLit:
		// A literal not under `go`: treat its body as running in the
		// enclosing context (immediately-invoked and stored callbacks
		// alike — conservative for blocking facts).
		b.walkStmts(x.Body.List, goDepth)
		return
	case *ast.SendStmt:
		b.recordChan(x.Pos(), "channel send", goDepth)
	case *ast.UnaryExpr:
		if x.Op == token.ARROW {
			b.recordChan(x.Pos(), "channel receive", goDepth)
		}
	case *ast.RangeStmt:
		if tv, ok := b.p.Info.Types[x.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				b.recordChan(x.Pos(), "range over channel", goDepth)
			}
		}
	case *ast.SelectStmt:
		b.walkSelect(x, goDepth)
		return
	}
	// Generic descent over direct children.
	ast.Inspect(n, func(c ast.Node) bool {
		if c == n {
			return true
		}
		switch c.(type) {
		case *ast.GoStmt, *ast.DeferStmt, *ast.CallExpr, *ast.FuncLit,
			*ast.SendStmt, *ast.UnaryExpr, *ast.RangeStmt, *ast.SelectStmt:
			b.walk(c, goDepth)
			return false
		}
		return true
	})
}

// walkSelect handles select statements: a select with no default is a
// blocking op itself; the individual comm-clause channel operations are
// part of the select and not recorded separately.
func (b *bodyWalker) walkSelect(sel *ast.SelectStmt, goDepth int) {
	hasDefault := false
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.recordChan(sel.Pos(), "select without default", goDepth)
	}
	for _, c := range sel.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		// The comm statement's channel ops are covered by the select
		// itself, but calls inside it (e.g. `case v := <-f():`) still
		// produce edges.
		if cc.Comm != nil {
			ast.Inspect(cc.Comm, func(c ast.Node) bool {
				switch x := c.(type) {
				case *ast.CallExpr:
					b.walkCall(x, goDepth, false)
					return false
				case *ast.FuncLit:
					b.walkStmts(x.Body.List, goDepth)
					return false
				}
				return true
			})
		}
		b.walkStmts(cc.Body, goDepth)
	}
}

func (b *bodyWalker) recordChan(pos token.Pos, what string, goDepth int) {
	b.node.chanOps = append(b.node.chanOps, chanOp{pos: pos, what: what, viaGo: goDepth > 0})
}

// walkCall records the edge (or external/builtin fact) for one call and
// descends into its function expression and arguments.
func (b *bodyWalker) walkCall(call *ast.CallExpr, goDepth int, launchedGo bool) {
	viaGo := goDepth > 0 || launchedGo
	ct := classifyCall(b.p, call)
	switch {
	case ct.isConv:
		// descend into the operand only
	case ct.builtin != "":
		if ct.builtin == "panic" && !b.node.invariantsFile {
			b.node.panics = append(b.node.panics, call.Pos())
		}
	case ct.kind == EdgeStatic:
		id := funcID(ct.fn)
		if to := b.g.Nodes[id]; to != nil {
			b.addEdge(to, call.Pos(), EdgeStatic, viaGo)
		} else {
			b.node.exts = append(b.node.exts, extCall{id: id, pos: call.Pos(), viaGo: viaGo})
		}
	case ct.kind == EdgeIface:
		key := sigKey(ct.fn.Signature())
		for _, cand := range b.g.methodsByName[ct.fn.Name()] {
			if sigKey(cand.Fn.Signature()) == key {
				b.addEdge(cand, call.Pos(), EdgeIface, viaGo)
			}
		}
	case ct.kind == EdgeDynamic:
		if ct.dynSig != nil {
			key := sigKey(ct.dynSig)
			for id, n := range b.g.Nodes {
				if !b.g.addrTaken[id] {
					continue
				}
				if sigKey(n.Fn.Signature()) == key {
					b.addEdge(n, call.Pos(), EdgeDynamic, viaGo)
				}
			}
		}
	}
	// Descend: the function expression (covers immediately-invoked
	// literals and chained calls) and every argument.
	goBody := goDepth
	if launchedGo {
		goBody++
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		b.walkStmts(lit.Body.List, goBody)
	} else {
		b.walk(call.Fun, goDepth)
	}
	for _, arg := range call.Args {
		b.walk(arg, goDepth)
	}
}

func (b *bodyWalker) addEdge(to *Node, pos token.Pos, kind EdgeKind, viaGo bool) {
	if b.seen == nil {
		b.seen = make(map[string]bool)
	}
	key := to.ID
	if viaGo {
		key += "|go"
	}
	if b.seen[key] {
		return
	}
	b.seen[key] = true
	b.node.Out = append(b.node.Out, &Edge{From: b.node, To: to, Pos: pos, Kind: kind, ViaGo: viaGo})
}

// Reaches reports whether any call path (go-launched edges included)
// leads from fromID to toID. Used by the call-graph tests to pin
// conservatism; cycles terminate because visited nodes are not
// re-expanded.
func (g *CallGraph) Reaches(fromID, toID string) bool {
	from := g.Nodes[fromID]
	if from == nil {
		return false
	}
	seen := make(map[*Node]bool)
	stack := []*Node{from}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[n] {
			continue
		}
		seen[n] = true
		if n.ID == toID {
			return true
		}
		for _, e := range n.Out {
			if !seen[e.To] {
				stack = append(stack, e.To)
			}
		}
	}
	return false
}

// reachers returns every node from which some node satisfying sink is
// reachable, mapped to the first out-edge that leads toward a sink
// (for diagnostics). excludeGo skips go-launched edges.
func (g *CallGraph) reachers(sink func(*Node) bool, excludeGo bool) map[*Node]*Edge {
	out := make(map[*Node]*Edge)
	// Reverse BFS from sink nodes.
	var frontier []*Node
	inSet := make(map[*Node]bool)
	for _, n := range g.Nodes {
		if sink(n) {
			inSet[n] = true
			frontier = append(frontier, n)
		}
	}
	for len(frontier) > 0 {
		n := frontier[0]
		frontier = frontier[1:]
		for _, e := range n.In {
			if excludeGo && e.ViaGo {
				continue
			}
			if _, ok := out[e.From]; ok {
				continue
			}
			if inSet[e.From] && sink(e.From) {
				continue
			}
			out[e.From] = e
			if !inSet[e.From] {
				inSet[e.From] = true
				frontier = append(frontier, e.From)
			}
		}
	}
	return out
}

// chainTo renders a call chain from n following the diagnostic edges
// recorded by reachers, ending at a sink node. Used in finding
// messages: "f → g → h".
func chainTo(n *Node, via map[*Node]*Edge, sink func(*Node) bool) string {
	var parts []string
	seen := make(map[*Node]bool)
	cur := n
	for cur != nil && !seen[cur] {
		seen[cur] = true
		parts = append(parts, cur.Fn.Name())
		if sink(cur) {
			break
		}
		e := via[cur]
		if e == nil {
			break
		}
		cur = e.To
	}
	return strings.Join(parts, " -> ")
}
