// Package analyze implements kmvet, the repo-specific static analyzer.
// It loads every package of the module with go/parser and go/types
// (stdlib only — import resolution rides on export data produced by
// `go list -export`, the same artifacts the build cache already holds)
// and runs a small set of rules that machine-enforce disciplines the
// code review notes in DESIGN.md used to enforce by hand:
//
//   - wrapformat: errors from index load paths (bwtmatch.Load*,
//     fmindex.Read*) must be re-wrapped with %w, never returned bare, so
//     every layer adds context while errors.Is(err, ErrFormat) keeps
//     matching.
//   - copylocks: no value copies of structs that contain a sync.Mutex
//     or sync.RWMutex (parameters, results, assignments, call
//     arguments, range clauses).
//   - ctxsearch: outside the root bwtmatch package, searches must go
//     through MapAllContext with a caller-scoped context; bare MapAll
//     is reserved for the library's own wrapper.
//   - nopanic: no panic in library (non-main) packages, except in
//     kminvariants-tagged invariants*.go files where assertion failure
//     is the point.
//   - nostdlog: no fmt.Print*/log.Print* (or log.Fatal*/Panic*, or the
//     print/println builtins) in library packages; daemon-embedded code
//     logs through an injected
//     *slog.Logger or writes to a caller-supplied io.Writer, keeping
//     stdout machine-readable and the log stream structured.
//
// Each rule reports findings as file:line: [rule] message; cmd/kmvet
// exits nonzero when any fire.
package analyze

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one rule violation at a source position.
type Finding struct {
	Pos     token.Position
	Rule    string
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Rule, f.Message)
}

// Package is one type-checked package handed to the rules.
type Package struct {
	Path  string // import path ("bwtmatch/server", or a fixture label in tests)
	Dir   string
	Name  string // package name ("main" for commands)
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Analyzer loads and checks packages of one module.
type Analyzer struct {
	root       string // module root (directory containing go.mod)
	modulePath string
	fset       *token.FileSet
	exports    map[string]string // import path -> export data file
	missing    map[string]bool   // paths go list could not resolve
	imp        types.Importer
}

// New prepares an Analyzer for the module rooted at dir (the directory
// holding go.mod). It shells out to `go list -export -deps ./...` once
// to map every reachable import path to its export data; packages are
// then type-checked from source with imports satisfied from that map.
func New(root string) (*Analyzer, error) {
	modulePath, err := modulePathOf(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	a := &Analyzer{
		root:       root,
		modulePath: modulePath,
		fset:       token.NewFileSet(),
		exports:    make(map[string]string),
		missing:    make(map[string]bool),
	}
	if err := a.listExports("./..."); err != nil {
		return nil, err
	}
	a.imp = importer.ForCompiler(a.fset, "gc", a.lookup)
	return a, nil
}

// modulePathOf extracts the module path from a go.mod file.
func modulePathOf(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("analyze: %v (run kmvet from the module root)", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analyze: no module line in %s", gomod)
}

// listExports runs go list -export over pattern and records the export
// data location of every listed package (deps included).
func (a *Analyzer) listExports(pattern string) error {
	cmd := exec.Command("go", "list", "-export", "-deps",
		"-json=ImportPath,Export", pattern)
	cmd.Dir = a.root
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("analyze: go list -export %s: %v\n%s", pattern, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return fmt.Errorf("analyze: decoding go list output: %v", err)
		}
		if p.Export != "" {
			a.exports[p.ImportPath] = p.Export
		}
	}
	return nil
}

// lookup feeds export data to the gc importer, fetching paths outside
// the initial ./... closure on demand.
func (a *Analyzer) lookup(path string) (io.ReadCloser, error) {
	e, ok := a.exports[path]
	if !ok && !a.missing[path] {
		if err := a.listExports(path); err != nil {
			a.missing[path] = true
			return nil, err
		}
		e, ok = a.exports[path]
	}
	if !ok {
		return nil, fmt.Errorf("analyze: no export data for %q", path)
	}
	return os.Open(e)
}

// load parses and type-checks the package in dir under the given import
// path. Test files and files excluded by build tags (notably the
// kminvariants invariant implementations) are skipped, matching what an
// ordinary build sees.
func (a *Analyzer) load(dir, importPath string) (*Package, error) {
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		return nil, err // includes *build.NoGoError for non-package dirs
	}
	files := make([]*ast.File, 0, len(bp.GoFiles))
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(a.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analyze: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: a.imp}
	pkg, err := conf.Check(importPath, a.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analyze: type-checking %s: %v", importPath, err)
	}
	return &Package{
		Path:  importPath,
		Dir:   dir,
		Name:  pkg.Name(),
		Fset:  a.fset,
		Files: files,
		Types: pkg,
		Info:  info,
	}, nil
}

// ModulePath returns the module path from go.mod.
func (a *Analyzer) ModulePath() string { return a.modulePath }

// LoadDir loads the single package in dir (importPath may be a
// synthetic label for out-of-module fixtures) as a one-package Module
// with its own call graph.
func (a *Analyzer) LoadDir(dir, importPath string) (*Module, error) {
	p, err := a.load(dir, importPath)
	if err != nil {
		return nil, err
	}
	return BuildModule([]*Package{p}), nil
}

// CheckDir type-checks the package in dir and runs every rule over it.
func (a *Analyzer) CheckDir(dir, importPath string) ([]Finding, error) {
	m, err := a.LoadDir(dir, importPath)
	if err != nil {
		return nil, err
	}
	return m.check(Rules()), nil
}

// LoadModule loads every package of the module (testdata and VCS
// directories excluded) and builds the cross-package call graph.
func (a *Analyzer) LoadModule() (*Module, error) {
	var pkgs []*Package
	err := filepath.WalkDir(a.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != a.root && (name == "testdata" || strings.HasPrefix(name, ".") || name == "vendor") {
			return filepath.SkipDir
		}
		rel, err := filepath.Rel(a.root, path)
		if err != nil {
			return err
		}
		importPath := a.modulePath
		if rel != "." {
			importPath = a.modulePath + "/" + filepath.ToSlash(rel)
		}
		p, err := a.load(path, importPath)
		if err != nil {
			if _, ok := err.(*build.NoGoError); ok {
				return nil
			}
			return err
		}
		pkgs = append(pkgs, p)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return BuildModule(pkgs), nil
}

// CheckModule runs every rule over the whole module.
func (a *Analyzer) CheckModule() ([]Finding, error) {
	return a.CheckModuleRules(nil)
}

// CheckModuleRules runs the named rules (nil or empty means all) over
// the whole module. Interprocedural rules always see the full
// cross-package call graph regardless of the rule selection.
func (a *Analyzer) CheckModuleRules(names []string) ([]Finding, error) {
	m, err := a.LoadModule()
	if err != nil {
		return nil, err
	}
	rules := Rules()
	if len(names) > 0 {
		want := make(map[string]bool, len(names))
		for _, n := range names {
			want[n] = true
		}
		kept := rules[:0]
		for _, r := range rules {
			if want[r.Name] {
				kept = append(kept, r)
			}
		}
		rules = kept
	}
	return m.check(rules), nil
}

// check runs the given rules over the module, applies //kmvet:ignore
// suppression (stale directives become unusedignore findings), and
// returns the sorted result.
func (m *Module) check(rules []Rule) []Finding {
	var out []Finding
	enabled := make(map[string]bool, len(rules))
	for _, r := range rules {
		enabled[r.Name] = true
		out = append(out, r.Run(m)...)
	}
	out = m.applyIgnores(out, enabled)
	sortFindings(out)
	return out
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Rule < b.Rule
	})
}

// finding builds a Finding at pos.
func (p *Package) finding(pos token.Pos, rule, format string, args ...any) Finding {
	return Finding{
		Pos:     p.Fset.Position(pos),
		Rule:    rule,
		Message: fmt.Sprintf(format, args...),
	}
}
