package analyze_test

import (
	"path/filepath"
	"testing"

	"bwtmatch/internal/analyze"
)

const cgPath = "fixture/callgraph"

// loadCallGraph loads the synthetic testdata/callgraph package and
// returns its call graph.
func loadCallGraph(t *testing.T) *analyze.CallGraph {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "callgraph"))
	if err != nil {
		t.Fatal(err)
	}
	m, err := analyzer(t).LoadDir(dir, cgPath)
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	return m.Graph
}

func fn(name string) string        { return cgPath + "." + name }
func mth(recv, name string) string { return "(" + cgPath + "." + recv + ")." + name }

// edgesTo returns the edges from the named node to the named target.
func edgesTo(t *testing.T, g *analyze.CallGraph, from, to string) []*analyze.Edge {
	t.Helper()
	n := g.Lookup(from)
	if n == nil {
		t.Fatalf("no node %s", from)
	}
	var out []*analyze.Edge
	for _, e := range n.Out {
		if e.To.ID == to {
			out = append(out, e)
		}
	}
	return out
}

// TestCallGraphNodes pins the node set: one node per FuncDecl, keyed by
// FullName, methods included.
func TestCallGraphNodes(t *testing.T) {
	g := loadCallGraph(t)
	want := []string{
		mth("fast", "Run"), mth("slow", "Run"),
		fn("step"), fn("dispatch"),
		fn("double"), fn("triple"), fn("halve"), fn("apply"),
		fn("selfRec"), fn("mutualA"), fn("mutualB"),
		fn("worker"), fn("launch"), fn("spawnLit"),
	}
	if g.Size() != len(want) {
		t.Errorf("got %d nodes, want %d", g.Size(), len(want))
	}
	for _, id := range want {
		if g.Lookup(id) == nil {
			t.Errorf("missing node %s", id)
		}
	}
}

// TestInterfaceDispatch: a call through an interface edges to every
// module method with a compatible name and signature, so both
// implementations are reachable — conservatism over precision.
func TestInterfaceDispatch(t *testing.T) {
	g := loadCallGraph(t)
	for _, impl := range []string{mth("fast", "Run"), mth("slow", "Run")} {
		es := edgesTo(t, g, fn("dispatch"), impl)
		if len(es) == 0 {
			t.Fatalf("dispatch has no edge to %s", impl)
		}
		if es[0].Kind != analyze.EdgeIface {
			t.Errorf("dispatch -> %s: kind %v, want EdgeIface", impl, es[0].Kind)
		}
	}
	// The dispatch is transitive: step is only reachable through the
	// slow implementation.
	if !g.Reaches(fn("dispatch"), fn("step")) {
		t.Error("dispatch should reach step via slow.Run")
	}
	// Directionality: the callee does not reach its caller.
	if g.Reaches(fn("step"), fn("dispatch")) {
		t.Error("step must not reach dispatch")
	}
}

// TestFunctionValues: calls through function values edge to every
// address-taken function with a matching signature — and to nothing
// else.
func TestFunctionValues(t *testing.T) {
	g := loadCallGraph(t)
	for _, target := range []string{fn("double"), fn("triple")} {
		es := edgesTo(t, g, fn("apply"), target)
		if len(es) == 0 {
			t.Fatalf("apply has no edge to %s", target)
		}
		if es[0].Kind != analyze.EdgeDynamic {
			t.Errorf("apply -> %s: kind %v, want EdgeDynamic", target, es[0].Kind)
		}
	}
	// halve has the same signature but its address is never taken.
	if es := edgesTo(t, g, fn("apply"), fn("halve")); len(es) != 0 {
		t.Errorf("apply must not edge to halve (never address-taken), got %d edges", len(es))
	}
}

// TestRecursion: self- and mutual-recursion cycles terminate and are
// reachable in both directions around the cycle.
func TestRecursion(t *testing.T) {
	g := loadCallGraph(t)
	if !g.Reaches(fn("selfRec"), fn("selfRec")) {
		t.Error("selfRec should reach itself")
	}
	if !g.Reaches(fn("mutualA"), fn("mutualB")) || !g.Reaches(fn("mutualB"), fn("mutualA")) {
		t.Error("mutual recursion should be reachable both ways")
	}
	// The cycle is closed: nothing else leaks in.
	if g.Reaches(fn("mutualA"), fn("worker")) {
		t.Error("mutualA must not reach worker")
	}
}

// TestGoEdges: go-launched calls carry ViaGo, both for `go f()` and
// for calls inside a go-launched literal (attributed to the encloser).
func TestGoEdges(t *testing.T) {
	g := loadCallGraph(t)
	for _, from := range []string{fn("launch"), fn("spawnLit")} {
		es := edgesTo(t, g, from, fn("worker"))
		if len(es) == 0 {
			t.Fatalf("%s has no edge to worker", from)
		}
		if !es[0].ViaGo {
			t.Errorf("%s -> worker: ViaGo false, want true", from)
		}
	}
	// A plain static call, for contrast.
	es := edgesTo(t, g, mth("slow", "Run"), fn("step"))
	if len(es) == 0 || es[0].ViaGo || es[0].Kind != analyze.EdgeStatic {
		t.Errorf("slow.Run -> step should be a non-go static edge, got %+v", es)
	}
}
