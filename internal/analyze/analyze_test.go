package analyze_test

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"bwtmatch/internal/analyze"
)

// The Analyzer shells out to `go list -export -deps` once; share one
// instance across all tests.
var (
	once      sync.Once
	shared    *analyze.Analyzer
	sharedErr error
)

func analyzer(t *testing.T) *analyze.Analyzer {
	t.Helper()
	once.Do(func() {
		root, err := filepath.Abs(filepath.Join("..", ".."))
		if err != nil {
			sharedErr = err
			return
		}
		shared, sharedErr = analyze.New(root)
	})
	if sharedErr != nil {
		t.Fatalf("analyze.New: %v", sharedErr)
	}
	return shared
}

// key is a finding reduced to its comparable identity.
type key struct {
	file string // base name
	line int
	rule string
}

func (k key) String() string { return fmt.Sprintf("%s:%d: [%s]", k.file, k.line, k.rule) }

// wantsIn scans the fixture's Go files for `// want <rule>` markers and
// returns the expected finding keys.
func wantsIn(t *testing.T, dir string) []key {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no fixture files in %s: %v", dir, err)
	}
	var out []key
	for _, name := range names {
		f, err := os.Open(name)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			text := sc.Text()
			i := strings.Index(text, "// want ")
			if i < 0 {
				continue
			}
			rule := strings.TrimSpace(text[i+len("// want "):])
			out = append(out, key{file: filepath.Base(name), line: line, rule: rule})
		}
		f.Close()
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

// checkFixture runs every rule over one testdata package and compares
// the findings against the `// want` markers, both directions.
func checkFixture(t *testing.T, name string) {
	t.Helper()
	a := analyzer(t)
	dir, err := filepath.Abs(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	findings, err := a.CheckDir(dir, "fixture/"+name)
	if err != nil {
		t.Fatalf("CheckDir(%s): %v", name, err)
	}
	got := make([]key, 0, len(findings))
	for _, f := range findings {
		got = append(got, key{file: filepath.Base(f.Pos.Filename), line: f.Pos.Line, rule: f.Rule})
	}
	want := wantsIn(t, dir)
	sortKeys(got)
	sortKeys(want)

	wantSet := make(map[key]bool, len(want))
	for _, k := range want {
		wantSet[k] = true
	}
	gotSet := make(map[key]bool, len(got))
	for _, k := range got {
		gotSet[k] = true
	}
	for _, k := range want {
		if !gotSet[k] {
			t.Errorf("missing finding %v", k)
		}
	}
	for i, k := range got {
		if !wantSet[k] {
			t.Errorf("unexpected finding %v: %s", k, findings[i].Message)
		}
	}
}

func sortKeys(ks []key) {
	sort.Slice(ks, func(i, j int) bool {
		a, b := ks[i], ks[j]
		if a.file != b.file {
			return a.file < b.file
		}
		if a.line != b.line {
			return a.line < b.line
		}
		return a.rule < b.rule
	})
}

// TestRuleFixtures demonstrates each rule firing on a deliberately-bad
// fixture package, at exactly the marked positions.
func TestRuleFixtures(t *testing.T) {
	for _, name := range []string{
		"badwrap", "badlock", "badctx", "badpanic", "badlog",
		"badgoroutine", "badlockheld", "badreachpanic", "badboundedalloc", "badcloseerr",
	} {
		t.Run(name, func(t *testing.T) { checkFixture(t, name) })
	}
}

// TestCleanFixture checks the compliant fixture produces no findings
// (it has no `// want` markers, so checkFixture demands an empty set).
func TestCleanFixture(t *testing.T) {
	checkFixture(t, "clean")
}

// TestRulesCatalogue pins the rule set: ten rules, stable names,
// non-empty docs (kmvet -rules prints these).
func TestRulesCatalogue(t *testing.T) {
	rules := analyze.Rules()
	want := []string{
		"wrapformat", "copylocks", "ctxsearch", "nopanic", "nostdlog",
		"goroutinelifecycle", "lockheld", "reachpanic", "boundedalloc", "closeerr",
	}
	if len(rules) != len(want) {
		t.Fatalf("got %d rules, want %d", len(rules), len(want))
	}
	seen := make(map[string]bool)
	for _, r := range rules {
		seen[r.Name] = true
		if r.Doc == "" {
			t.Errorf("rule %s has no doc", r.Name)
		}
		if r.Run == nil {
			t.Errorf("rule %s has no Run", r.Name)
		}
	}
	for _, name := range want {
		if !seen[name] {
			t.Errorf("missing rule %s", name)
		}
	}
}

// TestModuleClean runs the analyzer over the whole module, the same way
// `make lint` does, and requires a clean tree. Skipped with -short: it
// type-checks every package.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("module-wide analysis in -short mode")
	}
	findings, err := analyzer(t).CheckModule()
	if err != nil {
		t.Fatalf("CheckModule: %v", err)
	}
	for _, f := range findings {
		t.Errorf("unexpected finding on clean tree: %s", f)
	}
}
