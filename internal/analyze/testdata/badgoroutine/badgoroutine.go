// Package badgoroutine violates the goroutinelifecycle rule: library
// goroutines that are neither joined (WaitGroup Add/Done/Wait) nor
// bounded by a context.
package badgoroutine

import (
	"context"
	"sync"
)

// fireAndForget launches a goroutine nothing ever joins or stops.
func fireAndForget(work func()) {
	go func() { // want goroutinelifecycle
		work()
	}()
}

// waiter is the pattern the rule exists to kill: a detached goroutine
// waiting on a WaitGroup. If the caller abandons the select on done,
// the waiter itself leaks — Wait is not a join for *this* goroutine.
func waiter(wg *sync.WaitGroup) chan struct{} {
	done := make(chan struct{})
	go func() { // want goroutinelifecycle
		wg.Wait()
		close(done)
	}()
	return done
}

// namedDetached: a named callee with no context or WaitGroup argument
// is just as detached as a literal.
func namedDetached(ch chan int) {
	go drain(ch) // want goroutinelifecycle
}

func drain(ch chan int) {
	for range ch {
	}
}

// joined is compliant: the classic Add/Done/Wait discipline.
func joined(items []int) int {
	var wg sync.WaitGroup
	var mu sync.Mutex
	total := 0
	for range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			total++
			mu.Unlock()
		}()
	}
	wg.Wait()
	return total
}

// bounded is compliant: the goroutine's loop observes ctx, so a drain
// or deadline stops it.
func bounded(ctx context.Context, ticks chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticks:
			}
		}
	}()
}

// namedCtx is compliant: the callee receives the caller's context.
func namedCtx(ctx context.Context) {
	go pump(ctx)
}

func pump(ctx context.Context) { <-ctx.Done() }

// namedJoined is compliant: the callee receives the WaitGroup.
func namedJoined(wg *sync.WaitGroup, ch chan int) {
	wg.Add(1)
	go work(wg, ch)
}

func work(wg *sync.WaitGroup, ch chan int) {
	defer wg.Done()
	<-ch
}
