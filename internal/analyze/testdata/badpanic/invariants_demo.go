// invariants_demo.go exercises the nopanic exemption: files whose name
// starts with "invariants" hold the kminvariants assertion layer, where
// crashing on a tripped invariant is the intended behavior.
package badpanic

func assertSorted(xs []int) {
	for i := 1; i < len(xs); i++ {
		if xs[i-1] > xs[i] {
			panic("badpanic: unsorted") // exempt: invariants*.go
		}
	}
}
