// Package badpanic violates the nopanic rule: a library package that
// panics instead of returning an error.
package badpanic

import "fmt"

func mustPositive(n int) int {
	if n <= 0 {
		panic("badpanic: nonpositive input") // want nopanic
	}
	return n
}

// positive is compliant: it reports the same condition as an error.
// No finding here.
func positive(n int) (int, error) {
	if n <= 0 {
		return 0, fmt.Errorf("badpanic: nonpositive input %d", n)
	}
	return n, nil
}

// panic as an identifier (not the builtin) must not be flagged.
func shadowed() {
	panic := func(string) {}
	panic("not the builtin")
}
