// Package badlockheld violates the lockheld rule: blocking operations
// reachable while a sync.Mutex/RWMutex is held, directly and through
// the call graph.
package badlockheld

import (
	"net/http"
	"sync"
	"time"
)

type store struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	items map[string]int
	c     *http.Client
	ch    chan int
}

// directSend blocks on a channel send while mu is held.
func (s *store) directSend(v int) {
	s.mu.Lock()
	s.ch <- v // want lockheld
	s.mu.Unlock()
}

// deferUnlock: with a deferred unlock the region runs to the end of
// the body, so the receive is under the lock.
func (s *store) deferUnlock() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-s.ch // want lockheld
}

// httpUnderRLock performs a network round-trip under a read lock —
// every writer (and eventually every reader) stalls behind the RPC.
func (s *store) httpUnderRLock(url string) {
	s.rw.RLock()
	defer s.rw.RUnlock()
	s.c.Get(url) // want lockheld
}

// transitive: the blocking call is one hop away in the call graph.
func (s *store) transitive() {
	s.mu.Lock()
	helper() // want lockheld
	s.mu.Unlock()
}

func helper() { time.Sleep(time.Millisecond) }

// viaIface: conservative interface dispatch — some implementation of
// Waiter blocks, so the dispatch under the lock is flagged.
type Waiter interface{ Wait() }

type wgWaiter struct{ wg *sync.WaitGroup }

func (w wgWaiter) Wait() { w.wg.Wait() }

func (s *store) viaIface(w Waiter) {
	s.mu.Lock()
	w.Wait() // want lockheld
	s.mu.Unlock()
}

// releasedFirst is compliant: the send happens after the unlock.
func (s *store) releasedFirst(v int) {
	s.mu.Lock()
	s.items["k"] = v
	s.mu.Unlock()
	s.ch <- v
}

// goExcluded is compliant: the channel send runs on a new goroutine's
// own stack, not under the caller's lock (and the goroutine is
// joined).
func (s *store) goExcluded(wg *sync.WaitGroup) {
	s.mu.Lock()
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.ch <- 1
	}()
	s.mu.Unlock()
}

// selectDefault is compliant: a select with a default never blocks.
func (s *store) selectDefault(v int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- v:
		return true
	default:
		return false
	}
}
