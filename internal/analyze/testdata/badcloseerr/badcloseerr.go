// Package badcloseerr violates the closeerr rule: dropped Close/Flush
// errors on save paths. On buffered or os-cached writes, Close and
// Flush are where a full disk finally surfaces.
package badcloseerr

import (
	"bufio"
	"io"
	"os"
)

// dropped discards the Close error as a bare statement.
func dropped(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, werr := f.Write(data); werr != nil {
		return werr
	}
	f.Close() // want closeerr
	return nil
}

// deferred silently discards whatever the deferred Close reports.
func deferred(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want closeerr
	_, werr := f.Write(data)
	return werr
}

// blanked hides the Flush error behind the blank identifier — an
// explicit discard still needs the annotation to be sanctioned.
func blanked(w io.Writer, data []byte) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(data); err != nil {
		return err
	}
	_ = bw.Flush() // want closeerr
	return nil
}

// droppedTemp: temp files on save paths (the streaming shard builder's
// spill and assembly files) carry the same obligation as os.Create.
func droppedTemp(dir string, data []byte) error {
	f, err := os.CreateTemp(dir, "spill-*")
	if err != nil {
		return err
	}
	if _, werr := f.Write(data); werr != nil {
		return werr
	}
	f.Close() // want closeerr
	return nil
}

// checked is compliant: the Close error merges into the return value.
func checked(path string, data []byte) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	_, err = f.Write(data)
	return err
}

// returned is compliant: the error is the return value.
func returned(w io.Writer, data []byte) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(data); err != nil {
		return err
	}
	return bw.Flush()
}

// annotated is a sanctioned discard: the annotation names the reason.
func annotated(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, werr := f.Write(data); werr != nil {
		f.Close() //kmvet:ignore closeerr write already failed; that error is the one to report
		return werr
	}
	return f.Close()
}

// readPath is out of scope: Close errors on os.Open handles are inert.
func readPath(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// The stale directive below suppresses nothing — kmvet flags it so
// suppressions can't outlive the code they excused.
//kmvet:ignore closeerr nothing here needs suppressing // want unusedignore
