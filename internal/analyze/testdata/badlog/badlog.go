// Package badlog violates the nostdlog rule: a library package writing
// to process-global stdout/stderr instead of an injected logger.
package badlog

import (
	"fmt"
	"io"
	"log"
	"log/slog"
	"os"
)

func report(n int) {
	fmt.Println("matches:", n)         // want nostdlog
	fmt.Printf("matches: %d\n", n)     // want nostdlog
	fmt.Print(n)                       // want nostdlog
	log.Printf("searched %d reads", n) // want nostdlog
	log.Println("done")                // want nostdlog
}

func die(err error) {
	log.Fatal(err) // want nostdlog
}

// The print/println builtins bypass fmt and log entirely but still
// write to stderr.
func debug(n int) {
	print("n = ")   // want nostdlog
	println(n)      // want nostdlog
	println("done") // want nostdlog
}

// Compliant variants: explicit sinks and injected loggers produce no
// findings, nor do the fmt formatters that return strings.
func reportTo(w io.Writer, lg *slog.Logger, n int) string {
	fmt.Fprintf(w, "matches: %d\n", n)
	lg.Info("searched", "reads", n)
	custom := log.New(os.Stderr, "bench: ", 0)
	custom.Printf("searched %d reads", n)
	return fmt.Sprintf("%d", n)
}
