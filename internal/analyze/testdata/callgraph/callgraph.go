// Package callgraph is a synthetic fixture for the call-graph layer:
// interface dispatch, function values, recursion, and go-launched
// edges. It is loaded by callgraph_test.go (not the rule fixtures).
package callgraph

// --- interface dispatch: both implementations become edges ---

type Runner interface{ Run(n int) int }

type fast struct{}

func (fast) Run(n int) int { return n }

type slow struct{}

func (slow) Run(n int) int { return step(n) }

func step(n int) int { return n + 1 }

func dispatch(r Runner) int { return r.Run(2) }

// --- function values: only address-taken functions are candidates ---

func double(n int) int { return 2 * n }

func triple(n int) int { return 3 * n }

// halve shares double's signature but is never address-taken, so a
// dynamic call must not edge to it.
func halve(n int) int { return n / 2 }

func apply() int {
	f := double
	g := triple
	return f(1) + g(2)
}

// --- recursion: cycles must not hang reachability walks ---

func selfRec(n int) int {
	if n <= 0 {
		return 0
	}
	return selfRec(n - 1)
}

func mutualA(n int) int {
	if n <= 0 {
		return 0
	}
	return mutualB(n - 1)
}

func mutualB(n int) int { return mutualA(n) }

// --- go statements: edges carry ViaGo ---

func worker() {}

func launch() { go worker() }

// spawnLit's call to worker sits inside a go-launched literal; the
// literal's body is attributed to spawnLit and the edge is ViaGo.
func spawnLit() {
	go func() { worker() }()
}
