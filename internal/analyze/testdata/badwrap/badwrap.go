// Package badwrap violates the wrapformat rule: it returns errors from
// index load paths bare instead of wrapping them with %w.
package badwrap

import (
	"fmt"

	"bwtmatch"
	"bwtmatch/server/cluster"
)

func open(path string) (*bwtmatch.Index, error) {
	idx, err := bwtmatch.LoadFile(path)
	if err != nil {
		return nil, err // want wrapformat
	}
	return idx, nil
}

func openReader(path string) (*bwtmatch.Index, error) {
	idx, loadErr := bwtmatch.LoadFile(path)
	if loadErr != nil {
		return nil, loadErr // want wrapformat
	}
	return idx, nil
}

// openWrapped is compliant: the same call, wrapped. No finding here.
func openWrapped(path string) (*bwtmatch.Index, error) {
	idx, err := bwtmatch.LoadFile(path)
	if err != nil {
		return nil, fmt.Errorf("badwrap: open %s: %w", path, err)
	}
	return idx, nil
}

func reopenForAppend(path string) (*bwtmatch.StreamBuilder, error) {
	sb, err := bwtmatch.OpenAppend(path)
	if err != nil {
		return nil, err // want wrapformat
	}
	return sb, nil
}

// reopenForAppendWrapped is compliant: the Open-prefixed load path,
// wrapped. No finding here.
func reopenForAppendWrapped(path string) (*bwtmatch.StreamBuilder, error) {
	sb, err := bwtmatch.OpenAppend(path)
	if err != nil {
		return nil, fmt.Errorf("badwrap: append %s: %w", path, err)
	}
	return sb, nil
}

func openRoutes(path string) (*cluster.RouteTable, error) {
	rt, err := cluster.LoadRoutesFile(path)
	if err != nil {
		return nil, err // want wrapformat
	}
	return rt, nil
}

// openRoutesWrapped is compliant: ErrRoutes still matches through the
// %w chain. No finding here.
func openRoutesWrapped(path string) (*cluster.RouteTable, error) {
	rt, err := cluster.LoadRoutesFile(path)
	if err != nil {
		return nil, fmt.Errorf("badwrap: routes %s: %w", path, err)
	}
	return rt, nil
}
