// Package badreachpanic violates the reachpanic rule: library
// functions that reach a panic through module-local call chains. The
// direct panic itself is nopanic's finding; reachpanic flags the
// callers that pull the panic into their own contract.
package badreachpanic

import "sync"

// boom panics directly — nopanic territory.
func boom(msg string) {
	panic(msg) // want nopanic
}

// reaches pulls the panic in from one hop away.
func reaches(ok bool) {
	if !ok {
		boom("invariant violated") // want reachpanic
	}
}

// deep reaches it through two hops.
func deep(ok bool) {
	reaches(ok) // want reachpanic
}

// MustInit is the Must* carve-out: a documented panic-on-misuse
// wrapper is not itself flagged...
func MustInit(ok bool) {
	if !ok {
		boom("must")
	}
}

// ...but choosing the panicking form from library code is.
func callsMust() {
	MustInit(true) // want reachpanic
}

// viaGoroutine: a panic on a spawned goroutine still crashes the
// process, so reachability follows go-launched calls too. The join
// keeps goroutinelifecycle quiet; the panic chain is the finding.
func viaGoroutine(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		boom("async") // want reachpanic
	}()
}

// safe is compliant: it returns the condition as an error.
func safe(ok bool) error {
	if !ok {
		return errNotOK
	}
	return nil
}

var errNotOK = errorString("badreachpanic: not ok")

type errorString string

func (e errorString) Error() string { return string(e) }
