// Package badlock violates the copylocks rule: it copies structs that
// contain sync.Mutex / sync.RWMutex by value.
package badlock

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

type registry struct {
	mu      sync.RWMutex
	entries map[string]int
}

// nested embeds a lock-bearing struct one level down.
type nested struct {
	c counter
}

func snapshot(c counter) int { // want copylocks
	return c.n
}

func use() {
	var a counter
	b := a // want copylocks
	_ = b.n

	var r registry
	r2 := r // want copylocks
	_ = r2.entries

	var nd nested
	nd2 := nd // want copylocks
	_ = nd2.c.n

	snapshot(a) // want copylocks
}

// byPointer is compliant: locks travel by reference. No finding here.
func byPointer(c *counter) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}
