// clean_concurrency.go exercises the call-graph-aware rules on
// compliant code: joined goroutines, locks released before blocking,
// capped decode allocations, checked closes — and one deliberately
// detached goroutine whose //kmvet:ignore annotation must suppress the
// finding (a used annotation, so unusedignore stays quiet too).
package clean

import (
	"context"
	"encoding/binary"
	"io"
	"os"
	"sync"
)

const maxRecords = 1 << 16

// fanOut is the joined-worker pattern: Add/Done/Wait.
func fanOut(ctx context.Context, jobs []int) int {
	var wg sync.WaitGroup
	var mu sync.Mutex
	done := 0
	for range jobs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if ctx.Err() != nil {
				return
			}
			mu.Lock()
			done++
			mu.Unlock()
		}()
	}
	wg.Wait()
	return done
}

// detached is a deliberate fire-and-forget: the annotation names the
// reason and satisfies goroutinelifecycle.
func detached(hook func()) {
	go hook() //kmvet:ignore goroutinelifecycle process-lifetime monitor, intentionally detached
}

// sendOutsideLock updates state under the lock and blocks only after
// releasing it.
type mailbox struct {
	mu    sync.Mutex
	seq   int
	queue chan int
}

func (m *mailbox) post() {
	m.mu.Lock()
	m.seq++
	v := m.seq
	m.mu.Unlock()
	m.queue <- v
}

// decodeRecords caps the untrusted count before allocating.
func decodeRecords(r io.Reader) ([]uint64, error) {
	var count uint32
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return nil, err
	}
	if count > maxRecords {
		return nil, io.ErrUnexpectedEOF
	}
	out := make([]uint64, count)
	if err := binary.Read(r, binary.LittleEndian, out); err != nil {
		return nil, err
	}
	return out, nil
}

// saveRecords checks the Close error — the write's real completion.
func saveRecords(path string, recs []uint64) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	return binary.Write(f, binary.LittleEndian, recs)
}
