// Package clean follows every kmvet rule; the analyzer must report zero
// findings on it.
package clean

import (
	"context"
	"fmt"
	"sync"

	"bwtmatch"
)

type registry struct {
	mu      sync.Mutex
	entries map[string]*bwtmatch.Index
}

func (r *registry) open(name, path string) (*bwtmatch.Index, error) {
	idx, err := bwtmatch.LoadFile(path)
	if err != nil {
		return nil, fmt.Errorf("clean: loading %q: %w", name, err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.entries == nil {
		r.entries = make(map[string]*bwtmatch.Index)
	}
	r.entries[name] = idx
	return idx, nil
}

func mapReads(ctx context.Context, idx *bwtmatch.Index, qs []bwtmatch.Query) ([]bwtmatch.Result, error) {
	if idx == nil {
		return nil, fmt.Errorf("clean: nil index")
	}
	return idx.MapAllContext(ctx, qs, bwtmatch.AlgorithmA, 2), nil
}
