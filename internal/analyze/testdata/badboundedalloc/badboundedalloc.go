// Package badboundedalloc violates the boundedalloc rule: allocations
// sized by values read from untrusted input without a dominating
// length-cap check.
package badboundedalloc

import (
	"encoding/binary"
	"io"
)

const maxLen = 1 << 20

// unguarded allocates whatever the header claims — the alloc bomb.
func unguarded(r io.Reader) ([]byte, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	buf := make([]byte, n) // want boundedalloc
	_, err := io.ReadFull(r, buf)
	return buf, err
}

// propagated: taint flows through the byte-order helper and the int
// conversion into the size expression.
func propagated(data []byte) []uint64 {
	raw := binary.LittleEndian.Uint64(data)
	count := int(raw)
	return make([]uint64, count) // want boundedalloc
}

// guarded is compliant: the reject-form cap dominates the allocation.
func guarded(r io.Reader) ([]byte, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n > maxLen {
		return nil, io.ErrUnexpectedEOF
	}
	buf := make([]byte, n)
	_, err := io.ReadFull(r, buf)
	return buf, err
}

// clamped is compliant: the clamp form of the guard also counts.
func clamped(data []byte) []uint64 {
	c := int(binary.LittleEndian.Uint32(data))
	if c > maxLen {
		c = maxLen
	}
	return make([]uint64, c)
}

// fixedSize is compliant: the size never came from input.
func fixedSize() []byte {
	return make([]byte, 64)
}

// derivedLen is compliant: len() of tainted data measures a slice that
// was already allocated under its own cap check, so an allocation
// proportional to it cannot outgrow what the decode admitted.
func derivedLen(r io.Reader) ([]uint64, error) {
	frames, err := readFrames(r)
	if err != nil {
		return nil, err
	}
	return make([]uint64, len(frames)), nil
}

func readFrames(r io.Reader) ([]byte, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n > maxLen {
		return nil, io.ErrUnexpectedEOF
	}
	buf := make([]byte, n)
	_, err := io.ReadFull(r, buf)
	return buf, err
}
