// Package badctx violates the ctxsearch rule: it runs a batch search
// through bare MapAll, which cannot be cancelled, instead of
// MapAllContext.
package badctx

import (
	"context"

	"bwtmatch"
)

func mapReads(idx *bwtmatch.Index, qs []bwtmatch.Query) []bwtmatch.Result {
	return idx.MapAll(qs, bwtmatch.AlgorithmA, 4) // want ctxsearch
}

// mapReadsCtx is compliant: the caller's context is threaded through.
// No finding here.
func mapReadsCtx(ctx context.Context, idx *bwtmatch.Index, qs []bwtmatch.Query) []bwtmatch.Result {
	return idx.MapAllContext(ctx, qs, bwtmatch.AlgorithmA, 4)
}

func mapSubset(sx *bwtmatch.ShardedIndex, qs []bwtmatch.Query) []bwtmatch.Result {
	return sx.MapShards(qs, bwtmatch.AlgorithmA, 4, []int{0, 2}) // want ctxsearch
}

// mapSubsetCtx is compliant: the subset search threads the caller's
// context. No finding here.
func mapSubsetCtx(ctx context.Context, sx *bwtmatch.ShardedIndex, qs []bwtmatch.Query) []bwtmatch.Result {
	return sx.MapShardsContext(ctx, qs, bwtmatch.AlgorithmA, 4, []int{0, 2})
}
