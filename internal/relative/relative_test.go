package relative

import (
	"bytes"
	"math/rand"
	"testing"
)

// randSeq returns a rank-encoded sequence over ranks 1..4.
func randSeq(rng *rand.Rand, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = byte(1 + rng.Intn(4))
	}
	return s
}

// mutate returns a copy of s with roughly rate-fraction point edits
// (substitutions, single-char insertions, deletions).
func mutate(rng *rand.Rand, s []byte, rate float64) []byte {
	out := make([]byte, 0, len(s)+8)
	for _, ch := range s {
		if rng.Float64() < rate {
			switch rng.Intn(3) {
			case 0: // substitute
				out = append(out, byte(1+rng.Intn(4)))
			case 1: // insert then keep
				out = append(out, byte(1+rng.Intn(4)), ch)
			case 2: // delete
			}
		} else {
			out = append(out, ch)
		}
	}
	return out
}

func TestCommonEmitsValidSubsequence(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		a := randSeq(rng, 10+rng.Intn(300))
		b := mutate(rng, a, 0.05)
		lastA, lastB, pairs := -1, -1, 0
		Common(a, b, 256, func(ai, bi int) {
			if ai <= lastA || bi <= lastB {
				t.Fatalf("non-increasing pair (%d,%d) after (%d,%d)", ai, bi, lastA, lastB)
			}
			if a[ai] != b[bi] {
				t.Fatalf("pair (%d,%d): %d != %d", ai, bi, a[ai], b[bi])
			}
			lastA, lastB = ai, bi
			pairs++
		})
		// A 5% mutation rate must leave most rows matched.
		if min := len(a) / 2; pairs < min {
			t.Fatalf("trial %d: only %d pairs for len %d", trial, pairs, len(a))
		}
	}
}

func TestCommonIdentical(t *testing.T) {
	a := randSeq(rand.New(rand.NewSource(2)), 500)
	n := 0
	Common(a, a, 4, func(ai, bi int) {
		if ai != n || bi != n {
			t.Fatalf("pair (%d,%d), want (%d,%d)", ai, bi, n, n)
		}
		n++
	})
	if n != len(a) {
		t.Fatalf("%d pairs for identical input of %d", n, len(a))
	}
}

func TestCommonCapExceededEmitsTrimOnly(t *testing.T) {
	// Totally dissimilar middles with shared ends: the capped Myers run
	// must give up on the middle but still emit the trimmed prefix and
	// suffix.
	a := append(append([]byte{1, 2, 3}, bytes.Repeat([]byte{1}, 50)...), 4, 3, 2)
	b := append(append([]byte{1, 2, 3}, bytes.Repeat([]byte{2}, 60)...), 4, 3, 2)
	var got []int
	Common(a, b, 2, func(ai, bi int) { got = append(got, ai) })
	if len(got) != 6 {
		t.Fatalf("emitted %d pairs, want 6 (prefix+suffix)", len(got))
	}
}

// buildDelta aligns two BWT-like sequences through Common and the
// Builder, the way the fmindex driver does for one block.
func buildDelta(base, tenant []byte) *Delta {
	b := NewBuilder(base, tenant)
	Common(base, tenant, 256, b.Match)
	return b.Finish()
}

func TestDeltaBridgesRankQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		base := randSeq(rng, 50+rng.Intn(400))
		tenant := mutate(rng, base, 0.08)
		d := buildDelta(base, tenant)

		if got := d.TenantRows(); got != len(tenant) {
			t.Fatalf("TenantRows = %d, want %d", got, len(tenant))
		}
		if got := d.BaseRows(); got != len(base) {
			t.Fatalf("BaseRows = %d, want %d", got, len(base))
		}
		baseOcc := func(x byte, j int32) int32 {
			var c int32
			for _, ch := range base[:j] {
				if ch == x {
					c++
				}
			}
			return c
		}
		for i := int32(0); i <= int32(len(tenant)); i++ {
			tIns, j, jDel := d.Split(i)
			for x := byte(1); x <= 4; x++ {
				got := baseOcc(x, j) - d.OccDel(x, jDel) + d.OccIns(x, tIns)
				var want int32
				for _, ch := range tenant[:i] {
					if ch == x {
						want++
					}
				}
				if got != want {
					t.Fatalf("trial %d: occ(%d, %d) = %d, want %d", trial, x, i, got, want)
				}
				all := d.OccInsAll(tIns)
				if all[x-1] != d.OccIns(x, tIns) {
					t.Fatalf("OccInsAll disagrees with OccIns at %d", tIns)
				}
			}
		}
		// Row reads: every tenant row must be recoverable.
		for i := int32(0); i < int32(len(tenant)); i++ {
			var got byte
			if d.IsIns(i) {
				got = d.InsChar(int32(d.TenantIns.Rank1(int(i))))
			} else {
				got = base[d.BaseRow(i)]
			}
			if got != tenant[i] {
				t.Fatalf("trial %d: row %d = %d, want %d", trial, i, got, tenant[i])
			}
		}
	}
}

func TestDeltaRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	base := randSeq(rng, 600)
	tenant := mutate(rng, base, 0.05)
	d := buildDelta(base, tenant)

	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	saved := append([]byte(nil), buf.Bytes()...)
	got, err := ReadDelta(&buf, len(tenant), len(base))
	if err != nil {
		t.Fatal(err)
	}
	if got.InsLen() != d.InsLen() || got.DelLen() != d.DelLen() {
		t.Fatal("exception set sizes differ after round trip")
	}
	for i := int32(0); i < int32(d.InsLen()); i++ {
		if got.InsChar(i) != d.InsChar(i) {
			t.Fatalf("insertion char %d differs after round trip", i)
		}
	}
	for i := int32(0); i < int32(d.DelLen()); i++ {
		if got.DelChar(i) != d.DelChar(i) {
			t.Fatalf("deletion char %d differs after round trip", i)
		}
	}
	for i := int32(0); i <= int32(len(tenant)); i += 7 {
		a1, b1, c1 := d.Split(i)
		a2, b2, c2 := got.Split(i)
		if a1 != a2 || b1 != b2 || c1 != c2 {
			t.Fatalf("Split(%d) differs after round trip", i)
		}
	}

	// Wrong expected geometry must be rejected.
	if _, err := ReadDelta(bytes.NewReader(saved), len(tenant)+1, len(base)); err == nil {
		t.Fatal("mismatched tenant rows accepted")
	}
	// Truncations and bit flips must error, not panic.
	for cut := 0; cut < len(saved); cut += 13 {
		if _, err := ReadDelta(bytes.NewReader(saved[:cut]), len(tenant), len(base)); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	for pos := 16; pos < len(saved); pos += 31 {
		mut := append([]byte(nil), saved...)
		mut[pos] ^= 0x80
		// May legitimately still parse if the flip hits a char payload
		// bit that stays a valid rank; just must not panic.
		_, _ = ReadDelta(bytes.NewReader(mut), len(tenant), len(base))
	}
}

func TestDeltaSizeAndCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	base := randSeq(rng, 1000)
	tenant := mutate(rng, base, 0.02)
	d := buildDelta(base, tenant)
	if d.SizeBytes() <= 0 {
		t.Fatal("SizeBytes not positive")
	}
	// ~2% edits: the delta must be far below a standalone payload.
	if d.SizeBytes() > len(tenant) {
		t.Fatalf("delta %d bytes for %d rows at 2%% divergence", d.SizeBytes(), len(tenant))
	}
	d.NoteBaseRead()
	d.NoteBaseRead()
	d.NoteInsRead()
	if b, i := d.Reads(); b != 2 || i != 1 {
		t.Fatalf("Reads = (%d, %d), want (2, 1)", b, i)
	}
}
