package relative

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync/atomic"

	"bwtmatch/internal/alphabet"
	"bwtmatch/internal/binio"
	"bwtmatch/internal/bitvec"
)

// occRate is the checkpoint spacing of the exception-character occ
// tables: one cumulative count per base every occRate exception
// characters (16 int32s per 64 chars — 0.25 bytes/char of directory).
// The remainder scan counts whole packed bytes through codeCount (4
// codes per lookup), so the spacing costs at most occRate/4 table
// lookups per query, not occRate decodes. Must stay a multiple of 4
// so checkpoints are byte-aligned in the packed payload.
const occRate = 64

// codeCount[c][b] is how many of the four 2-bit codes in byte b equal
// c — the remainder scan's per-byte popcount table.
var codeCount = func() (t [4][256]uint8) {
	for b := 0; b < 256; b++ {
		for s := 0; s < 4; s++ {
			t[b>>(2*s)&3][b]++
		}
	}
	return
}()

// ErrCorrupt reports a delta payload that fails structural validation.
var ErrCorrupt = errors.New("relative: corrupt delta")

// charSeq stores exception characters at 2 bits each. A BWT holds
// exactly one sentinel, so at most one exception character per side is
// a sentinel — its index is escaped out of band (sentAt) and the 2-bit
// codes only ever encode the four proper bases (code = rank-1).
type charSeq struct {
	packed []byte // four 2-bit codes per byte, little-endian within
	n      int32
	sentAt int32 // index whose character is the sentinel, or -1
}

func newCharSeq(chars []byte) charSeq {
	s := charSeq{packed: make([]byte, (len(chars)+3)/4), n: int32(len(chars)), sentAt: -1}
	for i, ch := range chars {
		code := byte(0)
		if ch == alphabet.Sentinel {
			s.sentAt = int32(i)
		} else {
			code = ch - 1
		}
		s.packed[i>>2] |= code << ((i & 3) * 2)
	}
	return s
}

func (s *charSeq) at(i int32) byte {
	if i == s.sentAt {
		return alphabet.Sentinel
	}
	return s.packed[i>>2]>>((i&3)*2)&3 + 1
}

// sizeBytes is the resident payload (the escape index rides in the
// struct header).
func (s *charSeq) sizeBytes() int { return len(s.packed) }

// Delta expresses a tenant BWT as an alignment against a base BWT: a
// common subsequence (rows copied from the base) plus tenant-only
// insertions, mirrored by base-only deletions. TenantIns marks, per
// tenant row, whether the row is an insertion; BaseDel marks, per base
// row, whether the row is skipped. The characters of both exception
// sets are stored packed (2 bits each) with sampled occ checkpoints,
// so a tenant rank query becomes one base rank query plus two small
// corrections:
//
//	tenantOcc(x, i) = baseOcc(x, j) - occDel(x, jDel) + occIns(x, tIns)
//
// where Split(i) maps the tenant prefix [0, i) to the base prefix
// [0, j) covering the same common rows.
type Delta struct {
	TenantIns *bitvec.Rank // tenant rows that are insertions
	BaseDel   *bitvec.Rank // base rows that are deleted

	ins charSeq // characters of insertion rows, tenant order
	del charSeq // characters of deleted rows, base order

	insOcc []int32 // occ checkpoints over ins, 4 per occRate chars
	delOcc []int32 // occ checkpoints over del

	baseReads atomic.Int64 // BWT reads answered from the base
	insReads  atomic.Int64 // BWT reads answered from the insertion set
}

// TenantRows returns the tenant row count (tenant text length + 1).
func (d *Delta) TenantRows() int { return d.TenantIns.Len() }

// BaseRows returns the base row count (base text length + 1).
func (d *Delta) BaseRows() int { return d.BaseDel.Len() }

// InsLen and DelLen return the exception-set sizes.
func (d *Delta) InsLen() int { return int(d.ins.n) }
func (d *Delta) DelLen() int { return int(d.del.n) }

// IsIns reports whether tenant row i is an insertion.
func (d *Delta) IsIns(i int32) bool { return d.TenantIns.Get(int(i)) }

// Split maps the tenant prefix [0, i) to its delta coordinates:
// tIns insertion rows fall inside it, the common rows it contains are
// exactly the base prefix [0, j) minus the jDel deleted rows inside
// that prefix.
func (d *Delta) Split(i int32) (tIns, j, jDel int32) {
	t := d.TenantIns.Rank1(int(i))
	cs := int(i) - t // common rows before tenant row i
	var bj int
	if cs > 0 {
		bj = d.BaseDel.Select0(cs) + 1 // one past the cs-th kept base row
	}
	return int32(t), int32(bj), int32(bj - cs)
}

// BaseRow maps a common tenant row i (IsIns(i) must be false) to its
// base row.
func (d *Delta) BaseRow(i int32) int32 {
	cs := int(i) - d.TenantIns.Rank1(int(i)) // common rows strictly before i
	return int32(d.BaseDel.Select0(cs + 1))
}

// InsChar returns the character of the rank-th insertion row (0-based).
func (d *Delta) InsChar(rank int32) byte { return d.ins.at(rank) }

// DelChar returns the character of the rank-th deleted row (0-based).
func (d *Delta) DelChar(rank int32) byte { return d.del.at(rank) }

// OccIns counts occurrences of base rank x among the first t insertion
// characters.
func (d *Delta) OccIns(x byte, t int32) int32 {
	return occAt(&d.ins, d.insOcc, x, t)
}

// OccDel counts occurrences of base rank x among the first t deleted
// characters.
func (d *Delta) OccDel(x byte, t int32) int32 {
	return occAt(&d.del, d.delOcc, x, t)
}

// OccInsAll returns per-base counts over the first t insertion chars.
func (d *Delta) OccInsAll(t int32) [alphabet.Bases]int32 {
	return occAllAt(&d.ins, d.insOcc, t)
}

// OccDelAll returns per-base counts over the first t deleted chars.
func (d *Delta) OccDelAll(t int32) [alphabet.Bases]int32 {
	return occAllAt(&d.del, d.delOcc, t)
}

func occAt(s *charSeq, occ []int32, x byte, t int32) int32 {
	chk := t / occRate
	code := x - 1
	cnt := occ[chk*alphabet.Bases+int32(code)]
	// Whole packed bytes first (the checkpoint is byte-aligned because
	// occRate is a multiple of 4), then the ragged tail code by code.
	start := chk * occRate
	for b := start >> 2; b < t>>2; b++ {
		cnt += int32(codeCount[code][s.packed[b]])
	}
	for i := t &^ 3; i < t; i++ {
		if s.packed[i>>2]>>((i&3)*2)&3 == code {
			cnt++
		}
	}
	// The sentinel's slot holds code 0; if it fell inside the scanned
	// range it was miscounted as base rank 1.
	if code == 0 && s.sentAt >= start && s.sentAt < t {
		cnt--
	}
	return cnt
}

func occAllAt(s *charSeq, occ []int32, t int32) [alphabet.Bases]int32 {
	chk := t / occRate
	row := occ[chk*alphabet.Bases : chk*alphabet.Bases+alphabet.Bases]
	cnt := [alphabet.Bases]int32{row[0], row[1], row[2], row[3]}
	start := chk * occRate
	for b := start >> 2; b < t>>2; b++ {
		pb := s.packed[b]
		cnt[0] += int32(codeCount[0][pb])
		cnt[1] += int32(codeCount[1][pb])
		cnt[2] += int32(codeCount[2][pb])
		cnt[3] += int32(codeCount[3][pb])
	}
	for i := t &^ 3; i < t; i++ {
		cnt[s.packed[i>>2]>>((i&3)*2)&3]++
	}
	if s.sentAt >= start && s.sentAt < t {
		cnt[0]--
	}
	return cnt
}

// NoteBaseRead / NoteInsRead bump the per-delta read counters feeding
// the km_relative_* base-hit vs delta-correction metrics.
func (d *Delta) NoteBaseRead() { d.baseReads.Add(1) }
func (d *Delta) NoteInsRead()  { d.insReads.Add(1) }

// Reads returns the cumulative (base-hit, insertion-read) counters.
func (d *Delta) Reads() (base, ins int64) {
	return d.baseReads.Load(), d.insReads.Load()
}

// SizeBytes returns the resident delta payload: both marker bitvectors
// with their rank directories, the packed exception characters, and
// their occ checkpoints.
func (d *Delta) SizeBytes() int {
	return d.TenantIns.SizeBytes() + d.BaseDel.SizeBytes() +
		d.ins.sizeBytes() + d.del.sizeBytes() +
		(len(d.insOcc)+len(d.delOcc))*4
}

// buildOcc samples cumulative per-base counts over s every occRate
// positions (checkpoint k covers s[:k*occRate]).
func buildOcc(s *charSeq) []int32 {
	nChk := int(s.n)/occRate + 1
	occ := make([]int32, nChk*alphabet.Bases)
	var running [alphabet.Bases]int32
	for p := int32(0); p <= s.n; p++ {
		if p%occRate == 0 {
			at := int(p) / occRate * alphabet.Bases
			copy(occ[at:at+alphabet.Bases], running[:])
		}
		if p < s.n {
			if ch := s.at(p); ch != alphabet.Sentinel {
				running[ch-1]++
			}
		}
	}
	return occ
}

func finishDelta(ins, del *bitvec.Vector, insChars, delChars []byte) *Delta {
	d := &Delta{
		TenantIns: bitvec.NewRank(ins),
		BaseDel:   bitvec.NewRank(del),
		ins:       newCharSeq(insChars),
		del:       newCharSeq(delChars),
	}
	d.insOcc = buildOcc(&d.ins)
	d.delOcc = buildOcc(&d.del)
	return d
}

// Builder accumulates an alignment between a base BWT and a tenant BWT
// from strictly increasing Match calls and finishes into a Delta.
// Rows skipped over by the cursors are recorded as deletions
// (base side) and insertions (tenant side).
type Builder struct {
	base, tenant []byte
	ins, del     *bitvec.Vector
	insChars     []byte
	delChars     []byte
	curB, curT   int
}

// NewBuilder starts an alignment of tenant against base (both full
// rank-encoded BWTs including their sentinels).
func NewBuilder(base, tenant []byte) *Builder {
	return &Builder{
		base:   base,
		tenant: tenant,
		ins:    bitvec.New(len(tenant)),
		del:    bitvec.New(len(base)),
	}
}

// Match records that base row bi and tenant row ti hold the same
// character and are aligned. Calls must come in strictly increasing
// order on both sides; out-of-order or unequal pairs are ignored (the
// rows fall through to the exception sets, which is always correct).
func (b *Builder) Match(bi, ti int) {
	if bi < b.curB || ti < b.curT || b.base[bi] != b.tenant[ti] {
		return
	}
	for ; b.curB < bi; b.curB++ {
		b.del.Set(b.curB)
		b.delChars = append(b.delChars, b.base[b.curB])
	}
	for ; b.curT < ti; b.curT++ {
		b.ins.Set(b.curT)
		b.insChars = append(b.insChars, b.tenant[b.curT])
	}
	b.curB, b.curT = bi+1, ti+1
}

// Finish consumes the unmatched tails and freezes the Delta.
func (b *Builder) Finish() *Delta {
	for ; b.curB < len(b.base); b.curB++ {
		b.del.Set(b.curB)
		b.delChars = append(b.delChars, b.base[b.curB])
	}
	for ; b.curT < len(b.tenant); b.curT++ {
		b.ins.Set(b.curT)
		b.insChars = append(b.insChars, b.tenant[b.curT])
	}
	return finishDelta(b.ins, b.del, b.insChars, b.delChars)
}

// writeSeq serializes one packed char sequence: count, escape index
// (+1, 0 meaning none), packed codes.
func writeSeq(put func(v any) error, s *charSeq) error {
	if err := put(uint64(s.n)); err != nil {
		return err
	}
	if err := put(uint64(s.sentAt + 1)); err != nil {
		return err
	}
	return put(s.packed)
}

// WriteTo serializes the delta payload (marker words and packed
// exception characters; the occ checkpoints are rebuilt on load).
func (d *Delta) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	put := func(v any) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	insWords := d.TenantIns.Words()
	delWords := d.BaseDel.Words()
	if err := firstErr(
		put(uint64(d.TenantIns.Len())),
		put(uint64(d.BaseDel.Len())),
		put(uint64(len(insWords))),
		put(insWords),
		put(uint64(len(delWords))),
		put(delWords),
		writeSeq(put, &d.ins),
		writeSeq(put, &d.del),
	); err != nil {
		return n, err
	}
	return n, bw.Flush()
}

// readSeq deserializes one packed char sequence of at most maxChars
// characters, validating the escape index and that codes beyond the
// count are zero (so equal deltas have equal serializations).
func readSeq(br *bufio.Reader, maxChars uint64, side string) (charSeq, error) {
	get := func(v any) error { return binary.Read(br, binary.LittleEndian, v) }
	var n, sent uint64
	if err := firstErr(get(&n), get(&sent)); err != nil {
		return charSeq{}, fmt.Errorf("%w: %s chars header: %v", ErrCorrupt, side, err)
	}
	if n > maxChars || sent > n {
		return charSeq{}, fmt.Errorf("%w: %s chars count %d escape %d", ErrCorrupt, side, n, sent)
	}
	packed, err := binio.ReadSlice[byte](br, (n+3)/4)
	if err != nil {
		return charSeq{}, fmt.Errorf("%w: %s chars: %v", ErrCorrupt, side, err)
	}
	if rem := n % 4; rem != 0 && packed[len(packed)-1]>>(rem*2) != 0 {
		return charSeq{}, fmt.Errorf("%w: stale %s char codes past %d", ErrCorrupt, side, n)
	}
	return charSeq{packed: packed, n: int32(n), sentAt: int32(sent) - 1}, nil
}

// ReadDelta deserializes a delta written by WriteTo and validates it
// against the expected row counts: the marker vectors must span
// exactly tenantRows and baseRows bits, the exception sequences must
// match the marker popcounts, and both sides must keep the same number
// of common rows. Violations wrap ErrCorrupt.
func ReadDelta(r io.Reader, tenantRows, baseRows int) (*Delta, error) {
	br := bufio.NewReader(r)
	get := func(v any) error { return binary.Read(br, binary.LittleEndian, v) }

	const maxLen = 1 << 34
	var tn, bn, insWords, delWords uint64
	if err := firstErr(get(&tn), get(&bn)); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrCorrupt, err)
	}
	if int(tn) != tenantRows || int(bn) != baseRows {
		return nil, fmt.Errorf("%w: rows %dx%d, want %dx%d", ErrCorrupt, tn, bn, tenantRows, baseRows)
	}
	if err := get(&insWords); err != nil || insWords > maxLen || insWords != uint64(tn+63)/64 {
		return nil, fmt.Errorf("%w: insertion marker length %d for %d rows", ErrCorrupt, insWords, tn)
	}
	iw, err := binio.ReadSlice[uint64](br, insWords)
	if err != nil {
		return nil, fmt.Errorf("%w: insertion markers: %v", ErrCorrupt, err)
	}
	if err := get(&delWords); err != nil || delWords > maxLen || delWords != uint64(bn+63)/64 {
		return nil, fmt.Errorf("%w: deletion marker length %d for %d rows", ErrCorrupt, delWords, bn)
	}
	dw, err := binio.ReadSlice[uint64](br, delWords)
	if err != nil {
		return nil, fmt.Errorf("%w: deletion markers: %v", ErrCorrupt, err)
	}
	insVec := bitvec.FromWords(iw, int(tn))
	delVec := bitvec.FromWords(dw, int(bn))
	for i := int(tn); i < len(iw)*64; i++ {
		if insVec.Get(i) {
			return nil, fmt.Errorf("%w: stale insertion marker bit %d", ErrCorrupt, i)
		}
	}
	for i := int(bn); i < len(dw)*64; i++ {
		if delVec.Get(i) {
			return nil, fmt.Errorf("%w: stale deletion marker bit %d", ErrCorrupt, i)
		}
	}
	ins, err := readSeq(br, tn, "insertion")
	if err != nil {
		return nil, err
	}
	del, err := readSeq(br, bn, "deletion")
	if err != nil {
		return nil, err
	}

	ti := bitvec.NewRank(insVec)
	bd := bitvec.NewRank(delVec)
	if ti.Ones() != int(ins.n) {
		return nil, fmt.Errorf("%w: %d insertion chars for %d marked rows", ErrCorrupt, ins.n, ti.Ones())
	}
	if bd.Ones() != int(del.n) {
		return nil, fmt.Errorf("%w: %d deletion chars for %d marked rows", ErrCorrupt, del.n, bd.Ones())
	}
	if int(tn)-ti.Ones() != int(bn)-bd.Ones() {
		return nil, fmt.Errorf("%w: common rows disagree (%d tenant, %d base)",
			ErrCorrupt, int(tn)-ti.Ones(), int(bn)-bd.Ones())
	}
	d := &Delta{TenantIns: ti, BaseDel: bd, ins: ins, del: del}
	d.insOcc = buildOcc(&d.ins)
	d.delOcc = buildOcc(&d.del)
	return d, nil
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
