// Package relative implements the delta layer of a relative FM-index:
// a tenant BWT expressed as a common subsequence of a shared base BWT
// plus tenant-only insertions, with rank/select bitvectors bridging
// tenant occ queries to base occ queries plus small corrections (after
// "Reusing an FM-index", cf. PAPERS.md). The package knows nothing
// about FM-index internals — it consumes two byte sequences and serves
// positional/rank queries over their alignment.
package relative

import "bytes"

// Common finds a common subsequence of a and b and calls emit(ai, bi)
// once per matched pair, in increasing order of both indexes. It trims
// the shared prefix and suffix first, then runs Myers' O(ND) diff over
// the middle with the edit-distance budget capped at maxD; if the
// middle needs more than maxD edits its pairs are simply not emitted.
// Any common subsequence — including an empty one — yields a correct
// (just larger) delta, so the cap trades delta size for build time.
func Common(a, b []byte, maxD int, emit func(ai, bi int)) {
	// Shared prefix.
	p := 0
	for p < len(a) && p < len(b) && a[p] == b[p] {
		emit(p, p)
		p++
	}
	a2, b2 := a[p:], b[p:]
	// Shared suffix (not overlapping the prefix).
	s := 0
	for s < len(a2) && s < len(b2) && a2[len(a2)-1-s] == b2[len(b2)-1-s] {
		s++
	}
	mid1, mid2 := a2[:len(a2)-s], b2[:len(b2)-s]
	if len(mid1) > 0 && len(mid2) > 0 {
		myersCommon(mid1, mid2, maxD, p, p, emit)
	}
	for i := s; i > 0; i-- {
		emit(len(a)-i, len(b)-i)
	}
}

// myersCommon runs the classic Myers greedy O(ND) LCS with a trace of
// per-round furthest-reaching snapshots, then backtracks to emit the
// matched pairs (offset by offA/offB) in forward order. If the edit
// distance exceeds maxD nothing is emitted.
func myersCommon(a, b []byte, maxD int, offA, offB int, emit func(ai, bi int)) {
	n, m := len(a), len(b)
	if d := n + m; d < maxD {
		maxD = d
	}
	size := 2*maxD + 2
	v := make([]int, size)
	idx := func(k int) int { return ((k % size) + size) % size }
	var trace [][]int
	found := -1
search:
	for d := 0; d <= maxD; d++ {
		snap := make([]int, size)
		copy(snap, v)
		trace = append(trace, snap)
		for k := -d; k <= d; k += 2 {
			var x int
			if k == -d || (k != d && v[idx(k-1)] < v[idx(k+1)]) {
				x = v[idx(k+1)]
			} else {
				x = v[idx(k-1)] + 1
			}
			y := x - k
			for x < n && y < m && a[x] == b[y] {
				x++
				y++
			}
			v[idx(k)] = x
			if x >= n && y >= m {
				found = d
				break search
			}
		}
	}
	if found < 0 {
		return // budget exceeded: contribute no pairs for this block
	}
	// Backtrack from (n, m) through the snapshots; diagonal runs are the
	// matches, collected in reverse and replayed forward.
	type pair struct{ ai, bi int }
	var rev []pair
	x, y := n, m
	for d := found; d >= 0 && (x > 0 || y > 0); d-- {
		vd := trace[d]
		k := x - y
		var prevK int
		if k == -d || (k != d && vd[idx(k-1)] < vd[idx(k+1)]) {
			prevK = k + 1
		} else {
			prevK = k - 1
		}
		prevX := vd[idx(prevK)]
		prevY := prevX - prevK
		for x > prevX && y > prevY {
			x--
			y--
			rev = append(rev, pair{x, y})
		}
		if d > 0 {
			x, y = prevX, prevY
		}
	}
	for i := len(rev) - 1; i >= 0; i-- {
		emit(offA+rev[i].ai, offB+rev[i].bi)
	}
}

// Equal reports whether two byte slices are identical (convenience for
// callers deciding whether a delta is worth building at all).
func Equal(a, b []byte) bool { return bytes.Equal(a, b) }
