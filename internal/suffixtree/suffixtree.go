// Package suffixtree implements Ukkonen's online suffix tree construction
// and the brute-force k-mismatch tree search the paper attributes to Cole
// et al. [14]: walk the tree along the pattern spending at most k mismatch
// credits, and report the leaves below every surviving depth-m locus.
//
// The paper's experiments built this baseline on the gsuffix package; here
// the tree is built from scratch (DESIGN.md §4).
package suffixtree

import (
	"fmt"

	"bwtmatch/internal/alphabet"
)

// node is a suffix tree node. Edges are labelled by text[start:end); leaves
// use end = -1 meaning "to the end of the text".
type node struct {
	start    int
	end      int // -1 for leaves (open edge)
	children [alphabet.Size]int32
	link     int32
	suffix   int32 // for leaves: starting position of the suffix; else -1
}

// Tree is a suffix tree over one rank-encoded text (values 1..4) with the
// sentinel appended internally.
type Tree struct {
	text  []byte // text + sentinel
	nodes []node
	root  int32
}

// Build constructs the suffix tree of text (rank-encoded, 1..4) in O(n)
// with Ukkonen's algorithm.
func Build(text []byte) (*Tree, error) {
	for i, r := range text {
		if r < alphabet.A || r > alphabet.T {
			return nil, fmt.Errorf("suffixtree: invalid rank %d at position %d", r, i)
		}
	}
	t := &Tree{text: append(append(make([]byte, 0, len(text)+1), text...), alphabet.Sentinel)}
	t.nodes = make([]node, 1, 2*len(t.text))
	t.nodes[0] = node{start: -1, end: -1, link: 0, suffix: -1}
	t.root = 0
	t.build()
	t.assignSuffixes()
	return t, nil
}

func (t *Tree) newNode(start, end int) int32 {
	t.nodes = append(t.nodes, node{start: start, end: end, link: 0, suffix: -1})
	return int32(len(t.nodes) - 1)
}

// edgeEnd returns the exclusive end of a node's incoming edge.
func (t *Tree) edgeEnd(v int32, pos int) int {
	if t.nodes[v].end < 0 {
		return pos + 1
	}
	return t.nodes[v].end
}

func (t *Tree) build() {
	s := t.text
	n := len(s)
	var (
		activeNode   = t.root
		activeEdge   = 0 // index into s of the active edge's first char
		activeLength = 0
		remainder    = 0
	)
	for pos := 0; pos < n; pos++ {
		remainder++
		var lastNew int32 = -1
		for remainder > 0 {
			if activeLength == 0 {
				activeEdge = pos
			}
			child := t.nodes[activeNode].children[s[activeEdge]]
			if child == 0 {
				// No edge: create a leaf; the active node resolves any
				// pending suffix link.
				leaf := t.newNode(pos, -1)
				t.nodes[activeNode].children[s[activeEdge]] = leaf
				if lastNew != -1 {
					t.nodes[lastNew].link = activeNode
					lastNew = -1
				}
			} else {
				// Walk down if the active length spans the edge.
				edgeLen := t.edgeEnd(child, pos) - t.nodes[child].start
				if activeLength >= edgeLen {
					activeEdge += edgeLen
					activeLength -= edgeLen
					activeNode = child
					continue
				}
				if s[t.nodes[child].start+activeLength] == s[pos] {
					// Current character already present: extend implicitly.
					activeLength++
					if lastNew != -1 {
						t.nodes[lastNew].link = activeNode
						lastNew = -1
					}
					break
				}
				// Split the edge.
				split := t.newNode(t.nodes[child].start, t.nodes[child].start+activeLength)
				t.nodes[activeNode].children[s[activeEdge]] = split
				leaf := t.newNode(pos, -1)
				t.nodes[split].children[s[pos]] = leaf
				t.nodes[child].start += activeLength
				t.nodes[split].children[s[t.nodes[child].start]] = child
				if lastNew != -1 {
					t.nodes[lastNew].link = split
				}
				lastNew = split
			}
			remainder--
			if activeNode == t.root && activeLength > 0 {
				activeLength--
				activeEdge = pos - remainder + 1
			} else if activeNode != t.root {
				activeNode = t.nodes[activeNode].link
			}
		}
	}
}

// assignSuffixes walks the finished tree once, computing each leaf's suffix
// start position from its string depth.
func (t *Tree) assignSuffixes() {
	n := len(t.text)
	type frame struct {
		v     int32
		depth int
	}
	stack := []frame{{t.root, 0}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		isLeaf := true
		for _, c := range t.nodes[f.v].children {
			if c != 0 {
				isLeaf = false
				edgeLen := t.leafEdgeEnd(c) - t.nodes[c].start
				stack = append(stack, frame{c, f.depth + edgeLen})
			}
		}
		if isLeaf && f.v != t.root {
			t.nodes[f.v].suffix = int32(n - f.depth)
		}
	}
}

// leafEdgeEnd resolves open edges to the text end.
func (t *Tree) leafEdgeEnd(v int32) int {
	if t.nodes[v].end < 0 {
		return len(t.text)
	}
	return t.nodes[v].end
}

// N returns the text length excluding the sentinel.
func (t *Tree) N() int { return len(t.text) - 1 }

// NodeCount returns the number of tree nodes (diagnostics).
func (t *Tree) NodeCount() int { return len(t.nodes) }

// Contains reports whether the rank-encoded pattern occurs in the text.
func (t *Tree) Contains(pattern []byte) bool {
	v, off := t.root, 0
	for _, x := range pattern {
		if off == 0 {
			v = t.nodes[v].children[x]
			if v == 0 {
				return false
			}
			off = t.nodes[v].start
		}
		if t.text[off] != x {
			return false
		}
		off++
		if off == t.leafEdgeEnd(v) {
			off = 0
		}
	}
	return true
}

// Suffixes appends the suffix start positions of all leaves below v
// (inclusive) to dst.
func (t *Tree) suffixesBelow(v int32, dst []int32) []int32 {
	stack := []int32{v}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		isLeaf := true
		for _, c := range t.nodes[u].children {
			if c != 0 {
				isLeaf = false
				stack = append(stack, c)
			}
		}
		if isLeaf && t.nodes[u].suffix >= 0 {
			dst = append(dst, t.nodes[u].suffix)
		}
	}
	return dst
}

// FindK reports all 0-based positions where pattern occurs with at most k
// mismatches: the brute-force suffix tree search (Cole baseline). Stats
// are reported via the returned visit counter.
func (t *Tree) FindK(pattern []byte, k int) (positions []int32, visited int) {
	m := len(pattern)
	if m == 0 || m > t.N() {
		return nil, 0
	}
	type frame struct {
		v    int32 // current node (edge being consumed)
		off  int   // next text index on v's edge; 0 means "pick child first"
		d    int   // pattern chars consumed
		mism int
	}
	var out []int32
	var stack []frame
	// Seed with the root's children.
	push := func(parent int32, d, mism int) {
		for x := byte(alphabet.A); x <= alphabet.T; x++ {
			c := t.nodes[parent].children[x]
			if c == 0 {
				continue
			}
			e := mism
			if x != pattern[d] {
				e++
				if e > k {
					continue
				}
			}
			stack = append(stack, frame{v: c, off: t.nodes[c].start + 1, d: d + 1, mism: e})
		}
	}
	push(t.root, 0, 0)
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		visited++
		// Consume the rest of the current edge.
		end := t.leafEdgeEnd(f.v)
		ok := true
		for f.off < end && f.d < m {
			if t.text[f.off] == alphabet.Sentinel {
				ok = false
				break
			}
			if t.text[f.off] != pattern[f.d] {
				f.mism++
				if f.mism > k {
					ok = false
					break
				}
			}
			f.off++
			f.d++
		}
		if !ok {
			continue
		}
		if f.d == m {
			out = t.suffixesBelow(f.v, out)
			continue
		}
		push(f.v, f.d, f.mism)
	}
	return out, visited
}
