package suffixtree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"bwtmatch/internal/alphabet"
	"bwtmatch/internal/naive"
)

func randomRanks(rng *rand.Rand, n int) []byte {
	t := make([]byte, n)
	for i := range t {
		t[i] = byte(1 + rng.Intn(4))
	}
	return t
}

func mustBuild(t testing.TB, text []byte) *Tree {
	t.Helper()
	tr, err := Build(text)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestBuildRejectsInvalid(t *testing.T) {
	if _, err := Build([]byte{1, 0, 2}); err == nil {
		t.Fatal("Build accepted sentinel rank")
	}
	if _, err := Build([]byte{9}); err == nil {
		t.Fatal("Build accepted out-of-range rank")
	}
}

func TestContainsAllSubstrings(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 30; trial++ {
		text := randomRanks(rng, 1+rng.Intn(200))
		tr := mustBuild(t, text)
		for q := 0; q < 50; q++ {
			i := rng.Intn(len(text))
			j := i + 1 + rng.Intn(len(text)-i)
			if !tr.Contains(text[i:j]) {
				t.Fatalf("substring %v of %v not found", text[i:j], text)
			}
		}
	}
}

func TestContainsRejectsAbsent(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 30; trial++ {
		text := randomRanks(rng, 20+rng.Intn(100))
		tr := mustBuild(t, text)
		for q := 0; q < 50; q++ {
			pat := randomRanks(rng, 1+rng.Intn(12))
			want := len(naive.Find(text, pat, 0)) > 0
			if got := tr.Contains(pat); got != want {
				t.Fatalf("Contains(%v) = %v, want %v (text %v)", pat, got, want, text)
			}
		}
	}
}

func TestLeafCountEqualsN(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for trial := 0; trial < 20; trial++ {
		text := randomRanks(rng, 1+rng.Intn(300))
		tr := mustBuild(t, text)
		// Leaves below root include the sentinel-only suffix: n+1 total.
		leaves := tr.suffixesBelow(tr.root, nil)
		if len(leaves) != len(text)+1 {
			t.Fatalf("%d leaves, want %d", len(leaves), len(text)+1)
		}
		seen := make(map[int32]bool)
		for _, s := range leaves {
			if s < 0 || int(s) > len(text) || seen[s] {
				t.Fatalf("bad suffix set %v", leaves)
			}
			seen[s] = true
		}
	}
}

func TestFindKAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	for trial := 0; trial < 50; trial++ {
		text := randomRanks(rng, 20+rng.Intn(300))
		tr := mustBuild(t, text)
		for q := 0; q < 10; q++ {
			m := 1 + rng.Intn(20)
			if m > len(text) {
				m = len(text)
			}
			k := rng.Intn(4)
			var pat []byte
			if rng.Intn(2) == 0 {
				p := rng.Intn(len(text) - m + 1)
				pat = append([]byte(nil), text[p:p+m]...)
				for f := 0; f < k; f++ {
					pat[rng.Intn(m)] = byte(1 + rng.Intn(4))
				}
			} else {
				pat = randomRanks(rng, m)
			}
			got, _ := tr.FindK(pat, k)
			sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
			want := naive.Find(text, pat, k)
			if len(got) != len(want) {
				t.Fatalf("FindK found %d, want %d (text=%v pat=%v k=%d)",
					len(got), len(want), text, pat, k)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("FindK = %v, want %v", got, want)
				}
			}
		}
	}
}

func TestFindKQuick(t *testing.T) {
	f := func(seed int64, n16 uint16, m8, k8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		text := randomRanks(rng, 1+int(n16)%250)
		pat := randomRanks(rng, 1+int(m8)%12)
		k := int(k8) % 3
		tr, err := Build(text)
		if err != nil {
			return false
		}
		got, _ := tr.FindK(pat, k)
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		want := naive.Find(text, pat, k)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFindKEdges(t *testing.T) {
	tr := mustBuild(t, []byte{1, 2, 3, 4})
	if got, _ := tr.FindK(nil, 1); got != nil {
		t.Error("empty pattern should return nil")
	}
	if got, _ := tr.FindK([]byte{1, 2, 3, 4, 1}, 4); got != nil {
		t.Error("overlong pattern should return nil")
	}
}

func TestNodeCountLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	text := randomRanks(rng, 10000)
	tr := mustBuild(t, text)
	if tr.NodeCount() > 2*(len(text)+1)+1 {
		t.Errorf("node count %d exceeds 2n+1", tr.NodeCount())
	}
	if tr.N() != len(text) {
		t.Errorf("N = %d", tr.N())
	}
}

func TestPaperExampleText(t *testing.T) {
	text, _ := alphabet.Encode([]byte("acagaca"))
	tr := mustBuild(t, text)
	pat, _ := alphabet.Encode([]byte("aca"))
	got, _ := tr.FindK(pat, 0)
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if len(got) != 2 || got[0] != 0 || got[1] != 4 {
		t.Fatalf("FindK(aca,0) = %v, want [0 4]", got)
	}
}

func BenchmarkBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(66))
	text := randomRanks(rng, 1<<18)
	b.SetBytes(1 << 18)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(text); err != nil {
			b.Fatal(err)
		}
	}
}
