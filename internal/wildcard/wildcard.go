// Package wildcard implements string matching with don't-care symbols,
// the third inexact-matching family the paper's §II surveys: wildcard
// positions in the pattern match any single character. As the paper
// notes, the match relation stops being transitive, so KMP/BM shift
// tables do not apply; the practical approach is segment filtering —
// the solid (wildcard-free) segments of the pattern must occur exactly
// at their offsets, so the rarest segment's occurrences (found on the
// BWT index) propose candidates, which are verified directly.
package wildcard

import (
	"errors"
	"sort"

	"bwtmatch/internal/fmindex"
)

// ErrPattern reports an unusable pattern.
var ErrPattern = errors.New("wildcard: invalid pattern")

// FindNaive is the O(nm) reference matcher: wildcard (in the pattern
// only) matches any text character.
func FindNaive(text, pattern []byte, wildcard byte) []int32 {
	var out []int32
	m := len(pattern)
	if m == 0 || m > len(text) {
		return out
	}
positions:
	for p := 0; p+m <= len(text); p++ {
		for i, c := range pattern {
			if c != wildcard && text[p+i] != c {
				continue positions
			}
		}
		out = append(out, int32(p))
	}
	return out
}

// Matcher answers wildcard queries using an FM-index built over the
// REVERSED target (the library's shared orientation).
type Matcher struct {
	idx  *fmindex.Index
	text []byte
}

// New wraps an index over reverse(text) with the forward text.
func New(idx *fmindex.Index, text []byte) *Matcher {
	return &Matcher{idx: idx, text: text}
}

// segment is a maximal wildcard-free run of the pattern.
type segment struct {
	off, end int
}

// Find returns all 0-based positions where pattern (with the given
// wildcard byte) occurs, sorted.
func (w *Matcher) Find(pattern []byte, wildcard byte) ([]int32, error) {
	m, n := len(pattern), len(w.text)
	if m == 0 {
		return nil, ErrPattern
	}
	if m > n {
		return nil, nil
	}
	segs := solidSegments(pattern, wildcard)
	if len(segs) == 0 {
		// All wildcards: every window matches.
		out := make([]int32, 0, n-m+1)
		for p := 0; p+m <= n; p++ {
			out = append(out, int32(p))
		}
		return out, nil
	}

	// Filter on the segment with the fewest occurrences: count all
	// segments first (cheap backward searches), then locate only the
	// rarest.
	bestIdx, bestCount := -1, 0
	var bestIv fmindex.Interval
	for i, seg := range segs {
		iv := w.searchForward(pattern[seg.off:seg.end])
		if iv.Empty() {
			return nil, nil // a solid segment is absent: no occurrences
		}
		if bestIdx < 0 || iv.Len() < bestCount {
			bestIdx, bestCount, bestIv = i, iv.Len(), iv
		}
	}
	seg := segs[bestIdx]
	segLen := seg.end - seg.off
	var out []int32
	buf := w.idx.Locate(bestIv, nil)
	for _, p := range buf {
		fwd := int32(n) - p - int32(segLen)
		start := fwd - int32(seg.off)
		if start < 0 || int(start)+m > n {
			continue
		}
		if verify(w.text[start:int(start)+m], pattern, wildcard) {
			out = append(out, start)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

func verify(window, pattern []byte, wildcard byte) bool {
	for i, c := range pattern {
		if c != wildcard && window[i] != c {
			return false
		}
	}
	return true
}

func solidSegments(pattern []byte, wildcard byte) []segment {
	var segs []segment
	i := 0
	for i < len(pattern) {
		if pattern[i] == wildcard {
			i++
			continue
		}
		j := i
		for j < len(pattern) && pattern[j] != wildcard {
			j++
		}
		segs = append(segs, segment{off: i, end: j})
		i = j
	}
	return segs
}

func (w *Matcher) searchForward(block []byte) fmindex.Interval {
	iv := w.idx.Full()
	for _, x := range block {
		iv = w.idx.Step(x, iv)
		if iv.Empty() {
			break
		}
	}
	return iv
}
