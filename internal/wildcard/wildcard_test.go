package wildcard

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bwtmatch/internal/fmindex"
)

const wc = byte(0x7F) // test wildcard marker outside the rank range

func randomRanks(rng *rand.Rand, n int) []byte {
	t := make([]byte, n)
	for i := range t {
		t[i] = byte(1 + rng.Intn(4))
	}
	return t
}

func newMatcher(t testing.TB, text []byte) *Matcher {
	t.Helper()
	rev := make([]byte, len(text))
	for i, b := range text {
		rev[len(text)-1-i] = b
	}
	idx, err := fmindex.Build(rev, fmindex.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return New(idx, text)
}

func sprinkleWildcards(rng *rand.Rand, pattern []byte, count int) []byte {
	p := append([]byte(nil), pattern...)
	for i := 0; i < count; i++ {
		p[rng.Intn(len(p))] = wc
	}
	return p
}

func equal32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestFindNaiveBasics(t *testing.T) {
	text := []byte{1, 2, 3, 1, 2, 4, 1, 2, 3}
	got := FindNaive(text, []byte{1, 2, wc}, wc)
	if !equal32(got, []int32{0, 3, 6}) {
		t.Fatalf("got %v", got)
	}
	if FindNaive(text, nil, wc) != nil {
		t.Error("empty pattern matched")
	}
	if FindNaive([]byte{1}, []byte{1, 2}, wc) != nil {
		t.Error("overlong pattern matched")
	}
}

func TestMatcherAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	for trial := 0; trial < 60; trial++ {
		text := randomRanks(rng, 40+rng.Intn(400))
		w := newMatcher(t, text)
		for q := 0; q < 8; q++ {
			m := 2 + rng.Intn(20)
			if m > len(text) {
				m = len(text)
			}
			var pattern []byte
			if rng.Intn(2) == 0 {
				p := rng.Intn(len(text) - m + 1)
				pattern = append([]byte(nil), text[p:p+m]...)
			} else {
				pattern = randomRanks(rng, m)
			}
			pattern = sprinkleWildcards(rng, pattern, rng.Intn(m/2+1))
			got, err := w.Find(pattern, wc)
			if err != nil {
				t.Fatal(err)
			}
			want := FindNaive(text, pattern, wc)
			if !equal32(got, want) {
				t.Fatalf("got %v, want %v (text=%v pattern=%v)", got, want, text, pattern)
			}
		}
	}
}

func TestMatcherAllWildcards(t *testing.T) {
	text := randomRanks(rand.New(rand.NewSource(202)), 20)
	w := newMatcher(t, text)
	got, err := w.Find([]byte{wc, wc, wc}, wc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 18 {
		t.Fatalf("all-wildcard pattern matched %d positions, want 18", len(got))
	}
}

func TestMatcherAbsentSegment(t *testing.T) {
	text := []byte{1, 1, 1, 1, 1, 1}
	w := newMatcher(t, text)
	got, err := w.Find([]byte{1, wc, 4}, wc)
	if err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Fatalf("absent segment matched: %v", got)
	}
}

func TestMatcherValidation(t *testing.T) {
	w := newMatcher(t, []byte{1, 2, 3})
	if _, err := w.Find(nil, wc); err == nil {
		t.Error("empty pattern accepted")
	}
	got, err := w.Find([]byte{1, wc, 3, 4}, wc)
	if err != nil || got != nil {
		t.Errorf("overlong pattern: %v, %v", got, err)
	}
}

func TestMatcherQuick(t *testing.T) {
	f := func(seed int64, n16 uint16, m8, w8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		text := randomRanks(rng, 5+int(n16)%300)
		m := 1 + int(m8)%15
		if m > len(text) {
			m = len(text)
		}
		pattern := sprinkleWildcards(rng, randomRanks(rng, m), int(w8)%(m+1))
		rev := make([]byte, len(text))
		for i, b := range text {
			rev[len(text)-1-i] = b
		}
		idx, err := fmindex.Build(rev, fmindex.DefaultOptions())
		if err != nil {
			return false
		}
		got, err := New(idx, text).Find(pattern, wc)
		if err != nil {
			return false
		}
		return equal32(got, FindNaive(text, pattern, wc))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
