// Package align implements scoring-based sequence alignment — the other
// branch of the paper's §II taxonomy of inexact matching ("a best
// alignment between r and s ... in terms of a given distance function or
// a score matrix"). Global (Needleman–Wunsch) and local (Smith–Waterman)
// alignment with affine-free linear gap costs, full traceback, and a
// score-only linear-space variant for long sequences.
package align

import (
	"bytes"
	"errors"
	"fmt"
)

// Scoring defines match/mismatch/gap scores. Match should be positive,
// Mismatch and Gap negative for meaningful alignments.
type Scoring struct {
	Match    int
	Mismatch int
	Gap      int
}

// DefaultScoring is the classic +2/-1/-2 DNA scheme.
func DefaultScoring() Scoring { return Scoring{Match: 2, Mismatch: -1, Gap: -2} }

// ErrInput reports unusable sequences or scores.
var ErrInput = errors.New("align: invalid input")

// Op is one traceback operation.
type Op byte

const (
	OpMatch    Op = 'M' // characters aligned and equal
	OpMismatch Op = 'X' // characters aligned and different
	OpInsA     Op = 'I' // gap in b (consume from a)
	OpInsB     Op = 'D' // gap in a (consume from b)
)

// Alignment is a scored alignment with its operation string.
type Alignment struct {
	Score int
	// StartA/StartB are the 0-based positions where the alignment begins
	// (always 0 for global alignment).
	StartA, StartB int
	// Ops is the traceback (from the start of the alignment).
	Ops []Op
}

// String renders the alignment compactly, e.g. "5M1X3M1D2M".
func (a Alignment) String() string {
	var buf bytes.Buffer
	for i := 0; i < len(a.Ops); {
		j := i
		for j < len(a.Ops) && a.Ops[j] == a.Ops[i] {
			j++
		}
		fmt.Fprintf(&buf, "%d%c", j-i, a.Ops[i])
		i = j
	}
	return buf.String()
}

// Global computes the optimal Needleman–Wunsch alignment of a and b.
func Global(a, b []byte, sc Scoring) (Alignment, error) {
	if sc.Gap > 0 {
		return Alignment{}, fmt.Errorf("%w: positive gap score", ErrInput)
	}
	n, m := len(a), len(b)
	// dp[i][j] = best score aligning a[:i] with b[:j].
	dp := make([][]int, n+1)
	for i := range dp {
		dp[i] = make([]int, m+1)
	}
	for i := 1; i <= n; i++ {
		dp[i][0] = i * sc.Gap
	}
	for j := 1; j <= m; j++ {
		dp[0][j] = j * sc.Gap
	}
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			s := sc.Mismatch
			if a[i-1] == b[j-1] {
				s = sc.Match
			}
			dp[i][j] = max3(dp[i-1][j-1]+s, dp[i-1][j]+sc.Gap, dp[i][j-1]+sc.Gap)
		}
	}
	ops := tracebackGlobal(a, b, sc, dp)
	return Alignment{Score: dp[n][m], Ops: ops}, nil
}

func tracebackGlobal(a, b []byte, sc Scoring, dp [][]int) []Op {
	var rev []Op
	i, j := len(a), len(b)
	for i > 0 || j > 0 {
		switch {
		case i > 0 && j > 0 && dp[i][j] == dp[i-1][j-1]+sub(a[i-1], b[j-1], sc):
			if a[i-1] == b[j-1] {
				rev = append(rev, OpMatch)
			} else {
				rev = append(rev, OpMismatch)
			}
			i--
			j--
		case i > 0 && dp[i][j] == dp[i-1][j]+sc.Gap:
			rev = append(rev, OpInsA)
			i--
		default:
			rev = append(rev, OpInsB)
			j--
		}
	}
	reverseOps(rev)
	return rev
}

// Local computes the optimal Smith–Waterman local alignment of a and b.
// A zero-length alignment (score 0) is returned when nothing scores
// positively.
func Local(a, b []byte, sc Scoring) (Alignment, error) {
	if sc.Gap > 0 {
		return Alignment{}, fmt.Errorf("%w: positive gap score", ErrInput)
	}
	n, m := len(a), len(b)
	dp := make([][]int, n+1)
	for i := range dp {
		dp[i] = make([]int, m+1)
	}
	best, bi, bj := 0, 0, 0
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			v := max3(dp[i-1][j-1]+sub(a[i-1], b[j-1], sc), dp[i-1][j]+sc.Gap, dp[i][j-1]+sc.Gap)
			if v < 0 {
				v = 0
			}
			dp[i][j] = v
			if v > best {
				best, bi, bj = v, i, j
			}
		}
	}
	// Trace back from the maximum until a zero cell.
	var rev []Op
	i, j := bi, bj
	for i > 0 && j > 0 && dp[i][j] > 0 {
		switch {
		case dp[i][j] == dp[i-1][j-1]+sub(a[i-1], b[j-1], sc):
			if a[i-1] == b[j-1] {
				rev = append(rev, OpMatch)
			} else {
				rev = append(rev, OpMismatch)
			}
			i--
			j--
		case dp[i][j] == dp[i-1][j]+sc.Gap:
			rev = append(rev, OpInsA)
			i--
		default:
			rev = append(rev, OpInsB)
			j--
		}
	}
	reverseOps(rev)
	return Alignment{Score: best, StartA: i, StartB: j, Ops: rev}, nil
}

// GlobalScore computes only the Needleman–Wunsch score in O(min(n,m))
// space, for long sequences where the traceback matrix would not fit.
func GlobalScore(a, b []byte, sc Scoring) (int, error) {
	if sc.Gap > 0 {
		return 0, fmt.Errorf("%w: positive gap score", ErrInput)
	}
	if len(b) > len(a) {
		a, b = b, a
	}
	m := len(b)
	prev := make([]int, m+1)
	cur := make([]int, m+1)
	for j := 0; j <= m; j++ {
		prev[j] = j * sc.Gap
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i * sc.Gap
		for j := 1; j <= m; j++ {
			cur[j] = max3(prev[j-1]+sub(a[i-1], b[j-1], sc), prev[j]+sc.Gap, cur[j-1]+sc.Gap)
		}
		prev, cur = cur, prev
	}
	return prev[m], nil
}

func sub(x, y byte, sc Scoring) int {
	if x == y {
		return sc.Match
	}
	return sc.Mismatch
}

func max3(a, b, c int) int {
	if b > a {
		a = b
	}
	if c > a {
		a = c
	}
	return a
}

func reverseOps(ops []Op) {
	for i, j := 0, len(ops)-1; i < j; i, j = i+1, j-1 {
		ops[i], ops[j] = ops[j], ops[i]
	}
}

// Validate checks that an alignment's operations are consistent with the
// two sequences and recomputes its score; used by tests and by callers
// that persist alignments.
func Validate(a, b []byte, al Alignment, sc Scoring, local bool) error {
	i, j := al.StartA, al.StartB
	score := 0
	for _, op := range al.Ops {
		switch op {
		case OpMatch, OpMismatch:
			if i >= len(a) || j >= len(b) {
				return fmt.Errorf("%w: ops overrun sequences", ErrInput)
			}
			eq := a[i] == b[j]
			if eq != (op == OpMatch) {
				return fmt.Errorf("%w: op %c at (%d,%d) contradicts characters", ErrInput, op, i, j)
			}
			score += sub(a[i], b[j], sc)
			i++
			j++
		case OpInsA:
			if i >= len(a) {
				return fmt.Errorf("%w: ops overrun a", ErrInput)
			}
			score += sc.Gap
			i++
		case OpInsB:
			if j >= len(b) {
				return fmt.Errorf("%w: ops overrun b", ErrInput)
			}
			score += sc.Gap
			j++
		default:
			return fmt.Errorf("%w: unknown op %c", ErrInput, op)
		}
	}
	if !local && (i != len(a) || j != len(b)) {
		return fmt.Errorf("%w: global alignment does not span sequences", ErrInput)
	}
	if score != al.Score {
		return fmt.Errorf("%w: score %d, ops sum to %d", ErrInput, al.Score, score)
	}
	return nil
}
