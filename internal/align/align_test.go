package align

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomSeq(rng *rand.Rand, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = "acgt"[rng.Intn(4)]
	}
	return s
}

func TestGlobalIdentical(t *testing.T) {
	sc := DefaultScoring()
	a := []byte("acgtacgt")
	al, err := Global(a, a, sc)
	if err != nil {
		t.Fatal(err)
	}
	if al.Score != 8*sc.Match {
		t.Errorf("score = %d", al.Score)
	}
	if al.String() != "8M" {
		t.Errorf("ops = %s", al.String())
	}
	if err := Validate(a, a, al, sc, false); err != nil {
		t.Error(err)
	}
}

func TestGlobalSubstitution(t *testing.T) {
	sc := DefaultScoring()
	al, _ := Global([]byte("acgt"), []byte("aagt"), sc)
	if al.Score != 3*sc.Match+sc.Mismatch {
		t.Errorf("score = %d", al.Score)
	}
	if al.String() != "1M1X2M" {
		t.Errorf("ops = %s", al.String())
	}
}

func TestGlobalGap(t *testing.T) {
	sc := DefaultScoring()
	al, _ := Global([]byte("acgt"), []byte("act"), sc)
	if al.Score != 3*sc.Match+sc.Gap {
		t.Errorf("score = %d, ops %s", al.Score, al.String())
	}
	if err := Validate([]byte("acgt"), []byte("act"), al, sc, false); err != nil {
		t.Error(err)
	}
}

func TestGlobalEmpty(t *testing.T) {
	sc := DefaultScoring()
	al, _ := Global(nil, []byte("acg"), sc)
	if al.Score != 3*sc.Gap || al.String() != "3D" {
		t.Errorf("empty-a alignment: score %d ops %s", al.Score, al.String())
	}
	al, _ = Global(nil, nil, sc)
	if al.Score != 0 || len(al.Ops) != 0 {
		t.Errorf("empty-empty: %+v", al)
	}
}

func TestGlobalRejectsPositiveGap(t *testing.T) {
	if _, err := Global([]byte("a"), []byte("a"), Scoring{1, -1, 1}); err == nil {
		t.Error("positive gap accepted")
	}
}

func TestLocalFindsEmbeddedMatch(t *testing.T) {
	sc := DefaultScoring()
	a := []byte("ttttACGTACGtttt")
	b := []byte("ggggACGTACGgggg")
	al, err := Local(a, b, sc)
	if err != nil {
		t.Fatal(err)
	}
	if al.Score != 7*sc.Match {
		t.Errorf("score = %d, ops %s", al.Score, al.String())
	}
	if al.String() != "7M" {
		t.Errorf("ops = %s, want 7M", al.String())
	}
	if al.StartA != 4 || al.StartB != 4 {
		t.Errorf("start = (%d,%d)", al.StartA, al.StartB)
	}
	if err := Validate(a, b, al, sc, true); err != nil {
		t.Error(err)
	}
}

func TestLocalNothingPositive(t *testing.T) {
	al, _ := Local([]byte("aaaa"), []byte("tttt"), DefaultScoring())
	if al.Score != 0 || len(al.Ops) != 0 {
		t.Errorf("expected empty local alignment: %+v", al)
	}
}

func TestGlobalScoreMatchesGlobal(t *testing.T) {
	rng := rand.New(rand.NewSource(191))
	sc := DefaultScoring()
	for trial := 0; trial < 100; trial++ {
		a := randomSeq(rng, rng.Intn(60))
		b := randomSeq(rng, rng.Intn(60))
		full, err := Global(a, b, sc)
		if err != nil {
			t.Fatal(err)
		}
		score, err := GlobalScore(a, b, sc)
		if err != nil {
			t.Fatal(err)
		}
		if score != full.Score {
			t.Fatalf("GlobalScore %d, Global %d (a=%q b=%q)", score, full.Score, a, b)
		}
		if err := Validate(a, b, full, sc, false); err != nil {
			t.Fatalf("traceback invalid: %v", err)
		}
	}
}

func TestLocalValidatedQuick(t *testing.T) {
	sc := DefaultScoring()
	f := func(seed int64, n8, m8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomSeq(rng, int(n8)%50)
		b := randomSeq(rng, int(m8)%50)
		al, err := Local(a, b, sc)
		if err != nil {
			return false
		}
		if al.Score < 0 {
			return false
		}
		return Validate(a, b, al, sc, true) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestLocalScoreAtLeastBestCommonSubstring(t *testing.T) {
	// The local score is at least Match * (length of any common
	// substring); plant one to check.
	rng := rand.New(rand.NewSource(192))
	sc := DefaultScoring()
	for trial := 0; trial < 30; trial++ {
		core := randomSeq(rng, 10+rng.Intn(20))
		a := append(append(randomSeq(rng, rng.Intn(20)), core...), randomSeq(rng, rng.Intn(20))...)
		b := append(append(randomSeq(rng, rng.Intn(20)), core...), randomSeq(rng, rng.Intn(20))...)
		al, err := Local(a, b, sc)
		if err != nil {
			t.Fatal(err)
		}
		if al.Score < len(core)*sc.Match {
			t.Fatalf("local score %d below planted floor %d", al.Score, len(core)*sc.Match)
		}
	}
}

func TestValidateRejectsTampering(t *testing.T) {
	sc := DefaultScoring()
	a, b := []byte("acgt"), []byte("acgt")
	al, _ := Global(a, b, sc)
	al.Score++
	if err := Validate(a, b, al, sc, false); err == nil {
		t.Error("tampered score accepted")
	}
	al.Score--
	al.Ops[0] = OpMismatch
	if err := Validate(a, b, al, sc, false); err == nil {
		t.Error("tampered op accepted")
	}
}

func TestAlignmentString(t *testing.T) {
	al := Alignment{Ops: []Op{OpMatch, OpMatch, OpInsA, OpMismatch}}
	if got := al.String(); got != "2M1I1X" {
		t.Errorf("String = %q", got)
	}
	if (Alignment{}).String() != "" {
		t.Error("empty alignment string")
	}
}
