package obs

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewLatencyHistogram()
	for _, d := range []time.Duration{
		50 * time.Microsecond,  // le0.1
		500 * time.Microsecond, // le1
		5 * time.Millisecond,   // le10
		2 * time.Second,        // le3000
		10 * time.Second,       // +inf
	} {
		h.Observe(d)
	}
	snap := h.Snapshot()
	if snap["count"].(int64) != 5 {
		t.Fatalf("count = %v", snap["count"])
	}
	buckets := snap["buckets_ms"].(map[string]int64)
	for _, want := range []string{"le0.1", "le1", "le10", "le3000", "+inf"} {
		if buckets[want] != 1 {
			t.Errorf("bucket %s = %d, want 1", want, buckets[want])
		}
	}
	sum := snap["sum_ms"].(float64)
	if sum < 12000 || sum > 12010 {
		t.Errorf("sum_ms = %v", sum)
	}
	if mean := snap["mean_ms"].(float64); mean < 2400 || mean > 2403 {
		t.Errorf("mean_ms = %v", mean)
	}
}

func TestNewHistogramNormalizesBounds(t *testing.T) {
	h := NewHistogram([]float64{3, 1, 1, math.Inf(1), math.NaN(), 2})
	want := []float64{1, 2, 3}
	got := h.Bounds()
	if len(got) != len(want) {
		t.Fatalf("bounds = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bounds = %v, want %v", got, want)
		}
	}
	// Empty and all-invalid inputs fall back to the default set.
	if n := len(NewHistogram(nil).Bounds()); n != DefaultBucketCount-1 {
		t.Errorf("empty-bounds histogram has %d bounds, want %d", n, DefaultBucketCount-1)
	}
}

func TestFormatBound(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0.1, "le0.1"},
		{0.05, "le0.05"},   // sub-millisecond
		{0.001, "le0.001"}, // one microsecond
		{1, "le1"},
		{3000, "le3000"},
		{math.Inf(1), "+inf"}, // overflow bucket
	}
	for _, c := range cases {
		if got := FormatBound(c.in); got != c.want {
			t.Errorf("FormatBound(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestHistogramWritePrometheusCumulative(t *testing.T) {
	h := NewHistogram([]float64{1, 10})
	h.Observe(500 * time.Microsecond) // le1
	h.Observe(5 * time.Millisecond)   // le10
	h.Observe(50 * time.Millisecond)  // +Inf
	var sb strings.Builder
	WriteHistogramMeta(&sb, "x_ms", "test histogram")
	h.WritePrometheus(&sb, "x_ms", `method="a"`)
	out := sb.String()
	for _, want := range []string{
		`x_ms_bucket{method="a",le="1"} 1`,
		`x_ms_bucket{method="a",le="10"} 2`,
		`x_ms_bucket{method="a",le="+Inf"} 3`,
		`x_ms_count{method="a"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Errorf("exposition invalid: %v\n%s", err, out)
	}

	// Unlabelled series must not emit empty braces.
	sb.Reset()
	WriteHistogramMeta(&sb, "y_ms", "test")
	h.WritePrometheus(&sb, "y_ms", "")
	if strings.Contains(sb.String(), "{}") {
		t.Errorf("empty label braces in:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "y_ms_sum ") {
		t.Errorf("missing bare y_ms_sum in:\n%s", sb.String())
	}
	if err := ValidateExposition(strings.NewReader(sb.String())); err != nil {
		t.Errorf("exposition invalid: %v\n%s", err, sb.String())
	}
}
