package obs

import (
	"strings"
	"testing"
)

func TestValidateExpositionAccepts(t *testing.T) {
	good := strings.Join([]string{
		"# HELP kmserved_queries_total reads searched",
		"# TYPE kmserved_queries_total counter",
		"kmserved_queries_total 123",
		"",
		"# a free-form comment",
		"# HELP kmserved_in_flight searches executing",
		"# TYPE kmserved_in_flight gauge",
		"kmserved_in_flight 0",
		"# TYPE kmserved_latency_ms histogram",
		`kmserved_latency_ms_bucket{method="a",le="0.1"} 1`,
		`kmserved_latency_ms_bucket{method="a",le="+Inf"} 2`,
		`kmserved_latency_ms_sum{method="a"} 3.5`,
		`kmserved_latency_ms_count{method="a"} 2`,
		"# TYPE with_ts untyped",
		"with_ts 1.5e3 1700000000000",
	}, "\n")
	if err := ValidateExposition(strings.NewReader(good)); err != nil {
		t.Fatalf("valid exposition rejected: %v", err)
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"no samples", "# HELP x y\n# TYPE x counter\n"},
		{"bad metric name", "# TYPE 9bad counter\n9bad 1\n"},
		{"bad value", "# TYPE x counter\nx notanumber\n"},
		{"missing type", "x 1\n"},
		{"unterminated labels", "# TYPE x counter\nx{a=\"b 1\n"},
		{"unquoted label value", "# TYPE x counter\nx{a=b} 1\n"},
		{"bad label name", "# TYPE x counter\nx{9a=\"b\"} 1\n"},
		{"malformed type line", "# TYPE x notatype\nx 1\n"},
		{"trailing garbage", "# TYPE x counter\nx 1 2 3\n"},
		{"conflicting re-declared type",
			"# TYPE x counter\nx 1\n# TYPE x gauge\nx 2\n"},
		{"histogram without +Inf bucket", strings.Join([]string{
			"# TYPE h histogram",
			`h_bucket{le="0.1"} 1`,
			`h_bucket{le="100"} 2`,
			`h_sum 3.5`,
			`h_count 2`,
			"",
		}, "\n")},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := ValidateExposition(strings.NewReader(c.in)); err == nil {
				t.Errorf("accepted invalid exposition:\n%s", c.in)
			}
		})
	}
}

// An exact duplicate TYPE declaration is legal (the server tiers emit a
// shared histogram header once per scrape section); only a *conflicting*
// re-declaration is an error.
func TestValidateExpositionDuplicateTypeSameKind(t *testing.T) {
	in := "# TYPE x counter\nx 1\n# TYPE x counter\nx 2\n"
	if err := ValidateExposition(strings.NewReader(in)); err != nil {
		t.Fatalf("same-kind re-declaration rejected: %v", err)
	}
}

func TestWriteGaugeFloatValidates(t *testing.T) {
	var sb strings.Builder
	WriteGaugeFloat(&sb, "rate", "a ratio", 0.125)
	if !strings.Contains(sb.String(), "rate 0.125\n") {
		t.Fatalf("unexpected output:\n%s", sb.String())
	}
	if err := ValidateExposition(strings.NewReader(sb.String())); err != nil {
		t.Fatalf("helper output invalid: %v", err)
	}
}

func TestWriteCounterGaugeValidate(t *testing.T) {
	var sb strings.Builder
	WriteCounter(&sb, "a_total", "things", 7)
	WriteGauge(&sb, "b", "level", -2)
	out := sb.String()
	if !strings.Contains(out, "a_total 7\n") || !strings.Contains(out, "b -2\n") {
		t.Fatalf("unexpected output:\n%s", out)
	}
	if err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("helper output invalid: %v\n%s", err, out)
	}
}
