package obs

import (
	"sync"
	"time"
)

// EventKind classifies trace events. The instant kinds mirror the
// paper's work accounting (see the package comment).
type EventKind uint8

const (
	// EvBegin and EvEnd delimit a named phase span (e.g. "phi",
	// "traverse", "locate").
	EvBegin EventKind = iota
	EvEnd
	// EvExpand fires when a multi-row BWT interval is explored fresh
	// (one M-tree run node materialized by live search).
	EvExpand
	// EvMerge fires when a recurring BWT interval is resolved by
	// derivation instead of re-searching the BWT — the paper's merge
	// short-circuit. Traced merge events equal Stats.MemoHits.
	EvMerge
	// EvFallback fires when a derivation has to resume live search
	// (cached subtree explored with a smaller budget or depth).
	EvFallback
	// EvLeaf fires once per maximal root-to-leaf path terminal of the
	// (conceptual) M-tree. Traced leaf events equal Stats.MTreeLeaves,
	// the paper's n′.
	EvLeaf
	// EvStep marks a batch of BWT backward-extension steps.
	EvStep
	// EvLocate fires once per Locate call, with the resolved row count
	// and the LF-mapping steps walked to sampled suffix-array entries.
	EvLocate
)

// String names the kind as it appears in trace output.
func (k EventKind) String() string {
	switch k {
	case EvBegin:
		return "begin"
	case EvEnd:
		return "end"
	case EvExpand:
		return "expand"
	case EvMerge:
		return "merge"
	case EvFallback:
		return "fallback"
	case EvLeaf:
		return "leaf"
	case EvStep:
		return "step"
	case EvLocate:
		return "locate"
	default:
		return "unknown"
	}
}

// Arg is one named integer attached to an event.
type Arg struct {
	Key string
	Val int64
}

// Tracer receives search-path events. Implementations must be safe for
// use from a single search goroutine; the Recorder implementation is
// additionally safe for concurrent use. A nil Tracer means tracing is
// disabled — every emit site guards with a nil check, so the disabled
// cost is one compare-and-branch per potential event.
type Tracer interface {
	// Begin opens a named phase span.
	Begin(name string)
	// End closes the innermost open span, attaching args to it.
	End(args ...Arg)
	// Emit records one instant event.
	Emit(kind EventKind, args ...Arg)
}

// Event is one recorded trace entry.
type Event struct {
	Kind EventKind
	Name string        // span name for EvBegin/EvEnd, kind name otherwise
	T    time.Duration // offset from the recorder's start
	TID  int           // logical track (one per read in batch traces)
	Args []Arg
}

// Recorder implements Tracer by recording timestamped events in memory.
// It is safe for concurrent use; concurrent emitters should distinguish
// themselves via SetTID tracks (or serialize, as kmsearch -trace does).
type Recorder struct {
	mu     sync.Mutex
	start  time.Time
	events []Event
	stack  []string
	tid    int
}

// NewRecorder starts an empty recorder; event timestamps are offsets
// from this call.
func NewRecorder() *Recorder { return &Recorder{start: time.Now(), tid: 1} }

// SetTID switches the logical track stamped on subsequent events.
// Chrome trace viewers render each track as its own row.
func (r *Recorder) SetTID(tid int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tid = tid
}

// Begin implements Tracer.
func (r *Recorder) Begin(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stack = append(r.stack, name)
	r.events = append(r.events, Event{Kind: EvBegin, Name: name, T: time.Since(r.start), TID: r.tid})
}

// End implements Tracer.
func (r *Recorder) End(args ...Arg) {
	r.mu.Lock()
	defer r.mu.Unlock()
	name := ""
	if n := len(r.stack); n > 0 {
		name = r.stack[n-1]
		r.stack = r.stack[:n-1]
	}
	r.events = append(r.events, Event{Kind: EvEnd, Name: name, T: time.Since(r.start), TID: r.tid, Args: args})
}

// Emit implements Tracer.
func (r *Recorder) Emit(kind EventKind, args ...Arg) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, Event{Kind: kind, Name: kind.String(), T: time.Since(r.start), TID: r.tid, Args: args})
}

// Events returns a copy of everything recorded so far.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// CountKind returns how many events of the kind were recorded.
func (r *Recorder) CountKind(kind EventKind) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, e := range r.events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// SumArg totals the named argument across all events of the kind.
func (r *Recorder) SumArg(kind EventKind, key string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var total int64
	for _, e := range r.events {
		if e.Kind != kind {
			continue
		}
		for _, a := range e.Args {
			if a.Key == key {
				total += a.Val
			}
		}
	}
	return total
}
