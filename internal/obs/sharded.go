package obs

import (
	"io"
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// numShards is the stripe width for sharded counters and histograms:
// the next power of two at or above GOMAXPROCS (capped at 64), fixed at
// process start. Power-of-two width lets the shard pick be a mask
// instead of a modulo.
var numShards = func() int {
	n := runtime.GOMAXPROCS(0)
	s := 1
	for s < n && s < 64 {
		s <<= 1
	}
	return s
}()

// shardIdx picks a stripe for the calling goroutine. rand/v2's
// top-level generator reads per-P state without locking, so concurrent
// callers on different CPUs land on (statistically) different stripes
// without any pinning API, and the pick costs a few nanoseconds.
func shardIdx() int {
	return int(rand.Uint64() & uint64(numShards-1))
}

// counterCell is one stripe, padded out to its own cache line so
// neighbouring stripes never false-share.
type counterCell struct {
	v atomic.Int64
	_ [56]byte
}

// ShardedCounter is a monotonic (or signed) counter striped across
// cache-line-padded cells. Add touches one stripe; Load sums all of
// them, which is the scrape-time cost the hot path no longer pays.
// The zero value is ready to use and shares the call shape of
// atomic.Int64 (Add/Load), so it can replace one without touching call
// sites. Load is not a snapshot barrier: concurrent Adds may or may not
// be included, exactly as with a plain atomic.
type ShardedCounter struct {
	once  sync.Once
	cells []counterCell
}

func (c *ShardedCounter) initCells() { c.cells = make([]counterCell, numShards) }

// Add adds n to the counter.
func (c *ShardedCounter) Add(n int64) {
	c.once.Do(c.initCells)
	c.cells[shardIdx()].v.Add(n)
}

// Load returns the summed value across all stripes.
func (c *ShardedCounter) Load() int64 {
	c.once.Do(c.initCells)
	var sum int64
	for i := range c.cells {
		sum += c.cells[i].v.Load()
	}
	return sum
}

// ShardedHistogram stripes a fixed-bucket latency histogram: Observe
// updates one stripe's buckets, the read side (Count, SumMS, Snapshot,
// WritePrometheus) merges stripes at scrape time. All stripes share one
// bounds slice. Construct with NewShardedLatencyHistogram.
type ShardedHistogram struct {
	shards []*Histogram
}

// NewShardedLatencyHistogram builds a striped histogram over
// DefaultLatencyBounds.
func NewShardedLatencyHistogram() *ShardedHistogram {
	s := &ShardedHistogram{shards: make([]*Histogram, numShards)}
	for i := range s.shards {
		s.shards[i] = NewLatencyHistogram()
	}
	return s
}

// Observe records one duration on the calling goroutine's stripe.
func (s *ShardedHistogram) Observe(d time.Duration) {
	s.shards[shardIdx()].Observe(d)
}

// merged sums every stripe into one Histogram for rendering.
func (s *ShardedHistogram) merged() *Histogram {
	out := NewHistogram(s.shards[0].bounds)
	for _, h := range s.shards {
		for i := range h.buckets {
			out.buckets[i].Add(h.buckets[i].Load())
		}
		out.count.Add(h.count.Load())
		out.sumUS.Add(h.sumUS.Load())
	}
	return out
}

// CountUnder returns the cross-stripe count of observations in buckets
// bounded at or below boundMS (see Histogram.CountUnder).
func (s *ShardedHistogram) CountUnder(boundMS float64) int64 {
	var n int64
	for _, h := range s.shards {
		n += h.CountUnder(boundMS)
	}
	return n
}

// Count returns the total number of observations across stripes.
func (s *ShardedHistogram) Count() int64 {
	var n int64
	for _, h := range s.shards {
		n += h.Count()
	}
	return n
}

// SumMS returns the summed observation time in milliseconds.
func (s *ShardedHistogram) SumMS() float64 {
	var us int64
	for _, h := range s.shards {
		us += h.sumUS.Load()
	}
	return float64(us) / 1000
}

// Snapshot renders the merged histogram (see Histogram.Snapshot).
func (s *ShardedHistogram) Snapshot() map[string]any { return s.merged().Snapshot() }

// Quantile estimates the q-quantile of the merged histogram in
// milliseconds (see Histogram.Quantile).
func (s *ShardedHistogram) Quantile(q float64) float64 { return s.merged().Quantile(q) }

// WritePrometheus emits the merged histogram (see
// Histogram.WritePrometheus).
func (s *ShardedHistogram) WritePrometheus(w io.Writer, name, labels string) {
	s.merged().WritePrometheus(w, name, labels)
}
