// Package obs is the repo's observability core: low-overhead primitives
// shared by the library hot path, the kmserved daemon and the benchmark
// tooling. Everything here is stdlib-only and allocation-conscious:
//
//   - Histogram: a fixed-bucket latency histogram safe for concurrent
//     use, with a JSON snapshot (the kmserved /metrics.json shape) and a
//     Prometheus text-exposition renderer. Bounds are a slice, checked
//     and normalized at construction, replacing the old fixed-size-array
//     histogram in the server package.
//
//   - Tracer: a per-query tracing interface threaded through the search
//     hot path (internal/core, internal/fmindex). The disabled state is
//     a nil Tracer, so an untraced search pays exactly one nil-compare
//     per potential event. Recorder implements Tracer by recording
//     timestamped events and can render them as Chrome trace-event JSON
//     (loadable in about:tracing or Perfetto).
//
//   - Prometheus text helpers plus ValidateExposition, a small
//     line-format validator used by the obs-smoke test so the /metrics
//     endpoint can be checked without external dependencies.
//
//   - Request-ID context plumbing (WithRequestID / RequestID) used by
//     kmserved to correlate structured log lines with batches flowing
//     through MapAllContext.
//
// The event vocabulary mirrors the paper's work accounting: EvLeaf fires
// exactly once per M-tree maximal-path terminal (so the number of EvLeaf
// events of a traced search equals Stats.MTreeLeaves, the paper's n′),
// and EvMerge fires once per repeated-interval derivation (equals
// Stats.MemoHits). See DESIGN.md §7.
package obs
