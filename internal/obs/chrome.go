package obs

import (
	"encoding/json"
	"io"
)

// chromeEvent is one entry of the Chrome trace-event format ("JSON
// Object Format" with a traceEvents wrapper), the schema understood by
// about:tracing and Perfetto. Timestamps are microseconds.
type chromeEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	TS   float64 `json:"ts"`
	Dur  float64 `json:"dur,omitempty"` // complete ("X") events only
	PID  int     `json:"pid"`
	TID  int     `json:"tid"`
	S    string  `json:"s,omitempty"` // instant-event scope
	// Args is map[string]int64 for span/instant annotations and
	// map[string]string for metadata ("M") events (process_name).
	Args any `json:"args,omitempty"`
}

// chromeTrace is the top-level document.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace renders the recorded events as Chrome trace-event
// JSON: spans become B/E duration events, everything else a
// thread-scoped instant event. Load the output in about:tracing or
// https://ui.perfetto.dev.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	events := r.Events()
	out := chromeTrace{TraceEvents: make([]chromeEvent, 0, len(events)), DisplayTimeUnit: "ms"}
	for _, e := range events {
		ce := chromeEvent{
			Name: e.Name,
			TS:   float64(e.T.Nanoseconds()) / 1e3,
			PID:  1,
			TID:  e.TID,
		}
		if ce.TID == 0 {
			ce.TID = 1
		}
		switch e.Kind {
		case EvBegin:
			ce.Ph = "B"
		case EvEnd:
			ce.Ph = "E"
		default:
			ce.Ph = "i"
			ce.S = "t"
		}
		if len(e.Args) > 0 {
			ce.Args = argMap(e.Args)
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
