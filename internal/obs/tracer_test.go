package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
)

func TestRecorderSpansAndEvents(t *testing.T) {
	r := NewRecorder()
	r.Begin("search")
	r.Begin("traverse")
	r.Emit(EvExpand, Arg{"width", 100})
	r.Emit(EvMerge)
	r.Emit(EvLeaf)
	r.Emit(EvLeaf)
	r.End(Arg{"steps", 42})
	r.Begin("locate")
	r.Emit(EvLocate, Arg{"rows", 3}, Arg{"lf_steps", 7})
	r.End()
	r.End()

	if got := r.CountKind(EvLeaf); got != 2 {
		t.Errorf("leaf events = %d, want 2", got)
	}
	if got := r.CountKind(EvMerge); got != 1 {
		t.Errorf("merge events = %d, want 1", got)
	}
	if got := r.SumArg(EvLocate, "lf_steps"); got != 7 {
		t.Errorf("lf_steps sum = %d, want 7", got)
	}
	events := r.Events()
	// End events must carry the matching span names, innermost first.
	var endNames []string
	for _, e := range events {
		if e.Kind == EvEnd {
			endNames = append(endNames, e.Name)
		}
	}
	want := []string{"traverse", "locate", "search"}
	if len(endNames) != len(want) {
		t.Fatalf("end names = %v, want %v", endNames, want)
	}
	for i := range want {
		if endNames[i] != want[i] {
			t.Fatalf("end names = %v, want %v", endNames, want)
		}
	}
	// Timestamps must be monotonic.
	for i := 1; i < len(events); i++ {
		if events[i].T < events[i-1].T {
			t.Fatalf("timestamps not monotonic at %d: %v < %v", i, events[i].T, events[i-1].T)
		}
	}
}

// TestChromeTraceSchema checks the -trace output loads as Chrome
// trace-event JSON: a traceEvents array whose entries all carry a name,
// a legal phase, a timestamp and pid/tid, with B/E events balanced.
func TestChromeTraceSchema(t *testing.T) {
	r := NewRecorder()
	r.SetTID(3)
	r.Begin("read1")
	r.Emit(EvLeaf, Arg{"mism", 2})
	r.End(Arg{"leaves", 1})
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string           `json:"name"`
			Ph   string           `json:"ph"`
			TS   *float64         `json:"ts"`
			PID  int              `json:"pid"`
			TID  int              `json:"tid"`
			Args map[string]int64 `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("got %d events, want 3", len(doc.TraceEvents))
	}
	depth := 0
	for i, e := range doc.TraceEvents {
		if e.Name == "" || e.TS == nil || e.PID == 0 || e.TID != 3 {
			t.Errorf("event %d incomplete: %+v", i, e)
		}
		switch e.Ph {
		case "B":
			depth++
		case "E":
			depth--
		case "i", "I":
		default:
			t.Errorf("event %d has unknown phase %q", i, e.Ph)
		}
	}
	if depth != 0 {
		t.Errorf("unbalanced B/E events (depth %d)", depth)
	}
	if doc.TraceEvents[1].Args["mism"] != 2 {
		t.Errorf("instant event lost args: %+v", doc.TraceEvents[1])
	}
}

func TestRequestIDContext(t *testing.T) {
	ctx := context.Background()
	if id, ok := RequestID(ctx); ok || id != "" {
		t.Fatalf("unexpected request id %q on fresh context", id)
	}
	ctx = WithRequestID(ctx, "req-42")
	if id, ok := RequestID(ctx); !ok || id != "req-42" {
		t.Fatalf("request id = %q, %v", id, ok)
	}
}
