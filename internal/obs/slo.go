package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// sloBucketSec is the windowed ring's bucket width in seconds; with
// sloBuckets buckets the ring covers one hour, the longest burn window.
const (
	sloBucketSec = 15
	sloBuckets   = 240
)

// sloWindows are the multi-window burn-rate horizons, shortest first.
// Multi-window alerting pairs a short window (fast detection) with a
// long one (no flapping); all three are emitted so the alert rules can
// pick their pairs.
var sloWindows = []struct {
	name string
	n    int // ring buckets covered
}{
	{"5m", 5 * 60 / sloBucketSec},
	{"30m", 30 * 60 / sloBucketSec},
	{"1h", sloBuckets},
}

// HistogramSource is the read surface the SLO layer needs from a
// latency histogram: the server tiers hand their existing striped
// histograms (or a merged view over them) to NewSLO, so the
// objective-attainment counters are computed from the same data the
// latency series already carry, not from a second bookkeeping path.
type HistogramSource interface {
	Count() int64
	CountUnder(boundMS float64) int64
}

// SLOConfig declares a tier's service-level objectives.
type SLOConfig struct {
	// LatencyObjectivesMS are the latency thresholds for which
	// attainment counters are published. They are snapped down to the
	// nearest histogram bucket bound at construction so attainment can
	// be read exactly from the histogram (default 10, 100, 1000).
	LatencyObjectivesMS []float64
	// LatencyObjectiveMS is the primary objective the latency burn rate
	// is computed against (default 100; snapped like the list).
	LatencyObjectiveMS float64
	// LatencyTarget is the objective fraction of requests that must
	// finish within LatencyObjectiveMS (default 0.99).
	LatencyTarget float64
	// AvailabilityTarget is the objective fraction of requests that
	// must not be shed or rejected with a 5xx (default 0.999).
	AvailabilityTarget float64
}

func (c *SLOConfig) applyDefaults(bounds []float64) {
	if len(c.LatencyObjectivesMS) == 0 {
		c.LatencyObjectivesMS = []float64{10, 100, 1000}
	}
	if c.LatencyObjectiveMS <= 0 {
		c.LatencyObjectiveMS = 100
	}
	if c.LatencyTarget <= 0 || c.LatencyTarget >= 1 {
		c.LatencyTarget = 0.99
	}
	if c.AvailabilityTarget <= 0 || c.AvailabilityTarget >= 1 {
		c.AvailabilityTarget = 0.999
	}
	for i, o := range c.LatencyObjectivesMS {
		c.LatencyObjectivesMS[i] = snapToBound(o, bounds)
	}
	sort.Float64s(c.LatencyObjectivesMS)
	c.LatencyObjectiveMS = snapToBound(c.LatencyObjectiveMS, bounds)
}

// snapToBound returns the largest histogram bound <= o (or the smallest
// bound when o undershoots them all), so CountUnder(o) is exact.
func snapToBound(o float64, bounds []float64) float64 {
	if len(bounds) == 0 {
		return o
	}
	best := bounds[0]
	for _, b := range bounds {
		if b <= o {
			best = b
		}
	}
	return best
}

// sloBucket is one ring slot of windowed outcome counts.
type sloBucket struct {
	epoch       int64 // unixSec / sloBucketSec when last written
	total       int64
	latencyBad  int64 // available but over the primary latency objective
	unavailable int64 // shed / 5xx
}

// SLO tracks a tier's service-level objectives: cumulative
// objective-attainment counters (read from the tier's own striped
// latency histogram) plus a windowed ring of request outcomes from
// which multi-window burn rates are computed at scrape time. Observe
// is called once per batch and costs one mutex'd ring update.
type SLO struct {
	cfg  SLOConfig
	hist HistogramSource
	now  func() time.Time // injectable for tests

	mu         sync.Mutex
	ring       [sloBuckets]sloBucket
	total      int64 // cumulative requests observed
	unavailTot int64 // cumulative shed / 5xx
}

// NewSLO builds an SLO tracker over the tier's latency histogram.
// boundsMS are the histogram's bucket bounds, used to snap objectives
// (pass obs.DefaultLatencyBounds() for the default histograms).
func NewSLO(cfg SLOConfig, hist HistogramSource, boundsMS []float64) *SLO {
	cfg.applyDefaults(boundsMS)
	return &SLO{cfg: cfg, hist: hist, now: time.Now}
}

// Observe records one request outcome: its wall time and whether the
// tier was available for it (false for shed and 5xx-failed requests,
// whose latency is not an SLI).
func (s *SLO) Observe(d time.Duration, available bool) {
	epoch := s.now().Unix() / sloBucketSec
	b := &s.ring[epoch%sloBuckets]
	s.mu.Lock()
	if b.epoch != epoch {
		*b = sloBucket{epoch: epoch}
	}
	b.total++
	if !available {
		b.unavailable++
		s.unavailTot++
	} else if float64(d)/float64(time.Millisecond) > s.cfg.LatencyObjectiveMS {
		b.latencyBad++
	}
	s.total++
	s.mu.Unlock()
}

// windowCounts sums the ring over the most recent n buckets.
func (s *SLO) windowCounts(n int) (total, latencyBad, unavailable int64) {
	epoch := s.now().Unix() / sloBucketSec
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := 0; i < n; i++ {
		b := &s.ring[(epoch-int64(i))%sloBuckets]
		if b.epoch != epoch-int64(i) {
			continue // stale slot from a previous revolution
		}
		total += b.total
		latencyBad += b.latencyBad
		unavailable += b.unavailable
	}
	return total, latencyBad, unavailable
}

// burnRates computes the availability and latency burn rates over one
// window: the observed bad fraction divided by the error budget
// (1 - target). 1.0 means the budget burns exactly at the sustainable
// rate; an empty window reports 0.
func (s *SLO) burnRates(n int) (avail, latency float64) {
	total, latencyBad, unavailable := s.windowCounts(n)
	if total == 0 {
		return 0, 0
	}
	avail = (float64(unavailable) / float64(total)) / (1 - s.cfg.AvailabilityTarget)
	latency = (float64(latencyBad) / float64(total)) / (1 - s.cfg.LatencyTarget)
	return avail, latency
}

// WritePrometheus emits the km_slo_* series: objective declarations,
// histogram-derived latency attainment counters per objective,
// availability counters, and multi-window burn-rate gauges.
func (s *SLO) WritePrometheus(w io.Writer) {
	WriteGaugeFloat(w, "km_slo_latency_objective_ms",
		"primary latency objective the burn rate is computed against", s.cfg.LatencyObjectiveMS)
	WriteGaugeFloat(w, "km_slo_latency_target",
		"objective fraction of requests within the latency objective", s.cfg.LatencyTarget)
	WriteGaugeFloat(w, "km_slo_availability_target",
		"objective fraction of requests not shed or failed", s.cfg.AvailabilityTarget)

	fmt.Fprintf(w, "# HELP km_slo_latency_good_total requests within each latency objective (from the latency histogram)\n# TYPE km_slo_latency_good_total counter\n")
	for _, o := range s.cfg.LatencyObjectivesMS {
		fmt.Fprintf(w, "km_slo_latency_good_total{objective_ms=%q} %d\n",
			FormatBound(o)[2:], s.hist.CountUnder(o))
	}
	WriteCounter(w, "km_slo_latency_total",
		"requests measured against the latency objectives", s.hist.Count())

	s.mu.Lock()
	total, unavail := s.total, s.unavailTot
	s.mu.Unlock()
	WriteCounter(w, "km_slo_availability_good_total",
		"requests served without shedding or failure", total-unavail)
	WriteCounter(w, "km_slo_availability_total",
		"requests measured against the availability objective", total)

	fmt.Fprintf(w, "# HELP km_slo_burn_rate error-budget burn rate per objective and window (1.0 = budget exactly sustained)\n# TYPE km_slo_burn_rate gauge\n")
	for _, win := range sloWindows {
		avail, latency := s.burnRates(win.n)
		fmt.Fprintf(w, "km_slo_burn_rate{slo=\"availability\",window=%q} %g\n", win.name, avail)
		fmt.Fprintf(w, "km_slo_burn_rate{slo=\"latency\",window=%q} %g\n", win.name, latency)
	}
}

// Snapshot renders the SLO state as a JSON-ready map (the
// /metrics.json shape).
func (s *SLO) Snapshot() map[string]any {
	s.mu.Lock()
	total, unavail := s.total, s.unavailTot
	s.mu.Unlock()
	attain := make(map[string]int64, len(s.cfg.LatencyObjectivesMS))
	for _, o := range s.cfg.LatencyObjectivesMS {
		attain[FormatBound(o)[2:]] = s.hist.CountUnder(o)
	}
	burns := make(map[string]any, len(sloWindows))
	for _, win := range sloWindows {
		avail, latency := s.burnRates(win.n)
		burns[win.name] = map[string]float64{"availability": avail, "latency": latency}
	}
	return map[string]any{
		"latency_objective_ms":      s.cfg.LatencyObjectiveMS,
		"latency_target":            s.cfg.LatencyTarget,
		"availability_target":       s.cfg.AvailabilityTarget,
		"latency_good_by_objective": attain,
		"latency_total":             s.hist.Count(),
		"availability_good_total":   total - unavail,
		"availability_total":        total,
		"burn_rates":                burns,
	}
}
