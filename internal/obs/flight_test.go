package obs

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"
)

func TestFlightRecorderRingNewestFirst(t *testing.T) {
	f := NewFlightRecorder(4, 2, []string{"plan", "search"})
	for i := 1; i <= 6; i++ {
		rec := QueryRecord{
			Start:     time.Unix(int64(i), 0),
			RID:       "r",
			ElapsedNS: int64(i) * 1e6,
			Reads:     int32(i),
		}
		rec.PhaseNS[1] = int64(i) * 1e5
		f.Record(&rec)
	}
	if f.Total() != 6 {
		t.Fatalf("total = %d, want 6", f.Total())
	}
	snap := f.Snapshot()
	recent := snap["recent"].([]recordJSON)
	if len(recent) != 4 {
		t.Fatalf("recent holds %d records, want ring size 4", len(recent))
	}
	// Newest first: reads 6, 5, 4, 3.
	for i, want := range []int32{6, 5, 4, 3} {
		if recent[i].Reads != want {
			t.Errorf("recent[%d].Reads = %d, want %d", i, recent[i].Reads, want)
		}
	}
	if recent[0].ElapsedMS != 6 {
		t.Errorf("elapsed = %v ms, want 6", recent[0].ElapsedMS)
	}
	if recent[0].PhasesMS["search"] != 0.6 {
		t.Errorf("phases = %v, want search 0.6ms", recent[0].PhasesMS)
	}
	if _, ok := recent[0].PhasesMS["plan"]; ok {
		t.Errorf("zero phase slot rendered: %v", recent[0].PhasesMS)
	}
}

func TestFlightRecorderSlowestN(t *testing.T) {
	f := NewFlightRecorder(8, 3, nil)
	// Out-of-order elapsed times; slowest-3 should end as 90, 70, 50.
	for _, ms := range []int64{10, 90, 20, 50, 30, 70, 40} {
		f.Record(&QueryRecord{Start: time.Unix(0, 0), ElapsedNS: ms * 1e6})
	}
	snap := f.Snapshot()
	slow := snap["slowest"].([]recordJSON)
	if len(slow) != 3 {
		t.Fatalf("slowest holds %d, want 3", len(slow))
	}
	for i, want := range []float64{90, 70, 50} {
		if slow[i].ElapsedMS != want {
			t.Errorf("slowest[%d] = %v ms, want %v", i, slow[i].ElapsedMS, want)
		}
	}
}

func TestFlightRecorderFailedShardsAndFlags(t *testing.T) {
	f := NewFlightRecorder(2, 2, nil)
	f.Record(&QueryRecord{
		Start:        time.Unix(0, 0),
		RID:          "creq-1",
		FailedShards: ShardBit(0) | ShardBit(5),
		Partial:      true,
		Shed:         false,
	})
	snap := f.Snapshot()
	rec := snap["recent"].([]recordJSON)[0]
	if len(rec.FailedShards) != 2 || rec.FailedShards[0] != 0 || rec.FailedShards[1] != 5 {
		t.Errorf("failed shards = %v, want [0 5]", rec.FailedShards)
	}
	if !rec.Partial || rec.Shed {
		t.Errorf("flags = partial %v shed %v", rec.Partial, rec.Shed)
	}
	if ShardBit(200) != 1<<63 || ShardBit(-1) != 0 {
		t.Errorf("ShardBit saturation broken: %v %v", ShardBit(200), ShardBit(-1))
	}
}

func TestFlightRecorderServeHTTP(t *testing.T) {
	f := NewFlightRecorder(4, 2, []string{"search"})
	f.Record(&QueryRecord{Start: time.Unix(1, 0), RID: "r-1", ElapsedNS: 2e6, Reads: 1})
	w := httptest.NewRecorder()
	f.ServeHTTP(w, httptest.NewRequest("GET", "/debug/flightrecorder", nil))
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	var doc struct {
		Total  uint64 `json:"total"`
		Recent []struct {
			RID string `json:"rid"`
		} `json:"recent"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &doc); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, w.Body.String())
	}
	if doc.Total != 1 || len(doc.Recent) != 1 || doc.Recent[0].RID != "r-1" {
		t.Fatalf("snapshot = %s", w.Body.String())
	}
}

// TestFlightRecorderZeroAlloc pins the acceptance criterion: the record
// path — the only part on the query hot path — allocates nothing.
func TestFlightRecorderZeroAlloc(t *testing.T) {
	f := NewFlightRecorder(64, 16, []string{"plan", "fanout", "merge"})
	rec := QueryRecord{
		Start:     time.Unix(42, 0),
		RID:       "creq-000001",
		Index:     "idx",
		Method:    "mtree",
		ElapsedNS: 1e6,
		Reads:     8,
	}
	// Warm up (first records fill the slowest-N table in its append arm).
	for i := 0; i < 32; i++ {
		rec.ElapsedNS = int64(i+1) * 1e5
		f.Record(&rec)
	}
	allocs := testing.AllocsPerRun(100, func() {
		rec.ElapsedNS += 1e3
		f.Record(&rec)
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %.1f times per call, want 0", allocs)
	}
}
