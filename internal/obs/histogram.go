package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync/atomic"
	"time"
)

// defaultBounds are the default latency bucket upper bounds in
// milliseconds. Log-spaced so both a 50µs cached lookup and a
// multi-second batch land in a useful bucket. The array form makes the
// bucket count a compile-time constant (DefaultBucketCount), which is
// what the old server histogram spelled out by hand as `len11`.
var defaultBounds = [...]float64{0.1, 0.3, 1, 3, 10, 30, 100, 300, 1000, 3000}

// DefaultBucketCount is len(default bounds) + 1 (the +Inf overflow
// bucket), checked by the compiler rather than by a hand-maintained
// constant.
const DefaultBucketCount = len(defaultBounds) + 1

// DefaultLatencyBounds returns a fresh copy of the default bucket
// bounds (milliseconds).
func DefaultLatencyBounds() []float64 {
	return append([]float64(nil), defaultBounds[:]...)
}

// Histogram is a fixed-bucket duration histogram safe for concurrent
// use. Bucket i counts observations with value <= bounds[i] (ms); the
// final bucket is unbounded. Construct with NewHistogram or
// NewLatencyHistogram; the zero value is not usable.
type Histogram struct {
	bounds  []float64 // ascending, finite, deduplicated
	buckets []atomic.Int64
	count   atomic.Int64
	sumUS   atomic.Int64 // sum in microseconds (integers keep it atomic)
}

// NewHistogram builds a histogram over the given upper bounds in
// milliseconds. Bounds are copied, sorted, deduplicated; non-finite
// entries are dropped (the +Inf bucket is implicit). An empty set falls
// back to DefaultLatencyBounds.
func NewHistogram(boundsMS []float64) *Histogram {
	b := append([]float64(nil), boundsMS...)
	sort.Float64s(b)
	kept := b[:0]
	for _, v := range b {
		if math.IsInf(v, 0) || math.IsNaN(v) {
			continue
		}
		if len(kept) > 0 && kept[len(kept)-1] == v {
			continue
		}
		kept = append(kept, v)
	}
	if len(kept) == 0 {
		kept = DefaultLatencyBounds()
	}
	return &Histogram{bounds: kept, buckets: make([]atomic.Int64, len(kept)+1)}
}

// NewLatencyHistogram builds a histogram over DefaultLatencyBounds.
func NewLatencyHistogram() *Histogram { return NewHistogram(defaultBounds[:]) }

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	i := 0
	for i < len(h.bounds) && ms > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumUS.Add(int64(d / time.Microsecond))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// CountUnder returns how many observations fell in buckets whose upper
// bound is <= boundMS — the count of requests that met a latency
// objective, provided the objective aligns with a bucket bound (the
// SLO layer snaps objectives to bounds for exactly this reason).
func (h *Histogram) CountUnder(boundMS float64) int64 {
	var n int64
	for i, b := range h.bounds {
		if b > boundMS {
			break
		}
		n += h.buckets[i].Load()
	}
	return n
}

// SumMS returns the sum of observations in milliseconds.
func (h *Histogram) SumMS() float64 { return float64(h.sumUS.Load()) / 1000 }

// Bounds returns a copy of the bucket upper bounds (milliseconds).
func (h *Histogram) Bounds() []float64 {
	return append([]float64(nil), h.bounds...)
}

// Snapshot renders the histogram as a JSON-ready map (the
// /metrics.json shape): per-bucket counts keyed "le<bound>" plus
// "+inf", count, sum_ms, and mean_ms when non-empty.
func (h *Histogram) Snapshot() map[string]any {
	counts := make(map[string]int64, len(h.buckets))
	for i, b := range h.bounds {
		counts[FormatBound(b)] = h.buckets[i].Load()
	}
	counts[FormatBound(math.Inf(1))] = h.buckets[len(h.bounds)].Load()
	n := h.count.Load()
	out := map[string]any{
		"count":      n,
		"sum_ms":     h.SumMS(),
		"buckets_ms": counts,
	}
	if n > 0 {
		out["mean_ms"] = h.SumMS() / float64(n)
	}
	return out
}

// Quantile estimates the q-quantile (0 <= q <= 1) of the observations
// in milliseconds by linear interpolation inside the containing bucket
// (the standard Prometheus histogram_quantile estimate). Observations
// in the +Inf overflow bucket report the largest finite bound — the
// estimate saturates rather than extrapolates. Returns 0 for an empty
// histogram.
func (h *Histogram) Quantile(q float64) float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(n)
	var cum int64
	for i, b := range h.bounds {
		c := h.buckets[i].Load()
		if float64(cum+c) >= rank {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			if c == 0 {
				return b
			}
			return lo + (b-lo)*(rank-float64(cum))/float64(c)
		}
		cum += c
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// FormatBound renders a bucket upper bound as the JSON snapshot keys
// it: "le0.1", "le1000"; the +Inf overflow bucket is "+inf".
func FormatBound(b float64) string {
	if math.IsInf(b, 1) {
		return "+inf"
	}
	return "le" + strconv.FormatFloat(b, 'g', -1, 64)
}

// WritePrometheus emits the histogram in Prometheus text exposition:
// cumulative name_bucket series (le label in milliseconds, matching the
// _ms metric-name suffix convention used by the server), then name_sum
// and name_count. labels is a pre-rendered label list without braces
// (`method="a"`) or empty. The caller is responsible for the # HELP and
// # TYPE header lines (see WriteHistogramMeta).
func (h *Histogram) WritePrometheus(w io.Writer, name, labels string) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum int64
	for i, b := range h.bounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(w, "%s_bucket{%s%sle=\"%s\"} %d\n",
			name, labels, sep, strconv.FormatFloat(b, 'g', -1, 64), cum)
	}
	cum += h.buckets[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, cum)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %s\n", name, strconv.FormatFloat(h.SumMS(), 'g', -1, 64))
		fmt.Fprintf(w, "%s_count %d\n", name, h.count.Load())
		return
	}
	fmt.Fprintf(w, "%s_sum{%s} %s\n", name, labels, strconv.FormatFloat(h.SumMS(), 'g', -1, 64))
	fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, h.count.Load())
}
