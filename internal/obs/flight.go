package obs

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"
)

// MaxPhases is the fixed per-record phase slot count. Each tier names
// its own phases at construction (NewFlightRecorder); unused slots stay
// zero and are omitted from snapshots.
const MaxPhases = 8

// QueryRecord is one query's flight-recorder entry: everything needed
// to reconstruct where a batch spent its time after the fact, without
// having sampled a trace. It is a flat value type — no pointers, no
// slices — so recording is one struct copy into preallocated storage.
type QueryRecord struct {
	// Start is the batch's wall-clock arrival time.
	Start time.Time
	// RID, Index and Method identify the request (RID matches the
	// X-Km-Request-Id echoed to the client and logged by slog).
	RID    string
	Index  string
	Method string
	// ElapsedNS is the whole-batch wall time; PhaseNS breaks it down by
	// the recorder's phase table (queue/search on a worker;
	// plan/route/fanout/merge/assemble on the coordinator).
	ElapsedNS int64
	PhaseNS   [MaxPhases]int64
	// Batch shape and outcome.
	Reads   int32
	Matches int32
	Errors  int32
	// The paper's work counters, summed over the batch.
	Leaves   int64
	Steps    int64
	MemoHits int64
	// Coordinator attribution: reads served from the hot-results cache,
	// reads coalesced onto another flight, and the shard ordinals lost
	// to a partial batch (bitmask; ordinals >= 64 set bit 63).
	CacheHits    int32
	Coalesced    int32
	FailedShards uint64
	Partial      bool
	// Shed marks a batch refused by admission control or a drain; only
	// RID/Start/Reads are meaningful on such records.
	Shed bool
}

// FlightRecorder is the always-on last-resort debugger: a fixed-size
// ring of the most recent query records plus the slowest-N seen since
// start. Record performs no allocation (pinned by
// TestFlightRecorderZeroAlloc), so it stays on even in the untraced
// hot path; snapshots pay the rendering cost at /debug/flightrecorder
// scrape time instead.
type FlightRecorder struct {
	mu     sync.Mutex
	phases []string
	recent []QueryRecord // ring storage, preallocated
	next   int           // ring cursor
	filled int           // records resident in the ring
	slow   []QueryRecord // slowest-N storage, preallocated
	nslow  int
	total  uint64
}

// NewFlightRecorder builds a recorder holding the recent most-recent
// records and the slowest slowest-ever records, with the given phase
// slot names (at most MaxPhases; extras are dropped).
func NewFlightRecorder(recent, slowest int, phases []string) *FlightRecorder {
	if recent < 1 {
		recent = 64
	}
	if slowest < 1 {
		slowest = 16
	}
	if len(phases) > MaxPhases {
		phases = phases[:MaxPhases]
	}
	return &FlightRecorder{
		phases: append([]string(nil), phases...),
		recent: make([]QueryRecord, recent),
		slow:   make([]QueryRecord, slowest),
	}
}

// Record stores one query record. It is safe for concurrent use and
// allocation-free: the record is copied by value into the ring slot
// and, when slow enough, into the slowest-N table.
func (f *FlightRecorder) Record(rec *QueryRecord) {
	f.mu.Lock()
	f.total++
	f.recent[f.next] = *rec
	f.next++
	if f.next == len(f.recent) {
		f.next = 0
	}
	if f.filled < len(f.recent) {
		f.filled++
	}
	if f.nslow < len(f.slow) {
		f.slow[f.nslow] = *rec
		f.nslow++
	} else {
		// Replace the fastest of the slowest-N when beaten. N is small
		// (default 16), so a linear min scan beats heap bookkeeping.
		minIdx, minNS := 0, f.slow[0].ElapsedNS
		for i := 1; i < f.nslow; i++ {
			if f.slow[i].ElapsedNS < minNS {
				minIdx, minNS = i, f.slow[i].ElapsedNS
			}
		}
		if rec.ElapsedNS > minNS {
			f.slow[minIdx] = *rec
		}
	}
	f.mu.Unlock()
}

// Total returns how many records have been recorded since start.
func (f *FlightRecorder) Total() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total
}

// recordJSON is the snapshot rendering of one QueryRecord.
type recordJSON struct {
	Time         string             `json:"time"`
	RID          string             `json:"rid,omitempty"`
	Index        string             `json:"index,omitempty"`
	Method       string             `json:"method,omitempty"`
	ElapsedMS    float64            `json:"elapsed_ms"`
	PhasesMS     map[string]float64 `json:"phases_ms,omitempty"`
	Reads        int32              `json:"reads"`
	Matches      int32              `json:"matches"`
	Errors       int32              `json:"errors,omitempty"`
	Leaves       int64              `json:"mtree_leaves,omitempty"`
	Steps        int64              `json:"step_calls,omitempty"`
	MemoHits     int64              `json:"memo_hits,omitempty"`
	CacheHits    int32              `json:"cache_hits,omitempty"`
	Coalesced    int32              `json:"coalesced,omitempty"`
	FailedShards []int              `json:"failed_shards,omitempty"`
	Partial      bool               `json:"partial,omitempty"`
	Shed         bool               `json:"shed,omitempty"`
}

func (f *FlightRecorder) render(rec *QueryRecord) recordJSON {
	out := recordJSON{
		Time:      rec.Start.UTC().Format(time.RFC3339Nano),
		RID:       rec.RID,
		Index:     rec.Index,
		Method:    rec.Method,
		ElapsedMS: float64(rec.ElapsedNS) / 1e6,
		Reads:     rec.Reads,
		Matches:   rec.Matches,
		Errors:    rec.Errors,
		Leaves:    rec.Leaves,
		Steps:     rec.Steps,
		MemoHits:  rec.MemoHits,
		CacheHits: rec.CacheHits,
		Coalesced: rec.Coalesced,
		Partial:   rec.Partial,
		Shed:      rec.Shed,
	}
	for i, name := range f.phases {
		if rec.PhaseNS[i] == 0 {
			continue
		}
		if out.PhasesMS == nil {
			out.PhasesMS = make(map[string]float64, len(f.phases))
		}
		out.PhasesMS[name] = float64(rec.PhaseNS[i]) / 1e6
	}
	for s := 0; s < 64; s++ {
		if rec.FailedShards&(1<<s) != 0 {
			out.FailedShards = append(out.FailedShards, s)
		}
	}
	return out
}

// Snapshot renders the recorder state as a JSON-ready document: the
// recent ring newest-first and the slowest-N sorted slowest-first.
func (f *FlightRecorder) Snapshot() map[string]any {
	f.mu.Lock()
	defer f.mu.Unlock()
	recent := make([]recordJSON, 0, f.filled)
	for i := 0; i < f.filled; i++ {
		idx := f.next - 1 - i
		if idx < 0 {
			idx += len(f.recent)
		}
		recent = append(recent, f.render(&f.recent[idx]))
	}
	slow := make([]recordJSON, 0, f.nslow)
	order := make([]int, f.nslow)
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ { // insertion sort; N is small
		for j := i; j > 0 && f.slow[order[j]].ElapsedNS > f.slow[order[j-1]].ElapsedNS; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	for _, idx := range order {
		slow = append(slow, f.render(&f.slow[idx]))
	}
	return map[string]any{
		"total":   f.total,
		"phases":  f.phases,
		"recent":  recent,
		"slowest": slow,
	}
}

// ServeHTTP serves the snapshot as JSON, making the recorder mountable
// directly at /debug/flightrecorder.
func (f *FlightRecorder) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(f.Snapshot())
}

// ShardBit returns the FailedShards bitmask bit for a shard ordinal
// (ordinals beyond 63 saturate into bit 63 rather than being lost).
func ShardBit(shard int) uint64 {
	if shard < 0 {
		return 0
	}
	if shard > 63 {
		shard = 63
	}
	return 1 << shard
}
