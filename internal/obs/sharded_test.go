package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestShardedCounterConcurrentSum hammers one counter from many
// goroutines and checks no increment is lost (run under -race in make
// check).
func TestShardedCounterConcurrentSum(t *testing.T) {
	var c ShardedCounter
	const goroutines, perG = 16, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != goroutines*perG {
		t.Fatalf("Load() = %d, want %d", got, goroutines*perG)
	}
}

// TestShardedCounterSignedAndZero pins the atomic.Int64-compatible
// behaviours the server relies on: zero value readable, negative adds
// (InFlight gauge), interleaved loads.
func TestShardedCounterSignedAndZero(t *testing.T) {
	var c ShardedCounter
	if got := c.Load(); got != 0 {
		t.Fatalf("zero value Load() = %d", got)
	}
	c.Add(5)
	c.Add(-2)
	if got := c.Load(); got != 3 {
		t.Fatalf("Load() = %d, want 3", got)
	}
}

// TestShardedHistogramMatchesPlain drives a sharded and a plain
// histogram with the same observations (concurrently for the sharded
// one) and requires identical merged buckets, count and sum.
func TestShardedHistogramMatchesPlain(t *testing.T) {
	sh := NewShardedLatencyHistogram()
	plain := NewLatencyHistogram()
	durations := []time.Duration{
		50 * time.Microsecond, 200 * time.Microsecond, 2 * time.Millisecond,
		40 * time.Millisecond, 700 * time.Millisecond, 5 * time.Second,
	}
	const rounds = 500
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				for _, d := range durations {
					sh.Observe(d)
				}
			}
		}()
	}
	for i := 0; i < 8*rounds; i++ {
		for _, d := range durations {
			plain.Observe(d)
		}
	}
	wg.Wait()
	if sh.Count() != plain.Count() {
		t.Fatalf("Count %d != %d", sh.Count(), plain.Count())
	}
	if sh.SumMS() != plain.SumMS() {
		t.Fatalf("SumMS %v != %v", sh.SumMS(), plain.SumMS())
	}
	got, want := sh.Snapshot(), plain.Snapshot()
	gb, wb := got["buckets_ms"].(map[string]int64), want["buckets_ms"].(map[string]int64)
	for k, v := range wb {
		if gb[k] != v {
			t.Fatalf("bucket %s: %d != %d", k, gb[k], v)
		}
	}
	var g, w strings.Builder
	sh.WritePrometheus(&g, "m", `x="y"`)
	plain.WritePrometheus(&w, "m", `x="y"`)
	if g.String() != w.String() {
		t.Fatalf("Prometheus exposition differs:\n%s\nvs\n%s", g.String(), w.String())
	}
}

// BenchmarkShardedCounterParallel measures the contended hot path the
// striping exists for; compare with BenchmarkAtomicCounterParallel.
func BenchmarkShardedCounterParallel(b *testing.B) {
	var c ShardedCounter
	c.Add(0) // init outside the timer
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Add(1)
		}
	})
	if c.Load() == 0 {
		b.Fatal("no adds recorded")
	}
}

// BenchmarkShardedHistogramParallel measures concurrent Observe cost.
func BenchmarkShardedHistogramParallel(b *testing.B) {
	h := NewShardedLatencyHistogram()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(3 * time.Millisecond)
		}
	})
}
