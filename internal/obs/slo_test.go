package obs

import (
	"strings"
	"testing"
	"time"
)

// newTestSLO builds an SLO over a real histogram with a fake clock.
func newTestSLO(cfg SLOConfig) (*SLO, *Histogram, *time.Time) {
	h := NewLatencyHistogram()
	s := NewSLO(cfg, h, h.Bounds())
	now := time.Unix(1_000_000, 0)
	s.now = func() time.Time { return now }
	return s, h, &now
}

func TestSLOConfigDefaultsAndSnapping(t *testing.T) {
	s, _, _ := newTestSLO(SLOConfig{})
	if s.cfg.LatencyObjectiveMS != 100 || s.cfg.LatencyTarget != 0.99 || s.cfg.AvailabilityTarget != 0.999 {
		t.Fatalf("defaults = %+v", s.cfg)
	}
	// 150ms is not a bucket bound; it must snap down to 100 so the
	// attainment counter can be read exactly from the histogram.
	s2, _, _ := newTestSLO(SLOConfig{LatencyObjectiveMS: 150, LatencyObjectivesMS: []float64{0.5, 150}})
	if s2.cfg.LatencyObjectiveMS != 100 {
		t.Errorf("objective snapped to %v, want 100", s2.cfg.LatencyObjectiveMS)
	}
	if s2.cfg.LatencyObjectivesMS[0] != 0.3 || s2.cfg.LatencyObjectivesMS[1] != 100 {
		t.Errorf("objectives snapped to %v, want [0.3 100]", s2.cfg.LatencyObjectivesMS)
	}
}

func TestSLOBurnRates(t *testing.T) {
	s, _, now := newTestSLO(SLOConfig{LatencyTarget: 0.9, AvailabilityTarget: 0.99})
	// 100 requests in the current bucket: 5 shed, 19 of the rest slow.
	for i := 0; i < 5; i++ {
		s.Observe(time.Millisecond, false)
	}
	for i := 0; i < 19; i++ {
		s.Observe(500*time.Millisecond, true)
	}
	for i := 0; i < 76; i++ {
		s.Observe(time.Millisecond, true)
	}
	avail, latency := s.burnRates(sloWindows[0].n)
	// Availability: 5/100 bad over a 1% budget = 5.0.
	if avail < 4.99 || avail > 5.01 {
		t.Errorf("availability burn = %v, want 5.0", avail)
	}
	// Latency: 19/100 bad over a 10% budget = 1.9.
	if latency < 1.89 || latency > 1.91 {
		t.Errorf("latency burn = %v, want 1.9", latency)
	}

	// Advance past the 5m window: the short window empties (burn 0)
	// while the 1h window still sees the old bucket.
	*now = now.Add(6 * time.Minute)
	avail, _ = s.burnRates(sloWindows[0].n)
	if avail != 0 {
		t.Errorf("5m burn after idle gap = %v, want 0", avail)
	}
	avail, _ = s.burnRates(sloWindows[2].n)
	if avail < 4.99 || avail > 5.01 {
		t.Errorf("1h burn after idle gap = %v, want 5.0", avail)
	}

	// A full ring revolution later the stale slot must not resurface.
	*now = now.Add(2 * time.Hour)
	avail, latency = s.burnRates(sloWindows[2].n)
	if avail != 0 || latency != 0 {
		t.Errorf("burn after ring revolution = %v/%v, want 0/0", avail, latency)
	}
}

func TestSLOAttainmentFromHistogram(t *testing.T) {
	s, h, _ := newTestSLO(SLOConfig{LatencyObjectivesMS: []float64{10, 100}})
	h.Observe(5 * time.Millisecond)   // under both
	h.Observe(50 * time.Millisecond)  // under 100 only
	h.Observe(500 * time.Millisecond) // over both
	snap := s.Snapshot()
	attain := snap["latency_good_by_objective"].(map[string]int64)
	if attain["10"] != 1 || attain["100"] != 2 {
		t.Fatalf("attainment = %v, want 10:1 100:2", attain)
	}
	if snap["latency_total"].(int64) != 3 {
		t.Fatalf("latency_total = %v", snap["latency_total"])
	}
}

func TestSLOWritePrometheus(t *testing.T) {
	s, h, _ := newTestSLO(SLOConfig{})
	h.Observe(2 * time.Millisecond)
	s.Observe(2*time.Millisecond, true)
	s.Observe(time.Millisecond, false)
	var sb strings.Builder
	s.WritePrometheus(&sb)
	out := sb.String()
	if err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("km_slo_* exposition invalid: %v\n%s", err, out)
	}
	for _, want := range []string{
		"km_slo_latency_objective_ms 100\n",
		"km_slo_latency_target 0.99\n",
		"km_slo_availability_target 0.999\n",
		`km_slo_latency_good_total{objective_ms="100"} 1`,
		"km_slo_latency_total 1\n",
		"km_slo_availability_good_total 1\n",
		"km_slo_availability_total 2\n",
		`km_slo_burn_rate{slo="availability",window="5m"}`,
		`km_slo_burn_rate{slo="latency",window="1h"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}
